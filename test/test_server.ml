(** Fault-injection tests for the crash-contained supervisor.

    Containment is proved, not hoped for: workers are told to crash,
    hang, exit, raise, and alloc-bomb on exact (job, attempt) pairs, and
    the tests assert the supervisor survives, retries per policy
    (backoff + degradation-rung escalation), and quarantines rather than
    loops. The kill -9 test drives the real binary: SIGKILL the
    supervisor mid-batch, resume from the journal, and require the final
    output to be byte-identical to an uninterrupted run. *)

open Server

let cfg ?(workers = 2) ?(attempts = 3) ?(job_timeout_ms = 5_000)
    ?(faults = Faults.none) ?journal ?(resume = false)
    ?(admission = Admission.default) ?worker_max_rss_mb
    ?(drain_grace_ms = 5_000) () : Supervisor.config =
  {
    Supervisor.workers;
    max_attempts = attempts;
    job_timeout_s = float_of_int job_timeout_ms /. 1000.;
    backoff_base_ms = 1;
    faults;
    journal_path = journal;
    resume;
    admission;
    worker_max_rss_mb;
    drain_grace_s = float_of_int drain_grace_ms /. 1000.;
    shutdown_grace_s = 2.0;
  }

let adm ?max_pending ?(high = 0) ?(low = 0) ?(ticks = 4) () :
    Admission.config =
  {
    Admission.max_pending;
    high_watermark = high;
    low_watermark = low;
    brownout_ticks = ticks;
    max_rung = Job.max_rung;
  }

let jobs_of specs = List.mapi (fun i s -> Job.make ~idx:(i + 1) s) specs

let plan s =
  match Faults.parse s with Ok p -> p | Error e -> Alcotest.fail e

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let outcome_done = function Supervisor.Done _ -> true | _ -> false

let find_outcome results id =
  match
    List.find_opt (fun ((j : Job.t), _) -> j.Job.id = id) results
  with
  | Some (_, o) -> o
  | None -> Alcotest.failf "no outcome for %s" id

let temp_path name =
  let p = Filename.temp_file "structcast-test" name in
  Sys.remove p;
  p

let file_contains path needle =
  Sys.file_exists path
  &&
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  contains s needle

(* ------------------------------------------------------------------ *)
(* Containment                                                         *)
(* ------------------------------------------------------------------ *)

let test_clean_batch () =
  let results, fleet =
    Supervisor.run_batch (cfg ()) (jobs_of [ "wc"; "anagram"; "bc"; "li" ])
  in
  Alcotest.(check int) "all jobs have outcomes" 4 (List.length results);
  Alcotest.(check bool) "all done" true
    (List.for_all (fun (_, o) -> outcome_done o) results);
  Alcotest.(check int) "fleet completed" 4 fleet.Core.Metrics.completed;
  Alcotest.(check int) "no crashes" 0 fleet.Core.Metrics.crashes;
  (* submission order is preserved in results *)
  Alcotest.(check (list string)) "order" [ "job1"; "job2"; "job3"; "job4" ]
    (List.map (fun ((j : Job.t), _) -> j.Job.id) results)

let test_crash_retried_then_done () =
  let results, fleet =
    Supervisor.run_batch
      (cfg ~faults:(plan "crash@job2#1") ())
      (jobs_of [ "wc"; "anagram" ])
  in
  (match find_outcome results "job2" with
  | Supervisor.Done { attempt; rung; degraded; _ } ->
      Alcotest.(check int) "second attempt" 2 attempt;
      Alcotest.(check int) "escalated one rung" 1 rung;
      Alcotest.(check bool) "rung > 0 counts as degraded" true degraded
  | _ -> Alcotest.fail "job2 should have recovered");
  Alcotest.(check int) "one crash" 1 fleet.Core.Metrics.crashes;
  Alcotest.(check int) "one retry" 1 fleet.Core.Metrics.retries;
  Alcotest.(check int) "max rung" 1 fleet.Core.Metrics.max_rung;
  Alcotest.(check bool) "job1 untouched" true
    (outcome_done (find_outcome results "job1"))

let test_crash_always_quarantines () =
  let results, fleet =
    Supervisor.run_batch
      (cfg ~faults:(plan "crash@job1") ())
      (jobs_of [ "wc"; "anagram" ])
  in
  (match find_outcome results "job1" with
  | Supervisor.Quarantined { attempts; reason; _ } ->
      Alcotest.(check int) "attempt cap honored, no looping" 3 attempts;
      Alcotest.(check bool) "reason names the signal" true
        (contains reason "SIGABRT" || contains reason "signal")
  | _ -> Alcotest.fail "job1 should be quarantined");
  Alcotest.(check int) "three crashes" 3 fleet.Core.Metrics.crashes;
  Alcotest.(check int) "quarantined" 1 fleet.Core.Metrics.quarantined;
  (* the supervisor survived and other jobs completed *)
  Alcotest.(check bool) "job2 done" true
    (outcome_done (find_outcome results "job2"))

let test_unexpected_exit_contained () =
  let _, fleet =
    Supervisor.run_batch
      (cfg ~faults:(plan "exit@job1#1") ())
      (jobs_of [ "wc" ])
  in
  Alcotest.(check int) "exit counted as crash" 1 fleet.Core.Metrics.crashes;
  Alcotest.(check int) "completed on retry" 1 fleet.Core.Metrics.completed

let test_hang_killed_and_quarantined () =
  let results, fleet =
    Supervisor.run_batch
      (cfg ~attempts:2 ~job_timeout_ms:300 ~faults:(plan "hang@job1") ())
      (jobs_of [ "wc"; "anagram" ])
  in
  (match find_outcome results "job1" with
  | Supervisor.Quarantined { reason; _ } ->
      Alcotest.(check bool) "reason says hang" true
        (contains reason "hang")
  | _ -> Alcotest.fail "hung job should be quarantined");
  Alcotest.(check int) "both attempts hung" 2 fleet.Core.Metrics.hangs;
  Alcotest.(check bool) "sibling unaffected" true
    (outcome_done (find_outcome results "job2"))

let test_raise_and_allocbomb_contained_in_worker () =
  (* these faults are caught by the worker itself: a clean error
     response, no process death *)
  let _, fleet =
    Supervisor.run_batch
      (cfg ~faults:(plan "raise@job1#1,allocbomb@job2#1") ())
      (jobs_of [ "wc"; "anagram" ])
  in
  Alcotest.(check int) "no process deaths" 0 fleet.Core.Metrics.crashes;
  Alcotest.(check int) "two clean errors" 2 fleet.Core.Metrics.job_errors;
  Alcotest.(check int) "both recovered" 2 fleet.Core.Metrics.completed

let test_malformed_input_quarantined () =
  let results, fleet =
    Supervisor.run_batch (cfg ()) (jobs_of [ "/no/such/input.c"; "wc" ])
  in
  (match find_outcome results "job1" with
  | Supervisor.Quarantined { attempts; _ } ->
      Alcotest.(check int) "retried per policy, then stopped" 3 attempts
  | _ -> Alcotest.fail "bogus input should be quarantined");
  Alcotest.(check int) "errors counted" 3 fleet.Core.Metrics.job_errors;
  Alcotest.(check bool) "supervisor alive, sibling done" true
    (outcome_done (find_outcome results "job2"))

let test_circuit_breaker () =
  (* same bad input twice: the second job must fail fast once the first
     quarantine opens the breaker, not burn its own attempts *)
  let results, fleet =
    Supervisor.run_batch
      (cfg ~workers:1 ())
      (jobs_of [ "/no/such/input.c"; "/no/such/input.c"; "wc" ])
  in
  Alcotest.(check int) "breaker skipped at least one dispatch" 1
    fleet.Core.Metrics.breaker_skips;
  (match find_outcome results "job2" with
  | Supervisor.Quarantined { reason; _ } ->
      Alcotest.(check bool) "reason names the breaker" true
        (contains reason "circuit breaker")
  | _ -> Alcotest.fail "job2 should be breaker-quarantined");
  Alcotest.(check bool) "good input still analyzed" true
    (outcome_done (find_outcome results "job3"))

(* ------------------------------------------------------------------ *)
(* Journal: determinism and resume                                     *)
(* ------------------------------------------------------------------ *)

let outputs results =
  List.map
    (fun (_, o) ->
      match o with
      | Supervisor.Done { output; _ } -> output
      | Supervisor.Quarantined { output; _ } -> output
      | Supervisor.Shed { output; _ } -> output)
    results

let test_journal_replay_identical () =
  let j = temp_path ".journal" in
  let specs = [ "wc"; "anagram"; "bc" ] in
  let r1, _ = Supervisor.run_batch (cfg ~journal:j ()) (jobs_of specs) in
  (* resume over a fully-finished journal replays everything *)
  let r2, fleet2 =
    Supervisor.run_batch (cfg ~journal:j ~resume:true ()) (jobs_of specs)
  in
  Alcotest.(check (list string)) "replayed outputs byte-identical"
    (outputs r1) (outputs r2);
  Alcotest.(check int) "all replayed, none re-run" 3
    fleet2.Core.Metrics.replayed;
  Alcotest.(check int) "nothing executed" 0 fleet2.Core.Metrics.completed;
  Sys.remove j

let test_journal_tolerates_torn_tail () =
  let j = temp_path ".journal" in
  let specs = [ "wc"; "anagram" ] in
  let r1, _ = Supervisor.run_batch (cfg ~journal:j ()) (jobs_of specs) in
  (* simulate a torn write: chop the file mid-last-line *)
  let len = (Unix.stat j).Unix.st_size in
  let fd = Unix.openfile j [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (len - 7);
  Unix.close fd;
  let r2, fleet2 =
    Supervisor.run_batch (cfg ~journal:j ~resume:true ()) (jobs_of specs)
  in
  (* the torn record (job2's done line) is dropped; job2 re-runs and
     reproduces the same bytes *)
  Alcotest.(check (list string)) "same outputs after torn-tail recovery"
    (outputs r1) (outputs r2);
  Alcotest.(check int) "one job re-ran" 1 fleet2.Core.Metrics.completed;
  Sys.remove j

(* ------------------------------------------------------------------ *)
(* Overload controls: wire clamps, admission, deadlines, brownout,      *)
(* memory watchdog, drain                                               *)
(* ------------------------------------------------------------------ *)

let timeout_opt = Alcotest.(option (float 1e-9))

let test_wire_timeout_clamps () =
  (* a sub-millisecond timeout crosses the wire as 1 ms, never as
     "unlimited" (the failure mode a naive ms truncation would have) *)
  let tight =
    { Core.Budget.default with Core.Budget.timeout_s = Some 0.0004 }
  in
  let j = Job.make ~idx:1 ~budget:tight ~deadline_ms:750 "wc" in
  (match Job.of_wire (Job.to_wire j ~attempt:1 ~rung:0) with
  | Ok (j', attempt, rung) ->
      Alcotest.(check int) "attempt" 1 attempt;
      Alcotest.(check int) "rung" 0 rung;
      Alcotest.check timeout_opt "1 ms wire floor" (Some 0.001)
        j'.Job.budget.Core.Budget.timeout_s;
      Alcotest.(check (option int)) "deadline roundtrips" (Some 750)
        j'.Job.deadline_ms
  | Error e -> Alcotest.fail e);
  (* the rung-1 tight preset caps the timeout at 2 s... *)
  let ten = { Core.Budget.default with Core.Budget.timeout_s = Some 10.0 } in
  Alcotest.check timeout_opt "rung-1 caps 10 s at 2 s" (Some 2.0)
    (Job.budget_for_rung ten 1).Core.Budget.timeout_s;
  (* ...but never lengthens one already shorter *)
  let short = { Core.Budget.default with Core.Budget.timeout_s = Some 0.5 } in
  Alcotest.check timeout_opt "rung-1 keeps a shorter timeout" (Some 0.5)
    (Job.budget_for_rung short 1).Core.Budget.timeout_s

let shed_reason = function
  | Supervisor.Shed { reason; _ } -> reason
  | Supervisor.Done _ -> Alcotest.fail "expected shed, got done"
  | Supervisor.Quarantined _ -> Alcotest.fail "expected shed, got quarantine"

let test_admission_shed_deterministic () =
  (* one worker, queue bound 2, six jobs submitted in one burst: the
     jobs beyond capacity are shed, the same ones every run *)
  let run () =
    let results, fleet =
      Supervisor.run_batch
        (cfg ~workers:1 ~admission:(adm ~max_pending:2 ()) ())
        (jobs_of [ "wc"; "anagram"; "bc"; "li"; "wc"; "anagram" ])
    in
    let tag (j, o) =
      ( j.Job.id,
        match o with
        | Supervisor.Done _ -> "done"
        | Supervisor.Shed { output; _ } ->
            Alcotest.(check bool) "shed output is a shed record" true
              (contains output "\"status\":\"shed\"");
            "shed"
        | Supervisor.Quarantined _ -> "quarantined" )
    in
    (List.map tag results, fleet)
  in
  let tags1, fleet1 = run () in
  let tags2, _ = run () in
  Alcotest.(check (list (pair string string)))
    "shed decisions deterministic across runs" tags1 tags2;
  Alcotest.(check (list (pair string string)))
    "first two admitted, overflow shed"
    [
      ("job1", "done"); ("job2", "done"); ("job3", "shed"); ("job4", "shed");
      ("job5", "shed"); ("job6", "shed");
    ]
    tags1;
  Alcotest.(check int) "shed counter" 4 fleet1.Core.Metrics.shed;
  Alcotest.(check bool) "queue peak recorded" true
    (fleet1.Core.Metrics.queue_peak >= 2);
  Alcotest.(check bool) "latencies recorded for answered jobs" true
    (List.length fleet1.Core.Metrics.latencies_ms >= 2)

let test_deadline_expires_in_queue () =
  (* job1 occupies the only worker (burst fault holds it ~200 ms);
     job2's 50 ms deadline expires while it waits in the queue *)
  let results, fleet =
    Supervisor.run_batch
      (cfg ~workers:1 ~faults:(plan "burst@job1") ())
      [ Job.make ~idx:1 "wc"; Job.make ~idx:2 ~deadline_ms:50 "anagram" ]
  in
  let reason = shed_reason (find_outcome results "job2") in
  Alcotest.(check bool) "reason says expired while queued" true
    (contains reason "deadline" && contains reason "queued");
  Alcotest.(check bool) "job1 unaffected" true
    (outcome_done (find_outcome results "job1"));
  Alcotest.(check int) "deadline_expired counter" 1
    fleet.Core.Metrics.deadline_expired;
  Alcotest.(check int) "counted in shed too" 1 fleet.Core.Metrics.shed

let test_deadline_bounds_running_job () =
  (* the worker hangs (immune to the in-worker budget timeout); the
     300 ms request deadline — not the 60 s job timeout — kills it *)
  let t0 = Unix.gettimeofday () in
  let results, fleet =
    Supervisor.run_batch
      (cfg ~workers:1 ~job_timeout_ms:60_000 ~faults:(plan "hang@job1") ())
      [ Job.make ~idx:1 ~deadline_ms:300 "wc" ]
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "killed by the deadline, not the job timeout" true
    (elapsed < 10.0);
  let reason = shed_reason (find_outcome results "job1") in
  Alcotest.(check bool) "reason says expired while running" true
    (contains reason "deadline" && contains reason "running");
  Alcotest.(check int) "deadline_expired counter" 1
    fleet.Core.Metrics.deadline_expired

let test_brownout_ladder_state_machine () =
  let a =
    Admission.create
      {
        Admission.max_pending = None;
        high_watermark = 2;
        low_watermark = 1;
        brownout_ticks = 3;
        max_rung = 2;
      }
  in
  let steady = function `Steady -> true | _ -> false in
  (* pressure must be sustained: two high ticks then a calm one reset
     the streak *)
  Alcotest.(check bool) "tick 1 high" true (steady (Admission.tick a ~depth:5));
  Alcotest.(check bool) "tick 2 high" true (steady (Admission.tick a ~depth:5));
  Alcotest.(check bool) "calm tick resets" true
    (steady (Admission.tick a ~depth:0));
  Alcotest.(check int) "still rung 0" 0 (Admission.rung a);
  (* three consecutive high ticks escalate one rung at a time *)
  ignore (Admission.tick a ~depth:5);
  ignore (Admission.tick a ~depth:5);
  (match Admission.tick a ~depth:5 with
  | `Escalated 1 -> ()
  | _ -> Alcotest.fail "expected escalation to rung 1");
  ignore (Admission.tick a ~depth:5);
  ignore (Admission.tick a ~depth:5);
  (match Admission.tick a ~depth:5 with
  | `Escalated 2 -> ()
  | _ -> Alcotest.fail "expected escalation to rung 2");
  (* capped at max_rung: more pressure changes nothing *)
  ignore (Admission.tick a ~depth:9);
  ignore (Admission.tick a ~depth:9);
  Alcotest.(check bool) "capped at max rung" true
    (steady (Admission.tick a ~depth:9));
  Alcotest.(check int) "rung 2" 2 (Admission.rung a);
  (* sustained calm steps back down, also one rung at a time *)
  ignore (Admission.tick a ~depth:1);
  ignore (Admission.tick a ~depth:1);
  (match Admission.tick a ~depth:0 with
  | `Stepped_down 1 -> ()
  | _ -> Alcotest.fail "expected step down to rung 1");
  ignore (Admission.tick a ~depth:0);
  ignore (Admission.tick a ~depth:1);
  (match Admission.tick a ~depth:1 with
  | `Stepped_down 0 -> ()
  | _ -> Alcotest.fail "expected step down to rung 0");
  Alcotest.(check int) "back at rung 0" 0 (Admission.rung a)

let test_brownout_degrades_dispatches () =
  (* six slow jobs through one worker with an aggressive ladder: once
     the queue has sat above the watermark, later dispatches start at a
     brownout rung — degraded on their first attempt *)
  let results, fleet =
    Supervisor.run_batch
      (cfg ~workers:1
         ~admission:(adm ~high:1 ~low:0 ~ticks:1 ())
         ~faults:
           (plan
              "burst@job1,burst@job2,burst@job3,burst@job4,burst@job5,burst@job6")
         ())
      (jobs_of [ "wc"; "anagram"; "bc"; "li"; "wc"; "anagram" ])
  in
  Alcotest.(check int) "all answered" 6 (List.length results);
  Alcotest.(check bool) "ladder escalated" true
    (fleet.Core.Metrics.brownout_escalations >= 1);
  Alcotest.(check bool) "max brownout rung recorded" true
    (fleet.Core.Metrics.brownout_max_rung >= 1);
  let first_attempt_degraded =
    List.exists
      (fun (_, o) ->
        match o with
        | Supervisor.Done { attempt = 1; rung; _ } -> rung > 0
        | _ -> false)
      results
  in
  Alcotest.(check bool) "some job ran degraded on its first attempt" true
    first_attempt_degraded

let test_rss_watchdog_kills_and_retries () =
  (* attempt 1 allocates and holds ~48 MB then spins; the watchdog must
     SIGKILL it at the 40 MB cap, and the retry (no fault) succeeds *)
  let results, fleet =
    Supervisor.run_batch
      (cfg ~workers:1 ~faults:(plan "allochold@job1#1") ~worker_max_rss_mb:40
         ~job_timeout_ms:60_000 ())
      (jobs_of [ "wc" ])
  in
  (match find_outcome results "job1" with
  | Supervisor.Done { attempt; _ } ->
      Alcotest.(check int) "recovered on attempt 2" 2 attempt
  | _ -> Alcotest.fail "job1 should recover after the RSS kill");
  Alcotest.(check bool) "rss kill counted" true
    (fleet.Core.Metrics.rss_kills >= 1)

let test_slowread_response_reassembled () =
  (* the worker dribbles its response a few bytes at a time; the
     supervisor's buffered reader must reassemble it, not truncate *)
  let results, fleet =
    Supervisor.run_batch
      (cfg ~workers:1 ~faults:(plan "slowread@job1") ())
      (jobs_of [ "wc" ])
  in
  Alcotest.(check bool) "job done despite dribbled response" true
    (outcome_done (find_outcome results "job1"));
  Alcotest.(check int) "no crashes" 0 fleet.Core.Metrics.crashes

let test_drain_completes_inflight_sheds_pending () =
  let j = temp_path ".journal" in
  let c = cfg ~workers:1 ~faults:(plan "burst@job1") ~journal:j () in
  let t = Supervisor.create c in
  Supervisor.submit t (Job.make ~idx:1 "wc");
  Supervisor.submit t (Job.make ~idx:2 "anagram");
  (* one step dispatches job1; job2 is still queued when drain hits *)
  ignore (Supervisor.step t);
  Supervisor.request_drain t;
  Supervisor.drain t;
  let results = Supervisor.results t in
  let fleet = Supervisor.fleet t in
  Supervisor.shutdown t;
  Alcotest.(check bool) "in-flight job finished" true
    (outcome_done (find_outcome results "job1"));
  let reason = shed_reason (find_outcome results "job2") in
  Alcotest.(check bool) "queued job shed by the drain" true
    (contains reason "drain");
  Alcotest.(check int) "one shed" 1 fleet.Core.Metrics.shed;
  Alcotest.(check bool) "drain marker journaled" true
    (file_contains j "\tdraining");
  Alcotest.(check bool) "drained summary journaled" true
    (file_contains j "\tdrained\t");
  Alcotest.(check bool) "shed journaled, not dropped" true
    (file_contains j "\tshed\tjob2\t");
  Sys.remove j

let test_drain_deadline_cuts_off_hung_inflight () =
  let t0 = Unix.gettimeofday () in
  let c =
    cfg ~workers:1 ~faults:(plan "hang@job1") ~job_timeout_ms:60_000
      ~drain_grace_ms:300 ()
  in
  let t = Supervisor.create c in
  Supervisor.submit t (Job.make ~idx:1 "wc");
  ignore (Supervisor.step t);
  Supervisor.request_drain t;
  Supervisor.drain t;
  let results = Supervisor.results t in
  let fleet = Supervisor.fleet t in
  Supervisor.shutdown t;
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "drain bounded by its grace period" true
    (elapsed < 10.0);
  let reason = shed_reason (find_outcome results "job1") in
  Alcotest.(check bool) "cut-off job shed with a drain reason" true
    (contains reason "drain");
  Alcotest.(check int) "drain_incomplete counted" 1
    fleet.Core.Metrics.drain_incomplete

let test_shed_replayed_byte_identical () =
  let j = temp_path ".journal" in
  let specs = [ "wc"; "anagram"; "bc" ] in
  (* queue bound 1: job1 runs, job2 and job3 are shed — and journaled *)
  let r1, fleet1 =
    Supervisor.run_batch
      (cfg ~workers:1 ~admission:(adm ~max_pending:1 ()) ~journal:j ())
      (jobs_of specs)
  in
  Alcotest.(check int) "two shed" 2 fleet1.Core.Metrics.shed;
  let r2, fleet2 =
    Supervisor.run_batch
      (cfg ~workers:1 ~admission:(adm ~max_pending:1 ()) ~journal:j
         ~resume:true ())
      (jobs_of specs)
  in
  Alcotest.(check (list string)) "shed outcomes replay byte-identically"
    (outputs r1) (outputs r2);
  Alcotest.(check int) "all three replayed" 3 fleet2.Core.Metrics.replayed;
  Alcotest.(check int) "nothing re-ran" 0 fleet2.Core.Metrics.completed;
  Alcotest.(check int) "replayed sheds not double-counted" 0
    fleet2.Core.Metrics.shed;
  Sys.remove j

let test_percentiles () =
  let xs = [ 50.0; 10.0; 40.0; 30.0; 20.0 ] in
  Alcotest.(check (float 1e-9)) "p50 nearest rank" 30.0
    (Core.Metrics.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p99 is the max here" 50.0
    (Core.Metrics.percentile xs 99.0);
  Alcotest.(check (float 1e-9)) "empty sample" 0.0
    (Core.Metrics.percentile [] 50.0)

(* ------------------------------------------------------------------ *)
(* kill -9 the real supervisor mid-batch, resume, compare               *)
(* ------------------------------------------------------------------ *)

let exe = "../bin/structcast.exe"

let batch_args ?faults ?(timeout = "60000") ~journal () =
  [
    "batch"; "wc"; "anagram"; "bc"; "li"; "--workers"; "2"; "--backoff-ms";
    "1"; "--job-timeout-ms"; timeout; "--journal"; journal;
  ]
  @ (match faults with Some f -> [ "--faults"; f ] | None -> [])

let run_to_string args =
  let cmd = Filename.quote_command exe args in
  let ic = Unix.open_process_in (cmd ^ " 2>/dev/null") in
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  ignore (Unix.close_process_in ic);
  Buffer.contents buf

let test_kill9_resume_byte_identical () =
  let journal = temp_path ".journal" in
  let out = temp_path ".out" in
  (* interrupted run: job4 hangs forever (job timeout far away), so the
     batch is guaranteed to be mid-flight when we SIGKILL *)
  let out_fd =
    Unix.openfile out [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let argv =
    Array.of_list (exe :: batch_args ~faults:"hang@job4" ~journal ())
  in
  let pid = Unix.create_process exe argv Unix.stdin out_fd Unix.stderr in
  Unix.close out_fd;
  (* wait until the first three jobs are journaled as done *)
  let deadline = Unix.gettimeofday () +. 20.0 in
  let rec wait_done () =
    if
      file_contains journal "\tdone\tjob3\t"
      && file_contains journal "\tdone\tjob1\t"
      && file_contains journal "\tdone\tjob2\t"
    then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "interrupted batch never reached job3"
    else begin
      Unix.sleepf 0.05;
      wait_done ()
    end
  in
  wait_done ();
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  (* resume (no faults): only job4 should run *)
  let resumed = run_to_string (batch_args ~journal () @ [ "--resume" ]) in
  (* uninterrupted reference run, fresh journal *)
  let journal2 = temp_path ".journal" in
  let fresh = run_to_string (batch_args ~journal:journal2 ()) in
  Alcotest.(check string) "resumed output byte-identical to uninterrupted"
    fresh resumed;
  (* and the journal proves jobs 1-3 were replayed, not re-run: exactly
     one running record each *)
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (id ^ " has a done record")
        true
        (file_contains journal ("\tdone\t" ^ id ^ "\t")))
    [ "job1"; "job2"; "job3"; "job4" ];
  Sys.remove journal;
  Sys.remove journal2;
  Sys.remove out

(* ------------------------------------------------------------------ *)
(* The real binary under signals: SIGTERM drain, kill -9 mid-drain,     *)
(* watch EOF                                                            *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let count_occurrences s sub =
  let n = String.length sub in
  let rec go i acc =
    if n = 0 || i + n > String.length s then acc
    else if String.sub s i n = sub then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let wait_until ?(timeout = 20.0) msg pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then Alcotest.fail msg
    else begin
      Unix.sleepf 0.05;
      go ()
    end
  in
  go ()

let spawn_serve args =
  let in_r, in_w = Unix.pipe () in
  let out_r, out_w = Unix.pipe () in
  let argv = Array.of_list (exe :: "serve" :: args) in
  let pid = Unix.create_process exe argv in_r out_w Unix.stderr in
  Unix.close in_r;
  Unix.close out_w;
  (pid, in_w, out_r)

let write_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0

let slurp_fd fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 4096 with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ();
  Buffer.contents buf

let terminal_records jtext id =
  count_occurrences jtext ("\tdone\t" ^ id ^ "\t")
  + count_occurrences jtext ("\tshed\t" ^ id ^ "\t")
  + count_occurrences jtext ("\tquarantined\t" ^ id ^ "\t")

let test_serve_sigterm_drains_exit_5 () =
  let journal = temp_path ".journal" in
  let pid, in_w, out_r =
    spawn_serve
      [
        "--workers"; "1"; "--journal"; journal; "--faults"; "burst@job1";
        "--backoff-ms"; "1";
      ]
  in
  write_all in_w "wc\nanagram cis\n";
  wait_until "serve never started job1" (fun () ->
      file_contains journal "\trunning\tjob1\t");
  Unix.kill pid Sys.sigterm;
  let out = slurp_fd out_r in
  Unix.close out_r;
  Unix.close in_w;
  let _, status = Unix.waitpid [] pid in
  (match status with
  | Unix.WEXITED 5 -> ()
  | Unix.WEXITED n ->
      Alcotest.failf "drained serve should exit 5, exited %d" n
  | _ -> Alcotest.fail "drained serve did not exit normally");
  let jtext = read_file journal in
  Alcotest.(check bool) "drain marker journaled" true
    (contains jtext "\tdraining");
  (* zero lost requests: each submitted request has exactly one
     journaled terminal record, drained or not *)
  List.iter
    (fun id ->
      Alcotest.(check int)
        (id ^ " has exactly one terminal record")
        1
        (terminal_records jtext id))
    [ "job1"; "job2" ];
  Alcotest.(check bool) "the in-flight response was printed" true
    (contains out "\"id\":\"job1\"");
  Sys.remove journal

let test_kill9_mid_drain_resume_byte_identical () =
  let journal = temp_path ".journal" in
  (* job1 hangs and the drain deadline is far away, so after SIGTERM the
     process sits mid-drain (queued jobs shed, job1 still in flight) —
     that is when we SIGKILL it *)
  let pid, in_w, out_r =
    spawn_serve
      [
        "--workers"; "1"; "--journal"; journal; "--faults"; "hang@job1";
        "--job-timeout-ms"; "60000"; "--drain-deadline-ms"; "60000";
        "--backoff-ms"; "1";
      ]
  in
  write_all in_w "wc\nanagram\nbc\n";
  wait_until "serve never started job1" (fun () ->
      file_contains journal "\trunning\tjob1\t");
  Unix.kill pid Sys.sigterm;
  wait_until "drain never shed the queued jobs" (fun () ->
      file_contains journal "\tshed\tjob3\t");
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  Unix.close in_w;
  Unix.close out_r;
  (* resume over the same journal (no fault this time): the sheds replay
     byte-for-byte, only the unfinished job re-runs — and doing it twice
     must give identical bytes *)
  let resume_args =
    [
      "batch"; "wc"; "anagram"; "bc"; "--workers"; "1"; "--backoff-ms"; "1";
      "--journal"; journal; "--resume";
    ]
  in
  let r1 = run_to_string resume_args in
  let r2 = run_to_string resume_args in
  Alcotest.(check string) "resume after kill -9 mid-drain is deterministic"
    r1 r2;
  Alcotest.(check bool) "unfinished job re-ran" true
    (contains r1 "\"id\":\"job1\"");
  Alcotest.(check bool) "shed outcomes replayed" true
    (contains r1 "\"id\":\"job2\"" && contains r1 "\"id\":\"job3\""
    && contains r1 "\"status\":\"shed\"");
  let jtext = read_file journal in
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (id ^ " reached a terminal record")
        true
        (terminal_records jtext id >= 1))
    [ "job1"; "job2"; "job3" ];
  Sys.remove journal

let test_watch_eof_writes_final_record () =
  let journal = temp_path ".journal" in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let out = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let argv = [| exe; "watch"; "wc"; "--journal"; journal |] in
  let pid = Unix.create_process exe argv devnull out Unix.stderr in
  Unix.close devnull;
  Unix.close out;
  let _, status = Unix.waitpid [] pid in
  (match status with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> Alcotest.failf "watch on EOF should exit 0, got %d" n
  | _ -> Alcotest.fail "watch did not exit normally");
  Alcotest.(check bool) "final watch-done record written" true
    (file_contains journal "\tdone\twatch-done\t");
  Alcotest.(check bool) "session summary in the final record" true
    (file_contains journal "session-closed");
  Sys.remove journal

let tc = Helpers.tc

let in_process =
  [
    tc "clean batch completes in order" test_clean_batch;
    tc "crash retried with rung escalation" test_crash_retried_then_done;
    tc "persistent crash quarantined at attempt cap"
      test_crash_always_quarantines;
    tc "unexpected worker exit contained" test_unexpected_exit_contained;
    tc "hang killed at job timeout and quarantined"
      test_hang_killed_and_quarantined;
    tc "raise/allocbomb contained inside worker"
      test_raise_and_allocbomb_contained_in_worker;
    tc "malformed input retried then quarantined"
      test_malformed_input_quarantined;
    tc "per-input circuit breaker fails fast" test_circuit_breaker;
    tc "journal replay is byte-identical" test_journal_replay_identical;
    tc "journal tolerates a torn trailing line"
      test_journal_tolerates_torn_tail;
    tc "wire timeout clamps: 1 ms floor, rung-1 2 s cap"
      test_wire_timeout_clamps;
    tc "admission control sheds deterministically"
      test_admission_shed_deterministic;
    tc "request deadline expires while queued" test_deadline_expires_in_queue;
    tc "request deadline bounds a running job"
      test_deadline_bounds_running_job;
    tc "brownout ladder escalates and steps down"
      test_brownout_ladder_state_machine;
    tc "brownout degrades dispatches under pressure"
      test_brownout_degrades_dispatches;
    tc "memory watchdog kills and the retry recovers"
      test_rss_watchdog_kills_and_retries;
    tc "dribbled worker response reassembled" test_slowread_response_reassembled;
    tc "drain completes in-flight, sheds pending"
      test_drain_completes_inflight_sheds_pending;
    tc "drain deadline cuts off a hung in-flight job"
      test_drain_deadline_cuts_off_hung_inflight;
    tc "shed outcomes replay byte-identically" test_shed_replayed_byte_identical;
    tc "nearest-rank percentiles" test_percentiles;
  ]

let suite =
  if Sys.file_exists exe then
    in_process
    @ [
        tc "kill -9 mid-batch, resume byte-identical"
          test_kill9_resume_byte_identical;
        tc "serve: SIGTERM drains, exits 5, loses nothing"
          test_serve_sigterm_drains_exit_5;
        tc "serve: kill -9 mid-drain, resume byte-identical"
          test_kill9_mid_drain_resume_byte_identical;
        tc "watch: clean EOF writes a final journal record"
          test_watch_eof_writes_final_record;
      ]
  else in_process
