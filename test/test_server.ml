(** Fault-injection tests for the crash-contained supervisor.

    Containment is proved, not hoped for: workers are told to crash,
    hang, exit, raise, and alloc-bomb on exact (job, attempt) pairs, and
    the tests assert the supervisor survives, retries per policy
    (backoff + degradation-rung escalation), and quarantines rather than
    loops. The kill -9 test drives the real binary: SIGKILL the
    supervisor mid-batch, resume from the journal, and require the final
    output to be byte-identical to an uninterrupted run. *)

open Server

let cfg ?(workers = 2) ?(attempts = 3) ?(job_timeout_ms = 5_000)
    ?(faults = Faults.none) ?journal ?(resume = false) () :
    Supervisor.config =
  {
    Supervisor.workers;
    max_attempts = attempts;
    job_timeout_s = float_of_int job_timeout_ms /. 1000.;
    backoff_base_ms = 1;
    faults;
    journal_path = journal;
    resume;
  }

let jobs_of specs = List.mapi (fun i s -> Job.make ~idx:(i + 1) s) specs

let plan s =
  match Faults.parse s with Ok p -> p | Error e -> Alcotest.fail e

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let outcome_done = function Supervisor.Done _ -> true | _ -> false

let find_outcome results id =
  match
    List.find_opt (fun ((j : Job.t), _) -> j.Job.id = id) results
  with
  | Some (_, o) -> o
  | None -> Alcotest.failf "no outcome for %s" id

let temp_path name =
  let p = Filename.temp_file "structcast-test" name in
  Sys.remove p;
  p

(* ------------------------------------------------------------------ *)
(* Containment                                                         *)
(* ------------------------------------------------------------------ *)

let test_clean_batch () =
  let results, fleet =
    Supervisor.run_batch (cfg ()) (jobs_of [ "wc"; "anagram"; "bc"; "li" ])
  in
  Alcotest.(check int) "all jobs have outcomes" 4 (List.length results);
  Alcotest.(check bool) "all done" true
    (List.for_all (fun (_, o) -> outcome_done o) results);
  Alcotest.(check int) "fleet completed" 4 fleet.Core.Metrics.completed;
  Alcotest.(check int) "no crashes" 0 fleet.Core.Metrics.crashes;
  (* submission order is preserved in results *)
  Alcotest.(check (list string)) "order" [ "job1"; "job2"; "job3"; "job4" ]
    (List.map (fun ((j : Job.t), _) -> j.Job.id) results)

let test_crash_retried_then_done () =
  let results, fleet =
    Supervisor.run_batch
      (cfg ~faults:(plan "crash@job2#1") ())
      (jobs_of [ "wc"; "anagram" ])
  in
  (match find_outcome results "job2" with
  | Supervisor.Done { attempt; rung; degraded; _ } ->
      Alcotest.(check int) "second attempt" 2 attempt;
      Alcotest.(check int) "escalated one rung" 1 rung;
      Alcotest.(check bool) "rung > 0 counts as degraded" true degraded
  | Supervisor.Quarantined _ -> Alcotest.fail "job2 should have recovered");
  Alcotest.(check int) "one crash" 1 fleet.Core.Metrics.crashes;
  Alcotest.(check int) "one retry" 1 fleet.Core.Metrics.retries;
  Alcotest.(check int) "max rung" 1 fleet.Core.Metrics.max_rung;
  Alcotest.(check bool) "job1 untouched" true
    (outcome_done (find_outcome results "job1"))

let test_crash_always_quarantines () =
  let results, fleet =
    Supervisor.run_batch
      (cfg ~faults:(plan "crash@job1") ())
      (jobs_of [ "wc"; "anagram" ])
  in
  (match find_outcome results "job1" with
  | Supervisor.Quarantined { attempts; reason; _ } ->
      Alcotest.(check int) "attempt cap honored, no looping" 3 attempts;
      Alcotest.(check bool) "reason names the signal" true
        (contains reason "SIGABRT" || contains reason "signal")
  | Supervisor.Done _ -> Alcotest.fail "job1 should be quarantined");
  Alcotest.(check int) "three crashes" 3 fleet.Core.Metrics.crashes;
  Alcotest.(check int) "quarantined" 1 fleet.Core.Metrics.quarantined;
  (* the supervisor survived and other jobs completed *)
  Alcotest.(check bool) "job2 done" true
    (outcome_done (find_outcome results "job2"))

let test_unexpected_exit_contained () =
  let _, fleet =
    Supervisor.run_batch
      (cfg ~faults:(plan "exit@job1#1") ())
      (jobs_of [ "wc" ])
  in
  Alcotest.(check int) "exit counted as crash" 1 fleet.Core.Metrics.crashes;
  Alcotest.(check int) "completed on retry" 1 fleet.Core.Metrics.completed

let test_hang_killed_and_quarantined () =
  let results, fleet =
    Supervisor.run_batch
      (cfg ~attempts:2 ~job_timeout_ms:300 ~faults:(plan "hang@job1") ())
      (jobs_of [ "wc"; "anagram" ])
  in
  (match find_outcome results "job1" with
  | Supervisor.Quarantined { reason; _ } ->
      Alcotest.(check bool) "reason says hang" true
        (contains reason "hang")
  | Supervisor.Done _ -> Alcotest.fail "hung job should be quarantined");
  Alcotest.(check int) "both attempts hung" 2 fleet.Core.Metrics.hangs;
  Alcotest.(check bool) "sibling unaffected" true
    (outcome_done (find_outcome results "job2"))

let test_raise_and_allocbomb_contained_in_worker () =
  (* these faults are caught by the worker itself: a clean error
     response, no process death *)
  let _, fleet =
    Supervisor.run_batch
      (cfg ~faults:(plan "raise@job1#1,allocbomb@job2#1") ())
      (jobs_of [ "wc"; "anagram" ])
  in
  Alcotest.(check int) "no process deaths" 0 fleet.Core.Metrics.crashes;
  Alcotest.(check int) "two clean errors" 2 fleet.Core.Metrics.job_errors;
  Alcotest.(check int) "both recovered" 2 fleet.Core.Metrics.completed

let test_malformed_input_quarantined () =
  let results, fleet =
    Supervisor.run_batch (cfg ()) (jobs_of [ "/no/such/input.c"; "wc" ])
  in
  (match find_outcome results "job1" with
  | Supervisor.Quarantined { attempts; _ } ->
      Alcotest.(check int) "retried per policy, then stopped" 3 attempts
  | Supervisor.Done _ -> Alcotest.fail "bogus input should be quarantined");
  Alcotest.(check int) "errors counted" 3 fleet.Core.Metrics.job_errors;
  Alcotest.(check bool) "supervisor alive, sibling done" true
    (outcome_done (find_outcome results "job2"))

let test_circuit_breaker () =
  (* same bad input twice: the second job must fail fast once the first
     quarantine opens the breaker, not burn its own attempts *)
  let results, fleet =
    Supervisor.run_batch
      (cfg ~workers:1 ())
      (jobs_of [ "/no/such/input.c"; "/no/such/input.c"; "wc" ])
  in
  Alcotest.(check int) "breaker skipped at least one dispatch" 1
    fleet.Core.Metrics.breaker_skips;
  (match find_outcome results "job2" with
  | Supervisor.Quarantined { reason; _ } ->
      Alcotest.(check bool) "reason names the breaker" true
        (contains reason "circuit breaker")
  | Supervisor.Done _ -> Alcotest.fail "job2 should be breaker-quarantined");
  Alcotest.(check bool) "good input still analyzed" true
    (outcome_done (find_outcome results "job3"))

(* ------------------------------------------------------------------ *)
(* Journal: determinism and resume                                     *)
(* ------------------------------------------------------------------ *)

let outputs results =
  List.map
    (fun (_, o) ->
      match o with
      | Supervisor.Done { output; _ } -> output
      | Supervisor.Quarantined { output; _ } -> output)
    results

let test_journal_replay_identical () =
  let j = temp_path ".journal" in
  let specs = [ "wc"; "anagram"; "bc" ] in
  let r1, _ = Supervisor.run_batch (cfg ~journal:j ()) (jobs_of specs) in
  (* resume over a fully-finished journal replays everything *)
  let r2, fleet2 =
    Supervisor.run_batch (cfg ~journal:j ~resume:true ()) (jobs_of specs)
  in
  Alcotest.(check (list string)) "replayed outputs byte-identical"
    (outputs r1) (outputs r2);
  Alcotest.(check int) "all replayed, none re-run" 3
    fleet2.Core.Metrics.replayed;
  Alcotest.(check int) "nothing executed" 0 fleet2.Core.Metrics.completed;
  Sys.remove j

let test_journal_tolerates_torn_tail () =
  let j = temp_path ".journal" in
  let specs = [ "wc"; "anagram" ] in
  let r1, _ = Supervisor.run_batch (cfg ~journal:j ()) (jobs_of specs) in
  (* simulate a torn write: chop the file mid-last-line *)
  let len = (Unix.stat j).Unix.st_size in
  let fd = Unix.openfile j [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd (len - 7);
  Unix.close fd;
  let r2, fleet2 =
    Supervisor.run_batch (cfg ~journal:j ~resume:true ()) (jobs_of specs)
  in
  (* the torn record (job2's done line) is dropped; job2 re-runs and
     reproduces the same bytes *)
  Alcotest.(check (list string)) "same outputs after torn-tail recovery"
    (outputs r1) (outputs r2);
  Alcotest.(check int) "one job re-ran" 1 fleet2.Core.Metrics.completed;
  Sys.remove j

(* ------------------------------------------------------------------ *)
(* kill -9 the real supervisor mid-batch, resume, compare               *)
(* ------------------------------------------------------------------ *)

let exe = "../bin/structcast.exe"

let batch_args ?faults ?(timeout = "60000") ~journal () =
  [
    "batch"; "wc"; "anagram"; "bc"; "li"; "--workers"; "2"; "--backoff-ms";
    "1"; "--job-timeout-ms"; timeout; "--journal"; journal;
  ]
  @ (match faults with Some f -> [ "--faults"; f ] | None -> [])

let run_to_string args =
  let cmd = Filename.quote_command exe args in
  let ic = Unix.open_process_in (cmd ^ " 2>/dev/null") in
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  ignore (Unix.close_process_in ic);
  Buffer.contents buf

let file_contains path needle =
  Sys.file_exists path
  &&
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  contains s needle

let test_kill9_resume_byte_identical () =
  let journal = temp_path ".journal" in
  let out = temp_path ".out" in
  (* interrupted run: job4 hangs forever (job timeout far away), so the
     batch is guaranteed to be mid-flight when we SIGKILL *)
  let out_fd =
    Unix.openfile out [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let argv =
    Array.of_list (exe :: batch_args ~faults:"hang@job4" ~journal ())
  in
  let pid = Unix.create_process exe argv Unix.stdin out_fd Unix.stderr in
  Unix.close out_fd;
  (* wait until the first three jobs are journaled as done *)
  let deadline = Unix.gettimeofday () +. 20.0 in
  let rec wait_done () =
    if
      file_contains journal "\tdone\tjob3\t"
      && file_contains journal "\tdone\tjob1\t"
      && file_contains journal "\tdone\tjob2\t"
    then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.fail "interrupted batch never reached job3"
    else begin
      Unix.sleepf 0.05;
      wait_done ()
    end
  in
  wait_done ();
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  (* resume (no faults): only job4 should run *)
  let resumed = run_to_string (batch_args ~journal () @ [ "--resume" ]) in
  (* uninterrupted reference run, fresh journal *)
  let journal2 = temp_path ".journal" in
  let fresh = run_to_string (batch_args ~journal:journal2 ()) in
  Alcotest.(check string) "resumed output byte-identical to uninterrupted"
    fresh resumed;
  (* and the journal proves jobs 1-3 were replayed, not re-run: exactly
     one running record each *)
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (id ^ " has a done record")
        true
        (file_contains journal ("\tdone\t" ^ id ^ "\t")))
    [ "job1"; "job2"; "job3"; "job4" ];
  Sys.remove journal;
  Sys.remove journal2;
  Sys.remove out

let tc = Helpers.tc

let in_process =
  [
    tc "clean batch completes in order" test_clean_batch;
    tc "crash retried with rung escalation" test_crash_retried_then_done;
    tc "persistent crash quarantined at attempt cap"
      test_crash_always_quarantines;
    tc "unexpected worker exit contained" test_unexpected_exit_contained;
    tc "hang killed at job timeout and quarantined"
      test_hang_killed_and_quarantined;
    tc "raise/allocbomb contained inside worker"
      test_raise_and_allocbomb_contained_in_worker;
    tc "malformed input retried then quarantined"
      test_malformed_input_quarantined;
    tc "per-input circuit breaker fails fast" test_circuit_breaker;
    tc "journal replay is byte-identical" test_journal_replay_identical;
    tc "journal tolerates a torn trailing line"
      test_journal_tolerates_torn_tail;
  ]

let suite =
  if Sys.file_exists exe then
    in_process
    @ [ tc "kill -9 mid-batch, resume byte-identical"
          test_kill9_resume_byte_identical ]
  else in_process
