(** Unit tests for the type checker: expression typing, implicit
    conversions, identifier resolution, and error reporting. *)

open Cfront

let check_program src : Tast.program =
  Typecheck.check ~file:"<tc>" (Parser.parse_string ~file:"<tc>" src)

(* type of the expression in "probe = <expr>;" inside main *)
let type_of_probe src : Ctype.t =
  let prog = check_program src in
  let f =
    match Tast.defined_fun prog "main" with
    | Some f -> f
    | None -> Alcotest.fail "no main"
  in
  let rec find_stmt (stmts : Tast.tstmt list) : Ctype.t option =
    List.find_map
      (fun (s : Tast.tstmt) ->
        match s.Tast.ts with
        | Tast.TSexpr { Tast.te = Tast.Tassign (None, _, rhs); _ } ->
            Some rhs.Tast.tty
        | Tast.TSblock ss -> find_stmt ss
        | _ -> None)
      stmts
  in
  match find_stmt f.Tast.fbody with
  | Some t -> t
  | None -> Alcotest.fail "no probe assignment found"

let check_ty name src expected =
  Alcotest.(check string) name expected (Ctype.to_string (type_of_probe src))

let test_arith_types () =
  check_ty "int addition" "int a, b, probe; void main(void){ probe = a + b; }"
    "int";
  check_ty "usual conversions"
    "int a; double d, probe; void main(void){ probe = a + d; }" "double";
  check_ty "promotion" "char c; int probe; void main(void){ probe = c + c; }"
    "int";
  check_ty "comparison is int"
    "double d; int probe; void main(void){ probe = d < 2.0; }" "int";
  check_ty "long wins"
    "long l; int i, probe; void main(void){ probe = l + i; }" "long"

let test_pointer_types () =
  check_ty "addr-of" "int x, *probe; void main(void){ probe = &x; }" "int*";
  check_ty "deref" "int *p, probe; void main(void){ probe = *p; }" "int";
  check_ty "ptr plus int"
    "int *p, *probe; void main(void){ probe = p + 3; }" "int*";
  check_ty "ptr minus ptr"
    "int *p, *q; long probe; void main(void){ probe = p - q; }" "long";
  check_ty "array decays in value position"
    "int a[5], *probe; void main(void){ probe = a + 1; }" "int*";
  check_ty "subscript" "int a[5], probe; void main(void){ probe = a[2]; }" "int"

let test_member_access () =
  check_ty "dot"
    "struct S { int f; } s; int probe; void main(void){ probe = s.f; }" "int";
  check_ty "arrow"
    "struct S { char *g; } *p; char *probe; void main(void){ probe = p->g; }"
    "char*";
  check_ty "nested"
    "struct In { int v; }; struct Out { struct In i; } o; int probe;\n\
     void main(void){ probe = o.i.v; }"
    "int"

let test_calls () =
  check_ty "direct call"
    "char *f(int x); char *probe; void main(void){ probe = f(3); }" "char*";
  check_ty "through pointer"
    "int (*fp)(void); int probe; void main(void){ probe = fp(); }" "int";
  check_ty "explicit deref call"
    "int (*fp)(void); int probe; void main(void){ probe = (*fp)(); }" "int"

let test_sizeof_folded () =
  let prog =
    check_program "void main(void){ int n; n = sizeof(int); }"
  in
  let f = Option.get (Tast.defined_fun prog "main") in
  let found =
    List.exists
      (fun (s : Tast.tstmt) ->
        match s.Tast.ts with
        | Tast.TSexpr
            { Tast.te = Tast.Tassign (None, _, { Tast.te = Tast.Tconst_int 4L; _ }); _ }
          ->
            true
        | _ -> false)
      f.Tast.fbody
  in
  Alcotest.(check bool) "sizeof(int) = 4 under ilp32" true found

let test_implicit_function_warns () =
  let diags = Diag.create () in
  let src = "void main(void){ mystery(1); }" in
  let prog =
    Typecheck.check ~diags ~file:"<tc>"
      (Parser.parse_string ~diags ~file:"<tc>" src)
  in
  let warned =
    List.exists
      (fun (w : Diag.payload) ->
        String.length w.Diag.message > 0
        && String.sub w.Diag.message 0 8 = "implicit")
      (Diag.warnings diags)
  in
  Alcotest.(check bool) "warning emitted" true warned;
  Alcotest.(check bool) "recorded as extern" true
    (Tast.extern_fun prog "mystery" <> None)

let test_string_type () =
  check_ty "string literal" "char *probe; void main(void){ probe = \"abc\"; }"
    "char*"
  [@@warning "-32"]

let test_scopes () =
  (* inner declarations shadow outer ones; both must resolve *)
  let prog =
    check_program
      {|
        int x;
        void main(void) {
          int x;
          x = 1;
          {
            char x;
            x = 'a';
          }
        }
      |}
  in
  ignore prog

let expect_error name src =
  match check_program src with
  | exception Diag.Error _ -> ()
  | _ -> Alcotest.failf "%s: expected a type error" name

let test_errors () =
  expect_error "undeclared variable" "void main(void){ x = 1; }";
  expect_error "no such member"
    "struct S { int a; } s; void main(void){ s.b = 1; }";
  expect_error "member of non-struct" "int x; void main(void){ x.f = 1; }";
  expect_error "deref of non-pointer" "int x; void main(void){ *x = 1; }";
  expect_error "arrow on non-pointer"
    "struct S { int a; } s; void main(void){ s->a = 1; }";
  expect_error "call of non-function" "int x; void main(void){ x(); }";
  expect_error "conflicting globals" "int x; char *x;"

let suite =
  [
    Helpers.tc "arithmetic types" test_arith_types;
    Helpers.tc "pointer types" test_pointer_types;
    Helpers.tc "member access" test_member_access;
    Helpers.tc "calls" test_calls;
    Helpers.tc "sizeof folds" test_sizeof_folded;
    Helpers.tc "implicit function declarations warn" test_implicit_function_warns;
    Helpers.tc "scoping" test_scopes;
    Helpers.tc "type errors" test_errors;
  ]
