(** The incremental re-analysis engine's differential spine: for every
    edit, warm-starting the solved base must land on exactly the
    fixpoint a from-scratch solve of the (aligned) edited program
    computes — {!Core.Graph.equal}, bookkeeping-audit clean, and
    stats-free-JSON byte-identical — for all four framework instances
    and all three engines. Plus unit coverage for the differ's keying
    and the retraction fallback ladder. *)

open Cfront
open Norm
open Helpers

let all_ids = [ "collapse-always"; "collapse-on-cast"; "cis"; "offsets" ]
let engines = [ ("delta", `Delta); ("delta-nocycle", `Delta_nocycle); ("naive", `Naive) ]

let base_seed =
  match Sys.getenv_opt "STRUCTCAST_FUZZ_SEED" with
  | None | Some "" -> 1
  | Some s -> int_of_string (String.trim s)

let mk_result (solver : Core.Solver.t) : Core.Analysis.result =
  {
    Core.Analysis.solver;
    metrics = Core.Metrics.summarize solver;
    time_s = 0.;
    degraded = Core.Solver.degradations solver;
    diags = [];
  }

let stats_free_json ~name (solver : Core.Solver.t) : string =
  Core.Report.json_of_result ~timing:false ~solver_stats:false ~name
    (mk_result solver)

(** The oracle: [warm]'s state must be indistinguishable from a cold
    solve of the program it ended on. *)
let check_vs_scratch ~label ~engine ~id (warm : Core.Solver.t) =
  let scratch =
    Core.Solver.run ~engine ~strategy:(strategy id) warm.Core.Solver.prog
  in
  if not (Core.Graph.equal warm.Core.Solver.graph scratch.Core.Solver.graph)
  then
    Alcotest.failf "%s / %s / %s: warm fixpoint (%d edges) <> scratch (%d)"
      label id
      (match engine with
      | `Delta -> "delta"
      | `Delta_nocycle -> "delta-nocycle"
      | `Naive -> "naive"
      | `Delta_par _ -> "delta-par"
      | `Summary -> "summary")
      (Core.Graph.edge_count warm.Core.Solver.graph)
      (Core.Graph.edge_count scratch.Core.Solver.graph);
  (match Core.Graph.check_counts warm.Core.Solver.graph with
  | Some msg -> Alcotest.failf "%s / %s: audit after edit: %s" label id msg
  | None -> ());
  let jw = stats_free_json ~name:label warm in
  let js = stats_free_json ~name:label scratch in
  if jw <> js then
    Alcotest.failf "%s / %s: stats-free report differs:\n%s\n%s" label id jw js

(* ------------------------------------------------------------------ *)
(* Progdiff units                                                      *)
(* ------------------------------------------------------------------ *)

let src_base =
  {|
    struct S { int *f; int *g; } s;
    int x, y;
    int *p, *q;
    void main(void) {
      s.f = &x;
      p = s.f;
      q = &y;
    }
  |}

let src_edited =
  {|
    struct S { int *f; int *g; } s;
    int x, y;
    int *p, *q;
    void main(void) {
      s.f = &x;
      p = s.f;
      q = &y;
      q = &x;
    }
  |}

let test_diff_identity () =
  let base = compile src_base in
  let edited = compile src_base in
  let aligned, d = Incr.Progdiff.align ~base edited in
  Alcotest.(check int) "no added" 0 (List.length d.Incr.Progdiff.added);
  Alcotest.(check int) "no removed" 0 (List.length d.Incr.Progdiff.removed);
  Alcotest.(check int) "no added vars" 0 (List.length d.Incr.Progdiff.added_vars);
  Alcotest.(check int) "no removed vars" 0
    (List.length d.Incr.Progdiff.removed_vars);
  (* the aligned program IS the base program's statements and variables *)
  List.iter2
    (fun (a : Nast.stmt) (b : Nast.stmt) ->
      Alcotest.(check int) "stmt id reused" b.Nast.id a.Nast.id)
    (Nast.all_stmts aligned) (Nast.all_stmts base);
  List.iter2
    (fun (a : Cvar.t) (b : Cvar.t) ->
      Alcotest.(check int) "var reused" b.Cvar.vid a.Cvar.vid)
    aligned.Nast.pall_vars base.Nast.pall_vars

let test_diff_addition () =
  let base = compile src_base in
  let edited = compile src_edited in
  let _, d = Incr.Progdiff.align ~base edited in
  Alcotest.(check int) "one statement added" 1
    (List.length d.Incr.Progdiff.added);
  Alcotest.(check int) "none removed" 0 (List.length d.Incr.Progdiff.removed);
  (* the added statement's variables were remapped onto base variables *)
  let base_vids = List.map (fun v -> v.Cvar.vid) base.Nast.pall_vars in
  match (List.hd d.Incr.Progdiff.added).Nast.kind with
  | Nast.Addr (sg, ty, _) ->
      Alcotest.(check bool) "lhs is a base var" true
        (List.mem sg.Cvar.vid base_vids);
      Alcotest.(check bool) "rhs is a base var" true
        (List.mem ty.Cvar.vid base_vids)
  | _ -> Alcotest.fail "expected the added statement to be an Addr"

let test_diff_signature_change () =
  let base =
    compile
      {|
        int *h(int *a) { return a; }
        int x; int *r;
        void main(void) { r = h(&x); }
      |}
  in
  let edited =
    compile
      {|
        int *h(int *a, int *b) { return a; }
        int x; int *r;
        void main(void) { r = h(&x); }
      |}
  in
  let _, d = Incr.Progdiff.align ~base edited in
  (* the call to [h] must be treated as removed + re-added: its
     parameter bindings changed with the signature *)
  let is_call (s : Nast.stmt) =
    match s.Nast.kind with Nast.Call _ -> true | _ -> false
  in
  Alcotest.(check bool) "call re-added" true
    (List.exists is_call d.Incr.Progdiff.added);
  Alcotest.(check bool) "call removed" true
    (List.exists is_call d.Incr.Progdiff.removed)

(** The all-interfaces fingerprint must be a full-content digest: with
    the node-limited polymorphic hash, a program with more than ~10
    defined functions let signature changes past the limit slip through
    without invalidating indirect calls (a silent wrong-answer). Every
    one of 14 functions must invalidate the indirect call when its
    signature changes. *)
let test_signature_change_every_function () =
  let mk wide =
    let buf = Buffer.create 512 in
    for i = 1 to 14 do
      let params = if wide = Some i then "int *a, int *b" else "int *a" in
      Buffer.add_string buf
        (Printf.sprintf "int *f%02d(%s) { return a; }\n" i params)
    done;
    Buffer.add_string buf
      "int *g(int *a) { return a; }\n\
       int x; int *r;\n\
       int *(*fp)(int *);\n\
       void main(void) { fp = g; r = fp(&x); }\n";
    compile (Buffer.contents buf)
  in
  let base = mk None in
  let is_indirect (s : Nast.stmt) =
    match s.Nast.kind with
    | Nast.Call { Nast.cfn = Nast.Indirect _; _ } -> true
    | _ -> false
  in
  for k = 1 to 14 do
    let edited = mk (Some k) in
    let _, d = Incr.Progdiff.align ~base edited in
    if not (List.exists is_indirect d.Incr.Progdiff.removed) then
      Alcotest.failf
        "signature change of f%02d left the indirect call un-invalidated" k;
    let t = Core.Solver.run ~track:true ~strategy:(strategy "cis") base in
    let t, _ = Incr.Engine.reanalyze t edited in
    check_vs_scratch
      ~label:(Printf.sprintf "sig-change f%02d" k)
      ~engine:`Delta ~id:"cis" t
  done

(** Heap objects key on their allocation ordinal, never on source
    coordinates: recompiling after an edit that only shifts the lines
    above an allocation site diffs empty. *)
let test_heap_key_stable_under_line_shift () =
  let src prefix =
    Printf.sprintf
      {|
        void *malloc(unsigned long);
        struct S { int *f; } *p;
        int x, y; int *q;
        void main(void) {
          %sp = (struct S *)malloc(sizeof(struct S));
          p->f = &x;
        }
      |}
      prefix
  in
  let base = compile (src "") in
  let edited = compile (src "\n") in
  let _, d = Incr.Progdiff.align ~base edited in
  Alcotest.(check int) "no added" 0 (List.length d.Incr.Progdiff.added);
  Alcotest.(check int) "no removed" 0 (List.length d.Incr.Progdiff.removed);
  Alcotest.(check int) "no added vars" 0
    (List.length d.Incr.Progdiff.added_vars);
  Alcotest.(check int) "no removed vars" 0
    (List.length d.Incr.Progdiff.removed_vars)

(* ------------------------------------------------------------------ *)
(* Warm start and retraction                                           *)
(* ------------------------------------------------------------------ *)

let test_additive_warm_start () =
  let base = compile src_base in
  let edited = compile src_edited in
  List.iter
    (fun id ->
      List.iter
        (fun (ename, engine) ->
          let t =
            Core.Solver.run ~engine ~track:true ~strategy:(strategy id) base
          in
          let t, st = Incr.Engine.reanalyze t edited in
          Alcotest.(check bool) (ename ^ " no fallback") false
            st.Incr.Engine.fallback;
          Alcotest.(check int) (ename ^ " removed") 0
            st.Incr.Engine.stmts_removed;
          Alcotest.(check int) (ename ^ " added") 1 st.Incr.Engine.stmts_added;
          check_vs_scratch ~label:"additive" ~engine ~id t)
        engines)
    all_ids

let test_retraction () =
  let base = compile src_edited in
  let edited = compile src_base in
  List.iter
    (fun id ->
      List.iter
        (fun (ename, engine) ->
          let t =
            Core.Solver.run ~engine ~track:true ~strategy:(strategy id) base
          in
          let t, st = Incr.Engine.reanalyze t edited in
          Alcotest.(check bool) (ename ^ " no fallback") false
            st.Incr.Engine.fallback;
          Alcotest.(check int) (ename ^ " removed") 1
            st.Incr.Engine.stmts_removed;
          if st.Incr.Engine.facts_retracted <= 0 then
            Alcotest.failf "%s/%s: removing q = &&x retracted nothing" id
              ename;
          check_vs_scratch ~label:"retraction" ~engine ~id t)
        engines)
    all_ids

(** Chained edits through the same solver: add, then remove, then
    mutate, comparing against scratch at every step. *)
let test_edit_chain () =
  let base = compile src_base in
  List.iter
    (fun id ->
      List.iter
        (fun (_, engine) ->
          let t =
            ref
              (Core.Solver.run ~engine ~track:true ~strategy:(strategy id)
                 base)
          in
          let rand = Random.State.make [| base_seed; 7 |] in
          for step = 1 to 4 do
            match Incr.Edit.random_op ~rand !t.Core.Solver.prog with
            | None -> ()
            | Some op ->
                let edited = Incr.Edit.apply !t.Core.Solver.prog [ op ] in
                let t', _ = Incr.Engine.reanalyze !t edited in
                t := t';
                check_vs_scratch
                  ~label:(Printf.sprintf "chain step %d" step)
                  ~engine ~id !t
          done)
        engines)
    all_ids

(* ------------------------------------------------------------------ *)
(* Fallback ladder                                                     *)
(* ------------------------------------------------------------------ *)

let removal_pair () = (compile src_edited, compile src_base)

let test_fallback_budget () =
  let base, edited = removal_pair () in
  let t = Core.Solver.run ~track:true ~strategy:(strategy "cis") base in
  let diags = Diag.create () in
  let t, st = Incr.Engine.reanalyze ~retract_budget:0 ~diags t edited in
  Alcotest.(check bool) "fell back" true st.Incr.Engine.fallback;
  Alcotest.(check bool) "warning reported" true
    (List.exists
       (fun (p : Diag.payload) ->
         p.Diag.severity = Diag.Warning
         && String.length p.Diag.message >= 20
         && String.sub p.Diag.message 0 20 = "degraded-incremental")
       (Diag.warnings diags));
  Alcotest.(check bool) "not an error" false (Diag.has_errors diags);
  check_vs_scratch ~label:"fallback-budget" ~engine:`Delta ~id:"cis" t

(** Aborting the retraction closure (Too_wide) must leave the base
    solver pristine — support counters included — so it can be
    re-analyzed later with a larger budget. *)
let test_fallback_preserves_base () =
  let base, edited = removal_pair () in
  let t = Core.Solver.run ~track:true ~strategy:(strategy "cis") base in
  let snap tbl =
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl [] |> List.sort compare
  in
  let edges0 = snap t.Core.Solver.edge_support in
  let copies0 = snap t.Core.Solver.copy_support in
  let t', st = Incr.Engine.reanalyze ~retract_budget:0 t edited in
  Alcotest.(check bool) "fell back" true st.Incr.Engine.fallback;
  Alcotest.(check bool) "fresh solver returned" true (t != t');
  Alcotest.(check bool) "edge support untouched" true
    (edges0 = snap t.Core.Solver.edge_support);
  Alcotest.(check bool) "copy support untouched" true
    (copies0 = snap t.Core.Solver.copy_support);
  (* retrying the abandoned base with a real budget warm-starts *)
  let t2, st2 = Incr.Engine.reanalyze t edited in
  Alcotest.(check bool) "no fallback on retry" false st2.Incr.Engine.fallback;
  check_vs_scratch ~label:"fallback-retry" ~engine:`Delta ~id:"cis" t2

let test_fallback_untracked () =
  let base, edited = removal_pair () in
  let t = Core.Solver.run ~strategy:(strategy "cis") base in
  let t, st = Incr.Engine.reanalyze t edited in
  Alcotest.(check bool) "fell back" true st.Incr.Engine.fallback;
  check_vs_scratch ~label:"fallback-untracked" ~engine:`Delta ~id:"cis" t

let test_fallback_degraded_base () =
  let base, edited = removal_pair () in
  let budget = { Core.Budget.unlimited with Core.Budget.max_steps = Some 1 } in
  let t = Core.Solver.run ~budget ~track:true ~strategy:(strategy "cis") base in
  Alcotest.(check bool) "base degraded" true (Core.Solver.degraded t);
  let t', st = Incr.Engine.reanalyze t edited in
  Alcotest.(check bool) "fell back" true st.Incr.Engine.fallback;
  ignore t'

(** The cost guard: when the removed statements derived a quarter of
    everything attributed, the engine {e plans} a scratch solve instead
    of computing a retraction closure that would cover most of the
    graph. A plan is not a degradation — no [degraded-incremental]
    warning — and it surfaces as the [fallback_planned] stat and the
    [incr_fallback_planned] metric. Small edits stay on the retraction
    path. *)
let test_fallback_planned_large_removal () =
  let src keep =
    let buf = Buffer.create 4096 in
    for i = 0 to 79 do
      Buffer.add_string buf (Printf.sprintf "int x%d; int *p%d;\n" i i)
    done;
    Buffer.add_string buf "void main(void) {\n";
    for i = 0 to 79 do
      if i < keep then
        Buffer.add_string buf (Printf.sprintf "  p%d = &x%d;\n" i i)
    done;
    Buffer.add_string buf "}\n";
    compile (Buffer.contents buf)
  in
  let base = src 80 in
  let edited = src 20 in
  let t = Core.Solver.run ~track:true ~strategy:(strategy "cis") base in
  let diags = Diag.create () in
  let t, st = Incr.Engine.reanalyze ~diags t edited in
  Alcotest.(check bool) "planned" true st.Incr.Engine.fallback_planned;
  Alcotest.(check bool) "a plan is a fallback" true st.Incr.Engine.fallback;
  Alcotest.(check bool) "no degradation warning" false
    (List.exists
       (fun (p : Diag.payload) ->
         String.length p.Diag.message >= 20
         && String.sub p.Diag.message 0 20 = "degraded-incremental")
       (Diag.warnings diags));
  Alcotest.(check int) "metric set" 1
    (Core.Metrics.summarize t).Core.Metrics.incr_fallback_planned;
  check_vs_scratch ~label:"planned-fallback" ~engine:`Delta ~id:"cis" t;
  (* below the planning floor the retraction path still runs *)
  let base, edited = removal_pair () in
  let t = Core.Solver.run ~track:true ~strategy:(strategy "cis") base in
  let t, st = Incr.Engine.reanalyze t edited in
  Alcotest.(check bool) "small edit: not planned" false
    st.Incr.Engine.fallback_planned;
  Alcotest.(check bool) "small edit: retraction ran" false
    st.Incr.Engine.fallback;
  check_vs_scratch ~label:"small-removal" ~engine:`Delta ~id:"cis" t

(** The warm solver's incr counters surface through metrics and the
    stats JSON. *)
let test_incr_metrics_reported () =
  let base = compile src_base in
  let edited = compile src_edited in
  let t = Core.Solver.run ~track:true ~strategy:(strategy "cis") base in
  let t, st = Incr.Engine.reanalyze t edited in
  let m = Core.Metrics.summarize t in
  Alcotest.(check int) "added" st.Incr.Engine.stmts_added
    m.Core.Metrics.incr_stmts_added;
  Alcotest.(check int) "warm visits" st.Incr.Engine.warm_visits
    m.Core.Metrics.incr_warm_visits;
  let j =
    Core.Report.json_of_result ~timing:false ~name:"m" (mk_result t)
  in
  Alcotest.(check bool) "stats json carries the counters" true
    (let needle = "\"incr_stmts_added\":1" in
     let rec find i =
       i + String.length needle <= String.length j
       && (String.sub j i (String.length needle) = needle || find (i + 1))
     in
     find 0);
  (* the stats-free rendering must NOT leak engine-dependent counters *)
  let j' = stats_free_json ~name:"m" t in
  Alcotest.(check bool) "stats-free json omits them" false
    (let needle = "incr_stmts_added" in
     let rec find i =
       i + String.length needle <= String.length j'
       && (String.sub j' i (String.length needle) = needle || find (i + 1))
     in
     find 0)

(** A [Queries.t] built before a warm re-analysis must see the edited
    program: [reanalyze] swaps [solver.prog] in place, and the name
    index follows it. *)
let test_queries_index_follows_reanalyze () =
  let base = compile src_base in
  let edited =
    compile
      {|
        struct S { int *f; int *g; } s;
        int x, y;
        int *p, *q;
        int *nz;
        void main(void) {
          s.f = &x;
          p = s.f;
          q = &y;
          nz = &x;
        }
      |}
  in
  let t = Core.Solver.run ~track:true ~strategy:(strategy "cis") base in
  let q = Clients.Queries.of_solver t in
  Alcotest.(check bool) "nz absent before the edit" true
    (Clients.Queries.find_var q "nz" = None);
  let t', st = Incr.Engine.reanalyze t edited in
  Alcotest.(check bool) "warm start, in place" true (t == t');
  Alcotest.(check bool) "no fallback" false st.Incr.Engine.fallback;
  match Clients.Queries.find_var q "nz" with
  | None -> Alcotest.fail "stale index: nz not found after reanalyze"
  | Some v -> Alcotest.(check string) "found the added var" "nz" v.Cvar.vname

(* ------------------------------------------------------------------ *)
(* Targeted retraction (DRed) properties                               *)
(* ------------------------------------------------------------------ *)

(** The delete-and-rederive narrowing on diamond-derivation programs: a
    fact with a surviving alternate derivation is never cleared, so
    [facts_retracted] stays at zero when one arm of a diamond goes away
    and is tightly bounded when the last arm does. *)
let test_dred_diamond () =
  (* two identical stores keep the direct edge's support at 2; removing
     one leaves the fact justified and nothing is retracted *)
  let two = compile {| int x; int *p, *q;
                       void main(void) { p = &x; p = &x; q = p; } |} in
  let one = compile {| int x; int *p, *q;
                       void main(void) { p = &x; q = p; } |} in
  List.iter
    (fun id ->
      let t = Core.Solver.run ~track:true ~strategy:(strategy id) two in
      let t, st = Incr.Engine.reanalyze t one in
      Alcotest.(check bool) (id ^ " no fallback") false st.Incr.Engine.fallback;
      Alcotest.(check int) (id ^ " one removed") 1 st.Incr.Engine.stmts_removed;
      Alcotest.(check int) (id ^ " nothing retracted") 0
        st.Incr.Engine.facts_retracted;
      Alcotest.(check int) (id ^ " nothing affected") 0
        st.Incr.Engine.affected_cells;
      check_vs_scratch ~label:"dred-direct-diamond" ~engine:`Delta ~id t)
    all_ids;
  (* copy diamond: [d] receives [x] through both [a] and [b]; removing
     the [a] arm keeps the fact justified through the surviving inflow
     from [b] (whose own facts all have direct support), so the cascade
     never reaches [d] *)
  let both = compile {| int x; int *a, *b, *d;
                        void main(void) { a = &x; b = &x; d = a; d = b; } |} in
  let left = compile {| int x; int *a, *b, *d;
                        void main(void) { a = &x; b = &x; d = b; } |} in
  let t = Core.Solver.run ~track:true ~strategy:(strategy "cis") both in
  let t, st = Incr.Engine.reanalyze t left in
  Alcotest.(check bool) "copy diamond: no fallback" false
    st.Incr.Engine.fallback;
  Alcotest.(check int) "copy diamond: nothing retracted" 0
    st.Incr.Engine.facts_retracted;
  check_vs_scratch ~label:"dred-copy-diamond" ~engine:`Delta ~id:"cis" t;
  (* severing the last arm must retract — but only [d]'s one fact, not
     anything upstream of it *)
  let none = compile {| int x; int *a, *b, *d;
                        void main(void) { a = &x; b = &x; } |} in
  let t2, st2 = Incr.Engine.reanalyze t none in
  Alcotest.(check bool) "last arm: no fallback" false
    st2.Incr.Engine.fallback;
  if st2.Incr.Engine.facts_retracted < 1 then
    Alcotest.fail "severing the last derivation retracted nothing";
  if st2.Incr.Engine.facts_retracted > 2 then
    Alcotest.failf "last arm: retracted %d facts, expected at most d's own"
      st2.Incr.Engine.facts_retracted;
  check_vs_scratch ~label:"dred-last-arm" ~engine:`Delta ~id:"cis" t2

(** A mutation that only flips [is_source_deref] derives the same
    constraints; the differ pairs it with the base statement (keeping
    the id, taking the flag) and the engine skips retraction. *)
let test_mutate_equivalence () =
  let base = compile src_base in
  let f =
    List.find (fun (f : Nast.func) -> f.Nast.fname = "main") base.Nast.pfuncs
  in
  let s = List.hd f.Nast.fstmts in
  let op =
    Incr.Edit.Mutate ("main", 0, s.Nast.kind, not s.Nast.is_source_deref)
  in
  let edited = Incr.Edit.apply base [ op ] in
  let aligned, d = Incr.Progdiff.align ~base edited in
  Alcotest.(check int) "no added" 0 (List.length d.Incr.Progdiff.added);
  Alcotest.(check int) "no removed" 0 (List.length d.Incr.Progdiff.removed);
  let s' =
    List.find
      (fun (a : Nast.stmt) -> a.Nast.id = s.Nast.id)
      (Nast.all_stmts aligned)
  in
  Alcotest.(check bool) "base id kept, edited flag taken"
    (not s.Nast.is_source_deref) s'.Nast.is_source_deref;
  let t = Core.Solver.run ~track:true ~strategy:(strategy "cis") base in
  let t, st = Incr.Engine.reanalyze t edited in
  Alcotest.(check bool) "no fallback" false st.Incr.Engine.fallback;
  Alcotest.(check int) "no removal" 0 st.Incr.Engine.stmts_removed;
  Alcotest.(check int) "nothing retracted" 0 st.Incr.Engine.facts_retracted;
  check_vs_scratch ~label:"mutate-equivalence" ~engine:`Delta ~id:"cis" t

(** Externs are attributed per statement: removing one of two calls to
    an extern keeps it reported, removing the last caller drops it —
    without replaying the surviving calls. *)
let test_extern_retraction () =
  let base =
    compile
      {|
        void mystery_a(int *p);
        void mystery_b(int *p);
        int x;
        void main(void) { mystery_a(&x); mystery_a(&x); mystery_b(&x); }
      |}
  in
  let edited =
    compile
      {|
        void mystery_a(int *p);
        void mystery_b(int *p);
        int x;
        void main(void) { mystery_a(&x); }
      |}
  in
  let t = Core.Solver.run ~track:true ~strategy:(strategy "cis") base in
  Alcotest.(check (list string)) "both externs before the edit"
    [ "mystery_a"; "mystery_b" ]
    (List.sort compare (Core.Metrics.summarize t).Core.Metrics.unknown_externs);
  let t, st = Incr.Engine.reanalyze t edited in
  Alcotest.(check bool) "no fallback" false st.Incr.Engine.fallback;
  (* each source call lowers to an argument binding plus the call *)
  Alcotest.(check bool) "statements removed" true
    (st.Incr.Engine.stmts_removed > 0);
  Alcotest.(check (list string)) "a kept (second caller), b dropped"
    [ "mystery_a" ]
    (List.sort compare (Core.Metrics.summarize t).Core.Metrics.unknown_externs);
  check_vs_scratch ~label:"extern-retraction" ~engine:`Delta ~id:"cis" t

(** Removal-edit fuzz: chained remove/mutate scripts over a generated
    program, every engine and instance, scratch-checked at each step. *)
let test_removal_fuzz () =
  let cfg =
    { Cgen.default with Cgen.n_stmts = 60; n_structs = 3; cast_rate = 0.3 }
  in
  let base =
    Lower.compile ~file:"fuzz-removal" (Cgen.generate ~cfg ~seed:base_seed ())
  in
  let next_removal ~rand prog =
    let rec go tries =
      if tries = 0 then None
      else
        match Incr.Edit.random_op ~rand prog with
        | Some ((Incr.Edit.Remove _ | Incr.Edit.Mutate _) as op) -> Some op
        | Some _ -> go (tries - 1)
        | None -> None
    in
    go 50
  in
  List.iter
    (fun id ->
      List.iter
        (fun (ename, engine) ->
          let t =
            ref
              (Core.Solver.run ~engine ~track:true ~strategy:(strategy id)
                 base)
          in
          let rand = Random.State.make [| base_seed; 23 |] in
          for step = 1 to 3 do
            match next_removal ~rand !t.Core.Solver.prog with
            | None -> ()
            | Some op ->
                let edited = Incr.Edit.apply !t.Core.Solver.prog [ op ] in
                let t', _ = Incr.Engine.reanalyze !t edited in
                t := t';
                check_vs_scratch
                  ~label:
                    (Printf.sprintf "removal-fuzz %s step %d" ename step)
                  ~engine ~id !t
          done)
        engines)
    all_ids

(* ------------------------------------------------------------------ *)
(* Corpus differential                                                 *)
(* ------------------------------------------------------------------ *)

(** Every corpus program, all four instances: two random edits each,
    incremental vs scratch after every edit. Fallbacks are legal (the
    cascade budget is policy, not correctness) but must not be the
    rule. *)
let test_corpus_differential () =
  let fallbacks = ref 0 and warms = ref 0 in
  List.iter
    (fun (p : Suite.program) ->
      let base = Lower.compile ~file:p.Suite.name p.Suite.source in
      List.iter
        (fun id ->
          let t =
            ref (Core.Solver.run ~track:true ~strategy:(strategy id) base)
          in
          let rand = Random.State.make [| base_seed; Hashtbl.hash p.Suite.name |] in
          for _step = 1 to 2 do
            match Incr.Edit.random_op ~rand !t.Core.Solver.prog with
            | None -> ()
            | Some op ->
                let edited = Incr.Edit.apply !t.Core.Solver.prog [ op ] in
                let t', st = Incr.Engine.reanalyze !t edited in
                t := t';
                if st.Incr.Engine.fallback then incr fallbacks else incr warms;
                check_vs_scratch ~label:p.Suite.name ~engine:`Delta ~id !t
          done)
        all_ids)
    Suite.programs;
  if !warms = 0 then
    Alcotest.failf "every corpus edit fell back to scratch (%d)" !fallbacks

let suite =
  [
    tc "progdiff: identical compiles diff empty" test_diff_identity;
    tc "progdiff: one added statement, vars remapped" test_diff_addition;
    tc "progdiff: signature change invalidates calls" test_diff_signature_change;
    tc "progdiff: every function's signature reaches the fingerprint"
      test_signature_change_every_function;
    tc "progdiff: heap keys survive line shifts"
      test_heap_key_stable_under_line_shift;
    tc "additive warm start == scratch (all engines x instances)"
      test_additive_warm_start;
    tc "retraction == scratch (all engines x instances)" test_retraction;
    tc "random edit chain == scratch (all engines x instances)"
      test_edit_chain;
    tc "fallback: retraction budget" test_fallback_budget;
    tc "fallback leaves the base solver reusable" test_fallback_preserves_base;
    tc "fallback: untracked solver" test_fallback_untracked;
    tc "fallback: degraded base" test_fallback_degraded_base;
    tc "planned fallback: large removal, no warning"
      test_fallback_planned_large_removal;
    tc "dred: alternate derivations survive removal" test_dred_diamond;
    tc "mutate that only flips the deref flag skips retraction"
      test_mutate_equivalence;
    tc "externs are retracted per statement" test_extern_retraction;
    tc "removal fuzz == scratch (all engines x instances)"
      test_removal_fuzz;
    tc "incr counters flow into metrics and reports"
      test_incr_metrics_reported;
    tc "queries index follows in-place reanalyze"
      test_queries_index_follows_reanalyze;
    tc "corpus differential: 2 random edits x 4 instances"
      test_corpus_differential;
  ]
