(** Unit tests for cells and the points-to graph. *)

open Cfront
open Core

let var name ty = Cvar.fresh ~name ~ty ~kind:Cvar.Global

let test_cell_ordering () =
  let a = var "a" Ctype.int_t in
  let b = var "b" Ctype.int_t in
  let ca0 = Cell.v a (Cell.Off 0) in
  let ca4 = Cell.v a (Cell.Off 4) in
  let cb0 = Cell.v b (Cell.Off 0) in
  Alcotest.(check bool) "same cell equal" true (Cell.equal ca0 ca0);
  Alcotest.(check bool) "different offsets" false (Cell.equal ca0 ca4);
  Alcotest.(check bool) "ordering by var then sel" true (Cell.compare ca0 ca4 < 0);
  Alcotest.(check bool) "ordering across vars" true (Cell.compare ca4 cb0 < 0);
  (* paths and offsets never collide *)
  let cp = Cell.v a (Cell.Path []) in
  Alcotest.(check bool) "path vs off" false (Cell.equal cp ca0)

let test_cell_pp () =
  let s = var "s" Ctype.int_t in
  Alcotest.(check string) "whole" "s" (Cell.to_string (Cell.whole s));
  Alcotest.(check string) "path" "s.f.g"
    (Cell.to_string (Cell.v s (Cell.Path [ "f"; "g" ])));
  Alcotest.(check string) "offset" "s@8"
    (Cell.to_string (Cell.v s (Cell.Off 8)))

let test_graph_add_edges () =
  let g = Graph.create () in
  let a = var "a" Ctype.int_t and b = var "b" Ctype.int_t in
  let ca = Cell.whole a and cb = Cell.whole b in
  Alcotest.(check bool) "new edge" true (Graph.add_edge g ca cb);
  Alcotest.(check bool) "duplicate edge" false (Graph.add_edge g ca cb);
  Alcotest.(check int) "edge count" 1 (Graph.edge_count g);
  Alcotest.(check int) "pts size" 1 (Cell.Set.cardinal (Graph.pts g ca));
  Alcotest.(check int) "no facts" 0 (Cell.Set.cardinal (Graph.pts g cb))

let test_graph_obj_index () =
  let g = Graph.create () in
  let a = var "a" Ctype.int_t and b = var "b" Ctype.int_t in
  let c0 = Cell.v a (Cell.Off 0) and c4 = Cell.v a (Cell.Off 4) in
  ignore (Graph.add_edge g c0 (Cell.whole b));
  ignore (Graph.add_edge g c4 (Cell.whole b));
  let cells = Graph.cells_of_obj g a in
  Alcotest.(check int) "both cells indexed" 2 (List.length cells);
  Alcotest.(check int) "b has no sources" 0 (List.length (Graph.cells_of_obj g b))

let test_graph_iteration () =
  let g = Graph.create () in
  let a = var "a" Ctype.int_t and b = var "b" Ctype.int_t in
  ignore (Graph.add_edge g (Cell.whole a) (Cell.whole b));
  ignore (Graph.add_edge g (Cell.whole b) (Cell.whole a));
  let n = ref 0 in
  Graph.iter_edges g (fun _ _ -> incr n);
  Alcotest.(check int) "iterated all" 2 !n;
  let folded =
    Graph.fold_sources g (fun _ set acc -> acc + Cell.Set.cardinal set) 0
  in
  Alcotest.(check int) "folded all" 2 folded

(* Regression: removing an object's last fact-bearing cell must drop the
   per-object index entry entirely — a lingering empty entry made
   [fold_objects] visit (and degradation re-collapse) fact-free objects. *)
let test_remove_source_empties_index () =
  let g = Graph.create () in
  let a = var "a" Ctype.int_t and b = var "b" Ctype.int_t in
  let a0 = Cell.v a (Cell.Off 0) and a4 = Cell.v a (Cell.Off 4) in
  ignore (Graph.add_edge g a0 (Cell.whole b));
  ignore (Graph.add_edge g a4 (Cell.whole b));
  Graph.remove_source g a0;
  Alcotest.(check int) "one cell left" 1 (Graph.cell_count_of_obj g a);
  Alcotest.(check (option string)) "consistent after partial removal" None
    (Graph.check_counts g);
  Graph.remove_source g a4;
  Alcotest.(check int) "no cells left" 0 (Graph.cell_count_of_obj g a);
  Alcotest.(check (list string)) "no indexed cells" []
    (List.map Cell.to_string (Graph.cells_of_obj g a));
  let visited = Graph.fold_objects g (fun _ _ acc -> acc + 1) 0 in
  Alcotest.(check int) "fold_objects skips the emptied object" 0 visited;
  Alcotest.(check int) "edge count back to zero" 0 (Graph.edge_count g);
  Alcotest.(check (option string)) "consistent after full removal" None
    (Graph.check_counts g);
  (* removal is idempotent, and the object can gain facts again *)
  Graph.remove_source g a0;
  ignore (Graph.add_edge g a0 (Cell.whole b));
  Alcotest.(check int) "re-added" 1 (Graph.cell_count_of_obj g a);
  Alcotest.(check (option string)) "consistent after re-add" None
    (Graph.check_counts g)

(* The edge-count audit: the counter must track the summed set sizes
   through interleaved adds and removes. *)
let test_edge_count_audit () =
  let g = Graph.create () in
  let vars = List.init 6 (fun i -> var (Printf.sprintf "v%d" i) Ctype.int_t) in
  let cell i off = Cell.v (List.nth vars i) (Cell.Off off) in
  List.iter
    (fun (i, off, j) -> ignore (Graph.add_edge g (cell i off) (cell j 0)))
    [
      (0, 0, 1); (0, 0, 2); (0, 4, 3); (1, 0, 2); (2, 0, 0);
      (2, 8, 4); (3, 0, 5); (0, 0, 1) (* duplicate *);
    ];
  let summed = Graph.fold_sources g (fun _ s acc -> acc + Cell.Set.cardinal s) 0 in
  Alcotest.(check int) "counter equals summed cardinals" summed
    (Graph.edge_count g);
  Alcotest.(check (option string)) "audit clean" None (Graph.check_counts g);
  Graph.remove_source g (cell 0 0);
  Graph.remove_source g (cell 2 8);
  let summed = Graph.fold_sources g (fun _ s acc -> acc + Cell.Set.cardinal s) 0 in
  Alcotest.(check int) "counter tracks removals" summed (Graph.edge_count g);
  Alcotest.(check (option string)) "audit clean after removals" None
    (Graph.check_counts g)

let test_graph_equal () =
  let a = var "a" Ctype.int_t and b = var "b" Ctype.int_t in
  let g1 = Graph.create () and g2 = Graph.create () in
  (* same edge set, different insertion order *)
  ignore (Graph.add_edge g1 (Cell.whole a) (Cell.whole b));
  ignore (Graph.add_edge g1 (Cell.whole b) (Cell.whole a));
  ignore (Graph.add_edge g2 (Cell.whole b) (Cell.whole a));
  ignore (Graph.add_edge g2 (Cell.whole a) (Cell.whole b));
  Alcotest.(check bool) "order-independent equality" true (Graph.equal g1 g2);
  ignore (Graph.add_edge g2 (Cell.whole b) (Cell.whole b));
  Alcotest.(check bool) "extra edge detected" false (Graph.equal g1 g2)

let test_cell_interning () =
  let a = var "a" Ctype.int_t in
  let c1 = Cell.v a (Cell.Off 8) in
  let c2 = Cell.v a (Cell.Off 8) in
  Alcotest.(check bool) "interned: physically equal" true (c1 == c2);
  Alcotest.(check int) "id round-trips" (Cell.id c1)
    (Cell.id (Cell.of_id (Cell.id c1)));
  Alcotest.(check bool) "of_id returns the same cell" true
    (Cell.of_id (Cell.id c1) == c1);
  Alcotest.(check bool) "ids are dense and bounded" true
    (Cell.id c1 < Cell.interned_count ())

let test_cell_type () =
  let c = Ctype.fresh_comp ~tag:"T" ~is_union:false in
  c.Ctype.cfields <-
    Some [ { Ctype.fname = "f"; fty = Ctype.Ptr Ctype.int_t; fbits = None } ];
  let v = var "v" (Ctype.Comp c) in
  Alcotest.(check string) "typed path" "int*"
    (Ctype.to_string (Cell.cell_type (Cell.v v (Cell.Path [ "f" ]))));
  Alcotest.(check string) "bad path is void" "void"
    (Ctype.to_string (Cell.cell_type (Cell.v v (Cell.Path [ "nope" ]))))

let suite =
  [
    Helpers.tc "cell ordering and equality" test_cell_ordering;
    Helpers.tc "cell printing" test_cell_pp;
    Helpers.tc "graph edge insertion" test_graph_add_edges;
    Helpers.tc "graph per-object index" test_graph_obj_index;
    Helpers.tc "graph iteration" test_graph_iteration;
    Helpers.tc "remove_source drops emptied object index"
      test_remove_source_empties_index;
    Helpers.tc "edge_count audit" test_edge_count_audit;
    Helpers.tc "graph equality" test_graph_equal;
    Helpers.tc "cell interning" test_cell_interning;
    Helpers.tc "cell types" test_cell_type;
  ]
