(** Online cycle elimination: the union-find and priority-queue
    primitives, {!Core.Idset.union_into}, {!Core.Graph.unify}'s class
    sharing, and solver-level regressions for the subset-cycle shapes
    that historically break lazy cycle detection — a two-cell loop, a
    cross-cell chain cycle, a cycle that closes only after facts already
    flowed around it, growth landing on an already-unified class, and a
    cycle spanning a degradation collapse. *)

open Cfront
open Core
open Helpers

let var name ty = Cvar.fresh ~name ~ty ~kind:Cvar.Global

(* ------------------------------------------------------------------ *)
(* Union-find                                                          *)
(* ------------------------------------------------------------------ *)

let test_uf_basic () =
  let u = Uf.create ~cap:4 () in
  Alcotest.(check int) "fresh id is its own root" 7 (Uf.find u 7);
  Uf.union u ~into:3 9;
  Alcotest.(check int) "loser resolves to winner" 3 (Uf.find u 9);
  Alcotest.(check bool) "same class" true (Uf.same u 3 9);
  Alcotest.(check bool) "other ids untouched" false (Uf.same u 3 4);
  (* directed: [~into] wins even when unioned through class members *)
  Uf.union u ~into:9 21;
  Alcotest.(check int) "union through member keeps root" 3 (Uf.find u 21);
  (* growth far past the initial capacity *)
  Uf.union u ~into:21 1000;
  Alcotest.(check int) "grown array, same class" 3 (Uf.find u 1000);
  Uf.reset u;
  Alcotest.(check int) "reset dissolves classes" 9 (Uf.find u 9);
  Alcotest.(check int) "reset dissolves grown ids" 1000 (Uf.find u 1000)

let test_pq_ordering () =
  let q = Pq.create () in
  Pq.push q ~prio:5 50;
  Pq.push q ~prio:1 10;
  Pq.push q ~prio:5 40;
  Pq.push q ~prio:3 30;
  (* explicit sequencing — list literals evaluate right-to-left *)
  let p1 = Pq.pop q in
  let p2 = Pq.pop q in
  let p3 = Pq.pop q in
  let p4 = Pq.pop q in
  let popped = [ p1; p2; p3; p4 ] in
  (* priority order, id tie-break inside equal priorities *)
  Alcotest.(check (list int)) "min-heap order" [ 10; 30; 40; 50 ] popped;
  Alcotest.(check bool) "drained" true (Pq.is_empty q);
  Alcotest.check_raises "pop on empty" (Invalid_argument "Pq.pop: empty")
    (fun () -> ignore (Pq.pop q))

(* ------------------------------------------------------------------ *)
(* Idset.union_into                                                    *)
(* ------------------------------------------------------------------ *)

let test_union_into_matches_elementwise () =
  (* deterministic pseudo-random sequences; no shared state *)
  let lcg seed =
    let s = ref seed in
    fun bound ->
      s := (!s * 1103515245) + 12345;
      abs !s mod bound
  in
  for case = 1 to 20 do
    let rnd = lcg (case * 7919) in
    let dst = Idset.create () and src = Idset.create () in
    let oracle = Idset.create () in
    for _ = 1 to rnd 30 do
      let x = rnd 50 in
      ignore (Idset.add dst x);
      ignore (Idset.add oracle x)
    done;
    for _ = 1 to rnd 30 do
      ignore (Idset.add src (rnd 50))
    done;
    let before = Idset.cardinal dst in
    let prefix = List.init before (Idset.get_ord dst) in
    let added = Idset.union_into dst src in
    (* element-wise oracle merge *)
    let expect_added = ref 0 in
    Idset.iter
      (fun x -> if Idset.add oracle x then incr expect_added)
      src;
    Alcotest.(check int)
      (Printf.sprintf "case %d: added count" case)
      !expect_added added;
    Alcotest.(check (list int))
      (Printf.sprintf "case %d: same members" case)
      (Idset.elements oracle) (Idset.elements dst);
    (* cursor validity: the pre-merge insertion-order prefix is intact *)
    Alcotest.(check (list int))
      (Printf.sprintf "case %d: ord prefix preserved" case)
      prefix
      (List.init before (Idset.get_ord dst));
    (* appended members arrive in src insertion order *)
    let tail =
      List.init added (fun i -> Idset.get_ord dst (before + i))
    in
    let src_fresh =
      List.filter
        (fun x -> not (List.mem x prefix))
        (List.init (Idset.cardinal src) (Idset.get_ord src))
    in
    Alcotest.(check (list int))
      (Printf.sprintf "case %d: tail in src order" case)
      src_fresh tail
  done;
  (* self-union and empty-source are no-ops *)
  let s = Idset.create () in
  ignore (Idset.add s 1);
  Alcotest.(check int) "self union adds nothing" 0 (Idset.union_into s s);
  Alcotest.(check int) "empty src adds nothing" 0
    (Idset.union_into s (Idset.create ()))

(* ------------------------------------------------------------------ *)
(* Graph.unify class sharing                                           *)
(* ------------------------------------------------------------------ *)

let test_graph_unify_shares_sets () =
  let g = Graph.create () in
  let a = var "a" Ctype.int_t and b = var "b" Ctype.int_t in
  let x = var "x" Ctype.int_t and y = var "y" Ctype.int_t in
  let ca = Cell.whole a and cb = Cell.whole b in
  ignore (Graph.add_edge g ca (Cell.whole x));
  ignore (Graph.add_edge g ca (Cell.whole y));
  ignore (Graph.add_edge g cb (Cell.whole x));
  let rep, newly = Graph.unify g ca cb in
  Alcotest.(check bool) "larger set wins" true (Cell.equal rep ca);
  Alcotest.(check int) "no cell newly fact-bearing" 0 (List.length newly);
  Alcotest.(check bool) "same class" true
    (Cell.equal (Graph.canon g cb) rep);
  (* member-expanded views: both members hold the union *)
  Alcotest.(check int) "a sees both" 2 (Cell.Set.cardinal (Graph.pts g ca));
  Alcotest.(check int) "b sees both" 2 (Cell.Set.cardinal (Graph.pts g cb));
  Alcotest.(check int) "edge_count is member-expanded" 4 (Graph.edge_count g);
  Alcotest.(check int) "both cells still sources" 2
    (Graph.source_cell_count g);
  Alcotest.(check (option string)) "audit clean" None (Graph.check_counts g);
  (* adding through either member lands in the shared set *)
  let z = var "z" Ctype.int_t in
  Alcotest.(check bool) "add via loser member" true
    (Graph.add_edge g cb (Cell.whole z));
  Alcotest.(check int) "a sees the add" 3 (Cell.Set.cardinal (Graph.pts g ca));
  Alcotest.(check (option string)) "audit clean after add" None
    (Graph.check_counts g);
  (* unshare gives every member its own copy back *)
  Graph.unshare g;
  Alcotest.(check bool) "classes dissolved" true
    (Cell.equal (Graph.canon g cb) cb);
  Alcotest.(check int) "b keeps its facts" 3
    (Cell.Set.cardinal (Graph.pts g cb));
  ignore (Graph.add_edge g ca (Cell.whole ca.Cell.base));
  Alcotest.(check int) "post-unshare adds are private" 3
    (Cell.Set.cardinal (Graph.pts g cb));
  Alcotest.(check (option string)) "audit clean after unshare" None
    (Graph.check_counts g)

let test_graph_unify_fact_free_side () =
  let g = Graph.create () in
  let a = var "a" Ctype.int_t and b = var "b" Ctype.int_t in
  let x = var "x" Ctype.int_t in
  let ca = Cell.whole a and cb = Cell.whole b in
  ignore (Graph.add_edge g ca (Cell.whole x));
  let rep, newly = Graph.unify g ca cb in
  Alcotest.(check bool) "fact-bearing side wins" true (Cell.equal rep ca);
  Alcotest.(check int) "the fact-free cell became a source" 1
    (List.length newly);
  Alcotest.(check bool) "newly is the loser" true
    (Cell.equal (List.hd newly) cb);
  Alcotest.(check int) "b sees a's fact" 1 (Cell.Set.cardinal (Graph.pts g cb));
  Alcotest.(check int) "member-expanded sources" 2 (Graph.source_cell_count g);
  Alcotest.(check (option string)) "audit clean" None (Graph.check_counts g);
  (* unifying two fact-free cells: class exists, no set *)
  let c = var "c" Ctype.int_t and d = var "d" Ctype.int_t in
  let rep2, newly2 = Graph.unify g (Cell.whole c) (Cell.whole d) in
  Alcotest.(check int) "no facts, nothing newly bearing" 0
    (List.length newly2);
  Alcotest.(check bool) "still same class" true
    (Cell.equal (Graph.canon g (Cell.whole d)) rep2);
  Alcotest.(check (option string)) "audit clean with fact-free class" None
    (Graph.check_counts g)

(* ------------------------------------------------------------------ *)
(* Solver-level cycle regressions                                      *)
(* ------------------------------------------------------------------ *)

let solver_of (r : Analysis.result) = r.Analysis.solver

let run_engine ?budget ~id ~engine src =
  Analysis.run_source ?budget ~engine ~strategy:(strategy id) ~file:"<cycles>"
    src

let all_ids = [ "collapse-always"; "collapse-on-cast"; "cis"; "offsets" ]

(* Every cycle test checks, per instance: the delta fixpoint matches
   naive, the graph audit passes, and — where asserted — the cycle was
   actually found (the regression would silently pass otherwise).
   Engines must share one compiled program: compiling twice mints fresh
   variables, which no graph comparison can relate. *)
let check_cycle_program ?(min_cycles = 1) ~src ~bases_of ~expect () =
  let prog = compile src in
  List.iter
    (fun id ->
      let d = Analysis.run ~engine:`Delta ~strategy:(strategy id) prog in
      let n = Analysis.run ~engine:`Naive ~strategy:(strategy id) prog in
      if
        not
          (Graph.equal (solver_of d).Solver.graph (solver_of n).Solver.graph)
      then Alcotest.failf "%s: delta fixpoint differs from naive" id;
      (match Graph.check_counts (solver_of d).Solver.graph with
      | Some msg -> Alcotest.failf "%s: graph audit: %s" id msg
      | None -> ());
      if (solver_of d).Solver.cycles_found < min_cycles then
        Alcotest.failf "%s: expected >= %d cycles, found %d" id min_cycles
          (solver_of d).Solver.cycles_found;
      List.iter
        (fun v ->
          Alcotest.(check (slist string compare))
            (Printf.sprintf "%s: %s targets" id v)
            expect (target_bases d v))
        bases_of)
    all_ids

(* The minimal subset cycle: a ⊆ b and b ⊆ a. The second drain moves
   facts but adds none onto an equal set — the LCD trigger. *)
let test_two_cell_cycle () =
  check_cycle_program
    ~src:
      {|
        void *a, *b;
        int x;
        void main(void) {
          a = (void *)&x;
          b = a;
          a = b;
        }
      |}
    ~bases_of:[ "a"; "b" ] ~expect:[ "x" ] ()

(* A three-cell loop: the DFS must walk transitively, not just check the
   direct back edge. *)
let test_chain_cycle () =
  check_cycle_program
    ~src:
      {|
        void *a, *b, *c;
        int x;
        void main(void) {
          a = (void *)&x;
          b = a;
          c = b;
          a = c;
        }
      |}
    ~bases_of:[ "a"; "b"; "c" ] ~expect:[ "x" ] ()

(* The cycle closes only after facts already flowed down the chain: the
   unification must fold non-empty, already-drained sets (and translate
   or reset the cursors into them) without losing or duplicating
   facts. New facts landing after the collapse must reach every member
   through the now-shared set. *)
let test_cycle_after_facts_then_growth () =
  check_cycle_program
    ~src:
      {|
        void *a, *b, *c;
        int x, y;
        void main(void) {
          a = (void *)&x;
          b = a;
          c = b;
          a = c;
          b = (void *)&y;
        }
      |}
    ~bases_of:[ "a"; "b"; "c" ] ~expect:[ "x"; "y" ] ()

(* Two disjoint cycles bridged by a one-way edge: members must unify
   within each loop but the bridge must NOT fold the downstream loop
   into the upstream one (subset, not equality, across the bridge —
   checked by y staying out of the upstream sets). *)
let test_bridged_cycles () =
  let prog =
    compile
      {|
        void *a, *b, *c, *d;
        int x, y;
        void main(void) {
          a = (void *)&x;
          b = a;
          a = b;
          c = b;
          d = c;
          c = d;
          d = (void *)&y;
        }
      |}
  in
  List.iter
    (fun id ->
      let d = Analysis.run ~engine:`Delta ~strategy:(strategy id) prog in
      let n = Analysis.run ~engine:`Naive ~strategy:(strategy id) prog in
      if
        not
          (Graph.equal (solver_of d).Solver.graph (solver_of n).Solver.graph)
      then Alcotest.failf "%s: delta fixpoint differs from naive" id;
      Alcotest.(check (slist string compare))
        (id ^ ": upstream stays precise")
        [ "x" ] (target_bases d "a");
      Alcotest.(check (slist string compare))
        (id ^ ": downstream sees both")
        [ "x"; "y" ] (target_bases d "c"))
    all_ids

(* A cycle collapsed before a budget degradation: the collapse resets
   the union-find ([Graph.unshare]) and rebuilds constraints over the
   coarser cells; the audit and the re-found fixpoint must survive the
   transition. *)
let test_cycle_spanning_degradation () =
  let src =
    {|
      struct S { int *f; int *g; } s;
      int x, y;
      int *p, *q;
      void main(void) {
        s.f = &x;
        s.g = &y;
        p = s.f;
        q = p;
        p = q;
      }
    |}
  in
  let budget =
    { Budget.unlimited with Budget.max_cells_per_object = Some 1 }
  in
  List.iter
    (fun id ->
      let d = run_engine ~budget ~id ~engine:`Delta src in
      (match Graph.check_counts (solver_of d).Solver.graph with
      | Some msg -> Alcotest.failf "%s: graph audit: %s" id msg
      | None -> ());
      (* soundness across the collapse: p's targets keep covering x *)
      let bases = target_bases d "p" in
      if not (List.mem "x" bases) then
        Alcotest.failf "%s: p lost &x across the collapse (got %s)" id
          (String.concat "," bases))
    all_ids;
  (* the offsets instance actually degrades under this budget (struct s
     spreads facts over two cells), so the span is exercised *)
  let d = run_engine ~budget ~id:"offsets" ~engine:`Delta src in
  Alcotest.(check bool) "offsets run degraded" true
    (Solver.degraded (solver_of d))

let suite =
  [
    tc "union-find: union/find/same/reset" test_uf_basic;
    tc "priority queue: ordering and tie-break" test_pq_ordering;
    tc "Idset.union_into matches element-wise adds"
      test_union_into_matches_elementwise;
    tc "Graph.unify shares one set per class" test_graph_unify_shares_sets;
    tc "Graph.unify with a fact-free side" test_graph_unify_fact_free_side;
    tc "two-cell subset cycle unifies" test_two_cell_cycle;
    tc "three-cell chain cycle unifies" test_chain_cycle;
    tc "cycle closing after facts flowed, then growth"
      test_cycle_after_facts_then_growth;
    tc "bridged cycles stay separate classes" test_bridged_cycles;
    tc "cycle spanning a degradation collapse" test_cycle_spanning_degradation;
  ]
