(** Back-to-back [Analysis] runs in one process must not leak state:
    the batch/serve worker pool reuses a forked worker for many jobs, so
    anything a run leaves behind — diagnostics, budget events, metric
    counters — would corrupt every later job in that worker.

    The deterministic JSON rendering ([Report.json_of_result
    ~timing:false]) doubles as a deep equality check over the whole
    result: points-to metrics, degradation ledger, and diagnostics. *)

open Helpers

let clean_src = "int *p; int x; void main(void) { p = &x; }"

let diag_src = "int *p; int x; void main(void) { p = &x; q = 3; }"

(* Cast-heavy nested struct that trips a 2-cells-per-object budget
   under the Offsets instance. *)
let heavy_src =
  "struct L1 { int *a; int *b; };\n\
   struct L2 { struct L1 x; struct L1 y; };\n\
   struct L3 { struct L2 x; struct L2 y; } s;\n\
   int v0, v1, v2, v3, v4, v5, v6, v7;\n\
   int *out;\n\
   void main(void) {\n\
  \  s.x.x.a = &v0; s.x.x.b = &v1; s.x.y.a = &v2; s.x.y.b = &v3;\n\
  \  s.y.x.a = &v4; s.y.x.b = &v5; s.y.y.a = &v6; s.y.y.b = &v7;\n\
  \  out = s.x.x.a;\n\
   }"

let tight : Core.Budget.limits =
  { Core.Budget.unlimited with Core.Budget.max_cells_per_object = Some 2 }

let run ?budget ?diags ~id src =
  Core.Analysis.run_source ?budget ?diags ~strategy:(strategy id)
    ~file:"<isolation>" src

let render r = Core.Report.json_of_result ~timing:false ~name:"<isolation>" r

let test_identical_reruns () =
  let r1 = run ~id:"cis" clean_src in
  let r2 = run ~id:"cis" clean_src in
  Alcotest.(check string) "identical back-to-back results" (render r1)
    (render r2)

(* A run that reported diagnostics must not taint the next run's
   context, nor the next run's result. *)
let test_diag_ctx_isolation () =
  let d1 = Cfront.Diag.create () in
  let r1 = run ~diags:d1 ~id:"cis" diag_src in
  Alcotest.(check bool) "first run has errors" true (Cfront.Diag.has_errors d1);
  Alcotest.(check bool) "first result carries diags" true
    (r1.Core.Analysis.diags <> []);
  let d2 = Cfront.Diag.create () in
  let r2 = run ~diags:d2 ~id:"cis" clean_src in
  Alcotest.(check int) "second context is empty" 0
    (List.length (Cfront.Diag.diagnostics d2));
  Alcotest.(check (list string)) "second result carries no diags" []
    (List.map (fun (p : Cfront.Diag.payload) -> p.Cfront.Diag.message)
       r2.Core.Analysis.diags)

(* A budget-degraded run must not leave degradation events (or tripped
   budget flags) behind for the next run. *)
let test_budget_isolation () =
  let r1 = run ~budget:tight ~id:"offsets" heavy_src in
  Alcotest.(check bool) "tight run degrades" true
    (r1.Core.Analysis.degraded <> []);
  let r2 = run ~id:"offsets" heavy_src in
  Alcotest.(check int) "unlimited rerun is full precision" 0
    (List.length r2.Core.Analysis.degraded);
  let r3 = run ~budget:tight ~id:"offsets" heavy_src in
  Alcotest.(check string) "degraded rerun is reproducible" (render r1)
    (render r3)

(* Instrumentation counters (Actx lookup/resolve calls) are per-run, not
   accumulated across runs. *)
let test_metrics_reset () =
  let r1 = run ~id:"offsets" heavy_src in
  let r2 = run ~id:"offsets" heavy_src in
  let m1 = r1.Core.Analysis.metrics and m2 = r2.Core.Analysis.metrics in
  Alcotest.(check int) "lookup_calls stable" m1.Core.Metrics.lookup_calls
    m2.Core.Metrics.lookup_calls;
  Alcotest.(check int) "resolve_calls stable" m1.Core.Metrics.resolve_calls
    m2.Core.Metrics.resolve_calls;
  Alcotest.(check int) "total_edges stable" m1.Core.Metrics.total_edges
    m2.Core.Metrics.total_edges

(* The worker-pool pattern: many different jobs interleaved in one
   process; the first and last occurrence of each must agree. *)
let test_interleaved_jobs () =
  let jobs =
    [
      ("cis", clean_src, None);
      ("offsets", heavy_src, Some tight);
      ("collapse-always", heavy_src, None);
      ("cis", diag_src, None);
    ]
  in
  let round () =
    List.map
      (fun (id, src, budget) ->
        let diags = Cfront.Diag.create () in
        render (run ?budget ~diags ~id src))
      jobs
  in
  let first = round () in
  for _ = 1 to 4 do
    ignore (round ())
  done;
  let last = round () in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check string) (Printf.sprintf "job %d stable over reuse" i) a b)
    (List.combine first last)

let suite =
  [
    tc "identical back-to-back runs" test_identical_reruns;
    tc "Diag.ctx isolation across runs" test_diag_ctx_isolation;
    tc "budget/degradation isolation across runs" test_budget_isolation;
    tc "metrics counters reset per run" test_metrics_reset;
    tc "interleaved jobs stable under process reuse" test_interleaved_jobs;
  ]
