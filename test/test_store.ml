(** The fixpoint store's governing invariant, exercised end to end: a
    corrupt, torn, or fault-injected store can cost time but never
    change a report. Every scenario — exact hit, ancestor warm start,
    bit flip, truncation, version skew, short write, ENOSPC, crash
    between fsync and rename, torn index tail, eviction — must produce
    the byte-identical stats-free report JSON a scratch solve renders,
    with the failure visible only in the store counters. *)

open Cfront
open Helpers

let layout = Layout.ilp32
let layout_id = "ilp32"
let sid = "cis"
let budget = Core.Budget.default

let src_a =
  {|
    struct node { struct node *next; int v; };
    struct node g1, g2, g3;
    struct node *head;
    void main(void) {
      head = &g1;
      g1.next = &g2;
      g2.next = &g3;
    }
  |}

(* [src_a] plus an appended function: purely additive — no statement
   before the edit point changes its key, so the cached [src_a]
   snapshot is an additive ancestor of this program. *)
let src_a_grown =
  {|
    struct node { struct node *next; int v; };
    struct node g1, g2, g3;
    struct node *head;
    void main(void) {
      head = &g1;
      g1.next = &g2;
      g2.next = &g3;
    }
    void tie(void) {
      g3.next = &g1;
    }
  |}

let src_b =
  {|
    int x, y;
    int *p, *q;
    void main(void) {
      p = &x;
      q = &y;
    }
  |}

let fresh_dir =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "structcast-store-%d-%d" (Unix.getpid ()) !ctr)

let cfg engine =
  { Store.Codec.strategy_id = sid; engine; layout_id; arith = `Spread; budget }

let key_of ?(engine = `Delta) src =
  Store.Codec.key (cfg engine) ~name:"t" ~diags_fp:"" (compile ~layout src)

(* One request through a fresh handle on [dir] — every call reopens the
   store, so recovery paths (index load, tmp sweep) run each time. *)
let serve ?(want = `Solver) ?(engine = `Delta) ?inject ?max_bytes ~dir src =
  let st = Store.open_store ?inject ?max_bytes dir in
  let served =
    Store.serve st ~want ~diags:[] ~name:"t" ~strategy_id:sid ~engine ~layout
      ~layout_id ~budget (compile ~layout src)
  in
  (st, served)

let scratch ?(engine = `Delta) src =
  Core.Solver.run ~layout ~arith:`Spread ~budget ~engine ~track:true
    ~strategy:(strategy sid) (compile ~layout src)

(* Graph.equal compares interned cell ids, so the scratch oracle must
   solve the warm solver's own program object, not a recompile. *)
let check_graph_vs_scratch label ~engine (warm : Core.Solver.t) =
  let cold =
    Core.Solver.run ~layout ~arith:`Spread ~budget ~engine ~track:true
      ~strategy:(strategy sid) warm.Core.Solver.prog
  in
  Alcotest.(check bool) label true
    (Core.Graph.equal warm.Core.Solver.graph cold.Core.Solver.graph);
  match Core.Graph.check_counts warm.Core.Solver.graph with
  | Some msg -> Alcotest.failf "%s: graph fails audit: %s" label msg
  | None -> ()

let render solver =
  Core.Report.json_of_result ~timing:false ~solver_stats:false ~name:"t"
    {
      Core.Analysis.solver;
      metrics = Core.Metrics.summarize solver;
      time_s = 0.;
      degraded = Core.Solver.degradations solver;
      diags = [];
    }

let scratch_json ?engine src = render (scratch ?engine src)

let check_origin label expected (s : Store.served) =
  let show = function
    | `Hit -> "hit"
    | `Ancestor n -> Printf.sprintf "ancestor+%d" n
    | `Cold -> "cold"
  in
  Alcotest.(check string) label (show expected) (show s.Store.sv_origin)

let check_json label src (s : Store.served) =
  Alcotest.(check string) label (scratch_json src) s.Store.sv_json

let solver_of (s : Store.served) =
  match s.Store.sv_result with
  | Some r -> r.Core.Analysis.solver
  | None -> Alcotest.fail "expected a live solver in the served result"

let at1 fault n = if n = 1 then Some fault else None

let rewrite path f =
  let ic = open_in_bin path in
  let bytes = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (f bytes);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Determinism of the codec                                            *)
(* ------------------------------------------------------------------ *)

(** Same source, compiled and solved twice in one process: identical
    store key and byte-identical snapshot — interning order and hash
    seeds never leak into the encoding. *)
let test_digest_stability () =
  let once () =
    let prog = compile ~layout src_a in
    let c = cfg `Delta in
    let key = Store.Codec.key c ~name:"t" ~diags_fp:"" prog in
    let solver =
      Core.Solver.run ~layout ~arith:`Spread ~budget ~engine:`Delta
        ~track:true ~strategy:(strategy sid) prog
    in
    match
      Store.Codec.encode solver ~config:c ~name:"t" ~key
        ~report_json:(render solver)
    with
    | Ok bytes -> (key, bytes)
    | Error why -> Alcotest.failf "encode refused: %s" why
  in
  let k1, b1 = once () in
  let k2, b2 = once () in
  Alcotest.(check string) "key stable" k1 k2;
  Alcotest.(check string) "snapshot bytes stable" b1 b2

(* ------------------------------------------------------------------ *)
(* Exact repeats                                                       *)
(* ------------------------------------------------------------------ *)

let test_exact_hit_json () =
  let dir = fresh_dir () in
  let st1, s1 = serve ~want:`Json ~dir src_a in
  check_origin "first request is cold" `Cold s1;
  Alcotest.(check int) "snapshot cached" 1
    (Store.counters st1).Core.Metrics.snapshots_written;
  check_json "cold json == scratch" src_a s1;
  let st2, s2 = serve ~want:`Json ~dir src_a in
  check_origin "repeat is a hit" `Hit s2;
  Alcotest.(check int) "hit counted" 1 (Store.counters st2).Core.Metrics.hits;
  Alcotest.(check int) "no miss" 0 (Store.counters st2).Core.Metrics.misses;
  Alcotest.(check string) "stored report byte-identical" s1.Store.sv_json
    s2.Store.sv_json

(** An exact repeat served in [`Solver] mode restores the snapshot and
    resumes with an empty worklist: zero statement visits, and the
    restored fixpoint is indistinguishable from the scratch solve. *)
let test_exact_hit_solver_zero_visits () =
  let dir = fresh_dir () in
  let _, s1 = serve ~dir src_a in
  check_origin "first request is cold" `Cold s1;
  let _, s2 = serve ~dir src_a in
  check_origin "repeat is a hit" `Hit s2;
  let warm = solver_of s2 in
  Alcotest.(check int) "zero solver visits" 0 warm.Core.Solver.rounds;
  check_graph_vs_scratch "graphs equal" ~engine:`Delta warm;
  Alcotest.(check string) "restored report == scratch"
    (scratch_json src_a) (render warm)

(* ------------------------------------------------------------------ *)
(* Ancestor warm start                                                 *)
(* ------------------------------------------------------------------ *)

(** A near-repeat (the cached program plus an appended function) warm
    starts from the cached ancestor and still lands on the scratch
    fixpoint — for every engine, since each leaves differently-shaped
    cursor state in its snapshots. *)
let test_ancestor_warm_start () =
  List.iter
    (fun (ename, engine) ->
      let dir = fresh_dir () in
      let _, s1 = serve ~engine ~dir src_a in
      check_origin (ename ^ ": base is cold") `Cold s1;
      let st2, s2 = serve ~engine ~dir src_a_grown in
      (match s2.Store.sv_origin with
      | `Ancestor n when n > 0 -> ()
      | _ -> Alcotest.failf "%s: expected an ancestor warm start" ename);
      Alcotest.(check int)
        (ename ^ ": warm start counted")
        1
        (Store.counters st2).Core.Metrics.ancestor_warm_starts;
      let warm = solver_of s2 in
      check_graph_vs_scratch (ename ^ ": graphs equal") ~engine warm;
      Alcotest.(check string)
        (ename ^ ": warm json == scratch")
        (scratch_json ~engine src_a_grown)
        s2.Store.sv_json;
      (* the grown program's own snapshot was cached: repeat is a hit *)
      let _, s3 = serve ~engine ~dir src_a_grown in
      check_origin (ename ^ ": grown repeat hits") `Hit s3)
    [ ("delta", `Delta); ("delta-nocycle", `Delta_nocycle); ("naive", `Naive) ]

(** A mid-function insertion used to renumber the lowering's later
    temporaries ([$t<n>] from one program-wide counter), turning a
    one-statement edit into a program-wide key change the additive
    ancestor match had to refuse. {!Norm.Tempnames} keys temporaries
    positionally within their statement, so the insertion adds exactly
    its own statement keys — the cached base {e is} an additive subset
    and the store warm starts from it. *)
let test_ancestor_insert_in_middle () =
  let edited =
    {|
    struct node { struct node *next; int v; };
    struct node g1, g2, g3;
    struct node *head;
    void main(void) {
      head = &g1;
      g3.next = &g1;
      g1.next = &g2;
      g2.next = &g3;
    }
  |}
  in
  let dir = fresh_dir () in
  let _, _ = serve ~dir src_a in
  let st2, s2 = serve ~dir edited in
  (match s2.Store.sv_origin with
  | `Ancestor n when n > 0 && n <= 4 -> ()
  | `Ancestor n ->
      Alcotest.failf
        "insertion should be a small additive delta, got ancestor+%d" n
  | _ -> Alcotest.fail "mid-function insertion should warm start");
  Alcotest.(check int) "warm start counted" 1
    (Store.counters st2).Core.Metrics.ancestor_warm_starts;
  check_json "warm json == scratch" edited s2

(** A changed statement (not an insertion) removes a key the cached base
    holds, so the base is {e not} an additive subset of the edit — the
    store must refuse the warm start (soundness) and fall back to
    scratch. *)
let test_ancestor_requires_additive () =
  let edited =
    {|
    struct node { struct node *next; int v; };
    struct node g1, g2, g3;
    struct node *head;
    void main(void) {
      head = &g2;
      g1.next = &g2;
      g2.next = &g3;
    }
  |}
  in
  let dir = fresh_dir () in
  let _, _ = serve ~dir src_a in
  let st2, s2 = serve ~dir edited in
  check_origin "non-additive edit solves cold" `Cold s2;
  Alcotest.(check int) "no warm start" 0
    (Store.counters st2).Core.Metrics.ancestor_warm_starts;
  check_json "cold json == scratch" edited s2

(* ------------------------------------------------------------------ *)
(* Corruption detection and quarantine                                 *)
(* ------------------------------------------------------------------ *)

(** A snapshot that took a bit flip on the way to disk is detected by
    its checksum at next load, moved to quarantine (never deleted), and
    the request is answered from scratch — byte-identical. *)
let test_bit_flip_quarantined () =
  let dir = fresh_dir () in
  let st1, _ = serve ~inject:(at1 Store.Bit_flip) ~dir src_a in
  Alcotest.(check int) "corrupt snapshot landed" 1
    (Store.counters st1).Core.Metrics.snapshots_written;
  let st2, s2 = serve ~dir src_a in
  check_origin "corrupt snapshot never serves" `Cold s2;
  Alcotest.(check int) "quarantine counted" 1
    (Store.counters st2).Core.Metrics.corrupt_quarantined;
  Alcotest.(check bool) "corrupt bytes kept for post-mortem" true
    (Sys.file_exists (Store.quarantine_path st2 (key_of src_a)));
  check_json "answer unaffected" src_a s2;
  (* the scratch solve re-cached a clean snapshot *)
  let _, s3 = serve ~dir src_a in
  check_origin "store healed" `Hit s3

let test_truncation_quarantined () =
  let dir = fresh_dir () in
  let st1, _ = serve ~dir src_a in
  rewrite
    (Store.snap_path st1 (key_of src_a))
    (fun bytes -> String.sub bytes 0 (String.length bytes / 2));
  let st2, s2 = serve ~dir src_a in
  check_origin "truncated snapshot never serves" `Cold s2;
  Alcotest.(check int) "quarantine counted" 1
    (Store.counters st2).Core.Metrics.corrupt_quarantined;
  check_json "answer unaffected" src_a s2

(** Version skew is its own gate, checked before anything else is
    parsed: a snapshot from a future format version is quarantined even
    when its checksum (recomputed here over the altered payload) is
    valid. *)
let test_version_skew_quarantined () =
  let dir = fresh_dir () in
  let st1, _ = serve ~dir src_a in
  rewrite
    (Store.snap_path st1 (key_of src_a))
    (fun bytes ->
      (* bytes = "structcast-snap v1\n" <body> "sum <32 hex>\n" *)
      let nl = String.index bytes '\n' in
      let trailer = 4 + 32 + 1 in
      let body = String.sub bytes nl (String.length bytes - trailer - nl) in
      let payload = "structcast-snap v999" ^ body in
      payload ^ "sum " ^ Digest.to_hex (Digest.string payload) ^ "\n");
  let st2, s2 = serve ~dir src_a in
  check_origin "future version never serves" `Cold s2;
  Alcotest.(check int) "quarantine counted" 1
    (Store.counters st2).Core.Metrics.corrupt_quarantined;
  check_json "answer unaffected" src_a s2

(* ------------------------------------------------------------------ *)
(* Write faults                                                        *)
(* ------------------------------------------------------------------ *)

(** kill -9 between fsync and rename: a durable temp file, no visible
    snapshot. The store stays loadable, the stray temp is swept at next
    open, and the next run of the same input is byte-identical. *)
let test_crash_between_fsync_and_rename () =
  let dir = fresh_dir () in
  let st1, s1 = serve ~inject:(at1 Store.Crash_rename) ~dir src_a in
  check_origin "the interrupted run still answers" `Cold s1;
  Alcotest.(check int) "write failure counted" 1
    (Store.counters st1).Core.Metrics.write_failures;
  Alcotest.(check int) "nothing stored" 0
    (Store.counters st1).Core.Metrics.snapshots_written;
  let snaps = Filename.concat dir "snaps" in
  let tmps d =
    Array.to_list (Sys.readdir d)
    |> List.filter (fun f -> Filename.check_suffix f ".tmp")
  in
  Alcotest.(check bool) "durable temp left behind" true (tmps snaps <> []);
  Alcotest.(check bool) "no snapshot became visible" false
    (Sys.file_exists (Store.snap_path st1 (key_of src_a)));
  let _, s2 = serve ~dir src_a in
  Alcotest.(check (list string)) "stray temp swept at open" [] (tmps snaps);
  check_origin "next run solves cold" `Cold s2;
  Alcotest.(check string) "and is byte-identical" s1.Store.sv_json
    s2.Store.sv_json;
  let _, s3 = serve ~dir src_a in
  check_origin "then the cache works again" `Hit s3

(** ENOSPC on the snapshot write is contained: counted, logged, and the
    answer this run computed is served unchanged. *)
let test_enospc_contained () =
  let dir = fresh_dir () in
  let st1, s1 = serve ~inject:(at1 Store.Enospc) ~dir src_a in
  check_origin "still answers" `Cold s1;
  Alcotest.(check int) "write failure counted" 1
    (Store.counters st1).Core.Metrics.write_failures;
  check_json "answer unaffected" src_a s1

(** A short write completes the rename — a torn-but-visible snapshot
    the checksum must catch on the next load. *)
let test_short_write_caught_later () =
  let dir = fresh_dir () in
  let _, _ = serve ~inject:(at1 Store.Short_write) ~dir src_a in
  let st2, s2 = serve ~dir src_a in
  check_origin "torn snapshot never serves" `Cold s2;
  Alcotest.(check int) "quarantine counted" 1
    (Store.counters st2).Core.Metrics.corrupt_quarantined;
  check_json "answer unaffected" src_a s2

(** The acceptance sweep: every fault kind, injected at each of the
    first three write ordinals (snapshot write, index append, …), over
    a three-request sequence — the report JSON must equal the scratch
    rendering every single time. *)
let test_differential_under_faults () =
  let oracle = scratch_json src_a in
  List.iter
    (fun (kname, kind) ->
      for ordinal = 1 to 3 do
        let dir = fresh_dir () in
        let inject n = if n = ordinal then Some kind else None in
        for req = 1 to 3 do
          let _, s = serve ~inject ~dir src_a in
          Alcotest.(check string)
            (Printf.sprintf "%s@%d request %d" kname ordinal req)
            oracle s.Store.sv_json
        done
      done)
    [
      ("shortwrite", Store.Short_write);
      ("bitflip", Store.Bit_flip);
      ("enospc", Store.Enospc);
      ("crash", Store.Crash_rename);
    ]

(* ------------------------------------------------------------------ *)
(* Index durability and eviction                                       *)
(* ------------------------------------------------------------------ *)

(** A torn tail (an index write that died mid-line) and arbitrary
    garbage lines are both recovered by skipping; the snapshots remain
    servable. *)
let test_index_torn_tail_recovery () =
  let dir = fresh_dir () in
  let _, _ = serve ~dir src_a in
  let index = Filename.concat dir "index.log" in
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 index in
  output_string oc "not an index line\nv1\tadd\ttorn-fragm";
  close_out oc;
  let _, s2 = serve ~dir src_a in
  check_origin "snapshot still serves" `Hit s2;
  Alcotest.(check string) "byte-identical" (scratch_json src_a)
    s2.Store.sv_json

(** LRU under a tiny byte budget: caching a second program evicts the
    first; the store keeps at least one snapshot. *)
let test_lru_eviction () =
  let dir = fresh_dir () in
  let _, _ = serve ~max_bytes:1 ~dir src_a in
  let st2, _ = serve ~max_bytes:1 ~dir src_b in
  Alcotest.(check int) "eviction counted" 1
    (Store.counters st2).Core.Metrics.evictions;
  Alcotest.(check int) "one snapshot kept" 1 (List.length (Store.live st2));
  Alcotest.(check bool) "the newest survived" true
    (Sys.file_exists (Store.snap_path st2 (key_of src_b)));
  Alcotest.(check bool) "the oldest was evicted" false
    (Sys.file_exists (Store.snap_path st2 (key_of src_a)));
  (* the evicted program just re-solves *)
  let _, s3 = serve ~max_bytes:1 ~dir src_a in
  check_origin "evicted input solves cold" `Cold s3;
  check_json "and is unaffected" src_a s3

(* ------------------------------------------------------------------ *)
(* Fault-plan parsing (lib/server syntax shared by env and CLI)        *)
(* ------------------------------------------------------------------ *)

let test_fault_plan_parsing () =
  (match Server.Faults.store_parse "bitflip@1,crash@3" with
  | Ok plan ->
      let hook = Server.Faults.store_hook plan in
      Alcotest.(check bool) "bitflip at 1" true (hook 1 = Some Store.Bit_flip);
      Alcotest.(check bool) "nothing at 2" true (hook 2 = None);
      Alcotest.(check bool) "crash at 3" true (hook 3 = Some Store.Crash_rename)
  | Error e -> Alcotest.failf "plan rejected: %s" e);
  (match Server.Faults.store_parse "bitflip@0" with
  | Ok _ -> Alcotest.fail "ordinal 0 must be rejected (ordinals are 1-based)"
  | Error _ -> ());
  match Server.Faults.store_parse "gamma-ray@1" with
  | Ok _ -> Alcotest.fail "unknown fault kind must be rejected"
  | Error _ -> ()

let suite =
  [
    tc "digest stability" test_digest_stability;
    tc "exact hit (json)" test_exact_hit_json;
    tc "exact hit (solver): zero visits" test_exact_hit_solver_zero_visits;
    tc "ancestor warm start, all engines" test_ancestor_warm_start;
    tc "insert-in-the-middle is additive" test_ancestor_insert_in_middle;
    tc "ancestor requires additive edit" test_ancestor_requires_additive;
    tc "bit flip quarantined, not deleted" test_bit_flip_quarantined;
    tc "truncation quarantined" test_truncation_quarantined;
    tc "version skew quarantined" test_version_skew_quarantined;
    tc "crash between fsync and rename" test_crash_between_fsync_and_rename;
    tc "enospc contained" test_enospc_contained;
    tc "short write caught at next load" test_short_write_caught_later;
    tc "differential under all fault plans" test_differential_under_faults;
    tc "index torn-tail recovery" test_index_torn_tail_recovery;
    tc "lru eviction" test_lru_eviction;
    tc "fault-plan parsing" test_fault_plan_parsing;
  ]
