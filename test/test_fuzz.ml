(** Fuzz smoke test: ~200 generated programs through the whole pipeline
    under tight budgets, across all four instances. Nothing may escape —
    every run must terminate with a result (possibly degraded). Failing
    seeds are reported so a crash reproduces with
    [Cgen.generate ~seed ()]. *)

open Helpers

let n_seeds = 200

let cfg =
  { Cgen.default with Cgen.n_structs = 4; n_stmts = 20; cast_rate = 0.5 }

let tight : Core.Budget.limits =
  {
    Core.Budget.max_steps = Some 500;
    timeout_s = Some 1.0;
    max_cells_per_object = Some 3;
    max_total_cells = Some 400;
  }

let all_ids = [ "collapse-always"; "collapse-on-cast"; "cis"; "offsets" ]

let test_generated_programs () =
  let failures = ref [] in
  for seed = 1 to n_seeds do
    let src = Cgen.generate ~cfg ~seed () in
    List.iter
      (fun id ->
        match
          Core.Analysis.run_source ~budget:tight ~strategy:(strategy id)
            ~file:(Printf.sprintf "<fuzz-%d>" seed)
            src
        with
        | r -> ignore r.Core.Analysis.metrics
        | exception e ->
            failures :=
              Printf.sprintf "seed %d / %s: %s" seed id (Printexc.to_string e)
              :: !failures)
      all_ids
  done;
  if !failures <> [] then
    Alcotest.failf "%d escaping exception(s):\n%s"
      (List.length !failures)
      (String.concat "\n" (List.rev !failures))

let test_generated_with_calls () =
  let cfg = { cfg with Cgen.with_calls = true; n_stmts = 15 } in
  let failures = ref [] in
  for seed = 1 to 50 do
    let src = Cgen.generate ~cfg ~seed () in
    List.iter
      (fun id ->
        match
          Core.Analysis.run_source ~budget:tight ~strategy:(strategy id)
            ~file:(Printf.sprintf "<fuzz-calls-%d>" seed)
            src
        with
        | r -> ignore r.Core.Analysis.metrics
        | exception e ->
            failures :=
              Printf.sprintf "seed %d / %s: %s" seed id (Printexc.to_string e)
              :: !failures)
      all_ids
  done;
  if !failures <> [] then
    Alcotest.failf "%d escaping exception(s):\n%s"
      (List.length !failures)
      (String.concat "\n" (List.rev !failures))

(* Truncated generated programs exercise the recovering parser: the only
   acceptable outcomes are a (possibly partial) result or a recorded
   diagnostic — never an escaping exception. *)
let test_truncated_inputs_recover () =
  let failures = ref [] in
  for seed = 1 to 50 do
    let src = Cgen.generate ~cfg ~seed () in
    let cut = String.length src * (1 + (seed mod 3)) / 4 in
    let src = String.sub src 0 cut in
    let diags = Cfront.Diag.create () in
    (match
       Core.Analysis.run_source ~budget:tight ~diags
         ~strategy:(strategy "cis")
         ~file:(Printf.sprintf "<fuzz-cut-%d>" seed)
         src
     with
    | r -> ignore r.Core.Analysis.metrics
    | exception Cfront.Diag.Error _ ->
        (* a fatal front-end error (e.g. the diagnostics cap) is fine *)
        ()
    | exception e ->
        failures :=
          Printf.sprintf "seed %d: %s" seed (Printexc.to_string e)
          :: !failures);
    ignore (Cfront.Diag.diagnostics diags)
  done;
  if !failures <> [] then
    Alcotest.failf "%d escaping exception(s):\n%s"
      (List.length !failures)
      (String.concat "\n" (List.rev !failures))

let suite =
  [
    tc "200 generated programs, 4 instances, tight budgets"
      test_generated_programs;
    tc "generated programs with calls" test_generated_with_calls;
    tc "truncated inputs recover or diagnose" test_truncated_inputs_recover;
  ]
