(** Fuzz smoke test: ~200 generated programs through the whole pipeline
    under tight budgets, across all four instances. Nothing may escape —
    every run must terminate with a result (possibly degraded).

    The run is deterministic: seeds are [base_seed .. base_seed+n-1]
    with a fixed default base, overridable via [STRUCTCAST_FUZZ_SEED].
    Failures print both the base seed (to re-run the whole suite
    identically in CI) and the individual failing seeds (to reproduce
    one crash with [Cgen.generate ~seed ()]). *)

open Helpers

let n_seeds = 200

let base_seed =
  match Sys.getenv_opt "STRUCTCAST_FUZZ_SEED" with
  | None | Some "" -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None ->
          failwith (Printf.sprintf "STRUCTCAST_FUZZ_SEED: not an integer: %S" s))

let fail_with_seeds failures =
  Alcotest.failf
    "%d escaping exception(s) (base seed %d; rerun with \
     STRUCTCAST_FUZZ_SEED=%d):\n\
     %s"
    (List.length failures) base_seed base_seed
    (String.concat "\n" (List.rev failures))

let cfg =
  { Cgen.default with Cgen.n_structs = 4; n_stmts = 20; cast_rate = 0.5 }

let tight : Core.Budget.limits =
  {
    Core.Budget.max_steps = Some 500;
    timeout_s = Some 1.0;
    max_cells_per_object = Some 3;
    max_total_cells = Some 400;
  }

let all_ids = [ "collapse-always"; "collapse-on-cast"; "cis"; "offsets" ]

(* After every solve — these run tight budgets, so most trip them and go
   through degradation merges (collapse merges edges onto a
   representative, then removes the fine-grained sources) — the graph's
   bookkeeping must still audit clean: the edge_count counter equals the
   summed per-source set sizes and the per-object index is exact. *)
let check_bookkeeping ~seed ~id failures (r : Core.Analysis.result) =
  ignore r.Core.Analysis.metrics;
  match Core.Graph.check_counts r.Core.Analysis.solver.Core.Solver.graph with
  | None -> ()
  | Some msg ->
      failures :=
        Printf.sprintf "seed %d / %s: graph audit: %s" seed id msg :: !failures

let test_generated_programs () =
  let failures = ref [] in
  for i = 0 to n_seeds - 1 do
    let seed = base_seed + i in
    let src = Cgen.generate ~cfg ~seed () in
    List.iter
      (fun id ->
        match
          Core.Analysis.run_source ~budget:tight ~strategy:(strategy id)
            ~file:(Printf.sprintf "<fuzz-%d>" seed)
            src
        with
        | r -> check_bookkeeping ~seed ~id failures r
        | exception e ->
            failures :=
              Printf.sprintf "seed %d / %s: %s" seed id (Printexc.to_string e)
              :: !failures)
      all_ids
  done;
  if !failures <> [] then fail_with_seeds !failures

let test_generated_with_calls () =
  let cfg = { cfg with Cgen.with_calls = true; n_stmts = 15 } in
  let failures = ref [] in
  for i = 0 to 49 do
    let seed = base_seed + i in
    let src = Cgen.generate ~cfg ~seed () in
    List.iter
      (fun id ->
        match
          Core.Analysis.run_source ~budget:tight ~strategy:(strategy id)
            ~file:(Printf.sprintf "<fuzz-calls-%d>" seed)
            src
        with
        | r -> check_bookkeeping ~seed ~id failures r
        | exception e ->
            failures :=
              Printf.sprintf "seed %d / %s: %s" seed id (Printexc.to_string e)
              :: !failures)
      all_ids
  done;
  if !failures <> [] then fail_with_seeds !failures

(* Truncated generated programs exercise the recovering parser: the only
   acceptable outcomes are a (possibly partial) result or a recorded
   diagnostic — never an escaping exception. *)
let test_truncated_inputs_recover () =
  let failures = ref [] in
  for i = 0 to 49 do
    let seed = base_seed + i in
    let src = Cgen.generate ~cfg ~seed () in
    let cut = String.length src * (1 + (seed mod 3)) / 4 in
    let src = String.sub src 0 cut in
    let diags = Cfront.Diag.create () in
    (match
       Core.Analysis.run_source ~budget:tight ~diags
         ~strategy:(strategy "cis")
         ~file:(Printf.sprintf "<fuzz-cut-%d>" seed)
         src
     with
    | r -> ignore r.Core.Analysis.metrics
    | exception Cfront.Diag.Error _ ->
        (* a fatal front-end error (e.g. the diagnostics cap) is fine *)
        ()
    | exception e ->
        failures :=
          Printf.sprintf "seed %d: %s" seed (Printexc.to_string e)
          :: !failures);
    ignore (Cfront.Diag.diagnostics diags)
  done;
  if !failures <> [] then fail_with_seeds !failures

(* Random edit scripts drive the incremental-vs-scratch differential
   oracle: 10 generated base programs x 4 chained single-statement edits
   x 4 instances = 160 warm solves, each of which must reach exactly the
   fixpoint a from-scratch solve of the edited program reaches
   ({!Core.Graph.equal} plus a clean bookkeeping audit). Fallbacks to
   scratch are legal — the cascade budget is policy — but trivially
   satisfy the oracle, so we also require that some edits warm-start. *)
let test_random_edit_scripts () =
  let failures = ref [] in
  let warms = ref 0 in
  for i = 0 to 9 do
    let seed = base_seed + i in
    let cfg = { cfg with Cgen.n_stmts = 25 } in
    let src = Cgen.generate ~cfg ~seed () in
    List.iter
      (fun id ->
        match
          Norm.Lower.compile ~file:(Printf.sprintf "<fuzz-edit-%d>" seed) src
        with
        | exception e ->
            failures :=
              Printf.sprintf "seed %d / %s: compile: %s" seed id
                (Printexc.to_string e)
              :: !failures
        | base -> (
            let rand = Random.State.make [| base_seed; seed; 17 |] in
            match
              let t =
                ref
                  (Core.Solver.run ~track:true ~strategy:(strategy id) base)
              in
              for _edit = 1 to 4 do
                match Incr.Edit.random_op ~rand !t.Core.Solver.prog with
                | None -> ()
                | Some op ->
                    let edited = Incr.Edit.apply !t.Core.Solver.prog [ op ] in
                    let t', st = Incr.Engine.reanalyze !t edited in
                    t := t';
                    if not st.Incr.Engine.fallback then incr warms;
                    let scratch =
                      Core.Solver.run ~strategy:(strategy id)
                        !t.Core.Solver.prog
                    in
                    if
                      not
                        (Core.Graph.equal !t.Core.Solver.graph
                           scratch.Core.Solver.graph)
                    then
                      failures :=
                        Printf.sprintf
                          "seed %d / %s: warm <> scratch after [%s]" seed id
                          (Format.asprintf "%a" Incr.Edit.pp_op op)
                        :: !failures;
                    match
                      Core.Graph.check_counts !t.Core.Solver.graph
                    with
                    | Some msg ->
                        failures :=
                          Printf.sprintf "seed %d / %s: audit: %s" seed id msg
                          :: !failures
                    | None -> ()
              done
            with
            | () -> ()
            | exception e ->
                failures :=
                  Printf.sprintf "seed %d / %s: %s" seed id
                    (Printexc.to_string e)
                  :: !failures))
      all_ids
  done;
  if !warms = 0 then
    failures := "no edit script warm-started (all fell back)" :: !failures;
  if !failures <> [] then fail_with_seeds !failures

let suite =
  [
    tc "200 generated programs, 4 instances, tight budgets"
      test_generated_programs;
    tc "generated programs with calls" test_generated_with_calls;
    tc "truncated inputs recover or diagnose" test_truncated_inputs_recover;
    tc "40 random edit scripts, incremental == scratch"
      test_random_edit_scripts;
  ]
