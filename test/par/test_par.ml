(** The parallel engine's support surface: the wall/CPU clock split
    ([Budget] deadlines must not dilate under domains), the domain-safe
    cell interner, actual engagement of the parallel drain on a wide
    workload, and degradation consistency when a budget trips a solve
    that has parallel rounds in flight. The schedule-independence of the
    fixpoint itself is covered by the differential suite
    ([Test_differential]), which runs delta-par at widths 1, 2 and 4
    over the corpus and fuzz programs.

    This is its own binary (see the dune file): the OCaml 5 runtime
    forbids [Unix.fork] in a process that has ever spawned a domain,
    and the server suite forks workers. *)

open Cfront
open Norm
open Helpers

(* ------------------------------------------------------------------ *)
(* Clocks: [now] is wall time, [cpu] is CPU time                       *)
(* ------------------------------------------------------------------ *)

(* A sleep advances the wall clock but (nearly) no CPU time. The old
   [now] was [Sys.time], which under N domains accumulates up to Nx
   faster than wall time and fired time budgets early. *)
let test_clock_split () =
  let w0 = Core.Unix_time.now () in
  let c0 = Core.Unix_time.cpu () in
  Unix.sleepf 0.06;
  let dw = Core.Unix_time.now () -. w0 in
  let dc = Core.Unix_time.cpu () -. c0 in
  if dw < 0.04 then
    Alcotest.failf "now () advanced only %.4f s across a 60 ms sleep" dw;
  if dc > 0.04 then
    Alcotest.failf "cpu () advanced %.4f s across a sleep — wall clock?" dc

let test_clock_monotone () =
  let prev = ref (Core.Unix_time.now ()) in
  for _ = 1 to 1000 do
    let t = Core.Unix_time.now () in
    if t < !prev then Alcotest.fail "now () went backwards";
    prev := t
  done

(* ------------------------------------------------------------------ *)
(* Interner: concurrent [Cell.v] from several domains                  *)
(* ------------------------------------------------------------------ *)

(* Four domains intern the same 2000 (object, selector) pairs in
   different orders. Exactly 2000 new cells may exist afterwards, every
   domain must have received the same physical cell for the same pair,
   and [of_id] must invert [id] for all of them. *)
let test_interner_hammer () =
  let vars =
    Array.init 8 (fun i ->
        Cvar.fresh
          ~name:(Printf.sprintf "par_cell_%d" i)
          ~ty:Ctype.Void ~kind:Cvar.Global)
  in
  let offs = 250 in
  let total = Array.length vars * offs in
  (* the placeholder below interns one extra pair; do it before the
     baseline count *)
  let placeholder = Core.Cell.whole vars.(0) in
  let c0 = Core.Cell.interned_count () in
  let worker k () =
    let out = Array.make total placeholder in
    for step = 0 to total - 1 do
      (* even domains intern ascending, odd ones descending, so the
         lock-free read path races the locked insert path both ways *)
      let i = if k mod 2 = 0 then step else total - 1 - step in
      out.(i) <- Core.Cell.v vars.(i mod 8) (Core.Cell.Off (i / 8 * 4))
    done;
    out
  in
  let doms = Array.init 4 (fun k -> Domain.spawn (worker k)) in
  let results = Array.map Domain.join doms in
  let created = Core.Cell.interned_count () - c0 in
  if created <> total then
    Alcotest.failf "4 domains interning %d distinct pairs created %d cells"
      total created;
  let first = results.(0) in
  Array.iteri
    (fun k cells ->
      Array.iteri
        (fun i c ->
          if not (c == first.(i)) then
            Alcotest.failf
              "domain %d got a different physical cell for pair %d" k i;
          if not (Core.Cell.of_id (Core.Cell.id c) == c) then
            Alcotest.failf "of_id (id c) is not c for pair %d" i)
        cells)
    results

(* ------------------------------------------------------------------ *)
(* Parallel drain: engagement and degradation consistency              *)
(* ------------------------------------------------------------------ *)

let par_prog () =
  let cfg =
    { Cgen.default with Cgen.n_stmts = 400; n_structs = 4; cast_rate = 0.5 }
  in
  Lower.compile ~file:"<par>" (Cgen.generate ~cfg ~seed:7 ())

let stats_free (solver : Core.Solver.t) : string =
  Core.Report.json_of_result ~timing:false ~solver_stats:false ~name:"<par>"
    {
      Core.Analysis.solver;
      metrics = Core.Metrics.summarize solver;
      time_s = 0.;
      degraded = Core.Solver.degradations solver;
      diags = [];
    }

let audit label (t : Core.Solver.t) =
  match Core.Graph.check_counts t.Core.Solver.graph with
  | Some msg -> Alcotest.failf "%s: graph audit: %s" label msg
  | None -> ()

(* The corpus programs are too narrow to reach the width threshold, so
   the differential matrix alone could pass with the parallel path
   dead. This pins that a wide workload actually runs parallel rounds
   — and still lands on the sequential fixpoint, byte for byte. *)
let test_par_engages () =
  let prog = par_prog () in
  let seq = Core.Solver.run ~strategy:(strategy "cis") prog in
  let par =
    Core.Solver.run ~engine:(`Delta_par 4) ~strategy:(strategy "cis") prog
  in
  if par.Core.Solver.par_frontier_rounds = 0 then
    Alcotest.fail
      "delta-par at 4 domains never entered a parallel round on a \
       400-statement workload";
  audit "par" par;
  if not (Core.Graph.equal par.Core.Solver.graph seq.Core.Solver.graph) then
    Alcotest.fail "delta-par fixpoint differs from delta";
  if stats_free par <> stats_free seq then
    Alcotest.fail "delta-par stats-free report differs from delta"

(* A budget trip mid-parallel-solve: where the budget lands is
   schedule-dependent across engines (delta-par at step N has derived a
   different edge set than delta at step N, and the collapse freezes
   pre-trip edges), so the degraded fixpoint is NOT compared against
   the sequential engine. What the parallel engine does owe is
   (a) consistency — the collapse aborts any in-flight phase via the
   generation counter and the graph's bookkeeping survives intact —
   and (b) determinism: budgets are only checked on the sequential
   side (statement visits and frontier gaps) and region results merge
   in region order, so rerunning the same configuration reproduces the
   identical graph and stats-free report, racy steal counts and all.
   max_steps = 1600 is tuned so the trip lands after several parallel
   rounds on this workload — mid-phase, not before the drain widens. *)
let test_par_degrades_mid_phase_deterministic () =
  let prog = par_prog () in
  let budget =
    { Core.Budget.unlimited with Core.Budget.max_steps = Some 1600 }
  in
  let run () =
    Core.Solver.run ~budget ~engine:(`Delta_par 4)
      ~strategy:(strategy "offsets") prog
  in
  let a = run () in
  let b = run () in
  if a.Core.Solver.par_frontier_rounds = 0 then
    Alcotest.fail
      "the step budget tripped before any parallel round — the abort \
       path went unexercised";
  if Core.Solver.degradations a = [] then
    Alcotest.fail "the parallel solve never degraded";
  audit "steps/a" a;
  audit "steps/b" b;
  if not (Core.Graph.equal a.Core.Solver.graph b.Core.Solver.graph) then
    Alcotest.failf
      "degraded delta-par is not deterministic: %d edges, then %d"
      (Core.Graph.edge_count a.Core.Solver.graph)
      (Core.Graph.edge_count b.Core.Solver.graph);
  if stats_free a <> stats_free b then
    Alcotest.fail "degraded delta-par reports differ across reruns"

(* A ~1 ms timeout trips at a wall-clock-dependent point, so nothing
   about the result is reproducible — but the solve must still land on
   a consistent graph, not hang, and record the degradation. *)
let test_par_degrades_timeout_consistent () =
  let prog = par_prog () in
  let budget =
    { Core.Budget.unlimited with Core.Budget.timeout_s = Some 0.001 }
  in
  let par =
    Core.Solver.run ~budget ~engine:(`Delta_par 4)
      ~strategy:(strategy "offsets") prog
  in
  if Core.Solver.degradations par = [] then
    Alcotest.fail "a 1 ms timeout never tripped on a 400-statement solve";
  audit "timeout" par

let suite =
  [
    tc "now() is wall time, cpu() is not" test_clock_split;
    tc "now() is monotone" test_clock_monotone;
    tc "interner: 4-domain Cell.v hammer" test_interner_hammer;
    tc "delta-par engages and matches delta" test_par_engages;
    tc "mid-phase step-budget abort is deterministic"
      test_par_degrades_mid_phase_deterministic;
    tc "timeout abort leaves a consistent graph"
      test_par_degrades_timeout_consistent;
  ]
