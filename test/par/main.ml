(* Runner for the suites that spawn domains. These live in their own
   binary: the OCaml 5 runtime forbids Unix.fork in a process that has
   ever created a domain, and the cli/server suites in ../main.ml fork
   workers and subprocesses. *)
let () =
  Alcotest.run "structcast-par"
    [
      ("differential", Test_differential.suite);
      ("par", Test_par.suite);
    ]
