(** Differential property test: the four solver engines — delta
    (difference propagation with online cycle elimination), delta-par
    (the same drain run on several domains, here at widths 1, 2 and 4),
    delta-nocycle (the ablation baseline), and the naive reference
    worklist — must produce the exact same points-to graph, edge-set
    equality via {!Core.Graph.equal}, on the whole embedded corpus and
    on fuzz-generated programs, for all four framework instances. The
    stats-free JSON rendering ([~solver_stats:false]) of each engine's
    result must agree byte-for-byte.

    Runs are unbudgeted: the engines trip budgets at different moments
    and would legitimately degrade different objects, so only
    full-precision fixpoints are comparable. Degradation × delta
    interplay is exercised separately (the fuzz suite runs tight budgets
    with the delta engine and audits the graph bookkeeping, and the
    cycle suite spans a collapse across a unification). *)

open Norm
open Helpers

let all_ids = [ "collapse-always"; "collapse-on-cast"; "cis"; "offsets" ]

let base_seed =
  match Sys.getenv_opt "STRUCTCAST_FUZZ_SEED" with
  | None | Some "" -> 1
  | Some s -> int_of_string (String.trim s)

(* Solve [prog] under all three engines and compare fixpoints. Cost
   ordering is part of the contract:
   - the nocycle delta engine may not do MORE statement visits than
     naive (it re-visits strictly less: only when a consumed cell or
     subscribed object grew).
   Cycle elimination's win over delta-nocycle (no more visits, fewer
   fact reads) is asserted on workloads big enough to show it
   ([test_delta_consumes_less] and the ext-e bench gate in CI) — on a
   tiny program a collapse's one-off costs (cursor re-drains, a shared
   class waking every member's subscribers at once) can exceed what the
   cycle ever wasted by a handful of visits. *)
let check_program ~label (prog : Nast.program) =
  List.iter
    (fun id ->
      let run engine = Core.Analysis.run ~engine ~strategy:(strategy id) prog in
      let d = run `Delta and dn = run `Delta_nocycle and n = run `Naive in
      (* width 1 must take the sequential path, 2 and 4 the parallel
         one (when the worklist gets wide enough to spawn); the summary
         engine exercises the bottom-up SCC schedule *)
      let pars =
        ("summary", run `Summary)
        :: List.map
             (fun nd -> (Printf.sprintf "delta-par@%d" nd, run (`Delta_par nd)))
             [ 1; 2; 4 ]
      in
      let graph (r : Core.Analysis.result) = r.Core.Analysis.solver.Core.Solver.graph in
      let check_eq ename (r : Core.Analysis.result) =
        if not (Core.Graph.equal (graph r) (graph n)) then
          Alcotest.failf "%s / %s: %s fixpoint (%d edges) <> naive (%d edges)"
            label id ename
            (Core.Graph.edge_count (graph r))
            (Core.Graph.edge_count (graph n));
        match Core.Graph.check_counts (graph r) with
        | Some msg -> Alcotest.failf "%s / %s (%s): %s" label id ename msg
        | None -> ()
      in
      check_eq "delta" d;
      check_eq "delta-nocycle" dn;
      List.iter (fun (ename, r) -> check_eq ename r) pars;
      let visits (r : Core.Analysis.result) =
        r.Core.Analysis.solver.Core.Solver.rounds
      in
      if visits dn > visits n then
        Alcotest.failf "%s / %s: delta-nocycle did %d visits, naive only %d"
          label id (visits dn) (visits n);
      (* identical fixpoint ⇒ identical stats-free report, byte for
         byte — the fields left after [~solver_stats:false] are a pure
         function of the fixpoint *)
      let json (r : Core.Analysis.result) =
        Core.Report.json_of_result ~timing:false ~solver_stats:false
          ~name:label r
      in
      let jn = json n in
      List.iter
        (fun (ename, r) ->
          let j = json r in
          if j <> jn then
            Alcotest.failf "%s / %s: %s stats-free report differs:\n%s\n%s"
              label id ename j jn)
        (("delta", d) :: ("delta-nocycle", dn) :: pars))
    all_ids

let test_corpus () =
  List.iter
    (fun (p : Suite.program) ->
      let prog = Lower.compile ~file:p.Suite.name p.Suite.source in
      check_program ~label:p.Suite.name prog)
    Suite.programs

let test_fuzz_plain () =
  let cfg =
    { Cgen.default with Cgen.n_structs = 4; n_stmts = 40; cast_rate = 0.5 }
  in
  for i = 0 to 29 do
    let seed = base_seed + i in
    let src = Cgen.generate ~cfg ~seed () in
    let prog = Lower.compile ~file:(Printf.sprintf "<diff-%d>" seed) src in
    check_program ~label:(Printf.sprintf "seed %d" seed) prog
  done

let test_fuzz_calls () =
  let cfg =
    { Cgen.n_structs = 3; n_stmts = 25; cast_rate = 0.5; with_calls = true }
  in
  for i = 0 to 9 do
    let seed = base_seed + i in
    let src = Cgen.generate ~cfg ~seed () in
    let prog = Lower.compile ~file:(Printf.sprintf "<diffc-%d>" seed) src in
    check_program ~label:(Printf.sprintf "calls seed %d" seed) prog
  done

(* The win the delta engines exist for, asserted on a workload big
   enough to show it: fewer facts consumed than the naive full re-reads,
   and fewer again once cycle elimination is on. *)
let test_delta_consumes_less () =
  let cfg =
    { Cgen.default with Cgen.n_stmts = 200; n_structs = 4; cast_rate = 0.5 }
  in
  let src = Cgen.generate ~cfg ~seed:base_seed () in
  let prog = Lower.compile ~file:"<diff-big>" src in
  List.iter
    (fun id ->
      let run engine = Core.Solver.run ~engine ~strategy:(strategy id) prog in
      let d = run `Delta and dn = run `Delta_nocycle and n = run `Naive in
      if dn.Core.Solver.facts_consumed >= n.Core.Solver.facts_consumed then
        Alcotest.failf
          "%s: delta-nocycle consumed %d facts, naive %d — no \
           difference-propagation win"
          id dn.Core.Solver.facts_consumed n.Core.Solver.facts_consumed;
      if d.Core.Solver.facts_consumed > dn.Core.Solver.facts_consumed then
        Alcotest.failf
          "%s: cycle elimination consumed %d facts, nocycle only %d — \
           cycles cost work"
          id d.Core.Solver.facts_consumed dn.Core.Solver.facts_consumed;
      if d.Core.Solver.rounds > dn.Core.Solver.rounds then
        Alcotest.failf
          "%s: cycle elimination did %d visits, nocycle only %d" id
          d.Core.Solver.rounds dn.Core.Solver.rounds;
      (* the suffix/full ratio is the same claim per-visit *)
      if d.Core.Solver.delta_facts > d.Core.Solver.full_facts then
        Alcotest.failf "%s: delta iterated more facts than the sets held" id)
    all_ids

let suite =
  [
    tc "delta == delta-nocycle == naive on the corpus" test_corpus;
    tc "engine matrix on 30 fuzz programs" test_fuzz_plain;
    tc "engine matrix on fuzz programs with calls" test_fuzz_calls;
    tc "delta consumes strictly fewer facts" test_delta_consumes_less;
  ]
