(** Differential property test: the delta (difference-propagation) engine
    must produce the exact same points-to graph as the naive reference
    engine — edge-set equality via {!Core.Graph.equal} — on the whole
    embedded corpus and on fuzz-generated programs, for all four
    framework instances.

    Runs are unbudgeted: the two engines trip budgets at different
    moments and would legitimately degrade different objects, so only
    full-precision fixpoints are comparable. Degradation × delta
    interplay is exercised separately (the fuzz suite runs tight budgets
    with the delta engine and audits the graph bookkeeping). *)

open Norm
open Helpers

let all_ids = [ "collapse-always"; "collapse-on-cast"; "cis"; "offsets" ]

let base_seed =
  match Sys.getenv_opt "STRUCTCAST_FUZZ_SEED" with
  | None | Some "" -> 1
  | Some s -> int_of_string (String.trim s)

(* Solve [prog] under both engines and compare fixpoints; also check the
   delta engine did not do MORE statement visits than naive (it re-visits
   strictly less: only when a consumed cell or subscribed object grew). *)
let check_program ~label (prog : Nast.program) =
  List.iter
    (fun id ->
      let d = Core.Solver.run ~engine:`Delta ~strategy:(strategy id) prog in
      let n = Core.Solver.run ~engine:`Naive ~strategy:(strategy id) prog in
      if not (Core.Graph.equal d.Core.Solver.graph n.Core.Solver.graph) then
        Alcotest.failf "%s / %s: delta fixpoint (%d edges) <> naive (%d edges)"
          label id
          (Core.Graph.edge_count d.Core.Solver.graph)
          (Core.Graph.edge_count n.Core.Solver.graph);
      (match Core.Graph.check_counts d.Core.Solver.graph with
      | Some msg -> Alcotest.failf "%s / %s (delta): %s" label id msg
      | None -> ());
      if d.Core.Solver.rounds > n.Core.Solver.rounds then
        Alcotest.failf "%s / %s: delta did %d visits, naive only %d" label id
          d.Core.Solver.rounds n.Core.Solver.rounds)
    all_ids

let test_corpus () =
  List.iter
    (fun (p : Suite.program) ->
      let prog = Lower.compile ~file:p.Suite.name p.Suite.source in
      check_program ~label:p.Suite.name prog)
    Suite.programs

let test_fuzz_plain () =
  let cfg =
    { Cgen.default with Cgen.n_structs = 4; n_stmts = 40; cast_rate = 0.5 }
  in
  for i = 0 to 29 do
    let seed = base_seed + i in
    let src = Cgen.generate ~cfg ~seed () in
    let prog = Lower.compile ~file:(Printf.sprintf "<diff-%d>" seed) src in
    check_program ~label:(Printf.sprintf "seed %d" seed) prog
  done

let test_fuzz_calls () =
  let cfg =
    { Cgen.n_structs = 3; n_stmts = 25; cast_rate = 0.5; with_calls = true }
  in
  for i = 0 to 9 do
    let seed = base_seed + i in
    let src = Cgen.generate ~cfg ~seed () in
    let prog = Lower.compile ~file:(Printf.sprintf "<diffc-%d>" seed) src in
    check_program ~label:(Printf.sprintf "calls seed %d" seed) prog
  done

(* The win the delta engine exists for, asserted on a workload big enough
   to show it: fewer facts consumed than the naive full re-reads. *)
let test_delta_consumes_less () =
  let cfg =
    { Cgen.default with Cgen.n_stmts = 200; n_structs = 4; cast_rate = 0.5 }
  in
  let src = Cgen.generate ~cfg ~seed:base_seed () in
  let prog = Lower.compile ~file:"<diff-big>" src in
  List.iter
    (fun id ->
      let d = Core.Solver.run ~engine:`Delta ~strategy:(strategy id) prog in
      let n = Core.Solver.run ~engine:`Naive ~strategy:(strategy id) prog in
      if d.Core.Solver.facts_consumed >= n.Core.Solver.facts_consumed then
        Alcotest.failf
          "%s: delta consumed %d facts, naive %d — no difference-propagation \
           win"
          id d.Core.Solver.facts_consumed n.Core.Solver.facts_consumed;
      (* the suffix/full ratio is the same claim per-visit *)
      if d.Core.Solver.delta_facts > d.Core.Solver.full_facts then
        Alcotest.failf "%s: delta iterated more facts than the sets held" id)
    all_ids

let suite =
  [
    tc "delta == naive on the corpus, 4 instances" test_corpus;
    tc "delta == naive on 30 fuzz programs" test_fuzz_plain;
    tc "delta == naive on fuzz programs with calls" test_fuzz_calls;
    tc "delta consumes strictly fewer facts" test_delta_consumes_less;
  ]
