let () =
  Alcotest.run "structcast"
    [
      ("lexer", Test_lexer.suite);
      ("preproc", Test_preproc.suite);
      ("ctype", Test_ctype.suite);
      ("layout", Test_layout.suite);
      ("layout-properties", Test_layout_properties.suite);
      ("parser", Test_parser.suite);
      ("typecheck", Test_typecheck.suite);
      ("lower", Test_lower.suite);
      ("paper-examples", Test_paper_examples.suite);
      ("solver", Test_solver.suite);
      ("properties", Test_properties.suite);
      ("corpus", Test_suite_corpus.suite);
      ("steensgaard", Test_steens.suite);
      ("arith-modes", Test_arith_modes.suite);
      ("strategies", Test_strategies.suite);
      ("strategy-properties", Test_strategy_properties.suite);
      ("cells-graph", Test_cells_graph.suite);
      ("interp", Test_interp.suite);
      ("cgen", Test_cgen.suite);
      ("layouts", Test_layouts_soundness.suite);
      ("clients", Test_clients.suite);
      ("cli", Test_cli.suite);
      ("summaries", Test_summaries.suite);
      ("budget", Test_budget.suite);
      ("cycles", Test_cycles.suite);
      ("incr", Test_incr.suite);
      ("fuzz", Test_fuzz.suite);
      ("isolation", Test_isolation.suite);
      ("server", Test_server.suite);
      ("store", Test_store.suite);
      ("summary-cache", Test_summary_cache.suite);
    ]
