(** The summary cache's governing invariants, exercised end to end:

    - records rebind identity-free — a recompile of the same source
      hits on every function and produces the byte-identical stats-free
      report a scratch solve renders;
    - an edit invalidates exactly the dependent chain — the edited
      function and its transitive direct callers recompute, everything
      else hits ({!Sumdigest} keys compose callee keys);
    - corruption degrades to recompute — a flipped byte quarantines the
      record, costs a miss, and never changes a report;
    - budget degradation is sound and never poisons the cache — a
      degraded sub-solve refuses to write records. *)

open Cfront
open Helpers

let layout = Layout.ilp32
let layout_id = "ilp32"
let sid = "cis"
let budget = Core.Budget.default

(* A call DAG with reconvergence: main -> {set_gp, helper, chain, pick};
   editing one leaf must recompute exactly that leaf and main. *)
let src =
  {|
    struct node { struct node *next; int *val; };
    int a, b, c;
    int *gp;
    void set_gp(void) { gp = &a; }
    void helper(int **out) { *out = &b; }
    void chain(struct node *n, int *v) { n->val = v; n->next = n; }
    int *pick(int flag) {
      int *r;
      if (flag) r = &a; else r = &c;
      return r;
    }
    int main(void) {
      struct node s;
      int *p; int *q;
      set_gp();
      helper(&p);
      q = pick(1);
      chain(&s, q);
      return 0;
    }
  |}

(* [src] with set_gp's body changed (not grown): a non-additive edit *)
let src_edited =
  {|
    struct node { struct node *next; int *val; };
    int a, b, c;
    int *gp;
    void set_gp(void) { gp = &c; }
    void helper(int **out) { *out = &b; }
    void chain(struct node *n, int *v) { n->val = v; n->next = n; }
    int *pick(int flag) {
      int *r;
      if (flag) r = &a; else r = &c;
      return r;
    }
    int main(void) {
      struct node s;
      int *p; int *q;
      set_gp();
      helper(&p);
      q = pick(1);
      chain(&s, q);
      return 0;
    }
  |}

let n_funcs = 5

let fresh_dir =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "structcast-sum-%d-%d" (Unix.getpid ()) !ctr)

let cfg ?(b = budget) () =
  {
    Store.Codec.strategy_id = sid;
    engine = `Summary;
    layout_id;
    arith = `Spread;
    budget = b;
  }

let solve ?b ~cache src_text =
  Summary.Engine.solve ~cache ~config:(cfg ?b ()) ~layout
    ~strategy:(strategy sid)
    (compile ~layout src_text)

let render solver =
  Core.Report.json_of_result ~timing:false ~solver_stats:false ~name:"t"
    {
      Core.Analysis.solver;
      metrics = Core.Metrics.summarize solver;
      time_s = 0.;
      degraded = Core.Solver.degradations solver;
      diags = [];
    }

let scratch_json src_text =
  render
    (Core.Solver.run ~layout ~arith:`Spread ~budget ~engine:`Naive ~track:true
       ~strategy:(strategy sid) (compile ~layout src_text))

let counters cache = Summary.Sumcache.counters cache

(* ------------------------------------------------------------------ *)

let test_cold_then_full_hits () =
  let dir = fresh_dir () in
  let cache = Summary.Sumcache.open_cache dir in
  let t1 = solve ~cache src in
  let c1 = counters cache in
  Alcotest.(check int) "cold misses" n_funcs c1.Core.Metrics.sum_misses;
  Alcotest.(check int) "cold hits" 0 c1.Core.Metrics.sum_hits;
  Alcotest.(check int) "records written" n_funcs
    c1.Core.Metrics.sum_written;
  Alcotest.(check string) "cold report == naive scratch" (scratch_json src)
    (render t1);
  (* a fresh handle and a fresh compile: records must rebind with no
     shared variable or statement identities *)
  let cache2 = Summary.Sumcache.open_cache dir in
  let t2 = solve ~cache:cache2 src in
  let c2 = counters cache2 in
  Alcotest.(check int) "warm hits" n_funcs c2.Core.Metrics.sum_hits;
  Alcotest.(check int) "warm misses" 0 c2.Core.Metrics.sum_misses;
  Alcotest.(check int) "nothing rewritten" 0 c2.Core.Metrics.sum_written;
  Alcotest.(check string) "warm report == naive scratch" (scratch_json src)
    (render t2)

let test_edit_recomputes_exactly_the_chain () =
  let dir = fresh_dir () in
  let cache = Summary.Sumcache.open_cache dir in
  ignore (solve ~cache src);
  let cache2 = Summary.Sumcache.open_cache dir in
  let t = solve ~cache:cache2 src_edited in
  let c = counters cache2 in
  (* dependent chain: set_gp (edited) + main (its only caller) *)
  Alcotest.(check int) "hits" (n_funcs - 2) c.Core.Metrics.sum_hits;
  Alcotest.(check int) "misses" 2 c.Core.Metrics.sum_misses;
  Alcotest.(check int) "chain rewritten" 2 c.Core.Metrics.sum_written;
  Alcotest.(check string) "edited report == naive scratch"
    (scratch_json src_edited) (render t)

let test_keys_change_exactly_for_callers_closure () =
  let base = compile ~layout src in
  let edited = compile ~layout src_edited in
  let config_line = Store.Codec.config_line (cfg ()) in
  let keys p =
    Summary.Sumdigest.keys ~config_line p (Summary.Callgraph.build p)
  in
  let kb = keys base and ke = keys edited in
  let changed = Incr.Progdiff.funcs_changed ~base edited in
  Alcotest.(check (list string)) "diff finds the edit" [ "set_gp" ] changed;
  let cg = Summary.Callgraph.build base in
  let chain = Summary.Callgraph.callers_closure cg changed in
  Alcotest.(check (list string))
    "dependent chain" [ "main"; "set_gp" ] chain;
  List.iter
    (fun (f : Norm.Nast.func) ->
      let n = f.Norm.Nast.fname in
      let same =
        Summary.Sumdigest.key_of kb n = Summary.Sumdigest.key_of ke n
      in
      if List.mem n chain then
        Alcotest.(check bool) (n ^ " key changed") false same
      else Alcotest.(check bool) (n ^ " key stable") true same)
    base.Norm.Nast.pfuncs

let test_corrupt_record_quarantined_not_believed () =
  let dir = fresh_dir () in
  let cache = Summary.Sumcache.open_cache dir in
  ignore (solve ~cache src);
  (* flip one byte in the middle of every record *)
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".sum" then begin
        let path = Filename.concat dir f in
        let ic = open_in_bin path in
        let bytes = really_input_string ic (in_channel_length ic) in
        close_in ic;
        let b = Bytes.of_string bytes in
        let i = Bytes.length b / 2 in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
        let oc = open_out_bin path in
        output_bytes oc b;
        close_out oc
      end)
    (Sys.readdir dir);
  let cache2 = Summary.Sumcache.open_cache dir in
  let t = solve ~cache:cache2 src in
  let c = counters cache2 in
  Alcotest.(check int) "no corrupt record believed" 0
    c.Core.Metrics.sum_hits;
  Alcotest.(check bool) "corruption counted" true
    (c.Core.Metrics.sum_corrupt > 0);
  Alcotest.(check bool) "quarantine holds the bodies" true
    (Array.length (Sys.readdir (Filename.concat dir "quarantine")) > 0);
  Alcotest.(check int) "clean records rewritten" n_funcs
    c.Core.Metrics.sum_written;
  Alcotest.(check string) "report still == naive scratch" (scratch_json src)
    (render t)

let test_degraded_sub_solve_refuses_records () =
  (* a budget tight enough to degrade: the cache must stay empty (a
     degraded sub-fixpoint over-approximates; caching it could poison a
     later precise solve), and the degraded answer must still be a
     sound over-approximation of the precise one *)
  let tight =
    {
      Core.Budget.max_steps = None;
      timeout_s = None;
      max_cells_per_object = Some 1;
      max_total_cells = None;
    }
  in
  let dir = fresh_dir () in
  let cache = Summary.Sumcache.open_cache dir in
  let t = solve ~b:tight ~cache src in
  Alcotest.(check bool) "solve degraded" true
    (Core.Solver.degradations t <> []);
  let c = counters cache in
  (* sub-solves that stayed under budget may record (their constraints
     are exact); the one that tripped must refuse *)
  Alcotest.(check bool) "a degraded sub-solve refused its record" true
    (c.Core.Metrics.sum_written < n_funcs);
  let precise =
    Core.Analysis.run ~layout ~strategy:(strategy sid)
      (compile ~layout src)
  in
  let degraded_r =
    {
      Core.Analysis.solver = t;
      metrics = Core.Metrics.summarize t;
      time_s = 0.;
      degraded = Core.Solver.degradations t;
      diags = [];
    }
  in
  let check_superset label (r : Core.Analysis.result) =
    List.iter
      (fun v ->
        let p = target_bases precise v and d = target_bases r v in
        List.iter
          (fun b ->
            if not (List.mem b d) then
              Alcotest.failf "%s lost %s -> %s" label v b)
          p)
      [ "gp"; "main::p"; "main::q" ]
  in
  check_superset "degraded summary" degraded_r;
  (* a second tight-budget solve may reuse the surviving records; it
     must still be a sound over-approximation *)
  let cache2 = Summary.Sumcache.open_cache dir in
  let t2 = solve ~b:tight ~cache:cache2 src in
  check_superset "warm degraded summary"
    {
      Core.Analysis.solver = t2;
      metrics = Core.Metrics.summarize t2;
      time_s = 0.;
      degraded = Core.Solver.degradations t2;
      diags = [];
    }

let test_record_roundtrip_both_selectors () =
  let dir = fresh_dir () in
  let cache = Summary.Sumcache.open_cache dir in
  let r =
    {
      Summary.Sumcache.r_fn = "f one";
      r_edges =
        [
          ( ("v|g|int *", Summary.Sumcache.Path [ "a b"; "c%d" ]),
            ("w|g|int", Summary.Sumcache.Off 12) );
        ];
      r_copies =
        [
          ( ("x|l:f|T", Summary.Sumcache.Path []),
            ("y|p:f|T", Summary.Sumcache.Off 0) );
        ];
    }
  in
  Summary.Sumcache.put cache ~key:"cafe" r;
  (match Summary.Sumcache.get cache ~key:"cafe" with
  | Some r' -> Alcotest.(check bool) "roundtrip" true (r = r')
  | None -> Alcotest.fail "record did not come back");
  (* truncation is corruption, not an answer *)
  let path = Filename.concat dir "cafe.sum" in
  let ic = open_in_bin path in
  let bytes = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (String.sub bytes 0 (String.length bytes - 7));
  close_out oc;
  (match Summary.Sumcache.get cache ~key:"cafe" with
  | None -> ()
  | Some _ -> Alcotest.fail "truncated record believed");
  Alcotest.(check int) "truncation counted" 1
    (counters cache).Core.Metrics.sum_corrupt

(* A recorded copy must keep its [(dst, src)] orientation through the
   cache. With the orientation flipped, replaying [x = id(&a); x = &b]
   pushes x's facts backwards into id's return and parameter — a sound
   but inflated fixpoint, so the warm report stops being byte-equal. *)
let test_copy_orientation_preserved () =
  let asym =
    {|
int a;
int b;
int *id(int *p) { return p; }
int main() {
  int *x;
  x = id(&a);
  x = &b;
  return 0;
}
|}
  in
  let dir = fresh_dir () in
  let cache = Summary.Sumcache.open_cache dir in
  ignore (solve ~cache asym);
  (* the id record's only copy is [$ret ⊆= p]: dst mentions the return
     slot, src the parameter *)
  let prog = compile ~layout asym in
  let keys =
    Summary.Sumdigest.keys
      ~config_line:(Store.Codec.config_line (cfg ()))
      prog
      (Summary.Callgraph.build prog)
  in
  (match Summary.Sumdigest.key_of keys "id" with
  | None -> Alcotest.fail "no key for id"
  | Some key -> (
      match Summary.Sumcache.get cache ~key with
      | None -> Alcotest.fail "no record for id"
      | Some r ->
          let contains hay needle =
            let n = String.length needle in
            let rec go i =
              i + n <= String.length hay
              && (String.sub hay i n = needle || go (i + 1))
            in
            go 0
          in
          List.iter
            (fun (((dk, _) : Summary.Sumcache.endpoint), (sk, _)) ->
              Alcotest.(check bool) "copy dst is the return slot" true
                (contains dk "$ret");
              Alcotest.(check bool) "copy src is the parameter" false
                (contains sk "$ret"))
            r.Summary.Sumcache.r_copies));
  let cache2 = Summary.Sumcache.open_cache dir in
  let t = solve ~cache:cache2 asym in
  Alcotest.(check int) "warm hits" 2 (counters cache2).Core.Metrics.sum_hits;
  Alcotest.(check string) "warm report == naive scratch" (scratch_json asym)
    (render t)

let test_serve_composes_with_snapshot_store () =
  let dir = fresh_dir () in
  let store = Store.open_store dir in
  let cache =
    Summary.Sumcache.open_cache (Filename.concat dir "summaries")
  in
  let serve src_text =
    Summary.Engine.serve ~store ~cache ~want:`Json ~diags:[] ~name:"t"
      ~strategy_id:sid ~layout ~layout_id ~budget
      (compile ~layout src_text)
  in
  let s1 = serve src in
  Alcotest.(check string) "cold serve == naive scratch" (scratch_json src)
    s1.Store.sv_json;
  (* exact repeat short-circuits at the snapshot level: the summary
     cache is not consulted again *)
  let hits_before = (counters cache).Core.Metrics.sum_hits in
  let s2 = serve src in
  Alcotest.(check string) "hit serve == naive scratch" (scratch_json src)
    s2.Store.sv_json;
  Alcotest.(check int) "snapshot answered, not summaries" hits_before
    (counters cache).Core.Metrics.sum_hits;
  (* a non-additive edit is cold at the snapshot level but warm at the
     summary level *)
  let s3 = serve src_edited in
  Alcotest.(check string) "edited serve == naive scratch"
    (scratch_json src_edited) s3.Store.sv_json;
  Alcotest.(check int) "summary chains reused" (n_funcs - 2)
    (counters cache).Core.Metrics.sum_hits

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  [
    tc "cold solve, then a recompile hits every function"
      test_cold_then_full_hits;
    tc "an edit recomputes exactly the dependent chain"
      test_edit_recomputes_exactly_the_chain;
    tc "keys change exactly for the callers closure"
      test_keys_change_exactly_for_callers_closure;
    tc "corrupt record quarantined, never believed"
      test_corrupt_record_quarantined_not_believed;
    tc "degraded sub-solve refuses records, stays sound"
      test_degraded_sub_solve_refuses_records;
    tc "record wire roundtrip, truncation is corruption"
      test_record_roundtrip_both_selectors;
    tc "copy orientation survives the cache"
      test_copy_orientation_preserved;
    tc "serve composes snapshot store and summary cache"
      test_serve_composes_with_snapshot_store;
  ]
