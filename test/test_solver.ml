(** Solver behaviour beyond the paper's worked examples: interprocedural
    flow, function pointers, heap allocation, library summaries, pointer
    arithmetic, arrays, unions. *)

open Helpers

let all_ids = [ "collapse-always"; "collapse-on-cast"; "cis"; "offsets" ]

let precise_ids = [ "collapse-on-cast"; "cis"; "offsets" ]

let for_all ids f = List.iter (fun id -> f id (strategy id)) ids

(* ---------------- interprocedural ---------------- *)

let test_param_passing () =
  let src =
    {|
      int x, y;
      int *id(int *p) { return p; }
      int *a, *b;
      void main(void) {
        a = id(&x);
        b = id(&y);
      }
    |}
  in
  for_all all_ids (fun id s ->
      let r = analyze ~strategy:s src in
      (* context-insensitive: both calls merge *)
      let got = target_bases r "a" in
      if got <> [ "x"; "y" ] then
        Alcotest.failf "%s: a = %s" id (String.concat "," got))

let test_return_value () =
  let src =
    {|
      int g;
      int *addr_g(void) { return &g; }
      int *p;
      void main(void) { p = addr_g(); }
    |}
  in
  for_all all_ids (fun _ s ->
      let r = analyze ~strategy:s src in
      check_bases r "p" [ "g" ])

let test_out_param () =
  let src =
    {|
      int x;
      void fill(int **out) { *out = &x; }
      int *p;
      void main(void) { fill(&p); }
    |}
  in
  for_all all_ids (fun _ s ->
      let r = analyze ~strategy:s src in
      check_bases r "p" [ "x" ])

let test_struct_arg_by_value () =
  let src =
    {|
      struct Pair { int *fst; int *snd; };
      int x, y;
      int *out;
      void take(struct Pair q) { out = q.fst; }
      void main(void) {
        struct Pair p;
        p.fst = &x;
        p.snd = &y;
        take(p);
      }
    |}
  in
  for_all precise_ids (fun id s ->
      let r = analyze ~strategy:s src in
      let got = target_bases r "out" in
      if got <> [ "x" ] then
        Alcotest.failf "%s: out = %s" id (String.concat "," got))

let test_recursion () =
  let src =
    {|
      int x;
      int *walk(int n) {
        if (n) return walk(n - 1);
        return &x;
      }
      int *p;
      void main(void) { p = walk(3); }
    |}
  in
  for_all all_ids (fun _ s ->
      let r = analyze ~strategy:s src in
      check_bases r "p" [ "x" ])

(* ---------------- function pointers ---------------- *)

let test_function_pointer_call () =
  let src =
    {|
      int x, y;
      int *fx(void) { return &x; }
      int *fy(void) { return &y; }
      int *(*fp)(void);
      int *p;
      void main(int c) {
        if (c) fp = fx; else fp = &fy;
        p = fp();
      }
    |}
  in
  for_all all_ids (fun id s ->
      let r = analyze ~strategy:s src in
      let got = target_bases r "p" in
      if got <> [ "x"; "y" ] then
        Alcotest.failf "%s: p = %s" id (String.concat "," got);
      let fps = target_bases r "fp" in
      if fps <> [ "fx"; "fy" ] then
        Alcotest.failf "%s: fp = %s" id (String.concat "," fps))

let test_function_pointer_in_struct () =
  let src =
    {|
      struct Ops { int *(*get)(void); int tag; };
      int x;
      int *getter(void) { return &x; }
      struct Ops ops;
      int *p;
      void main(void) {
        ops.get = getter;
        p = (*ops.get)();
      }
    |}
  in
  for_all precise_ids (fun _ s ->
      let r = analyze ~strategy:s src in
      check_bases r "p" [ "x" ])

(* ---------------- heap ---------------- *)

let test_malloc_sites_distinct () =
  let src =
    {|
      struct Node { struct Node *next; int v; };
      void *malloc(unsigned long n);
      struct Node *a, *b;
      void main(void) {
        a = (struct Node *)malloc(sizeof(struct Node));
        b = (struct Node *)malloc(sizeof(struct Node));
      }
    |}
  in
  for_all all_ids (fun id s ->
      let r = analyze ~strategy:s src in
      let ta = target_bases r "a" and tb = target_bases r "b" in
      if List.length ta <> 1 || List.length tb <> 1 || ta = tb then
        Alcotest.failf "%s: a=%s b=%s" id (String.concat "," ta)
          (String.concat "," tb))

let test_linked_list () =
  let src =
    {|
      struct Node { struct Node *next; int *data; };
      void *malloc(unsigned long n);
      int x;
      int *out;
      void main(void) {
        struct Node *head, *n2, *cur;
        head = (struct Node *)malloc(sizeof(struct Node));
        n2 = (struct Node *)malloc(sizeof(struct Node));
        head->next = n2;
        n2->data = &x;
        cur = head->next;
        out = cur->data;
      }
    |}
  in
  for_all all_ids (fun id s ->
      let r = analyze ~strategy:s src in
      let got = target_bases r "out" in
      if not (List.mem "x" got) then
        Alcotest.failf "%s: out = %s" id (String.concat "," got))

(* ---------------- library summaries ---------------- *)

let test_memcpy_summary () =
  let src =
    {|
      void *memcpy(void *d, void *s, unsigned long n);
      struct P { int *a; int *b; } src0, dst0;
      int x, y;
      int *oa, *ob;
      void main(void) {
        src0.a = &x;
        src0.b = &y;
        memcpy(&dst0, &src0, sizeof(struct P));
        oa = dst0.a;
        ob = dst0.b;
      }
    |}
  in
  for_all all_ids (fun id s ->
      let r = analyze ~strategy:s src in
      if not (List.mem "x" (target_bases r "oa")) then
        Alcotest.failf "%s: memcpy lost x" id;
      if not (List.mem "y" (target_bases r "ob")) then
        Alcotest.failf "%s: memcpy lost y" id)

let test_strdup_allocates () =
  let src =
    {|
      char *strdup(char *s);
      char *p, *q;
      void main(void) {
        p = strdup("hello");
        q = p;
      }
    |}
  in
  for_all all_ids (fun id s ->
      let r = analyze ~strategy:s src in
      let got = target_bases r "q" in
      if List.length got <> 1 then
        Alcotest.failf "%s: q = %s" id (String.concat "," got))

let test_qsort_invokes_comparator () =
  let src =
    {|
      void qsort(void *base, unsigned long n, unsigned long w,
                 int (*cmp)(void *, void *));
      int arr[10];
      void *seen;
      int compare(void *a, void *b) { seen = a; return 0; }
      void main(void) {
        qsort(arr, 10, sizeof(int), compare);
      }
    |}
  in
  for_all all_ids (fun id s ->
      let r = analyze ~strategy:s src in
      let got = target_bases r "seen" in
      if not (List.mem "arr" got) then
        Alcotest.failf "%s: comparator arg = %s" id (String.concat "," got))

(* ---------------- pointer arithmetic, arrays, unions ---------------- *)

let test_pointer_arith_within_object () =
  let src =
    {|
      struct S { int *a; int *b; } s;
      int x, y;
      int **p, *out;
      void main(void) {
        s.a = &x;
        s.b = &y;
        p = &s.a;
        p = p + 1;
        out = *p;
      }
    |}
  in
  (* after p + 1 the analysis must assume p may point to any field of s *)
  for_all all_ids (fun id s ->
      let r = analyze ~strategy:s src in
      let got = target_bases r "out" in
      if not (List.mem "y" got) then
        Alcotest.failf "%s: out = %s (lost y)" id (String.concat "," got))

let test_array_single_representative () =
  let src =
    {|
      int *arr[8];
      int x, y;
      int *p;
      void main(void) {
        arr[0] = &x;
        arr[5] = &y;
        p = arr[2];
      }
    |}
  in
  for_all all_ids (fun _ s ->
      let r = analyze ~strategy:s src in
      check_bases r "p" [ "x"; "y" ])

let test_array_of_structs () =
  let src =
    {|
      struct S { int *a; int *b; };
      struct S arr[4];
      int x, y;
      int *p, *q;
      void main(void) {
        arr[0].a = &x;
        arr[1].b = &y;
        p = arr[3].a;
        q = arr[2].b;
      }
    |}
  in
  for_all precise_ids (fun id s ->
      let r = analyze ~strategy:s src in
      let gp = target_bases r "p" and gq = target_bases r "q" in
      if gp <> [ "x" ] then Alcotest.failf "%s: p = %s" id (String.concat "," gp);
      if gq <> [ "y" ] then Alcotest.failf "%s: q = %s" id (String.concat "," gq))

let test_union_members_overlap () =
  let src =
    {|
      union U { int *a; char *b; } u;
      int x;
      char *out;
      void main(void) {
        u.a = &x;
        out = u.b;
      }
    |}
  in
  for_all all_ids (fun id s ->
      let r = analyze ~strategy:s src in
      let got = target_bases r "out" in
      if not (List.mem "x" got) then
        Alcotest.failf "%s: union overlap lost x (%s)" id
          (String.concat "," got))

let test_string_literals () =
  let src =
    {|
      char *p, *q, *r;
      void main(void) {
        p = "alpha";
        q = "beta";
        r = "alpha";
      }
    |}
  in
  for_all all_ids (fun id s ->
      let res = analyze ~strategy:s src in
      let tp = targets res "p" and tq = targets res "q" and tr = targets res "r" in
      if tp = tq then Alcotest.failf "%s: distinct literals merged" id;
      if tp <> tr then Alcotest.failf "%s: equal literals not shared" id)

let test_void_star_roundtrip () =
  let src =
    {|
      int x;
      void *v;
      int *p;
      void main(void) {
        p = &x;
        v = (void *)p;
        p = (int *)v;
      }
    |}
  in
  for_all all_ids (fun _ s ->
      let r = analyze ~strategy:s src in
      check_bases r "p" [ "x" ])

let test_global_initializers () =
  let src =
    {|
      int x;
      int *gp = &x;
      struct S { int *f; char *g; } s = { &x, "lit" };
      int *p; char *q;
      void main(void) {
        p = gp;
        q = s.g;
      }
    |}
  in
  for_all all_ids (fun id s ->
      let r = analyze ~strategy:s src in
      check_bases r "p" [ "x" ];
      let gq = target_bases r "q" in
      (* collapse-always merges both initializers into s's single cell;
         the field-sensitive instances see only the string literal *)
      let expected_len = if id = "collapse-always" then 2 else 1 in
      if List.length gq <> expected_len then
        Alcotest.failf "%s: q = %s" id (String.concat "," gq))

let test_conditional_expression () =
  let src =
    {|
      int x, y;
      int *p;
      void main(int c) { p = c ? &x : &y; }
    |}
  in
  for_all all_ids (fun _ s ->
      let r = analyze ~strategy:s src in
      check_bases r "p" [ "x"; "y" ])

(* Regression for the worklist dedup marker: [p = *p] grows p's own
   points-to set mid-visit, so the statement must be able to re-enqueue
   ITSELF while it is being processed. If the in-queue marker were
   cleared only after dispatch, the self-requeue would be silently
   dropped and the chain would stop one link short. Both engines. *)
let test_self_requeue_converges () =
  let src =
    {|
      void *a, *b, *c, *p;
      void main(void) {
        a = (void *)&b;
        b = (void *)&c;
        p = (void *)&a;
        p = *p;
      }
    |}
  in
  List.iter
    (fun engine ->
      for_all all_ids (fun id s ->
          let r =
            Core.Analysis.run_source ~engine ~strategy:s ~file:"<test>" src
          in
          let got = target_bases r "p" in
          if got <> [ "a"; "b"; "c" ] then
            Alcotest.failf "%s (%s): p = %s (chain stopped early)" id
              (match engine with
              | `Delta -> "delta"
              | `Delta_nocycle -> "delta-nocycle"
              | `Naive -> "naive"
              | `Delta_par _ -> "delta-par"
              | `Summary -> "summary")
              (String.concat "," got)))
    [ `Delta; `Delta_nocycle; `Naive ]

(* Offsets results depend on the layout; portable results do not. *)
let test_layout_dependence () =
  let src =
    {|
      struct S { char pad; int *q; } *p;
      struct T { short pad2; int *r; } t;
      int x;
      int **out;
      void main(void) {
        t.r = &x;
        p = (struct S *)&t;
        out = (int **)&((*p).q);
      }
    |}
  in
  let run id layout =
    let r = analyze ~layout ~strategy:(strategy id) src in
    targets r "out"
  in
  let off32 = run "offsets" Cfront.Layout.ilp32 in
  let off64 = run "offsets" Cfront.Layout.lp64 in
  let cis32 = run "cis" Cfront.Layout.ilp32 in
  let cis64 = run "cis" Cfront.Layout.lp64 in
  Alcotest.(check (list string)) "cis is layout-independent" cis32 cis64;
  (* under ilp32 both pads round to offset 4; under lp64 the struct-S
     field lands at 8 — different cells *)
  if off32 = off64 then
    Alcotest.fail "expected offsets results to differ across layouts"

let suite =
  [
    tc "params flow (context-insensitive merge)" test_param_passing;
    tc "return values flow" test_return_value;
    tc "output parameters" test_out_param;
    tc "struct passed by value" test_struct_arg_by_value;
    tc "recursion converges" test_recursion;
    tc "calls through function pointers" test_function_pointer_call;
    tc "function pointer stored in a struct" test_function_pointer_in_struct;
    tc "distinct malloc sites stay distinct" test_malloc_sites_distinct;
    tc "heap linked list" test_linked_list;
    tc "memcpy summary copies pointees" test_memcpy_summary;
    tc "strdup allocates" test_strdup_allocates;
    tc "qsort invokes the comparator" test_qsort_invokes_comparator;
    tc "pointer arithmetic spreads within object" test_pointer_arith_within_object;
    tc "arrays: one representative element" test_array_single_representative;
    tc "arrays of structs keep fields apart" test_array_of_structs;
    tc "union members overlap" test_union_members_overlap;
    tc "string literals are objects" test_string_literals;
    tc "void* round trip" test_void_star_roundtrip;
    tc "global initializers" test_global_initializers;
    tc "conditional expressions merge" test_conditional_expression;
    tc "self-requeue: p = *p converges" test_self_requeue_converges;
    tc "offsets depend on layout, cis does not" test_layout_dependence;
  ]
