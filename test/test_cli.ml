(** Smoke tests driving the [structcast] command-line executable.

    The tests locate the built binary inside dune's sandbox (it is listed
    as a test dependency in [test/dune]) and check each subcommand and
    print mode produces plausible output and exit codes. *)

let exe = "../bin/structcast.exe"

let run_capture args : int * string =
  let cmd = Filename.quote_command exe args in
  let ic = Unix.open_process_in (cmd ^ " 2>&1") in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let code =
    match Unix.close_process_in ic with
    | Unix.WEXITED n -> n
    | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> -1
  in
  (code, Buffer.contents buf)

let check_contains name out needle =
  let contains s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  if not (contains out needle) then
    Alcotest.failf "%s: output lacks %S:\n%s" name needle out

let test_corpus_listing () =
  let code, out = run_capture [ "corpus" ] in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "corpus" out "anagram";
  check_contains "corpus" out "description"

let test_analyze_metrics () =
  let code, out = run_capture [ "analyze"; "bc"; "-p"; "metrics"; "-s"; "cis" ] in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "metrics" out "avg deref pts size";
  check_contains "metrics" out "Common Initial Sequence"

let test_analyze_points_to () =
  let code, out =
    run_capture [ "analyze"; "wc"; "-p"; "points-to"; "-s"; "offsets" ]
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "points-to" out "->"

let test_analyze_dot () =
  let code, out = run_capture [ "analyze"; "li"; "-p"; "dot" ] in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "dot" out "digraph points_to"

let test_compare () =
  let code, out = run_capture [ "compare"; "sc" ] in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "compare" out "Collapse Always";
  check_contains "compare" out "steensgaard"

let test_bad_strategy_fails () =
  let code, out = run_capture [ "analyze"; "bc"; "-s"; "nope" ] in
  Alcotest.(check bool) "nonzero exit" true (code <> 0);
  check_contains "error" out "unknown strategy"

let test_bad_file_fails () =
  let code, _ = run_capture [ "analyze"; "/no/such/file.c" ] in
  Alcotest.(check bool) "nonzero exit" true (code <> 0)

(* ------------------------------------------------------------------ *)
(* Exit-code precedence: 3 internal error > 2 degraded > 1 diagnostics
   > 0 clean. Each rung of the ladder gets a dedicated input.           *)
(* ------------------------------------------------------------------ *)

let with_temp_source src f =
  let path = Filename.temp_file "structcast-cli" ".c" in
  let oc = open_out path in
  output_string oc src;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let diag_src = "int *p; int x; void main(void) { p = &x; q = 3; }"

let heavy_src =
  "struct L1 { int *a; int *b; };\n\
   struct L2 { struct L1 x; struct L1 y; };\n\
   struct L3 { struct L2 x; struct L2 y; } s;\n\
   int v0, v1, v2, v3, v4, v5, v6, v7;\n\
   void main(void) {\n\
  \  s.x.x.a = &v0; s.x.x.b = &v1; s.x.y.a = &v2; s.x.y.b = &v3;\n\
  \  s.y.x.a = &v4; s.y.x.b = &v5; s.y.y.a = &v6; s.y.y.b = &v7;\n\
   }"

let both_src = heavy_src ^ "\nint *r; void f(void) { r = s.x.x.a; q2 = 1; }"

let test_exit_clean () =
  let code, _ = run_capture [ "analyze"; "wc" ] in
  Alcotest.(check int) "clean run exits 0" 0 code

let test_exit_diagnostics () =
  with_temp_source diag_src (fun path ->
      let code, out = run_capture [ "analyze"; path ] in
      Alcotest.(check int) "diagnostics-only exits 1" 1 code;
      check_contains "diag" out "q")

let test_exit_degraded () =
  with_temp_source heavy_src (fun path ->
      let code, out =
        run_capture
          [ "analyze"; path; "-s"; "offsets"; "--max-cells-per-object"; "2" ]
      in
      Alcotest.(check int) "budget-degraded exits 2" 2 code;
      check_contains "degraded" out "degraded")

let test_exit_degraded_beats_diagnostics () =
  with_temp_source both_src (fun path ->
      let code, _ =
        run_capture
          [ "analyze"; path; "-s"; "offsets"; "--max-cells-per-object"; "2" ]
      in
      Alcotest.(check int) "degradation outranks diagnostics" 2 code)

(* Expected failures (bad input, front-end fatal) are 1, not 3: exit 3
   is reserved for exceptions escaping unexpectedly — and, fleet-wide,
   for quarantined batch jobs (tested below). *)
let test_exit_expected_failure () =
  let code, out = run_capture [ "analyze"; "/no/such/file.c" ] in
  Alcotest.(check int) "expected failure exits 1" 1 code;
  check_contains "error" out "error"

(* ------------------------------------------------------------------ *)
(* --format json                                                       *)
(* ------------------------------------------------------------------ *)

let test_json_format () =
  let code, out = run_capture [ "analyze"; "wc"; "--format"; "json" ] in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "json" out "\"avg_deref_size\"";
  check_contains "json" out "\"strategy\"";
  check_contains "json" out "\"deref_sites\"";
  (* machine output is a single JSON object on one line *)
  let line = String.trim out in
  Alcotest.(check bool) "single line" true
    (not (String.contains line '\n'));
  Alcotest.(check bool) "object braces" true
    (String.length line > 2
    && line.[0] = '{'
    && line.[String.length line - 1] = '}')

let test_json_format_keeps_exit_code () =
  with_temp_source both_src (fun path ->
      let code, out =
        run_capture
          [
            "analyze"; path; "-s"; "offsets"; "--max-cells-per-object"; "2";
            "--format"; "json";
          ]
      in
      Alcotest.(check int) "json mode preserves exit precedence" 2 code;
      check_contains "json" out "\"degraded\"")

(* ------------------------------------------------------------------ *)
(* batch / serve                                                       *)
(* ------------------------------------------------------------------ *)

let test_batch_smoke () =
  let code, out =
    run_capture [ "batch"; "wc"; "anagram"; "--backoff-ms"; "1" ]
  in
  Alcotest.(check int) "clean batch exits 0" 0 code;
  check_contains "batch" out "\"id\":\"job1\"";
  check_contains "batch" out "\"id\":\"job2\"";
  check_contains "batch" out "\"status\":\"done\"";
  check_contains "batch" out "\"breaker_skips\""

let test_batch_crash_fault_exits_3 () =
  let code, out =
    run_capture
      [ "batch"; "wc"; "--backoff-ms"; "1"; "--faults"; "crash@job1" ]
  in
  Alcotest.(check int) "quarantine exits 3" 3 code;
  check_contains "batch" out "\"status\":\"quarantined\""

let test_serve_smoke () =
  let cmd =
    Printf.sprintf "printf 'wc\\nanagram cis\\n' | %s serve --backoff-ms 1 2>&1"
      (Filename.quote exe)
  in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let code =
    match Unix.close_process_in ic with Unix.WEXITED n -> n | _ -> -1
  in
  let out = Buffer.contents buf in
  Alcotest.(check int) "serve exits clean" 0 code;
  check_contains "serve" out "\"id\":\"job1\"";
  check_contains "serve" out "\"id\":\"job2\"";
  check_contains "serve" out "\"status\":\"done\""

let suite =
  if Sys.file_exists exe then
    [
      Helpers.tc "corpus listing" test_corpus_listing;
      Helpers.tc "analyze --print metrics" test_analyze_metrics;
      Helpers.tc "analyze --print points-to" test_analyze_points_to;
      Helpers.tc "analyze --print dot" test_analyze_dot;
      Helpers.tc "compare" test_compare;
      Helpers.tc "unknown strategy fails" test_bad_strategy_fails;
      Helpers.tc "missing file fails" test_bad_file_fails;
      Helpers.tc "exit 0: clean" test_exit_clean;
      Helpers.tc "exit 1: diagnostics only" test_exit_diagnostics;
      Helpers.tc "exit 2: budget-degraded" test_exit_degraded;
      Helpers.tc "exit 2 beats 1 when both" test_exit_degraded_beats_diagnostics;
      Helpers.tc "exit 1: expected failure" test_exit_expected_failure;
      Helpers.tc "--format json shape" test_json_format;
      Helpers.tc "--format json keeps exit code" test_json_format_keeps_exit_code;
      Helpers.tc "batch smoke" test_batch_smoke;
      Helpers.tc "batch crash fault exits 3" test_batch_crash_fault_exits_3;
      Helpers.tc "serve smoke" test_serve_smoke;
    ]
  else
    [ Alcotest.test_case "cli binary not built; skipped" `Quick (fun () -> ()) ]
