(** Tests for the library-function summaries (the paper handles library
    calls "by providing summaries of the potential pointer assignments in
    each library function"). *)

open Helpers

let all_ids = [ "collapse-always"; "collapse-on-cast"; "cis"; "offsets" ]

let for_all f =
  List.iter (fun id -> f id (strategy id)) all_ids

let test_realloc () =
  let src =
    {|
      void *malloc(unsigned long);
      void *realloc(void *, unsigned long);
      struct S { int *f; } *p, *q;
      int x;
      int *out;
      void main(void) {
        p = (struct S *)malloc(sizeof(struct S));
        p->f = &x;
        q = (struct S *)realloc(p, 2 * sizeof(struct S));
        out = q->f;
      }
    |}
  in
  for_all (fun id s ->
      let r = analyze ~strategy:s src in
      (* q may be the old block or the fresh one *)
      let tq = target_bases r "q" in
      if List.length tq < 2 then
        Alcotest.failf "%s: realloc q = %s" id (String.concat "," tq);
      (* the pointee contents were copied: out must still reach x *)
      let out = target_bases r "out" in
      if not (List.mem "x" out) then
        Alcotest.failf "%s: realloc lost x (out = %s)" id
          (String.concat "," out))

let test_static_results_shared () =
  let src =
    {|
      char *getenv(char *name);
      char *a, *b;
      void main(void) {
        a = getenv("HOME");
        b = getenv("PATH");
      }
    |}
  in
  for_all (fun id s ->
      let r = analyze ~strategy:s src in
      (* both calls return the same internal static object *)
      if targets r "a" <> targets r "b" || targets r "a" = [] then
        Alcotest.failf "%s: getenv statics differ" id)

let test_strchr_points_into_arg () =
  let src =
    {|
      char *strchr(char *s, int c);
      char buf[32];
      char *hit;
      void main(void) { hit = strchr(buf, 'x'); }
    |}
  in
  for_all (fun id s ->
      let r = analyze ~strategy:s src in
      let got = target_bases r "hit" in
      if not (List.mem "buf" got) then
        Alcotest.failf "%s: strchr result = %s" id (String.concat "," got))

let test_atexit_invokes_handler () =
  let src =
    {|
      int atexit(void (*fn)(void));
      int x;
      int *witness;
      void handler(void) { witness = &x; }
      void main(void) { atexit(handler); }
    |}
  in
  for_all (fun _id s ->
      let r = analyze ~strategy:s src in
      check_bases r "witness" [ "x" ])

let test_strcpy_returns_dst () =
  let src =
    {|
      char *strcpy(char *dst, char *src);
      char a[16];
      char *r;
      void main(void) { r = strcpy(a, "hello"); }
    |}
  in
  for_all (fun id s ->
      let res = analyze ~strategy:s src in
      let got = target_bases res "r" in
      if not (List.mem "a" got) then
        Alcotest.failf "%s: strcpy result = %s" id (String.concat "," got))

let test_fgets_returns_buffer () =
  let src =
    {|
      char *fgets(char *buf, int n, void *f);
      char line[80];
      char *got;
      void main(void) { got = fgets(line, 80, 0); }
    |}
  in
  for_all (fun _ s ->
      let r = analyze ~strategy:s src in
      check_bases r "got" [ "line" ])

let test_table_sanity () =
  (* allocation markers agree with the table *)
  Alcotest.(check bool) "malloc allocates" true (Norm.Summaries.is_alloc "malloc");
  Alcotest.(check bool) "strdup allocates" true (Norm.Summaries.is_alloc "strdup");
  Alcotest.(check bool) "strcpy does not" false (Norm.Summaries.is_alloc "strcpy");
  Alcotest.(check bool) "unknown fn absent" true
    (Norm.Summaries.find "frobnicate" = None);
  (* no duplicate summary names *)
  let names =
    List.map (fun s -> s.Norm.Summaries.sname) Norm.Summaries.table
  in
  Alcotest.(check int) "no duplicates" (List.length names)
    (List.length (List.sort_uniq compare names))

(* realloc is the one summary that composes all three effect kinds: a
   fresh block, aliasing the old block, and a deep copy of its contents
   into the result. The table entry itself is load-bearing — drop any
   one effect and test_realloc above still passes under some
   instances — so pin its structure directly. *)
let test_realloc_effect_table () =
  match Norm.Summaries.find "realloc" with
  | None -> Alcotest.fail "realloc has no summary"
  | Some s ->
      let has name p =
        Alcotest.(check bool) name true (List.exists p s.Norm.Summaries.effects)
      in
      has "allocates a fresh block" (function
        | Norm.Summaries.Alloc _ -> true
        | _ -> false);
      has "may return the old block" (function
        | Norm.Summaries.Ret_is (Norm.Summaries.Arg 0) -> true
        | _ -> false);
      has "copies the old contents into the result" (function
        | Norm.Summaries.Deep_copy (Norm.Summaries.Ret, Norm.Summaries.Arg 0)
          ->
            true
        | _ -> false)

let test_qsort_invokes_comparator () =
  let src =
    {|
      void qsort(void *base, unsigned long n, unsigned long sz,
                 int (*cmp)(void *, void *));
      int *arr[4];
      int x;
      int **seen;
      int compare(int **a, int **b) { seen = a; return 0; }
      void main(void) {
        arr[0] = &x;
        qsort(arr, 4, sizeof(int *), compare);
      }
    |}
  in
  for_all (fun id s ->
      let r = analyze ~strategy:s src in
      (* Invoke (3, [Arg 0; Arg 0]): the comparator runs with pointers
         into the array as both actuals *)
      let got = target_bases r "seen" in
      if not (List.mem "arr" got) then
        Alcotest.failf "%s: comparator argument = %s" id
          (String.concat "," got))

let test_unknown_externs_reported () =
  let src =
    {|
      void mystery_fn(int *p);
      int x;
      void main(void) { mystery_fn(&x); }
    |}
  in
  let r = analyze ~strategy:(strategy "cis") src in
  Alcotest.(check (list string)) "reported"
    [ "mystery_fn" ]
    r.Core.Analysis.metrics.Core.Metrics.unknown_externs

let suite =
  [
    tc "realloc: fresh + old + contents copied" test_realloc;
    tc "static results are shared per function" test_static_results_shared;
    tc "strchr points into its argument" test_strchr_points_into_arg;
    tc "atexit invokes the handler" test_atexit_invokes_handler;
    tc "strcpy returns its destination" test_strcpy_returns_dst;
    tc "fgets returns its buffer" test_fgets_returns_buffer;
    tc "summary table sanity" test_table_sanity;
    tc "realloc effect-table structure" test_realloc_effect_table;
    tc "qsort invokes its comparator on the array" test_qsort_invokes_comparator;
    tc "unknown externs are reported" test_unknown_externs_reported;
  ]
