(** Resilience tests: solver budgets, graceful precision degradation,
    and front-end error recovery.

    The contract under test: tripping any budget must leave the solver
    terminating promptly with a *sound over-approximation* of the
    unbudgeted result, and the degradation must be visible in
    [result.degraded]. Front-end recovery must surface every independent
    syntax error while still analyzing the functions that parse. *)

open Cfront
open Helpers

let analyze_budgeted ?layout ~budget ~strategy:id src :
    Core.Analysis.result =
  Core.Analysis.run_source ?layout ~budget ~strategy:(strategy id)
    ~file:"<budget>" src

let limits ?max_steps ?timeout_s ?max_cells_per_object ?max_total_cells () :
    Core.Budget.limits =
  { Core.Budget.max_steps; timeout_s; max_cells_per_object; max_total_cells }

let has_reason (r : Core.Analysis.result) pred =
  List.exists
    (fun (e : Core.Budget.event) -> pred e.Core.Budget.reason)
    r.Core.Analysis.degraded

let check_degraded name (r : Core.Analysis.result) pred =
  if r.Core.Analysis.degraded = [] then
    Alcotest.failf "%s: expected a degradation event, got none" name;
  if not (has_reason r pred) then
    Alcotest.failf "%s: no event with the expected trip reason (got: %s)"
      name
      (String.concat "; "
         (List.map Core.Budget.event_to_string r.Core.Analysis.degraded))

(** [sub] must be contained in [super] — degraded results may only add
    targets, never lose them. *)
let check_subset name ~precise ~degraded =
  List.iter
    (fun b ->
      if not (List.mem b degraded) then
        Alcotest.failf "%s: degraded result lost target %s (has: %s)" name b
          (String.concat "," degraded))
    precise

(* ------------------------------------------------------------------ *)
(* Adversarial inputs                                                  *)
(* ------------------------------------------------------------------ *)

(* A self-referential cast loop: pointers into [a] are stored into [a]
   itself at scattered offsets, so the Offsets instance materializes many
   cells for one object. *)
let cast_loop_src =
  {|
    struct A { char c[64]; } a;
    char *p;
    int **q;
    int x;
    void main(void) {
      p = (char *)&a;
      p = p + 1;
      q = (int **)p;
      *q = (int *)p;
      *q = (int *)&x;
    }
  |}

(* A wide two-level struct: eight pointer leaves, each a distinct cell
   under the field-sensitive instances. *)
let deep_struct_src =
  {|
    struct L1 { int *a; int *b; };
    struct L2 { struct L1 x; struct L1 y; };
    struct L3 { struct L2 x; struct L2 y; } s;
    int v0, v1, v2, v3, v4, v5, v6, v7;
    int *out;
    void main(void) {
      s.x.x.a = &v0;
      s.x.x.b = &v1;
      s.x.y.a = &v2;
      s.x.y.b = &v3;
      s.y.x.a = &v4;
      s.y.x.b = &v5;
      s.y.y.a = &v6;
      s.y.y.b = &v7;
      out = s.x.x.a;
    }
  |}

(* Enough straight-line statements that the worklist passes the sparse
   clock-sampling threshold (every 256 steps). *)
let long_src =
  let b = Buffer.create 4096 in
  Buffer.add_string b "int x;\n";
  for i = 0 to 299 do
    Buffer.add_string b (Printf.sprintf "int *p%d;\n" i)
  done;
  Buffer.add_string b "void main(void) {\n";
  for i = 0 to 299 do
    Buffer.add_string b (Printf.sprintf "  p%d = &x;\n" i)
  done;
  Buffer.add_string b "}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Budget trips                                                        *)
(* ------------------------------------------------------------------ *)

let all_ids = [ "collapse-always"; "collapse-on-cast"; "cis"; "offsets" ]

let test_step_budget_trips () =
  List.iter
    (fun id ->
      let r =
        analyze_budgeted ~budget:(limits ~max_steps:1 ()) ~strategy:id
          cast_loop_src
      in
      check_degraded
        (id ^ " steps")
        r
        (function Core.Budget.Steps 1 -> true | _ -> false))
    all_ids

let test_timeout_budget_trips () =
  (* a zero-second budget is over as soon as the clock is sampled *)
  let r =
    analyze_budgeted ~budget:(limits ~timeout_s:0.0 ()) ~strategy:"cis"
      long_src
  in
  check_degraded "timeout" r (function
    | Core.Budget.Timeout _ -> true
    | _ -> false)

let test_object_cell_budget_trips () =
  List.iter
    (fun id ->
      let r =
        analyze_budgeted
          ~budget:(limits ~max_cells_per_object:2 ())
          ~strategy:id deep_struct_src
      in
      check_degraded
        (id ^ " object cells")
        r
        (function Core.Budget.Object_cells 2 -> true | _ -> false);
      (* the collapsed object is named in the event *)
      let named =
        List.exists
          (fun (e : Core.Budget.event) ->
            match e.Core.Budget.obj with
            | Some v -> v.Cvar.vname = "s"
            | None -> false)
          r.Core.Analysis.degraded
      in
      Alcotest.(check bool) (id ^ ": event names s") true named)
    [ "cis"; "offsets" ]

let test_total_cell_budget_trips () =
  let r =
    analyze_budgeted ~budget:(limits ~max_total_cells:2 ()) ~strategy:"offsets"
      deep_struct_src
  in
  check_degraded "total cells" r (function
    | Core.Budget.Total_cells 2 -> true
    | _ -> false)

let test_cast_loop_terminates_under_default () =
  (* the ISSUE's acceptance check, library-level: an adversarial
     cast-heavy input finishes under the default budget *)
  List.iter
    (fun id ->
      let r =
        analyze_budgeted ~budget:Core.Budget.default ~strategy:id cast_loop_src
      in
      ignore r.Core.Analysis.metrics)
    all_ids

(* ------------------------------------------------------------------ *)
(* Degraded results are sound supersets                                *)
(* ------------------------------------------------------------------ *)

let paper_cases =
  [
    ("intro", Test_paper_examples.intro_src, "p");
    ("problem1", Test_paper_examples.problem1_src, "r");
    ("problem1-reverse", Test_paper_examples.problem1_reverse_src, "r");
  ]

let test_degraded_superset_steps () =
  List.iter
    (fun id ->
      List.iter
        (fun (name, src, var) ->
          let precise =
            target_bases
              (analyze_budgeted ~budget:Core.Budget.unlimited ~strategy:id src)
              var
          in
          let degraded =
            target_bases
              (analyze_budgeted ~budget:(limits ~max_steps:1 ()) ~strategy:id
                 src)
              var
          in
          check_subset
            (Printf.sprintf "%s/%s (steps)" id name)
            ~precise ~degraded)
        paper_cases)
    all_ids

let test_degraded_superset_object_cells () =
  List.iter
    (fun id ->
      List.iter
        (fun (name, src, var) ->
          let precise =
            target_bases
              (analyze_budgeted ~budget:Core.Budget.unlimited ~strategy:id src)
              var
          in
          let degraded =
            target_bases
              (analyze_budgeted
                 ~budget:(limits ~max_cells_per_object:1 ())
                 ~strategy:id src)
              var
          in
          check_subset
            (Printf.sprintf "%s/%s (object cells)" id name)
            ~precise ~degraded)
        paper_cases)
    all_ids

let test_deep_struct_superset () =
  (* under a tight per-object budget every leaf target must survive the
     collapse of [s] *)
  let r =
    analyze_budgeted ~budget:(limits ~max_cells_per_object:2 ())
      ~strategy:"offsets" deep_struct_src
  in
  check_subset "deep-struct out" ~precise:[ "v0" ]
    ~degraded:(target_bases r "out")

let test_unbudgeted_runs_stay_precise () =
  (* the degradation machinery must be invisible without a budget *)
  let r = analyze ~strategy:(strategy "cis") Test_paper_examples.intro_src in
  Alcotest.(check bool) "no events" true (r.Core.Analysis.degraded = []);
  check_bases r "p" [ "x" ]

(* ------------------------------------------------------------------ *)
(* Front-end error recovery                                            *)
(* ------------------------------------------------------------------ *)

let two_errors_src =
  {|
    int x;
    int *p;
    void main(void) {
      p = &x;
    }
    void bad1(void) {
      x = ;
    }
    void bad2(void) {
      p = & ;
    }
  |}

let test_parser_recovery_two_errors () =
  let diags = Diag.create () in
  let r =
    Core.Analysis.run_source ~diags ~strategy:(strategy "cis")
      ~file:"<recovery>" two_errors_src
  in
  let n = List.length (Diag.errors diags) in
  if n < 2 then
    Alcotest.failf "expected >= 2 diagnostics, got %d: %s" n
      (String.concat "; "
         (List.map
            (fun (p : Diag.payload) -> p.Diag.message)
            (Diag.diagnostics diags)));
  Alcotest.(check bool) "diags surfaced in result" true
    (List.length r.Core.Analysis.diags >= 2);
  (* the valid function still produced points-to facts *)
  check_bases r "p" [ "x" ]

let test_recovery_mid_function () =
  (* a bad statement inside a function must not take down its siblings *)
  let diags = Diag.create () in
  let src =
    {|
      int x, y;
      int *p, *q;
      void main(void) {
        p = &x;
        q = & ;
        q = &y;
      }
    |}
  in
  let r =
    Core.Analysis.run_source ~diags ~strategy:(strategy "cis")
      ~file:"<recovery>" src
  in
  Alcotest.(check bool) "an error was recorded" true (Diag.has_errors diags);
  check_bases r "p" [ "x" ];
  check_bases r "q" [ "y" ]

let test_without_ctx_still_raises () =
  (* the historical contract: no context means fail-fast *)
  match
    Core.Analysis.run_source ~strategy:(strategy "cis") ~file:"<raise>"
      two_errors_src
  with
  | exception Diag.Error _ -> ()
  | _ -> Alcotest.fail "expected Diag.Error without a diagnostics context"

let test_diag_cap_is_fatal () =
  (* the accumulating context must not grow without bound *)
  let diags = Diag.create ~max_diags:3 () in
  match
    for i = 0 to 9 do
      Diag.report diags "error %d" i
    done
  with
  | exception Diag.Error _ ->
      Alcotest.(check int) "capped" 3 (Diag.error_count diags)
  | () -> Alcotest.fail "expected the diagnostics cap to raise"

let suite =
  [
    tc "step budget trips and degrades" test_step_budget_trips;
    tc "timeout budget trips and degrades" test_timeout_budget_trips;
    tc "per-object cell budget collapses the object"
      test_object_cell_budget_trips;
    tc "total cell budget degrades the run" test_total_cell_budget_trips;
    tc "adversarial cast loop terminates under default budget"
      test_cast_loop_terminates_under_default;
    tc "degraded (steps) is a superset on paper examples"
      test_degraded_superset_steps;
    tc "degraded (object cells) is a superset on paper examples"
      test_degraded_superset_object_cells;
    tc "deep struct keeps every target through collapse"
      test_deep_struct_superset;
    tc "unbudgeted runs see no degradation" test_unbudgeted_runs_stay_precise;
    tc "parser recovery reports both errors and still analyzes"
      test_parser_recovery_two_errors;
    tc "recovery inside a function body" test_recovery_mid_function;
    tc "no context means fail-fast as before" test_without_ctx_still_raises;
    tc "diagnostics cap raises instead of growing" test_diag_cap_is_fatal;
  ]
