(** Benchmark harness: regenerates every table and figure of the paper's
    evaluation (Section 5) on the corpus in [lib/suite], plus the three
    extension ablations documented in DESIGN.md, plus Bechamel
    micro-benchmarks (one [Test.make] per figure).

    Usage: [dune exec bench/main.exe] (all sections), or pass section
    names: [fig3 fig4 fig5 fig6 ext-a ext-b ext-c ext-d ext-e bechamel]. *)

open Norm

let strategies = Core.Analysis.strategies

let strategy_id (module S : Core.Strategy.S) = S.id

let compile (p : Suite.program) : Nast.program =
  Lower.compile ~file:p.Suite.name p.Suite.source

let programs = Suite.programs

let casting = Suite.casting

(* memoize compiled programs — several figures reuse them *)
let compiled : (string, Nast.program) Hashtbl.t = Hashtbl.create 32

let prog_of (p : Suite.program) : Nast.program =
  match Hashtbl.find_opt compiled p.Suite.name with
  | Some n -> n
  | None ->
      let n = compile p in
      Hashtbl.replace compiled p.Suite.name n;
      n

let results : (string * string, Core.Analysis.result) Hashtbl.t =
  Hashtbl.create 128

let result_of (p : Suite.program) (s : (module Core.Strategy.S)) :
    Core.Analysis.result =
  let key = (p.Suite.name, strategy_id s) in
  match Hashtbl.find_opt results key with
  | Some r -> r
  | None ->
      let r = Core.Analysis.run ~strategy:s (prog_of p) in
      Hashtbl.replace results key r;
      r

let line () = print_endline (String.make 78 '-')

let header title =
  print_newline ();
  line ();
  Printf.printf "%s\n" title;
  line ()

(* ------------------------------------------------------------------ *)
(* Figure 3: test-program characteristics and instrumentation          *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  header
    "Figure 3: programs; % of lookup/resolve calls involving structures,\n\
     and of those, % where the types did not match (casting involved)";
  Printf.printf "%-10s %6s %7s | %-21s | %-21s\n" "" "" ""
    "Collapse on Cast" "Common Initial Seq";
  Printf.printf "%-10s %6s %7s | %9s %11s | %9s %11s\n" "program" "lines"
    "stmts" "struct%" "mismatch%" "struct%" "mismatch%";
  line ();
  List.iter
    (fun p ->
      let prog = prog_of p in
      let coc = result_of p (module Core.Collapse_on_cast) in
      let cis = result_of p (module Core.Common_init_seq) in
      let pct (r : Core.Analysis.result) =
        let c = r.Core.Analysis.solver.Core.Solver.ctx in
        let total = c.Core.Actx.lookup_calls + c.Core.Actx.resolve_calls in
        let str = c.Core.Actx.lookup_struct + c.Core.Actx.resolve_struct in
        let mis = c.Core.Actx.lookup_mismatch + c.Core.Actx.resolve_mismatch in
        let p a b =
          if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b
        in
        (p str total, p mis str)
      in
      let s1, m1 = pct coc in
      let s2, m2 = pct cis in
      Printf.printf "%-10s %6d %7d | %8.1f%% %10.1f%% | %8.1f%% %10.1f%%%s\n"
        p.Suite.name (Suite.line_count p) (Nast.stmt_count prog) s1 m1 s2 m2
        (if p.Suite.has_struct_cast then "" else "   [no struct casts]"))
    programs

(* ------------------------------------------------------------------ *)
(* Figure 4: average points-to set size of a dereferenced pointer      *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  header
    "Figure 4: average points-to set size of a dereferenced pointer\n\
     (12 casting programs; Collapse-Always struct facts expanded to fields)";
  Printf.printf "%-10s %10s %12s %8s %9s\n" "program" "collapse" "on-cast"
    "cis" "offsets";
  line ();
  List.iter
    (fun p ->
      let avg s =
        (result_of p s).Core.Analysis.metrics.Core.Metrics.avg_deref_size
      in
      Printf.printf "%-10s %10.2f %12.2f %8.2f %9.2f\n" p.Suite.name
        (avg (module Core.Collapse_always))
        (avg (module Core.Collapse_on_cast))
        (avg (module Core.Common_init_seq))
        (avg (module Core.Offsets)))
    casting

(* ------------------------------------------------------------------ *)
(* Figure 5: analysis-time ratios, normalized to Offsets               *)
(* ------------------------------------------------------------------ *)

let time_of (p : Suite.program) (s : (module Core.Strategy.S)) : float =
  (* fresh runs (not memoized), best of 3, CPU time like the paper *)
  let prog = prog_of p in
  let best = ref infinity in
  for _ = 1 to 3 do
    let t0 = Sys.time () in
    ignore (Core.Solver.run ~strategy:s prog);
    let dt = Sys.time () -. t0 in
    if dt < !best then best := dt
  done;
  !best

let fig5 () =
  header
    "Figure 5: analysis-time ratios normalized to the Offsets algorithm\n\
     (12 casting programs; absolute Offsets CPU time in the last column)";
  Printf.printf "%-10s %10s %12s %8s %9s | %12s\n" "program" "collapse"
    "on-cast" "cis" "offsets" "offsets (s)";
  line ();
  List.iter
    (fun p ->
      let t_off = time_of p (module Core.Offsets) in
      let ratio s =
        let t = time_of p s in
        if t_off > 0.0 then t /. t_off else 0.0
      in
      Printf.printf "%-10s %10.2f %12.2f %8.2f %9.2f | %12.4f\n" p.Suite.name
        (ratio (module Core.Collapse_always))
        (ratio (module Core.Collapse_on_cast))
        (ratio (module Core.Common_init_seq))
        1.0 t_off)
    casting

(* ------------------------------------------------------------------ *)
(* Figure 6: total points-to edges, normalized to Offsets              *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  header
    "Figure 6: total points-to edges normalized to the Offsets algorithm\n\
     (12 casting programs; absolute Offsets edge count in the last column)";
  Printf.printf "%-10s %10s %12s %8s %9s | %12s\n" "program" "collapse"
    "on-cast" "cis" "offsets" "offsets (#)";
  line ();
  List.iter
    (fun p ->
      let edges s =
        (result_of p s).Core.Analysis.metrics.Core.Metrics.total_edges
      in
      let e_off = edges (module Core.Offsets) in
      let ratio s =
        if e_off > 0 then float_of_int (edges s) /. float_of_int e_off
        else 0.0
      in
      Printf.printf "%-10s %10.2f %12.2f %8.2f %9.2f | %12d\n" p.Suite.name
        (ratio (module Core.Collapse_always))
        (ratio (module Core.Collapse_on_cast))
        (ratio (module Core.Common_init_seq))
        1.0 e_off)
    casting

(* ------------------------------------------------------------------ *)
(* Extension A: precision ordering on random programs                  *)
(* ------------------------------------------------------------------ *)

let ext_a () =
  header
    "Extension A: average deref points-to size on random programs\n\
     (validates the precision ordering across the framework instances)";
  Printf.printf "%-8s %10s %12s %8s %9s\n" "seed" "collapse" "on-cast" "cis"
    "offsets";
  line ();
  let cfg = { Cgen.default with n_stmts = 80; cast_rate = 0.4 } in
  let totals = Array.make 4 0.0 in
  let seeds = [ 11; 23; 42; 77; 101; 137; 253; 389; 511; 997 ] in
  List.iter
    (fun seed ->
      let src = Cgen.generate ~cfg ~seed () in
      let prog = Lower.compile ~file:(Printf.sprintf "gen%d" seed) src in
      let sizes =
        List.map
          (fun s ->
            (Core.Analysis.run ~strategy:s prog).Core.Analysis.metrics
              .Core.Metrics.avg_deref_size)
          strategies
      in
      List.iteri (fun i v -> totals.(i) <- totals.(i) +. v) sizes;
      match sizes with
      | [ ca; coc; cis; off ] ->
          Printf.printf "%-8d %10.2f %12.2f %8.2f %9.2f\n" seed ca coc cis off
      | _ -> ())
    seeds;
  line ();
  let n = float_of_int (List.length seeds) in
  Printf.printf "%-8s %10.2f %12.2f %8.2f %9.2f\n" "mean" (totals.(0) /. n)
    (totals.(1) /. n) (totals.(2) /. n) (totals.(3) /. n)

(* ------------------------------------------------------------------ *)
(* Extension B: Steensgaard baselines                                  *)
(* ------------------------------------------------------------------ *)

let ext_b () =
  header
    "Extension B: unification (Steensgaard-style) baselines vs the\n\
     framework instances — avg deref points-to size on casting programs";
  Printf.printf "%-10s %12s %12s %10s %8s %9s\n" "program" "steens-coll"
    "steens-field" "collapse" "cis" "offsets";
  line ();
  List.iter
    (fun p ->
      let prog = prog_of p in
      let st_c =
        Steens.Steensgaard.run ~flavor:Steens.Steensgaard.Collapsed prog
      in
      let st_f =
        Steens.Steensgaard.run ~flavor:Steens.Steensgaard.Fields prog
      in
      let avg s =
        (result_of p s).Core.Analysis.metrics.Core.Metrics.avg_deref_size
      in
      Printf.printf "%-10s %12.2f %12.2f %10.2f %8.2f %9.2f\n" p.Suite.name
        (Steens.Steensgaard.avg_deref_size st_c)
        (Steens.Steensgaard.avg_deref_size st_f)
        (avg (module Core.Collapse_always))
        (avg (module Core.Common_init_seq))
        (avg (module Core.Offsets)))
    casting

(* ------------------------------------------------------------------ *)
(* Extension C: Assumption-1 pointer-arithmetic rule ablation          *)
(* ------------------------------------------------------------------ *)

let ext_c () =
  header
    "Extension C: pointer-arithmetic handling ablation (CIS instance)\n\
     spread = paper's Assumption-1 rule; stride = Wilson-Lam array\n\
     refinement; unknown = pessimistic marker (flagged derefs shown);\n\
     copy = optimistic lower bound";
  Printf.printf "%-10s %10s %10s %10s %10s | %10s\n" "program" "spread"
    "stride" "unknown" "copy" "flagged";
  line ();
  List.iter
    (fun p ->
      let prog = prog_of p in
      let summarize arith =
        Core.Metrics.summarize
          (Core.Solver.run ~arith ~strategy:(module Core.Common_init_seq)
             prog)
      in
      let spread = summarize `Spread in
      let stride = summarize `Stride in
      let unknown = summarize `Unknown in
      let copy = summarize `Copy in
      Printf.printf "%-10s %10.2f %10.2f %10.2f %10.2f | %7d/%-3d\n"
        p.Suite.name spread.Core.Metrics.avg_deref_size
        stride.Core.Metrics.avg_deref_size
        unknown.Core.Metrics.avg_deref_size copy.Core.Metrics.avg_deref_size
        unknown.Core.Metrics.corrupt_derefs unknown.Core.Metrics.deref_sites)
    casting

(* ------------------------------------------------------------------ *)
(* Extension D: solver scalability on generated workloads              *)
(* ------------------------------------------------------------------ *)

let ext_d () =
  header
    "Extension D: solver scalability (generated programs; CPU seconds,\n\
     best of 2). The paper's suite spanned 650-29,000 source lines.";
  Printf.printf "%-8s %8s %10s %12s %8s %9s\n" "stmts" "cells" "collapse"
    "on-cast" "cis" "offsets";
  line ();
  List.iter
    (fun n_stmts ->
      let cfg = { Cgen.default with n_stmts; n_structs = 4; cast_rate = 0.3 } in
      let src = Cgen.generate ~cfg ~seed:2026 () in
      let prog = Lower.compile ~file:(Printf.sprintf "scale%d" n_stmts) src in
      let time s =
        let best = ref infinity in
        for _ = 1 to 2 do
          let t0 = Sys.time () in
          ignore (Core.Solver.run ~strategy:s prog);
          let dt = Sys.time () -. t0 in
          if dt < !best then best := dt
        done;
        !best
      in
      let edges =
        let solver =
          Core.Solver.run ~strategy:(module Core.Common_init_seq) prog
        in
        Core.Graph.edge_count solver.Core.Solver.graph
      in
      Printf.printf "%-8d %8d %10.4f %12.4f %8.4f %9.4f\n"
        (Nast.stmt_count prog) edges
        (time (module Core.Collapse_always))
        (time (module Core.Collapse_on_cast))
        (time (module Core.Common_init_seq))
        (time (module Core.Offsets)))
    [ 100; 200; 400; 800; 1600; 3200 ]

(* ------------------------------------------------------------------ *)
(* Extension E: budgeted-solve resilience                              *)
(* ------------------------------------------------------------------ *)

(* Budget configurations shared by the ext-e table and its JSON twin. *)
let ext_e_budgets : (string * Core.Budget.limits) list =
  [
    ("unlimited", Core.Budget.unlimited);
    ("default", Core.Budget.default);
    ( "steps=2000",
      { Core.Budget.unlimited with Core.Budget.max_steps = Some 2000 } );
    ( "cells/object=4",
      { Core.Budget.unlimited with Core.Budget.max_cells_per_object = Some 4 }
    );
    ( "total-cells=200",
      { Core.Budget.unlimited with Core.Budget.max_total_cells = Some 200 } );
  ]

let ext_e_prog () =
  let cfg =
    { Cgen.default with n_stmts = 800; n_structs = 5; cast_rate = 0.6 }
  in
  let src = Cgen.generate ~cfg ~seed:2026 () in
  Lower.compile ~file:"budget-bench" src

let ext_e_run prog (budget : Core.Budget.limits) =
  let t0 = Sys.time () in
  let solver = Core.Solver.run ~budget ~strategy:(module Core.Offsets) prog in
  let dt = Sys.time () -. t0 in
  (solver, Core.Metrics.summarize solver, dt)

let ext_e () =
  header
    "Extension E: budgeted solves on a cast-heavy generated workload\n\
     (precision given up and time saved when budgets degrade the solve)";
  Printf.printf "%-24s %8s %10s %10s %10s %8s\n" "budget" "steps" "collapses"
    "avg-deref" "edges" "time(s)";
  line ();
  let prog = ext_e_prog () in
  List.iter
    (fun (label, budget) ->
      let solver, m, dt = ext_e_run prog budget in
      Printf.printf "%-24s %8d %10d %10.2f %10d %8.4f\n" label
        (Core.Budget.steps solver.Core.Solver.budget)
        (List.length (Core.Solver.degradations solver))
        m.Core.Metrics.avg_deref_size m.Core.Metrics.total_edges dt)
    ext_e_budgets

(* Same sweep, one JSON object per budget config — the CI artifact.
   Run it alone ([bench/main.exe ext-e-json > ext-e.json]) for a clean
   JSON-lines stream: the harness banner is suppressed for -json
   sections. *)
let ext_e_json () =
  let prog = ext_e_prog () in
  List.iter
    (fun (label, budget) ->
      let solver, m, dt = ext_e_run prog budget in
      Printf.printf
        "{\"budget\":%s,\"steps\":%d,\"collapses\":%d,\"avg_deref_size\":%.4f,\
         \"total_edges\":%d,\"time_s\":%.4f}\n"
        (Core.Report.quote label)
        (Core.Budget.steps solver.Core.Solver.budget)
        (List.length (Core.Solver.degradations solver))
        m.Core.Metrics.avg_deref_size m.Core.Metrics.total_edges dt)
    ext_e_budgets

(* ------------------------------------------------------------------ *)
(* Solver engines: difference propagation vs the naive reference       *)
(* ------------------------------------------------------------------ *)

(* The full engine matrix on the ext-e workload (cast-heavy, 800
   statements) for every instance, plus the budgeted Offsets sweep: all
   engines must reach the same fixpoint, the delta engines with fewer
   visits and facts than naive, and cycle elimination (delta) with fewer
   fact reads again than the ablation baseline (delta-nocycle). *)

let solver_run prog strategy budget (engine : Core.Solver.engine) =
  let t0 = Sys.time () in
  let solver = Core.Solver.run ~budget ~engine ~strategy prog in
  let dt = Sys.time () -. t0 in
  (solver, dt)

type engine_sample = {
  visits : int;
  facts : int;
  copy_edges : int;
  edges : int;
  cycles : int;
  unified : int;
  wasted : int;
  time_s : float;
}

let sample prog strategy budget engine : engine_sample =
  let solver, dt = solver_run prog strategy budget engine in
  {
    visits = solver.Core.Solver.rounds;
    facts = solver.Core.Solver.facts_consumed;
    copy_edges = Core.Solver.copy_edge_count solver;
    edges = Core.Graph.edge_count solver.Core.Solver.graph;
    cycles = solver.Core.Solver.cycles_found;
    unified = solver.Core.Solver.cells_unified;
    wasted = solver.Core.Solver.wasted_props;
    time_s = dt;
  }

let solver_cases () :
    (string * Nast.program * (module Core.Strategy.S) * string
    * Core.Budget.limits)
    list =
  let prog = ext_e_prog () in
  List.map
    (fun (module S : Core.Strategy.S) ->
      ( Printf.sprintf "ext-e/%s" S.id,
        prog,
        (module S : Core.Strategy.S),
        "unlimited",
        Core.Budget.unlimited ))
    strategies
  @ List.filter_map
      (fun (label, budget) ->
        if label = "unlimited" then None
        else
          Some
            ( Printf.sprintf "ext-e/offsets[%s]" label,
              prog,
              (module Core.Offsets : Core.Strategy.S),
              label,
              budget ))
      ext_e_budgets

let solver () =
  header
    "Solver engines: delta (cycle elimination) vs delta-nocycle vs naive\n\
     on the ext-e workload — same fixpoint, decreasing amounts of work";
  Printf.printf "%-26s %8s %8s %8s | %10s %10s %10s | %6s %7s | %5s\n" "case"
    "visits" "visits" "visits" "facts" "facts" "facts" "cycles" "unified"
    "equal";
  Printf.printf "%-26s %8s %8s %8s | %10s %10s %10s | %6s %7s |\n" ""
    "(delta)" "(nocyc)" "(naive)" "(delta)" "(nocyc)" "(naive)" "" "";
  line ();
  List.iter
    (fun (label, prog, strategy, _, budget) ->
      let d = sample prog strategy budget `Delta in
      let dn = sample prog strategy budget `Delta_nocycle in
      let n = sample prog strategy budget `Naive in
      (* identical fixpoints only hold for unbudgeted runs: engines trip
         budgets at different points, degrading different objects *)
      let same =
        if budget = Core.Budget.unlimited then
          if d.edges = n.edges && dn.edges = n.edges then "yes" else "NO!"
        else "-"
      in
      Printf.printf "%-26s %8d %8d %8d | %10d %10d %10d | %6d %7d | %5s\n"
        label d.visits dn.visits n.visits d.facts dn.facts n.facts d.cycles
        d.unified same)
    (solver_cases ())

(* Same sweep as JSON lines — the CI artifact (BENCH_solver.json). *)
let solver_json () =
  List.iter
    (fun (label, prog, (module S : Core.Strategy.S), budget_label, budget) ->
      let d = sample prog (module S : Core.Strategy.S) budget `Delta in
      let dn =
        sample prog (module S : Core.Strategy.S) budget `Delta_nocycle
      in
      let n = sample prog (module S : Core.Strategy.S) budget `Naive in
      let ratio a b =
        if b = 0 then 0.0 else float_of_int a /. float_of_int b
      in
      let eng e =
        Printf.sprintf
          "{\"visits\":%d,\"facts\":%d,\"copy_edges\":%d,\"edges\":%d,\
           \"cycles_found\":%d,\"cells_unified\":%d,\
           \"wasted_propagations\":%d,\"time_s\":%.4f}"
          e.visits e.facts e.copy_edges e.edges e.cycles e.unified e.wasted
          e.time_s
      in
      Printf.printf
        "{\"case\":%s,\"strategy\":%s,\"budget\":%s,\"delta\":%s,\
         \"delta_nocycle\":%s,\"naive\":%s,\"visit_ratio\":%.4f,\
         \"fact_ratio\":%.4f,\"time_ratio\":%.4f,\"cycle_visit_ratio\":%.4f,\
         \"cycle_fact_ratio\":%.4f}\n"
        (Core.Report.quote label) (Core.Report.quote S.id)
        (Core.Report.quote budget_label) (eng d) (eng dn) (eng n)
        (ratio d.visits n.visits) (ratio d.facts n.facts)
        (if n.time_s > 0.0 then d.time_s /. n.time_s else 0.0)
        (ratio d.visits dn.visits) (ratio d.facts dn.facts))
    (solver_cases ())

(* ------------------------------------------------------------------ *)
(* Edit replay: incremental re-analysis vs from-scratch                *)
(* ------------------------------------------------------------------ *)

(* A solved base program takes a stream of single-statement edits; each
   is answered incrementally (warm start for additions, support-counting
   retraction for removals) and checked against a from-scratch solve of
   the same edited program. The interesting number is the visit ratio:
   how much of the fixpoint had to be recomputed. *)

type edit_row = {
  er_strategy : string;
  er_step : int;
  er_kind : string;  (** add | remove | mutate *)
  er_added : int;
  er_removed : int;
  er_retracted : int;
  er_warm : int;  (** statement visits the warm re-solve needed *)
  er_replayed : int;  (** statements the targeted replay re-enqueued *)
  er_scratch : int;  (** statement visits a cold solve of the edit needs *)
  er_fallback : bool;
  er_fallback_planned : bool;
  er_equal : bool;
  er_time_warm : float;
  er_time_scratch : float;
}

let edit_replay_prog () =
  let cfg =
    { Cgen.default with n_stmts = 200; n_structs = 4; cast_rate = 0.3 }
  in
  Lower.compile ~file:"edit-replay" (Cgen.generate ~cfg ~seed:2026 ())

let edit_kind = function
  | Incr.Edit.Add _ -> "add"
  | Incr.Edit.Remove _ -> "remove"
  | Incr.Edit.Mutate _ -> "mutate"

(* the script's first half is pure additions — the warm-start fast path
   the CI gate watches — the second half removes or mutates, exercising
   the retraction path *)
let next_op ~rand ~additive prog : Incr.Edit.op option =
  let rec go tries =
    if tries = 0 then None
    else
      match Incr.Edit.random_op ~rand prog with
      | Some (Incr.Edit.Add _ as op) when additive -> Some op
      | Some ((Incr.Edit.Remove _ | Incr.Edit.Mutate _) as op)
        when not additive ->
          Some op
      | Some _ -> go (tries - 1)
      | None -> None
  in
  go 50

let edit_replay_rows () : edit_row list =
  let base = edit_replay_prog () in
  List.concat_map
    (fun (module S : Core.Strategy.S) ->
      let rand = Random.State.make [| 2026 |] in
      let t =
        ref (Core.Solver.run ~track:true ~strategy:(module S) base)
      in
      let rows = ref [] in
      for step = 1 to 6 do
        match next_op ~rand ~additive:(step <= 3) !t.Core.Solver.prog with
        | None -> ()
        | Some op ->
            let edited = Incr.Edit.apply !t.Core.Solver.prog [ op ] in
            let t0 = Sys.time () in
            let t', st = Incr.Engine.reanalyze !t edited in
            let dt_warm = Sys.time () -. t0 in
            t := t';
            let t0 = Sys.time () in
            let scratch =
              Core.Solver.run ~strategy:(module S) !t.Core.Solver.prog
            in
            let dt_scratch = Sys.time () -. t0 in
            rows :=
              {
                er_strategy = S.id;
                er_step = step;
                er_kind = edit_kind op;
                er_added = st.Incr.Engine.stmts_added;
                er_removed = st.Incr.Engine.stmts_removed;
                er_retracted = st.Incr.Engine.facts_retracted;
                er_warm = st.Incr.Engine.warm_visits;
                er_replayed = st.Incr.Engine.stmts_replayed;
                er_scratch = scratch.Core.Solver.rounds;
                er_fallback = st.Incr.Engine.fallback;
                er_fallback_planned = st.Incr.Engine.fallback_planned;
                er_equal =
                  Core.Graph.equal !t.Core.Solver.graph
                    scratch.Core.Solver.graph;
                er_time_warm = dt_warm;
                er_time_scratch = dt_scratch;
              }
              :: !rows
      done;
      List.rev !rows)
    strategies

let visit_ratio r =
  if r.er_scratch = 0 then 0.0
  else float_of_int r.er_warm /. float_of_int r.er_scratch

(* A warm answer materially slower than the scratch solve it replaces
   is the bug this suite exists to catch — but only when the engine
   actually claims a warm win: fallback rows (planned or degraded) ARE
   scratch solves plus bookkeeping, and sub-5ms timings are noise. *)
let warm_slower_than_scratch r =
  (not r.er_fallback)
  && (not r.er_fallback_planned)
  && r.er_time_scratch >= 0.005
  && r.er_time_warm > 1.2 *. r.er_time_scratch

let edit_replay () =
  header
    "Edit replay: incremental re-analysis of single-statement edits vs\n\
     solving the edited program from scratch (200-statement base)";
  Printf.printf "%-18s %4s %-7s %6s %6s %10s %8s %8s %9s %7s %6s\n"
    "strategy" "step" "edit" "+stmts" "-stmts" "retracted" "replayed"
    "warm" "scratch" "ratio" "equal";
  line ();
  let rows = edit_replay_rows () in
  List.iter
    (fun r ->
      Printf.printf "%-18s %4d %-7s %6d %6d %10d %8d %8d %9d %7.3f %6s%s\n"
        r.er_strategy r.er_step r.er_kind r.er_added r.er_removed
        r.er_retracted r.er_replayed r.er_warm r.er_scratch (visit_ratio r)
        (if r.er_equal then "yes" else "NO!")
        (if r.er_fallback_planned then "  (planned fallback)"
         else if r.er_fallback then "  (fallback)"
         else ""))
    rows;
  let slow = List.filter warm_slower_than_scratch rows in
  if slow <> [] then begin
    List.iter
      (fun r ->
        Printf.eprintf
          "edit-replay: %s step %d (%s) claims a warm win but took \
           %.4fs vs %.4fs scratch (no fallback flag)\n"
          r.er_strategy r.er_step r.er_kind r.er_time_warm
          r.er_time_scratch)
      slow;
    exit 1
  end

(* Same sweep as JSON lines — the CI artifact (BENCH_incr.json). CI
   gates warm_visit_ratio < 0.5 on additive AND removal/mutate rows. *)
let edit_replay_json () =
  let rows = edit_replay_rows () in
  List.iter
    (fun r ->
      Printf.printf
        "{\"strategy\":%s,\"step\":%d,\"edit\":%s,\"stmts_added\":%d,\
         \"stmts_removed\":%d,\"facts_retracted\":%d,\"stmts_replayed\":%d,\
         \"warm_visits\":%d,\
         \"scratch_visits\":%d,\"warm_visit_ratio\":%.4f,\"fallback\":%b,\
         \"fallback_planned\":%b,\
         \"equal\":%b,\"time_warm_s\":%.4f,\"time_scratch_s\":%.4f}\n"
        (Core.Report.quote r.er_strategy)
        r.er_step
        (Core.Report.quote r.er_kind)
        r.er_added r.er_removed r.er_retracted r.er_replayed r.er_warm
        r.er_scratch (visit_ratio r) r.er_fallback r.er_fallback_planned
        r.er_equal r.er_time_warm r.er_time_scratch)
    rows;
  let slow = List.filter warm_slower_than_scratch rows in
  if slow <> [] then begin
    List.iter
      (fun r ->
        Printf.eprintf
          "edit-replay: %s step %d (%s) claims a warm win but took \
           %.4fs vs %.4fs scratch (no fallback flag)\n"
          r.er_strategy r.er_step r.er_kind r.er_time_warm
          r.er_time_scratch)
      slow;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Fixpoint store: edit-replay session served through the cache        *)
(* ------------------------------------------------------------------ *)

(* The same edit-replay chain of programs, answered through a fixpoint
   store: a cold pass populates it, a replay pass must be 100% exact
   hits with zero solver visits, and every answer — whatever its origin
   — must render the byte-identical stats-free report a scratch solve
   produces. CI runs this twice against one store directory and gates
   the replay pass. *)

type store_row = {
  sr_strategy : string;
  sr_pass : string;  (** populate | replay *)
  sr_step : int;
  sr_origin : string;  (** hit | ancestor | cold *)
  sr_visits : int;  (** statement visits this request performed *)
  sr_scratch : int;  (** visits a scratch solve of the same input needs *)
  sr_equal : bool;  (** report JSON byte-identical to the scratch render *)
  sr_time : float;
}

(* base program plus the programs the edit script walks through *)
let store_chain () : Nast.program list =
  let rand = Random.State.make [| 2026 |] in
  let cur = ref (edit_replay_prog ()) in
  let progs = ref [ !cur ] in
  for step = 1 to 6 do
    match next_op ~rand ~additive:(step <= 3) !cur with
    | None -> ()
    | Some op ->
        cur := Incr.Edit.apply !cur [ op ];
        progs := !cur :: !progs
  done;
  List.rev !progs

let store_scratch (module S : Core.Strategy.S) prog : int * string =
  let solver =
    Core.Solver.run ~budget:Core.Budget.default ~engine:`Delta ~track:true
      ~strategy:(module S) prog
  in
  ( solver.Core.Solver.rounds,
    Core.Report.json_of_result ~timing:false ~solver_stats:false
      ~name:"edit-replay"
      {
        Core.Analysis.solver;
        metrics = Core.Metrics.summarize solver;
        time_s = 0.;
        degraded = Core.Solver.degradations solver;
        diags = [];
      } )

let store_rows () : store_row list =
  let dir =
    match Sys.getenv_opt "STRUCTCAST_BENCH_STORE" with
    | Some d when d <> "" -> d
    | _ ->
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "structcast-bench-store-%d" (Unix.getpid ()))
  in
  let chain = store_chain () in
  List.concat_map
    (fun (module S : Core.Strategy.S) ->
      let scratch = List.map (store_scratch (module S)) chain in
      let pass name =
        (* a fresh handle per pass: index load and recovery run too *)
        let st = Store.open_store dir in
        List.mapi
          (fun i (prog, (scratch_visits, scratch_json)) ->
            let t0 = Sys.time () in
            let s =
              Store.serve st ~want:`Solver ~diags:[] ~name:"edit-replay"
                ~strategy_id:S.id ~engine:`Delta ~layout:Cfront.Layout.ilp32
                ~layout_id:"ilp32" ~budget:Core.Budget.default prog
            in
            let dt = Sys.time () -. t0 in
            let visits =
              match s.Store.sv_result with
              | Some r -> r.Core.Analysis.solver.Core.Solver.rounds
              | None -> 0
            in
            {
              sr_strategy = S.id;
              sr_pass = name;
              sr_step = i;
              sr_origin =
                (match s.Store.sv_origin with
                | `Hit -> "hit"
                | `Ancestor _ -> "ancestor"
                | `Cold -> "cold");
              sr_visits = visits;
              sr_scratch = scratch_visits;
              sr_equal = s.Store.sv_json = scratch_json;
              sr_time = dt;
            })
          (List.combine chain scratch)
      in
      let populate = pass "populate" in
      populate @ pass "replay")
    strategies

let store_bench () =
  header
    "Fixpoint store: the edit-replay program chain served through a\n\
     content-addressed snapshot store (populate pass, then replay pass)";
  Printf.printf "%-18s %-9s %4s %-9s %8s %9s %6s %9s\n" "strategy" "pass"
    "step" "origin" "visits" "scratch" "equal" "time(s)";
  line ();
  List.iter
    (fun r ->
      Printf.printf "%-18s %-9s %4d %-9s %8d %9d %6s %9.4f\n" r.sr_strategy
        r.sr_pass r.sr_step r.sr_origin r.sr_visits r.sr_scratch
        (if r.sr_equal then "yes" else "NO!")
        r.sr_time)
    (store_rows ())

(* Same sweep as JSON lines — the CI artifact (BENCH_store.json). CI
   gates the replay pass: origin "hit" with 0 visits on every row, and
   "equal" true on every row of both passes. *)
let store_bench_json () =
  List.iter
    (fun r ->
      Printf.printf
        "{\"strategy\":%s,\"pass\":%s,\"step\":%d,\"origin\":%s,\
         \"visits\":%d,\"scratch_visits\":%d,\"equal\":%b,\
         \"time_s\":%.4f}\n"
        (Core.Report.quote r.sr_strategy)
        (Core.Report.quote r.sr_pass)
        r.sr_step
        (Core.Report.quote r.sr_origin)
        r.sr_visits r.sr_scratch r.sr_equal r.sr_time)
    (store_rows ())

(* ------------------------------------------------------------------ *)
(* Summary cache: per-function summaries across a single-function edit *)
(* ------------------------------------------------------------------ *)

type summary_row = {
  su_strategy : string;
  su_pass : string;  (** cold | warm | edit *)
  su_funcs : int;
  su_hits : int;
  su_misses : int;
  su_written : int;
  su_reuse : float;  (** hits / funcs *)
  su_equal : bool;  (** stats-free report == naive scratch render *)
  su_time : float;
}

(* a call-heavy generated program (direct calls, a mutually recursive
   pair, callbacks through a struct-held function pointer), and the
   same source with exactly one helper body changed *)
let summary_src () : string =
  let cfg =
    { Cgen.default with n_stmts = 120; n_structs = 4; with_calls = true }
  in
  Cgen.generate ~cfg ~seed:2026 ()

let summary_edit src =
  let from = "int *pick_int(int *a, int *b) { if (a) return a; return b; }" in
  let into = "int *pick_int(int *a, int *b) { if (b) return b; return a; }" in
  let n = String.length from in
  let rec find i =
    if i + n > String.length src then
      failwith "summary bench: edit anchor missing"
    else if String.sub src i n = from then i
    else find (i + 1)
  in
  let i = find 0 in
  String.sub src 0 i ^ into
  ^ String.sub src (i + n) (String.length src - i - n)

let summary_scratch (module S : Core.Strategy.S) prog : string =
  let solver =
    Core.Solver.run ~budget:Core.Budget.default ~engine:`Naive ~track:true
      ~strategy:(module S) prog
  in
  Core.Report.json_of_result ~timing:false ~solver_stats:false
    ~name:"summary-bench"
    {
      Core.Analysis.solver;
      metrics = Core.Metrics.summarize solver;
      time_s = 0.;
      degraded = Core.Solver.degradations solver;
      diags = [];
    }

let summary_rows () : summary_row list =
  let dir_root =
    match Sys.getenv_opt "STRUCTCAST_BENCH_SUMMARY" with
    | Some d when d <> "" -> d
    | _ ->
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "structcast-bench-summary-%d" (Unix.getpid ()))
  in
  (if not (Sys.file_exists dir_root) then Unix.mkdir dir_root 0o755);
  let src = summary_src () in
  let src_edited = summary_edit src in
  List.concat_map
    (fun (module S : Core.Strategy.S) ->
      let dir = Filename.concat dir_root S.id in
      let config =
        {
          Store.Codec.strategy_id = S.id;
          engine = `Summary;
          layout_id = "ilp32";
          arith = `Spread;
          budget = Core.Budget.default;
        }
      in
      let pass name text =
        (* a fresh compile and a fresh cache handle per pass: records
           must rebind across identities, the counters start at zero *)
        let prog = Lower.compile ~file:"summary-bench" text in
        let cache = Summary.Sumcache.open_cache dir in
        let t0 = Sys.time () in
        let solver =
          Summary.Engine.solve ~cache ~config ~layout:Cfront.Layout.ilp32
            ~strategy:(module S) prog
        in
        let dt = Sys.time () -. t0 in
        let c = Summary.Sumcache.counters cache in
        let funcs = List.length prog.Nast.pfuncs in
        {
          su_strategy = S.id;
          su_pass = name;
          su_funcs = funcs;
          su_hits = c.Core.Metrics.sum_hits;
          su_misses = c.Core.Metrics.sum_misses;
          su_written = c.Core.Metrics.sum_written;
          su_reuse =
            (if funcs = 0 then 0.
             else float_of_int c.Core.Metrics.sum_hits /. float_of_int funcs);
          su_equal =
            (let warm =
               Core.Report.json_of_result ~timing:false ~solver_stats:false
                 ~name:"summary-bench"
                 {
                   Core.Analysis.solver;
                   metrics = Core.Metrics.summarize solver;
                   time_s = 0.;
                   degraded = Core.Solver.degradations solver;
                   diags = [];
                 }
             in
             warm = summary_scratch (module S) prog);
          su_time = dt;
        }
      in
      (* explicit sequencing: list literals evaluate right-to-left *)
      let cold = pass "cold" src in
      let warm = pass "warm" src in
      let edit = pass "edit" src_edited in
      [ cold; warm; edit ])
    strategies

let summary_bench () =
  header
    "Summary cache: bottom-up per-function summaries over the call-graph\n\
     SCC-DAG (cold populate, warm recompile, then a single-function edit)";
  Printf.printf "%-18s %-5s %6s %6s %7s %8s %7s %6s %9s\n" "strategy" "pass"
    "funcs" "hits" "misses" "written" "reuse" "equal" "time(s)";
  line ();
  List.iter
    (fun r ->
      Printf.printf "%-18s %-5s %6d %6d %7d %8d %6.0f%% %6s %9.4f\n"
        r.su_strategy r.su_pass r.su_funcs r.su_hits r.su_misses r.su_written
        (100. *. r.su_reuse)
        (if r.su_equal then "yes" else "NO!")
        r.su_time)
    (summary_rows ())

(* Same sweep as JSON lines — the CI artifact (BENCH_summary.json). CI
   gates: "equal" true on every row; the warm pass hits every function
   (reuse 1.0, misses 0); the edit pass recomputes at most the edited
   function and its transitive callers (misses < funcs, reuse > 0). *)
let summary_bench_json () =
  List.iter
    (fun r ->
      Printf.printf
        "{\"strategy\":%s,\"pass\":%s,\"funcs\":%d,\"hits\":%d,\
         \"misses\":%d,\"written\":%d,\"reuse\":%.3f,\"equal\":%b,\
         \"time_s\":%.4f}\n"
        (Core.Report.quote r.su_strategy)
        (Core.Report.quote r.su_pass)
        r.su_funcs r.su_hits r.su_misses r.su_written r.su_reuse r.su_equal
        r.su_time)
    (summary_rows ())

(* ------------------------------------------------------------------ *)
(* Overload: the serving path at 12x capacity, admission on vs off     *)
(* ------------------------------------------------------------------ *)

(* 24 requests hit a 2-worker fleet whose jobs each take ~200 ms (burst
   fault): far more work than the fleet can finish promptly. Unbounded,
   every request is eventually answered but the tail waits through the
   whole backlog; with admission control the queue is bounded, the
   overflow is shed immediately (deterministically — shedding depends
   only on queue occupancy), and the tail latency of answered requests
   collapses. CI gates: lost == 0 in both modes, identical shed_ids
   across runs, and p99(admission) < p99(unbounded). *)

type overload_row = {
  ov_mode : string;  (** unbounded | admission *)
  ov_offered : int;
  ov_done : int;
  ov_shed : int;
  ov_quarantined : int;
  ov_lost : int;  (** offered - (done + shed + quarantined); must be 0 *)
  ov_p50_ms : float;
  ov_p99_ms : float;
  ov_shed_ratio : float;
  ov_shed_ids : string;  (** comma-joined, pins shed determinism in CI *)
  ov_time_s : float;
}

let overload_offered = 24

let overload_run mode admission : overload_row =
  let plan =
    match
      Server.Faults.parse
        (String.concat ","
           (List.init overload_offered (fun i ->
                Printf.sprintf "burst@job%d" (i + 1))))
    with
    | Ok p -> p
    | Error e -> failwith e
  in
  let cfg =
    {
      Server.Supervisor.default_config with
      Server.Supervisor.workers = 2;
      backoff_base_ms = 1;
      faults = plan;
      admission;
    }
  in
  let jobs =
    List.init overload_offered (fun i -> Server.Job.make ~idx:(i + 1) "wc")
  in
  let t0 = Unix.gettimeofday () in
  let results, fleet = Server.Supervisor.run_batch cfg jobs in
  let dt = Unix.gettimeofday () -. t0 in
  let count p = List.length (List.filter (fun (_, o) -> p o) results) in
  let n_done =
    count (function Server.Supervisor.Done _ -> true | _ -> false)
  in
  let n_shed =
    count (function Server.Supervisor.Shed _ -> true | _ -> false)
  in
  let n_quar =
    count (function Server.Supervisor.Quarantined _ -> true | _ -> false)
  in
  let shed_ids =
    List.filter_map
      (fun ((j : Server.Job.t), o) ->
        match o with
        | Server.Supervisor.Shed _ -> Some j.Server.Job.id
        | _ -> None)
      results
  in
  let lat = fleet.Core.Metrics.latencies_ms in
  {
    ov_mode = mode;
    ov_offered = overload_offered;
    ov_done = n_done;
    ov_shed = n_shed;
    ov_quarantined = n_quar;
    ov_lost = overload_offered - n_done - n_shed - n_quar;
    ov_p50_ms = Core.Metrics.percentile lat 50.0;
    ov_p99_ms = Core.Metrics.percentile lat 99.0;
    ov_shed_ratio =
      float_of_int n_shed /. float_of_int overload_offered;
    ov_shed_ids = String.concat "," shed_ids;
    ov_time_s = dt;
  }

let overload_rows () =
  [
    overload_run "unbounded" Server.Admission.default;
    overload_run "admission"
      {
        Server.Admission.max_pending = Some 4;
        high_watermark = 3;
        low_watermark = 1;
        brownout_ticks = 4;
        max_rung = Server.Job.max_rung;
      };
  ]

let overload () =
  header
    "Overload: 24 requests offered to a 2-worker fleet whose jobs take\n\
     ~200 ms each — admission control off vs on (queue bound 4)";
  Printf.printf "%-10s %8s %6s %6s %6s %6s %9s %9s %7s %8s\n" "mode"
    "offered" "done" "shed" "quar" "lost" "p50(ms)" "p99(ms)" "shed%"
    "time(s)";
  line ();
  List.iter
    (fun r ->
      Printf.printf "%-10s %8d %6d %6d %6d %6d %9.1f %9.1f %6.0f%% %8.2f\n"
        r.ov_mode r.ov_offered r.ov_done r.ov_shed r.ov_quarantined r.ov_lost
        r.ov_p50_ms r.ov_p99_ms
        (100. *. r.ov_shed_ratio)
        r.ov_time_s)
    (overload_rows ())

(* Same sweep as JSON lines — the CI artifact (BENCH_overload.json). *)
let overload_json () =
  List.iter
    (fun r ->
      Printf.printf
        "{\"mode\":%s,\"offered\":%d,\"done\":%d,\"shed\":%d,\
         \"quarantined\":%d,\"lost\":%d,\"latency_p50_ms\":%.1f,\
         \"latency_p99_ms\":%.1f,\"shed_ratio\":%.4f,\"shed_ids\":%s,\
         \"time_s\":%.4f}\n"
        (Core.Report.quote r.ov_mode)
        r.ov_offered r.ov_done r.ov_shed r.ov_quarantined r.ov_lost
        r.ov_p50_ms r.ov_p99_ms r.ov_shed_ratio
        (Core.Report.quote r.ov_shed_ids)
        r.ov_time_s)
    (overload_rows ())

(* ------------------------------------------------------------------ *)
(* Parallel solver: delta-par vs delta on the ext-e workload           *)
(* ------------------------------------------------------------------ *)

(* Wall-clock (not CPU) time, best of 3: the parallel engine's win is
   elapsed time — its CPU time is the same fixpoint work plus
   coordination. The returned value is from the last run (the solves
   are deterministic, so any run's result stands for all). *)
let wall_best f =
  let best = ref infinity in
  let last = ref None in
  for _ = 1 to 3 do
    let t0 = Unix.gettimeofday () in
    let v = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    last := Some v
  done;
  (Option.get !last, !best)

type par_row = {
  pp_strategy : string;
  pp_domains : int;
  pp_rounds : int;  (** parallel frontier rounds the solve executed *)
  pp_steals : int;
  pp_edges : int;
  pp_equal : bool;  (** stats-free report byte-identical to delta's *)
  pp_time_s : float;
  pp_seq_time_s : float;  (** the sequential delta baseline *)
}

let par_stats_free_json (solver : Core.Solver.t) : string =
  Core.Report.json_of_result ~timing:false ~solver_stats:false ~name:"ext-e"
    {
      Core.Analysis.solver;
      metrics = Core.Metrics.summarize solver;
      time_s = 0.;
      degraded = Core.Solver.degradations solver;
      diags = [];
    }

let par_widths = [ 1; 2; 4 ]

let par_rows () : par_row list =
  let prog = ext_e_prog () in
  List.concat_map
    (fun (module S : Core.Strategy.S) ->
      let seq, seq_dt =
        wall_best (fun () -> Core.Solver.run ~strategy:(module S) prog)
      in
      let seq_json = par_stats_free_json seq in
      List.map
        (fun nd ->
          let solver, dt =
            wall_best (fun () ->
                Core.Solver.run ~engine:(`Delta_par nd) ~strategy:(module S)
                  prog)
          in
          {
            pp_strategy = S.id;
            pp_domains = nd;
            pp_rounds = solver.Core.Solver.par_frontier_rounds;
            pp_steals = solver.Core.Solver.par_steals;
            pp_edges = Core.Graph.edge_count solver.Core.Solver.graph;
            pp_equal = par_stats_free_json solver = seq_json;
            pp_time_s = dt;
            pp_seq_time_s = seq_dt;
          })
        par_widths)
    strategies

(* Byte-identity is gated wherever the section runs; the speedup gate
   lives in CI, conditional on the runner actually having cores. *)
let par_gate rows =
  let bad = List.filter (fun r -> not r.pp_equal) rows in
  if bad <> [] then begin
    List.iter
      (fun r ->
        Printf.eprintf
          "par: %s at %d domains diverged from the sequential delta \
           fixpoint\n"
          r.pp_strategy r.pp_domains)
      bad;
    exit 1
  end

let par () =
  header
    (Printf.sprintf
       "Parallel solver: delta-par vs delta on the ext-e workload\n\
        (wall-clock best of 3; this machine recommends %d domain%s)"
       (Domain.recommended_domain_count ())
       (if Domain.recommended_domain_count () = 1 then "" else "s"));
  Printf.printf "%-18s %7s %7s %7s %8s %6s %9s %9s %8s\n" "strategy"
    "domains" "rounds" "steals" "edges" "equal" "par(s)" "delta(s)" "speedup";
  line ();
  let rows = par_rows () in
  List.iter
    (fun r ->
      Printf.printf "%-18s %7d %7d %7d %8d %6s %9.4f %9.4f %7.2fx\n"
        r.pp_strategy r.pp_domains r.pp_rounds r.pp_steals r.pp_edges
        (if r.pp_equal then "yes" else "NO!")
        r.pp_time_s r.pp_seq_time_s
        (if r.pp_time_s > 0. then r.pp_seq_time_s /. r.pp_time_s else 0.))
    rows;
  par_gate rows

(* Same sweep as JSON lines — the CI artifact (BENCH_par.json). CI
   gates equal == true on every row, and on runners with >= 4 cores a
   >= 2x speedup at 4 domains on at least one instance. *)
let par_json () =
  let rows = par_rows () in
  List.iter
    (fun r ->
      Printf.printf
        "{\"strategy\":%s,\"domains\":%d,\"cores\":%d,\
         \"frontier_rounds\":%d,\"steals\":%d,\"edges\":%d,\"equal\":%b,\
         \"time_s\":%.4f,\"seq_time_s\":%.4f,\"speedup\":%.4f}\n"
        (Core.Report.quote r.pp_strategy)
        r.pp_domains
        (Domain.recommended_domain_count ())
        r.pp_rounds r.pp_steals r.pp_edges r.pp_equal r.pp_time_s
        r.pp_seq_time_s
        (if r.pp_time_s > 0. then r.pp_seq_time_s /. r.pp_time_s else 0.))
    rows;
  par_gate rows

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per figure                 *)
(* ------------------------------------------------------------------ *)

let bechamel () =
  header "Bechamel micro-benchmarks (monotonic clock, OLS fit, ns/run)";
  let open Bechamel in
  let open Toolkit in
  let subject =
    match Suite.find "bc" with Some p -> p | None -> List.hd casting
  in
  let prog = prog_of subject in
  let solve s () = ignore (Core.Solver.run ~strategy:s prog) in
  (* one Test.make per table/figure of the paper *)
  let tests =
    [
      (* Figure 3's instrumented run is a Collapse-on-Cast solve *)
      Test.make ~name:"fig3-instrumented-coc"
        (Staged.stage (solve (module Core.Collapse_on_cast)));
      (* Figure 4/6 compare all four instances; benchmark the extremes *)
      Test.make ~name:"fig4-collapse-always"
        (Staged.stage (solve (module Core.Collapse_always)));
      Test.make ~name:"fig4-cis"
        (Staged.stage (solve (module Core.Common_init_seq)));
      (* Figure 5's denominator: the Offsets solve *)
      Test.make ~name:"fig5-offsets"
        (Staged.stage (solve (module Core.Offsets)));
      (* Figure 6's edge counting over a solved graph *)
      Test.make ~name:"fig6-metrics"
        (Staged.stage (fun () ->
             let solver =
               Core.Solver.run ~strategy:(module Core.Offsets) prog
             in
             ignore (Core.Metrics.summarize solver)));
    ]
  in
  let test = Test.make_grouped ~name:"structcast" tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) ~kde:None () in
  let raw_results = Benchmark.all cfg instances test in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  let results = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun name tbl ->
      Hashtbl.iter
        (fun test_name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
              Printf.printf "%-40s %-16s %12.0f ns/run\n" test_name name est
          | _ -> Printf.printf "%-40s %-16s %12s\n" test_name name "n/a")
        tbl)
    results

(* ------------------------------------------------------------------ *)
(* CSV export (for plotting the figures)                               *)
(* ------------------------------------------------------------------ *)

let csv () =
  header "CSV export: writing figure4.csv / figure5.csv / figure6.csv";
  let write name header_row rows =
    let oc = open_out name in
    output_string oc (header_row ^ "\n");
    List.iter (fun r -> output_string oc (r ^ "\n")) rows;
    close_out oc;
    Printf.printf "wrote %s (%d rows)\n" name (List.length rows)
  in
  let row4 p =
    let avg s =
      (result_of p s).Core.Analysis.metrics.Core.Metrics.avg_deref_size
    in
    Printf.sprintf "%s,%.4f,%.4f,%.4f,%.4f" p.Suite.name
      (avg (module Core.Collapse_always))
      (avg (module Core.Collapse_on_cast))
      (avg (module Core.Common_init_seq))
      (avg (module Core.Offsets))
  in
  write "figure4.csv" "program,collapse_always,collapse_on_cast,cis,offsets"
    (List.map row4 casting);
  let row5 p =
    let t s = time_of p s in
    Printf.sprintf "%s,%.6f,%.6f,%.6f,%.6f" p.Suite.name
      (t (module Core.Collapse_always))
      (t (module Core.Collapse_on_cast))
      (t (module Core.Common_init_seq))
      (t (module Core.Offsets))
  in
  write "figure5.csv"
    "program,collapse_always_s,collapse_on_cast_s,cis_s,offsets_s"
    (List.map row5 casting);
  let row6 p =
    let e s =
      (result_of p s).Core.Analysis.metrics.Core.Metrics.total_edges
    in
    Printf.sprintf "%s,%d,%d,%d,%d" p.Suite.name
      (e (module Core.Collapse_always))
      (e (module Core.Collapse_on_cast))
      (e (module Core.Common_init_seq))
      (e (module Core.Offsets))
  in
  write "figure6.csv" "program,collapse_always,collapse_on_cast,cis,offsets"
    (List.map row6 casting)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let sections : (string * (unit -> unit)) list =
  [
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("ext-a", ext_a);
    ("ext-b", ext_b);
    ("ext-c", ext_c);
    ("ext-d", ext_d);
    ("ext-e", ext_e);
    ("ext-e-json", ext_e_json);
    ("solver", solver);
    ("solver-json", solver_json);
    ("par", par);
    ("par-json", par_json);
    ("edit-replay", edit_replay);
    ("edit-replay-json", edit_replay_json);
    ("store", store_bench);
    ("store-json", store_bench_json);
    ("summary", summary_bench);
    ("summary-json", summary_bench_json);
    ("overload", overload);
    ("overload-json", overload_json);
    ("bechamel", bechamel);
    ("csv", csv);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst sections
  in
  (* -json sections emit a machine-readable stream on stdout; keep the
     banner out of it when only such sections were requested. *)
  let json_only =
    requested <> []
    && List.for_all
         (fun n -> Filename.check_suffix n "-json")
         requested
  in
  if not json_only then
    print_endline
      "structcast benchmark harness — reproduces the evaluation of\n\
       Yong, Horwitz & Reps, \"Pointer Analysis for Programs with\n\
       Structures and Casting\" (PLDI 1999). See EXPERIMENTS.md.";
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown section %s (have: %s)\n" name
            (String.concat ", " (List.map fst sections)))
    requested
