(** Incremental re-analysis walkthrough: solve a program once, then
    answer for edited versions from the warm fixpoint instead of
    re-solving from scratch.

    The example makes three edits against a live solver — a pure
    addition (warm start: only the new facts propagate), a removal
    (support-counting retraction: facts whose last deriving statement
    disappeared are cleared and the affected cells replayed), and a
    removal under a zero retraction budget (graceful fallback to a
    from-scratch solve, reported as a warning, never a wrong answer).
    After every edit it checks the warm fixpoint against a cold solve
    of the same program — they are always [Core.Graph.equal].

    Run with: [dune exec examples/incremental.exe] *)

open Cfront
open Norm

let base_source =
  {|
    struct node { struct node *next; int *payload; };
    struct node a, b;
    int x, y;
    int *got;
    void main(void) {
      a.next = &b;
      a.payload = &x;
      got = a.next->payload;
    }
  |}

(* the edit adds one fact source; the removal takes it away again *)
let edited_source =
  {|
    struct node { struct node *next; int *payload; };
    struct node a, b;
    int x, y;
    int *got;
    void main(void) {
      a.next = &b;
      a.payload = &x;
      got = a.next->payload;
      b.payload = &y;
    }
  |}
(* the new line goes at the end of main on purpose: the analysis is
   flow-insensitive, and appending keeps the edit purely additive
   (inserting mid-function renumbers the lowering's temporaries, which
   re-keys the statements after the insertion point) *)

let compile src = Lower.compile ~file:"incremental-example" src

let show_got (t : Core.Solver.t) =
  let q = Clients.Queries.of_solver t in
  match Clients.Queries.find_var q "got" with
  | None -> Fmt.pr "  got: (not found)@."
  | Some v ->
      Fmt.pr "  got -> {%a}@."
        (Fmt.list ~sep:(Fmt.any ", ") Core.Cell.pp)
        (Core.Cell.Set.elements (Clients.Queries.points_to_expanded q v))

let check_against_scratch (t : Core.Solver.t) =
  let scratch =
    Core.Solver.run ~strategy:t.Core.Solver.base_strategy t.Core.Solver.prog
  in
  Fmt.pr "  warm fixpoint == from-scratch solve: %b@."
    (Core.Graph.equal t.Core.Solver.graph scratch.Core.Solver.graph)

let report (st : Incr.Engine.stats) =
  Fmt.pr "  edit: +%d/-%d statements, %d facts retracted, %d warm visits%s@."
    st.Incr.Engine.stmts_added st.Incr.Engine.stmts_removed
    st.Incr.Engine.facts_retracted st.Incr.Engine.warm_visits
    (if st.Incr.Engine.fallback then " (fell back to scratch)" else "")

let () =
  (* track:true records which statement supports which fact, so later
     removals can retract instead of falling back to a cold solve *)
  let t =
    Core.Solver.run ~track:true
      ~strategy:(module Core.Common_init_seq)
      (compile base_source)
  in
  Fmt.pr "base solve (%d statement visits):@." t.Core.Solver.rounds;
  show_got t;

  Fmt.pr "@.additive edit — b.payload = &y appears:@.";
  let t, st = Incr.Engine.reanalyze t (compile edited_source) in
  report st;
  show_got t;
  check_against_scratch t;

  Fmt.pr "@.removal — the same line disappears again:@.";
  let t, st = Incr.Engine.reanalyze t (compile base_source) in
  report st;
  show_got t;
  check_against_scratch t;

  Fmt.pr "@.removal with retract-budget 0 — graceful fallback:@.";
  let t, st = Incr.Engine.reanalyze t (compile edited_source) in
  report st;
  let diags = Diag.create () in
  let t, st2 =
    Incr.Engine.reanalyze ~retract_budget:0 ~diags t (compile base_source)
  in
  ignore st;
  report st2;
  List.iter
    (fun (p : Diag.payload) -> Fmt.pr "  warning: %s@." p.Diag.message)
    (Diag.warnings diags);
  show_got t;
  check_against_scratch t
