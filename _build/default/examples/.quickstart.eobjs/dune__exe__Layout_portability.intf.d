examples/layout_portability.mli:
