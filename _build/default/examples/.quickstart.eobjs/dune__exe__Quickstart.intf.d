examples/quickstart.mli:
