examples/devirtualize.mli:
