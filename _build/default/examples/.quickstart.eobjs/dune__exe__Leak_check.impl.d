examples/leak_check.ml: Cfront Core Cvar Fmt List Nast Norm Queue Srcloc
