examples/leak_check.mli:
