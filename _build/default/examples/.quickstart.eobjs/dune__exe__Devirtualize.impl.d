examples/devirtualize.ml: Clients Core Fmt List Nast Norm String
