examples/paper_walkthrough.ml: Core Fmt List Lower Nast Norm
