examples/mod_analysis.ml: Clients Core Fmt List Nast Norm String
