examples/layout_portability.ml: Cfront Core Fmt Layout List
