examples/mod_analysis.mli:
