(** A guided walkthrough of the paper's Section 3 derivation: the
    normalized five-form program, and the inference steps that produce
    pointsTo(p, x).

    Run with: [dune exec examples/paper_walkthrough.exe] *)

open Norm

(* Section 3's normalized version of the introduction example, written
   here in ordinary C; the normalizer introduces the same temporaries the
   paper introduces by hand. *)
let source =
  {|
    struct S { int *s1; int *s2; } s;
    int x, y, *p;
    void main(void) {
      s.s1 = &x;     /* paper statements 3-5: tmp1 = &s.s1; tmp2 = &x; *tmp1 = tmp2 */
      s.s2 = &y;     /* paper statements 6-8 */
      p = s.s1;      /* paper statement 9 */
    }
  |}

let () =
  Fmt.pr "Section 3 of the paper derives pointsTo(p, x) in three steps.@.";
  Fmt.pr "Our normalizer produces the same shape mechanically:@.@.";
  let prog = Lower.compile ~file:"section3.c" source in
  (match Nast.func_by_name prog "main" with
  | Some f ->
      List.iter
        (fun (s : Nast.stmt) -> Fmt.pr "  [%d] %a@." s.Nast.id Nast.pp_stmt s)
        f.Nast.fstmts
  | None -> ());
  Fmt.pr
    "@.Rule 1 (s = &t.β) fires on the two address-of statements;@.\
     rule 5 (*p = t) transfers tmp2's fact through tmp1's target, giving@.\
     pointsTo(s.s1, x); rule 3 (s = t.β) then copies that fact into p.@.@.";
  let result =
    Core.Analysis.run_source
      ~strategy:(module Core.Common_init_seq)
      ~file:"section3.c" source
  in
  Fmt.pr "Fixpoint facts (Common Initial Sequence instance):@.@.";
  Core.Graph.pp Fmt.stdout result.Core.Analysis.solver.Core.Solver.graph;
  Fmt.pr "@.Note the final fact pointsTo(p, x) — and that s.s2's fact about@.\
          y never contaminates p, which is the whole point of@.\
          distinguishing fields (Section 1).@."
