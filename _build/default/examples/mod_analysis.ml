(** MOD analysis client: compute, per function, the set of objects that
    may be modified through pointers — the kind of "subsequent static
    analysis" whose precision the paper's introduction says depends on
    pointer analysis (cf. the modification side-effects work of Ryder et
    al. cited in Section 6).

    Run with: [dune exec examples/mod_analysis.exe] *)


open Norm

let source =
  {|
    struct buffer { char *data; int len; int cap; };
    struct stats { long writes; long grows; };

    void *malloc(unsigned long n);
    void *memcpy(void *d, void *s, unsigned long n);

    struct stats global_stats;

    void buf_init(struct buffer *b, int cap) {
      b->data = (char *)malloc((unsigned long)cap);
      b->len = 0;
      b->cap = cap;
    }

    void buf_grow(struct buffer *b) {
      char *bigger = (char *)malloc((unsigned long)(b->cap * 2));
      memcpy(bigger, b->data, (unsigned long)b->len);
      b->data = bigger;
      b->cap = b->cap * 2;
      global_stats.grows = global_stats.grows + 1;
    }

    void buf_push(struct buffer *b, char c) {
      if (b->len == b->cap)
        buf_grow(b);
      b->data[b->len] = c;
      b->len = b->len + 1;
      global_stats.writes = global_stats.writes + 1;
    }

    int observe(struct buffer *b) {
      return b->len + b->cap;
    }

    void main(void) {
      struct buffer log_buf, net_buf;
      buf_init(&log_buf, 16);
      buf_init(&net_buf, 64);
      buf_push(&log_buf, 'x');
      buf_push(&net_buf, 'y');
      observe(&log_buf);
    }
  |}

(* cells possibly modified by each function, via the client query
   library (direct writes to a function's own locals are not side
   effects) *)
let mod_sets (r : Core.Analysis.result) : (string * string list) list =
  let q = Clients.Queries.of_result r in
  List.map
    (fun (f : Nast.func) ->
      ( f.Nast.fname,
        Clients.Queries.cell_set_to_strings (Clients.Queries.mod_set q f) ))
    (Clients.Queries.prog q).Nast.pfuncs

let () =
  Fmt.pr "MOD sets (objects possibly written through pointers), per function:@.";
  List.iter
    (fun id ->
      match Core.Analysis.strategy_of_id id with
      | None -> ()
      | Some strategy ->
          let module S = (val strategy : Core.Strategy.S) in
          let r = Core.Analysis.run_source ~strategy ~file:"buf.c" source in
          Fmt.pr "@.--- %s ---@." S.name;
          List.iter
            (fun (fname, objs) ->
              Fmt.pr "  MOD(%-9s) = {%s}@." fname (String.concat ", " objs))
            (mod_sets r))
    [ "collapse-always"; "cis" ];
  Fmt.pr
    "@.A client like slicing or side-effect analysis consumes exactly these@.\
     sets; the paper's group observed that collapsing structures made such@.\
     clients markedly less precise (Section 1).@."
