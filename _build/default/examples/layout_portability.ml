(** Portability demonstration (the paper's core argument for the portable
    instances): the Offsets algorithm computes different points-to facts
    under different structure-layout strategies, while the Common Initial
    Sequence instance computes the same facts everywhere.

    Run with: [dune exec examples/layout_portability.exe] *)

open Cfront

(* The two structs have first fields of different types, so ANSI C makes
   no guarantee about the offset of the second field. ilp32 happens to
   put q and r at the same offset; lp64 does not. *)
let source =
  {|
    struct S { char tag;  int *q; } *p;
    struct T { short tag2; int *r; } t;
    int x;
    int **out;
    void main(void) {
      t.r = &x;
      p = (struct S *)&t;
      out = (int **)&((*p).q);
    }
  |}

let show strategy layout =
  let r =
    Core.Analysis.run_source ~layout ~strategy ~file:"portability.c" source
  in
  let module S = (val strategy : Core.Strategy.S) in
  let cells = Core.Analysis.pts_of_var r "out" in
  Fmt.str "{%a}" (Fmt.list ~sep:(Fmt.any ", ") Core.Cell.pp) cells

let () =
  Fmt.pr
    "What does out = &(( *(struct S *)&t).q) point to?@.\
     (t is a struct T whose second field holds &x)@.@.";
  Fmt.pr "%-10s %-28s %-28s@." "layout" "Offsets" "Common Initial Sequence";
  List.iter
    (fun layout ->
      Fmt.pr "%-10s %-28s %-28s@." layout.Layout.name
        (show (module Core.Offsets) layout)
        (show (module Core.Common_init_seq) layout))
    [ Layout.ilp32; Layout.lp64; Layout.word16 ];
  Fmt.pr
    "@.The Offsets instance changes its answer with the layout: its results@.\
     are only safe for the layout it was given (fine inside a compiler,@.\
     unsafe for a cross-platform tool). The portable instance's answer is@.\
     layout-independent, at the cost of some precision — the trade-off the@.\
     paper quantifies in Figures 4-6.@."
