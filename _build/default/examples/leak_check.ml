(** Leak-style client: which allocation sites can still be reached from
    program variables at all? A heap object no pointer chain can reach is
    definitely lost (flow-insensitively: if even the may-point-to closure
    cannot reach it, no execution can).

    Demonstrates using the points-to graph as a reachability structure —
    the basis of static leak checkers built over the paper's analysis.

    Run with: [dune exec examples/leak_check.exe] *)

open Cfront
open Norm

let source =
  {|
    void *malloc(unsigned long n);
    struct node { struct node *next; int v; };
    struct node *kept;

    void build_kept(void) {
      struct node *n = (struct node *)malloc(sizeof(struct node)); /* site 1 */
      n->next = 0;
      kept = n;
    }

    void leak_one(void) {
      struct node *tmp = (struct node *)malloc(sizeof(struct node)); /* site 2 */
      tmp->v = 42;
      /* tmp dies here; nothing keeps site 2 alive */
    }

    void chain(void) {
      struct node *a = (struct node *)malloc(sizeof(struct node)); /* site 3 */
      a->next = (struct node *)malloc(sizeof(struct node));        /* site 4 */
      kept->next = a;  /* both reachable through the global */
    }

    void main(void) {
      build_kept();
      leak_one();
      chain();
    }
  |}

let () =
  let r =
    Core.Analysis.run_source
      ~strategy:(module Core.Common_init_seq)
      ~file:"leaks.c" source
  in
  let solver = r.Core.Analysis.solver in
  let module S = (val solver.Core.Solver.strategy : Core.Strategy.S) in
  let prog = solver.Core.Solver.prog in
  (* at end of program only globals and main's own frame are live: those
     are the roots; any other function's locals are dead *)
  let heap_objects =
    List.filter
      (fun (v : Cvar.t) ->
        match v.Cvar.vkind with Cvar.Heap _ -> true | _ -> false)
      prog.Nast.pall_vars
  in
  let roots =
    List.filter
      (fun (v : Cvar.t) ->
        match v.Cvar.vkind with
        | Cvar.Global | Cvar.Strlit _ | Cvar.Funval _ -> true
        | Cvar.Local f | Cvar.Param f | Cvar.Temp f | Cvar.Ret f
        | Cvar.Vararg f ->
            f = "main"
        | Cvar.Heap _ -> false)
      prog.Nast.pall_vars
  in
  (* breadth-first closure over pointed-to base objects *)
  let reachable : unit Cvar.Tbl.t = Cvar.Tbl.create 64 in
  let queue = Queue.create () in
  let visit (v : Cvar.t) =
    if not (Cvar.Tbl.mem reachable v) then begin
      Cvar.Tbl.replace reachable v ();
      Queue.add v queue
    end
  in
  List.iter visit roots;
  while not (Queue.is_empty queue) do
    let v = Queue.take queue in
    List.iter
      (fun (cell : Core.Cell.t) ->
        Core.Cell.Set.iter
          (fun (w : Core.Cell.t) -> visit w.Core.Cell.base)
          (Core.Graph.pts solver.Core.Solver.graph cell))
      (Core.Graph.cells_of_obj solver.Core.Solver.graph v)
  done;
  Fmt.pr "Allocation sites:@.";
  List.iter
    (fun (h : Cvar.t) ->
      let alive = Cvar.Tbl.mem reachable h in
      let line =
        match h.Cvar.vkind with
        | Cvar.Heap (loc, _) -> loc.Srcloc.line
        | _ -> 0
      in
      Fmt.pr "  %-12s (line %2d): %s@." (Cvar.qualified_name h) line
        (if alive then "reachable" else "DEFINITELY LEAKED"))
    heap_objects;
  Fmt.pr
    "@.Site 2's block is unreachable in the may-points-to closure, so no@.\
     execution can still hold it: a definite leak. (The converse does not@.\
     hold — reachable sites may still leak on some paths; that needs the@.\
     flow-sensitive variant the paper sketches in Section 1.)@."
