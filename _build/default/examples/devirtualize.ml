(** Devirtualization client: use points-to results to resolve indirect
    calls in an object-style C program (a struct of function pointers, the
    pattern the paper's interprocedural machinery must handle).

    For each indirect call site the example prints the set of functions
    the call can reach under Collapse-Always vs. Common-Initial-Sequence —
    showing how field sensitivity shrinks the candidate sets a compiler
    would have to consider.

    Run with: [dune exec examples/devirtualize.exe] *)

open Norm

let source =
  {|
    /* a tiny "class hierarchy" with vtables of function pointers */
    int printf(char *fmt, ...);

    struct shape_ops {
      long (*area)(long w, long h);
      long (*perimeter)(long w, long h);
      char *(*name)(void);
    };

    long rect_area(long w, long h) { return w * h; }
    long rect_perimeter(long w, long h) { return 2 * (w + h); }
    char *rect_name(void) { return "rect"; }

    long tri_area(long w, long h) { return w * h / 2; }
    long tri_perimeter(long w, long h) { return 3 * w; }
    char *tri_name(void) { return "tri"; }

    struct shape_ops rect_ops = { rect_area, rect_perimeter, rect_name };
    struct shape_ops tri_ops = { tri_area, tri_perimeter, tri_name };

    struct shape {
      struct shape_ops *ops;
      long w, h;
    };

    long describe(struct shape *s) {
      printf("%s\n", (*s->ops->name)());
      return (*s->ops->area)(s->w, s->h);
    }

    long total;

    void main(void) {
      struct shape r, t;
      r.ops = &rect_ops;
      r.w = 3; r.h = 4;
      t.ops = &tri_ops;
      t.w = 5; t.h = 6;
      total = describe(&r) + describe(&t);
    }
  |}

(* all indirect call sites with their candidate callees, via the client
   query library *)
let indirect_calls (r : Core.Analysis.result) : (string * string list) list =
  let q = Clients.Queries.of_result r in
  let prog = Clients.Queries.prog q in
  List.concat_map
    (fun (f : Nast.func) ->
      List.filter_map
        (fun (s : Nast.stmt) ->
          match s.Nast.kind with
          | Nast.Call ({ Nast.cfn = Nast.Indirect _; _ } as call) ->
              let callees =
                Clients.Queries.callees_of q call
                |> List.map Clients.Queries.callee_name
                |> List.sort_uniq compare
              in
              Some (f.Nast.fname, callees)
          | _ -> None)
        f.Nast.fstmts)
    prog.Nast.pfuncs

let () =
  Fmt.pr "Indirect-call resolution on a vtable-style program:@.@.";
  List.iter
    (fun id ->
      match Core.Analysis.strategy_of_id id with
      | None -> ()
      | Some strategy ->
          let r =
            Core.Analysis.run_source ~strategy ~file:"shapes.c" source
          in
          let module S = (val strategy : Core.Strategy.S) in
          Fmt.pr "--- %s ---@." S.name;
          List.iter
            (fun (caller, callees) ->
              Fmt.pr "  in %-10s (*...)() may call: %s@." caller
                (String.concat ", " callees))
            (indirect_calls r);
          Fmt.pr "@.")
    [ "collapse-always"; "cis" ];
  Fmt.pr
    "Collapse-Always merges the whole ops structure, so every slot reaches@.\
     every function stored in any slot; the field-sensitive instance keeps@.\
     area / perimeter / name slots apart.@."
