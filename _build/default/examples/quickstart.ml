(** Quickstart: analyze the paper's motivating example with every
    framework instance and print the points-to set of [p].

    Run with: [dune exec examples/quickstart.exe] *)

let source =
  {|
    struct S { int *s1; int *s2; } s;
    int x, y, *p;
    void main(void) {
      s.s1 = &x;
      s.s2 = &y;
      p = s.s1;
    }
  |}

let () =
  Fmt.pr "The paper's introduction example:@.%s@." source;
  List.iter
    (fun (module S : Core.Strategy.S) ->
      (* one call: preprocess, parse, type-check, normalize, solve *)
      let result =
        Core.Analysis.run_source ~strategy:(module S) ~file:"intro.c" source
      in
      let targets = Core.Analysis.pts_of_var result "p" in
      Fmt.pr "%-25s p -> {%a}@." S.name
        (Fmt.list ~sep:(Fmt.any ", ") Core.Cell.pp)
        targets)
    Core.Analysis.strategies;
  Fmt.pr
    "@.Collapse Always cannot tell s.s1 from s.s2, so it reports p -> {x,y};@.\
     every field-sensitive instance reports the precise answer p -> {x}.@."
