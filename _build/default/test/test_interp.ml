(** Unit tests for the concrete interpreter's byte-level memory model —
    the machinery behind the soundness oracle. *)

open Cfront
open Norm

let layout = Layout.default

let var name ty = Cvar.fresh ~name ~ty ~kind:Cvar.Global

let test_write_read_pointer () =
  let m = Interp.Memory.create ~layout in
  let p = var "p" (Ctype.Ptr Ctype.int_t) in
  let x = var "x" Ctype.int_t in
  Interp.Memory.write_ptr m p 0 { Interp.Memory.aobj = x; aoff = 0 };
  match Interp.Memory.read_ptr m p 0 with
  | Some { Interp.Memory.aobj; aoff } ->
      Alcotest.(check bool) "target object" true (Cvar.equal aobj x);
      Alcotest.(check int) "target offset" 0 aoff
  | None -> Alcotest.fail "pointer lost"

let test_partial_overwrite_destroys () =
  let m = Interp.Memory.create ~layout in
  let d = var "d" Ctype.double_t in
  let x = var "x" Ctype.int_t in
  Interp.Memory.write_ptr m d 0 { Interp.Memory.aobj = x; aoff = 0 };
  (* clobber one byte in the middle of the pointer *)
  Interp.Memory.write_raw m d 2 1;
  Alcotest.(check bool) "pointer destroyed" true
    (Interp.Memory.read_ptr m d 0 = None)

let test_byte_copy_moves_pointer () =
  let m = Interp.Memory.create ~layout in
  let a = var "a" Ctype.double_t and b = var "b" Ctype.double_t in
  let x = var "x" Ctype.int_t in
  Interp.Memory.write_ptr m a 2 { Interp.Memory.aobj = x; aoff = 0 };
  Interp.Memory.copy_bytes m ~src:a ~src_off:0 ~dst:b ~dst_off:0 ~len:8;
  (* the pointer re-forms at the same interior offset of b *)
  match Interp.Memory.read_ptr m b 2 with
  | Some { Interp.Memory.aobj; _ } ->
      Alcotest.(check bool) "copied pointer" true (Cvar.equal aobj x)
  | None -> Alcotest.fail "byte copy lost the pointer"

let test_misaligned_splice_unreadable () =
  let m = Interp.Memory.create ~layout in
  let a = var "a" Ctype.double_t and b = var "b" Ctype.double_t in
  let x = var "x" Ctype.int_t in
  Interp.Memory.write_ptr m a 0 { Interp.Memory.aobj = x; aoff = 0 };
  (* shift by one byte: Complication 3's splicing *)
  Interp.Memory.copy_bytes m ~src:a ~src_off:0 ~dst:b ~dst_off:1 ~len:4;
  Alcotest.(check bool) "no pointer at 0" true (Interp.Memory.read_ptr m b 0 = None);
  (* at offset 1 the bytes are consecutive and complete: readable *)
  Alcotest.(check bool) "pointer at 1" true (Interp.Memory.read_ptr m b 1 <> None)

let test_out_of_bounds_clamped () =
  let m = Interp.Memory.create ~layout in
  let c = var "c" Ctype.char_t in
  let x = var "x" Ctype.int_t in
  (* a 4-byte pointer cannot fit in a 1-byte block: silently truncated *)
  Interp.Memory.write_ptr m c 0 { Interp.Memory.aobj = x; aoff = 0 };
  Alcotest.(check bool) "unreadable" true (Interp.Memory.read_ptr m c 0 = None)

let test_all_pointers_scan () =
  let m = Interp.Memory.create ~layout in
  let s =
    let c = Ctype.fresh_comp ~tag:"S2" ~is_union:false in
    c.Ctype.cfields <-
      Some
        [
          { Ctype.fname = "p"; fty = Ctype.Ptr Ctype.int_t; fbits = None };
          { Ctype.fname = "q"; fty = Ctype.Ptr Ctype.int_t; fbits = None };
        ];
    var "s" (Ctype.Comp c)
  in
  let x = var "x" Ctype.int_t in
  Interp.Memory.write_ptr m s 0 { Interp.Memory.aobj = x; aoff = 0 };
  Interp.Memory.write_ptr m s 4 { Interp.Memory.aobj = x; aoff = 0 };
  Alcotest.(check int) "two pointers found" 2
    (List.length (Interp.Memory.all_pointers m))

(* end-to-end: executing a lowered program reproduces Complication 3's
   splice-and-recover behaviour concretely *)
let test_execution_complication2 () =
  let prog =
    Lower.compile ~file:"<interp>"
      {|
        struct R { int *r1; int *r2; } r, r2;
        double d;
        int x, y;
        void main(void) {
          r.r1 = &x;
          r.r2 = &y;
          d = *(double *)&r;
          r2 = *(struct R *)&d;
        }
      |}
  in
  let obs = Interp.Eval.run prog in
  (* the final state must contain r2.r1 -> x and r2.r2 -> y *)
  let holds name off target =
    Interp.Eval.Obs.exists
      (fun o ->
        let obj, ooff = o.Interp.Eval.holder in
        Cvar.qualified_name obj = name
        && ooff = off
        && Cvar.qualified_name o.Interp.Eval.target.Interp.Memory.aobj
           = target)
      obs
  in
  Alcotest.(check bool) "r2.r1 -> x" true (holds "r2" 0 "x");
  Alcotest.(check bool) "r2.r2 -> y" true (holds "r2" 4 "y")

let test_call_depth_bounded () =
  (* infinite recursion must terminate via the depth bound *)
  let prog =
    Lower.compile ~file:"<interp>"
      {|
        int x;
        int *loop(int *p) { return loop(p); }
        int *r;
        void main(void) { r = loop(&x); }
      |}
  in
  let _ = Interp.Eval.run ~max_call_depth:5 prog in
  ()

let suite =
  [
    Helpers.tc "write/read a pointer" test_write_read_pointer;
    Helpers.tc "partial overwrite destroys pointers" test_partial_overwrite_destroys;
    Helpers.tc "byte copies move pointers" test_byte_copy_moves_pointer;
    Helpers.tc "misaligned splices are unreadable" test_misaligned_splice_unreadable;
    Helpers.tc "out-of-bounds writes clamp" test_out_of_bounds_clamped;
    Helpers.tc "memory scan finds all pointers" test_all_pointers_scan;
    Helpers.tc "complication 2 reproduces concretely" test_execution_complication2;
    Helpers.tc "recursion bounded" test_call_depth_bounded;
  ]
