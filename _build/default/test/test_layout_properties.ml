(** Property-based tests of the layout engine over randomly generated
    types (reusing the generator from the strategy properties):

    - field offsets respect alignment and ordering, and leaves fit inside
      the object;
    - [offset_of_path] agrees with [leaf_offsets];
    - [canon_offset] is idempotent and bounded;
    - sizes are consistent across nesting. *)

open Cfront

let gen = Test_strategy_properties.gen_struct_and_leaf

let layouts = [ Layout.ilp32; Layout.lp64; Layout.word16 ]

let prop_leaves_fit (ty, _) =
  List.for_all
    (fun cfg ->
      let size = Layout.size_of cfg ty in
      List.for_all
        (fun (_, off, lty) ->
          let s = max 1 (Layout.size_of cfg lty) in
          (off >= 0 && off + s <= size)
          || QCheck2.Test.fail_reportf
               "%s: leaf at %d+%d outside size %d of %s" cfg.Layout.name off
               s size (Ctype.to_string ty))
        (Layout.leaf_offsets cfg ty))
    layouts

let prop_offsets_aligned (ty, _) =
  List.for_all
    (fun cfg ->
      List.for_all
        (fun (_, off, lty) ->
          let a = Layout.align_of cfg lty in
          off mod a = 0
          || QCheck2.Test.fail_reportf "%s: offset %d not %d-aligned"
               cfg.Layout.name off a)
        (Layout.leaf_offsets cfg ty))
    layouts

let prop_leaf_offsets_sorted (ty, _) =
  List.for_all
    (fun cfg ->
      let offs = List.map (fun (_, o, _) -> o) (Layout.leaf_offsets cfg ty) in
      List.sort compare offs = offs)
    layouts

let prop_offset_of_path_agrees (ty, leaf) =
  (* offset_of_path on a through-union leaf equals the leaf_offsets entry *)
  List.for_all
    (fun cfg ->
      let entries = Layout.leaf_offsets cfg ty in
      match List.find_opt (fun (p, _, _) -> p = leaf) entries with
      | None -> true (* the chosen leaf cuts at a union for path purposes *)
      | Some (_, off, _) ->
          Layout.offset_of_path cfg ty leaf = off
          || QCheck2.Test.fail_reportf "%s: offset_of_path disagrees"
               cfg.Layout.name)
    layouts

let prop_canon_idempotent_and_bounded (ty, _) =
  List.for_all
    (fun cfg ->
      let size = Layout.size_of cfg ty in
      List.for_all
        (fun off ->
          let c1 = Layout.canon_offset cfg ty off in
          let c2 = Layout.canon_offset cfg ty c1 in
          (c1 = c2 && c1 <= max off 0)
          || QCheck2.Test.fail_reportf
               "%s: canon %d -> %d -> %d (size %d) in %s" cfg.Layout.name off
               c1 c2 size (Ctype.to_string ty))
        (List.init (min size 48) (fun i -> i)))
    layouts

let prop_array_size_multiplies (ty, _) =
  List.for_all
    (fun cfg ->
      let s = Layout.size_of cfg ty in
      Layout.size_of cfg (Ctype.Array (ty, Some 5)) = 5 * s)
    layouts

let t name prop = QCheck2.Test.make ~name ~count:150 gen prop

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      t "leaves fit inside the object" prop_leaves_fit;
      t "leaf offsets are aligned" prop_offsets_aligned;
      t "leaf offsets are sorted" prop_leaf_offsets_sorted;
      t "offset_of_path agrees with leaf_offsets" prop_offset_of_path_agrees;
      t "canon_offset is idempotent and bounded"
        prop_canon_idempotent_and_bounded;
      t "array sizes multiply" prop_array_size_multiplies;
    ]
