(** Unit tests for the recursive-descent C parser: declarators, types,
    expressions (via the AST pretty-printer as a golden form), statements,
    and error reporting. *)

open Cfront

let parse src : Ast.tunit = Parser.parse_string ~file:"<parse>" src

let first_global src : Ast.global =
  match (parse src).Ast.globals with
  | g :: _ -> g
  | [] -> Alcotest.fail "no globals parsed"

let decl_type src : Ctype.t =
  match first_global src with
  | Ast.Gvar d -> d.Ast.dty
  | Ast.Gproto (_, t, _) -> t
  | Ast.Gfun f -> Ctype.Func f.Ast.fty

let check_type name src expected_str =
  Alcotest.(check string) name expected_str (Ctype.to_string (decl_type src))

let test_declarators () =
  check_type "plain" "int x;" "int";
  check_type "pointer" "int *p;" "int*";
  check_type "ptr-to-ptr" "char **pp;" "char**";
  check_type "array" "int a[10];" "int[10]";
  check_type "array of pointers" "int *a[3];" "int*[3]";
  check_type "pointer to array" "int (*pa)[3];" "int[3]*";
  check_type "2d array" "int m[2][3];" "int[3][2]";
  check_type "function" "int f(int a, char *b);" "int(int, char*)";
  check_type "function pointer" "int (*fp)(int);" "int(int)*";
  check_type "fn returning ptr" "char *g(void);" "char*()";
  check_type "ptr to fn returning ptr" "char *(*h)(int);" "char*(int)*";
  check_type "varargs" "int printf(char *fmt, ...);" "int(char*, ...)";
  check_type "K&R empty parens" "int old();" "int(, ...)"

let test_type_specifiers () =
  check_type "unsigned" "unsigned x;" "unsigned int";
  check_type "unsigned char" "unsigned char c;" "unsigned char";
  check_type "long" "long l;" "long";
  check_type "long int" "long int l;" "long";
  check_type "unsigned long" "unsigned long ul;" "unsigned long";
  check_type "long long" "long long ll;" "long long";
  check_type "long double" "long double ld;" "long double";
  check_type "signedness order" "int unsigned x;" "unsigned int"

let test_typedef () =
  check_type "simple typedef" "typedef int word; word w;" "int";
  check_type "typedef pointer" "typedef char *str; str s;" "char*";
  check_type "typedef of struct" "typedef struct T { int a; } tt; tt v;"
    "struct T";
  check_type "typedef in declarator" "typedef int num; num *p[2];" "int*[2]"

let test_typedef_shadowing () =
  (* an ordinary declaration shadows a typedef name in inner scopes *)
  let tu =
    parse
      {|
        typedef int T;
        void f(void) {
          int T;
          T = 3;
        }
      |}
  in
  match tu.Ast.globals with
  | [ Ast.Gfun _ ] -> ()
  | _ -> Alcotest.fail "shadowed typedef failed to parse"

let test_struct_parsing () =
  let tu =
    parse "struct S { int a; struct S *next; }; struct S head;"
  in
  match tu.Ast.globals with
  | [ Ast.Gvar d ] -> (
      match d.Ast.dty with
      | Ctype.Comp c ->
          Alcotest.(check string) "tag" "S" c.Ctype.ctag;
          Alcotest.(check int) "fields" 2
            (List.length (Option.get c.Ctype.cfields))
      | _ -> Alcotest.fail "not a struct")
  | _ -> Alcotest.fail "unexpected globals"

let test_anonymous_struct () =
  match decl_type "struct { int x; } v;" with
  | Ctype.Comp c -> Alcotest.(check bool) "anon tag" true
      (String.length c.Ctype.ctag > 0)
  | _ -> Alcotest.fail "not a struct"

let test_enum () =
  let tu = parse "enum color { RED, GREEN = 5, BLUE }; int x[BLUE];" in
  match tu.Ast.globals with
  | [ Ast.Gvar d ] -> (
      (* BLUE = 6 folded into the array size *)
      match d.Ast.dty with
      | Ctype.Array (_, Some 6) -> ()
      | t -> Alcotest.failf "array size not folded: %s" (Ctype.to_string t))
  | _ -> Alcotest.fail "unexpected globals"

let test_bitfields () =
  match decl_type "struct B { int flags : 3; int rest : 5; } b;" with
  | Ctype.Comp c ->
      let fs = Option.get c.Ctype.cfields in
      Alcotest.(check (list (option int)))
        "widths" [ Some 3; Some 5 ]
        (List.map (fun f -> f.Ctype.fbits) fs)
  | _ -> Alcotest.fail "not a struct"

(* expression golden tests via the AST printer *)
let expr_of src : string =
  let tu = parse (Printf.sprintf "void f(int a, int b, int c) { %s; }" src) in
  match tu.Ast.globals with
  | [ Ast.Gfun { Ast.fbody = [ { Ast.s = Ast.Sexpr e; _ } ]; _ } ] ->
      Ast.expr_to_string e
  | _ -> Alcotest.fail "expected one expression statement"

let check_expr name src expected =
  Alcotest.(check string) name expected (expr_of src)

let test_precedence () =
  check_expr "mul before add" "a + b * c" "(a + (b * c))";
  check_expr "left assoc" "a - b - c" "((a - b) - c)";
  check_expr "shift vs compare" "a << b < c" "((a << b) < c)";
  check_expr "and before or" "a || b && c" "(a || (b && c))";
  check_expr "bitand between" "a == b & c" "((a == b) & c)";
  check_expr "assign right assoc" "a = b = c" "(a = (b = c))";
  check_expr "ternary" "a ? b : c ? a : b" "(a ? b : (c ? a : b))";
  check_expr "unary binds tight" "-a * b" "((-a) * b)";
  check_expr "postfix tighter than unary" "-a[b]" "(-a[b])";
  check_expr "comma" "a = b, c" "((a = b), c)"

let test_cast_vs_paren () =
  (* '(' typedef-name ')' is a cast; '(' expr ')' is grouping *)
  let tu =
    parse
      {|
        typedef int T;
        void f(int a) {
          a = (T)a;
          a = (a) + 1;
        }
      |}
  in
  match tu.Ast.globals with
  | [ Ast.Gfun { Ast.fbody = [ s1; s2 ]; _ } ] -> (
      (match s1.Ast.s with
      | Ast.Sexpr { Ast.e = Ast.Eassign (None, _, { Ast.e = Ast.Ecast _; _ }); _ } ->
          ()
      | _ -> Alcotest.fail "expected a cast");
      match s2.Ast.s with
      | Ast.Sexpr { Ast.e = Ast.Eassign (None, _, { Ast.e = Ast.Ebinary _; _ }); _ }
        ->
          ()
      | _ -> Alcotest.fail "expected grouped addition")
  | _ -> Alcotest.fail "unexpected shape"

let test_sizeof () =
  check_expr "sizeof expr" "a = sizeof a" "(a = sizeof(a))";
  let tu = parse "void f(void) { int n; n = sizeof(struct S { int a; int b; }); }" in
  ignore tu;
  (* sizeof(type) with a known type folds in constant contexts *)
  match decl_type "char buf[sizeof(int)];" with
  | Ctype.Array (_, Some 4) -> ()
  | t -> Alcotest.failf "sizeof not folded: %s" (Ctype.to_string t)

let test_statements_parse () =
  let src =
    {|
      int g;
      void f(int n) {
        int i;
        for (i = 0; i < n; i++) g = g + i;
        while (n > 0) { n = n - 1; continue; }
        do { n++; } while (n < 3);
        switch (n) {
        case 1: g = 1; break;
        case 2:
        default: g = 0;
        }
        if (n) g = 2; else g = 3;
        goto done;
        done: ;
        return;
      }
    |}
  in
  match (parse src).Ast.globals with
  | [ Ast.Gvar _; Ast.Gfun f ] ->
      Alcotest.(check bool) "body nonempty" true (List.length f.Ast.fbody > 5)
  | _ -> Alcotest.fail "unexpected parse"

let test_initializers () =
  let tu =
    parse
      {|
        int x = 5;
        int a[3] = { 1, 2, 3 };
        struct P { int u; int v; } p = { 7, 8 };
        struct Q { struct P inner; int w; } q = { { 1, 2 }, 3 };
        char msg[] = "hi";
      |}
  in
  Alcotest.(check int) "globals" 5 (List.length tu.Ast.globals)

let test_multi_declarators () =
  let tu = parse "int a, *b, c[2];" in
  let tys =
    List.filter_map
      (function Ast.Gvar d -> Some (Ctype.to_string d.Ast.dty) | _ -> None)
      tu.Ast.globals
  in
  Alcotest.(check (list string)) "each declarator" [ "int"; "int*"; "int[2]" ] tys

let expect_error name src =
  match parse src with
  | exception Diag.Error _ -> ()
  | _ -> Alcotest.failf "%s: expected a parse error" name

let test_errors () =
  expect_error "missing semicolon" "int x int y;";
  expect_error "unclosed brace" "void f(void) { int x;";
  expect_error "bad field access" "void f(void) { 1 .; }";
  expect_error "struct redefinition" "struct S { int a; }; struct S { int b; };";
  expect_error "array of functions" "int f[3](void);";
  expect_error "keyword as name" "int while;"

let suite =
  [
    Helpers.tc "declarators" test_declarators;
    Helpers.tc "type specifiers" test_type_specifiers;
    Helpers.tc "typedefs" test_typedef;
    Helpers.tc "typedef shadowing" test_typedef_shadowing;
    Helpers.tc "struct declarations" test_struct_parsing;
    Helpers.tc "anonymous structs" test_anonymous_struct;
    Helpers.tc "enums fold to constants" test_enum;
    Helpers.tc "bit-fields" test_bitfields;
    Helpers.tc "operator precedence" test_precedence;
    Helpers.tc "cast vs parenthesis" test_cast_vs_paren;
    Helpers.tc "sizeof" test_sizeof;
    Helpers.tc "statements" test_statements_parse;
    Helpers.tc "initializers" test_initializers;
    Helpers.tc "multiple declarators" test_multi_declarators;
    Helpers.tc "parse errors" test_errors;
  ]
