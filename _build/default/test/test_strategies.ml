(** Direct unit tests of the strategy functions — [normalize], [lookup],
    [resolve], [all_cells] — called in isolation, without the solver. *)

open Cfront
open Core

let ctx = Actx.create ()

let comp ?(union = false) tag fields =
  let c = Ctype.fresh_comp ~tag ~is_union:union in
  c.Ctype.cfields <-
    Some
      (List.map
         (fun (fname, fty) -> { Ctype.fname; fty; fbits = None })
         fields);
  Ctype.Comp c

(* struct S { int *s1; int s2; char *s3; }  /  struct T { int *t1; int *t2; char *t3; } *)
let s_ty =
  comp "S"
    [ ("s1", Ctype.Ptr Ctype.int_t); ("s2", Ctype.int_t);
      ("s3", Ctype.Ptr Ctype.char_t) ]

let t_ty =
  comp "T"
    [ ("t1", Ctype.Ptr Ctype.int_t); ("t2", Ctype.Ptr Ctype.int_t);
      ("t3", Ctype.Ptr Ctype.char_t) ]

let t_var = Cvar.fresh ~name:"t" ~ty:t_ty ~kind:Cvar.Global

let s_var = Cvar.fresh ~name:"s" ~ty:s_ty ~kind:Cvar.Global

let cells_to_strings = List.map Cell.to_string

let sorted = List.sort compare

(* -------------------- normalize -------------------- *)

let test_normalize () =
  (* path strategies descend into the innermost first field *)
  let n_cis = Common_init_seq.normalize ctx t_var [] in
  Alcotest.(check string) "cis whole object" "t.t1" (Cell.to_string n_cis);
  let n_coc = Collapse_on_cast.normalize ctx t_var [ "t2" ] in
  Alcotest.(check string) "coc field" "t.t2" (Cell.to_string n_coc);
  (* collapse-always ignores the path *)
  let n_ca = Collapse_always.normalize ctx t_var [ "t2" ] in
  Alcotest.(check string) "ca collapses" "t" (Cell.to_string n_ca);
  (* offsets maps to byte offsets *)
  let n_off = Offsets.normalize ctx t_var [ "t2" ] in
  Alcotest.(check string) "offset" "t@4" (Cell.to_string n_off)

let test_normalize_nested_first () =
  let inner = comp "I" [ ("a", Ctype.int_t) ] in
  let outer = comp "O" [ ("i", inner); ("z", Ctype.int_t) ] in
  let v = Cvar.fresh ~name:"o" ~ty:outer ~kind:Cvar.Global in
  Alcotest.(check string) "recursive descent" "o.i.a"
    (Cell.to_string (Common_init_seq.normalize ctx v []))

(* -------------------- lookup -------------------- *)

let test_lookup_matched_type () =
  (* dereferencing at the correct type is exact in every instance *)
  let target = Common_init_seq.normalize ctx t_var [] in
  let got = Common_init_seq.lookup ctx t_ty [ "t2" ] target in
  Alcotest.(check (list string)) "cis exact" [ "t.t2" ] (cells_to_strings got);
  let got = Collapse_on_cast.lookup ctx t_ty [ "t2" ] target in
  Alcotest.(check (list string)) "coc exact" [ "t.t2" ] (cells_to_strings got)

let test_lookup_mismatch () =
  let target = Common_init_seq.normalize ctx t_var [] in
  (* S's s1/t1 and s2/t2… CIS(S,T) = {(s1,t1)} since int vs int* breaks;
     looking up s3 therefore collapses to everything after t1 *)
  let got = Common_init_seq.lookup ctx s_ty [ "s3" ] target in
  Alcotest.(check (list string)) "cis conservative" [ "t.t2"; "t.t3" ]
    (sorted (cells_to_strings got));
  (* collapse-on-cast has no CIS refinement: everything from t1 on *)
  let got = Collapse_on_cast.lookup ctx s_ty [ "s3" ] target in
  Alcotest.(check (list string)) "coc conservative"
    [ "t.t1"; "t.t2"; "t.t3" ]
    (sorted (cells_to_strings got));
  (* offsets: exact byte computation, offsetof(S,s3)=8 = t3's offset *)
  let got = Offsets.lookup ctx s_ty [ "s3" ] (Offsets.normalize ctx t_var []) in
  Alcotest.(check (list string)) "offsets exact" [ "t@8" ]
    (cells_to_strings got)

let test_lookup_cis_pair () =
  (* s1 is inside the common initial sequence: exact correspondence *)
  let target = Common_init_seq.normalize ctx t_var [] in
  let got = Common_init_seq.lookup ctx s_ty [ "s1" ] target in
  Alcotest.(check (list string)) "cis pair" [ "t.t1" ] (cells_to_strings got)

(* -------------------- resolve -------------------- *)

let test_resolve_same_type () =
  let g = Graph.create () in
  let dst = Common_init_seq.normalize ctx s_var [] in
  let src =
    let s2 = Cvar.fresh ~name:"s2" ~ty:s_ty ~kind:Cvar.Global in
    Common_init_seq.normalize ctx s2 []
  in
  let pairs = Common_init_seq.resolve ctx g dst src s_ty in
  (* field-for-field: three pairs *)
  Alcotest.(check int) "three pairs" 3 (List.length pairs);
  List.iter
    (fun ((d : Cell.t), (s : Cell.t)) ->
      match (d.Cell.sel, s.Cell.sel) with
      | Cell.Path pd, Cell.Path ps ->
          Alcotest.(check (list string)) "same field" pd ps
      | _ -> Alcotest.fail "unexpected selector")
    pairs

let test_resolve_mismatch_cross_product () =
  let g = Graph.create () in
  let dst = Collapse_on_cast.normalize ctx s_var [] in
  let src = Collapse_on_cast.normalize ctx t_var [] in
  (* copying T bytes over S at type S: on-cast collapses both sides *)
  let pairs = Collapse_on_cast.resolve ctx g dst src s_ty in
  Alcotest.(check bool) "cross product is large" true (List.length pairs >= 9)

let test_resolve_offsets_uses_graph () =
  let g = Graph.create () in
  let x = Cvar.fresh ~name:"x" ~ty:Ctype.int_t ~kind:Cvar.Global in
  (* only source offsets carrying facts are paired *)
  ignore (Graph.add_edge g (Cell.v t_var (Cell.Off 4)) (Cell.v x (Cell.Off 0)));
  let dst = Offsets.normalize ctx s_var [] in
  let src = Offsets.normalize ctx t_var [] in
  let pairs = Offsets.resolve ctx g dst src s_ty in
  match pairs with
  | [ (d, s) ] ->
      Alcotest.(check string) "dst offset follows" "s@4" (Cell.to_string d);
      Alcotest.(check string) "src cell" "t@4" (Cell.to_string s)
  | _ -> Alcotest.failf "expected one pair, got %d" (List.length pairs)

let test_resolve_respects_copy_size () =
  let g = Graph.create () in
  let x = Cvar.fresh ~name:"x" ~ty:Ctype.int_t ~kind:Cvar.Global in
  (* a fact beyond sizeof(small) must not transfer *)
  ignore (Graph.add_edge g (Cell.v t_var (Cell.Off 8)) (Cell.v x (Cell.Off 0)));
  let small = comp "Small" [ ("only", Ctype.Ptr Ctype.int_t) ] in
  let pairs =
    Offsets.resolve ctx g (Offsets.normalize ctx s_var [])
      (Offsets.normalize ctx t_var [])
      small
  in
  Alcotest.(check int) "nothing in range" 0 (List.length pairs)

(* -------------------- all_cells -------------------- *)

let test_all_cells () =
  Alcotest.(check (list string)) "cis cells" [ "t.t1"; "t.t2"; "t.t3" ]
    (sorted (cells_to_strings (Common_init_seq.all_cells ctx t_var)));
  Alcotest.(check (list string)) "ca cells" [ "t" ]
    (cells_to_strings (Collapse_always.all_cells ctx t_var));
  Alcotest.(check (list string)) "offset cells" [ "t@0"; "t@4"; "t@8" ]
    (sorted (cells_to_strings (Offsets.all_cells ctx t_var)))

(* -------------------- instrumentation -------------------- *)

let test_counters () =
  let c = Actx.create () in
  let target = Common_init_seq.normalize c t_var [] in
  ignore (Common_init_seq.lookup c t_ty [ "t2" ] target);
  ignore (Common_init_seq.lookup c s_ty [ "s3" ] target);
  Alcotest.(check int) "lookup calls" 2 c.Actx.lookup_calls;
  Alcotest.(check int) "struct involving" 2 c.Actx.lookup_struct;
  Alcotest.(check int) "one mismatch" 1 c.Actx.lookup_mismatch;
  (* lookups made inside resolve are not counted (footnote 7) *)
  let g = Graph.create () in
  ignore (Common_init_seq.resolve c g target target t_ty);
  Alcotest.(check int) "lookup count unchanged" 2 c.Actx.lookup_calls;
  Alcotest.(check int) "resolve counted" 1 c.Actx.resolve_calls

let suite =
  [
    Helpers.tc "normalize" test_normalize;
    Helpers.tc "normalize: nested first fields" test_normalize_nested_first;
    Helpers.tc "lookup at the declared type" test_lookup_matched_type;
    Helpers.tc "lookup at a mismatched type" test_lookup_mismatch;
    Helpers.tc "lookup through a CIS pair" test_lookup_cis_pair;
    Helpers.tc "resolve same types" test_resolve_same_type;
    Helpers.tc "resolve mismatch cross-product" test_resolve_mismatch_cross_product;
    Helpers.tc "resolve (offsets) reads the graph" test_resolve_offsets_uses_graph;
    Helpers.tc "resolve honours the copy size" test_resolve_respects_copy_size;
    Helpers.tc "all_cells" test_all_cells;
    Helpers.tc "instrumentation counters" test_counters;
  ]
