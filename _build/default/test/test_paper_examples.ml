(** End-to-end tests reproducing every worked example in the paper. Each
    test cites the paper section it comes from. *)

open Helpers

(* Section 1 / Section 3: the motivating example. An analysis that
   distinguishes fields infers p -> {x}; collapsing infers p -> {x, y}. *)
let intro_src =
  {|
    struct S { int *s1; int *s2; } s;
    int x, y, *p;
    void main(void) {
      s.s1 = &x;
      s.s2 = &y;
      p = s.s1;
    }
  |}

let test_intro_field_sensitive () =
  List.iter
    (fun id ->
      let r = analyze ~strategy:(strategy id) intro_src in
      check_bases r "p" [ "x" ])
    [ "collapse-on-cast"; "cis"; "offsets" ]

let test_intro_collapse_always () =
  let r = analyze ~strategy:(strategy "collapse-always") intro_src in
  check_bases r "p" [ "x"; "y" ]

(* Section 4.1, Problem 1: a pointer to a structure also points to its
   first field. After storing q through p at type pointer-to-pointer,
   s.s1 points to x, so r = s.s1 must point to x. *)
let problem1_src =
  {|
    struct S { int *s1; } s, *p;
    int x, *q, *r;
    void main(void) {
      p = &s;
      q = &x;
      *(int **)p = q;
      r = s.s1;
    }
  |}

let test_problem1 () =
  List.iter
    (fun id ->
      let r = analyze ~strategy:(strategy id) problem1_src in
      check_bases r "r" [ "x" ])
    [ "collapse-always"; "collapse-on-cast"; "cis"; "offsets" ]

(* The reverse direction of Problem 1: a pointer to the struct, used at
   the type of its first field. *)
let problem1_reverse_src =
  {|
    struct S { int *s1; } s;
    int x;
    int **p;
    int *r;
    void main(void) {
      s.s1 = &x;
      p = (int **)&s;
      r = *p;
    }
  |}

let test_problem1_reverse () =
  List.iter
    (fun id ->
      let r = analyze ~strategy:(strategy id) problem1_reverse_src in
      check_bases r "r" [ "x" ])
    [ "collapse-always"; "collapse-on-cast"; "cis"; "offsets" ]

(* Section 4.1, Problem 2: dereferencing at the wrong type. p is declared
   struct S* but points to t (a struct T). The second fields of S and T
   have incompatible types, so ( *p).s3 may or may not be t.t3. *)
let problem2_src =
  {|
    struct S { int *s1; int s2; char *s3; } *p;
    struct T { int *t1; int *t2; char *t3; } t;
    char **c;
    void main(void) {
      p = (struct S *)&t;
      c = &((*p).s3);
    }
  |}

let test_problem2_offsets () =
  (* under ilp32, offsetof(S, s3) = 8 = offsetof(T, t3): exactly one cell *)
  let r = analyze ~strategy:(strategy "offsets") problem2_src in
  check_targets r "c" [ "t@8" ]

let test_problem2_cis () =
  (* CIS(S, T) = {(s1, t1)} (int* ~ int*; then int vs int* breaks it);
     s3 is past the CIS, so everything after t1: {t.t2, t.t3} *)
  let r = analyze ~strategy:(strategy "cis") problem2_src in
  check_targets r "c" [ "t.t2"; "t.t3" ]

let test_problem2_collapse_on_cast () =
  (* no enclosing sub-object of t has type struct S: all fields from t1 *)
  let r = analyze ~strategy:(strategy "collapse-on-cast") problem2_src in
  check_targets r "c" [ "t.t1"; "t.t2"; "t.t3" ]

(* Section 4.1, Problem 3: block copy at a different type, via pointers
   (direct struct casts are not legal C; the paper notes the pointer
   idiom). Copying t into s through a struct-S pointer must transfer t's
   pointer fields into the corresponding fields of s. *)
let problem3_src =
  {|
    struct S { int *s1; int s2; char *s3; } s;
    struct T { int *t1; int *t2; char *t3; } t;
    int x; char y;
    int *r1; char *r3;
    void main(void) {
      t.t1 = &x;
      t.t3 = &y;
      s = *(struct S *)&t;
      r1 = s.s1;
      r3 = s.s3;
    }
  |}

let test_problem3_offsets () =
  let r = analyze ~strategy:(strategy "offsets") problem3_src in
  (* field-for-field at identical offsets *)
  check_bases r "r1" [ "x" ];
  check_bases r "r3" [ "y" ]

let test_problem3_portable_sound () =
  (* every instance must let the copied pointers be recovered *)
  List.iter
    (fun id ->
      let r = analyze ~strategy:(strategy id) problem3_src in
      let r1 = target_bases r "r1" in
      let r3 = target_bases r "r3" in
      if not (List.mem "x" r1) then
        Alcotest.failf "%s: r1 lost x (got %s)" id (String.concat "," r1);
      if not (List.mem "y" r3) then
        Alcotest.failf "%s: r3 lost y (got %s)" id (String.concat "," r3))
    [ "collapse-always"; "collapse-on-cast"; "cis"; "offsets" ]

(* Section 4.3.2: the Collapse-on-Cast lookup example.
   struct S { int s1; char s2; };
   struct T { struct S t1; int t2; char t3; } t;
   p = &t.t1 is a correctly-typed access: ( *p).s2 is exactly t.t1.s2.
   q = (struct S* )&t.t2 is a mismatch: ( *q).s2 may be t.t2 or t.t3. *)
let coc_example_src =
  {|
    struct S { int s1; char s2; } *p, *q;
    struct T { struct S t1; int t2; char t3; } t;
    char *x, *y;
    void main(void) {
      p = &t.t1;
      x = &(*p).s2;
      q = (struct S *)&t.t2;
      y = &(*q).s2;
    }
  |}

let test_coc_example () =
  let r = analyze ~strategy:(strategy "collapse-on-cast") coc_example_src in
  check_targets r "x" [ "t.t1.s2" ];
  check_targets r "y" [ "t.t2"; "t.t3" ]

(* Section 4.3.3: the Common-Initial-Sequence lookup example.
   struct S { int s1; int s2; int s3; };
   struct T { int t1; int t2; char t3; int t4; } t;
   CIS(S, T) = {(s1,t1), (s2,t2)}: s2 resolves exactly to t.t2; s3 falls
   past the CIS and yields {t.t3, t.t4}. *)
let cis_example_src =
  {|
    struct S { int s1; int s2; int s3; } *p;
    struct T { int t1; int t2; char t3; int t4; } t;
    int *x, *y;
    void main(void) {
      p = (struct S *)&t;
      x = (int *)&(*p).s2;
      y = (int *)&(*p).s3;
    }
  |}

let test_cis_example () =
  let r = analyze ~strategy:(strategy "cis") cis_example_src in
  check_targets r "x" [ "t.t2" ];
  check_targets r "y" [ "t.t3"; "t.t4" ]

(* Section 4.2.1, Complication 1: casting can reach past the bounds of a
   nested structure object. Copying w.r into a struct V (one field longer
   than struct R under the paper's layout) can also read w.w3. *)
let complication1_src =
  {|
    struct R { int *r1; char *r2; } ;
    struct V { int *v1; char *v2; int *v3; } v;
    struct W { int *w1; struct R r; int *w3; } w;
    int a; char b; int c0;
    int *out3;
    void main(void) {
      w.r.r1 = &a;
      w.r.r2 = &b;
      w.w3 = &c0;
      v = *(struct V *)&w.r;
      out3 = v.v3;
    }
  |}

let test_complication1 () =
  (* the out-of-bounds field w.w3 must flow into v.v3 *)
  List.iter
    (fun id ->
      let r = analyze ~strategy:(strategy id) complication1_src in
      let bases = target_bases r "out3" in
      if not (List.mem "c0" bases) then
        Alcotest.failf "%s: v.v3 lost w.w3's target (got %s)" id
          (String.concat "," bases))
    [ "collapse-always"; "collapse-on-cast"; "cis"; "offsets" ]

(* Section 4.2.1, Complication 2: a double is big enough to hold a whole
   two-pointer struct; the addresses must be recoverable from it. *)
let complication2_src =
  {|
    struct R { int *r1; int *r2; } r;
    double d;
    int x, y;
    struct R r2;
    int *ox, *oy;
    void main(void) {
      r.r1 = &x;
      r.r2 = &y;
      d = *(double *)&r;
      r2 = *(struct R *)&d;
      ox = r2.r1;
      oy = r2.r2;
    }
  |}

let test_complication2 () =
  List.iter
    (fun id ->
      let r = analyze ~strategy:(strategy id) complication2_src in
      let ox = target_bases r "ox" in
      if not (List.mem "x" ox) then
        Alcotest.failf "%s: ox lost x (got %s)" id (String.concat "," ox);
      let oy = target_bases r "oy" in
      if not (List.mem "y" oy) then
        Alcotest.failf "%s: oy lost y (got %s)" id (String.concat "," oy))
    [ "collapse-always"; "collapse-on-cast"; "cis"; "offsets" ]

(* Section 4.2.1, Complication 4: the declared type of the left-hand side
   determines how many bytes are copied. Copying through a struct T*
   (two pointers) out of a struct S (three pointers) must not copy the
   third field under the Offsets instance. *)
let complication4_src =
  {|
    struct R { int *r1; int *r2; char *r3; } r;
    struct S { int *s1; int *s2; int *s3; } s;
    struct T { int *t1; int *t2; } *p;
    int a, b, c0;
    int *o1, *o2; char *o3;
    void main(void) {
      s.s1 = &a;
      s.s2 = &b;
      s.s3 = &c0;
      p = (struct T *)&r;
      *p = *(struct T *)&s;
      o1 = r.r1;
      o2 = r.r2;
      o3 = r.r3;
    }
  |}

let test_complication4_offsets () =
  let r = analyze ~strategy:(strategy "offsets") complication4_src in
  check_bases r "o1" [ "a" ];
  check_bases r "o2" [ "b" ];
  (* only sizeof(struct T) bytes were copied: r.r3 stays empty *)
  check_bases r "o3" []

let test_complication4_cis () =
  let r = analyze ~strategy:(strategy "cis") complication4_src in
  (* struct T is a common initial sequence of both R and S: exact pairs *)
  check_bases r "o1" [ "a" ];
  check_bases r "o2" [ "b" ];
  check_bases r "o3" []

let suite =
  [
    tc "intro: field-sensitive instances infer p -> {x}" test_intro_field_sensitive;
    tc "intro: collapse-always infers p -> {x,y}" test_intro_collapse_always;
    tc "problem 1: struct pointer = first-field pointer" test_problem1;
    tc "problem 1 (reverse): first field via struct cast" test_problem1_reverse;
    tc "problem 2: offsets" test_problem2_offsets;
    tc "problem 2: common initial sequence" test_problem2_cis;
    tc "problem 2: collapse on cast" test_problem2_collapse_on_cast;
    tc "problem 3: offsets field-for-field" test_problem3_offsets;
    tc "problem 3: all instances sound" test_problem3_portable_sound;
    tc "collapse-on-cast worked example (4.3.2)" test_coc_example;
    tc "common-initial-sequence worked example (4.3.3)" test_cis_example;
    tc "complication 1: past nested-struct bounds" test_complication1;
    tc "complication 2: pointers hidden in a double" test_complication2;
    tc "complication 4 (offsets): LHS type bounds the copy" test_complication4_offsets;
    tc "complication 4 (cis): LHS type bounds the copy" test_complication4_cis;
  ]
