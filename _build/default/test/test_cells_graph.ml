(** Unit tests for cells and the points-to graph. *)

open Cfront
open Core

let var name ty = Cvar.fresh ~name ~ty ~kind:Cvar.Global

let test_cell_ordering () =
  let a = var "a" Ctype.int_t in
  let b = var "b" Ctype.int_t in
  let ca0 = Cell.v a (Cell.Off 0) in
  let ca4 = Cell.v a (Cell.Off 4) in
  let cb0 = Cell.v b (Cell.Off 0) in
  Alcotest.(check bool) "same cell equal" true (Cell.equal ca0 ca0);
  Alcotest.(check bool) "different offsets" false (Cell.equal ca0 ca4);
  Alcotest.(check bool) "ordering by var then sel" true (Cell.compare ca0 ca4 < 0);
  Alcotest.(check bool) "ordering across vars" true (Cell.compare ca4 cb0 < 0);
  (* paths and offsets never collide *)
  let cp = Cell.v a (Cell.Path []) in
  Alcotest.(check bool) "path vs off" false (Cell.equal cp ca0)

let test_cell_pp () =
  let s = var "s" Ctype.int_t in
  Alcotest.(check string) "whole" "s" (Cell.to_string (Cell.whole s));
  Alcotest.(check string) "path" "s.f.g"
    (Cell.to_string (Cell.v s (Cell.Path [ "f"; "g" ])));
  Alcotest.(check string) "offset" "s@8"
    (Cell.to_string (Cell.v s (Cell.Off 8)))

let test_graph_add_edges () =
  let g = Graph.create () in
  let a = var "a" Ctype.int_t and b = var "b" Ctype.int_t in
  let ca = Cell.whole a and cb = Cell.whole b in
  Alcotest.(check bool) "new edge" true (Graph.add_edge g ca cb);
  Alcotest.(check bool) "duplicate edge" false (Graph.add_edge g ca cb);
  Alcotest.(check int) "edge count" 1 (Graph.edge_count g);
  Alcotest.(check int) "pts size" 1 (Cell.Set.cardinal (Graph.pts g ca));
  Alcotest.(check int) "no facts" 0 (Cell.Set.cardinal (Graph.pts g cb))

let test_graph_obj_index () =
  let g = Graph.create () in
  let a = var "a" Ctype.int_t and b = var "b" Ctype.int_t in
  let c0 = Cell.v a (Cell.Off 0) and c4 = Cell.v a (Cell.Off 4) in
  ignore (Graph.add_edge g c0 (Cell.whole b));
  ignore (Graph.add_edge g c4 (Cell.whole b));
  let cells = Graph.cells_of_obj g a in
  Alcotest.(check int) "both cells indexed" 2 (List.length cells);
  Alcotest.(check int) "b has no sources" 0 (List.length (Graph.cells_of_obj g b))

let test_graph_iteration () =
  let g = Graph.create () in
  let a = var "a" Ctype.int_t and b = var "b" Ctype.int_t in
  ignore (Graph.add_edge g (Cell.whole a) (Cell.whole b));
  ignore (Graph.add_edge g (Cell.whole b) (Cell.whole a));
  let n = ref 0 in
  Graph.iter_edges g (fun _ _ -> incr n);
  Alcotest.(check int) "iterated all" 2 !n;
  let folded =
    Graph.fold_sources g (fun _ set acc -> acc + Cell.Set.cardinal set) 0
  in
  Alcotest.(check int) "folded all" 2 folded

let test_cell_type () =
  let c = Ctype.fresh_comp ~tag:"T" ~is_union:false in
  c.Ctype.cfields <-
    Some [ { Ctype.fname = "f"; fty = Ctype.Ptr Ctype.int_t; fbits = None } ];
  let v = var "v" (Ctype.Comp c) in
  Alcotest.(check string) "typed path" "int*"
    (Ctype.to_string (Cell.cell_type (Cell.v v (Cell.Path [ "f" ]))));
  Alcotest.(check string) "bad path is void" "void"
    (Ctype.to_string (Cell.cell_type (Cell.v v (Cell.Path [ "nope" ]))))

let suite =
  [
    Helpers.tc "cell ordering and equality" test_cell_ordering;
    Helpers.tc "cell printing" test_cell_pp;
    Helpers.tc "graph edge insertion" test_graph_add_edges;
    Helpers.tc "graph per-object index" test_graph_obj_index;
    Helpers.tc "graph iteration" test_graph_iteration;
    Helpers.tc "cell types" test_cell_type;
  ]
