(** Unit tests for the hand-written lexer. *)

open Cfront

let toks src : Token.t list =
  Lexer.tokenize ~file:"<lex>" src
  |> List.map (fun t -> t.Token.tok)
  |> List.filter (fun t -> t <> Token.Eof)

let check_toks name src expected =
  Alcotest.(check (list string))
    name
    (List.map Token.describe expected)
    (List.map Token.describe (toks src))

let test_idents_and_keywords () =
  (* keywords are just identifiers at lexing time *)
  check_toks "idents" "int foo _bar x9"
    [ Token.Ident "int"; Token.Ident "foo"; Token.Ident "_bar"; Token.Ident "x9" ]

let test_integer_literals () =
  check_toks "decimal" "0 7 12345"
    [ Token.Int_lit (0L, "0"); Token.Int_lit (7L, "7"); Token.Int_lit (12345L, "12345") ];
  check_toks "hex" "0xff 0X10"
    [ Token.Int_lit (255L, "0xff"); Token.Int_lit (16L, "0X10") ];
  check_toks "suffixes" "7UL 42u 1L"
    [ Token.Int_lit (7L, "7UL"); Token.Int_lit (42L, "42u"); Token.Int_lit (1L, "1L") ]

let test_float_literals () =
  check_toks "floats" "1.5 2e3 7.25e-2"
    [
      Token.Float_lit (1.5, "1.5");
      Token.Float_lit (2000.0, "2e3");
      Token.Float_lit (0.0725, "7.25e-2");
    ];
  (* a dot not followed by a digit is a member access, not a float *)
  check_toks "int-dot-ident" "a.b"
    [ Token.Ident "a"; Token.Dot; Token.Ident "b" ]

let test_char_literals () =
  check_toks "chars" {|'a' '\n' '\0' '\x41' '\''|}
    [
      Token.Char_lit 97; Token.Char_lit 10; Token.Char_lit 0;
      Token.Char_lit 65; Token.Char_lit 39;
    ]

let test_string_literals () =
  check_toks "strings" {|"hi" "a\tb" ""|}
    [ Token.String_lit "hi"; Token.String_lit "a\tb"; Token.String_lit "" ]

let test_operators_maximal_munch () =
  check_toks "shift vs compare" "a >> b >>= c > d >= e"
    [
      Token.Ident "a"; Token.Shr; Token.Ident "b"; Token.Shr_assign;
      Token.Ident "c"; Token.Gt; Token.Ident "d"; Token.Ge; Token.Ident "e";
    ];
  check_toks "arrows and minus" "p->f - -x --y"
    [
      Token.Ident "p"; Token.Arrow; Token.Ident "f"; Token.Minus;
      Token.Minus; Token.Ident "x"; Token.Minus_minus; Token.Ident "y";
    ];
  check_toks "ellipsis" "f(int, ...)"
    [
      Token.Ident "f"; Token.Lparen; Token.Ident "int"; Token.Comma;
      Token.Ellipsis; Token.Rparen;
    ]

let test_comments () =
  check_toks "line comment" "a // comment\nb" [ Token.Ident "a"; Token.Ident "b" ];
  check_toks "block comment" "a /* x\ny */ b" [ Token.Ident "a"; Token.Ident "b" ];
  check_toks "comment containing stars" "/* ** * */ z" [ Token.Ident "z" ]

let test_line_splice () =
  (* backslash-newline joins logical lines; the next token is not
     beginning-of-line *)
  let ts = Lexer.tokenize ~file:"<lex>" "foo\\\nbar" in
  match ts with
  | [ { Token.tok = Token.Ident "foo"; bol = true; _ };
      { Token.tok = Token.Ident "bar"; bol = false; _ };
      { Token.tok = Token.Eof; _ } ] ->
      ()
  | _ -> Alcotest.fail "line splice mis-lexed"

let test_bol_tracking () =
  let ts = Lexer.tokenize ~file:"<lex>" "a b\nc" in
  (* the trailing Eof shares c's line, so it is not beginning-of-line *)
  let bols = List.map (fun t -> t.Token.bol) ts in
  Alcotest.(check (list bool)) "bol flags" [ true; false; true; false ] bols

let test_positions () =
  let ts = Lexer.tokenize ~file:"f.c" "ab\n  cd" in
  match ts with
  | [ a; b; _eof ] ->
      Alcotest.(check int) "line a" 1 a.Token.loc.Srcloc.line;
      Alcotest.(check int) "col a" 1 a.Token.loc.Srcloc.col;
      Alcotest.(check int) "line b" 2 b.Token.loc.Srcloc.line;
      Alcotest.(check int) "col b" 3 b.Token.loc.Srcloc.col
  | _ -> Alcotest.fail "unexpected token count"

let expect_error name src =
  match Lexer.tokenize ~file:"<lex>" src with
  | exception Diag.Error _ -> ()
  | _ -> Alcotest.failf "%s: expected a lexer error" name

let test_errors () =
  expect_error "unterminated comment" "/* never closed";
  expect_error "unterminated string" "\"abc";
  expect_error "unterminated char" "'a";
  expect_error "empty char" "''";
  expect_error "bad escape" {|'\q'|};
  expect_error "stray character" "a $ b"

let test_roundtrip_to_source () =
  (* to_source of every punctuation token re-lexes to itself *)
  let tokens =
    [
      Token.Arrow; Token.Ellipsis; Token.Shl_assign; Token.Amp_amp;
      Token.Plus_plus; Token.Le; Token.Bang_eq; Token.Caret_assign;
    ]
  in
  List.iter
    (fun tok ->
      match Lexer.tokenize ~file:"<rt>" (Token.to_source tok) with
      | [ t; _eof ] when t.Token.tok = tok -> ()
      | _ -> Alcotest.failf "roundtrip failed for %s" (Token.describe tok))
    tokens

let suite =
  [
    Helpers.tc "identifiers and keywords" test_idents_and_keywords;
    Helpers.tc "integer literals" test_integer_literals;
    Helpers.tc "float literals" test_float_literals;
    Helpers.tc "character literals" test_char_literals;
    Helpers.tc "string literals" test_string_literals;
    Helpers.tc "maximal munch" test_operators_maximal_munch;
    Helpers.tc "comments" test_comments;
    Helpers.tc "line splices" test_line_splice;
    Helpers.tc "beginning-of-line flags" test_bol_tracking;
    Helpers.tc "source positions" test_positions;
    Helpers.tc "lexical errors" test_errors;
    Helpers.tc "token to_source roundtrip" test_roundtrip_to_source;
  ]
