(** Unit tests for the type algebra: compatibility, common initial
    sequences, and the field-path utilities the strategies build on. *)

open Cfront

let comp ?(union = false) tag fields =
  let c = Ctype.fresh_comp ~tag ~is_union:union in
  c.Ctype.cfields <-
    Some
      (List.map
         (fun (fname, fty) -> { Ctype.fname; fty; fbits = None })
         fields);
  Ctype.Comp c

let test_equal () =
  Alcotest.(check bool) "int = int" true Ctype.(equal int_t int_t);
  Alcotest.(check bool) "int <> uint" false Ctype.(equal int_t uint_t);
  Alcotest.(check bool) "ptr chains" true
    Ctype.(equal (Ptr (Ptr char_t)) (Ptr (Ptr char_t)));
  let s1 = comp "A" [ ("x", Ctype.int_t) ] in
  let s2 = comp "A" [ ("x", Ctype.int_t) ] in
  (* same shape, distinct declarations: not equal *)
  Alcotest.(check bool) "distinct comps" false (Ctype.equal s1 s2);
  Alcotest.(check bool) "same comp" true (Ctype.equal s1 s1)

let test_compatible_scalars () =
  Alcotest.(check bool) "int ~ int" true Ctype.(compatible int_t int_t);
  Alcotest.(check bool) "int !~ long" false Ctype.(compatible int_t long_t);
  Alcotest.(check bool) "int !~ unsigned" false Ctype.(compatible int_t uint_t);
  Alcotest.(check bool) "int* ~ int*" true
    Ctype.(compatible (Ptr int_t) (Ptr int_t));
  Alcotest.(check bool) "int* !~ char*" false
    Ctype.(compatible (Ptr int_t) (Ptr char_t))

let test_compatible_arrays () =
  let a10 = Ctype.Array (Ctype.int_t, Some 10) in
  let a10' = Ctype.Array (Ctype.int_t, Some 10) in
  let a20 = Ctype.Array (Ctype.int_t, Some 20) in
  let a_none = Ctype.Array (Ctype.int_t, None) in
  Alcotest.(check bool) "same size" true (Ctype.compatible a10 a10');
  Alcotest.(check bool) "different size" false (Ctype.compatible a10 a20);
  Alcotest.(check bool) "unknown size" true (Ctype.compatible a10 a_none)

let test_compatible_structs () =
  (* member-wise: same names, compatible types *)
  let s1 = comp "S1" [ ("a", Ctype.int_t); ("b", Ctype.Ptr Ctype.char_t) ] in
  let s2 = comp "S2" [ ("a", Ctype.int_t); ("b", Ctype.Ptr Ctype.char_t) ] in
  let s3 = comp "S3" [ ("a", Ctype.int_t); ("c", Ctype.Ptr Ctype.char_t) ] in
  let s4 = comp "S4" [ ("a", Ctype.int_t) ] in
  Alcotest.(check bool) "structural match" true (Ctype.compatible s1 s2);
  Alcotest.(check bool) "field name differs" false (Ctype.compatible s1 s3);
  Alcotest.(check bool) "field count differs" false (Ctype.compatible s1 s4);
  (* struct vs union never compatible *)
  let u = comp ~union:true "U" [ ("a", Ctype.int_t); ("b", Ctype.Ptr Ctype.char_t) ] in
  Alcotest.(check bool) "struct vs union" false (Ctype.compatible s1 u)

let test_compatible_recursive () =
  (* struct L1 { struct L1 *next; } vs an identically-shaped L2: the
     cycle-safe check must terminate and accept *)
  let c1 = Ctype.fresh_comp ~tag:"L1" ~is_union:false in
  c1.Ctype.cfields <-
    Some [ { Ctype.fname = "next"; fty = Ctype.Ptr (Ctype.Comp c1); fbits = None } ];
  let c2 = Ctype.fresh_comp ~tag:"L2" ~is_union:false in
  c2.Ctype.cfields <-
    Some [ { Ctype.fname = "next"; fty = Ctype.Ptr (Ctype.Comp c2); fbits = None } ];
  Alcotest.(check bool) "recursive structs" true
    (Ctype.compatible (Ctype.Comp c1) (Ctype.Comp c2))

let test_common_initial_seq () =
  let s = comp "S" [ ("s1", Ctype.Ptr Ctype.int_t); ("s2", Ctype.int_t);
                     ("s3", Ctype.Ptr Ctype.char_t) ] in
  let t = comp "T" [ ("t1", Ctype.Ptr Ctype.int_t); ("t2", Ctype.Ptr Ctype.int_t);
                     ("t3", Ctype.Ptr Ctype.char_t) ] in
  let cis = Ctype.common_initial_seq s t in
  Alcotest.(check int) "one pair" 1 (List.length cis);
  (match cis with
  | [ (f1, f2) ] ->
      Alcotest.(check string) "left" "s1" f1.Ctype.fname;
      Alcotest.(check string) "right" "t1" f2.Ctype.fname
  | _ -> Alcotest.fail "unexpected CIS");
  (* identical structs: full CIS *)
  Alcotest.(check int) "self CIS" 3 (List.length (Ctype.common_initial_seq s s));
  (* scalars: no CIS *)
  Alcotest.(check int) "scalar CIS" 0
    (List.length (Ctype.common_initial_seq Ctype.int_t Ctype.int_t))

let test_innermost_first_path () =
  let inner = comp "Inner" [ ("a", Ctype.int_t); ("b", Ctype.int_t) ] in
  let outer = comp "Outer" [ ("i", inner); ("z", Ctype.int_t) ] in
  Alcotest.(check (list string)) "nested descent" [ "i"; "a" ]
    (Ctype.innermost_first_path outer);
  Alcotest.(check (list string)) "scalar" [] (Ctype.innermost_first_path Ctype.int_t);
  (* arrays are transparent *)
  let arr = Ctype.Array (outer, Some 4) in
  Alcotest.(check (list string)) "array of struct" [ "i"; "a" ]
    (Ctype.innermost_first_path arr);
  (* unions cut normalization *)
  let u = comp ~union:true "U" [ ("m", Ctype.int_t) ] in
  let holder = comp "H" [ ("u", u); ("x", Ctype.int_t) ] in
  Alcotest.(check (list string)) "union cut" [ "u" ]
    (Ctype.innermost_first_path holder)

let test_leaf_paths () =
  let inner = comp "In2" [ ("a", Ctype.int_t); ("b", Ctype.char_t) ] in
  let outer = comp "Out2" [ ("i", inner); ("z", Ctype.Ptr Ctype.int_t) ] in
  Alcotest.(check (list (list string))) "flattened"
    [ [ "i"; "a" ]; [ "i"; "b" ]; [ "z" ] ]
    (Ctype.leaf_paths outer);
  Alcotest.(check (list (list string))) "scalar leaf" [ [] ]
    (Ctype.leaf_paths Ctype.int_t);
  (* unions are leaves for path strategies, transparent for layout *)
  let u = comp ~union:true "U2" [ ("m", inner); ("n", Ctype.int_t) ] in
  Alcotest.(check (list (list string))) "union kept whole" [ [] ]
    (Ctype.leaf_paths u);
  Alcotest.(check (list (list string))) "union through"
    [ [ "m"; "a" ]; [ "m"; "b" ]; [ "n" ] ]
    (Ctype.leaf_paths_through_unions u)

let test_following_leaves () =
  let s = comp "F" [ ("a", Ctype.int_t); ("b", Ctype.int_t); ("c", Ctype.int_t) ] in
  Alcotest.(check (list (list string))) "after first" [ [ "b" ]; [ "c" ] ]
    (Ctype.following_leaves s [ "a" ]);
  Alcotest.(check (list (list string))) "after last" []
    (Ctype.following_leaves s [ "c" ]);
  (* fields within an array include their array-mates (footnote 6) *)
  let elem = comp "E" [ ("x", Ctype.int_t); ("y", Ctype.int_t) ] in
  let holder =
    comp "H2" [ ("arr", Ctype.Array (elem, Some 3)); ("tail", Ctype.int_t) ]
  in
  Alcotest.(check (list (list string)))
    "array wrap-around"
    [ [ "arr"; "x" ]; [ "arr"; "y" ]; [ "tail" ] ]
    (Ctype.following_leaves holder [ "arr"; "y" ])

let test_enclosing_candidates () =
  let inner = comp "In3" [ ("a", Ctype.int_t); ("b", Ctype.int_t) ] in
  let outer = comp "Out3" [ ("i", inner); ("z", Ctype.int_t) ] in
  (* the normalized first leaf [i;a] is reachable as: the whole object,
     the i sub-struct, and the leaf itself *)
  Alcotest.(check (list (list string)))
    "first leaf" [ []; [ "i" ]; [ "i"; "a" ] ]
    (Ctype.enclosing_candidates outer [ "i"; "a" ]);
  (* a non-first leaf encloses only itself *)
  Alcotest.(check (list (list string))) "other leaf" [ [ "z" ] ]
    (Ctype.enclosing_candidates outer [ "z" ])

let test_type_at_path () =
  let inner = comp "In4" [ ("a", Ctype.Ptr Ctype.int_t) ] in
  let outer = comp "Out4" [ ("i", Ctype.Array (inner, Some 2)) ] in
  (* arrays unwrap transparently on the way down *)
  Alcotest.(check bool) "through array" true
    (Ctype.equal (Ctype.type_at_path outer [ "i"; "a" ]) (Ctype.Ptr Ctype.int_t));
  match Ctype.type_at_path outer [ "nope" ] with
  | exception Diag.Error _ -> ()
  | _ -> Alcotest.fail "expected error for bad field"

let suite =
  [
    Helpers.tc "type equality" test_equal;
    Helpers.tc "compatibility: scalars" test_compatible_scalars;
    Helpers.tc "compatibility: arrays" test_compatible_arrays;
    Helpers.tc "compatibility: structs" test_compatible_structs;
    Helpers.tc "compatibility: recursive structs" test_compatible_recursive;
    Helpers.tc "common initial sequence" test_common_initial_seq;
    Helpers.tc "innermost first path" test_innermost_first_path;
    Helpers.tc "leaf paths" test_leaf_paths;
    Helpers.tc "following leaves" test_following_leaves;
    Helpers.tc "enclosing candidates" test_enclosing_candidates;
    Helpers.tc "type at path" test_type_at_path;
  ]
