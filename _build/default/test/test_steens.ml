(** Tests for the Steensgaard-style unification baselines: soundness
    against the concrete interpreter, and the qualitative precision
    relationship vs the inclusion-based framework instances. *)

open Cfront
open Norm

let layout = Layout.default

let steens_covers (t : Steens.Steensgaard.t) (obs : Interp.Eval.observation) :
    bool =
  let obj, off = obs.Interp.Eval.holder in
  let tgt = obs.Interp.Eval.target.Interp.Memory.aobj in
  let toff = obs.Interp.Eval.target.Interp.Memory.aoff in
  List.exists
    (fun (c1, targets) ->
      Interp.Oracle.covers_storage layout c1 off
      && List.exists
           (fun (c2 : Core.Cell.t) ->
             Cvar.equal c2.Core.Cell.base tgt
             && Interp.Oracle.covers_target layout c2 toff)
           targets)
    (Steens.Steensgaard.facts_for_object t obj)

let soundness_prop flavor seed =
  let cfg = { Cgen.default with n_stmts = 50; cast_rate = 0.35 } in
  let src = Cgen.generate ~cfg ~seed () in
  let prog = Lower.compile ~file:(Printf.sprintf "<gen:%d>" seed) src in
  let t = Steens.Steensgaard.run ~flavor prog in
  let observed = Interp.Eval.run prog in
  Interp.Eval.Obs.for_all
    (fun obs ->
      (not (Interp.Oracle.target_in_bounds layout obs))
      || steens_covers t obs
      || QCheck2.Test.fail_reportf "seed %d: steens missed %s" seed
           (Fmt.str "%a" Interp.Oracle.pp_observation obs))
    observed

let seed_gen = QCheck2.Gen.int_range 0 100_000

let soundness_tests =
  [
    QCheck2.Test.make ~name:"steens-collapsed covers concrete execution"
      ~count:40 seed_gen
      (soundness_prop Steens.Steensgaard.Collapsed);
    QCheck2.Test.make ~name:"steens-field covers concrete execution"
      ~count:40 seed_gen
      (soundness_prop Steens.Steensgaard.Fields);
  ]

(* unification is (on average) no more precise than the inclusion-based
   CIS instance — the paper's Section 6 qualitative claim *)
let test_less_precise_than_cis () =
  let totals = ref (0.0, 0.0) in
  List.iter
    (fun p ->
      let prog = Lower.compile ~file:p.Suite.name p.Suite.source in
      let st =
        Steens.Steensgaard.run ~flavor:Steens.Steensgaard.Fields prog
      in
      let cis =
        Core.Analysis.run ~strategy:(module Core.Common_init_seq) prog
      in
      let s = Steens.Steensgaard.avg_deref_size st in
      let c = cis.Core.Analysis.metrics.Core.Metrics.avg_deref_size in
      let a, b = !totals in
      totals := (a +. s, b +. c))
    Suite.casting;
  let s, c = !totals in
  if s < c then
    Alcotest.failf
      "expected unification (%.2f total) to be no more precise than CIS \
       (%.2f total)"
      s c

(* the collapsed flavor must be at least as coarse as the field flavor *)
let test_flavors_ordered () =
  List.iter
    (fun p ->
      let prog = Lower.compile ~file:p.Suite.name p.Suite.source in
      let coll =
        Steens.Steensgaard.run ~flavor:Steens.Steensgaard.Collapsed prog
      in
      let fields =
        Steens.Steensgaard.run ~flavor:Steens.Steensgaard.Fields prog
      in
      let c = Steens.Steensgaard.avg_deref_size coll in
      let f = Steens.Steensgaard.avg_deref_size fields in
      if f > c +. 0.001 then
        Alcotest.failf "%s: field flavor (%.2f) coarser than collapsed (%.2f)"
          p.Suite.name f c)
    Suite.programs

let suite =
  List.map QCheck_alcotest.to_alcotest soundness_tests
  @ [
      Helpers.tc "unification no more precise than CIS (corpus mean)"
        test_less_precise_than_cis;
      Helpers.tc "collapsed flavor at least as coarse as field flavor"
        test_flavors_ordered;
    ]
