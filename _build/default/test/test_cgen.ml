(** Unit tests for the random C program generator. *)

let test_deterministic () =
  let a = Cgen.generate ~seed:42 () in
  let b = Cgen.generate ~seed:42 () in
  Alcotest.(check string) "same seed, same program" a b

let test_seeds_differ () =
  let a = Cgen.generate ~seed:1 () in
  let b = Cgen.generate ~seed:2 () in
  Alcotest.(check bool) "different seeds differ" true (a <> b)

let test_config_scales () =
  let small =
    Cgen.generate ~cfg:{ Cgen.default with n_stmts = 5 } ~seed:7 ()
  in
  let large =
    Cgen.generate ~cfg:{ Cgen.default with n_stmts = 200 } ~seed:7 ()
  in
  Alcotest.(check bool) "more statements, more text" true
    (String.length large > String.length small)

let test_all_compile () =
  (* a spread of seeds must go through the whole front end *)
  for seed = 0 to 30 do
    let src = Cgen.generate ~seed () in
    match Norm.Lower.compile ~file:"<gen>" src with
    | prog ->
        if Norm.Nast.stmt_count prog = 0 then
          Alcotest.failf "seed %d: empty program" seed
    | exception Cfront.Diag.Error p ->
        Alcotest.failf "seed %d: %s@.%s" seed p.Cfront.Diag.message src
  done

let test_casts_present () =
  (* with a high cast rate, generated programs must actually contain
     struct-pointer casts (checked via the instrumentation counters) *)
  let cfg = { Cgen.default with n_stmts = 120; cast_rate = 0.9 } in
  let hits = ref 0 in
  for seed = 0 to 9 do
    let src = Cgen.generate ~cfg ~seed () in
    let prog = Norm.Lower.compile ~file:"<gen>" src in
    let r =
      Core.Analysis.run ~strategy:(module Core.Collapse_on_cast) prog
    in
    let f = r.Core.Analysis.metrics.Core.Metrics.figures3 in
    if f.Core.Actx.pct_lookup_mismatch > 0.0
       || f.Core.Actx.pct_resolve_mismatch > 0.0
    then incr hits
  done;
  Alcotest.(check bool) "most seeds exercise casting" true (!hits >= 7)

let test_zero_cast_rate () =
  (* cast_rate 0 still compiles; the blit/double patterns may cast, so we
     only require successful compilation here *)
  let cfg = { Cgen.default with cast_rate = 0.0; n_stmts = 60 } in
  for seed = 0 to 5 do
    ignore (Norm.Lower.compile ~file:"<gen>" (Cgen.generate ~cfg ~seed ()))
  done

let suite =
  [
    Helpers.tc "deterministic" test_deterministic;
    Helpers.tc "seeds differ" test_seeds_differ;
    Helpers.tc "size scales with config" test_config_scales;
    Helpers.tc "all seeds compile" test_all_compile;
    Helpers.tc "high cast rate exercises casting" test_casts_present;
    Helpers.tc "zero cast rate compiles" test_zero_cast_rate;
  ]
