(** Property-based tests over randomly generated C programs.

    - Soundness: every pointer value observed by the concrete interpreter
      (byte-level memory, same layout) is covered by every analysis
      instance's points-to graph.
    - Precision ordering: at the level of pointed-to base objects,
      CIS ⊆ Collapse-on-Cast ⊆ Collapse-Always for every dereferenced
      pointer.
    - Determinism: same seed, same results. *)

open Cfront
open Norm

let gen_cfg =
  { Cgen.default with n_structs = 3; n_stmts = 50; cast_rate = 0.35 }

let compile_seed seed : Nast.program =
  let src = Cgen.generate ~cfg:gen_cfg ~seed () in
  try Lower.compile ~file:(Printf.sprintf "<gen:%d>" seed) src
  with Diag.Error p ->
    Alcotest.failf "seed %d failed to compile: %s@.%s" seed p.Diag.message src

let seed_gen = QCheck2.Gen.int_range 0 100_000

let soundness_prop (module S : Core.Strategy.S) seed =
  let prog = compile_seed seed in
  let solver = Core.Solver.run ~strategy:(module S) prog in
  let observed = Interp.Eval.run prog in
  match Interp.Oracle.uncovered solver observed with
  | [] -> true
  | missing ->
      QCheck2.Test.fail_reportf "seed %d: %s missed %d facts, e.g. %a" seed
        S.id (List.length missing)
        Interp.Oracle.pp_observation (List.hd missing)

let soundness_tests =
  List.map
    (fun (module S : Core.Strategy.S) ->
      QCheck2.Test.make
        ~name:(Printf.sprintf "soundness: %s covers concrete execution" S.id)
        ~count:60 seed_gen
        (soundness_prop (module S)))
    Core.Analysis.strategies

(* base-object points-to sets per source deref site *)
let deref_base_sets (solver : Core.Solver.t) : (int * string list) list =
  List.map
    (fun ((stmt : Nast.stmt), p) ->
      let bases =
        Core.Metrics.expanded_pts solver p
        |> Core.Cell.Set.elements
        |> List.map (fun (c : Core.Cell.t) ->
               Cvar.qualified_name c.Core.Cell.base)
        |> List.sort_uniq compare
      in
      (stmt.Nast.id, bases))
    (Core.Metrics.deref_sites solver.Core.Solver.prog)

let subset a b = List.for_all (fun x -> List.mem x b) a

let ordering_prop seed =
  let prog = compile_seed seed in
  let solve id =
    match Core.Analysis.strategy_of_id id with
    | Some s -> deref_base_sets (Core.Solver.run ~strategy:s prog)
    | None -> assert false
  in
  let cis = solve "cis" in
  let coc = solve "collapse-on-cast" in
  let ca = solve "collapse-always" in
  List.for_all2
    (fun (i1, s1) (i2, s2) ->
      assert (i1 = i2);
      subset s1 s2
      ||
      QCheck2.Test.fail_reportf
        "seed %d: cis ⊄ collapse-on-cast at stmt %d (%s vs %s)" seed i1
        (String.concat "," s1) (String.concat "," s2))
    cis coc
  && List.for_all2
       (fun (i1, s1) (i2, s2) ->
         assert (i1 = i2);
         subset s1 s2
         ||
         QCheck2.Test.fail_reportf
           "seed %d: collapse-on-cast ⊄ collapse-always at stmt %d" seed i1)
       coc ca

let ordering_test =
  QCheck2.Test.make
    ~name:"precision ordering: cis ⊆ collapse-on-cast ⊆ collapse-always"
    ~count:60 seed_gen ordering_prop

let determinism_prop seed =
  let run () =
    let prog = compile_seed seed in
    let r =
      Core.Analysis.run ~strategy:(module Core.Common_init_seq) prog
    in
    ( r.Core.Analysis.metrics.Core.Metrics.total_edges,
      r.Core.Analysis.metrics.Core.Metrics.avg_deref_size )
  in
  run () = run ()

let determinism_test =
  QCheck2.Test.make ~name:"determinism: same seed, same metrics" ~count:20
    seed_gen determinism_prop

(* programs with helper-function calls: the interprocedural machinery must
   stay sound too *)
let calls_cfg = { gen_cfg with Cgen.with_calls = true; n_stmts = 60 }

let soundness_with_calls_prop seed =
  let src = Cgen.generate ~cfg:calls_cfg ~seed () in
  let prog =
    try Lower.compile ~file:(Printf.sprintf "<genc:%d>" seed) src
    with Diag.Error p ->
      Alcotest.failf "seed %d failed to compile: %s" seed p.Diag.message
  in
  let solver =
    Core.Solver.run ~strategy:(module Core.Common_init_seq) prog
  in
  let observed = Interp.Eval.run prog in
  match Interp.Oracle.uncovered solver observed with
  | [] -> true
  | missing ->
      QCheck2.Test.fail_reportf "seed %d: missed %d interprocedural facts"
        seed (List.length missing)

let soundness_with_calls_test =
  QCheck2.Test.make ~name:"soundness with generated function calls" ~count:40
    seed_gen soundness_with_calls_prop

(* interpreter-level sanity: generated programs execute without raising *)
let interp_total_prop seed =
  let prog = compile_seed seed in
  let _ = Interp.Eval.run prog in
  true

let interp_total_test =
  QCheck2.Test.make ~name:"interpreter is total on generated programs"
    ~count:60 seed_gen interp_total_prop

let suite =
  List.map QCheck_alcotest.to_alcotest
    (soundness_tests
     @ [
         ordering_test; determinism_test; interp_total_test;
         soundness_with_calls_test;
       ])
