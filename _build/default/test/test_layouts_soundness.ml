(** Soundness must hold under every layout configuration: the Offsets
    instance and the concrete interpreter are both parameterized by the
    layout, and they must agree for each of ilp32 / lp64 / word16.

    This also pins the portability claim from the other side: the
    portable instances must produce the {e same} graphs whatever layout
    the Offsets machinery is configured with. *)

open Cfront
open Norm

let gen_cfg = { Cgen.default with n_stmts = 45; cast_rate = 0.35 }

let soundness_under layout (module S : Core.Strategy.S) seed =
  let src = Cgen.generate ~cfg:gen_cfg ~seed () in
  let prog =
    try Lower.compile ~layout ~file:(Printf.sprintf "<gen:%d>" seed) src
    with Diag.Error p -> Alcotest.failf "seed %d: %s" seed p.Diag.message
  in
  let solver = Core.Solver.run ~layout ~strategy:(module S) prog in
  let observed = Interp.Eval.run ~layout prog in
  match Interp.Oracle.uncovered solver observed with
  | [] -> true
  | missing ->
      QCheck2.Test.fail_reportf "seed %d: %s/%s missed %d facts" seed S.id
        layout.Layout.name (List.length missing)

let seed_gen = QCheck2.Gen.int_range 0 100_000

let soundness_tests =
  List.concat_map
    (fun layout ->
      List.map
        (fun (module S : Core.Strategy.S) ->
          QCheck2.Test.make
            ~name:
              (Printf.sprintf "soundness under %s: %s" layout.Layout.name
                 S.id)
            ~count:25 seed_gen
            (soundness_under layout (module S)))
        [ (module Core.Offsets : Core.Strategy.S);
          (module Core.Common_init_seq) ])
    [ Layout.lp64; Layout.word16 ]

(* the portable instances must compute identical graphs regardless of the
   configured layout *)
let portable_invariance seed =
  let src = Cgen.generate ~cfg:gen_cfg ~seed () in
  let graph_as_strings layout =
    let prog = Lower.compile ~layout ~file:"<gen>" src in
    let solver =
      Core.Solver.run ~layout ~strategy:(module Core.Common_init_seq) prog
    in
    Core.Graph.fold_sources solver.Core.Solver.graph
      (fun c set acc ->
        (Core.Cell.to_string c
         ^ "->"
         ^ String.concat ","
             (List.map Core.Cell.to_string (Core.Cell.Set.elements set)))
        :: acc)
      []
    |> List.sort compare
  in
  let a = graph_as_strings Layout.ilp32 in
  let b = graph_as_strings Layout.lp64 in
  a = b
  || QCheck2.Test.fail_reportf "seed %d: portable instance varied with layout"
       seed

let portable_invariance_test =
  QCheck2.Test.make ~name:"cis graphs are layout-invariant" ~count:25
    seed_gen portable_invariance

let suite =
  List.map QCheck_alcotest.to_alcotest
    (soundness_tests @ [ portable_invariance_test ])
