(** Tests for the client-analysis query library. *)

open Norm

let query ?(strategy = (module Core.Common_init_seq : Core.Strategy.S)) src :
    Clients.Queries.t =
  let prog = Lower.compile ~file:"<clients>" src in
  Clients.Queries.of_solver (Core.Solver.run ~strategy prog)

let shapes_src =
  {|
    struct ops { int (*f)(int); int (*g)(int); };
    int inc(int x) { return x + 1; }
    int dec(int x) { return x - 1; }
    int twice(int x) { return x * 2; }
    struct ops o1 = { inc, dec };
    struct ops o2 = { twice, twice };
    int helper(struct ops *p, int v) { return p->f(v); }
    int direct_user(int v) { return inc(v); }
    void main(void) {
      helper(&o1, 1);
      helper(&o2, 2);
      direct_user(3);
    }
  |}

let test_call_graph () =
  let q = query shapes_src in
  let cg = Clients.Queries.call_graph q in
  let callees name =
    List.assoc name cg |> List.map Clients.Queries.callee_name
    |> List.sort_uniq compare
  in
  (* field sensitivity keeps the f and g slots apart: dec (stored only
     in g) must NOT appear among p->f's callees; o1.f and o2.f merge at
     the shared call site *)
  Alcotest.(check (list string)) "helper resolves fn ptrs"
    [ "inc"; "twice" ]
    (callees "helper");
  Alcotest.(check (list string)) "direct call" [ "inc" ] (callees "direct_user");
  Alcotest.(check (list string)) "main calls" [ "direct_user"; "helper" ]
    (callees "main")

let test_call_graph_precision_gap () =
  (* under collapse-always the ops struct is one cell, so helper's
     indirect call also reaches dec (stored only in the g slot) *)
  let precise = query shapes_src in
  let coarse =
    query ~strategy:(module Core.Collapse_always) shapes_src
  in
  let count q =
    List.length (List.assoc "helper" (Clients.Queries.call_graph q))
  in
  Alcotest.(check bool) "coarse at least as many callees" true
    (count coarse >= count precise)

let test_reachable () =
  let q = query shapes_src in
  let reach = Clients.Queries.reachable_from q "main" in
  Alcotest.(check bool) "indirect targets reachable" true
    (List.mem "twice" reach && List.mem "inc" reach);
  Alcotest.(check bool) "main itself" true (List.mem "main" reach)

let alias_src =
  {|
    struct S { int *a; int *b; } s;
    int x, y, z;
    int *p, *q, *r;
    void main(void) {
      s.a = &x;
      s.b = &y;
      p = s.a;
      q = s.b;
      r = s.a;
    }
  |}

let test_may_alias () =
  let q = query alias_src in
  let v name =
    match Clients.Queries.find_var q name with
    | Some v -> v
    | None -> Alcotest.failf "no var %s" name
  in
  Alcotest.(check bool) "p aliases r" true
    (Clients.Queries.may_alias q (v "p") (v "r"));
  Alcotest.(check bool) "p does not alias q" false
    (Clients.Queries.may_alias q (v "p") (v "q"));
  Alcotest.(check bool) "p may point into x" true
    (Clients.Queries.may_point_into q (v "p") (v "x"));
  Alcotest.(check bool) "p may not point into z" false
    (Clients.Queries.may_point_into q (v "p") (v "z"))

let mod_src =
  {|
    int g1, g2;
    void write_g1(int *unused) { int *p; p = &g1; *p = 1; }
    void write_g2(void) { int *p; p = &g2; *p = 2; }
    void caller(void) { write_g1(0); }
    void main(void) { caller(); write_g2(); }
  |}

let test_mod_sets () =
  let q = query mod_src in
  let p = Clients.Queries.prog q in
  let f name = Option.get (Nast.func_by_name p name) in
  let mods name =
    Clients.Queries.cell_set_to_strings
      (Clients.Queries.mod_set q (f name))
  in
  Alcotest.(check (list string)) "write_g1 mods" [ "g1" ] (mods "write_g1");
  Alcotest.(check (list string)) "write_g2 mods" [ "g2" ] (mods "write_g2");
  Alcotest.(check (list string)) "caller mods nothing directly" []
    (mods "caller");
  let trans =
    Clients.Queries.cell_set_to_strings
      (Clients.Queries.mod_set_transitive q "caller")
  in
  Alcotest.(check (list string)) "caller transitively mods g1" [ "g1" ] trans

let test_ref_sets () =
  let src =
    {|
      int g;
      int reader(int *p) { return *p; }
      void main(void) { reader(&g); }
    |}
  in
  let q = query src in
  let p = Clients.Queries.prog q in
  let f = Option.get (Nast.func_by_name p "reader") in
  Alcotest.(check (list string)) "reader refs g" [ "g" ]
    (Clients.Queries.cell_set_to_strings (Clients.Queries.ref_set q f))

let suite =
  [
    Helpers.tc "call graph with resolved fn pointers" test_call_graph;
    Helpers.tc "call-graph precision tracks the instance"
      test_call_graph_precision_gap;
    Helpers.tc "reachability" test_reachable;
    Helpers.tc "may-alias queries" test_may_alias;
    Helpers.tc "MOD sets (direct and transitive)" test_mod_sets;
    Helpers.tc "REF sets" test_ref_sets;
  ]
