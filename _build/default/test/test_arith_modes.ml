(** Tests for the pointer-arithmetic handling modes: the paper's
    Assumption-1 rule (`Spread), the Wilson-Lam stride refinement
    (`Stride), the pessimistic Unknown marker (`Unknown), and the
    optimistic `Copy ablation. *)

open Cfront
open Norm

let solve ~arith src =
  let prog = Lower.compile ~file:"<arith>" src in
  Core.Solver.run ~arith ~strategy:(module Core.Common_init_seq) prog

let pts_bases solver name =
  let prog = solver.Core.Solver.prog in
  let v =
    List.find
      (fun v -> v.Cvar.vname = name || Cvar.qualified_name v = name)
      prog.Nast.pall_vars
  in
  let module S = (val solver.Core.Solver.strategy : Core.Strategy.S) in
  Core.Graph.pts solver.Core.Solver.graph
    (S.normalize solver.Core.Solver.ctx v [])
  |> Core.Cell.Set.elements
  |> List.map (fun (c : Core.Cell.t) -> Cvar.qualified_name c.Core.Cell.base)
  |> List.sort_uniq compare

let struct_walk_src =
  {|
    struct S { int *a; int *b; } s;
    int x, y;
    int **p, *out;
    void main(void) {
      s.a = &x;
      s.b = &y;
      p = &s.a;
      p = p + 1;
      out = *p;
    }
  |}

let array_walk_src =
  {|
    int *arr[8];
    int x;
    int **p, *out;
    int unrelated;
    void main(void) {
      arr[0] = &x;
      p = &arr[0];
      p = p + 3;
      out = *p;
    }
  |}

let test_spread_on_struct () =
  let s = solve ~arith:`Spread struct_walk_src in
  (* stepping within a struct may reach any field *)
  Alcotest.(check (list string)) "out sees both" [ "x"; "y" ]
    (pts_bases s "out")

let test_stride_on_struct () =
  (* stride mode must NOT refine struct-internal arithmetic: p + 1 on a
     pointer to a struct field still spreads *)
  let s = solve ~arith:`Stride struct_walk_src in
  Alcotest.(check (list string)) "still spreads" [ "x"; "y" ]
    (pts_bases s "out")

let test_stride_on_array () =
  (* walking an array stays on the representative element *)
  let s = solve ~arith:`Stride array_walk_src in
  Alcotest.(check (list string)) "stays in arr" [ "x" ] (pts_bases s "out")

let test_spread_on_array_equals_stride () =
  (* for an array of scalars the representative has one cell, so spread
     and stride coincide *)
  let a = solve ~arith:`Spread array_walk_src in
  let b = solve ~arith:`Stride array_walk_src in
  Alcotest.(check (list string)) "same" (pts_bases a "out") (pts_bases b "out")

let test_unknown_marks () =
  let s = solve ~arith:`Unknown struct_walk_src in
  let m = Core.Metrics.summarize s in
  Alcotest.(check bool) "at least one flagged deref" true
    (m.Core.Metrics.corrupt_derefs > 0);
  (* p itself holds the marker *)
  Alcotest.(check bool) "marker present" true
    (List.mem "$unknown" (pts_bases s "p"))

let test_other_modes_have_no_marker () =
  List.iter
    (fun arith ->
      let s = solve ~arith struct_walk_src in
      let m = Core.Metrics.summarize s in
      Alcotest.(check int) "no flags" 0 m.Core.Metrics.corrupt_derefs)
    [ `Spread; `Stride; `Copy ]

let test_copy_is_most_precise () =
  let s = solve ~arith:`Copy struct_walk_src in
  (* optimistic: p + 1 still points at s.a only *)
  Alcotest.(check (list string)) "copy keeps x" [ "x" ] (pts_bases s "out")

(* stride must stay sound on random programs *)
let stride_soundness seed =
  let cfg = { Cgen.default with n_stmts = 50; cast_rate = 0.35 } in
  let src = Cgen.generate ~cfg ~seed () in
  let prog = Lower.compile ~file:(Printf.sprintf "<gen:%d>" seed) src in
  let solver =
    Core.Solver.run ~arith:`Stride ~strategy:(module Core.Common_init_seq)
      prog
  in
  let observed = Interp.Eval.run prog in
  match Interp.Oracle.uncovered solver observed with
  | [] -> true
  | missing ->
      QCheck2.Test.fail_reportf "seed %d: stride mode missed %d facts" seed
        (List.length missing)

let stride_soundness_test =
  QCheck2.Test.make ~name:"stride arithmetic stays sound" ~count:50
    (QCheck2.Gen.int_range 0 100_000)
    stride_soundness

let suite =
  [
    Helpers.tc "spread: struct-internal arithmetic" test_spread_on_struct;
    Helpers.tc "stride: struct-internal arithmetic still spreads"
      test_stride_on_struct;
    Helpers.tc "stride: array walks stay put" test_stride_on_array;
    Helpers.tc "scalar arrays: spread = stride" test_spread_on_array_equals_stride;
    Helpers.tc "unknown mode flags corrupted pointers" test_unknown_marks;
    Helpers.tc "other modes never flag" test_other_modes_have_no_marker;
    Helpers.tc "copy ablation is most precise" test_copy_is_most_precise;
    QCheck_alcotest.to_alcotest stride_soundness_test;
  ]
