(** Unit tests for the layout engine: sizes, alignment, offsets, and the
    array-canonicalization of byte offsets. *)

open Cfront

let comp ?(union = false) tag fields =
  let c = Ctype.fresh_comp ~tag ~is_union:union in
  c.Ctype.cfields <-
    Some
      (List.map
         (fun (fname, fty) -> { Ctype.fname; fty; fbits = None })
         fields);
  Ctype.Comp c

let l32 = Layout.ilp32

let l64 = Layout.lp64

let test_scalar_sizes () =
  Alcotest.(check int) "char" 1 (Layout.size_of l32 Ctype.char_t);
  Alcotest.(check int) "short" 2 (Layout.size_of l32 Ctype.short_t);
  Alcotest.(check int) "int" 4 (Layout.size_of l32 Ctype.int_t);
  Alcotest.(check int) "double" 8 (Layout.size_of l32 Ctype.double_t);
  Alcotest.(check int) "ptr32" 4 (Layout.size_of l32 (Ctype.Ptr Ctype.int_t));
  Alcotest.(check int) "ptr64" 8 (Layout.size_of l64 (Ctype.Ptr Ctype.int_t));
  Alcotest.(check int) "long32" 4 (Layout.size_of l32 Ctype.long_t);
  Alcotest.(check int) "long64" 8 (Layout.size_of l64 Ctype.long_t)

let test_struct_padding () =
  (* { char c; int i; } => c@0, 3 bytes padding, i@4, size 8 under ilp32 *)
  let s = comp "P" [ ("c", Ctype.char_t); ("i", Ctype.int_t) ] in
  Alcotest.(check int) "offset c" 0 (Layout.offset_of_field l32 s "c");
  Alcotest.(check int) "offset i" 4 (Layout.offset_of_field l32 s "i");
  Alcotest.(check int) "size" 8 (Layout.size_of l32 s);
  (* trailing padding: { int i; char c; } also sizes to 8 *)
  let s2 = comp "P2" [ ("i", Ctype.int_t); ("c", Ctype.char_t) ] in
  Alcotest.(check int) "trailing pad" 8 (Layout.size_of l32 s2)

let test_max_align_cap () =
  (* ilp32 caps alignment at 4: a double after a char lands at offset 4 *)
  let s = comp "D" [ ("c", Ctype.char_t); ("d", Ctype.double_t) ] in
  Alcotest.(check int) "double offset capped" 4
    (Layout.offset_of_field l32 s "d");
  Alcotest.(check int) "double offset lp64" 8
    (Layout.offset_of_field l64 s "d")

let test_union_layout () =
  let u =
    comp ~union:true "U" [ ("i", Ctype.int_t); ("d", Ctype.double_t) ]
  in
  Alcotest.(check int) "member offsets" 0 (Layout.offset_of_field l32 u "i");
  Alcotest.(check int) "member offsets d" 0 (Layout.offset_of_field l32 u "d");
  Alcotest.(check int) "union size = max member (aligned)" 8
    (Layout.size_of l32 u)

let test_array_sizes () =
  let a = Ctype.Array (Ctype.int_t, Some 10) in
  Alcotest.(check int) "int[10]" 40 (Layout.size_of l32 a);
  let s = comp "AS" [ ("c", Ctype.char_t); ("i", Ctype.int_t) ] in
  Alcotest.(check int) "struct[3]" 24 (Layout.size_of l32 (Ctype.Array (s, Some 3)))

let test_offset_of_path () =
  let inner = comp "I" [ ("a", Ctype.int_t); ("b", Ctype.int_t) ] in
  let outer =
    comp "O" [ ("x", Ctype.char_t); ("i", inner); ("z", Ctype.int_t) ]
  in
  Alcotest.(check int) "nested" 8 (Layout.offset_of_path l32 outer [ "i"; "b" ]);
  Alcotest.(check int) "empty path" 0 (Layout.offset_of_path l32 outer []);
  (* arrays contribute offset 0 (single representative element) *)
  let holder = comp "H" [ ("arr", Ctype.Array (inner, Some 5)); ("t", Ctype.int_t) ] in
  Alcotest.(check int) "through array" 4
    (Layout.offset_of_path l32 holder [ "arr"; "b" ])

let test_leaf_offsets () =
  let inner = comp "I2" [ ("a", Ctype.int_t); ("b", Ctype.Ptr Ctype.char_t) ] in
  let outer = comp "O2" [ ("i", inner); ("z", Ctype.int_t) ] in
  let leaves = Layout.leaf_offsets l32 outer in
  Alcotest.(check (list (pair (list string) int)))
    "paths and offsets"
    [ ([ "i"; "a" ], 0); ([ "i"; "b" ], 4); ([ "z" ], 8) ]
    (List.map (fun (p, o, _) -> (p, o)) leaves)

let test_canon_offset () =
  let elem = comp "E" [ ("x", Ctype.int_t); ("y", Ctype.int_t) ] in
  let holder =
    comp "H2" [ ("arr", Ctype.Array (elem, Some 4)); ("tail", Ctype.int_t) ]
  in
  (* offset 20 = element 2, field y -> canonical element 0's y at 4 *)
  Alcotest.(check int) "fold into representative" 4
    (Layout.canon_offset l32 holder 20);
  (* offsets already canonical stay put *)
  Alcotest.(check int) "canonical" 4 (Layout.canon_offset l32 holder 4);
  (* tail field after the array: 4 elements * 8 bytes = 32 *)
  Alcotest.(check int) "after array" 32 (Layout.canon_offset l32 holder 32);
  (* out of bounds: unchanged *)
  Alcotest.(check int) "oob" 99 (Layout.canon_offset l32 holder 99)

let test_incomplete_struct_errors () =
  let c = Ctype.fresh_comp ~tag:"Inc" ~is_union:false in
  match Layout.size_of l32 (Ctype.Comp c) with
  | exception Diag.Error _ -> ()
  | _ -> Alcotest.fail "expected error for incomplete struct"

let test_layouts_differ () =
  let s = comp "X" [ ("p", Ctype.Ptr Ctype.int_t); ("q", Ctype.Ptr Ctype.int_t) ] in
  Alcotest.(check int) "ilp32 q" 4 (Layout.offset_of_field l32 s "q");
  Alcotest.(check int) "lp64 q" 8 (Layout.offset_of_field l64 s "q");
  Alcotest.(check int) "word16 q" 2 (Layout.offset_of_field Layout.word16 s "q")

let suite =
  [
    Helpers.tc "scalar sizes" test_scalar_sizes;
    Helpers.tc "struct padding" test_struct_padding;
    Helpers.tc "alignment cap" test_max_align_cap;
    Helpers.tc "union layout" test_union_layout;
    Helpers.tc "array sizes" test_array_sizes;
    Helpers.tc "offset of path" test_offset_of_path;
    Helpers.tc "leaf offsets" test_leaf_offsets;
    Helpers.tc "canonical offsets" test_canon_offset;
    Helpers.tc "incomplete struct errors" test_incomplete_struct_errors;
    Helpers.tc "layouts disagree" test_layouts_differ;
  ]
