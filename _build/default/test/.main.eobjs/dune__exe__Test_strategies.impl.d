test/test_strategies.ml: Actx Alcotest Cell Cfront Collapse_always Collapse_on_cast Common_init_seq Core Ctype Cvar Graph Helpers List Offsets
