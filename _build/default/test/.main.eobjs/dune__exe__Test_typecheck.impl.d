test/test_typecheck.ml: Alcotest Cfront Ctype Diag Helpers List Option Parser String Tast Typecheck
