test/test_ctype.ml: Alcotest Cfront Ctype Diag Helpers List
