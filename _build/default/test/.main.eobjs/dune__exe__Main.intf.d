test/main.mli:
