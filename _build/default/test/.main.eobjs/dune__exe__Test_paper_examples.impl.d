test/test_paper_examples.ml: Alcotest Helpers List String
