test/test_properties.ml: Alcotest Cfront Cgen Core Cvar Diag Interp List Lower Nast Norm Printf QCheck2 QCheck_alcotest String
