test/test_summaries.ml: Alcotest Core Helpers List Norm String
