test/test_strategy_properties.ml: Actx Cell Cfront Collapse_on_cast Common_init_seq Core Ctype Cvar Graph Layout List Offsets Printf QCheck2 QCheck_alcotest Strategy String
