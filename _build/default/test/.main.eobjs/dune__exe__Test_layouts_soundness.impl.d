test/test_layouts_soundness.ml: Alcotest Cfront Cgen Core Diag Interp Layout List Lower Norm Printf QCheck2 QCheck_alcotest String
