test/test_arith_modes.ml: Alcotest Cfront Cgen Core Cvar Helpers Interp List Lower Nast Norm Printf QCheck2 QCheck_alcotest
