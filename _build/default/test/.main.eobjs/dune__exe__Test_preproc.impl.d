test/test_preproc.ml: Alcotest Cfront Diag Helpers List Preproc String Token
