test/test_cli.ml: Alcotest Buffer Filename Helpers String Sys Unix
