test/test_clients.ml: Alcotest Clients Core Helpers List Lower Nast Norm Option
