test/test_lower.ml: Alcotest Cfront Ctype Cvar Helpers List Lower Nast Norm Option Suite
