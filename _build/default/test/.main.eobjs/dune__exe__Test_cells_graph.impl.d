test/test_cells_graph.ml: Alcotest Cell Cfront Core Ctype Cvar Graph Helpers List
