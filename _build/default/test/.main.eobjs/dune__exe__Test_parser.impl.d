test/test_parser.ml: Alcotest Ast Cfront Ctype Diag Helpers List Option Parser Printf String
