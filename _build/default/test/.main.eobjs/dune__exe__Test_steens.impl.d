test/test_steens.ml: Alcotest Cfront Cgen Core Cvar Fmt Helpers Interp Layout List Lower Norm Printf QCheck2 QCheck_alcotest Steens Suite
