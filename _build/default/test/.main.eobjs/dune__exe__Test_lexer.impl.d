test/test_lexer.ml: Alcotest Cfront Diag Helpers Lexer List Srcloc Token
