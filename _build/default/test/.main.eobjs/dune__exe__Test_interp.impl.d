test/test_interp.ml: Alcotest Cfront Ctype Cvar Helpers Interp Layout List Lower Norm
