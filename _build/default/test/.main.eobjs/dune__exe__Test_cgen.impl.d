test/test_cgen.ml: Alcotest Cfront Cgen Core Helpers Norm String
