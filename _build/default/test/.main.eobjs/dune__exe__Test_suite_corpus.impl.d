test/test_suite_corpus.ml: Alcotest Cfront Core Cvar Diag Fmt Helpers Interp List Lower Nast Norm String Suite
