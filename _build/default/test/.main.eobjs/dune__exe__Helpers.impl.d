test/helpers.ml: Alcotest Cfront Core Cvar List Lower Nast Norm
