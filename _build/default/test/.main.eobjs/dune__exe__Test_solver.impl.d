test/test_solver.ml: Alcotest Cfront Helpers List String
