test/test_layout.ml: Alcotest Cfront Ctype Diag Helpers Layout List
