test/test_layout_properties.ml: Cfront Ctype Layout List QCheck2 QCheck_alcotest Test_strategy_properties
