(** Property-based tests of the strategy functions over randomly
    generated struct types — algebraic laws that must hold for any types,
    not just the corpus's:

    - [normalize] is idempotent and lands on a leaf (or union) cell;
    - [lookup] at the object's declared type is exact (a singleton);
    - CIS lookup results are a subset of Collapse-on-Cast's;
    - [resolve] destination/source components come from the respective
      objects, and same-type resolve pairs corresponding fields;
    - Offsets cells stay within [0, size]. *)

open Cfront
open Core

let ctx = Actx.create ()

(* ------------------------------------------------------------------ *)
(* Random type generation                                              *)
(* ------------------------------------------------------------------ *)

let gen_scalar : Ctype.t QCheck2.Gen.t =
  QCheck2.Gen.oneofl
    [
      Ctype.int_t; Ctype.char_t; Ctype.double_t; Ctype.long_t;
      Ctype.Ptr Ctype.int_t; Ctype.Ptr Ctype.char_t;
      Ctype.Ptr (Ctype.Ptr Ctype.int_t);
    ]

let counter = ref 0

(* a random struct type of the given depth; depth 0 is a scalar *)
let rec gen_ty depth : Ctype.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  if depth = 0 then gen_scalar
  else
    frequency
      [
        (2, gen_scalar);
        ( 3,
          let* n_fields = int_range 1 4 in
          let* fields = list_size (return n_fields) (gen_ty (depth - 1)) in
          incr counter;
          let comp =
            Ctype.fresh_comp
              ~tag:(Printf.sprintf "R%d" !counter)
              ~is_union:false
          in
          comp.Ctype.cfields <-
            Some
              (List.mapi
                 (fun i fty ->
                   { Ctype.fname = Printf.sprintf "m%d" i; fty; fbits = None })
                 fields);
          return (Ctype.Comp comp) );
        ( 1,
          let* elem = gen_ty (depth - 1) in
          let* n = int_range 1 4 in
          return (Ctype.Array (elem, Some n)) );
      ]

let gen_struct : Ctype.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* n_fields = int_range 1 5 in
  let* fields = list_size (return n_fields) (gen_ty 2) in
  incr counter;
  let comp =
    Ctype.fresh_comp ~tag:(Printf.sprintf "G%d" !counter) ~is_union:false
  in
  comp.Ctype.cfields <-
    Some
      (List.mapi
         (fun i fty ->
           { Ctype.fname = Printf.sprintf "f%d" i; fty; fbits = None })
         fields);
  QCheck2.Gen.return (Ctype.Comp comp)

let gen_var_of_ty name ty = Cvar.fresh ~name ~ty ~kind:Cvar.Global

(* a struct type and a leaf path within it *)
let gen_struct_and_leaf : (Ctype.t * Ctype.path) QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* ty = gen_struct in
  let leaves = Ctype.leaf_paths ty in
  let* i = int_range 0 (List.length leaves - 1) in
  return (ty, List.nth leaves i)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let path_strategies : (module Strategy.S) list =
  [ (module Collapse_on_cast); (module Common_init_seq) ]

let prop_normalize_idempotent (ty, leaf) =
  let v = gen_var_of_ty "v" ty in
  List.for_all
    (fun (module S : Strategy.S) ->
      let c1 = S.normalize ctx v leaf in
      match c1.Cell.sel with
      | Cell.Path p ->
          let c2 = S.normalize ctx v p in
          Cell.equal c1 c2
          || QCheck2.Test.fail_reportf "%s: normalize not idempotent on %s"
               S.id (Cell.to_string c1)
      | Cell.Off _ -> true)
    path_strategies

let prop_normalize_is_leaf (ty, _) =
  let v = gen_var_of_ty "v" ty in
  let c = Common_init_seq.normalize ctx v [] in
  match c.Cell.sel with
  | Cell.Path p ->
      let sub = Ctype.strip_arrays (Ctype.type_at_path ty p) in
      (* the canonical cell is never a (non-empty, non-union) struct *)
      (not (Ctype.is_struct sub))
      || Ctype.fields_of sub = []
      || QCheck2.Test.fail_reportf "normalize landed on struct cell %s"
           (Cell.to_string c)
  | Cell.Off _ -> true

let prop_lookup_exact_at_own_type (ty, leaf) =
  let v = gen_var_of_ty "v" ty in
  List.for_all
    (fun (module S : Strategy.S) ->
      let target = S.normalize ctx v [] in
      let got = S.lookup ctx ty leaf target in
      match got with
      | [ c ] -> Cell.equal c (S.normalize ctx v leaf)
      | _ ->
          QCheck2.Test.fail_reportf
            "%s: lookup at declared type returned %d cells" S.id
            (List.length got))
    path_strategies

let prop_cis_subset_of_coc ((ty1, _), (ty2, leaf2)) =
  (* deref at ty1 of a pointer landing on ty2's normalized cell *)
  let v = gen_var_of_ty "v" ty2 in
  let target_cis = Common_init_seq.normalize ctx v [] in
  let target_coc = Collapse_on_cast.normalize ctx v [] in
  ignore leaf2;
  let alphas = Ctype.leaf_paths ty1 in
  List.for_all
    (fun alpha ->
      let cis = Common_init_seq.lookup ctx ty1 alpha target_cis in
      let coc = Collapse_on_cast.lookup ctx ty1 alpha target_coc in
      List.for_all (fun c -> List.exists (Cell.equal c) coc) cis
      ||
      let s cells = String.concat "," (List.map Cell.to_string cells) in
      QCheck2.Test.fail_reportf "cis {%s} ⊄ coc {%s} for %s in %s" (s cis)
        (s coc)
        (Ctype.path_to_string alpha)
        (Ctype.to_string ty1))
    alphas

let prop_resolve_components ((ty1, _), (ty2, _)) =
  let d = gen_var_of_ty "d" ty1 in
  let s = gen_var_of_ty "s" ty2 in
  let g = Graph.create () in
  List.for_all
    (fun (module S : Strategy.S) ->
      let pairs =
        S.resolve ctx g (S.normalize ctx d []) (S.normalize ctx s []) ty1
      in
      List.for_all
        (fun ((cd : Cell.t), (cs : Cell.t)) ->
          Cvar.equal cd.Cell.base d && Cvar.equal cs.Cell.base s)
        pairs
      || QCheck2.Test.fail_reportf "%s: resolve mixed up objects" S.id)
    path_strategies

let prop_resolve_same_type_is_field_for_field (ty, _) =
  let a = gen_var_of_ty "a" ty in
  let b = gen_var_of_ty "b" ty in
  let g = Graph.create () in
  List.for_all
    (fun (module S : Strategy.S) ->
      let pairs =
        S.resolve ctx g (S.normalize ctx a []) (S.normalize ctx b []) ty
      in
      List.for_all
        (fun ((cd : Cell.t), (cs : Cell.t)) ->
          match (cd.Cell.sel, cs.Cell.sel) with
          | Cell.Path pd, Cell.Path ps -> pd = ps
          | _ -> false)
        pairs
      ||
      QCheck2.Test.fail_reportf "%s: same-type resolve not field-for-field"
        S.id)
    path_strategies

let prop_offsets_in_bounds (ty, leaf) =
  let v = gen_var_of_ty "v" ty in
  let size = Layout.size_of ctx.Actx.layout ty in
  let check (c : Cell.t) =
    match c.Cell.sel with
    | Cell.Off k -> k >= 0 && k <= size
    | Cell.Path _ -> false
  in
  let n = Offsets.normalize ctx v leaf in
  let looked = Offsets.lookup ctx ty leaf (Offsets.normalize ctx v []) in
  let all = Offsets.all_cells ctx v in
  List.for_all check ((n :: looked) @ all)
  || QCheck2.Test.fail_reportf "offsets out of bounds for %s"
       (Ctype.to_string ty)

let prop_all_cells_cover_leaves (ty, _) =
  let v = gen_var_of_ty "v" ty in
  List.for_all
    (fun (module S : Strategy.S) ->
      let cells = S.all_cells ctx v in
      (* every normalized leaf is among all_cells *)
      List.for_all
        (fun leaf ->
          let c = S.normalize ctx v leaf in
          List.exists (Cell.equal c) cells)
        (Ctype.leaf_paths ty)
      || QCheck2.Test.fail_reportf "%s: all_cells misses a leaf" S.id)
    path_strategies

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)
(* ------------------------------------------------------------------ *)

let t name gen prop = QCheck2.Test.make ~name ~count:200 gen prop

let pair_gen = QCheck2.Gen.pair gen_struct_and_leaf gen_struct_and_leaf

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      t "normalize is idempotent" gen_struct_and_leaf prop_normalize_idempotent;
      t "normalize lands on a leaf" gen_struct_and_leaf prop_normalize_is_leaf;
      t "lookup at the declared type is exact" gen_struct_and_leaf
        prop_lookup_exact_at_own_type;
      t "cis lookup ⊆ collapse-on-cast lookup" pair_gen prop_cis_subset_of_coc;
      t "resolve components stay in their objects" pair_gen
        prop_resolve_components;
      t "same-type resolve is field-for-field" gen_struct_and_leaf
        prop_resolve_same_type_is_field_for_field;
      t "offsets cells stay in bounds" gen_struct_and_leaf
        prop_offsets_in_bounds;
      t "all_cells covers every leaf" gen_struct_and_leaf
        prop_all_cells_cover_leaves;
    ]
