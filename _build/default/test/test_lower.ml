(** Unit tests for the normalizer: shapes of the five paper forms, deref
    flagging, cast temporaries, heap typing, and initializer lowering. *)

open Cfront
open Norm

let lower src : Nast.program = Lower.compile ~file:"<lower>" src

let main_stmts src : Nast.stmt list =
  let prog = lower src in
  match Nast.func_by_name prog "main" with
  | Some f -> f.Nast.fstmts
  | None -> Alcotest.fail "no main"

let kinds stmts =
  List.map
    (fun (s : Nast.stmt) ->
      match s.Nast.kind with
      | Nast.Addr _ -> "addr"
      | Nast.Addr_deref _ -> "addr-deref"
      | Nast.Copy _ -> "copy"
      | Nast.Load _ -> "load"
      | Nast.Store _ -> "store"
      | Nast.Arith _ -> "arith"
      | Nast.Call _ -> "call")
    stmts

let check_kinds name src expected =
  Alcotest.(check (list string)) name expected (kinds (main_stmts src))

let test_basic_forms () =
  check_kinds "address-of" "int x, *p; void main(void){ p = &x; }" [ "addr" ];
  check_kinds "copy" "int a, b; void main(void){ a = b; }" [ "copy" ];
  check_kinds "load" "int *p, x; void main(void){ x = *p; }" [ "load" ];
  check_kinds "store" "int *p, x; void main(void){ *p = x; }" [ "store" ];
  check_kinds "field read stays a copy"
    "struct S { int f; } s; int x; void main(void){ x = s.f; }"
    [ "copy" ]

let test_field_write_via_addr () =
  (* s.f = x lowers to tmp = &s.f; *tmp = x (form 1 + form 5) *)
  check_kinds "field write"
    "struct S { int f; } s; int x; void main(void){ s.f = x; }"
    [ "addr"; "store" ]

let test_arrow_chain () =
  (* p->next->prev = p:
       t1 = &( *p).next ; t2 = *t1 ; t3 = &( *t2).prev ; *t3 = p *)
  check_kinds "arrow chain"
    "struct N { struct N *next; struct N *prev; } *p;\n\
     void main(void){ p->next->prev = p; }"
    [ "addr-deref"; "load"; "addr-deref"; "store" ]

let test_deref_flags () =
  let stmts =
    main_stmts
      "struct N { struct N *next; } *p; int x, *q;\n\
       void main(void){ q = &x; p = p->next; }"
  in
  let flags = List.map (fun (s : Nast.stmt) -> s.Nast.is_source_deref) stmts in
  (* q = &x (addr, not deref); then addr-deref (deref!) + load (the load
     reads through the already-resolved temp: not counted again) *)
  Alcotest.(check (list bool)) "deref flags" [ false; true; false ] flags

let test_cast_temp_types () =
  (* storing q through a char-pointer-pointer cast of p must go through a temp declared at the cast type *)
  let stmts =
    main_stmts "int *p; char *q; void main(void){ *(char **)p = q; }"
  in
  let store_ptr_ty =
    List.find_map
      (fun (s : Nast.stmt) ->
        match s.Nast.kind with
        | Nast.Store (ptr, _) -> Some (Ctype.to_string ptr.Cvar.vty)
        | _ -> None)
      stmts
  in
  Alcotest.(check (option string)) "declared pointee" (Some "char**")
    store_ptr_ty

let test_no_temp_for_same_type_cast () =
  check_kinds "identity cast" "int *p, *q; void main(void){ p = (int *)q; }"
    [ "copy" ]

let test_malloc_heap_typing () =
  let prog =
    lower
      "void *malloc(unsigned long);\n\
       struct S { int f; } *p;\n\
       char *c;\n\
       void main(void){ p = (struct S *)malloc(4); c = malloc(1); }"
  in
  let heaps =
    List.filter_map
      (fun (v : Cvar.t) ->
        match v.Cvar.vkind with
        | Cvar.Heap _ -> Some (Ctype.to_string v.Cvar.vty)
        | _ -> None)
      prog.Nast.pall_vars
  in
  Alcotest.(check (list string)) "heap object types" [ "char"; "struct S" ]
    (List.sort compare heaps)

let test_string_literal_dedup () =
  let prog =
    lower
      "char *a, *b, *c;\n\
       void main(void){ a = \"same\"; b = \"same\"; c = \"other\"; }"
  in
  let strs =
    List.filter
      (fun (v : Cvar.t) ->
        match v.Cvar.vkind with Cvar.Strlit _ -> true | _ -> false)
      prog.Nast.pall_vars
  in
  Alcotest.(check int) "two distinct literals" 2 (List.length strs)

let test_compound_assign_is_arith () =
  check_kinds "p += n" "int *p, n; void main(void){ p += n; }"
    [ "arith"; "arith"; "copy" ]

let test_incdec () =
  (* p++ reads p, makes an arith result, writes it back *)
  check_kinds "p++" "int *p; void main(void){ p++; }" [ "arith"; "copy" ]

let test_conditional_merges () =
  check_kinds "ternary" "int x, y, *p; void main(void){ p = x ? &x : &y; }"
    [ "addr"; "addr"; "copy"; "copy"; "copy" ]

let test_call_lowering () =
  let stmts =
    main_stmts
      "int *id(int *p) { return p; } int x, *r;\n\
       void main(void){ r = id(&x); }"
  in
  (* &x into an arg temp, the call, then the result copy *)
  Alcotest.(check (list string)) "call shape" [ "addr"; "call"; "copy" ]
    (kinds stmts)

let test_global_initializers () =
  let prog =
    lower "int x; int *gp = &x; struct S { int *f; } s = { &x };"
  in
  Alcotest.(check bool) "init statements exist" true
    (List.length prog.Nast.pinit >= 2)

let test_struct_return () =
  let prog =
    lower
      "struct P { int *a; } mk(void) { struct P p; return p; }\n\
       struct P g;\n\
       void main(void){ g = mk(); }"
  in
  let mk = Option.get (Nast.func_by_name prog "mk") in
  Alcotest.(check bool) "has return slot" true (mk.Nast.fret <> None)

let test_stmt_ids_unique () =
  let prog = lower (match Suite.find "bc" with Some p -> p.Suite.source | None -> "") in
  let ids = List.map (fun (s : Nast.stmt) -> s.Nast.id) (Nast.all_stmts prog) in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let suite =
  [
    Helpers.tc "five basic forms" test_basic_forms;
    Helpers.tc "field writes go through &" test_field_write_via_addr;
    Helpers.tc "arrow chains" test_arrow_chain;
    Helpers.tc "source-deref flags" test_deref_flags;
    Helpers.tc "casts materialize typed temps" test_cast_temp_types;
    Helpers.tc "identity casts add no temp" test_no_temp_for_same_type_cast;
    Helpers.tc "malloc heap objects take receiver type" test_malloc_heap_typing;
    Helpers.tc "string literals deduplicate" test_string_literal_dedup;
    Helpers.tc "compound assignment is arithmetic" test_compound_assign_is_arith;
    Helpers.tc "increment/decrement" test_incdec;
    Helpers.tc "conditional expressions merge" test_conditional_merges;
    Helpers.tc "call lowering" test_call_lowering;
    Helpers.tc "global initializers lower" test_global_initializers;
    Helpers.tc "struct-valued returns" test_struct_return;
    Helpers.tc "statement ids unique" test_stmt_ids_unique;
  ]
