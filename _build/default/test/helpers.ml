(** Shared helpers for the test suite. *)

open Cfront
open Norm

let compile ?layout ?defines ?resolve src : Nast.program =
  Lower.compile ?layout ?defines ?resolve ~file:"<test>" src

let analyze ?layout ~strategy src : Core.Analysis.result =
  Core.Analysis.run_source ?layout ~strategy ~file:"<test>" src

let strategy id : (module Core.Strategy.S) =
  match Core.Analysis.strategy_of_id id with
  | Some s -> s
  | None -> Alcotest.failf "unknown strategy %s" id

(** Expanded points-to targets of [name], rendered as strings, sorted. *)
let targets (r : Core.Analysis.result) name : string list =
  let prog = r.Core.Analysis.solver.Core.Solver.prog in
  let v =
    List.find_opt
      (fun v -> v.Cvar.vname = name || Cvar.qualified_name v = name)
      prog.Nast.pall_vars
  in
  match v with
  | None -> Alcotest.failf "no variable named %s" name
  | Some v ->
      Core.Metrics.expanded_pts r.Core.Analysis.solver v
      |> Core.Cell.Set.elements
      |> List.map Core.Cell.to_string
      |> List.sort compare

(** Distinct base-object names pointed to by [name], sorted. *)
let target_bases (r : Core.Analysis.result) name : string list =
  let prog = r.Core.Analysis.solver.Core.Solver.prog in
  let v =
    List.find_opt
      (fun v -> v.Cvar.vname = name || Cvar.qualified_name v = name)
      prog.Nast.pall_vars
  in
  match v with
  | None -> Alcotest.failf "no variable named %s" name
  | Some v ->
      Core.Metrics.expanded_pts r.Core.Analysis.solver v
      |> Core.Cell.Set.elements
      |> List.map (fun (c : Core.Cell.t) ->
             Cvar.qualified_name c.Core.Cell.base)
      |> List.sort_uniq compare

let slist = Alcotest.(slist string compare)

let check_targets r name expected =
  Alcotest.check slist (name ^ " targets") expected (targets r name)

let check_bases r name expected =
  Alcotest.check slist (name ^ " target objects") expected (target_bases r name)

let tc name f = Alcotest.test_case name `Quick f
