(** Smoke tests driving the [structcast] command-line executable.

    The tests locate the built binary inside dune's sandbox (it is listed
    as a test dependency in [test/dune]) and check each subcommand and
    print mode produces plausible output and exit codes. *)

let exe = "../bin/structcast.exe"

let run_capture args : int * string =
  let cmd = Filename.quote_command exe args in
  let ic = Unix.open_process_in (cmd ^ " 2>&1") in
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  let code =
    match Unix.close_process_in ic with
    | Unix.WEXITED n -> n
    | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> -1
  in
  (code, Buffer.contents buf)

let check_contains name out needle =
  let contains s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  if not (contains out needle) then
    Alcotest.failf "%s: output lacks %S:\n%s" name needle out

let test_corpus_listing () =
  let code, out = run_capture [ "corpus" ] in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "corpus" out "anagram";
  check_contains "corpus" out "description"

let test_analyze_metrics () =
  let code, out = run_capture [ "analyze"; "bc"; "-p"; "metrics"; "-s"; "cis" ] in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "metrics" out "avg deref pts size";
  check_contains "metrics" out "Common Initial Sequence"

let test_analyze_points_to () =
  let code, out =
    run_capture [ "analyze"; "wc"; "-p"; "points-to"; "-s"; "offsets" ]
  in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "points-to" out "->"

let test_analyze_dot () =
  let code, out = run_capture [ "analyze"; "li"; "-p"; "dot" ] in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "dot" out "digraph points_to"

let test_compare () =
  let code, out = run_capture [ "compare"; "sc" ] in
  Alcotest.(check int) "exit code" 0 code;
  check_contains "compare" out "Collapse Always";
  check_contains "compare" out "steensgaard"

let test_bad_strategy_fails () =
  let code, out = run_capture [ "analyze"; "bc"; "-s"; "nope" ] in
  Alcotest.(check bool) "nonzero exit" true (code <> 0);
  check_contains "error" out "unknown strategy"

let test_bad_file_fails () =
  let code, _ = run_capture [ "analyze"; "/no/such/file.c" ] in
  Alcotest.(check bool) "nonzero exit" true (code <> 0)

let suite =
  if Sys.file_exists exe then
    [
      Helpers.tc "corpus listing" test_corpus_listing;
      Helpers.tc "analyze --print metrics" test_analyze_metrics;
      Helpers.tc "analyze --print points-to" test_analyze_points_to;
      Helpers.tc "analyze --print dot" test_analyze_dot;
      Helpers.tc "compare" test_compare;
      Helpers.tc "unknown strategy fails" test_bad_strategy_fails;
      Helpers.tc "missing file fails" test_bad_file_fails;
    ]
  else
    [ Alcotest.test_case "cli binary not built; skipped" `Quick (fun () -> ()) ]
