(** The benchmark corpus must compile, normalize, and analyze cleanly
    under every strategy, with no unknown external functions. *)

open Cfront
open Norm

let compile_program (p : Suite.program) : Nast.program =
  try Lower.compile ~file:p.Suite.name p.Suite.source
  with Diag.Error e ->
    Alcotest.failf "%s: %s" p.Suite.name (Fmt.str "%a" Diag.pp_payload e)

let test_compiles () =
  List.iter
    (fun p ->
      let prog = compile_program p in
      if Nast.stmt_count prog = 0 then
        Alcotest.failf "%s: no statements produced" p.Suite.name)
    Suite.programs

let test_analyzes_everywhere () =
  List.iter
    (fun p ->
      let prog = compile_program p in
      List.iter
        (fun strategy ->
          let r = Core.Analysis.run ~strategy prog in
          let m = r.Core.Analysis.metrics in
          if m.Core.Metrics.unknown_externs <> [] then
            Alcotest.failf "%s: unknown externs %s" p.Suite.name
              (String.concat ", " m.Core.Metrics.unknown_externs);
          if m.Core.Metrics.deref_sites = 0 then
            Alcotest.failf "%s: no deref sites measured" p.Suite.name)
        Core.Analysis.strategies)
    Suite.programs

let test_shape () =
  (* the corpus mirrors the paper: 8 cast-free programs, 12 with casts *)
  Alcotest.(check int) "cast-free programs" 8 (List.length Suite.non_casting);
  Alcotest.(check int) "casting programs" 12 (List.length Suite.casting)

let test_casting_flag_consistent () =
  (* programs marked cast-free must show no struct-involving type
     mismatches under Collapse-on-Cast instrumentation *)
  List.iter
    (fun p ->
      let prog = compile_program p in
      let r =
        Core.Analysis.run ~strategy:(module Core.Collapse_on_cast) prog
      in
      let f = r.Core.Analysis.metrics.Core.Metrics.figures3 in
      if
        (not p.Suite.has_struct_cast)
        && f.Core.Actx.pct_lookup_mismatch > 0.0
      then
        Alcotest.failf "%s marked cast-free but has %.1f%% lookup mismatches"
          p.Suite.name f.Core.Actx.pct_lookup_mismatch)
    Suite.programs

let test_soundness_on_corpus () =
  (* run the concrete interpreter over each corpus program and check the
     CIS instance covers every observed pointer *)
  List.iter
    (fun p ->
      let prog = compile_program p in
      let solver =
        Core.Solver.run ~strategy:(module Core.Common_init_seq) prog
      in
      let observed = Interp.Eval.run prog in
      match Interp.Oracle.uncovered solver observed with
      | [] -> ()
      | missing ->
          Alcotest.failf "%s: %d uncovered facts, e.g. %s" p.Suite.name
            (List.length missing)
            (Fmt.str "%a" Interp.Oracle.pp_observation (List.hd missing)))
    Suite.programs

(* On programs with no structure casting, all casting-aware instances
   should agree at the granularity of pointed-to base objects: every
   lookup/resolve is exact, so only the cell naming differs. *)
let test_cast_free_instances_agree () =
  let base_sets strategy prog =
    let solver = Core.Solver.run ~strategy prog in
    List.map
      (fun (_, p) ->
        Core.Metrics.expanded_pts solver p
        |> Core.Cell.Set.elements
        |> List.map (fun (c : Core.Cell.t) ->
               Cvar.qualified_name c.Core.Cell.base)
        |> List.sort_uniq compare)
      (Core.Metrics.deref_sites prog)
  in
  List.iter
    (fun p ->
      let prog = compile_program p in
      let coc = base_sets (module Core.Collapse_on_cast) prog in
      let cis = base_sets (module Core.Common_init_seq) prog in
      let off = base_sets (module Core.Offsets) prog in
      if not (coc = cis && cis = off) then
        Alcotest.failf "%s: instances disagree on a cast-free program"
          p.Suite.name)
    Suite.non_casting

let suite =
  [
    Helpers.tc "all corpus programs compile" test_compiles;
    Helpers.tc "cast-free programs: instances agree"
      test_cast_free_instances_agree;
    Helpers.tc "all programs analyze under all strategies"
      test_analyzes_everywhere;
    Helpers.tc "corpus shape matches the paper (8 + 12)" test_shape;
    Helpers.tc "cast-free programs show no struct mismatches"
      test_casting_flag_consistent;
    Helpers.tc "CIS covers concrete execution of the corpus"
      test_soundness_on_corpus;
  ]
