(** Unit tests for the token-level preprocessor. *)

open Cfront

let pp ?defines ?resolve src : string =
  Preproc.run ?defines ?resolve ~file:"<pp>" src
  |> List.filter (fun t -> t.Token.tok <> Token.Eof)
  |> List.map (fun t -> Token.to_source t.Token.tok)
  |> String.concat " "

let check name ?defines ?resolve src expected =
  Alcotest.(check string) name expected (pp ?defines ?resolve src)

let test_object_macro () =
  check "simple" "#define N 42\nint a[N];" "int a [ 42 ] ;";
  check "multi-token" "#define PAIR 1, 2\nf(PAIR);" "f ( 1 , 2 ) ;";
  check "nested" "#define A B\n#define B 7\nA" "7";
  check "empty body" "#define NOTHING\nx NOTHING y" "x y"

let test_function_macro () =
  check "one arg" "#define SQ(x) ((x)*(x))\nSQ(3)" "( ( 3 ) * ( 3 ) )";
  check "two args" "#define ADD(a,b) a + b\nADD(1, 2)" "1 + 2";
  check "nested call" "#define ID(x) x\nID(ID(5))" "5";
  check "args with parens" "#define F(x) x\nF((1,2))" "( 1 , 2 )";
  check "zero args" "#define Z() 9\nZ()" "9";
  (* a function-like macro name not followed by '(' is left alone *)
  check "name alone" "#define G(x) x\nint G;" "int G ;";
  (* #define F (x) — space means object-like with body "(x)" *)
  check "space before paren" "#define H (y)\nH" "( y )"

let test_recursion_guard () =
  check "self-reference" "#define X X + 1\nX" "X + 1";
  check "mutual" "#define A B\n#define B A\nA" "A"

let test_stringize_and_paste () =
  check "stringize" "#define STR(x) #x\nSTR(hello world)" "\"hello world\"";
  check "paste" "#define CAT(a,b) a##b\nCAT(foo, bar)" "foobar";
  check "paste numbers" "#define MK(n) x##n\nMK(1) = 3;" "x1 = 3 ;"

let test_conditionals () =
  check "ifdef taken" "#define YES 1\n#ifdef YES\na\n#endif\nb" "a b";
  check "ifdef not taken" "#ifdef NO\na\n#endif\nb" "b";
  check "ifndef" "#ifndef NO\na\n#endif" "a";
  check "else" "#ifdef NO\na\n#else\nc\n#endif" "c";
  check "elif"
    "#define V 2\n#if V == 1\na\n#elif V == 2\nb\n#elif V == 3\nc\n#endif" "b";
  check "nested" "#ifdef NO\n#ifdef ALSO_NO\nx\n#endif\ny\n#else\nz\n#endif" "z";
  check "if arithmetic" "#if 2 * 3 > 5 && 1\nyes\n#endif" "yes";
  check "if defined" "#define D\n#if defined(D) && !defined(E)\nok\n#endif" "ok";
  check "if ternary" "#if 1 ? 0 : 1\na\n#else\nb\n#endif" "b";
  check "undef" "#define N 1\n#undef N\n#ifdef N\na\n#else\nb\n#endif" "b"

let test_initial_defines () =
  check "from the API" ~defines:[ ("MODE", "3") ] "int m = MODE;" "int m = 3 ;"

let test_include () =
  let resolve = function
    | "defs.h" -> Some "#define FROM_HEADER 99\nint header_var;"
    | "nested.h" -> Some "#include \"defs.h\"\nint nested_var;"
    | _ -> None
  in
  check "include" ~resolve "#include \"defs.h\"\nint x = FROM_HEADER;"
    "int header_var ; int x = 99 ;";
  check "nested include" ~resolve "#include \"nested.h\""
    "int header_var ; int nested_var ;";
  check "angle include" ~resolve "#include <defs.h>\nFROM_HEADER" "int header_var ; 99"

let test_pragma_ignored () = check "pragma" "#pragma once\nx" "x"

let expect_error name ?resolve src =
  match Preproc.run ?resolve ~file:"<pp>" src with
  | exception Diag.Error _ -> ()
  | _ -> Alcotest.failf "%s: expected a preprocessor error" name

let test_errors () =
  expect_error "missing include" "#include \"nope.h\"";
  expect_error "error directive" "#error broken";
  expect_error "unterminated if" "#ifdef X\nint a;";
  expect_error "else without if" "#else";
  expect_error "endif without if" "#endif";
  expect_error "wrong arity" "#define F(a,b) a\nF(1)";
  expect_error "unknown directive" "#frobnicate"

let test_macro_call_across_lines () =
  check "multiline args" "#define ADD(a,b) a + b\nADD(1,\n2)" "1 + 2"

let suite =
  [
    Helpers.tc "object-like macros" test_object_macro;
    Helpers.tc "function-like macros" test_function_macro;
    Helpers.tc "recursion guard" test_recursion_guard;
    Helpers.tc "stringize and paste" test_stringize_and_paste;
    Helpers.tc "conditionals" test_conditionals;
    Helpers.tc "initial defines" test_initial_defines;
    Helpers.tc "includes (virtual resolver)" test_include;
    Helpers.tc "pragma ignored" test_pragma_ignored;
    Helpers.tc "errors" test_errors;
    Helpers.tc "macro calls across lines" test_macro_call_across_lines;
  ]
