(** One-call driver: pick a strategy, run the solver, collect metrics. *)

open Cfront
open Norm

val strategies : (module Strategy.S) list
(** The four framework instances, in the paper's precision order:
    Collapse Always, Collapse on Cast, Common Initial Sequence,
    Offsets. *)

val strategy_ids : string list

val strategy_of_id : string -> (module Strategy.S) option
(** Look up by short id: ["collapse-always"], ["collapse-on-cast"],
    ["cis"], ["offsets"]. *)

type result = {
  solver : Solver.t;
  metrics : Metrics.summary;
  time_s : float;  (** CPU seconds spent solving *)
}

val run :
  ?layout:Layout.config -> strategy:(module Strategy.S) -> Nast.program ->
  result
(** Analyze a normalized program. *)

val run_source :
  ?layout:Layout.config ->
  ?defines:(string * string) list ->
  ?resolve:(string -> string option) ->
  strategy:(module Strategy.S) ->
  file:string ->
  string ->
  result
(** Parse, type-check, lower, and analyze a C source string.
    @raise Diag.Error on front-end failures. *)

val pts_of_var : result -> string -> Cell.t list
(** Points-to set of a named variable (qualified like ["main::p"] or
    bare); empty for unknown names. *)
