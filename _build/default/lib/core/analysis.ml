(** One-call driver: pick a strategy, run the solver, collect metrics. *)

open Cfront
open Norm

let strategies : (module Strategy.S) list =
  [
    (module Collapse_always);
    (module Collapse_on_cast);
    (module Common_init_seq);
    (module Offsets);
  ]

let strategy_ids = List.map (fun (module S : Strategy.S) -> S.id) strategies

let strategy_of_id id : (module Strategy.S) option =
  List.find_opt (fun (module S : Strategy.S) -> S.id = id) strategies

type result = {
  solver : Solver.t;
  metrics : Metrics.summary;
  time_s : float;
}

(** Analyze a normalized program with the given strategy. *)
let run ?(layout = Layout.default) ~strategy (prog : Nast.program) : result =
  let t0 = Unix_time.now () in
  let solver = Solver.run ~layout ~strategy prog in
  let time_s = Unix_time.now () -. t0 in
  { solver; metrics = Metrics.summarize solver; time_s }

(** Parse, type-check, lower, and analyze a C source string. *)
let run_source ?(layout = Layout.default) ?defines ?resolve ~strategy ~file
    src : result =
  let prog = Lower.compile ~layout ?defines ?resolve ~file src in
  run ~layout ~strategy prog

(** Points-to set of a named variable (qualified or unqualified), expanded
    for display. Convenience for examples and tests. *)
let pts_of_var (r : result) (name : string) : Cell.t list =
  let prog = r.solver.Solver.prog in
  let v =
    List.find_opt
      (fun v ->
        v.Cvar.vname = name || Cvar.qualified_name v = name)
      prog.Nast.pall_vars
  in
  match v with
  | None -> []
  | Some v ->
      let module S = (val r.solver.Solver.strategy : Strategy.S) in
      let cell = S.normalize r.solver.Solver.ctx v [] in
      Cell.Set.elements (Graph.pts r.solver.Solver.graph cell)
