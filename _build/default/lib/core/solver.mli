(** The fixpoint solver: applies the paper's inference rules 1–5
    (Figure 2) over a normalized program until no new points-to facts
    appear.

    Generic in the strategy; interprocedural behaviour is
    context-insensitive, with indirect callees discovered from function
    pointers' points-to sets as the fixpoint grows. Library calls use
    {!Norm.Summaries}. *)

open Cfront
open Norm

module Itbl : Hashtbl.S with type key = int

type t = {
  ctx : Actx.t;
  graph : Graph.t;
  strategy : (module Strategy.S);
  prog : Nast.program;
  funcs : (string, Nast.func) Hashtbl.t;
  queue : Nast.stmt Queue.t;
  in_queue : (int, unit) Hashtbl.t;
  subscribers : Nast.stmt list ref Cvar.Tbl.t;
  stmt_subs : Cvar.Set.t ref Itbl.t;
  arith_mode : [ `Spread | `Copy | `Stride | `Unknown ];
      (** How pointer arithmetic is modelled:
          [`Spread] — the paper's Assumption-1 rule (default);
          [`Stride] — Wilson–Lam array refinement;
          [`Unknown] — pessimistic corrupted-pointer marker;
          [`Copy] — optimistic ablation. *)
  unknown_obj : Cvar.t;
      (** the distinguished target of [`Unknown]-mode arithmetic *)
  mutable unknown_externs : string list;
      (** called external functions with neither a body nor a summary *)
  mutable rounds : int;
}

val create :
  ?layout:Layout.config ->
  ?arith:[ `Spread | `Copy | `Stride | `Unknown ] ->
  strategy:(module Strategy.S) ->
  Nast.program ->
  t

val solve : t -> unit
(** Run the worklist to a fixpoint. *)

val run :
  ?layout:Layout.config ->
  ?arith:[ `Spread | `Copy | `Stride | `Unknown ] ->
  strategy:(module Strategy.S) ->
  Nast.program ->
  t
(** {!create} followed by {!solve}. *)
