(** The fixpoint solver: applies the paper's inference rules 1–5 (Figure 2)
    over a normalized program until no new points-to facts appear.

    The solver is generic in the strategy (any {!Strategy.S}); the rules
    below call the strategy's [normalize]/[lookup]/[resolve] exactly where
    Figure 2 does. Interprocedural behaviour is context-insensitive:
    parameter and return bindings are virtual copy assignments generated
    per discovered callee, with indirect callees taken from the function
    pointer's points-to set as it grows. Library calls use
    {!Norm.Summaries}.

    Worklist discipline: a statement is (re)processed when any object whose
    facts it reads gains an edge. Statements subscribe to objects
    dynamically (e.g. a [Load] subscribes to every object its pointer is
    found to point to). *)

open Cfront
open Norm

module Itbl = Hashtbl.Make (Int)

type t = {
  ctx : Actx.t;
  graph : Graph.t;
  strategy : (module Strategy.S);
  prog : Nast.program;
  funcs : (string, Nast.func) Hashtbl.t;
  queue : Nast.stmt Queue.t;
  in_queue : (int, unit) Hashtbl.t;
  subscribers : Nast.stmt list ref Cvar.Tbl.t;
  stmt_subs : Cvar.Set.t ref Itbl.t;  (** keyed by stmt id *)
  arith_mode : [ `Spread | `Copy | `Stride | `Unknown ];
      (** How pointer arithmetic is modelled:
          - [`Spread] — the paper's Assumption-1 rule: the result may
            point to any cell of the pointed-to object;
          - [`Stride] — Wilson–Lam refinement (Section 6): arithmetic on a
            pointer into an array stays on the representative element, and
            only non-array targets spread;
          - [`Unknown] — the pessimistic alternative the paper discusses
            under Complication 3: the result is a distinguished Unknown
            value, usable to flag potential misuses of memory;
          - [`Copy] — optimistic ablation: the result aliases the
            operand. *)
  unknown_obj : Cvar.t;
      (** the distinguished target of [`Unknown]-mode arithmetic *)
  mutable unknown_externs : string list;
  mutable rounds : int;
}

let create ?(layout = Layout.default) ?(arith = `Spread) ~strategy
    (prog : Nast.program) : t =
  let funcs = Hashtbl.create 32 in
  List.iter (fun f -> Hashtbl.replace funcs f.Nast.fname f) prog.Nast.pfuncs;
  {
    ctx = Actx.create ~layout ();
    graph = Graph.create ();
    strategy;
    prog;
    funcs;
    queue = Queue.create ();
    in_queue = Hashtbl.create 256;
    subscribers = Cvar.Tbl.create 128;
    stmt_subs = Itbl.create 256;
    arith_mode = arith;
    unknown_obj = Cvar.fresh ~name:"$unknown" ~ty:Ctype.Void ~kind:Cvar.Global;
    unknown_externs = [];
    rounds = 0;
  }

let enqueue t (s : Nast.stmt) =
  if not (Hashtbl.mem t.in_queue s.Nast.id) then begin
    Hashtbl.replace t.in_queue s.Nast.id ();
    Queue.add s t.queue
  end

(** Subscribe [stmt] to future facts on [obj]. *)
let subscribe t (stmt : Nast.stmt) (obj : Cvar.t) =
  let subs =
    match Itbl.find_opt t.stmt_subs stmt.Nast.id with
    | Some s -> s
    | None ->
        let s = ref Cvar.Set.empty in
        Itbl.replace t.stmt_subs stmt.Nast.id s;
        s
  in
  if not (Cvar.Set.mem obj !subs) then begin
    subs := Cvar.Set.add obj !subs;
    let lst =
      match Cvar.Tbl.find_opt t.subscribers obj with
      | Some l -> l
      | None ->
          let l = ref [] in
          Cvar.Tbl.replace t.subscribers obj l;
          l
    in
    lst := stmt :: !lst
  end

let add_edge t (c : Cell.t) (w : Cell.t) =
  if Graph.add_edge t.graph c w then
    match Cvar.Tbl.find_opt t.subscribers c.Cell.base with
    | Some lst -> List.iter (enqueue t) !lst
    | None -> ()

let pointee_of (v : Cvar.t) : Ctype.t =
  match v.Cvar.vty with
  | Ctype.Ptr ty -> ty
  | Ctype.Array (ty, _) -> ty
  | _ -> Ctype.Void

(* ------------------------------------------------------------------ *)
(* Rule application                                                    *)
(* ------------------------------------------------------------------ *)

let process t (stmt : Nast.stmt) =
  let module S = (val t.strategy : Strategy.S) in
  let norm v p = S.normalize t.ctx v p in
  let pts c = Graph.pts t.graph c in
  (* transfer every fact of each source cell to the paired destination *)
  let transfer stmt pairs =
    List.iter
      (fun ((cd : Cell.t), (cs : Cell.t)) ->
        subscribe t stmt cs.Cell.base;
        Cell.Set.iter (fun w -> add_edge t cd w) (pts cs))
      pairs
  in
  (* a virtual copy [dst = src] with declared type τ = dst's type *)
  let virtual_copy stmt (dst : Cvar.t) (src : Cvar.t) =
    subscribe t stmt src;
    let pairs =
      S.resolve t.ctx t.graph (norm dst []) (norm src []) dst.Cvar.vty
    in
    transfer stmt pairs
  in
  let bind_call stmt (call : Nast.call) (fname : string) =
    match Hashtbl.find_opt t.funcs fname with
    | Some f ->
        (* actuals into formals, extras into the vararg blob *)
        let rec bind params args =
          match (params, args) with
          | p :: ps, a :: as_ ->
              virtual_copy stmt p a;
              bind ps as_
          | [], extras -> (
              match f.Nast.fvararg with
              | Some va -> List.iter (fun a -> virtual_copy stmt va a) extras
              | None -> ())
          | _ :: _, [] -> ()
        in
        bind f.Nast.fparams call.Nast.cargs;
        (match (call.Nast.cret, f.Nast.fret) with
        | Some dst, Some src -> virtual_copy stmt dst src
        | _ -> ())
    | None -> (
        match Summaries.find fname with
        | Some { Summaries.effects; _ } ->
            let operand_var = function
              | Summaries.Arg i -> List.nth_opt call.Nast.cargs i
              | Summaries.Ret -> call.Nast.cret
            in
            List.iter
              (fun eff ->
                match eff with
                | Summaries.Alloc _ | Summaries.Static_result _ ->
                    () (* materialized during lowering *)
                | Summaries.Ret_is op -> (
                    match (call.Nast.cret, operand_var op) with
                    | Some dst, Some src -> virtual_copy stmt dst src
                    | _ -> ())
                | Summaries.Ret_points_into i -> (
                    match (call.Nast.cret, List.nth_opt call.Nast.cargs i) with
                    | Some dst, Some arg ->
                        subscribe t stmt arg;
                        Cell.Set.iter
                          (fun (c : Cell.t) ->
                            List.iter
                              (fun w -> add_edge t (norm dst []) w)
                              (S.all_cells t.ctx c.Cell.base))
                          (pts (norm arg []))
                    | _ -> ())
                | Summaries.Deep_copy (a, b) -> (
                    match (operand_var a, operand_var b) with
                    | Some va, Some vb ->
                        subscribe t stmt va;
                        subscribe t stmt vb;
                        Cell.Set.iter
                          (fun (ca : Cell.t) ->
                            Cell.Set.iter
                              (fun (cb : Cell.t) ->
                                let tau = cb.Cell.base.Cvar.vty in
                                let pairs =
                                  S.resolve t.ctx t.graph ca cb tau
                                in
                                transfer stmt pairs)
                              (pts (norm vb [])))
                          (pts (norm va []))
                    | _ -> ())
                | Summaries.Store_through (i, op) -> (
                    match (List.nth_opt call.Nast.cargs i, operand_var op) with
                    | Some parg, Some src ->
                        subscribe t stmt parg;
                        subscribe t stmt src;
                        let tau = pointee_of parg in
                        Cell.Set.iter
                          (fun c ->
                            let pairs =
                              S.resolve t.ctx t.graph c (norm src []) tau
                            in
                            transfer stmt pairs)
                          (pts (norm parg []))
                    | _ -> ())
                | Summaries.Invoke (i, ops) -> (
                    match List.nth_opt call.Nast.cargs i with
                    | Some fp ->
                        subscribe t stmt fp;
                        Cell.Set.iter
                          (fun (c : Cell.t) ->
                            match c.Cell.base.Cvar.vkind with
                            | Cvar.Funval g -> (
                                match Hashtbl.find_opt t.funcs g with
                                | Some callee ->
                                    let actuals =
                                      List.filter_map operand_var ops
                                    in
                                    let rec bind params args =
                                      match (params, args) with
                                      | p :: ps, a :: as_ ->
                                          virtual_copy stmt p a;
                                          bind ps as_
                                      | _ -> ()
                                    in
                                    bind callee.Nast.fparams actuals
                                | None -> ())
                            | _ -> ())
                          (pts (norm fp []))
                    | None -> ()))
              effects
        | None ->
            if not (List.mem fname t.unknown_externs) then
              t.unknown_externs <- fname :: t.unknown_externs)
  in
  match stmt.Nast.kind with
  | Nast.Addr (s, obj, beta) ->
      (* Rule 1: s = &t.β *)
      add_edge t (norm s []) (norm obj beta)
  | Nast.Addr_deref (s, p, alpha) ->
      (* Rule 2: s = &( *p).α *)
      subscribe t stmt p;
      let tau_p = pointee_of p in
      Cell.Set.iter
        (fun c ->
          List.iter
            (fun c' -> add_edge t (norm s []) c')
            (S.lookup t.ctx tau_p alpha c))
        (pts (norm p []))
  | Nast.Copy (s, obj, beta) ->
      (* Rule 3: s = t.β *)
      subscribe t stmt obj;
      let pairs =
        S.resolve t.ctx t.graph (norm s []) (norm obj beta) s.Cvar.vty
      in
      transfer stmt pairs
  | Nast.Load (s, q) ->
      (* Rule 4: s = *q *)
      subscribe t stmt q;
      Cell.Set.iter
        (fun c ->
          let pairs = S.resolve t.ctx t.graph (norm s []) c s.Cvar.vty in
          transfer stmt pairs)
        (pts (norm q []))
  | Nast.Store (p, v) ->
      (* Rule 5: *p = t *)
      subscribe t stmt p;
      subscribe t stmt v;
      let tau_p = pointee_of p in
      Cell.Set.iter
        (fun c ->
          let pairs = S.resolve t.ctx t.graph c (norm v []) tau_p in
          transfer stmt pairs)
        (pts (norm p []))
  | Nast.Arith (s, v) -> (
      subscribe t stmt v;
      let spread (c : Cell.t) =
        List.iter
          (fun w -> add_edge t (norm s []) w)
          (S.all_cells t.ctx c.Cell.base)
      in
      match t.arith_mode with
      | `Spread ->
          (* Assumption 1: the result may point to any cell of the
             objects [v] points into *)
          Cell.Set.iter spread (pts (norm v []))
      | `Stride ->
          (* pointers walking an array stay on the representative
             element; anything else spreads as under Assumption 1 *)
          Cell.Set.iter
            (fun (c : Cell.t) ->
              if S.in_array t.ctx c then add_edge t (norm s []) c
              else spread c)
            (pts (norm v []))
      | `Unknown ->
          (* pessimistic: the result is a corrupted-pointer marker *)
          if not (Cell.Set.is_empty (pts (norm v []))) then
            add_edge t (norm s []) (Cell.whole t.unknown_obj)
      | `Copy ->
          Cell.Set.iter
            (fun w -> add_edge t (norm s []) w)
            (pts (norm v [])))
  | Nast.Call call -> (
      match call.Nast.cfn with
      | Nast.Direct n -> bind_call stmt call n
      | Nast.Indirect fp ->
          subscribe t stmt fp;
          Cell.Set.iter
            (fun (c : Cell.t) ->
              match c.Cell.base.Cvar.vkind with
              | Cvar.Funval n -> bind_call stmt call n
              | _ -> ())
            (pts (norm fp [])))

(* ------------------------------------------------------------------ *)
(* Fixpoint                                                            *)
(* ------------------------------------------------------------------ *)

let solve t : unit =
  List.iter (enqueue t) (Nast.all_stmts t.prog);
  let rec loop () =
    match Queue.take_opt t.queue with
    | None -> ()
    | Some stmt ->
        Hashtbl.remove t.in_queue stmt.Nast.id;
        t.rounds <- t.rounds + 1;
        process t stmt;
        loop ()
  in
  loop ()

(** Analyze [prog] with [strategy]; returns the solver state at fixpoint. *)
let run ?layout ?arith ~strategy (prog : Nast.program) : t =
  let t = create ?layout ?arith ~strategy prog in
  solve t;
  t
