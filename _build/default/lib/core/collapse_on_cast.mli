(** The "Collapse on Cast" instance (paper Section 4.3.2): fields are
    distinguished while an object is accessed at its declared type; an
    access at any other type conservatively touches all fields from the
    access point onward. Portable. *)

include Strategy.S
