(** Cells: the normalized object references that points-to facts relate.

    A cell is a storage object plus a selector. The Offsets instance uses
    byte offsets; the portable instances use normalized field paths (the
    Collapse-Always instance always the empty path). A single points-to
    graph never mixes selectors from different strategies. *)

open Cfront

type sel = Path of Ctype.path | Off of int

type t = { base : Cvar.t; sel : sel }

val v : Cvar.t -> sel -> t

val whole : Cvar.t -> t
(** The whole-object cell [{base; sel = Path []}]. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** ["x"], ["s.f.g"], or ["t@8"]. *)

val to_string : t -> string

val cell_type : t -> Ctype.t
(** Declared type of the storage this cell designates; [Void] when the
    selector does not name a typed sub-object. *)

module Set : Set.S with type elt = t

module Tbl : Hashtbl.S with type key = t
