(** The "Offsets" instance (paper Section 4.2.2): cells are (object,
    byte offset) under one concrete layout strategy. The most precise
    instance; its results are only safe for that layout. *)

include Strategy.S
