(** The points-to graph: a finite map from cells to sets of cells.

    An edge [c → w] is the paper's [pointsTo(c, w)]. *)

type t

val create : unit -> t

val pts : t -> Cell.t -> Cell.Set.t
(** Current points-to set of a cell (empty if none). *)

val add_edge : t -> Cell.t -> Cell.t -> bool
(** Add an edge; [true] iff it is new. *)

val cells_of_obj : t -> Cfront.Cvar.t -> Cell.t list
(** Cells of an object that have at least one outgoing edge — supports
    the Offsets instance's range-restricted [resolve]. *)

val edge_count : t -> int

val iter_edges : t -> (Cell.t -> Cell.t -> unit) -> unit

val fold_sources : t -> (Cell.t -> Cell.Set.t -> 'a -> 'a) -> 'a -> 'a

val pp : Format.formatter -> t -> unit
