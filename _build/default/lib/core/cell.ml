(** Cells: the normalized object references that points-to facts relate.

    A cell is a storage object ({!Cfront.Cvar.t}) plus a selector. The
    Offsets instance uses byte offsets ({!constructor:Off}); the portable
    instances use normalized field paths ({!constructor:Path}) — the
    Collapse-Always instance always uses the empty path. A single points-to
    graph never mixes selectors from different strategies. *)

open Cfront

type sel = Path of Ctype.path | Off of int

type t = { base : Cvar.t; sel : sel }

let v base sel = { base; sel }

let whole base = { base; sel = Path [] }

let compare_sel a b =
  match (a, b) with
  | Path p, Path q -> compare p q
  | Off i, Off j -> compare i j
  | Path _, Off _ -> -1
  | Off _, Path _ -> 1

let compare a b =
  match Cvar.compare a.base b.base with
  | 0 -> compare_sel a.sel b.sel
  | c -> c

let equal a b = compare a b = 0

let hash a =
  let selh = match a.sel with Path p -> Hashtbl.hash p | Off i -> i * 31 in
  (Cvar.hash a.base * 65599) + selh

let pp ppf c =
  match c.sel with
  | Path [] -> Cvar.pp ppf c.base
  | Path p -> Fmt.pf ppf "%a.%a" Cvar.pp c.base Ctype.pp_path p
  | Off i -> Fmt.pf ppf "%a@@%d" Cvar.pp c.base i

let to_string c = Fmt.str "%a" pp c

(** Declared type of the storage designated by this cell; [Void] when the
    selector does not name a typed sub-object (e.g. a padding offset). *)
let cell_type (c : t) : Ctype.t =
  match c.sel with
  | Path p -> (
      try Ctype.type_at_path c.base.Cvar.vty p with Diag.Error _ -> Ctype.Void)
  | Off _ -> Ctype.Void

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal

  let hash = hash
end)
