lib/core/offsets.ml: Actx Cell Cfront Ctype Cvar Diag Graph Layout List Strategy
