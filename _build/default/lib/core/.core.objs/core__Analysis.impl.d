lib/core/analysis.ml: Cell Cfront Collapse_always Collapse_on_cast Common_init_seq Cvar Graph Layout List Lower Metrics Nast Norm Offsets Solver Strategy Unix_time
