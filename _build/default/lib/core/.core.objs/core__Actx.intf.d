lib/core/actx.mli: Cfront Layout
