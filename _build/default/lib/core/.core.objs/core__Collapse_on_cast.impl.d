lib/core/collapse_on_cast.ml: Actx Cell Cfront Ctype Cvar Diag List Strategy
