lib/core/common_init_seq.mli: Strategy
