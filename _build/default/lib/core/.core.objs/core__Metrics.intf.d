lib/core/metrics.mli: Actx Cell Cfront Cvar Nast Norm Solver
