lib/core/graph.mli: Cell Cfront Format
