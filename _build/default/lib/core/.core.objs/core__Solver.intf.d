lib/core/solver.mli: Actx Cfront Cvar Graph Hashtbl Layout Nast Norm Queue Strategy
