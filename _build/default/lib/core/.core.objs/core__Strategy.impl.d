lib/core/strategy.ml: Actx Cell Cfront Ctype Cvar Diag Graph List Set
