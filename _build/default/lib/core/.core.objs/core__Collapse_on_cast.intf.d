lib/core/collapse_on_cast.mli: Strategy
