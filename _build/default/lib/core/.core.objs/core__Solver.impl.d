lib/core/solver.ml: Actx Cell Cfront Ctype Cvar Graph Hashtbl Int Layout List Nast Norm Queue Strategy Summaries
