lib/core/cell.mli: Cfront Ctype Cvar Format Hashtbl Set
