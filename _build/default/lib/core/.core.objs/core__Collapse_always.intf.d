lib/core/collapse_always.mli: Strategy
