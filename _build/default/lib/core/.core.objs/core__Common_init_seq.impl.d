lib/core/common_init_seq.ml: Actx Cell Cfront Ctype Cvar Diag List Strategy
