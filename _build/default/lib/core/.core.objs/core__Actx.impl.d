lib/core/actx.ml: Cfront Layout
