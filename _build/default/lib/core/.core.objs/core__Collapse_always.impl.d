lib/core/collapse_always.ml: Actx Cell Cfront Ctype Cvar List Strategy
