lib/core/analysis.mli: Cell Cfront Layout Metrics Nast Norm Solver Strategy
