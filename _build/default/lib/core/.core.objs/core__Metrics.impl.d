lib/core/metrics.ml: Actx Cell Cfront Cvar Graph List Nast Norm Option Solver Strategy
