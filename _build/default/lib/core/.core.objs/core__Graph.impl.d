lib/core/graph.ml: Cell Cfront Cvar Fmt List
