lib/core/offsets.mli: Strategy
