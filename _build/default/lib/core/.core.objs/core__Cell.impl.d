lib/core/cell.ml: Cfront Ctype Cvar Diag Fmt Hashtbl Set
