(** The "Collapse Always" instance (paper Section 4.3.1): every structure
    is a single variable. Most general, least precise, trivially
    portable. For the Figure-4 metric, a structure target expands to all
    of its leaf fields. *)

include Strategy.S
