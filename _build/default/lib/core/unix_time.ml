(** Monotonic-ish wall-clock time without a Unix dependency. *)

let now () : float = Sys.time ()

(** CPU time in seconds (user time of this process) — matches the paper's
    "CPU times (user+system)" measurement more closely than wall clock. *)
let cpu () : float = Sys.time ()
