(** Analysis context: the layout configuration (used by the Offsets
    instance) and the instrumentation counters behind the paper's Figure 3
    (percentage of [lookup]/[resolve] calls that involve structures, and of
    those, the percentage where the types did not match). *)

open Cfront

type t = {
  layout : Layout.config;
  mutable lookup_calls : int;
  mutable lookup_struct : int;
  mutable lookup_mismatch : int;
  mutable resolve_calls : int;
  mutable resolve_struct : int;
  mutable resolve_mismatch : int;
  mutable in_resolve : bool;
      (** paper footnote 7: [lookup] calls made from within [resolve] are
          not counted *)
}

let create ?(layout = Layout.default) () =
  {
    layout;
    lookup_calls = 0;
    lookup_struct = 0;
    lookup_mismatch = 0;
    resolve_calls = 0;
    resolve_struct = 0;
    resolve_mismatch = 0;
    in_resolve = false;
  }

let count_lookup ctx ~structure ~mismatch =
  if not ctx.in_resolve then begin
    ctx.lookup_calls <- ctx.lookup_calls + 1;
    if structure then begin
      ctx.lookup_struct <- ctx.lookup_struct + 1;
      if mismatch then ctx.lookup_mismatch <- ctx.lookup_mismatch + 1
    end
  end

let count_resolve ctx ~structure ~mismatch =
  ctx.resolve_calls <- ctx.resolve_calls + 1;
  if structure then begin
    ctx.resolve_struct <- ctx.resolve_struct + 1;
    if mismatch then ctx.resolve_mismatch <- ctx.resolve_mismatch + 1
  end

(** Run [f] with lookup-counting suppressed (for resolve's internal
    lookups). *)
let inside_resolve ctx f =
  let saved = ctx.in_resolve in
  ctx.in_resolve <- true;
  let r = f () in
  ctx.in_resolve <- saved;
  r

type figures = {
  pct_lookup_struct : float;
  pct_lookup_mismatch : float;  (** of the struct-involving calls *)
  pct_resolve_struct : float;
  pct_resolve_mismatch : float;
}

let figures ctx =
  let pct a b = if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b in
  {
    pct_lookup_struct = pct ctx.lookup_struct ctx.lookup_calls;
    pct_lookup_mismatch = pct ctx.lookup_mismatch ctx.lookup_struct;
    pct_resolve_struct = pct ctx.resolve_struct ctx.resolve_calls;
    pct_resolve_mismatch = pct ctx.resolve_mismatch ctx.resolve_struct;
  }
