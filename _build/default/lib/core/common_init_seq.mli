(** The "Common Initial Sequence" instance (paper Section 4.3.3): like
    Collapse-on-Cast, but exploits the ANSI guarantee that structs sharing
    a common initial sequence of compatibly-typed fields lay those fields
    out identically. The most precise portable instance. *)

include Strategy.S
