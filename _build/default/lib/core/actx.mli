(** Analysis context: the layout configuration (used by the Offsets
    instance) and the instrumentation counters behind the paper's
    Figure 3. *)

open Cfront

type t = {
  layout : Layout.config;
  mutable lookup_calls : int;
  mutable lookup_struct : int;
  mutable lookup_mismatch : int;
  mutable resolve_calls : int;
  mutable resolve_struct : int;
  mutable resolve_mismatch : int;
  mutable in_resolve : bool;
      (** paper footnote 7: [lookup] calls made from within [resolve] are
          not counted *)
}

val create : ?layout:Layout.config -> unit -> t

val count_lookup : t -> structure:bool -> mismatch:bool -> unit
(** Record one [lookup] call (ignored while inside a [resolve]). *)

val count_resolve : t -> structure:bool -> mismatch:bool -> unit

val inside_resolve : t -> (unit -> 'a) -> 'a
(** Run with lookup-counting suppressed (for resolve's internal
    lookups). *)

type figures = {
  pct_lookup_struct : float;
  pct_lookup_mismatch : float;  (** of the struct-involving calls *)
  pct_resolve_struct : float;
  pct_resolve_mismatch : float;
}

val figures : t -> figures
(** The Figure-3 percentages. *)
