(** Steensgaard-style unification-based pointer analysis — the paper's
    closest related work (Section 6). Instead of the framework's directed
    inclusion edges, assignments {e unify} equivalence classes, giving an
    almost-linear-time algorithm at a substantial precision cost.

    Two flavors are provided, mirroring Section 6's discussion:

    - {!Collapsed}: structures are single nodes ([Ste96b]).
    - {!Fields}: fields are distinguished via the same normalization as
      the Collapse-on-Cast instance; copies between objects of different
      types unify entire objects, which approximates the approximations
      Steensgaard's typed system makes for casts ([Ste96a]).

    Used by the `ablation-steens` bench target to reproduce the paper's
    qualitative claim: unification is fast but markedly less precise than
    any of the inclusion-based instances. *)

open Cfront
open Norm

(* ------------------------------------------------------------------ *)
(* Union-find nodes with points-to successors                          *)
(* ------------------------------------------------------------------ *)

type node = {
  id : int;
  mutable parent : node option;
  mutable pts : node option;  (** the class this class points to *)
}

let node_count = ref 0

let fresh_node () =
  incr node_count;
  { id = !node_count; parent = None; pts = None }

let rec find (n : node) : node =
  match n.parent with
  | None -> n
  | Some p ->
      let root = find p in
      n.parent <- Some root;
      root

let rec union (a : node) (b : node) : node =
  let ra = find a and rb = find b in
  if ra == rb then ra
  else begin
    rb.parent <- Some ra;
    (match (ra.pts, rb.pts) with
    | Some pa, Some pb ->
        rb.pts <- None;
        ra.pts <- Some (union pa pb)
    | None, Some pb ->
        rb.pts <- None;
        ra.pts <- Some pb
    | _, None -> ());
    ra
  end

(** The points-to class of [n], creating a fresh bottom class if absent. *)
let pts_of (n : node) : node =
  let r = find n in
  match r.pts with
  | Some p -> find p
  | None ->
      let p = fresh_node () in
      r.pts <- Some p;
      p

(** [x = y]: whatever [y] points to, [x] may point to — by unification. *)
let join_pts (x : node) (y : node) : unit =
  ignore (union (pts_of x) (pts_of y))

(* ------------------------------------------------------------------ *)
(* Cell model                                                          *)
(* ------------------------------------------------------------------ *)

type flavor = Collapsed | Fields

type t = {
  flavor : flavor;
  prog : Nast.program;
  nodes : node Core.Cell.Tbl.t;
  funcs : (string, Nast.func) Hashtbl.t;
  mutable time_s : float;
}

let cell_of t (v : Cvar.t) (path : Ctype.path) : Core.Cell.t =
  match t.flavor with
  | Collapsed -> Core.Cell.whole v
  | Fields ->
      Core.Cell.v v
        (Core.Cell.Path (Core.Strategy.normalize_path v.Cvar.vty path))

let node_of t (c : Core.Cell.t) : node =
  match Core.Cell.Tbl.find_opt t.nodes c with
  | Some n -> n
  | None ->
      let n = fresh_node () in
      Core.Cell.Tbl.replace t.nodes c n;
      n

let all_cells t (v : Cvar.t) : Core.Cell.t list =
  match t.flavor with
  | Collapsed -> [ Core.Cell.whole v ]
  | Fields ->
      List.map
        (fun p -> Core.Cell.v v (Core.Cell.Path p))
        (Ctype.leaf_paths v.Cvar.vty)

(** Unify every cell of [v]'s object into one class (the cast fallback in
    the [Fields] flavor). *)
let collapse_object t (v : Cvar.t) : node =
  match all_cells t v with
  | [] -> node_of t (Core.Cell.whole v)
  | first :: rest ->
      List.fold_left
        (fun acc c -> union acc (node_of t c))
        (node_of t first) rest

(* ------------------------------------------------------------------ *)
(* Statement processing                                                *)
(* ------------------------------------------------------------------ *)

let copy_cells t (dst : Cvar.t) (dst_path : Ctype.path) (src : Cvar.t)
    (src_path : Ctype.path) : unit =
  match t.flavor with
  | Collapsed ->
      join_pts (node_of t (Core.Cell.whole dst)) (node_of t (Core.Cell.whole src))
  | Fields -> (
      let dty =
        try Ctype.type_at_path dst.Cvar.vty dst_path
        with Diag.Error _ -> Ctype.Void
      in
      let sty =
        try Ctype.type_at_path src.Cvar.vty src_path
        with Diag.Error _ -> Ctype.Void
      in
      if Ctype.equal (Ctype.strip_arrays dty) (Ctype.strip_arrays sty) then
        (* same type: unify field-for-field *)
        let leaves = Ctype.leaf_paths dty in
        List.iter
          (fun leaf ->
            let cd = cell_of t dst (dst_path @ leaf) in
            let cs = cell_of t src (src_path @ leaf) in
            join_pts (node_of t cd) (node_of t cs))
          leaves
      else begin
        (* mismatched copy: collapse both objects and join *)
        let nd = collapse_object t dst and ns = collapse_object t src in
        join_pts nd ns
      end)

(** Collapse every object that has a cell in the class of [cls]: unifies
    all cells of each such object into the class. This is the sound (and
    blunt) way a unification analysis without per-class field structure
    handles field addressing, mistyped access, and pointer arithmetic: the
    pointed-to objects lose their field distinctions. *)
let collapse_pointees t (cls : node) : node =
  let target = find cls in
  let objs =
    Core.Cell.Tbl.fold
      (fun (c : Core.Cell.t) n acc ->
        if find n == target && not (List.memq c.Core.Cell.base acc) then
          c.Core.Cell.base :: acc
        else acc)
      t.nodes []
  in
  List.fold_left (fun acc obj -> union acc (collapse_object t obj)) target objs

let pointee_ty (v : Cvar.t) : Ctype.t =
  match v.Cvar.vty with
  | Ctype.Ptr ty -> ty
  | Ctype.Array (ty, _) -> ty
  | _ -> Ctype.Void

(** The class a dereference of [ptr] designates. In the [Fields] flavor,
    if any pointed-to cell disagrees with [ptr]'s declared pointee type,
    the access is mistyped and the pointed-to objects collapse (the
    approximation Steensgaard's typed system makes for casts). *)
let deref_class t (ptr : Cvar.t) ~(at : Ctype.t) : node =
  let cls = pts_of (node_of t (cell_of t ptr [])) in
  match t.flavor with
  | Collapsed -> cls
  | Fields ->
      let expected = Ctype.strip_arrays at in
      let target = find cls in
      let mismatch =
        Core.Cell.Tbl.fold
          (fun (c : Core.Cell.t) n acc ->
            acc
            ||
            if find n == target then
              let cty =
                match c.Core.Cell.sel with
                | Core.Cell.Path p -> (
                    try
                      Ctype.strip_arrays
                        (Ctype.type_at_path c.Core.Cell.base.Cvar.vty p)
                    with Diag.Error _ -> Ctype.Void)
                | Core.Cell.Off _ -> Ctype.Void
              in
              not (Ctype.equal cty expected)
            else false)
          t.nodes false
      in
      if mismatch then collapse_pointees t cls else cls

let rec process_stmt t (s : Nast.stmt) : unit =
  match s.Nast.kind with
  | Nast.Addr (dst, obj, beta) ->
      let target = node_of t (cell_of t obj beta) in
      let d = node_of t (cell_of t dst []) in
      ignore (union (pts_of d) target)
  | Nast.Addr_deref (dst, p, alpha) ->
      (* the address of a field of *p: without per-class field structure
         the pointed-to objects collapse, and the result is that class *)
      let d = node_of t (cell_of t dst []) in
      let tgt = collapse_pointees t (pts_of (node_of t (cell_of t p []))) in
      ignore alpha;
      ignore (union (pts_of d) tgt)
  | Nast.Copy (dst, src, beta) -> copy_cells t dst [] src beta
  | Nast.Load (dst, q) ->
      let aggregate = Ctype.is_comp (Ctype.strip_arrays dst.Cvar.vty) in
      let src_cls = deref_class t q ~at:dst.Cvar.vty in
      let src_cls =
        if aggregate then collapse_pointees t src_cls else src_cls
      in
      let d =
        if aggregate then collapse_object t dst
        else node_of t (cell_of t dst [])
      in
      join_pts d src_cls
  | Nast.Store (p, v) ->
      let tgt_cls = deref_class t p ~at:(pointee_ty p) in
      let vn =
        if Ctype.is_comp (Ctype.strip_arrays v.Cvar.vty) then begin
          (* aggregate store: source fields and target objects collapse *)
          ignore (collapse_pointees t tgt_cls);
          collapse_object t v
        end
        else node_of t (cell_of t v [])
      in
      join_pts tgt_cls vn
  | Nast.Arith (dst, v) ->
      (* Assumption 1: the result may point anywhere within the
         pointed-to objects, which therefore collapse *)
      let d = node_of t (cell_of t dst []) in
      let vn = node_of t (cell_of t v []) in
      let tgt = collapse_pointees t (pts_of vn) in
      ignore (union (pts_of d) tgt)
  | Nast.Call call -> process_call t call

and process_call t (call : Nast.call) : unit =
  let bind_named fname =
    match Hashtbl.find_opt t.funcs fname with
    | Some f ->
        let rec bind params args =
          match (params, args) with
          | p :: ps, a :: as_ ->
              copy_cells t p [] a [];
              bind ps as_
          | [], extras -> (
              match f.Nast.fvararg with
              | Some va -> List.iter (fun a -> copy_cells t va [] a []) extras
              | None -> ())
          | _ :: _, [] -> ()
        in
        bind f.Nast.fparams call.Nast.cargs;
        (match (call.Nast.cret, f.Nast.fret) with
        | Some dst, Some src -> copy_cells t dst [] src []
        | _ -> ())
    | None -> (
        (* externs: apply the copying summaries coarsely *)
        match Summaries.find fname with
        | Some { Summaries.effects; _ } ->
            let operand = function
              | Summaries.Arg i -> List.nth_opt call.Nast.cargs i
              | Summaries.Ret -> call.Nast.cret
            in
            List.iter
              (fun eff ->
                match eff with
                | Summaries.Ret_is op -> (
                    match (call.Nast.cret, operand op) with
                    | Some dst, Some src -> copy_cells t dst [] src []
                    | _ -> ())
                | Summaries.Ret_points_into i -> (
                    match (call.Nast.cret, operand (Summaries.Arg i)) with
                    | Some dst, Some src -> copy_cells t dst [] src []
                    | _ -> ())
                | Summaries.Deep_copy (a, b) -> (
                    match (operand a, operand b) with
                    | Some va, Some vb ->
                        let na = node_of t (cell_of t va []) in
                        let nb = node_of t (cell_of t vb []) in
                        join_pts (pts_of na) (pts_of nb)
                    | _ -> ())
                | Summaries.Store_through (i, op) -> (
                    match (List.nth_opt call.Nast.cargs i, operand op) with
                    | Some parg, Some src ->
                        let pn = node_of t (cell_of t parg []) in
                        join_pts (pts_of pn) (node_of t (cell_of t src []))
                    | _ -> ())
                | _ -> ())
              effects
        | None -> ())
  in
  match call.Nast.cfn with
  | Nast.Direct n -> bind_named n
  | Nast.Indirect fp ->
      (* unify every defined function's signature conservatively with the
         call: unification cannot iterate cheaply over discovered callees,
         so bind all address-taken functions in the pointed-to class *)
      let fp_pts = pts_of (node_of t (cell_of t fp [])) in
      Hashtbl.iter
        (fun name (f : Nast.func) ->
          let fn = node_of t (cell_of t f.Nast.ffvar []) in
          if find fn == find fp_pts then bind_named name)
        t.funcs

(* ------------------------------------------------------------------ *)
(* Driver and metrics                                                  *)
(* ------------------------------------------------------------------ *)

(** Number of distinct equivalence classes among the tracked cells. *)
let count_roots t : int =
  let seen = Hashtbl.create 64 in
  Core.Cell.Tbl.iter
    (fun _ n -> Hashtbl.replace seen (find n).id ())
    t.nodes;
  Hashtbl.length seen

let run ?(flavor = Fields) (prog : Nast.program) : t =
  let funcs = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace funcs f.Nast.fname f) prog.Nast.pfuncs;
  let t =
    { flavor; prog; nodes = Core.Cell.Tbl.create 256; funcs; time_s = 0.0 }
  in
  let t0 = Sys.time () in
  (* iterate to a fixpoint: unions are monotone (class count only
     shrinks), so passes repeat until no union happens; indirect calls
     and cast-induced collapses discovered late are caught this way *)
  let stable = ref false in
  let passes = ref 0 in
  while (not !stable) && !passes < 10 do
    let before = !node_count in
    let unions_before = count_roots t in
    List.iter (process_stmt t) (Nast.all_stmts prog);
    incr passes;
    stable := count_roots t = unions_before && !node_count = before
  done;
  t.time_s <- Sys.time () -. t0;
  t

(** Points-to set of variable [v]: every cell in the class its pts class
    denotes. *)
let points_to (t : t) (v : Cvar.t) : Core.Cell.t list =
  let n = node_of t (cell_of t v []) in
  let root = find n in
  match root.pts with
  | None -> []
  | Some p ->
      let target = find p in
      Core.Cell.Tbl.fold
        (fun c n acc -> if find n == target then c :: acc else acc)
        t.nodes []

(** All members of the class [n]'s points-to class. *)
let class_points_to (t : t) (n : node) : Core.Cell.t list =
  let root = find n in
  match root.pts with
  | None -> []
  | Some p ->
      let target = find p in
      Core.Cell.Tbl.fold
        (fun c n' acc -> if find n' == target then c :: acc else acc)
        t.nodes []

(** Every tracked cell of [obj], with its points-to set — used by the
    soundness tests to check coverage of concrete executions. *)
let facts_for_object (t : t) (obj : Cvar.t) :
    (Core.Cell.t * Core.Cell.t list) list =
  Core.Cell.Tbl.fold
    (fun (c : Core.Cell.t) n acc ->
      if Cvar.equal c.Core.Cell.base obj then
        (c, class_points_to t n) :: acc
      else acc)
    t.nodes []

(** Figure-4-style metric: average points-to set size over source deref
    sites, with collapsed struct targets expanded to their leaves. *)
let avg_deref_size (t : t) : float =
  let sites = Core.Metrics.deref_sites t.prog in
  let expand (c : Core.Cell.t) : Core.Cell.t list =
    match t.flavor with
    | Fields -> [ c ]
    | Collapsed ->
        let ty = c.Core.Cell.base.Cvar.vty in
        if Ctype.is_comp (Ctype.strip_arrays ty) then
          List.map
            (fun p -> Core.Cell.v c.Core.Cell.base (Core.Cell.Path p))
            (Ctype.leaf_paths ty)
        else [ c ]
  in
  let sizes =
    List.map
      (fun (_, p) ->
        points_to t p
        |> List.concat_map expand
        |> List.sort_uniq Core.Cell.compare
        |> List.length)
      sites
  in
  match sizes with
  | [] -> 0.0
  | _ ->
      float_of_int (List.fold_left ( + ) 0 sizes)
      /. float_of_int (List.length sizes)
