lib/steens/steensgaard.mli: Cfront Core Cvar Hashtbl Nast Norm
