lib/steens/steensgaard.ml: Cfront Core Ctype Cvar Diag Hashtbl List Nast Norm Summaries Sys
