(** Steensgaard-style unification-based pointer analysis — the paper's
    closest related work (Section 6). Assignments unify equivalence
    classes instead of adding directed edges, trading precision for
    near-linear behaviour.

    Two flavors mirror Section 6's discussion: {!Collapsed} treats each
    structure as a single node ([Ste96b]); {!Fields} distinguishes fields
    via the same normalization as the Collapse-on-Cast instance, falling
    back to collapsing whole objects on mistyped access — a blunt but
    sound rendition of the approximations in Steensgaard's typed system
    ([Ste96a]). *)

open Cfront
open Norm

type flavor = Collapsed | Fields

type node

type t = {
  flavor : flavor;
  prog : Nast.program;
  nodes : node Core.Cell.Tbl.t;
  funcs : (string, Nast.func) Hashtbl.t;
  mutable time_s : float;
}

val run : ?flavor:flavor -> Nast.program -> t
(** Unify to a fixpoint (a few passes; unions are monotone). *)

val points_to : t -> Cvar.t -> Core.Cell.t list
(** Points-to set of a variable: every cell in the class its points-to
    class denotes. *)

val facts_for_object : t -> Cvar.t -> (Core.Cell.t * Core.Cell.t list) list
(** Every tracked cell of an object with its points-to set — used by the
    soundness tests. *)

val avg_deref_size : t -> float
(** Figure-4-style metric: average points-to set size over source deref
    sites, with collapsed struct targets expanded to their leaves. *)

val count_roots : t -> int
(** Number of distinct equivalence classes among tracked cells. *)
