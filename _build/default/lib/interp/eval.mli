(** Concrete execution of normalized programs — the soundness oracle's
    state generator.

    Statements execute in order (for a flow-insensitive analysis this is
    the right oracle: it must over-approximate the memory state after any
    execution, and straight-line execution of the normalized statements
    realizes one). {!Norm.Nast.Arith} is concretized as [⊕ 0]. After every
    statement, all complete pointer values in memory are recorded. *)

open Cfront

type observation = { holder : Cvar.t * int; target : Memory.addr }
(** "[holder] (an object and byte offset) contains the address
    [target]". *)

module Obs : Set.S with type elt = observation

val run :
  ?layout:Layout.config ->
  ?max_call_depth:int ->
  ?max_steps:int ->
  Norm.Nast.program ->
  Obs.t
(** Execute global initializers, then [main] (or every function when
    there is none), and return every pointer observation. Total: bad
    dereferences are skipped, recursion and step counts are bounded. *)
