lib/interp/eval.mli: Cfront Cvar Layout Memory Norm Set
