lib/interp/oracle.ml: Actx Cell Cfront Core Ctype Cvar Diag Eval Fmt Graph Layout List Memory Solver
