lib/interp/eval.ml: Cfront Ctype Cvar Diag Hashtbl Layout List Memory Nast Norm Set
