lib/interp/oracle.mli: Cell Cfront Core Eval Format Layout Solver
