lib/interp/memory.ml: Array Cfront Cvar Diag Layout
