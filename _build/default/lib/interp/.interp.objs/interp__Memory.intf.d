lib/interp/memory.mli: Cfront Cvar Layout
