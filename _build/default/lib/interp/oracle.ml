(** Soundness oracle: does a solved analysis cover every pointer value the
    concrete interpreter observed?

    A concrete observation "[obj.off] holds the address [tgt+toff]" is
    covered when some points-to fact [c1 → c2] has [c1] denoting storage
    that contains byte [off] of [obj] and [c2] denoting an address range of
    [tgt] containing [toff]. *)

open Cfront
open Core

(** Byte range (start, size) denoted by a path selector within [ty]. *)
let path_range layout ty (p : Ctype.path) : (int * int) option =
  match
    ( Layout.offset_of_path layout ty p,
      Layout.size_of layout (Ctype.type_at_path ty p) )
  with
  | o, s -> Some (o, max s 1)
  | exception Diag.Error _ -> None

let canon_clamped layout (obj : Cvar.t) off =
  let size =
    match Layout.size_of layout obj.Cvar.vty with
    | n -> max n 1
    | exception Diag.Error _ -> 1
  in
  if off < 0 then 0
  else if off >= size then size
  else Layout.canon_offset layout obj.Cvar.vty off

(** Is byte [off] of type [ty] inside some leaf sub-object (as opposed to
    inter-field padding)? *)
let offset_in_some_leaf layout ty (off : int) : bool =
  match Layout.leaf_offsets layout ty with
  | leaves ->
      List.exists
        (fun (_, o, lty) ->
          let s = max 1 (Layout.size_of layout lty) in
          off >= o && off < o + s)
        leaves
  | exception Diag.Error _ -> true

(* Path-based cells name fields, so a byte offset falling into
   inter-field padding has no exact cell; the analysis models pointers
   into padding (which only arise from mistyped field arithmetic) through
   the neighbouring field cells, so for padding offsets any cell of the
   same object counts as covering. *)
let path_covers layout (c : Cell.t) (p : Ctype.path) (off : int) : bool =
  match path_range layout c.Cell.base.Cvar.vty p with
  | Some (o, s) ->
      (off >= o && off < o + s)
      || not (offset_in_some_leaf layout c.Cell.base.Cvar.vty off)
  | None -> p = [] (* unknown layout: the whole-object cell covers *)

(** Does cell [c] denote storage containing byte [off] of its object? *)
let covers_storage layout (c : Cell.t) (off : int) : bool =
  match c.Cell.sel with
  | Cell.Off o -> o = canon_clamped layout c.Cell.base off
  | Cell.Path p -> path_covers layout c p off

(** Does target cell [c] denote the address [base + toff]? *)
let covers_target layout (c : Cell.t) (toff : int) : bool =
  match c.Cell.sel with
  | Cell.Off o -> o = canon_clamped layout c.Cell.base toff
  | Cell.Path p -> path_covers layout c p toff

let observation_covered (solver : Solver.t) (obs : Eval.observation) : bool =
  let layout = solver.Solver.ctx.Actx.layout in
  let obj, off = obs.Eval.holder in
  let tgt = obs.Eval.target.Memory.aobj in
  let toff = obs.Eval.target.Memory.aoff in
  let candidate_cells = Graph.cells_of_obj solver.Solver.graph obj in
  List.exists
    (fun c1 ->
      covers_storage layout c1 off
      && Cell.Set.exists
           (fun c2 ->
             Cvar.equal c2.Cell.base tgt && covers_target layout c2 toff)
           (Graph.pts solver.Solver.graph c1))
    candidate_cells

(** Is the observed target address within the bounds of its object? The
    paper's Assumption 1 lets the analysis assume every dereferenced
    pointer is a valid address, so pointers manufactured past the end of a
    top-level object (undefined behaviour in C) are exempt from the
    soundness check. *)
let target_in_bounds layout (obs : Eval.observation) : bool =
  let tgt = obs.Eval.target.Memory.aobj in
  let toff = obs.Eval.target.Memory.aoff in
  match Layout.size_of layout tgt.Cvar.vty with
  | size -> toff >= 0 && toff < max size 1
  | exception Diag.Error _ -> true

(** All observations the analysis fails to cover (empty = sound run). *)
let uncovered (solver : Solver.t) (observations : Eval.Obs.t) :
    Eval.observation list =
  let layout = solver.Solver.ctx.Actx.layout in
  Eval.Obs.fold
    (fun obs acc ->
      if
        (not (target_in_bounds layout obs))
        || observation_covered solver obs
      then acc
      else obs :: acc)
    observations []

let pp_observation ppf (obs : Eval.observation) =
  let obj, off = obs.Eval.holder in
  Fmt.pf ppf "%a@@%d holds &%a+%d" Cvar.pp obj off Cvar.pp
    obs.Eval.target.Memory.aobj obs.Eval.target.Memory.aoff
