(** Soundness oracle: does a solved analysis cover every pointer value
    the concrete interpreter observed?

    A concrete observation "[obj.off] holds the address [tgt+toff]" is
    covered when some points-to fact [c1 → c2] has [c1] denoting storage
    containing byte [off] of [obj] and [c2] denoting an address range of
    [tgt] containing [toff]. *)

open Cfront
open Core

val covers_storage : Layout.config -> Cell.t -> int -> bool
(** Does the cell denote storage containing this byte of its object? *)

val covers_target : Layout.config -> Cell.t -> int -> bool
(** Does the target cell denote this address within its object? *)

val target_in_bounds : Layout.config -> Eval.observation -> bool
(** Assumption 1 exemption: pointers manufactured past the end of an
    object (undefined behaviour) are excluded from the check. *)

val observation_covered : Solver.t -> Eval.observation -> bool

val uncovered : Solver.t -> Eval.Obs.t -> Eval.observation list
(** All in-bounds observations the analysis fails to cover (empty means
    the run was sound). *)

val pp_observation : Format.formatter -> Eval.observation -> unit
