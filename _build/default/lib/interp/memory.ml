(** Byte-addressed memory for the concrete interpreter.

    Every storage object is a block of tagged bytes. A pointer value
    occupies [ptr_size] consecutive bytes, each tagged with the pointed-to
    address and its byte index — so block copies at "wrong" types replicate
    the paper's Complications 2 and 3 exactly: copying a [double] over a
    two-pointer struct moves the pointer bytes, and splicing moves partial
    pointers that only become readable again when all bytes line up. *)

open Cfront

type addr = { aobj : Cvar.t; aoff : int }

type byte =
  | Uninit
  | Raw  (** some non-pointer data byte *)
  | Pbyte of addr * int  (** byte [i] of a pointer to [addr] *)

type t = {
  layout : Layout.config;
  blocks : byte array Cvar.Tbl.t;
}

let create ~layout = { layout; blocks = Cvar.Tbl.create 64 }

let block_size m (v : Cvar.t) : int =
  match Layout.size_of m.layout v.Cvar.vty with
  | n -> max n 1
  | exception Diag.Error _ -> 1

let block m (v : Cvar.t) : byte array =
  match Cvar.Tbl.find_opt m.blocks v with
  | Some b -> b
  | None ->
      let b = Array.make (block_size m v) Uninit in
      Cvar.Tbl.replace m.blocks v b;
      b

let ptr_size m = m.layout.Layout.ptr_size

(** Store a pointer value at [obj.off]; bytes that fall outside the block
    are dropped (the write is partially out of bounds). *)
let write_ptr m (obj : Cvar.t) (off : int) (target : addr) : unit =
  let b = block m obj in
  for i = 0 to ptr_size m - 1 do
    let o = off + i in
    if o >= 0 && o < Array.length b then b.(o) <- Pbyte (target, i)
  done

(** Read a complete pointer value at [obj.off]: all [ptr_size] bytes must
    carry consecutive byte-indices of the same address. *)
let read_ptr m (obj : Cvar.t) (off : int) : addr option =
  let b = block m obj in
  let n = ptr_size m in
  if off < 0 || off + n > Array.length b then None
  else
    match b.(off) with
    | Pbyte (a, 0) ->
        let ok = ref true in
        for i = 1 to n - 1 do
          match b.(off + i) with
          | Pbyte (a', j) when j = i && Cvar.equal a'.aobj a.aobj && a'.aoff = a.aoff
            ->
              ()
          | _ -> ok := false
        done;
        if !ok then Some a else None
    | _ -> None

(** Copy [len] bytes between blocks, clamped to both blocks' bounds. *)
let copy_bytes m ~(src : Cvar.t) ~(src_off : int) ~(dst : Cvar.t)
    ~(dst_off : int) ~(len : int) : unit =
  let sb = block m src and db = block m dst in
  for i = 0 to len - 1 do
    let so = src_off + i and d_o = dst_off + i in
    if so >= 0 && so < Array.length sb && d_o >= 0 && d_o < Array.length db
    then db.(d_o) <- sb.(so)
  done

(** Mark [len] bytes at [obj.off] as raw (non-pointer) data. *)
let write_raw m (obj : Cvar.t) (off : int) (len : int) : unit =
  let b = block m obj in
  for i = 0 to len - 1 do
    let o = off + i in
    if o >= 0 && o < Array.length b then b.(o) <- Raw
  done

(** Every complete pointer value within one object's block. *)
let pointers_in_block m (obj : Cvar.t) : ((Cvar.t * int) * addr) list =
  match Cvar.Tbl.find_opt m.blocks obj with
  | None -> []
  | Some b ->
      let n = ptr_size m in
      let acc = ref [] in
      for off = 0 to Array.length b - n do
        match read_ptr m obj off with
        | Some a -> acc := ((obj, off), a) :: !acc
        | None -> ()
      done;
      !acc

(** Every complete pointer value currently in memory, as
    ((object, offset), target-address) pairs. *)
let all_pointers m : ((Cvar.t * int) * addr) list =
  Cvar.Tbl.fold
    (fun obj _ acc -> pointers_in_block m obj @ acc)
    m.blocks []
