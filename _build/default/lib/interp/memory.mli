(** Byte-addressed memory for the concrete interpreter.

    Every storage object is a block of tagged bytes. A pointer value
    occupies [ptr_size] consecutive bytes, each tagged with the pointed-to
    address and its byte index — so block copies at "wrong" types
    replicate the paper's Complications 2 and 3 exactly. *)

open Cfront

type addr = { aobj : Cvar.t; aoff : int }

type byte = Uninit | Raw | Pbyte of addr * int

type t

val create : layout:Layout.config -> t

val block_size : t -> Cvar.t -> int

val block : t -> Cvar.t -> byte array
(** The (lazily created) block of an object. *)

val ptr_size : t -> int

val write_ptr : t -> Cvar.t -> int -> addr -> unit
(** Store a pointer value; bytes falling outside the block are dropped. *)

val read_ptr : t -> Cvar.t -> int -> addr option
(** Read a complete pointer value: all bytes must carry consecutive
    indices of the same address. *)

val copy_bytes :
  t -> src:Cvar.t -> src_off:int -> dst:Cvar.t -> dst_off:int -> len:int ->
  unit
(** Copy bytes between blocks, clamped to both blocks' bounds. *)

val write_raw : t -> Cvar.t -> int -> int -> unit
(** Mark bytes as raw (non-pointer) data. *)

val pointers_in_block : t -> Cvar.t -> ((Cvar.t * int) * addr) list
(** Every complete pointer value within one object's block. *)

val all_pointers : t -> ((Cvar.t * int) * addr) list
(** Every complete pointer value currently in memory. *)
