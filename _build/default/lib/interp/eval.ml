(** Concrete execution of normalized programs.

    The statement list of each function is executed in order — for a
    flow-insensitive analysis this is exactly the right oracle: the
    analysis must over-approximate the memory state after {e any} prefix
    of {e any} interleaving, and straight-line execution of the normalized
    statements realizes one such state. {!Nast.Arith} is concretized as
    [⊕ 0] (a legal instance the analysis must certainly cover, since its
    abstract transfer includes the operand's own cell).

    After every statement the current set of complete pointer values in
    memory is recorded; {!Oracle} checks that a solved analysis covers all
    of them. *)

open Cfront
open Norm

type observation = { holder : Cvar.t * int; target : Memory.addr }

module Obs = Set.Make (struct
  type t = observation

  let compare a b =
    let (ho1, o1) = a.holder and (ho2, o2) = b.holder in
    match Cvar.compare ho1 ho2 with
    | 0 -> (
        match compare o1 o2 with
        | 0 -> (
            match Cvar.compare a.target.Memory.aobj b.target.Memory.aobj with
            | 0 -> compare a.target.Memory.aoff b.target.Memory.aoff
            | c -> c)
        | c -> c)
    | c -> c
end)

type state = {
  mem : Memory.t;
  layout : Layout.config;
  prog : Nast.program;
  funcs : (string, Nast.func) Hashtbl.t;
  mutable observed : Obs.t;
  mutable steps : int;
  max_steps : int;
}

let offset_of st ty path =
  match Layout.offset_of_path st.layout ty path with
  | n -> Some n
  | exception Diag.Error _ -> None

let size_of st ty =
  match Layout.size_of st.layout ty with
  | n -> max n 1
  | exception Diag.Error _ -> 1

let pointee_of (v : Cvar.t) : Ctype.t =
  match v.Cvar.vty with
  | Ctype.Ptr t -> t
  | Ctype.Array (t, _) -> t
  | _ -> Ctype.Void

(* Record every pointer currently within [obj]'s block. Called for the
   object(s) a statement writes, so the observation set covers every
   intermediate state without rescanning all of memory each step. *)
let snapshot_obj st (obj : Cvar.t) =
  List.iter
    (fun ((o, off), a) ->
      st.observed <- Obs.add { holder = (o, off); target = a } st.observed)
    (Memory.pointers_in_block st.mem obj)

let snapshot_all st =
  List.iter
    (fun ((obj, off), a) ->
      st.observed <- Obs.add { holder = (obj, off); target = a } st.observed)
    (Memory.all_pointers st.mem)

let rec exec_stmt st depth (s : Nast.stmt) : unit =
  st.steps <- st.steps + 1;
  if st.steps > st.max_steps then ()
  else
    match s.Nast.kind with
    | Nast.Addr (dst, obj, beta) -> (
        match offset_of st obj.Cvar.vty beta with
        | Some off ->
            Memory.write_ptr st.mem dst 0 { Memory.aobj = obj; aoff = off };
            snapshot_obj st dst
        | None -> ())
    | Nast.Addr_deref (dst, p, alpha) -> (
        match Memory.read_ptr st.mem p 0 with
        | Some { Memory.aobj; aoff } -> (
            match offset_of st (pointee_of p) alpha with
            | Some field_off ->
                Memory.write_ptr st.mem dst 0
                  { Memory.aobj; aoff = aoff + field_off };
                snapshot_obj st dst
            | None -> ())
        | None -> ())
    | Nast.Copy (dst, src, beta) -> (
        match offset_of st src.Cvar.vty beta with
        | Some off ->
            Memory.copy_bytes st.mem ~src ~src_off:off ~dst ~dst_off:0
              ~len:(size_of st dst.Cvar.vty);
            snapshot_obj st dst
        | None -> ())
    | Nast.Load (dst, q) -> (
        match Memory.read_ptr st.mem q 0 with
        | Some { Memory.aobj; aoff } ->
            Memory.copy_bytes st.mem ~src:aobj ~src_off:aoff ~dst ~dst_off:0
              ~len:(size_of st dst.Cvar.vty);
            snapshot_obj st dst
        | None -> ())
    | Nast.Store (p, v) -> (
        match Memory.read_ptr st.mem p 0 with
        | Some { Memory.aobj; aoff } ->
            Memory.copy_bytes st.mem ~src:v ~src_off:0 ~dst:aobj
              ~dst_off:aoff
              ~len:(size_of st (pointee_of p));
            snapshot_obj st aobj
        | None -> ())
    | Nast.Arith (dst, v) ->
        (* ⊕ 0 concretization *)
        Memory.copy_bytes st.mem ~src:v ~src_off:0 ~dst ~dst_off:0
          ~len:(size_of st dst.Cvar.vty);
        snapshot_obj st dst
    | Nast.Call call -> exec_call st depth call

and exec_call st depth (call : Nast.call) : unit =
  if depth <= 0 then ()
  else
    let run_func (f : Nast.func) =
      (* bind actuals to formals *)
      let rec bind params args =
        match (params, args) with
        | (p : Cvar.t) :: ps, (a : Cvar.t) :: as_ ->
            Memory.copy_bytes st.mem ~src:a ~src_off:0 ~dst:p ~dst_off:0
              ~len:(size_of st p.Cvar.vty);
            snapshot_obj st p;
            bind ps as_
        | _ -> ()
      in
      bind f.Nast.fparams call.Nast.cargs;
      List.iter (exec_stmt st (depth - 1)) f.Nast.fstmts;
      match (call.Nast.cret, f.Nast.fret) with
      | Some dst, Some src ->
          Memory.copy_bytes st.mem ~src ~src_off:0 ~dst ~dst_off:0
            ~len:(size_of st dst.Cvar.vty);
          snapshot_obj st dst
      | _ -> ()
    in
    match call.Nast.cfn with
    | Nast.Direct n -> (
        match Hashtbl.find_opt st.funcs n with
        | Some f -> run_func f
        | None -> () (* extern: allocation effects were materialized by
                        the lowering as separate Addr statements *))
    | Nast.Indirect fp -> (
        match Memory.read_ptr st.mem fp 0 with
        | Some { Memory.aobj; _ } -> (
            match aobj.Cvar.vkind with
            | Cvar.Funval n -> (
                match Hashtbl.find_opt st.funcs n with
                | Some f -> run_func f
                | None -> ())
            | _ -> ())
        | None -> ())

(** Execute a normalized program: global initializers, then every defined
    function named "main" (or all functions when there is none), observing
    memory after every statement. *)
let run ?(layout = Layout.default) ?(max_call_depth = 8)
    ?(max_steps = 200_000) (prog : Nast.program) : Obs.t =
  let funcs = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace funcs f.Nast.fname f) prog.Nast.pfuncs;
  let st =
    {
      mem = Memory.create ~layout;
      layout;
      prog;
      funcs;
      observed = Obs.empty;
      steps = 0;
      max_steps;
    }
  in
  List.iter (exec_stmt st max_call_depth) prog.Nast.pinit;
  let entries =
    match Nast.func_by_name prog "main" with
    | Some f -> [ f ]
    | None -> prog.Nast.pfuncs
  in
  List.iter
    (fun f -> List.iter (exec_stmt st max_call_depth) f.Nast.fstmts)
    entries;
  (* final sweep catches anything the incremental snapshots missed *)
  snapshot_all st;
  st.observed
