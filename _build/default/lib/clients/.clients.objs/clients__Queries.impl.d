lib/clients/queries.ml: Cfront Core Cvar Fmt Hashtbl List Nast Norm
