lib/clients/queries.mli: Cfront Core Cvar Format Nast Norm
