(** Seeded random C program generator.

    Produces well-formed C sources exercising the behaviours the paper's
    framework is about: nested structures, address-taking, pointer copies
    with casts, stores and loads through mistyped pointers, and
    whole-block copies between structures of different types. Used by the
    qcheck property tests and as a scalable benchmark workload.

    Deterministic: the same configuration and seed always produce the
    same program. *)

type config = {
  n_structs : int;  (** struct types to declare (>= 1) *)
  n_stmts : int;  (** statements in [main] *)
  cast_rate : float;  (** probability an assignment goes through a cast *)
  with_calls : bool;  (** also generate helper functions and calls *)
}

val default : config
(** 3 structs, 40 statements, cast rate 0.3, no calls. *)

val generate : ?cfg:config -> seed:int -> unit -> string
(** A complete C translation unit as source text. *)
