(** Diagnostics: structured front-end errors carrying a source location.

    All front-end phases (preprocessor, lexer, parser, type checker,
    normalizer) report failures by raising {!Error}; drivers catch it at
    the top level and render the payload with {!pp_payload}. Warnings are
    accumulated and retrieved with {!take_warnings}. *)

type severity = Warning | Error_sev

type payload = { severity : severity; loc : Srcloc.t; message : string }

exception Error of payload

val pp_severity : Format.formatter -> severity -> unit

val pp_payload : Format.formatter -> payload -> unit

val error : ?loc:Srcloc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Error} with a formatted message. Never returns. *)

val warn : ?loc:Srcloc.t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Record a warning for later retrieval. *)

val take_warnings : unit -> payload list
(** All warnings recorded since the previous call, oldest first; clears
    the buffer. *)

val protect : f:(unit -> 'a) -> ('a, payload) result
(** Run [f], catching {!Error} as a [result]. *)
