(** Hand-written lexer for the C subset.

    Comments and whitespace are skipped; line splices
    ([backslash-newline]) join logical lines. Identifiers are not
    classified as keywords here — the preprocessor must see macro names as
    plain identifiers, and the parser does its own keyword and
    typedef-name resolution. *)

type state

val make : file:string -> string -> state

val next : state -> Token.spanned
(** The next token; returns an [Eof]-carrying token at end of input.
    @raise Diag.Error on malformed input. *)

val tokenize : file:string -> string -> Token.spanned list
(** Lex an entire source string. The result always ends with [Eof].
    @raise Diag.Error on malformed input. *)
