(** Hand-written recursive-descent parser for the C subset.

    The parser owns the typedef, struct/union-tag, and enum-constant
    tables (typedef names must be distinguished from ordinary identifiers
    during parsing); ordinary declarations shadow typedef names through a
    scope stack. Enum constants are folded to integer literals; array
    sizes and other constant expressions are folded using a layout
    configuration (needed for [sizeof] in constant contexts). *)

val parse_tokens : ?layout:Layout.config -> Token.spanned list -> Ast.tunit
(** Parse a complete translation unit from preprocessed tokens.
    @raise Diag.Error on syntax errors. *)

val parse_string :
  ?layout:Layout.config ->
  ?defines:(string * string) list ->
  ?resolve:(string -> string option) ->
  file:string ->
  string ->
  Ast.tunit
(** Preprocess (see {!Preproc.run}) and parse a source string.
    @raise Diag.Error on preprocessing or syntax errors. *)
