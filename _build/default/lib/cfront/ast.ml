(** Abstract syntax for the C subset, produced by {!Parser}.

    Types are already resolved to {!Ctype.t} during parsing (the parser
    owns the typedef/tag tables, which it also needs for disambiguation),
    so the AST carries semantic types in casts and declarations. Expression
    types are computed later by {!Typecheck}. *)

type unop =
  | Neg
  | Pos
  | Lognot
  | Bitnot
  | Preinc
  | Predec
  | Postinc
  | Postdec

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Shl
  | Shr
  | Lt
  | Gt
  | Le
  | Ge
  | Eq
  | Ne
  | Bitand
  | Bitor
  | Bitxor
  | Logand
  | Logor

type expr = { e : expr_node; eloc : Srcloc.t }

and expr_node =
  | Eint of int64
  | Efloat of float
  | Echar of int
  | Estr of string
  | Eident of string
  | Eunary of unop * expr
  | Ebinary of binop * expr * expr
  | Eassign of binop option * expr * expr  (** [Some op] for [op=] *)
  | Econd of expr * expr * expr
  | Ecomma of expr * expr
  | Ecast of Ctype.t * expr
  | Esizeof_expr of expr
  | Esizeof_type of Ctype.t
  | Ecall of expr * expr list
  | Eindex of expr * expr
  | Efield of expr * string  (** [e.f] *)
  | Earrow of expr * string  (** [e->f] *)
  | Ederef of expr
  | Eaddrof of expr

type init = Iexpr of expr | Ilist of init list

type decl = {
  dname : string;
  dty : Ctype.t;
  dinit : init option;
  dloc : Srcloc.t;
  dstatic : bool;
  dextern : bool;
}

type stmt = { s : stmt_node; sloc : Srcloc.t }

and stmt_node =
  | Sexpr of expr
  | Sdecl of decl list
  | Sblock of stmt list
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sdo of stmt * expr
  | Sfor of stmt option * expr option * expr option * stmt
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sswitch of expr * stmt
  | Slabel of label * stmt
  | Sgoto of string
  | Snull

and label = Lcase of expr | Ldefault | Lname of string

type fundef = {
  fname : string;
  fty : Ctype.funty;
  fbody : stmt list;
  floc : Srcloc.t;
  fstatic : bool;
}

type global =
  | Gvar of decl
  | Gfun of fundef
  | Gproto of string * Ctype.t * Srcloc.t  (** function declaration *)

type tunit = { globals : global list }

(* ------------------------------------------------------------------ *)
(* Pretty-printing (for debugging and golden tests)                    *)
(* ------------------------------------------------------------------ *)

let unop_to_string = function
  | Neg -> "-"
  | Pos -> "+"
  | Lognot -> "!"
  | Bitnot -> "~"
  | Preinc | Postinc -> "++"
  | Predec | Postdec -> "--"

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Shl -> "<<"
  | Shr -> ">>"
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | Bitand -> "&"
  | Bitor -> "|"
  | Bitxor -> "^"
  | Logand -> "&&"
  | Logor -> "||"

let rec pp_expr ppf (x : expr) =
  match x.e with
  | Eint v -> Fmt.pf ppf "%Ld" v
  | Efloat f -> Fmt.pf ppf "%g" f
  | Echar c -> Fmt.pf ppf "'\\x%02x'" (c land 0xff)
  | Estr s -> Fmt.pf ppf "%S" s
  | Eident s -> Fmt.string ppf s
  | Eunary ((Postinc | Postdec) as op, e) ->
      Fmt.pf ppf "(%a%s)" pp_expr e (unop_to_string op)
  | Eunary (op, e) -> Fmt.pf ppf "(%s%a)" (unop_to_string op) pp_expr e
  | Ebinary (op, a, b) ->
      Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_to_string op) pp_expr b
  | Eassign (None, l, r) -> Fmt.pf ppf "(%a = %a)" pp_expr l pp_expr r
  | Eassign (Some op, l, r) ->
      Fmt.pf ppf "(%a %s= %a)" pp_expr l (binop_to_string op) pp_expr r
  | Econd (c, a, b) ->
      Fmt.pf ppf "(%a ? %a : %a)" pp_expr c pp_expr a pp_expr b
  | Ecomma (a, b) -> Fmt.pf ppf "(%a, %a)" pp_expr a pp_expr b
  | Ecast (t, e) -> Fmt.pf ppf "((%a)%a)" Ctype.pp t pp_expr e
  | Esizeof_expr e -> Fmt.pf ppf "sizeof(%a)" pp_expr e
  | Esizeof_type t -> Fmt.pf ppf "sizeof(%a)" Ctype.pp t
  | Ecall (f, args) ->
      Fmt.pf ppf "%a(%a)" pp_expr f (Fmt.list ~sep:Fmt.comma pp_expr) args
  | Eindex (a, i) -> Fmt.pf ppf "%a[%a]" pp_expr a pp_expr i
  | Efield (e, f) -> Fmt.pf ppf "%a.%s" pp_expr e f
  | Earrow (e, f) -> Fmt.pf ppf "%a->%s" pp_expr e f
  | Ederef e -> Fmt.pf ppf "(*%a)" pp_expr e
  | Eaddrof e -> Fmt.pf ppf "(&%a)" pp_expr e

let expr_to_string e = Fmt.str "%a" pp_expr e
