lib/cfront/parser.ml: Array Ast Buffer Ctype Diag Hashtbl Int64 Layout List Option Preproc Printf Srcloc String Token
