lib/cfront/diag.mli: Format Srcloc
