lib/cfront/preproc.ml: Array Diag Hashtbl Int64 Lexer List Set Srcloc String Token
