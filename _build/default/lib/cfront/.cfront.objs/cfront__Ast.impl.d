lib/cfront/ast.ml: Ctype Fmt Srcloc
