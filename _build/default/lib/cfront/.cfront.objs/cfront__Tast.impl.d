lib/cfront/tast.ml: Ast Ctype Cvar List Srcloc
