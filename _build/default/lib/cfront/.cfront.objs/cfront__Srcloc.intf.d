lib/cfront/srcloc.mli: Format
