lib/cfront/token.ml: Char Printf Srcloc
