lib/cfront/layout.mli: Ctype
