lib/cfront/typecheck.mli: Ast Layout Tast
