lib/cfront/lexer.ml: Buffer Char Diag Int64 List Srcloc String Token
