lib/cfront/cvar.mli: Ctype Format Hashtbl Map Set Srcloc
