lib/cfront/typecheck.ml: Ast Ctype Cvar Diag Hashtbl Int64 Layout List Option String Tast
