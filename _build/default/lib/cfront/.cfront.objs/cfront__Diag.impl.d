lib/cfront/diag.ml: Fmt Format List Srcloc
