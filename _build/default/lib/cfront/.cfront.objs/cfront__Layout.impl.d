lib/cfront/layout.ml: Ctype Diag List
