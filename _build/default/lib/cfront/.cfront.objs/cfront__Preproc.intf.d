lib/cfront/preproc.mli: Token
