lib/cfront/srcloc.ml: Fmt String
