lib/cfront/parser.mli: Ast Layout Token
