lib/cfront/ctype.ml: Diag Fmt List Set
