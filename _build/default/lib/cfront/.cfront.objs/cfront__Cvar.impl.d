lib/cfront/cvar.ml: Ctype Fmt Hashtbl Map Printf Set Srcloc
