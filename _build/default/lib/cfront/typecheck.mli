(** Type checker: resolves identifiers to {!Cvar.t}, computes the C type
    of every expression, folds [sizeof], and rewrites arrow accesses into
    dereference + member selection.

    Deliberately permissive where the pointer analysis does not need
    strictness: its job is to assign the {e declared} types the framework's
    inference rules depend on, not to validate standard conformance. *)

val check :
  ?layout:Layout.config -> ?file:string -> Ast.tunit -> Tast.program
(** Type-check a parsed translation unit. Implicit function declarations
    produce warnings (see {!Diag.take_warnings}).
    @raise Diag.Error on type errors. *)
