(** Program variables and other named storage objects.

    A {!t} identifies one top-level storage object: a global, a local, a
    parameter, a compiler temporary, a function's return slot, an
    allocation-site pseudo-variable, a string literal, a function (for
    function pointers), or a per-function vararg blob. Uniqueness is by
    [vid]; names are kept for display only. *)

type kind =
  | Global
  | Local of string  (** enclosing function *)
  | Param of string
  | Temp of string
  | Ret of string  (** pseudo-variable holding a function's return value *)
  | Heap of Srcloc.t * int  (** allocation site: location, site index *)
  | Strlit of int  (** string-literal object *)
  | Funval of string  (** the function itself, as pointed to by fn ptrs *)
  | Vararg of string  (** blob receiving extra actuals of a vararg callee *)

type t = { vid : int; vname : string; vty : Ctype.t; vkind : kind }

let counter = ref 0

let fresh ~name ~ty ~kind =
  incr counter;
  { vid = !counter; vname = name; vty = ty; vkind = kind }

let compare a b = compare a.vid b.vid

let equal a b = a.vid = b.vid

let hash a = a.vid

let qualified_name v =
  match v.vkind with
  | Global | Strlit _ | Funval _ -> v.vname
  | Local f | Param f | Temp f | Ret f | Vararg f -> f ^ "::" ^ v.vname
  | Heap (loc, i) ->
      if Srcloc.is_dummy loc then Printf.sprintf "malloc_%d" i
      else Printf.sprintf "malloc_%d@%d" i loc.Srcloc.line

let pp ppf v = Fmt.string ppf (qualified_name v)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal

  let hash = hash
end)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
