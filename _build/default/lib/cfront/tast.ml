(** Typed abstract syntax, produced by {!Typecheck}.

    Every expression node carries its C type. [e->f] has been rewritten to
    [( *e).f], [sizeof] has been folded to a constant, and identifiers have
    been resolved to {!Cvar.t} storage objects (enum constants were already
    folded by the parser). Array-typed expressions keep their array type;
    decay to a pointer is handled by the normalizer, which knows the
    representative-element convention. *)

type texpr = { te : node; tty : Ctype.t; tloc : Srcloc.t }

and node =
  | Tconst_int of int64
  | Tconst_float of float
  | Tconst_str of string
  | Tvar of Cvar.t
  | Tunary of Ast.unop * texpr
  | Tbinary of Ast.binop * texpr * texpr
  | Tassign of Ast.binop option * texpr * texpr
  | Tcond of texpr * texpr * texpr
  | Tcomma of texpr * texpr
  | Tcast of Ctype.t * texpr
  | Tcall of texpr * texpr list
  | Tindex of texpr * texpr
  | Tfield of texpr * string
  | Tderef of texpr
  | Taddrof of texpr

type tinit = Tiexpr of texpr | Tilist of tinit list

type tdecl = { dvar : Cvar.t; dinit : tinit option; dloc : Srcloc.t }

type tstmt = { ts : tstmt_node; tsloc : Srcloc.t }

and tstmt_node =
  | TSexpr of texpr
  | TSdecl of tdecl list
  | TSblock of tstmt list
  | TSif of texpr * tstmt * tstmt option
  | TSwhile of texpr * tstmt
  | TSdo of tstmt * texpr
  | TSfor of tstmt option * texpr option * texpr option * tstmt
  | TSreturn of texpr option
  | TSbreak
  | TScontinue
  | TSswitch of texpr * tstmt
  | TSlabel of tlabel * tstmt
  | TSgoto of string
  | TSnull

and tlabel = TLcase of int64 | TLdefault | TLname of string

type tfun = {
  ffvar : Cvar.t;  (** the function object; type is [Ctype.Func _] *)
  fparams : Cvar.t list;
  fret : Cvar.t option;  (** return slot; [None] for void functions *)
  fvararg : Cvar.t option;  (** blob for extra actuals, vararg functions *)
  fbody : tstmt list;
  ffloc : Srcloc.t;
}

type program = {
  pglobals : tdecl list;
  pfuncs : tfun list;
  pexterns : Cvar.t list;  (** declared functions without bodies *)
  pfile : string;
}

(** Is [f] defined (has a body) in [p]? *)
let defined_fun p name =
  List.find_opt (fun f -> f.ffvar.Cvar.vname = name) p.pfuncs

let extern_fun p name =
  List.find_opt (fun v -> v.Cvar.vname = name) p.pexterns
