(** Program variables and other named storage objects.

    A {!t} identifies one top-level storage object: a global, a local, a
    parameter, a compiler temporary, a function's return slot, an
    allocation-site pseudo-variable, a string literal, a function (as
    pointed to by function pointers), or a per-function vararg blob.
    Identity is by [vid]. *)

type kind =
  | Global
  | Local of string  (** enclosing function *)
  | Param of string
  | Temp of string
  | Ret of string  (** pseudo-variable holding a function's return value *)
  | Heap of Srcloc.t * int  (** allocation site: location, site index *)
  | Strlit of int  (** string-literal object *)
  | Funval of string  (** the function itself *)
  | Vararg of string  (** blob receiving extra actuals of a vararg callee *)

type t = { vid : int; vname : string; vty : Ctype.t; vkind : kind }

val fresh : name:string -> ty:Ctype.t -> kind:kind -> t
(** A new storage object with a globally unique [vid]. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val hash : t -> int

val qualified_name : t -> string
(** ["f::x"] for function-scoped objects, the bare name for globals,
    ["malloc_3@17"]-style names for heap objects. *)

val pp : Format.formatter -> t -> unit

module Tbl : Hashtbl.S with type key = t

module Set : Set.S with type elt = t

module Map : Map.S with type key = t
