(** Concrete, configurable structure-layout engine.

    The "Offsets" analysis instance and the concrete interpreter both need a
    specific layout strategy: sizes, alignments, and field offsets. Layout
    is configurable so the repository can demonstrate the paper's
    portability argument — the Offsets instance computes different results
    under different configurations, while the portable instances do not.

    Simplifications (documented in DESIGN.md): bit-fields occupy the full
    storage unit of their base type; structs use natural alignment with the
    usual greedy padding rule. *)

type config = {
  name : string;
  char_size : int;
  short_size : int;
  int_size : int;
  long_size : int;
  longlong_size : int;
  float_size : int;
  double_size : int;
  longdouble_size : int;
  ptr_size : int;
  enum_size : int;
  max_align : int;  (** alignment is capped at this many bytes *)
}

(** The layout the paper's experiments assume: 4-byte pointers, no surprise
    padding ("assuming that every pointer takes four bytes of storage"). *)
let ilp32 =
  {
    name = "ilp32";
    char_size = 1;
    short_size = 2;
    int_size = 4;
    long_size = 4;
    longlong_size = 8;
    float_size = 4;
    double_size = 8;
    longdouble_size = 12;
    ptr_size = 4;
    enum_size = 4;
    max_align = 4;
  }

(** A modern 64-bit layout — used to show that Offsets results are not
    portable across layout strategies. *)
let lp64 =
  {
    name = "lp64";
    char_size = 1;
    short_size = 2;
    int_size = 4;
    long_size = 8;
    longlong_size = 8;
    float_size = 4;
    double_size = 8;
    longdouble_size = 16;
    ptr_size = 8;
    enum_size = 4;
    max_align = 8;
  }

(** A deliberately odd layout (2-byte pointers, everything word-aligned)
    for stress-testing portability claims. *)
let word16 =
  {
    name = "word16";
    char_size = 1;
    short_size = 2;
    int_size = 2;
    long_size = 4;
    longlong_size = 8;
    float_size = 4;
    double_size = 8;
    longdouble_size = 8;
    ptr_size = 2;
    enum_size = 2;
    max_align = 2;
  }

let default = ilp32

let align_up x a = if a <= 1 then x else (x + a - 1) / a * a

let rec size_of cfg (ty : Ctype.t) : int =
  match ty with
  | Ctype.Void -> 1 (* GNU-style: sizeof(void) = 1; simplifies void* blobs *)
  | Ctype.Int (k, _) -> (
      match k with
      | Ctype.IChar -> cfg.char_size
      | Ctype.IShort -> cfg.short_size
      | Ctype.IInt -> cfg.int_size
      | Ctype.ILong -> cfg.long_size
      | Ctype.ILongLong -> cfg.longlong_size)
  | Ctype.Float k -> (
      match k with
      | Ctype.FFloat -> cfg.float_size
      | Ctype.FDouble -> cfg.double_size
      | Ctype.FLongDouble -> cfg.longdouble_size)
  | Ctype.Ptr _ -> cfg.ptr_size
  | Ctype.Array (t, Some n) -> size_of cfg t * max n 1
  | Ctype.Array (t, None) -> size_of cfg t (* representative element *)
  | Ctype.Func _ -> cfg.ptr_size
  | Ctype.Comp c -> comp_size cfg c

and align_of cfg (ty : Ctype.t) : int =
  let natural =
    match ty with
    | Ctype.Void -> 1
    | Ctype.Int _ | Ctype.Float _ | Ctype.Ptr _ | Ctype.Func _ ->
        size_of cfg ty
    | Ctype.Array (t, _) -> align_of cfg t
    | Ctype.Comp c -> (
        match c.Ctype.cfields with
        | None ->
            Diag.error "layout of incomplete struct/union '%s'" c.Ctype.ctag
        | Some fs ->
            List.fold_left (fun a f -> max a (align_of cfg f.Ctype.fty)) 1 fs)
  in
  min natural cfg.max_align

and comp_size cfg (c : Ctype.comp) : int =
  match c.Ctype.cfields with
  | None -> Diag.error "size of incomplete struct/union '%s'" c.Ctype.ctag
  | Some [] -> 0
  | Some fs ->
      if c.Ctype.cunion then
        let m =
          List.fold_left (fun a f -> max a (size_of cfg f.Ctype.fty)) 0 fs
        in
        align_up m (align_of cfg (Ctype.Comp c))
      else
        let off =
          List.fold_left
            (fun off f ->
              let a = align_of cfg f.Ctype.fty in
              align_up off a + size_of cfg f.Ctype.fty)
            0 fs
        in
        align_up off (align_of cfg (Ctype.Comp c))

(** Byte offset of field [name] within struct/union type [ty] (0 for every
    union member). *)
let offset_of_field cfg (ty : Ctype.t) (name : string) : int =
  match Ctype.strip_arrays ty with
  | Ctype.Comp c -> (
      match c.Ctype.cfields with
      | None ->
          Diag.error "offsetof in incomplete struct/union '%s'" c.Ctype.ctag
      | Some fs ->
          if c.Ctype.cunion then
            if List.exists (fun f -> f.Ctype.fname = name) fs then 0
            else Diag.error "no field '%s' in union %s" name c.Ctype.ctag
          else
            let rec go off = function
              | [] -> Diag.error "no field '%s' in struct %s" name c.Ctype.ctag
              | f :: rest ->
                  let off = align_up off (align_of cfg f.Ctype.fty) in
                  if f.Ctype.fname = name then off
                  else go (off + size_of cfg f.Ctype.fty) rest
            in
            go 0 fs)
  | _ -> Diag.error "offsetof applied to non-aggregate type"

(** Byte offset of the sub-object at [path] within [ty]. Arrays contribute
    offset 0 (single representative element). *)
let rec offset_of_path cfg (ty : Ctype.t) (path : Ctype.path) : int =
  match path with
  | [] -> 0
  | f :: rest ->
      let base = Ctype.strip_arrays ty in
      let off = offset_of_field cfg base f in
      let fty =
        match Ctype.find_field base f with
        | Some fld -> fld.Ctype.fty
        | None -> Diag.error "no field '%s'" f
      in
      off + offset_of_path cfg fty rest

(** All leaf sub-objects of [ty] (through unions), with their byte offsets
    and types. Sorted by offset, then by path (union members share
    offsets). *)
let leaf_offsets cfg (ty : Ctype.t) : (Ctype.path * int * Ctype.t) list =
  let leaves = Ctype.leaf_paths_through_unions ty in
  let entries =
    List.map
      (fun p ->
        let t = Ctype.strip_arrays (Ctype.type_at_path ty p) in
        (p, offset_of_path cfg ty p, t))
      leaves
  in
  List.stable_sort (fun (_, o1, _) (_, o2, _) -> compare o1 o2) entries

(** Does byte [off] of an object of type [ty] lie inside an array
    sub-object? Used by the stride-arithmetic refinement. *)
let offset_in_array cfg (ty : Ctype.t) (off : int) : bool =
  let rec go ty off =
    if off < 0 then false
    else
      match ty with
      | Ctype.Array _ -> off < size_of cfg ty
      | Ctype.Comp c -> (
          match c.Ctype.cfields with
          | None -> false
          | Some fs ->
              if c.Ctype.cunion then
                List.exists
                  (fun f ->
                    off < size_of cfg f.Ctype.fty && go f.Ctype.fty off)
                  fs
              else
                let rec walk fo = function
                  | [] -> false
                  | f :: rest ->
                      let fo = align_up fo (align_of cfg f.Ctype.fty) in
                      let fsz = size_of cfg f.Ctype.fty in
                      if off >= fo && off < fo + fsz then
                        go f.Ctype.fty (off - fo)
                      else walk (fo + fsz) rest
                in
                walk 0 fs)
      | _ -> false
  in
  go ty off

(** Fold a byte offset into the canonical representative: any offset inside
    an array sub-object maps to the corresponding offset within element 0
    (paper: "if [t.n] is within any element of an array, [n] is adjusted to
    be the corresponding offset within the array's (single) representative
    element"). Offsets outside the object, or in padding, are returned
    unchanged. *)
let canon_offset cfg (ty : Ctype.t) (off : int) : int =
  let rec go ty off =
    (* returns the canonical offset relative to the start of [ty] *)
    if off < 0 then off
    else
      match ty with
      | Ctype.Array (elem, _) ->
          let es = max 1 (size_of cfg elem) in
          if off >= size_of cfg ty then off else go elem (off mod es)
      | Ctype.Comp c -> (
          match c.Ctype.cfields with
          | None -> off
          | Some fs ->
              if c.Ctype.cunion then
                (* try members in order; take the first that canonicalizes *)
                let rec try_members = function
                  | [] -> off
                  | f :: rest ->
                      if off < size_of cfg f.Ctype.fty then
                        let o' = go f.Ctype.fty off in
                        if o' <> off then o' else try_members rest
                      else try_members rest
                in
                try_members fs
              else
                let rec walk fo = function
                  | [] -> off
                  | f :: rest ->
                      let fo = align_up fo (align_of cfg f.Ctype.fty) in
                      let fsz = size_of cfg f.Ctype.fty in
                      if off >= fo && off < fo + fsz then
                        fo + go f.Ctype.fty (off - fo)
                      else walk (fo + fsz) rest
                in
                walk 0 fs)
      | _ -> off
  in
  go ty off
