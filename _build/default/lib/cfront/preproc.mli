(** A small C preprocessor operating on token streams.

    Supported: [#define] (object- and function-like, with [#] stringize
    and [##] paste), [#undef], [#include] (resolved through a
    caller-supplied function, so corpora can ship virtual headers),
    [#if]/[#ifdef]/[#ifndef]/[#elif]/[#else]/[#endif] with full integer
    constant expressions and [defined], [#error], and [#pragma]
    (ignored). *)

val run :
  ?defines:(string * string) list ->
  ?resolve:(string -> string option) ->
  file:string ->
  string ->
  Token.spanned list
(** Preprocess a source string to a directive-free, macro-expanded token
    stream ending in [Eof].

    [defines] supplies initial object-like macros as
    (name, replacement-text) pairs; [resolve] maps [#include] paths to
    their source text ([None] is an error).

    @raise Diag.Error on malformed directives or unresolvable includes. *)
