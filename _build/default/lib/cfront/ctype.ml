(** C types, ANSI type compatibility, and the field-path utilities used by
    the pointer-analysis strategies.

    Types are structural except for struct/union, which carry a unique id
    ([cid]) and mutable field list (mutable so that recursive and initially
    incomplete types can be tied after parsing).

    Field paths. Throughout the analysis a (sub-)field of an object is
    identified by a {e field path}: a list of field names leading from the
    object's outermost type to the sub-object. Array types are transparent
    in paths — every array is modelled by a single representative element
    (paper Section 2), so a path steps directly from an array to a field of
    its element type. *)

type signedness = Signed | Unsigned

type ikind = IChar | IShort | IInt | ILong | ILongLong

type fkind = FFloat | FDouble | FLongDouble

type t =
  | Void
  | Int of ikind * signedness
  | Float of fkind
  | Ptr of t
  | Array of t * int option  (** element type, length if known *)
  | Func of funty
  | Comp of comp  (** struct or union *)

and funty = { ret : t; params : (string * t) list; varargs : bool }

and comp = {
  cid : int;
  ctag : string;
  cunion : bool;
  mutable cfields : field list option;  (** [None] while incomplete *)
}

and field = { fname : string; fty : t; fbits : int option }

let next_cid = ref 0

let fresh_comp ~tag ~is_union =
  incr next_cid;
  { cid = !next_cid; ctag = tag; cunion = is_union; cfields = None }

(* Common shorthands *)
let char_t = Int (IChar, Signed)
let uchar_t = Int (IChar, Unsigned)
let short_t = Int (IShort, Signed)
let int_t = Int (IInt, Signed)
let uint_t = Int (IInt, Unsigned)
let long_t = Int (ILong, Signed)
let ulong_t = Int (ILong, Unsigned)
let float_t = Float FFloat
let double_t = Float FDouble

(* ------------------------------------------------------------------ *)
(* Predicates and accessors                                            *)
(* ------------------------------------------------------------------ *)

let is_void = function Void -> true | _ -> false
let is_integer = function Int _ -> true | _ -> false
let is_floating = function Float _ -> true | _ -> false
let is_arith t = is_integer t || is_floating t
let is_ptr = function Ptr _ -> true | _ -> false
let is_array = function Array _ -> true | _ -> false
let is_func = function Func _ -> true | _ -> false
let is_scalar t = is_arith t || is_ptr t

let is_comp = function Comp _ -> true | _ -> false
let is_struct = function Comp c -> not c.cunion | _ -> false
let is_union = function Comp c -> c.cunion | _ -> false

let pointee t =
  match t with
  | Ptr t -> t
  | _ -> Diag.error "pointee of non-pointer type (internal)"

let elem_ty = function
  | Array (t, _) -> t
  | _ -> Diag.error "element type of non-array (internal)"

(** Strip array layers: the type used for member access through the single
    representative element. *)
let rec strip_arrays = function Array (t, _) -> strip_arrays t | t -> t

let fields_of ty : field list =
  match strip_arrays ty with
  | Comp { cfields = Some fs; _ } -> fs
  | Comp { cfields = None; ctag; _ } ->
      Diag.error "use of incomplete struct/union '%s'" ctag
  | _ -> []

let find_field ty name : field option =
  List.find_opt (fun f -> f.fname = name) (fields_of ty)

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                     *)
(* ------------------------------------------------------------------ *)

let rec pp ppf = function
  | Void -> Fmt.string ppf "void"
  | Int (k, s) ->
      let base =
        match k with
        | IChar -> "char"
        | IShort -> "short"
        | IInt -> "int"
        | ILong -> "long"
        | ILongLong -> "long long"
      in
      if s = Unsigned then Fmt.pf ppf "unsigned %s" base
      else Fmt.string ppf base
  | Float FFloat -> Fmt.string ppf "float"
  | Float FDouble -> Fmt.string ppf "double"
  | Float FLongDouble -> Fmt.string ppf "long double"
  | Ptr t -> Fmt.pf ppf "%a*" pp t
  | Array (t, Some n) -> Fmt.pf ppf "%a[%d]" pp t n
  | Array (t, None) -> Fmt.pf ppf "%a[]" pp t
  | Func { ret; params; varargs } ->
      Fmt.pf ppf "%a(%a%s)" pp ret
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (_, t) -> pp ppf t))
        params
        (if varargs then ", ..." else "")
  | Comp c ->
      Fmt.pf ppf "%s %s" (if c.cunion then "union" else "struct") c.ctag

let to_string t = Fmt.str "%a" pp t

(* ------------------------------------------------------------------ *)
(* Equality                                                            *)
(* ------------------------------------------------------------------ *)

let rec equal a b =
  match (a, b) with
  | Void, Void -> true
  | Int (k1, s1), Int (k2, s2) -> k1 = k2 && s1 = s2
  | Float k1, Float k2 -> k1 = k2
  | Ptr a, Ptr b -> equal a b
  | Array (a, n1), Array (b, n2) -> equal a b && n1 = n2
  | Func f1, Func f2 ->
      equal f1.ret f2.ret
      && f1.varargs = f2.varargs
      && List.length f1.params = List.length f2.params
      && List.for_all2 (fun (_, t1) (_, t2) -> equal t1 t2) f1.params f2.params
  | Comp c1, Comp c2 -> c1.cid = c2.cid
  | (Void | Int _ | Float _ | Ptr _ | Array _ | Func _ | Comp _), _ -> false

(* ------------------------------------------------------------------ *)
(* ANSI compatibility (ISO 6.2.7) — structural, cycle-safe             *)
(* ------------------------------------------------------------------ *)

module Pairset = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let rec compat_in assumed a b =
  match (a, b) with
  | Void, Void -> true
  | Int (k1, s1), Int (k2, s2) -> k1 = k2 && s1 = s2
  | Float k1, Float k2 -> k1 = k2
  | Ptr a, Ptr b -> compat_in assumed a b
  | Array (a, n1), Array (b, n2) ->
      compat_in assumed a b
      && (match (n1, n2) with Some x, Some y -> x = y | _ -> true)
  | Func f1, Func f2 ->
      compat_in assumed f1.ret f2.ret
      && f1.varargs = f2.varargs
      && List.length f1.params = List.length f2.params
      && List.for_all2
           (fun (_, t1) (_, t2) -> compat_in assumed t1 t2)
           f1.params f2.params
  | Comp c1, Comp c2 ->
      c1.cid = c2.cid
      || (c1.cunion = c2.cunion
         &&
         let key =
           if c1.cid <= c2.cid then (c1.cid, c2.cid) else (c2.cid, c1.cid)
         in
         if Pairset.mem key assumed then true
         else
           match (c1.cfields, c2.cfields) with
           | Some fs1, Some fs2 ->
               let assumed = Pairset.add key assumed in
               List.length fs1 = List.length fs2
               && List.for_all2
                    (fun f1 f2 ->
                      f1.fname = f2.fname && f1.fbits = f2.fbits
                      && compat_in assumed f1.fty f2.fty)
                    fs1 fs2
           | _ ->
               (* at least one incomplete: compatible only when it is the
                  same type, which the cid test above already checked *)
               false)
  | (Void | Int _ | Float _ | Ptr _ | Array _ | Func _ | Comp _), _ -> false

(** [compatible a b] — ANSI "compatible types", used by the Common Initial
    Sequence strategy. Structural; struct/union members must agree in name,
    bit-width, and (recursively) type. *)
let compatible a b = compat_in Pairset.empty a b

(* ------------------------------------------------------------------ *)
(* Field paths                                                         *)
(* ------------------------------------------------------------------ *)

type path = string list

let pp_path ppf (p : path) =
  if p = [] then Fmt.string ppf "ε"
  else Fmt.(list ~sep:(any ".") string) ppf p

let path_to_string p = Fmt.str "%a" pp_path p

(** Type of the sub-object at [path] within [ty]. Arrays are unwrapped
    transparently before each step and never at the end (the caller decides
    whether to treat an array-typed sub-object as its element). *)
let rec type_at_path ty (p : path) : t =
  match p with
  | [] -> ty
  | f :: rest -> (
      match find_field ty f with
      | Some fld -> type_at_path fld.fty rest
      | None ->
          Diag.error "type %s has no field '%s'" (to_string ty) f)

(** The innermost-first-field path of [ty] (paper: recursive [normalize] for
    the Collapse-on-Cast / Common-Initial-Sequence instances). Unions cut
    normalization (members overlap; we keep the union object whole). *)
let rec innermost_first_path ty : path =
  match strip_arrays ty with
  | Comp { cunion = false; cfields = Some ({ fname; fty; _ } :: _); _ } ->
      fname :: innermost_first_path fty
  | _ -> []

(** All leaf field paths of [ty], in declaration (= layout) order. A leaf is
    a sub-object that is not a non-empty struct: scalars, unions (kept
    whole), empty structs, and function-typed members. For a non-aggregate
    type the single leaf is the empty path. *)
let rec leaf_paths ty : path list =
  match strip_arrays ty with
  | Comp { cunion = false; cfields = Some fs; _ } when fs <> [] ->
      List.concat_map
        (fun f -> List.map (fun p -> f.fname :: p) (leaf_paths f.fty))
        fs
  | _ -> [ [] ]

(** Leaf paths of [ty] seen through unions as well — used by the layout
    engine and the Offsets instance, where union members genuinely overlap
    at byte offsets. *)
let rec leaf_paths_through_unions ty : path list =
  match strip_arrays ty with
  | Comp { cfields = Some fs; _ } when fs <> [] ->
      List.concat_map
        (fun f ->
          List.map (fun p -> f.fname :: p) (leaf_paths_through_unions f.fty))
        fs
  | _ -> [ [] ]

let is_prefix (p : path) (q : path) : bool =
  let rec go p q =
    match (p, q) with
    | [], _ -> true
    | x :: p', y :: q' -> x = y && go p' q'
    | _ -> false
  in
  go p q

(** Index of leaf path [p] within [leaf_paths ty]; [None] when [p] is not a
    leaf of [ty]. *)
let leaf_index ty (p : path) : int option =
  let rec find i = function
    | [] -> None
    | q :: _ when q = p -> Some i
    | _ :: rest -> find (i + 1) rest
  in
  find 0 (leaf_paths ty)

(** Shortest prefix of [p] (possibly [p] itself) whose type within [ty] is
    an array — the outermost enclosing array of the leaf, if any. *)
let outermost_array_prefix ty (p : path) : path option =
  let rec go ty_here taken remaining =
    if is_array ty_here then Some (List.rev taken)
    else
      match remaining with
      | [] -> None
      | f :: rest -> (
          match find_field ty_here f with
          | Some fld -> go fld.fty (f :: taken) rest
          | None -> None)
  in
  go ty [] p

(** [following_leaves ty p] — the leaf paths of [ty] strictly after leaf [p]
    in layout order, plus (paper footnote 6) every leaf sharing an enclosing
    array with [p]: iteration can wrap around within an array, so all fields
    within that array must be included. Does not include [p] itself unless
    forced in by the array rule. *)
let following_leaves ty (p : path) : path list =
  let leaves = leaf_paths ty in
  let after =
    match leaf_index ty p with
    | None -> leaves (* not a leaf we know: be conservative *)
    | Some i -> List.filteri (fun j _ -> j > i) leaves
  in
  match outermost_array_prefix ty p with
  | None -> after
  | Some arr ->
      (* all leaves within the enclosing array, including [p] itself:
         iteration wraps to the same field of the next element, which is
         the same representative cell *)
      let in_array = List.filter (fun q -> is_prefix arr q) leaves in
      (* union, preserving layout order *)
      List.filter (fun q -> List.mem q after || List.mem q in_array) leaves

(** All prefixes [δ] of the normalized leaf path [β] such that
    [δ ++ innermost_first_path (type_at δ) = β] — i.e. the sub-objects whose
    normalized representative is the cell [β]. Ordered from the whole object
    ([]) inward; always includes [β] itself when [β] is a valid leaf. *)
let enclosing_candidates ty (beta : path) : path list =
  let rec all_prefixes sofar = function
    | [] -> [ List.rev sofar ]
    | x :: rest -> List.rev sofar :: all_prefixes (x :: sofar) rest
  in
  let cands = all_prefixes [] beta in
  List.filter
    (fun delta ->
      match
        try Some (type_at_path ty delta) with Diag.Error _ -> None
      with
      | None -> false
      | Some dty -> delta @ innermost_first_path dty = beta)
    cands

(* ------------------------------------------------------------------ *)
(* Common initial sequence (ISO 6.3.2.3 / 6.5.2.1)                     *)
(* ------------------------------------------------------------------ *)

(** The common initial sequence of two struct types: the maximal prefix of
    corresponding top-level fields with compatible types (and equal bit
    widths). Empty unless both are structs with at least one compatible
    leading field pair. *)
let common_initial_seq (t1 : t) (t2 : t) : (field * field) list =
  match (strip_arrays t1, strip_arrays t2) with
  | Comp c1, Comp c2 when (not c1.cunion) && not c2.cunion -> (
      match (c1.cfields, c2.cfields) with
      | Some fs1, Some fs2 ->
          let rec go acc fs1 fs2 =
            match (fs1, fs2) with
            | f1 :: r1, f2 :: r2
              when f1.fbits = f2.fbits && compatible f1.fty f2.fty ->
                go ((f1, f2) :: acc) r1 r2
            | _ -> List.rev acc
          in
          go [] fs1 fs2
      | _ -> [])
  | _ -> []
