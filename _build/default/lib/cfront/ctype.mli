(** C types, ANSI type compatibility, and the field-path utilities the
    pointer-analysis strategies build on.

    Types are structural except for struct/union, which carry a unique id
    and a mutable field list (tied after parsing for recursive and
    initially-incomplete types).

    {b Field paths.} A (sub-)field of an object is identified by a list of
    field names from the object's outermost type down. Array types are
    transparent in paths: every array is modelled by a single
    representative element (paper Section 2). *)

type signedness = Signed | Unsigned

type ikind = IChar | IShort | IInt | ILong | ILongLong

type fkind = FFloat | FDouble | FLongDouble

type t =
  | Void
  | Int of ikind * signedness
  | Float of fkind
  | Ptr of t
  | Array of t * int option  (** element type, length if known *)
  | Func of funty
  | Comp of comp  (** struct or union *)

and funty = { ret : t; params : (string * t) list; varargs : bool }

and comp = {
  cid : int;  (** unique per declaration *)
  ctag : string;
  cunion : bool;
  mutable cfields : field list option;  (** [None] while incomplete *)
}

and field = { fname : string; fty : t; fbits : int option }

val fresh_comp : tag:string -> is_union:bool -> comp
(** A new, initially incomplete struct/union declaration. *)

(** {1 Shorthands} *)

val char_t : t
val uchar_t : t
val short_t : t
val int_t : t
val uint_t : t
val long_t : t
val ulong_t : t
val float_t : t
val double_t : t

(** {1 Predicates and accessors} *)

val is_void : t -> bool
val is_integer : t -> bool
val is_floating : t -> bool
val is_arith : t -> bool
val is_ptr : t -> bool
val is_array : t -> bool
val is_func : t -> bool
val is_scalar : t -> bool
val is_comp : t -> bool
val is_struct : t -> bool
val is_union : t -> bool

val pointee : t -> t
(** @raise Diag.Error on non-pointers. *)

val elem_ty : t -> t
(** @raise Diag.Error on non-arrays. *)

val strip_arrays : t -> t
(** Remove array layers: the type used for member access through the
    single representative element. *)

val fields_of : t -> field list
(** Fields of a (possibly array-wrapped) struct/union; [[]] for other
    types. @raise Diag.Error on incomplete struct/union types. *)

val find_field : t -> string -> field option

(** {1 Printing, equality, compatibility} *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val equal : t -> t -> bool
(** Structural equality; struct/union by declaration identity. *)

val compatible : t -> t -> bool
(** ANSI "compatible types" (ISO 6.2.7), as used by the Common Initial
    Sequence instance. Structural and cycle-safe; struct/union members
    must agree in name, bit-width, and (recursively) type. *)

(** {1 Field paths} *)

type path = string list

val pp_path : Format.formatter -> path -> unit

val path_to_string : path -> string

val type_at_path : t -> path -> t
(** Type of the sub-object at a path; arrays unwrap transparently before
    each step. @raise Diag.Error on unknown fields. *)

val innermost_first_path : t -> path
(** The innermost-first-field path (the paper's recursive [normalize] for
    the path-based instances). Unions cut the descent. *)

val leaf_paths : t -> path list
(** All leaf field paths in declaration (= layout) order. Leaves are
    scalars, whole unions, empty structs, and function-typed members; a
    non-aggregate type has the single leaf [[]]. *)

val leaf_paths_through_unions : t -> path list
(** Like {!leaf_paths} but descending into union members (used by the
    layout engine, where members genuinely overlap). *)

val is_prefix : path -> path -> bool

val leaf_index : t -> path -> int option

val outermost_array_prefix : t -> path -> path option
(** Shortest prefix whose type is an array — the outermost enclosing
    array of the leaf, if any. *)

val following_leaves : t -> path -> path list
(** Leaf paths strictly after the given leaf in layout order, plus (paper
    footnote 6) every leaf sharing an enclosing array with it. *)

val enclosing_candidates : t -> path -> path list
(** All prefixes [δ] of a normalized leaf path [β] with
    [δ @ innermost_first_path (type_at δ) = β] — the sub-objects whose
    normalized representative is the cell [β], outermost first. *)

(** {1 Common initial sequence} *)

val common_initial_seq : t -> t -> (field * field) list
(** The maximal prefix of corresponding top-level fields with compatible
    types and equal bit-widths (ISO 6.3.2.3 / 6.5.2.1). Empty unless both
    types are structs with at least one compatible leading pair. *)
