(** Diagnostics: structured front-end errors carrying a source location.

    All front-end phases (preprocessor, lexer, parser, type checker,
    normalizer) report failures through {!error}, which raises {!Error}.
    Drivers catch the exception at the top level and render it with
    {!pp_payload}. *)

type severity = Warning | Error_sev

type payload = { severity : severity; loc : Srcloc.t; message : string }

exception Error of payload

let pp_severity ppf = function
  | Warning -> Fmt.string ppf "warning"
  | Error_sev -> Fmt.string ppf "error"

let pp_payload ppf p =
  Fmt.pf ppf "%a: %a: %s" Srcloc.pp p.loc pp_severity p.severity p.message

let error ?(loc = Srcloc.dummy) fmt =
  Format.kasprintf
    (fun message -> raise (Error { severity = Error_sev; loc; message }))
    fmt

(* Warnings are collected rather than printed so that tests can assert on
   them and CLI users can choose a rendering. *)
let warnings : payload list ref = ref []

let warn ?(loc = Srcloc.dummy) fmt =
  Format.kasprintf
    (fun message ->
      warnings := { severity = Warning; loc; message } :: !warnings)
    fmt

let take_warnings () =
  let ws = List.rev !warnings in
  warnings := [];
  ws

let protect ~(f : unit -> 'a) : ('a, payload) result =
  match f () with x -> Ok x | exception Error p -> Error p
