(** Concrete, configurable structure-layout engine.

    The "Offsets" analysis instance and the concrete interpreter both need
    a specific layout strategy: sizes, alignments, and field offsets.
    Layout is configurable so the repository can demonstrate the paper's
    portability argument — the Offsets instance computes different results
    under different configurations, while the portable instances do not. *)

type config = {
  name : string;
  char_size : int;
  short_size : int;
  int_size : int;
  long_size : int;
  longlong_size : int;
  float_size : int;
  double_size : int;
  longdouble_size : int;
  ptr_size : int;
  enum_size : int;
  max_align : int;  (** alignment is capped at this many bytes *)
}

val ilp32 : config
(** The layout the paper's experiments assume: 4-byte pointers. *)

val lp64 : config
(** A modern 64-bit layout (8-byte pointers and longs). *)

val word16 : config
(** A deliberately odd layout (2-byte pointers) for portability stress
    tests. *)

val default : config
(** {!ilp32}. *)

val align_up : int -> int -> int

val size_of : config -> Ctype.t -> int
(** @raise Diag.Error on incomplete struct/union types. *)

val align_of : config -> Ctype.t -> int

val offset_of_field : config -> Ctype.t -> string -> int
(** Byte offset of a field within a (possibly array-wrapped) struct or
    union type; 0 for every union member. @raise Diag.Error on unknown
    fields or incomplete types. *)

val offset_of_path : config -> Ctype.t -> Ctype.path -> int
(** Byte offset of the sub-object at a path. Arrays contribute offset 0
    (single representative element). *)

val leaf_offsets : config -> Ctype.t -> (Ctype.path * int * Ctype.t) list
(** All leaf sub-objects (through unions) with their byte offsets and
    types, sorted by offset. *)

val offset_in_array : config -> Ctype.t -> int -> bool
(** Does the byte offset lie inside an array sub-object? Used by the
    stride-arithmetic refinement. *)

val canon_offset : config -> Ctype.t -> int -> int
(** Fold a byte offset into the canonical representative: offsets inside
    an array sub-object map to the corresponding offset within element 0.
    Offsets outside the object or in padding are returned unchanged. *)
