(** Source locations: file/line/column positions used by every diagnostic. *)

type t = {
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 1-based *)
}

let dummy = { file = "<none>"; line = 0; col = 0 }

let make ~file ~line ~col = { file; line; col }

let is_dummy t = t.line = 0

let pp ppf t =
  if is_dummy t then Fmt.string ppf "<no location>"
  else Fmt.pf ppf "%s:%d:%d" t.file t.line t.col

let to_string t = Fmt.str "%a" pp t

let compare a b =
  match String.compare a.file b.file with
  | 0 -> ( match compare a.line b.line with 0 -> compare a.col b.col | c -> c)
  | c -> c

let equal a b = compare a b = 0
