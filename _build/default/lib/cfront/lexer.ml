(** Hand-written lexer for the C subset.

    Produces {!Token.spanned} values. Comments (both styles) and whitespace
    are skipped; line splices ([backslash-newline]) are honoured so that
    multi-line macro definitions lex as a single logical line. *)

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
  mutable at_bol : bool;  (** no token seen yet on the current logical line *)
}

let make ~file src = { src; file; pos = 0; line = 1; col = 1; at_bol = true }

let loc st = Srcloc.make ~file:st.file ~line:st.line ~col:st.col

let peek st = if st.pos >= String.length st.src then '\000' else st.src.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let peek3 st =
  if st.pos + 2 >= String.length st.src then '\000' else st.src.[st.pos + 2]

let advance st =
  (if peek st = '\n' then (
     st.line <- st.line + 1;
     st.col <- 1;
     st.at_bol <- true)
   else st.col <- st.col + 1);
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

(* Skip whitespace and comments. Line splices are treated as whitespace that
   does NOT end the logical line. Returns unit; [st.at_bol] tracks whether a
   real newline was crossed. *)
let rec skip_trivia st =
  match peek st with
  | ' ' | '\t' | '\r' ->
      advance st;
      skip_trivia st
  | '\n' ->
      advance st;
      skip_trivia st
  | '\\' when peek2 st = '\n' ->
      (* line splice: consume both, do not mark beginning-of-line *)
      st.pos <- st.pos + 2;
      st.line <- st.line + 1;
      st.col <- 1;
      skip_trivia st
  | '\\' when peek2 st = '\r' && peek3 st = '\n' ->
      st.pos <- st.pos + 3;
      st.line <- st.line + 1;
      st.col <- 1;
      skip_trivia st
  | '/' when peek2 st = '/' ->
      while peek st <> '\n' && peek st <> '\000' do
        advance st
      done;
      skip_trivia st
  | '/' when peek2 st = '*' ->
      let start = loc st in
      advance st;
      advance st;
      let rec finish () =
        match peek st with
        | '\000' -> Diag.error ~loc:start "unterminated comment"
        | '*' when peek2 st = '/' ->
            advance st;
            advance st
        | _ ->
            advance st;
            finish ()
      in
      finish ();
      skip_trivia st
  | _ -> ()

let lex_escape st start : int =
  (* after the backslash *)
  let c = peek st in
  advance st;
  match c with
  | 'n' -> 10
  | 't' -> 9
  | 'r' -> 13
  | '0' .. '7' ->
      let rec octal acc n =
        if n < 3 && peek st >= '0' && peek st <= '7' then (
          let d = Char.code (peek st) - Char.code '0' in
          advance st;
          octal ((acc * 8) + d) (n + 1))
        else acc
      in
      octal (Char.code c - Char.code '0') 1
  | 'x' ->
      let rec hex acc any =
        if is_hex (peek st) then (
          let c = peek st in
          let d =
            if is_digit c then Char.code c - Char.code '0'
            else (Char.code (Char.lowercase_ascii c) - Char.code 'a') + 10
          in
          advance st;
          hex ((acc * 16) + d) true)
        else if any then acc
        else Diag.error ~loc:start "\\x with no hex digits"
      in
      hex 0 false
  | 'a' -> 7
  | 'b' -> 8
  | 'f' -> 12
  | 'v' -> 11
  | '\\' -> Char.code '\\'
  | '\'' -> Char.code '\''
  | '"' -> Char.code '"'
  | '?' -> Char.code '?'
  | '\000' -> Diag.error ~loc:start "unterminated escape sequence"
  | c -> Diag.error ~loc:start "unknown escape sequence '\\%c'" c

let lex_char_lit st start : Token.t =
  advance st;
  (* opening quote *)
  let v =
    match peek st with
    | '\\' ->
        advance st;
        lex_escape st start
    | '\'' -> Diag.error ~loc:start "empty character constant"
    | '\000' -> Diag.error ~loc:start "unterminated character constant"
    | c ->
        advance st;
        Char.code c
  in
  if peek st <> '\'' then
    Diag.error ~loc:start "unterminated character constant";
  advance st;
  Token.Char_lit v

let lex_string_lit st start : Token.t =
  advance st;
  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | '"' ->
        advance st;
        Token.String_lit (Buffer.contents buf)
    | '\000' | '\n' -> Diag.error ~loc:start "unterminated string literal"
    | '\\' ->
        advance st;
        Buffer.add_char buf (Char.chr (lex_escape st start land 0xff));
        go ()
    | c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ()

let lex_number st start : Token.t =
  let begin_pos = st.pos in
  let is_hex_lit =
    peek st = '0' && (peek2 st = 'x' || peek2 st = 'X') && is_hex (peek3 st)
  in
  if is_hex_lit then (
    advance st;
    advance st;
    while is_hex (peek st) do
      advance st
    done)
  else
    while is_digit (peek st) do
      advance st
    done;
  let is_float = ref false in
  if (not is_hex_lit) && peek st = '.' && is_digit (peek2 st) then (
    is_float := true;
    advance st;
    while is_digit (peek st) do
      advance st
    done);
  if (not is_hex_lit) && (peek st = 'e' || peek st = 'E') then (
    let save = (st.pos, st.line, st.col) in
    advance st;
    if peek st = '+' || peek st = '-' then advance st;
    if is_digit (peek st) then (
      is_float := true;
      while is_digit (peek st) do
        advance st
      done)
    else
      let p, l, c = save in
      st.pos <- p;
      st.line <- l;
      st.col <- c);
  let digits = String.sub st.src begin_pos (st.pos - begin_pos) in
  (* integer / float suffixes, recorded in the spelling but not the value *)
  let suffix_start = st.pos in
  while
    match peek st with
    | 'u' | 'U' | 'l' | 'L' -> true
    | 'f' | 'F' when !is_float -> true
    | _ -> false
  do
    advance st
  done;
  let spelling =
    String.sub st.src begin_pos (st.pos - begin_pos)
  in
  ignore suffix_start;
  if !is_float then
    match float_of_string_opt digits with
    | Some f -> Token.Float_lit (f, spelling)
    | None -> Diag.error ~loc:start "malformed float literal %s" spelling
  else
    match Int64.of_string_opt digits with
    | Some v -> Token.Int_lit (v, spelling)
    | None -> Diag.error ~loc:start "malformed integer literal %s" spelling

let next (st : state) : Token.spanned =
  skip_trivia st;
  let start = loc st in
  let bol = st.at_bol in
  st.at_bol <- false;
  let simple n tok =
    for _ = 1 to n do
      advance st
    done;
    tok
  in
  let tok : Token.t =
    match peek st with
    | '\000' -> Token.Eof
    | c when is_ident_start c ->
        let begin_pos = st.pos in
        while is_ident_char (peek st) do
          advance st
        done;
        Token.Ident (String.sub st.src begin_pos (st.pos - begin_pos))
    | c when is_digit c -> lex_number st start
    | '\'' -> lex_char_lit st start
    | '"' -> lex_string_lit st start
    | '(' -> simple 1 Token.Lparen
    | ')' -> simple 1 Token.Rparen
    | '{' -> simple 1 Token.Lbrace
    | '}' -> simple 1 Token.Rbrace
    | '[' -> simple 1 Token.Lbracket
    | ']' -> simple 1 Token.Rbracket
    | ';' -> simple 1 Token.Semi
    | ',' -> simple 1 Token.Comma
    | '?' -> simple 1 Token.Question
    | '~' -> simple 1 Token.Tilde
    | ':' -> simple 1 Token.Colon
    | '.' ->
        if peek2 st = '.' && peek3 st = '.' then simple 3 Token.Ellipsis
        else simple 1 Token.Dot
    | '+' -> (
        match peek2 st with
        | '+' -> simple 2 Token.Plus_plus
        | '=' -> simple 2 Token.Plus_assign
        | _ -> simple 1 Token.Plus)
    | '-' -> (
        match peek2 st with
        | '-' -> simple 2 Token.Minus_minus
        | '=' -> simple 2 Token.Minus_assign
        | '>' -> simple 2 Token.Arrow
        | _ -> simple 1 Token.Minus)
    | '*' -> if peek2 st = '=' then simple 2 Token.Star_assign else simple 1 Token.Star
    | '/' -> if peek2 st = '=' then simple 2 Token.Slash_assign else simple 1 Token.Slash
    | '%' ->
        if peek2 st = '=' then simple 2 Token.Percent_assign
        else simple 1 Token.Percent
    | '&' -> (
        match peek2 st with
        | '&' -> simple 2 Token.Amp_amp
        | '=' -> simple 2 Token.Amp_assign
        | _ -> simple 1 Token.Amp)
    | '|' -> (
        match peek2 st with
        | '|' -> simple 2 Token.Pipe_pipe
        | '=' -> simple 2 Token.Pipe_assign
        | _ -> simple 1 Token.Pipe)
    | '^' -> if peek2 st = '=' then simple 2 Token.Caret_assign else simple 1 Token.Caret
    | '!' -> if peek2 st = '=' then simple 2 Token.Bang_eq else simple 1 Token.Bang
    | '=' -> if peek2 st = '=' then simple 2 Token.Eq_eq else simple 1 Token.Assign
    | '<' -> (
        match peek2 st with
        | '<' -> if peek3 st = '=' then simple 3 Token.Shl_assign else simple 2 Token.Shl
        | '=' -> simple 2 Token.Le
        | _ -> simple 1 Token.Lt)
    | '>' -> (
        match peek2 st with
        | '>' -> if peek3 st = '=' then simple 3 Token.Shr_assign else simple 2 Token.Shr
        | '=' -> simple 2 Token.Ge
        | _ -> simple 1 Token.Gt)
    | '#' -> if peek2 st = '#' then simple 2 Token.Hash_hash else simple 1 Token.Hash
    | c -> Diag.error ~loc:start "unexpected character %C" c
  in
  { Token.tok; loc = start; bol }

(** Lex an entire source string. The resulting list always ends with an
    [Eof] token. *)
let tokenize ~file src : Token.spanned list =
  let st = make ~file src in
  let rec go acc =
    let t = next st in
    match t.Token.tok with
    | Token.Eof -> List.rev (t :: acc)
    | _ -> go (t :: acc)
  in
  go []
