(** Source locations: file/line/column positions used by every
    diagnostic. *)

type t = {
  file : string;
  line : int;  (** 1-based; 0 in {!dummy} *)
  col : int;  (** 1-based *)
}

val dummy : t
(** A location that points nowhere (printed as ["<no location>"]). *)

val make : file:string -> line:int -> col:int -> t

val is_dummy : t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val compare : t -> t -> int

val equal : t -> t -> bool
