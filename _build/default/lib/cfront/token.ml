(** Lexical tokens for the C subset.

    The lexer produces "raw" tokens: identifiers are not yet classified as
    keywords or typedef names; that happens in the parser, after the
    preprocessor has run (macro names must be recognizable as plain
    identifiers). *)

type t =
  | Ident of string
  | Int_lit of int64 * string  (** value, original spelling *)
  | Float_lit of float * string
  | Char_lit of int  (** value of the character constant *)
  | String_lit of string  (** decoded contents, without quotes *)
  (* punctuation *)
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Semi
  | Comma
  | Colon
  | Question
  | Dot
  | Arrow  (** [->] *)
  | Ellipsis  (** [...] *)
  (* operators *)
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Amp
  | Pipe
  | Caret
  | Tilde
  | Bang
  | Lt
  | Gt
  | Le
  | Ge
  | Eq_eq
  | Bang_eq
  | Amp_amp
  | Pipe_pipe
  | Shl
  | Shr
  | Plus_plus
  | Minus_minus
  | Assign
  | Plus_assign
  | Minus_assign
  | Star_assign
  | Slash_assign
  | Percent_assign
  | Amp_assign
  | Pipe_assign
  | Caret_assign
  | Shl_assign
  | Shr_assign
  (* preprocessor-only *)
  | Hash
  | Hash_hash
  | Eof

type spanned = { tok : t; loc : Srcloc.t; bol : bool }
(** [bol] is true when the token is the first on its source line — the
    preprocessor uses it to recognize directives. *)

let describe = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int_lit (_, s) -> Printf.sprintf "integer literal %s" s
  | Float_lit (_, s) -> Printf.sprintf "float literal %s" s
  | Char_lit c -> Printf.sprintf "character literal (code %d)" c
  | String_lit s -> Printf.sprintf "string literal %S" s
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Semi -> "';'"
  | Comma -> "','"
  | Colon -> "':'"
  | Question -> "'?'"
  | Dot -> "'.'"
  | Arrow -> "'->'"
  | Ellipsis -> "'...'"
  | Plus -> "'+'"
  | Minus -> "'-'"
  | Star -> "'*'"
  | Slash -> "'/'"
  | Percent -> "'%'"
  | Amp -> "'&'"
  | Pipe -> "'|'"
  | Caret -> "'^'"
  | Tilde -> "'~'"
  | Bang -> "'!'"
  | Lt -> "'<'"
  | Gt -> "'>'"
  | Le -> "'<='"
  | Ge -> "'>='"
  | Eq_eq -> "'=='"
  | Bang_eq -> "'!='"
  | Amp_amp -> "'&&'"
  | Pipe_pipe -> "'||'"
  | Shl -> "'<<'"
  | Shr -> "'>>'"
  | Plus_plus -> "'++'"
  | Minus_minus -> "'--'"
  | Assign -> "'='"
  | Plus_assign -> "'+='"
  | Minus_assign -> "'-='"
  | Star_assign -> "'*='"
  | Slash_assign -> "'/='"
  | Percent_assign -> "'%='"
  | Amp_assign -> "'&='"
  | Pipe_assign -> "'|='"
  | Caret_assign -> "'^='"
  | Shl_assign -> "'<<='"
  | Shr_assign -> "'>>='"
  | Hash -> "'#'"
  | Hash_hash -> "'##'"
  | Eof -> "end of input"

let equal (a : t) (b : t) = a = b

(** Render a token back to C source text (used by the preprocessor when
    stringizing and by error messages). *)
let to_source = function
  | Ident s -> s
  | Int_lit (_, s) -> s
  | Float_lit (_, s) -> s
  | Char_lit c ->
      if c >= 32 && c < 127 && c <> Char.code '\'' && c <> Char.code '\\' then
        Printf.sprintf "'%c'" (Char.chr c)
      else Printf.sprintf "'\\x%02x'" (c land 0xff)
  | String_lit s -> Printf.sprintf "%S" s
  | Lparen -> "("
  | Rparen -> ")"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Lbracket -> "["
  | Rbracket -> "]"
  | Semi -> ";"
  | Comma -> ","
  | Colon -> ":"
  | Question -> "?"
  | Dot -> "."
  | Arrow -> "->"
  | Ellipsis -> "..."
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Slash -> "/"
  | Percent -> "%"
  | Amp -> "&"
  | Pipe -> "|"
  | Caret -> "^"
  | Tilde -> "~"
  | Bang -> "!"
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="
  | Eq_eq -> "=="
  | Bang_eq -> "!="
  | Amp_amp -> "&&"
  | Pipe_pipe -> "||"
  | Shl -> "<<"
  | Shr -> ">>"
  | Plus_plus -> "++"
  | Minus_minus -> "--"
  | Assign -> "="
  | Plus_assign -> "+="
  | Minus_assign -> "-="
  | Star_assign -> "*="
  | Slash_assign -> "/="
  | Percent_assign -> "%="
  | Amp_assign -> "&="
  | Pipe_assign -> "|="
  | Caret_assign -> "^="
  | Shl_assign -> "<<="
  | Shr_assign -> ">>="
  | Hash -> "#"
  | Hash_hash -> "##"
  | Eof -> ""
