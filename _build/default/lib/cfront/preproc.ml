(** A small C preprocessor operating on token streams.

    Supported directives: [#define] (object- and function-like, with [#]
    stringize and [##] paste), [#undef], [#include] (resolved through a
    caller-supplied function, so the corpus can ship virtual headers),
    [#if]/[#ifdef]/[#ifndef]/[#elif]/[#else]/[#endif] with full integer
    constant expressions and [defined], [#error], and [#pragma] (ignored).

    Not supported (not needed by the corpus): [#line], variadic macros,
    trigraphs. *)

type macro =
  | Objlike of Token.spanned list
  | Funclike of { params : string list; body : Token.spanned list }

type env = {
  defines : (string, macro) Hashtbl.t;
  resolve : string -> string option;
      (** map an include path to its source text *)
  mutable include_depth : int;
}

let create_env ?(defines = []) ?(resolve = fun _ -> None) () =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (name, text) ->
      let toks = Lexer.tokenize ~file:("<define " ^ name ^ ">") text in
      let toks = List.filter (fun t -> t.Token.tok <> Token.Eof) toks in
      Hashtbl.replace tbl name (Objlike toks))
    defines;
  { defines = tbl; resolve; include_depth = 0 }

(* ------------------------------------------------------------------ *)
(* Token cursors                                                       *)
(* ------------------------------------------------------------------ *)

type cursor = { toks : Token.spanned array; mutable idx : int }

let cursor_of_list l = { toks = Array.of_list l; idx = 0 }

let cur c =
  if c.idx < Array.length c.toks then c.toks.(c.idx)
  else { Token.tok = Token.Eof; loc = Srcloc.dummy; bol = true }

let bump c = c.idx <- c.idx + 1

(* All tokens of the current directive line: everything up to (not
   including) the next beginning-of-line token. *)
let directive_line c : Token.spanned list =
  let rec go acc =
    let t = cur c in
    if t.Token.tok = Token.Eof || t.Token.bol then List.rev acc
    else (
      bump c;
      go (t :: acc))
  in
  go []

(* ------------------------------------------------------------------ *)
(* Macro expansion                                                     *)
(* ------------------------------------------------------------------ *)

module Sset = Set.Make (String)

let is_adjacent (a : Token.spanned) (b : Token.spanned) =
  (* true when [b] starts right after [a] ends, on the same line; used to
     distinguish [#define F(x)] from [#define F (x)]. *)
  match a.Token.tok with
  | Token.Ident s ->
      a.loc.Srcloc.line = b.loc.Srcloc.line
      && b.loc.Srcloc.col = a.loc.Srcloc.col + String.length s
  | _ -> false

(* Split the argument tokens of a function-like macro call. The cursor is
   positioned right after the opening parenthesis. *)
let parse_macro_args c loc : Token.spanned list list =
  let args = ref [] in
  let current = ref [] in
  let depth = ref 0 in
  let rec go () =
    let t = cur c in
    match t.Token.tok with
    | Token.Eof -> Diag.error ~loc "unterminated macro argument list"
    | Token.Rparen when !depth = 0 ->
        bump c;
        args := List.rev !current :: !args
    | Token.Comma when !depth = 0 ->
        bump c;
        args := List.rev !current :: !args;
        current := [];
        go ()
    | tok ->
        (match tok with
        | Token.Lparen -> incr depth
        | Token.Rparen -> decr depth
        | _ -> ());
        bump c;
        current := t :: !current;
        go ()
  in
  go ();
  List.rev !args

let stringize (arg : Token.spanned list) loc : Token.spanned =
  let text = String.concat " " (List.map (fun t -> Token.to_source t.Token.tok) arg) in
  { Token.tok = Token.String_lit text; loc; bol = false }

let paste (a : Token.spanned) (b : Token.spanned) : Token.spanned =
  let text = Token.to_source a.Token.tok ^ Token.to_source b.Token.tok in
  match Lexer.tokenize ~file:"<paste>" text with
  | [ t; { Token.tok = Token.Eof; _ } ] -> { t with Token.loc = a.Token.loc }
  | _ ->
      Diag.error ~loc:a.Token.loc "'##' of %s and %s does not form a token"
        (Token.describe a.Token.tok) (Token.describe b.Token.tok)

(* Substitute parameters into a function-like macro body, handling # and
   ##. [args_raw] are unexpanded arguments (used for # and ##),
   [args_exp] are fully expanded (used elsewhere). *)
let substitute body params args_raw args_exp loc : Token.spanned list =
  let arg_index name =
    let rec find i = function
      | [] -> None
      | p :: _ when p = name -> Some i
      | _ :: ps -> find (i + 1) ps
    in
    find 0 params
  in
  let nth_arg args i = try List.nth args i with _ -> [] in
  let rec go acc = function
    | [] -> List.rev acc
    | { Token.tok = Token.Hash; _ } :: ({ Token.tok = Token.Ident p; _ } as pt) :: rest
      when arg_index p <> None -> (
        match arg_index p with
        | Some i -> go (stringize (nth_arg args_raw i) pt.Token.loc :: acc) rest
        | None -> assert false)
    | a :: { Token.tok = Token.Hash_hash; _ } :: b :: rest ->
        let expand_side (t : Token.spanned) : Token.spanned list =
          match t.Token.tok with
          | Token.Ident p -> (
              match arg_index p with
              | Some i -> nth_arg args_raw i
              | None -> [ t ])
          | _ -> [ t ]
        in
        let left = expand_side a and right = expand_side b in
        let merged =
          match (List.rev left, right) with
          | [], r -> r
          | lrev, [] -> List.rev lrev
          | last :: lrev, first :: rrest ->
              List.rev_append lrev (paste last first :: rrest)
        in
        go acc (merged @ rest)
    | ({ Token.tok = Token.Ident p; _ } as t) :: rest -> (
        match arg_index p with
        | Some i -> go (List.rev_append (nth_arg args_exp i) acc) rest
        | None -> go (t :: acc) rest)
    | t :: rest -> go (t :: acc) rest
  in
  ignore loc;
  go [] body

(* Expand a token list fully. [hide] prevents recursive self-expansion. *)
let rec expand_tokens env hide (toks : Token.spanned list) : Token.spanned list
    =
  let c = cursor_of_list toks in
  let out = ref [] in
  let rec go () =
    let t = cur c in
    match t.Token.tok with
    | Token.Eof -> ()
    | Token.Ident name when (not (Sset.mem name hide)) && Hashtbl.mem env.defines name -> (
        match Hashtbl.find env.defines name with
        | Objlike body ->
            bump c;
            let expanded = expand_tokens env (Sset.add name hide) body in
            out := List.rev_append expanded !out;
            go ()
        | Funclike { params; body } ->
            if (cur { c with idx = c.idx + 1 }).Token.tok = Token.Lparen then (
              bump c;
              bump c;
              (* name, lparen *)
              let args_raw = parse_macro_args c t.Token.loc in
              let args_raw =
                (* f() with one empty argument and zero parameters *)
                if params = [] && args_raw = [ [] ] then [] else args_raw
              in
              if List.length args_raw <> List.length params then
                Diag.error ~loc:t.Token.loc
                  "macro %s expects %d argument(s), got %d" name
                  (List.length params) (List.length args_raw);
              let args_exp =
                List.map (expand_tokens env hide) args_raw
              in
              let body' =
                substitute body params args_raw args_exp t.Token.loc
              in
              let expanded = expand_tokens env (Sset.add name hide) body' in
              out := List.rev_append expanded !out;
              go ())
            else (
              (* function-like macro not followed by '(' is not a call *)
              bump c;
              out := t :: !out;
              go ()))
    | _ ->
        bump c;
        out := t :: !out;
        go ()
  in
  go ();
  List.rev !out

(* ------------------------------------------------------------------ *)
(* #if expression evaluation                                           *)
(* ------------------------------------------------------------------ *)

let eval_if_expr env (line : Token.spanned list) loc : bool =
  (* First rewrite [defined X] / [defined(X)], then macro-expand, then
     evaluate; remaining identifiers are 0. *)
  let rec rewrite = function
    | [] -> []
    | { Token.tok = Token.Ident "defined"; loc = dl; bol } :: rest -> (
        let mk v =
          { Token.tok = Token.Int_lit ((if v then 1L else 0L), if v then "1" else "0");
            loc = dl; bol }
        in
        match rest with
        | { Token.tok = Token.Ident n; _ } :: rest' ->
            mk (Hashtbl.mem env.defines n) :: rewrite rest'
        | { Token.tok = Token.Lparen; _ }
          :: { Token.tok = Token.Ident n; _ }
          :: { Token.tok = Token.Rparen; _ }
          :: rest' ->
            mk (Hashtbl.mem env.defines n) :: rewrite rest'
        | _ -> Diag.error ~loc:dl "malformed 'defined' operator")
    | t :: rest -> t :: rewrite rest
  in
  let toks = expand_tokens env Sset.empty (rewrite line) in
  let c = cursor_of_list toks in
  let expect tok =
    if (cur c).Token.tok = tok then bump c
    else
      Diag.error ~loc "expected %s in #if expression, got %s"
        (Token.describe tok)
        (Token.describe (cur c).Token.tok)
  in
  (* precedence climbing over int64 *)
  let rec primary () : int64 =
    let t = cur c in
    match t.Token.tok with
    | Token.Int_lit (v, _) ->
        bump c;
        v
    | Token.Char_lit v ->
        bump c;
        Int64.of_int v
    | Token.Ident _ ->
        bump c;
        0L
    | Token.Lparen ->
        bump c;
        let v = ternary () in
        expect Token.Rparen;
        v
    | Token.Minus ->
        bump c;
        Int64.neg (primary ())
    | Token.Plus ->
        bump c;
        primary ()
    | Token.Bang ->
        bump c;
        if primary () = 0L then 1L else 0L
    | Token.Tilde ->
        bump c;
        Int64.lognot (primary ())
    | tok ->
        Diag.error ~loc "unexpected %s in #if expression" (Token.describe tok)
  and binary min_prec () : int64 =
    let prec tok =
      match tok with
      | Token.Star | Token.Slash | Token.Percent -> Some 10
      | Token.Plus | Token.Minus -> Some 9
      | Token.Shl | Token.Shr -> Some 8
      | Token.Lt | Token.Gt | Token.Le | Token.Ge -> Some 7
      | Token.Eq_eq | Token.Bang_eq -> Some 6
      | Token.Amp -> Some 5
      | Token.Caret -> Some 4
      | Token.Pipe -> Some 3
      | Token.Amp_amp -> Some 2
      | Token.Pipe_pipe -> Some 1
      | _ -> None
    in
    let lhs = ref (primary ()) in
    let rec loop () =
      match prec (cur c).Token.tok with
      | Some p when p >= min_prec ->
          let op = (cur c).Token.tok in
          bump c;
          let rhs = binary (p + 1) () in
          let b v = if v then 1L else 0L in
          let l = !lhs in
          lhs :=
            (match op with
            | Token.Star -> Int64.mul l rhs
            | Token.Slash ->
                if rhs = 0L then Diag.error ~loc "division by zero in #if"
                else Int64.div l rhs
            | Token.Percent ->
                if rhs = 0L then Diag.error ~loc "modulo by zero in #if"
                else Int64.rem l rhs
            | Token.Plus -> Int64.add l rhs
            | Token.Minus -> Int64.sub l rhs
            | Token.Shl -> Int64.shift_left l (Int64.to_int rhs)
            | Token.Shr -> Int64.shift_right l (Int64.to_int rhs)
            | Token.Lt -> b (l < rhs)
            | Token.Gt -> b (l > rhs)
            | Token.Le -> b (l <= rhs)
            | Token.Ge -> b (l >= rhs)
            | Token.Eq_eq -> b (l = rhs)
            | Token.Bang_eq -> b (l <> rhs)
            | Token.Amp -> Int64.logand l rhs
            | Token.Caret -> Int64.logxor l rhs
            | Token.Pipe -> Int64.logor l rhs
            | Token.Amp_amp -> b (l <> 0L && rhs <> 0L)
            | Token.Pipe_pipe -> b (l <> 0L || rhs <> 0L)
            | _ -> assert false);
          loop ()
      | _ -> ()
    in
    loop ();
    !lhs
  and ternary () : int64 =
    let cond = binary 1 () in
    if (cur c).Token.tok = Token.Question then (
      bump c;
      let a = ternary () in
      expect Token.Colon;
      let b = ternary () in
      if cond <> 0L then a else b)
    else cond
  in
  let v = ternary () in
  (match (cur c).Token.tok with
  | Token.Eof -> ()
  | tok -> Diag.error ~loc "trailing %s in #if expression" (Token.describe tok));
  v <> 0L

(* ------------------------------------------------------------------ *)
(* Directive processing                                                *)
(* ------------------------------------------------------------------ *)

type cond_state = {
  parent_active : bool;
  mutable this_active : bool;
  mutable taken : bool;  (** some branch of this #if chain was active *)
  mutable in_else : bool;
}

let rec process env (toks : Token.spanned list) (out : Token.spanned list ref)
    : unit =
  let c = cursor_of_list toks in
  let conds : cond_state list ref = ref [] in
  let active () =
    List.for_all (fun s -> s.this_active) !conds
  in
  let parent_active () =
    match !conds with [] -> true | s :: _ -> s.parent_active
  in
  let handle_directive (t : Token.spanned) =
    bump c;
    (* past '#' *)
    let line = directive_line c in
    match line with
    | [] -> () (* null directive *)
    | { Token.tok = Token.Ident dir; loc = dloc; _ } :: rest -> (
        match dir with
        | "ifdef" | "ifndef" -> (
            match rest with
            | [ { Token.tok = Token.Ident n; _ } ] ->
                let defined = Hashtbl.mem env.defines n in
                let v = if dir = "ifdef" then defined else not defined in
                let pa = active () in
                conds :=
                  { parent_active = pa; this_active = pa && v;
                    taken = pa && v; in_else = false }
                  :: !conds
            | _ -> Diag.error ~loc:dloc "#%s expects a single identifier" dir)
        | "if" ->
            let pa = active () in
            let v = if pa then eval_if_expr env rest dloc else false in
            conds :=
              { parent_active = pa; this_active = pa && v; taken = pa && v;
                in_else = false }
              :: !conds
        | "elif" -> (
            match !conds with
            | [] -> Diag.error ~loc:dloc "#elif without #if"
            | s :: _ ->
                if s.in_else then Diag.error ~loc:dloc "#elif after #else";
                if s.taken then s.this_active <- false
                else begin
                  let v =
                    if s.parent_active then eval_if_expr env rest dloc
                    else false
                  in
                  s.this_active <- s.parent_active && v;
                  if s.this_active then s.taken <- true
                end)
        | "else" -> (
            match !conds with
            | [] -> Diag.error ~loc:dloc "#else without #if"
            | s :: _ ->
                if s.in_else then Diag.error ~loc:dloc "duplicate #else";
                s.in_else <- true;
                s.this_active <- s.parent_active && not s.taken;
                if s.this_active then s.taken <- true)
        | "endif" -> (
            match !conds with
            | [] -> Diag.error ~loc:dloc "#endif without #if"
            | _ :: rest' -> conds := rest')
        | "define" when active () -> (
            match rest with
            | ({ Token.tok = Token.Ident name; _ } as nt) :: body -> (
                match body with
                | ({ Token.tok = Token.Lparen; _ } as lp) :: more
                  when is_adjacent nt lp ->
                    (* function-like *)
                    let rec params acc = function
                      | { Token.tok = Token.Rparen; _ } :: body' ->
                          (List.rev acc, body')
                      | { Token.tok = Token.Ident p; _ }
                        :: { Token.tok = Token.Comma; _ }
                        :: more' ->
                          params (p :: acc) more'
                      | { Token.tok = Token.Ident p; _ }
                        :: ({ Token.tok = Token.Rparen; _ } :: _ as more') ->
                          params (p :: acc) more'
                      | _ ->
                          Diag.error ~loc:dloc
                            "malformed parameter list for macro %s" name
                    in
                    let ps, body' = params [] more in
                    Hashtbl.replace env.defines name
                      (Funclike { params = ps; body = body' })
                | _ -> Hashtbl.replace env.defines name (Objlike body))
            | _ -> Diag.error ~loc:dloc "#define expects a macro name")
        | "undef" when active () -> (
            match rest with
            | [ { Token.tok = Token.Ident n; _ } ] ->
                Hashtbl.remove env.defines n
            | _ -> Diag.error ~loc:dloc "#undef expects a single identifier")
        | "include" when active () -> (
            let path =
              match rest with
              | [ { Token.tok = Token.String_lit p; _ } ] -> p
              | { Token.tok = Token.Lt; _ } :: middle -> (
                  (* <...> — reassemble the path from the tokens between
                     the angle brackets *)
                  match List.rev middle with
                  | { Token.tok = Token.Gt; _ } :: rev_inner ->
                      String.concat ""
                        (List.rev_map
                           (fun t -> Token.to_source t.Token.tok)
                           rev_inner)
                  | _ -> Diag.error ~loc:dloc "malformed #include")
              | _ -> Diag.error ~loc:dloc "malformed #include"
            in
            match env.resolve path with
            | None -> Diag.error ~loc:dloc "cannot resolve #include %S" path
            | Some text ->
                if env.include_depth > 32 then
                  Diag.error ~loc:dloc "#include nesting too deep (%S)" path;
                env.include_depth <- env.include_depth + 1;
                let sub = Lexer.tokenize ~file:path text in
                let sub = List.filter (fun t -> t.Token.tok <> Token.Eof) sub in
                process env sub out;
                env.include_depth <- env.include_depth - 1)
        | "error" when active () ->
            Diag.error ~loc:dloc "#error %s"
              (String.concat " "
                 (List.map (fun t -> Token.to_source t.Token.tok) rest))
        | "pragma" -> ()
        | "define" | "undef" | "include" | "error" ->
            () (* inactive branch *)
        | d when active () -> Diag.error ~loc:dloc "unknown directive #%s" d
        | _ -> ())
    | { Token.loc; tok; _ } :: _ ->
        if active () then
          Diag.error ~loc "expected directive name after '#', got %s"
            (Token.describe tok)
        else ignore t
  in
  let rec go () =
    let t = cur c in
    match t.Token.tok with
    | Token.Eof -> ()
    | Token.Hash when t.Token.bol ->
        handle_directive t;
        go ()
    | _ ->
        if active () then begin
          (* collect the rest of this logical line's ordinary tokens up to
             the next directive or EOF, then macro-expand them together so
             function-like calls spanning lines work *)
          let chunk = ref [] in
          let rec collect () =
            let t = cur c in
            match t.Token.tok with
            | Token.Eof -> ()
            | Token.Hash when t.Token.bol -> ()
            | _ ->
                bump c;
                chunk := t :: !chunk;
                collect ()
          in
          collect ();
          let expanded = expand_tokens env Sset.empty (List.rev !chunk) in
          out := List.rev_append expanded !out;
          go ()
        end
        else begin
          bump c;
          go ()
        end
  in
  go ();
  ignore (parent_active ());
  match !conds with
  | [] -> ()
  | _ -> Diag.error "unterminated #if block at end of file"

(** Preprocess [src]. [resolve] maps include paths to source text;
    [defines] provides initial object-like macro definitions as
    (name, replacement-text) pairs. *)
let run ?(defines = []) ?(resolve = fun _ -> None) ~file src :
    Token.spanned list =
  let env = create_env ~defines ~resolve () in
  let toks = Lexer.tokenize ~file src in
  let toks = List.filter (fun t -> t.Token.tok <> Token.Eof) toks in
  let out = ref [] in
  process env toks out;
  List.rev
    ({ Token.tok = Token.Eof; loc = Srcloc.dummy; bol = true } :: !out)
