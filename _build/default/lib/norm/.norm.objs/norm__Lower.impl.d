lib/norm/lower.ml: Ast Cfront Ctype Cvar Diag Hashtbl List Nast Option Parser Printf Srcloc String Summaries Tast Typecheck
