lib/norm/summaries.ml: List
