lib/norm/lower.mli: Cfront Nast
