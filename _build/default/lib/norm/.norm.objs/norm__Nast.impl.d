lib/norm/nast.ml: Cfront Ctype Cvar Fmt List Srcloc
