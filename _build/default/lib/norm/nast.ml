(** Normalized programs: the paper's five assignment forms plus calls and
    pointer arithmetic.

    Every statement manipulates whole variables ({!Cfront.Cvar.t}) and
    field paths; all expression structure has been compiled away by
    {!Lower}. The five paper forms (Section 2) map to:

    - form 1, [s = (τ)&t.β] — {!constructor:Addr}
    - form 2, [s = (τ)&( *p).α] — {!constructor:Addr_deref}
    - form 3, [s = (τ)t.β] — {!constructor:Copy}
    - form 4, [s = (τ)*q] — {!constructor:Load}
    - form 5, [*p = (τ_p)t] — {!constructor:Store}

    Casts never appear explicitly: the inference rules only consult the
    declared type of the left-hand side (or of the stored-through pointer),
    and {!Lower} materializes each cast as a copy into a temporary of the
    cast type, so declared types carry all the information the rules
    need. *)

open Cfront

type path = Ctype.path

type callee = Direct of string | Indirect of Cvar.t

type call = {
  cret : Cvar.t option;  (** temporary receiving the return value *)
  cfn : callee;
  cargs : Cvar.t list;  (** pre-evaluated actuals, in order *)
}

type kind =
  | Addr of Cvar.t * Cvar.t * path  (** [s = &t.β]; [β] may be empty *)
  | Addr_deref of Cvar.t * Cvar.t * path  (** [s = &( *p).α] *)
  | Copy of Cvar.t * Cvar.t * path  (** [s = t.β] *)
  | Load of Cvar.t * Cvar.t  (** [s = *q] *)
  | Store of Cvar.t * Cvar.t  (** [*p = t] *)
  | Arith of Cvar.t * Cvar.t
      (** [s = t ⊕ e]: pointer arithmetic; under Assumption 1 the result
          may point to any sub-field of the objects [t] points into *)
  | Call of call

type stmt = {
  id : int;
  kind : kind;
  loc : Srcloc.t;
  is_source_deref : bool;
      (** this statement embodies a pointer dereference written in the
          source (counts toward the Figure-4 metric) *)
}

type func = {
  fname : string;
  ffvar : Cvar.t;
  fparams : Cvar.t list;
  fret : Cvar.t option;
  fvararg : Cvar.t option;
  fstmts : stmt list;
}

type program = {
  pfile : string;
  pglobals : Cvar.t list;  (** global storage objects *)
  pfuncs : func list;
  pexterns : (string * Cvar.t) list;  (** declared but undefined functions *)
  pinit : stmt list;  (** lowered global initializers *)
  pall_vars : Cvar.t list;
      (** every storage object: globals, locals, params, temps, heap
          pseudo-variables, string literals, function objects *)
}

let func_by_name p name = List.find_opt (fun f -> f.fname = name) p.pfuncs

let all_stmts p : stmt list =
  p.pinit @ List.concat_map (fun f -> f.fstmts) p.pfuncs

let stmt_count p = List.length (all_stmts p)

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                     *)
(* ------------------------------------------------------------------ *)

let pp_access ppf (v, path) =
  if path = [] then Cvar.pp ppf v
  else Fmt.pf ppf "%a.%a" Cvar.pp v Ctype.pp_path path

let pp_kind ppf = function
  | Addr (s, t, b) -> Fmt.pf ppf "%a = &%a" Cvar.pp s pp_access (t, b)
  | Addr_deref (s, p, a) ->
      Fmt.pf ppf "%a = &(*%a)%s%a" Cvar.pp s Cvar.pp p
        (if a = [] then "" else ".")
        Ctype.pp_path (if a = [] then [] else a)
  | Copy (s, t, b) -> Fmt.pf ppf "%a = %a" Cvar.pp s pp_access (t, b)
  | Load (s, q) -> Fmt.pf ppf "%a = *%a" Cvar.pp s Cvar.pp q
  | Store (p, t) -> Fmt.pf ppf "*%a = %a" Cvar.pp p Cvar.pp t
  | Arith (s, t) -> Fmt.pf ppf "%a = %a (+) ..." Cvar.pp s Cvar.pp t
  | Call { cret; cfn; cargs } ->
      let pp_fn ppf = function
        | Direct n -> Fmt.string ppf n
        | Indirect v -> Fmt.pf ppf "(*%a)" Cvar.pp v
      in
      Fmt.pf ppf "%a%a(%a)"
        (Fmt.option (fun ppf v -> Fmt.pf ppf "%a = " Cvar.pp v))
        cret pp_fn cfn
        (Fmt.list ~sep:Fmt.comma Cvar.pp)
        cargs

let pp_stmt ppf s = pp_kind ppf s.kind

let pp_program ppf p =
  let pp_block name stmts =
    Fmt.pf ppf "%s:@." name;
    List.iter (fun s -> Fmt.pf ppf "  %a@." pp_stmt s) stmts
  in
  pp_block "<globals>" p.pinit;
  List.iter (fun f -> pp_block f.fname f.fstmts) p.pfuncs
