(** Summaries of the pointer behaviour of common library functions.

    The paper handles library calls "by providing summaries of the
    potential pointer assignments in each library function" (Section 5,
    following [WL95]). This module is our summary table; {!Lower} consults
    it to create allocation-site pseudo-variables, and the solver applies
    the remaining effects. *)

type operand = Arg of int | Ret

type effect =
  | Alloc of string
      (** returns a pointer to a fresh heap object (prefix names it);
          materialized by {!Lower} as an allocation site *)
  | Ret_is of operand  (** the return value aliases this operand *)
  | Ret_points_into of int
      (** returns a pointer into the object arg [i] points to
          (e.g. [strchr]) — same cells as [Ret_is (Arg i)] under the
          single-representative array model *)
  | Deep_copy of operand * operand
      (** [*dst = *src] — block copy between the pointees (memcpy) *)
  | Store_through of int * operand  (** [*(arg i) = operand] *)
  | Static_result of string
      (** returns a pointer to an internal static object (getenv, strtok);
          one pseudo-object per function name *)
  | Invoke of int * operand list
      (** calls the function pointed to by arg [i] with the given
          operands as actuals (qsort's comparator, atexit handlers) *)

type summary = { sname : string; effects : effect list }

let table : summary list =
  let s name effects = { sname = name; effects } in
  [
    (* allocation *)
    s "malloc" [ Alloc "malloc" ];
    s "calloc" [ Alloc "calloc" ];
    s "valloc" [ Alloc "valloc" ];
    s "realloc" [ Alloc "realloc"; Ret_is (Arg 0); Deep_copy (Ret, Arg 0) ];
    s "strdup" [ Alloc "strdup" ];
    s "free" [];
    s "cfree" [];
    (* stdio *)
    s "fopen" [ Alloc "fopen" ];
    s "fdopen" [ Alloc "fdopen" ];
    s "freopen" [ Ret_is (Arg 2) ];
    s "tmpfile" [ Alloc "tmpfile" ];
    s "fclose" [];
    s "fflush" [];
    s "fgets" [ Ret_is (Arg 0) ];
    s "gets" [ Ret_is (Arg 0) ];
    s "fputs" [];
    s "puts" [];
    s "fgetc" [];
    s "getc" [];
    s "getchar" [];
    s "fputc" [];
    s "putc" [];
    s "putchar" [];
    s "ungetc" [];
    s "fread" [];
    s "fwrite" [];
    s "fseek" [];
    s "ftell" [];
    s "rewind" [];
    s "feof" [];
    s "ferror" [];
    s "clearerr" [];
    s "fileno" [];
    s "printf" [];
    s "fprintf" [];
    s "sprintf" [ Ret_is (Arg 0) ];
    s "vsprintf" [ Ret_is (Arg 0) ];
    s "vprintf" [];
    s "vfprintf" [];
    s "scanf" [];
    s "fscanf" [];
    s "sscanf" [];
    s "perror" [];
    s "remove" [];
    s "rename" [];
    s "setbuf" [ Store_through (0, Arg 1) ];
    s "setvbuf" [ Store_through (0, Arg 1) ];
    (* strings *)
    s "strcpy" [ Deep_copy (Arg 0, Arg 1); Ret_is (Arg 0) ];
    s "strncpy" [ Deep_copy (Arg 0, Arg 1); Ret_is (Arg 0) ];
    s "strcat" [ Deep_copy (Arg 0, Arg 1); Ret_is (Arg 0) ];
    s "strncat" [ Deep_copy (Arg 0, Arg 1); Ret_is (Arg 0) ];
    s "memcpy" [ Deep_copy (Arg 0, Arg 1); Ret_is (Arg 0) ];
    s "memmove" [ Deep_copy (Arg 0, Arg 1); Ret_is (Arg 0) ];
    s "bcopy" [ Deep_copy (Arg 1, Arg 0) ];
    s "memset" [ Ret_is (Arg 0) ];
    s "bzero" [];
    s "memchr" [ Ret_points_into 0 ];
    s "strchr" [ Ret_points_into 0 ];
    s "strrchr" [ Ret_points_into 0 ];
    s "index" [ Ret_points_into 0 ];
    s "rindex" [ Ret_points_into 0 ];
    s "strstr" [ Ret_points_into 0 ];
    s "strpbrk" [ Ret_points_into 0 ];
    s "strtok" [ Ret_points_into 0; Static_result "strtok" ];
    s "strlen" [];
    s "strcmp" [];
    s "strncmp" [];
    s "strcasecmp" [];
    s "memcmp" [];
    s "strspn" [];
    s "strcspn" [];
    s "strerror" [ Static_result "strerror" ];
    (* conversion *)
    s "atoi" [];
    s "atol" [];
    s "atof" [];
    (* str-to-number functions store a pointer into arg0's object through
       arg1; under the representative-element model that pointer has the
       same cells as arg0 itself *)
    s "strtol" [ Store_through (1, Arg 0) ];
    s "strtoul" [ Store_through (1, Arg 0) ];
    s "strtod" [ Store_through (1, Arg 0) ];
    (* environment / process *)
    s "getenv" [ Static_result "getenv" ];
    s "exit" [];
    s "abort" [];
    s "atexit" [ Invoke (0, []) ];
    s "signal" [ Invoke (1, []) ];
    s "system" [];
    s "getpid" [];
    s "time" [];
    s "clock" [];
    s "ctime" [ Static_result "ctime" ];
    s "localtime" [ Static_result "localtime" ];
    s "gmtime" [ Static_result "gmtime" ];
    s "asctime" [ Static_result "asctime" ];
    (* math / misc *)
    s "abs" [];
    s "labs" [];
    s "rand" [];
    s "srand" [];
    s "qsort" [ Invoke (3, [ Arg 0; Arg 0 ]) ];
    s "bsearch" [ Invoke (4, [ Arg 0; Arg 1 ]); Ret_points_into 1 ];
    s "assert" [];
    s "isalpha" [];
    s "isdigit" [];
    s "isspace" [];
    s "isupper" [];
    s "islower" [];
    s "isalnum" [];
    s "ispunct" [];
    s "toupper" [];
    s "tolower" [];
    s "setjmp" [];
    s "longjmp" [];
    (* unix-ish *)
    s "open" [];
    s "close" [];
    s "read" [];
    s "write" [];
    s "lseek" [];
    s "unlink" [];
    s "stat" [];
    s "fstat" [];
    s "sbrk" [ Alloc "sbrk" ];
  ]

let find name : summary option =
  List.find_opt (fun s -> s.sname = name) table

let is_alloc name =
  match find name with
  | Some s -> List.exists (function Alloc _ -> true | _ -> false) s.effects
  | None -> false
