(** Corpus: LZW-style compressor (after SPEC "compress"). Cast-free:
    tables of structs accessed at their declared types. *)

let name = "compress"

let has_struct_cast = false

let description = "LZW dictionary compressor over a byte stream"

let source =
  {|
/* compress: LZW with a chained-hash code table. */

int getchar(void);
int putchar(int c);
int printf(char *fmt, ...);

#define TABLE_SIZE 4096
#define HASH_SIZE 5003
#define FIRST_CODE 257

struct entry {
  int prefix;      /* code of the prefix string */
  int suffix;      /* last byte */
  int code;        /* this entry's code */
  struct entry *chain;
};

struct codec {
  struct entry table[TABLE_SIZE];
  struct entry *hash[HASH_SIZE];
  int next_code;
  long in_bytes;
  long out_codes;
};

struct codec cz;

int hash_pair(int prefix, int suffix) {
  long h = (long)prefix * 31 + suffix;
  if (h < 0) h = -h;
  return (int)(h % HASH_SIZE);
}

void table_init(void) {
  int i;
  for (i = 0; i < HASH_SIZE; i++)
    cz.hash[i] = 0;
  cz.next_code = FIRST_CODE;
  cz.in_bytes = 0;
  cz.out_codes = 0;
}

struct entry *table_find(int prefix, int suffix) {
  int h = hash_pair(prefix, suffix);
  struct entry *e;
  for (e = cz.hash[h]; e; e = e->chain) {
    if (e->prefix == prefix && e->suffix == suffix)
      return e;
  }
  return 0;
}

struct entry *table_insert(int prefix, int suffix) {
  int h;
  struct entry *e;
  if (cz.next_code >= TABLE_SIZE)
    return 0;
  e = &cz.table[cz.next_code - FIRST_CODE];
  e->prefix = prefix;
  e->suffix = suffix;
  e->code = cz.next_code;
  h = hash_pair(prefix, suffix);
  e->chain = cz.hash[h];
  cz.hash[h] = e;
  cz.next_code = cz.next_code + 1;
  return e;
}

void emit_code(int code) {
  /* 12-bit output, byte-split */
  putchar(code & 255);
  putchar((code >> 8) & 15);
  cz.out_codes = cz.out_codes + 1;
}

void compress_stream(void) {
  int w;           /* current prefix code */
  int c;
  c = getchar();
  if (c < 0)
    return;
  w = c;
  cz.in_bytes = 1;
  c = getchar();
  while (c >= 0) {
    struct entry *e;
    cz.in_bytes = cz.in_bytes + 1;
    e = table_find(w, c);
    if (e) {
      w = e->code;
    } else {
      emit_code(w);
      table_insert(w, c);
      w = c;
    }
    c = getchar();
  }
  emit_code(w);
}

void report(void) {
  long in = cz.in_bytes;
  long out = cz.out_codes * 3 / 2;
  printf("in %ld bytes, out ~%ld bytes, dictionary %d entries\n",
         in, out, cz.next_code - FIRST_CODE);
  if (in > 0)
    printf("ratio %ld%%\n", out * 100 / in);
}

int main(void) {
  table_init();
  compress_stream();
  report();
  return 0;
}
|}
