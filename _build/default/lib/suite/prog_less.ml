(** Corpus: pager buffer manager (after "less"). Uses the intrusive-list
    idiom: a generic link structure embedded as the first member of each
    record, with casts between link and container — exactly the
    first-field guarantee the paper's Problem 1 is about. *)

let name = "less"

let has_struct_cast = true

let description =
  "pager: intrusive LRU lists with link/container casts (Problem 1 idiom)"

let source =
  {|
/* less: manage a pool of line buffers with an intrusive LRU list.
   The generic list code only sees struct link; clients cast back and
   forth between struct link* and the containing record (whose first
   member is the link). */

void *malloc(unsigned long n);
int printf(char *fmt, ...);
char *strcpy(char *dst, char *src);
unsigned long strlen(char *s);

#define LINE_LEN 128
#define N_BUFFERS 16

/* generic intrusive doubly-linked list */
struct link {
  struct link *next;
  struct link *prev;
};

void list_init(struct link *head) {
  head->next = head;
  head->prev = head;
}

void list_insert_front(struct link *head, struct link *item) {
  item->next = head->next;
  item->prev = head;
  head->next->prev = item;
  head->next = item;
}

void list_remove(struct link *item) {
  item->prev->next = item->next;
  item->next->prev = item->prev;
  item->next = item;
  item->prev = item;
}

int list_empty(struct link *head) {
  return head->next == head;
}

/* a cached line: the link MUST be first so that link* == linebuf* */
struct linebuf {
  struct link lru;
  long lineno;
  int dirty;
  char text[LINE_LEN];
};

struct pager {
  struct link lru_head;
  struct link free_head;
  long hits;
  long misses;
  long top_line;
};

struct pager pg;

void pager_init(void) {
  int i;
  list_init(&pg.lru_head);
  list_init(&pg.free_head);
  pg.hits = 0;
  pg.misses = 0;
  pg.top_line = 0;
  for (i = 0; i < N_BUFFERS; i++) {
    struct linebuf *b = malloc(sizeof(struct linebuf));
    b->lineno = -1;
    b->dirty = 0;
    /* container -> link cast (first member) */
    list_insert_front(&pg.free_head, (struct link *)b);
  }
}

struct linebuf *lookup_line(long lineno) {
  struct link *l;
  for (l = pg.lru_head.next; l != &pg.lru_head; l = l->next) {
    /* link -> container cast */
    struct linebuf *b = (struct linebuf *)l;
    if (b->lineno == lineno)
      return b;
  }
  return 0;
}

void fill_line(struct linebuf *b, long lineno) {
  int i;
  b->lineno = lineno;
  for (i = 0; i < LINE_LEN - 1; i++)
    b->text[i] = (char)('a' + (int)((lineno + i) % 26));
  b->text[(int)(lineno % (LINE_LEN - 1))] = 0;
  b->dirty = 0;
}

struct linebuf *get_line(long lineno) {
  struct linebuf *b = lookup_line(lineno);
  if (b) {
    pg.hits = pg.hits + 1;
    list_remove((struct link *)b);
    list_insert_front(&pg.lru_head, (struct link *)b);
    return b;
  }
  pg.misses = pg.misses + 1;
  if (!list_empty(&pg.free_head)) {
    struct link *l = pg.free_head.next;
    list_remove(l);
    b = (struct linebuf *)l;
  } else {
    /* evict least-recently used: tail of the LRU list */
    struct link *l = pg.lru_head.prev;
    list_remove(l);
    b = (struct linebuf *)l;
  }
  fill_line(b, lineno);
  list_insert_front(&pg.lru_head, (struct link *)b);
  return b;
}

void show_screen(long top, int nlines) {
  int i;
  for (i = 0; i < nlines; i++) {
    struct linebuf *b = get_line(top + i);
    printf("%5ld %s\n", b->lineno, b->text);
  }
}

void scroll_forward(int n) {
  pg.top_line = pg.top_line + n;
  show_screen(pg.top_line, 4);
}

void scroll_backward(int n) {
  pg.top_line = pg.top_line - n;
  if (pg.top_line < 0)
    pg.top_line = 0;
  show_screen(pg.top_line, 4);
}

void jump_to(long line) {
  pg.top_line = line;
  show_screen(pg.top_line, 4);
}

/* ---- marks: remembered positions, also linked through struct link ---- */

#define N_MARKS 8

struct mark {
  struct link all;        /* first member: link <-> mark casts */
  char letter;
  long line;
};

struct marks_table {
  struct link head;
  struct mark slots[N_MARKS];
  int used;
};

struct marks_table marks;

void marks_init(void) {
  list_init(&marks.head);
  marks.used = 0;
}

void set_mark(char letter, long line) {
  struct link *l;
  struct mark *m;
  for (l = marks.head.next; l != &marks.head; l = l->next) {
    m = (struct mark *)l;
    if (m->letter == letter) {
      m->line = line;
      return;
    }
  }
  if (marks.used >= N_MARKS)
    return;
  m = &marks.slots[marks.used];
  marks.used = marks.used + 1;
  m->letter = letter;
  m->line = line;
  list_insert_front(&marks.head, (struct link *)m);
}

long find_mark(char letter) {
  struct link *l;
  for (l = marks.head.next; l != &marks.head; l = l->next) {
    struct mark *m = (struct mark *)l;
    if (m->letter == letter)
      return m->line;
  }
  return -1;
}

/* ---- forward search over cached/filled lines ---- */

int line_contains(struct linebuf *b, char *pat) {
  int i, j;
  for (i = 0; b->text[i]; i++) {
    for (j = 0; pat[j] && b->text[i + j] == pat[j]; j++)
      ;
    if (!pat[j])
      return 1;
  }
  return 0;
}

long search_forward(long from, char *pat, long limit) {
  long ln;
  for (ln = from; ln < from + limit; ln++) {
    struct linebuf *b = get_line(ln);
    if (line_contains(b, pat))
      return ln;
  }
  return -1;
}

/* ---- command dispatch through a function-pointer table ---- */

struct command {
  char key;
  char *help;
  void (*run)(long arg);
};

void cmd_forward(long arg) { scroll_forward((int)arg); }
void cmd_backward(long arg) { scroll_backward((int)arg); }
void cmd_goto(long arg) { jump_to(arg); }

void cmd_mark(long arg) { set_mark((char)('a' + arg), pg.top_line); }

void cmd_jump_mark(long arg) {
  long line = find_mark((char)('a' + arg));
  if (line >= 0)
    jump_to(line);
}

void cmd_search(long arg) {
  long hit = search_forward(pg.top_line + 1, "de", 20 + arg);
  if (hit >= 0)
    jump_to(hit);
}

struct command commands[] = {
  { 'f', "forward", cmd_forward },
  { 'b', "backward", cmd_backward },
  { 'g', "goto", cmd_goto },
  { 'm', "mark", cmd_mark },
  { '\'', "jump to mark", cmd_jump_mark },
  { '/', "search", cmd_search },
};

void dispatch(char key, long arg) {
  int i;
  for (i = 0; i < 6; i++) {
    if (commands[i].key == key) {
      (*commands[i].run)(arg);
      return;
    }
  }
}

int main(void) {
  int i;
  pager_init();
  marks_init();
  show_screen(0, 4);
  for (i = 0; i < 8; i++)
    dispatch('f', 3);
  dispatch('m', 0);          /* mark 'a' here */
  dispatch('g', 2);
  for (i = 0; i < 4; i++)
    dispatch('b', 1);
  dispatch('/', 5);
  dispatch('\'', 0);         /* back to mark 'a' */
  dispatch('g', 100);
  dispatch('g', 0);
  printf("hits %ld misses %ld, marks %d\n", pg.hits, pg.misses, marks.used);
  return 0;
}
|}
