(** Corpus: Huffman coder (after "gzip"). Tree nodes and leaves are
    separate types allocated from a shared node pool; the heap holds
    generic node pointers that are downcast on use. *)

let name = "gzip"

let has_struct_cast = true

let description = "Huffman coder: internal/leaf nodes behind generic pointers"

let source =
  {|
/* gzip: frequency count, Huffman tree build via a min-heap of generic
   node pointers, code-length assignment. Internal nodes and leaves are
   distinct structs sharing the initial (weight, is_leaf) sequence. */

void *malloc(unsigned long n);
int printf(char *fmt, ...);
int getchar(void);

#define N_SYMS 256
#define MAX_NODES 512

struct huff_base {
  long weight;
  int is_leaf;
};

struct huff_leaf {
  long weight;
  int is_leaf;
  int symbol;
  int code_len;
};

struct huff_internal {
  long weight;
  int is_leaf;
  struct huff_base *left;
  struct huff_base *right;
};

struct coder {
  long freq[N_SYMS];
  struct huff_leaf leaves[N_SYMS];
  struct huff_internal internals[N_SYMS];
  int n_internals;
  struct huff_base *heap[MAX_NODES];
  int heap_size;
  long total_bits;
};

struct coder cz;

/* ---- min-heap of generic node pointers ---- */

void heap_push(struct huff_base *n) {
  int i = cz.heap_size;
  cz.heap[i] = n;
  cz.heap_size = cz.heap_size + 1;
  while (i > 0) {
    int parent = (i - 1) / 2;
    if (cz.heap[parent]->weight <= cz.heap[i]->weight)
      break;
    {
      struct huff_base *t = cz.heap[parent];
      cz.heap[parent] = cz.heap[i];
      cz.heap[i] = t;
    }
    i = parent;
  }
}

struct huff_base *heap_pop(void) {
  struct huff_base *top;
  int i;
  if (cz.heap_size == 0)
    return 0;
  top = cz.heap[0];
  cz.heap_size = cz.heap_size - 1;
  cz.heap[0] = cz.heap[cz.heap_size];
  i = 0;
  for (;;) {
    int l = 2 * i + 1;
    int r = 2 * i + 2;
    int smallest = i;
    if (l < cz.heap_size && cz.heap[l]->weight < cz.heap[smallest]->weight)
      smallest = l;
    if (r < cz.heap_size && cz.heap[r]->weight < cz.heap[smallest]->weight)
      smallest = r;
    if (smallest == i)
      break;
    {
      struct huff_base *t = cz.heap[i];
      cz.heap[i] = cz.heap[smallest];
      cz.heap[smallest] = t;
    }
    i = smallest;
  }
  return top;
}

/* ---- build ---- */

void count_frequencies(void) {
  int c = getchar();
  while (c >= 0) {
    cz.freq[c & 255] = cz.freq[c & 255] + 1;
    c = getchar();
  }
  /* guarantee at least two symbols so the tree is non-trivial */
  cz.freq['a'] = cz.freq['a'] + 3;
  cz.freq['b'] = cz.freq['b'] + 1;
}

struct huff_base *build_tree(void) {
  int s;
  cz.heap_size = 0;
  cz.n_internals = 0;
  for (s = 0; s < N_SYMS; s++) {
    if (cz.freq[s] > 0) {
      struct huff_leaf *leaf = &cz.leaves[s];
      leaf->weight = cz.freq[s];
      leaf->is_leaf = 1;
      leaf->symbol = s;
      leaf->code_len = 0;
      heap_push((struct huff_base *)leaf);
    }
  }
  while (cz.heap_size > 1) {
    struct huff_base *a = heap_pop();
    struct huff_base *b = heap_pop();
    struct huff_internal *n = &cz.internals[cz.n_internals];
    cz.n_internals = cz.n_internals + 1;
    n->weight = a->weight + b->weight;
    n->is_leaf = 0;
    n->left = a;
    n->right = b;
    heap_push((struct huff_base *)n);
  }
  return heap_pop();
}

void assign_lengths(struct huff_base *n, int depth) {
  if (!n)
    return;
  if (n->is_leaf) {
    struct huff_leaf *leaf = (struct huff_leaf *)n;
    leaf->code_len = depth > 0 ? depth : 1;
    cz.total_bits = cz.total_bits + leaf->weight * leaf->code_len;
  } else {
    struct huff_internal *in = (struct huff_internal *)n;
    assign_lengths(in->left, depth + 1);
    assign_lengths(in->right, depth + 1);
  }
}

/* ---- canonical codes and a bit-stream writer ---- */

struct bit_writer {
  unsigned char out[1024];
  int byte_pos;
  int bit_pos;
  long bits_written;
};

struct bit_writer bw;

void bw_init(void) {
  bw.byte_pos = 0;
  bw.bit_pos = 0;
  bw.bits_written = 0;
}

void bw_put(int bit) {
  if (bw.byte_pos >= 1024)
    return;
  if (bit)
    bw.out[bw.byte_pos] = (unsigned char)(bw.out[bw.byte_pos] | (1 << bw.bit_pos));
  bw.bit_pos = bw.bit_pos + 1;
  if (bw.bit_pos == 8) {
    bw.bit_pos = 0;
    bw.byte_pos = bw.byte_pos + 1;
  }
  bw.bits_written = bw.bits_written + 1;
}

void bw_put_code(unsigned int code, int len) {
  int i;
  for (i = len - 1; i >= 0; i--)
    bw_put((int)((code >> i) & 1U));
}

/* canonical code assignment: codes in symbol order within each length */
struct canon_table {
  unsigned int codes[N_SYMS];
  int lens[N_SYMS];
  int count_per_len[32];
};

struct canon_table canon;

void assign_canonical(void) {
  unsigned int next_code[32];
  unsigned int code = 0;
  int len, s;
  for (len = 0; len < 32; len++)
    canon.count_per_len[len] = 0;
  for (s = 0; s < N_SYMS; s++) {
    int l = cz.freq[s] > 0 ? cz.leaves[s].code_len : 0;
    canon.lens[s] = l;
    if (l > 0 && l < 32)
      canon.count_per_len[l] = canon.count_per_len[l] + 1;
  }
  for (len = 1; len < 32; len++) {
    code = (code + (unsigned int)canon.count_per_len[len - 1]) << 1;
    next_code[len] = code;
  }
  for (s = 0; s < N_SYMS; s++) {
    int l = canon.lens[s];
    if (l > 0 && l < 32) {
      canon.codes[s] = next_code[l];
      next_code[l] = next_code[l] + 1;
    }
  }
}

void emit_sample(void) {
  /* encode a short sample drawn from the frequent symbols */
  int s;
  bw_init();
  for (s = 0; s < N_SYMS; s++) {
    if (cz.freq[s] > 0) {
      long k;
      for (k = 0; k < cz.freq[s] && k < 3; k++)
        bw_put_code(canon.codes[s], canon.lens[s]);
    }
  }
}

void report(void) {
  int s, used = 0;
  long total = 0;
  for (s = 0; s < N_SYMS; s++) {
    if (cz.freq[s] > 0) {
      used = used + 1;
      total = total + cz.freq[s];
    }
  }
  printf("%d symbols, %ld bytes in, %ld bits out (%ld bytes)\n",
         used, total, cz.total_bits, (cz.total_bits + 7) / 8);
  for (s = 'a'; s <= 'f'; s++) {
    if (cz.freq[s] > 0)
      printf("  '%c': freq %ld len %d\n", s, cz.freq[s],
             cz.leaves[s].code_len);
  }
}

int main(void) {
  struct huff_base *root;
  int s;
  for (s = 0; s < N_SYMS; s++)
    cz.freq[s] = 0;
  cz.total_bits = 0;
  count_frequencies();
  root = build_tree();
  assign_lengths(root, 0);
  assign_canonical();
  emit_sample();
  report();
  printf("sample: %ld bits into %d bytes\n", bw.bits_written,
         bw.byte_pos + (bw.bit_pos > 0 ? 1 : 0));
  return 0;
}
|}
