(** Corpus: Kernighan–Lin style graph partitioner (after the Austin
    benchmark "ks"). Cast-free struct and pointer manipulation. *)

let name = "ks"

let has_struct_cast = false

let description = "Kernighan-Lin graph partitioning with adjacency lists"

let source =
  {|
/* ks: two-way graph partitioning by gain-driven swaps. */

void *malloc(unsigned long n);
void free(void *p);
int printf(char *fmt, ...);

#define MAX_NODES 128

struct edge {
  struct edge *next;
  struct node *to;
  int weight;
};

struct node {
  int id;
  int partition;
  int gain;
  int locked;
  struct edge *adj;
  struct node *next_free;
};

struct graph {
  struct node nodes[MAX_NODES];
  int n_nodes;
  int n_edges;
};

struct graph g;
struct node *free_list;

void graph_init(int n) {
  int i;
  g.n_nodes = n;
  g.n_edges = 0;
  for (i = 0; i < n; i++) {
    struct node *nd = &g.nodes[i];
    nd->id = i;
    nd->partition = i % 2;
    nd->gain = 0;
    nd->locked = 0;
    nd->adj = 0;
    nd->next_free = 0;
  }
}

void add_edge(int a, int b, int w) {
  struct edge *e1, *e2;
  e1 = malloc(sizeof(struct edge));
  e1->to = &g.nodes[b];
  e1->weight = w;
  e1->next = g.nodes[a].adj;
  g.nodes[a].adj = e1;
  e2 = malloc(sizeof(struct edge));
  e2->to = &g.nodes[a];
  e2->weight = w;
  e2->next = g.nodes[b].adj;
  g.nodes[b].adj = e2;
  g.n_edges = g.n_edges + 1;
}

int external_cost(struct node *nd) {
  int cost = 0;
  struct edge *e;
  for (e = nd->adj; e; e = e->next) {
    if (e->to->partition != nd->partition)
      cost = cost + e->weight;
  }
  return cost;
}

int internal_cost(struct node *nd) {
  int cost = 0;
  struct edge *e;
  for (e = nd->adj; e; e = e->next) {
    if (e->to->partition == nd->partition)
      cost = cost + e->weight;
  }
  return cost;
}

void compute_gains(void) {
  int i;
  for (i = 0; i < g.n_nodes; i++) {
    struct node *nd = &g.nodes[i];
    nd->gain = external_cost(nd) - internal_cost(nd);
  }
}

struct node *best_unlocked(int part) {
  struct node *best = 0;
  int i;
  for (i = 0; i < g.n_nodes; i++) {
    struct node *nd = &g.nodes[i];
    if (nd->locked || nd->partition != part)
      continue;
    if (!best || nd->gain > best->gain)
      best = nd;
  }
  return best;
}

void swap_pair(struct node *a, struct node *b) {
  int t = a->partition;
  a->partition = b->partition;
  b->partition = t;
  a->locked = 1;
  b->locked = 1;
}

int cut_size(void) {
  int i;
  int cut = 0;
  for (i = 0; i < g.n_nodes; i++)
    cut = cut + external_cost(&g.nodes[i]);
  return cut / 2;
}

int one_pass(void) {
  int swaps = 0;
  struct node *a, *b;
  int i;
  for (i = 0; i < g.n_nodes; i++)
    g.nodes[i].locked = 0;
  for (;;) {
    compute_gains();
    a = best_unlocked(0);
    b = best_unlocked(1);
    if (!a || !b)
      break;
    if (a->gain + b->gain <= 0)
      break;
    swap_pair(a, b);
    swaps = swaps + 1;
  }
  return swaps;
}

void free_node_pool(void) {
  struct node *nd = free_list;
  while (nd) {
    struct node *next = nd->next_free;
    nd = next;
  }
}

int main(void) {
  int i, pass;
  graph_init(32);
  for (i = 0; i + 1 < g.n_nodes; i++)
    add_edge(i, i + 1, (i * 7) % 5 + 1);
  for (i = 0; i + 8 < g.n_nodes; i = i + 3)
    add_edge(i, i + 8, 2);
  for (pass = 0; pass < 10; pass++) {
    if (one_pass() == 0)
      break;
  }
  printf("final cut: %d after %d passes\n", cut_size(), pass);
  free_node_pool();
  return 0;
}
|}
