(** Corpus: spreadsheet cell engine (after "sc"). Cell values are tagged
    variants realized as distinct struct types sharing an initial tag
    field, stored behind a generic value pointer. *)

let name = "sc"

let has_struct_cast = true

let description = "spreadsheet: tagged cell values behind generic pointers"

let source =
  {|
/* sc: a grid of cells whose values are number / string / formula,
   represented as separate struct types sharing the initial tag and
   accessed through struct value_head* with downcasts. */

void *malloc(unsigned long n);
int printf(char *fmt, ...);
char *strcpy(char *dst, char *src);
unsigned long strlen(char *s);

#define ROWS 8
#define COLS 8

#define V_EMPTY 0
#define V_NUM 1
#define V_STR 2
#define V_FORMULA 3

struct value_head {
  int tag;
  int uses;
};

struct num_value {
  int tag;
  int uses;
  double value;
};

struct str_value {
  int tag;
  int uses;
  char text[32];
};

/* a formula references two other cells and an operator */
struct formula_value {
  int tag;
  int uses;
  int r1, c1;
  int r2, c2;
  int op;
  double cached;
  int valid;
};

struct sheet {
  struct value_head *cells[ROWS][COLS];
  int n_set;
  long evals;
};

struct sheet sh;

struct value_head *empty_value;

void sheet_init(void) {
  int r, c;
  for (r = 0; r < ROWS; r++)
    for (c = 0; c < COLS; c++)
      sh.cells[r][c] = empty_value;
  sh.n_set = 0;
  sh.evals = 0;
}

void set_cell(int r, int c, struct value_head *v) {
  if (r < 0 || r >= ROWS || c < 0 || c >= COLS)
    return;
  v->uses = v->uses + 1;
  sh.cells[r][c] = v;
  sh.n_set = sh.n_set + 1;
}

struct value_head *mk_num(double d) {
  struct num_value *n = malloc(sizeof(struct num_value));
  n->tag = V_NUM;
  n->uses = 0;
  n->value = d;
  return (struct value_head *)n;
}

struct value_head *mk_str(char *s) {
  struct str_value *v = malloc(sizeof(struct str_value));
  v->tag = V_STR;
  v->uses = 0;
  strcpy(v->text, s);
  return (struct value_head *)v;
}

struct value_head *mk_formula(int r1, int c1, int op, int r2, int c2) {
  struct formula_value *f = malloc(sizeof(struct formula_value));
  f->tag = V_FORMULA;
  f->uses = 0;
  f->r1 = r1; f->c1 = c1;
  f->r2 = r2; f->c2 = c2;
  f->op = op;
  f->valid = 0;
  f->cached = 0.0;
  return (struct value_head *)f;
}

double eval_cell(int r, int c, int depth);
struct range_value;
double eval_range(struct range_value *rv, int depth);

double eval_value(struct value_head *v, int depth) {
  sh.evals = sh.evals + 1;
  if (!v || v->tag == V_EMPTY)
    return 0.0;
  if (v->tag == V_NUM)
    return ((struct num_value *)v)->value;
  if (v->tag == V_STR)
    return (double)strlen(((struct str_value *)v)->text);
  if (v->tag == V_FORMULA) {
    struct formula_value *f = (struct formula_value *)v;
    double a, b, out;
    if (f->valid)
      return f->cached;
    if (depth > 16)
      return 0.0;
    a = eval_cell(f->r1, f->c1, depth + 1);
    b = eval_cell(f->r2, f->c2, depth + 1);
    if (f->op == '+') out = a + b;
    else if (f->op == '-') out = a - b;
    else if (f->op == '*') out = a * b;
    else out = b != 0.0 ? a / b : 0.0;
    f->cached = out;
    f->valid = 1;
    return out;
  }
  if (v->tag == 4 && depth <= 16) /* V_RANGE, defined below */
    return eval_range((struct range_value *)v, depth);
  return 0.0;
}

double eval_cell(int r, int c, int depth) {
  if (r < 0 || r >= ROWS || c < 0 || c >= COLS)
    return 0.0;
  return eval_value(sh.cells[r][c], depth);
}

/* ---- range aggregates: also tagged values, computed over rectangles ---- */

#define V_RANGE 4

struct range_value {
  int tag;
  int uses;
  int r1, c1;
  int r2, c2;
  int op;              /* 's' sum, 'a' average, 'x' max */
};

struct value_head *mk_range(int r1, int c1, int r2, int c2, int op) {
  struct range_value *v = malloc(sizeof(struct range_value));
  v->tag = V_RANGE;
  v->uses = 0;
  v->r1 = r1; v->c1 = c1;
  v->r2 = r2; v->c2 = c2;
  v->op = op;
  return (struct value_head *)v;
}

double eval_range(struct range_value *rv, int depth) {
  double acc = 0.0;
  double best = 0.0;
  int n = 0;
  int r, c;
  for (r = rv->r1; r <= rv->r2 && r < ROWS; r++) {
    for (c = rv->c1; c <= rv->c2 && c < COLS; c++) {
      struct value_head *v = sh.cells[r][c];
      double x;
      if (v == (struct value_head *)rv)
        continue; /* a range never includes itself */
      x = eval_cell(r, c, depth + 1);
      acc = acc + x;
      if (n == 0 || x > best)
        best = x;
      n = n + 1;
    }
  }
  if (rv->op == 's') return acc;
  if (rv->op == 'a') return n > 0 ? acc / (double)n : 0.0;
  return best;
}

/* per-column statistics report */
struct col_stats {
  double total;
  double maximum;
  int nonzero;
};

void column_report(void) {
  int c, r;
  for (c = 0; c < COLS; c++) {
    struct col_stats st;
    st.total = 0.0;
    st.maximum = 0.0;
    st.nonzero = 0;
    for (r = 0; r < ROWS; r++) {
      double x = eval_cell(r, c, 0);
      st.total = st.total + x;
      if (x > st.maximum)
        st.maximum = x;
      if (x != 0.0)
        st.nonzero = st.nonzero + 1;
    }
    if (st.nonzero > 0)
      printf("col %d: total %.2f max %.2f nonzero %d\n", c, st.total,
             st.maximum, st.nonzero);
  }
}

void invalidate_all(void) {
  int r, c;
  for (r = 0; r < ROWS; r++)
    for (c = 0; c < COLS; c++) {
      struct value_head *v = sh.cells[r][c];
      if (v && v->tag == V_FORMULA)
        ((struct formula_value *)v)->valid = 0;
    }
}

void print_sheet(void) {
  int r, c;
  for (r = 0; r < ROWS; r++) {
    for (c = 0; c < COLS; c++)
      printf("%8.2f", eval_cell(r, c, 0));
    printf("\n");
  }
}

int main(void) {
  struct value_head ev;
  int i;
  ev.tag = V_EMPTY;
  ev.uses = 0;
  empty_value = &ev;
  sheet_init();
  for (i = 0; i < 5; i++)
    set_cell(0, i, mk_num((double)(i * i)));
  set_cell(1, 0, mk_str("label"));
  set_cell(2, 0, mk_formula(0, 0, '+', 0, 1));
  set_cell(2, 1, mk_formula(2, 0, '*', 0, 2));
  set_cell(2, 2, mk_formula(2, 1, '-', 1, 0));
  set_cell(3, 0, mk_formula(2, 2, '/', 0, 3));
  set_cell(4, 0, mk_range(0, 0, 2, 4, 's'));
  set_cell(4, 1, mk_range(0, 0, 2, 4, 'a'));
  set_cell(4, 2, mk_range(0, 0, 3, 4, 'x'));
  print_sheet();
  invalidate_all();
  set_cell(0, 1, mk_num(100.0));
  print_sheet();
  column_report();
  printf("%d cells set, %ld evaluations\n", sh.n_set, sh.evals);
  return 0;
}
|}
