(** Corpus: polynomial root finder with complex-number structs (after the
    Landi benchmark "allroots"). Cast-free. *)

let name = "allroots"

let has_struct_cast = false

let description = "all roots of a polynomial by damped Newton iteration"

let source =
  {|
/* allroots: deflation + Newton iteration over complex coefficients. */

int printf(char *fmt, ...);

#define MAX_DEGREE 16

struct cpx {
  double re;
  double im;
};

struct poly {
  struct cpx coeff[MAX_DEGREE + 1];
  int degree;
};

struct root_list {
  struct cpx roots[MAX_DEGREE];
  int count;
};

struct poly work;
struct root_list found;

struct cpx cpx_make(double re, double im) {
  struct cpx z;
  z.re = re;
  z.im = im;
  return z;
}

struct cpx cpx_add(struct cpx a, struct cpx b) {
  struct cpx z;
  z.re = a.re + b.re;
  z.im = a.im + b.im;
  return z;
}

struct cpx cpx_sub(struct cpx a, struct cpx b) {
  struct cpx z;
  z.re = a.re - b.re;
  z.im = a.im - b.im;
  return z;
}

struct cpx cpx_mul(struct cpx a, struct cpx b) {
  struct cpx z;
  z.re = a.re * b.re - a.im * b.im;
  z.im = a.re * b.im + a.im * b.re;
  return z;
}

double cpx_norm(struct cpx a) {
  return a.re * a.re + a.im * a.im;
}

struct cpx cpx_div(struct cpx a, struct cpx b) {
  struct cpx z;
  double n = cpx_norm(b);
  if (n == 0.0) {
    z.re = 0.0;
    z.im = 0.0;
    return z;
  }
  z.re = (a.re * b.re + a.im * b.im) / n;
  z.im = (a.im * b.re - a.re * b.im) / n;
  return z;
}

/* evaluate p and its derivative at z by Horner's rule */
void eval_poly(struct poly *p, struct cpx z, struct cpx *val,
               struct cpx *deriv) {
  int i;
  struct cpx v = p->coeff[p->degree];
  struct cpx d = cpx_make(0.0, 0.0);
  for (i = p->degree - 1; i >= 0; i--) {
    d = cpx_add(cpx_mul(d, z), v);
    v = cpx_add(cpx_mul(v, z), p->coeff[i]);
  }
  *val = v;
  *deriv = d;
}

int newton(struct poly *p, struct cpx *z) {
  int iter;
  for (iter = 0; iter < 64; iter++) {
    struct cpx v, d, step;
    eval_poly(p, *z, &v, &d);
    if (cpx_norm(v) < 1e-18)
      return 1;
    if (cpx_norm(d) == 0.0) {
      z->re = z->re + 0.5;
      z->im = z->im + 0.25;
    } else {
      step = cpx_div(v, d);
      *z = cpx_sub(*z, step);
    }
  }
  return cpx_norm(cpx_make(0.0, 0.0)) == 0.0;
}

/* divide p by (x - r), in place */
void deflate(struct poly *p, struct cpx r) {
  int i;
  struct cpx carry = p->coeff[p->degree];
  for (i = p->degree - 1; i >= 0; i--) {
    struct cpx t = p->coeff[i];
    p->coeff[i] = carry;
    carry = cpx_add(cpx_mul(carry, r), t);
  }
  p->degree = p->degree - 1;
}

void find_all_roots(struct poly *p, struct root_list *out) {
  out->count = 0;
  while (p->degree > 0) {
    struct cpx z = cpx_make(0.4, 0.9);
    if (!newton(p, &z))
      z = cpx_make(0.0, 0.0);
    out->roots[out->count] = z;
    out->count = out->count + 1;
    deflate(p, z);
  }
}

int main(void) {
  int i;
  work.degree = 6;
  for (i = 0; i <= work.degree; i++)
    work.coeff[i] = cpx_make((double)(i + 1), (double)(work.degree - i) * 0.5);
  find_all_roots(&work, &found);
  for (i = 0; i < found.count; i++)
    printf("root %d: %f + %fi\n", i, found.roots[i].re, found.roots[i].im);
  return 0;
}
|}
