(** Corpus: two-level logic minimizer kernel (after "espresso"). Cube
    bit-sets are structs reinterpreted as flat unsigned-int arrays for the
    bulk bit operations — the struct-as-word-array idiom. *)

let name = "espresso"

let has_struct_cast = true

let description = "logic minimizer: cube bitsets viewed as word arrays"

let source =
  {|
/* espresso: containment and consensus over cubes. Each cube is a struct
   with named parts, but the bulk bit loops view it as unsigned[] via a
   cast. */

void *malloc(unsigned long n);
int printf(char *fmt, ...);

#define NWORDS 4
#define MAX_CUBES 64

struct cube {
  unsigned int part_in;            /* word 0: input literals */
  unsigned int part_out;           /* word 1: output part */
  unsigned int dontcare;           /* word 2 */
  unsigned int flags;              /* word 3 */
  int active;
  int covered_by;
};

struct cover {
  struct cube cubes[MAX_CUBES];
  int n_cubes;
  long word_ops;
};

struct cover F;

/* view the four named words as an array for the bulk loops */
unsigned int *cube_words(struct cube *c) {
  return (unsigned int *)c;
}

int cube_contains(struct cube *a, struct cube *b) {
  /* a contains b iff b's bits are a subset of a's, wordwise */
  unsigned int *wa = cube_words(a);
  unsigned int *wb = cube_words(b);
  int i;
  for (i = 0; i < NWORDS; i++) {
    F.word_ops = F.word_ops + 1;
    if ((wb[i] & ~wa[i]) != 0)
      return 0;
  }
  return 1;
}

void cube_or(struct cube *dst, struct cube *a, struct cube *b) {
  unsigned int *wd = cube_words(dst);
  unsigned int *wa = cube_words(a);
  unsigned int *wb = cube_words(b);
  int i;
  for (i = 0; i < NWORDS; i++) {
    F.word_ops = F.word_ops + 1;
    wd[i] = wa[i] | wb[i];
  }
}

int cube_distance(struct cube *a, struct cube *b) {
  unsigned int *wa = cube_words(a);
  unsigned int *wb = cube_words(b);
  int i, d = 0;
  for (i = 0; i < NWORDS; i++) {
    unsigned int x = wa[i] ^ wb[i];
    F.word_ops = F.word_ops + 1;
    while (x) {
      d = d + (int)(x & 1U);
      x = x >> 1;
    }
  }
  return d;
}

struct cube *add_cube(unsigned int in, unsigned int out, unsigned int dc) {
  struct cube *c;
  if (F.n_cubes >= MAX_CUBES)
    return 0;
  c = &F.cubes[F.n_cubes];
  c->part_in = in;
  c->part_out = out;
  c->dontcare = dc;
  c->flags = 0;
  c->active = 1;
  c->covered_by = -1;
  F.n_cubes = F.n_cubes + 1;
  return c;
}

/* single-cube containment removal */
int remove_contained(void) {
  int i, j, removed = 0;
  for (i = 0; i < F.n_cubes; i++) {
    struct cube *a = &F.cubes[i];
    if (!a->active)
      continue;
    for (j = 0; j < F.n_cubes; j++) {
      struct cube *b = &F.cubes[j];
      if (i == j || !b->active)
        continue;
      if (cube_contains(a, b)) {
        b->active = 0;
        b->covered_by = i;
        removed = removed + 1;
      }
    }
  }
  return removed;
}

/* merge distance-1 pairs by OR-ing them */
int merge_close_pairs(void) {
  int i, j, merged = 0;
  for (i = 0; i < F.n_cubes; i++) {
    struct cube *a = &F.cubes[i];
    if (!a->active)
      continue;
    for (j = i + 1; j < F.n_cubes; j++) {
      struct cube *b = &F.cubes[j];
      if (!b->active)
        continue;
      if (cube_distance(a, b) == 1) {
        cube_or(a, a, b);
        b->active = 0;
        b->covered_by = i;
        merged = merged + 1;
      }
    }
  }
  return merged;
}

int count_active(void) {
  int i, n = 0;
  for (i = 0; i < F.n_cubes; i++)
    if (F.cubes[i].active)
      n = n + 1;
  return n;
}

/* ---- expansion against an off-set ---- */

struct cover OFF;

int intersects(struct cube *a, struct cube *b) {
  unsigned int *wa = cube_words(a);
  unsigned int *wb = cube_words(b);
  int i;
  for (i = 0; i < NWORDS; i++) {
    F.word_ops = F.word_ops + 1;
    if ((wa[i] & wb[i]) != 0)
      return 1;
  }
  return 0;
}

/* try to raise each bit of a cube unless that would hit the off-set
   (classic espresso EXPAND, bit-at-a-time) */
int expand_cube(struct cube *c) {
  int word, bit, raised = 0;
  unsigned int *w = cube_words(c);
  for (word = 0; word < NWORDS; word++) {
    for (bit = 0; bit < 8; bit++) {
      unsigned int mask = 1U << bit;
      struct cube trial;
      unsigned int *wt;
      int j, blocked;
      if (w[word] & mask)
        continue;
      trial = *c;
      wt = cube_words(&trial);
      wt[word] = wt[word] | mask;
      blocked = 0;
      for (j = 0; j < OFF.n_cubes; j++) {
        if (OFF.cubes[j].active && intersects(&trial, &OFF.cubes[j])) {
          blocked = 1;
          break;
        }
      }
      if (!blocked) {
        *c = trial;
        raised = raised + 1;
      }
    }
  }
  return raised;
}

int expand_all(void) {
  int i, total = 0;
  for (i = 0; i < F.n_cubes; i++) {
    if (F.cubes[i].active)
      total = total + expand_cube(&F.cubes[i]);
  }
  return total;
}

void build_off_set(unsigned int seed) {
  int i;
  OFF.n_cubes = 0;
  OFF.word_ops = 0;
  for (i = 0; i < 6; i++) {
    struct cube *c;
    seed = seed * 22695477U + 1U;
    if (OFF.n_cubes >= MAX_CUBES)
      return;
    c = &OFF.cubes[OFF.n_cubes];
    c->part_in = seed & 0x3U;
    c->part_out = (seed >> 7) & 0x1U;
    c->dontcare = 0;
    c->flags = 0;
    c->active = 1;
    c->covered_by = -1;
    OFF.n_cubes = OFF.n_cubes + 1;
  }
}

int main(void) {
  int i;
  unsigned int seed = 0x9e3779b9U;
  F.n_cubes = 0;
  F.word_ops = 0;
  for (i = 0; i < 40; i++) {
    seed = seed * 1664525U + 1013904223U;
    add_cube(seed & 0xffU, (seed >> 8) & 0xfU, (seed >> 12) & 0x3U);
  }
  build_off_set(0x1234567U);
  printf("start: %d cubes, off-set %d cubes\n", count_active(), OFF.n_cubes);
  printf("contained removed: %d\n", remove_contained());
  printf("merged: %d\n", merge_close_pairs());
  printf("bits raised by expand: %d\n", expand_all());
  printf("contained removed: %d\n", remove_contained());
  printf("final: %d cubes after %ld word ops\n", count_active(), F.word_ops);
  return 0;
}
|}
