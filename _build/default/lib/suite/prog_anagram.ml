(** Corpus: anagram finder with a chained hash table. Cast-free. *)

let name = "anagram"

let has_struct_cast = false

let description = "anagram grouping via chained hash table of words"

let source =
  {|
/* anagram: group dictionary words by sorted-letter signature. */

void *malloc(unsigned long n);
void free(void *p);
int printf(char *fmt, ...);
char *strcpy(char *dst, char *src);
int strcmp(char *a, char *b);
unsigned long strlen(char *s);
char *fgets(char *buf, int n, void *stream);

#define HASH_SIZE 211
#define MAX_WORD 64

struct word {
  struct word *next_in_class;
  char text[MAX_WORD];
};

struct anagram_class {
  struct anagram_class *next;
  char signature[MAX_WORD];
  struct word *members;
  int count;
};

struct table {
  struct anagram_class *buckets[HASH_SIZE];
  int nclasses;
  int nwords;
};

struct table dict;

unsigned int hash_string(char *s) {
  unsigned int h = 0;
  while (*s) {
    h = h * 31 + (unsigned int)*s;
    s++;
  }
  return h % HASH_SIZE;
}

void signature_of(char *word, char *sig) {
  int counts[26];
  int i, k;
  char *p;
  for (i = 0; i < 26; i++) counts[i] = 0;
  for (p = word; *p; p++) {
    int c = *p;
    if (c >= 'a' && c <= 'z')
      counts[c - 'a'] = counts[c - 'a'] + 1;
  }
  k = 0;
  for (i = 0; i < 26; i++) {
    int n;
    for (n = 0; n < counts[i]; n++) {
      sig[k] = (char)('a' + i);
      k++;
    }
  }
  sig[k] = 0;
}

struct anagram_class *find_class(char *sig) {
  unsigned int h = hash_string(sig);
  struct anagram_class *c;
  for (c = dict.buckets[h]; c; c = c->next) {
    if (strcmp(c->signature, sig) == 0)
      return c;
  }
  return 0;
}

struct anagram_class *add_class(char *sig) {
  unsigned int h = hash_string(sig);
  struct anagram_class *c;
  c = malloc(sizeof(struct anagram_class));
  strcpy(c->signature, sig);
  c->members = 0;
  c->count = 0;
  c->next = dict.buckets[h];
  dict.buckets[h] = c;
  dict.nclasses = dict.nclasses + 1;
  return c;
}

void add_word(char *text) {
  char sig[MAX_WORD];
  struct anagram_class *cls;
  struct word *w;
  signature_of(text, sig);
  cls = find_class(sig);
  if (!cls)
    cls = add_class(sig);
  w = malloc(sizeof(struct word));
  strcpy(w->text, text);
  w->next_in_class = cls->members;
  cls->members = w;
  cls->count = cls->count + 1;
  dict.nwords = dict.nwords + 1;
}

void print_classes(int min_size) {
  int i;
  struct anagram_class *c;
  struct word *w;
  for (i = 0; i < HASH_SIZE; i++) {
    for (c = dict.buckets[i]; c; c = c->next) {
      if (c->count >= min_size) {
        printf("%s:", c->signature);
        for (w = c->members; w; w = w->next_in_class)
          printf(" %s", w->text);
        printf("\n");
      }
    }
  }
}

void chomp(char *line) {
  unsigned long n = strlen(line);
  if (n > 0 && line[n - 1] == '\n')
    line[n - 1] = 0;
}

int main(void) {
  char line[MAX_WORD];
  int i;
  for (i = 0; i < HASH_SIZE; i++)
    dict.buckets[i] = 0;
  dict.nclasses = 0;
  dict.nwords = 0;
  while (fgets(line, MAX_WORD, 0)) {
    chomp(line);
    if (line[0])
      add_word(line);
  }
  printf("%d words in %d classes\n", dict.nwords, dict.nclasses);
  print_classes(2);
  return 0;
}
|}
