(** Corpus: scanner-table generator and driver (after "flex"). The DFA is
    serialized into a flat int array and read back through struct views at
    computed positions — the serialization-cast idiom. *)

let name = "flex"

let has_struct_cast = true

let description =
  "scanner generator: DFA serialized to a flat buffer, read via struct views"

let source =
  {|
/* flex: build a small DFA over character classes, serialize the
   transition rows into a byte image, then run the scanner off the image
   through cast-based row views. */

void *malloc(unsigned long n);
void *memcpy(void *dst, void *src, unsigned long n);
int printf(char *fmt, ...);
int getchar(void);

#define N_CLASSES 4
#define MAX_STATES 16
#define IMAGE_BYTES 4096

/* character classes: letter, digit, space, other */
int char_class(int c) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) return 0;
  if (c >= '0' && c <= '9') return 1;
  if (c == ' ' || c == '\t' || c == '\n') return 2;
  return 3;
}

struct dfa_row {
  int next[N_CLASSES];
  int accept;        /* token kind accepted in this state, or 0 */
};

struct dfa {
  struct dfa_row rows[MAX_STATES];
  int n_states;
  int start;
};

struct image_header {
  int magic;
  int n_states;
  int start;
  int row_bytes;
};

struct dfa machine;
char image[IMAGE_BYTES];

#define TOK_IDENT 1
#define TOK_NUMBER 2
#define TOK_SPACE 3
#define TOK_OTHER 4

int add_state(struct dfa *d, int accept) {
  struct dfa_row *r = &d->rows[d->n_states];
  int i;
  for (i = 0; i < N_CLASSES; i++)
    r->next[i] = -1;
  r->accept = accept;
  d->n_states = d->n_states + 1;
  return d->n_states - 1;
}

void build_machine(void) {
  int start, in_ident, in_num, in_space, in_other;
  machine.n_states = 0;
  start = add_state(&machine, 0);
  in_ident = add_state(&machine, TOK_IDENT);
  in_num = add_state(&machine, TOK_NUMBER);
  in_space = add_state(&machine, TOK_SPACE);
  in_other = add_state(&machine, TOK_OTHER);
  machine.start = start;
  machine.rows[start].next[0] = in_ident;
  machine.rows[start].next[1] = in_num;
  machine.rows[start].next[2] = in_space;
  machine.rows[start].next[3] = in_other;
  machine.rows[in_ident].next[0] = in_ident;
  machine.rows[in_ident].next[1] = in_ident;
  machine.rows[in_num].next[1] = in_num;
  machine.rows[in_space].next[2] = in_space;
}

/* serialize: header followed by the rows, all into a char image */
unsigned long serialize(struct dfa *d, char *buf) {
  struct image_header *h = (struct image_header *)buf;
  char *p;
  int i;
  h->magic = 0x464c4558;
  h->n_states = d->n_states;
  h->start = d->start;
  h->row_bytes = (int)sizeof(struct dfa_row);
  p = buf + sizeof(struct image_header);
  for (i = 0; i < d->n_states; i++) {
    memcpy(p, &d->rows[i], sizeof(struct dfa_row));
    p = p + sizeof(struct dfa_row);
  }
  return (unsigned long)(p - buf);
}

/* the scanner reads rows straight out of the image */
struct scanner {
  char *image;
  struct image_header *header;
  int state;
  long tokens[5];
};

struct scanner sc;

void scanner_attach(char *buf) {
  sc.image = buf;
  sc.header = (struct image_header *)buf;
  sc.state = sc.header->start;
}

struct dfa_row *row_at(int state) {
  char *base = sc.image + sizeof(struct image_header);
  return (struct dfa_row *)(base + state * sc.header->row_bytes);
}

void note_token(int kind) {
  if (kind >= 1 && kind <= 4)
    sc.tokens[kind] = sc.tokens[kind] + 1;
}

void scan_stream(void) {
  int c = getchar();
  sc.state = sc.header->start;
  while (c >= 0) {
    struct dfa_row *r = row_at(sc.state);
    int cls = char_class(c);
    int nxt = r->next[cls];
    if (nxt < 0) {
      note_token(r->accept);
      sc.state = sc.header->start;
      r = row_at(sc.state);
      nxt = r->next[cls];
      if (nxt < 0)
        nxt = sc.header->start;
    }
    sc.state = nxt;
    c = getchar();
  }
  note_token(row_at(sc.state)->accept);
}

int main(void) {
  unsigned long bytes;
  build_machine();
  bytes = serialize(&machine, image);
  scanner_attach(image);
  scan_stream();
  printf("image %lu bytes; idents %ld numbers %ld spaces %ld other %ld\n",
         bytes, sc.tokens[TOK_IDENT], sc.tokens[TOK_NUMBER],
         sc.tokens[TOK_SPACE], sc.tokens[TOK_OTHER]);
  return 0;
}
|}
