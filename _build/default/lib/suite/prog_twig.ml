(** Corpus: tree-pattern matcher (after "twig", the paper's worst case for
    CIS). Pattern and subject trees use different node types that share an
    initial sequence, and the matcher walks both through base-type casts. *)

let name = "twig"

let has_struct_cast = true

let description =
  "tree pattern matcher: pattern/subject nodes share a common prefix"

let source =
  {|
/* twig: match rewrite patterns against an expression tree. Subject and
   pattern nodes are distinct types sharing a common initial sequence
   (op, kids); generic traversal code works on the shared prefix type. */

void *malloc(unsigned long n);
int printf(char *fmt, ...);

#define OP_CONST 1
#define OP_REG 2
#define OP_ADD 3
#define OP_MUL 4
#define OP_LOAD 5
#define OP_ANY 99

/* the shared prefix: generic traversals use this type */
struct tnode {
  int op;
  struct tnode *kid0;
  struct tnode *kid1;
};

/* subject nodes carry a value and a computed cost */
struct subject_node {
  int op;
  struct subject_node *kid0;
  struct subject_node *kid1;
  long value;
  int best_cost;
  int best_rule;
};

/* pattern nodes carry a binding slot */
struct pattern_node {
  int op;
  struct pattern_node *kid0;
  struct pattern_node *kid1;
  int bind_slot;
};

struct rule {
  struct pattern_node *pat;
  int cost;
  char *rhs_name;
};

#define MAX_RULES 8
#define MAX_BINDINGS 8

struct matcher {
  struct rule rules[MAX_RULES];
  int n_rules;
  struct subject_node *bindings[MAX_BINDINGS];
  long attempts;
  long matches;
};

struct matcher M;

struct subject_node *mk_subject(int op, struct subject_node *a,
                                struct subject_node *b, long value) {
  struct subject_node *n = malloc(sizeof(struct subject_node));
  n->op = op;
  n->kid0 = a;
  n->kid1 = b;
  n->value = value;
  n->best_cost = 10000;
  n->best_rule = -1;
  return n;
}

struct pattern_node *mk_pattern(int op, struct pattern_node *a,
                                struct pattern_node *b, int slot) {
  struct pattern_node *n = malloc(sizeof(struct pattern_node));
  n->op = op;
  n->kid0 = a;
  n->kid1 = b;
  n->bind_slot = slot;
  return n;
}

/* generic size/depth helpers work on the shared prefix */
int tree_size(struct tnode *t) {
  if (!t)
    return 0;
  return 1 + tree_size(t->kid0) + tree_size(t->kid1);
}

int tree_depth(struct tnode *t) {
  int d0, d1;
  if (!t)
    return 0;
  d0 = tree_depth(t->kid0);
  d1 = tree_depth(t->kid1);
  return 1 + (d0 > d1 ? d0 : d1);
}

/* match a pattern against a subject subtree, recording bindings */
int match_at(struct pattern_node *pat, struct subject_node *sub) {
  M.attempts = M.attempts + 1;
  if (!pat)
    return 1;
  if (!sub)
    return 0;
  if (pat->op == OP_ANY) {
    if (pat->bind_slot >= 0 && pat->bind_slot < MAX_BINDINGS)
      M.bindings[pat->bind_slot] = sub;
    return 1;
  }
  if (pat->op != sub->op)
    return 0;
  return match_at(pat->kid0, sub->kid0) && match_at(pat->kid1, sub->kid1);
}

void add_rule(struct pattern_node *pat, int cost, char *name) {
  struct rule *r = &M.rules[M.n_rules];
  r->pat = pat;
  r->cost = cost;
  r->rhs_name = name;
  M.n_rules = M.n_rules + 1;
}

/* label the subject tree bottom-up with the cheapest matching rule */
void label(struct subject_node *sub) {
  int i;
  if (!sub)
    return;
  label(sub->kid0);
  label(sub->kid1);
  for (i = 0; i < M.n_rules; i++) {
    struct rule *r = &M.rules[i];
    if (match_at(r->pat, sub)) {
      M.matches = M.matches + 1;
      if (r->cost < sub->best_cost) {
        sub->best_cost = r->cost;
        sub->best_rule = i;
      }
    }
  }
}

/* ---- rewriting: replace matched subtrees using recorded bindings ---- */

struct rewrite_stats {
  long rewrites;
  long copies;
};

struct rewrite_stats RW;

struct subject_node *copy_subject(struct subject_node *s) {
  struct subject_node *n;
  if (!s)
    return 0;
  RW.copies = RW.copies + 1;
  n = mk_subject(s->op, copy_subject(s->kid0), copy_subject(s->kid1),
                 s->value);
  n->best_cost = s->best_cost;
  n->best_rule = s->best_rule;
  return n;
}

/* (const * x) rewrites to strength-reduced (x + x) when the constant is
   2; uses binding slot 3 captured by the mul-imm rule's pattern */
struct subject_node *strength_reduce(struct subject_node *sub) {
  int i;
  if (!sub)
    return 0;
  sub->kid0 = strength_reduce(sub->kid0);
  sub->kid1 = strength_reduce(sub->kid1);
  for (i = 0; i < M.n_rules; i++) {
    struct rule *r = &M.rules[i];
    if (r->cost != 4)
      continue; /* only the mul-imm rule */
    if (match_at(r->pat, sub)) {
      struct subject_node *konst = sub->kid0;
      struct subject_node *operand = M.bindings[3];
      if (konst && konst->op == OP_CONST && konst->value == 2 && operand) {
        struct subject_node *left = copy_subject(operand);
        struct subject_node *right = copy_subject(operand);
        RW.rewrites = RW.rewrites + 1;
        return mk_subject(OP_ADD, left, right, 0);
      }
    }
  }
  return sub;
}

void dump_labels(struct subject_node *sub, int depth) {
  int i;
  if (!sub)
    return;
  for (i = 0; i < depth; i++)
    printf("  ");
  printf("op=%d rule=%d cost=%d\n", sub->op, sub->best_rule, sub->best_cost);
  dump_labels(sub->kid0, depth + 1);
  dump_labels(sub->kid1, depth + 1);
}

int main(void) {
  struct subject_node *tree, *tree2;
  /* subject: (reg + (const * load(reg))) */
  tree = mk_subject(OP_ADD,
           mk_subject(OP_REG, 0, 0, 1),
           mk_subject(OP_MUL,
             mk_subject(OP_CONST, 0, 0, 4),
             mk_subject(OP_LOAD,
               mk_subject(OP_REG, 0, 0, 2), 0, 0), 0),
           0);
  /* a second subject with a strength-reducible (2 * reg) */
  tree2 = mk_subject(OP_MUL,
            mk_subject(OP_CONST, 0, 0, 2),
            mk_subject(OP_REG, 0, 0, 3), 0);
  /* rules */
  add_rule(mk_pattern(OP_ANY, 0, 0, 0), 10, "spill");
  add_rule(mk_pattern(OP_REG, 0, 0, -1), 1, "reg");
  add_rule(mk_pattern(OP_CONST, 0, 0, -1), 1, "imm");
  add_rule(mk_pattern(OP_ADD,
             mk_pattern(OP_ANY, 0, 0, 1),
             mk_pattern(OP_ANY, 0, 0, 2), -1), 3, "add");
  add_rule(mk_pattern(OP_MUL,
             mk_pattern(OP_CONST, 0, 0, -1),
             mk_pattern(OP_ANY, 0, 0, 3), -1), 4, "mul-imm");
  add_rule(mk_pattern(OP_LOAD,
             mk_pattern(OP_REG, 0, 0, -1), 0, -1), 2, "load");
  M.attempts = 0;
  M.matches = 0;
  RW.rewrites = 0;
  RW.copies = 0;
  label(tree);
  dump_labels(tree, 0);
  tree2 = strength_reduce(tree2);
  label(tree2);
  printf("after rewriting: %ld rewrites, %ld copies, root op %d\n",
         RW.rewrites, RW.copies, tree2->op);
  /* generic traversals through the shared-prefix cast */
  printf("size %d depth %d attempts %ld matches %ld\n",
         tree_size((struct tnode *)tree),
         tree_depth((struct tnode *)tree), M.attempts, M.matches);
  printf("pattern sizes:");
  {
    int i;
    for (i = 0; i < M.n_rules; i++)
      printf(" %d", tree_size((struct tnode *)M.rules[i].pat));
  }
  printf("\n");
  return 0;
}
|}
