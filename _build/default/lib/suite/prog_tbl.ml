(** Corpus: generic hash-table library with two typed clients (after the
    symbol-table cores of "awk"/"cfront"-era tools). Keys and values are
    void*; hashing and equality go through function pointers; clients cast
    payloads back to their types. *)

let name = "tbl"

let has_struct_cast = true

let description =
  "generic hash table (void* keys/values, fn-pointer hooks) + typed clients"

let source =
  {|
/* tbl: a reusable chained hash table. Two clients: a string->symbol
   interner and an int-keyed register map, each casting payloads. */

void *malloc(unsigned long n);
void free(void *p);
int printf(char *fmt, ...);
int strcmp(char *a, char *b);
char *strcpy(char *dst, char *src);
unsigned long strlen(char *s);

#define N_BUCKETS 64

struct tbl_entry {
  struct tbl_entry *next;
  void *key;
  void *value;
};

struct tbl {
  struct tbl_entry *buckets[N_BUCKETS];
  unsigned int (*hash)(void *key);
  int (*equal)(void *a, void *b);
  int count;
};

void tbl_init(struct tbl *t, unsigned int (*hash)(void *),
              int (*equal)(void *, void *)) {
  int i;
  for (i = 0; i < N_BUCKETS; i++)
    t->buckets[i] = 0;
  t->hash = hash;
  t->equal = equal;
  t->count = 0;
}

void *tbl_get(struct tbl *t, void *key) {
  unsigned int h = (*t->hash)(key) % N_BUCKETS;
  struct tbl_entry *e;
  for (e = t->buckets[h]; e; e = e->next) {
    if ((*t->equal)(e->key, key))
      return e->value;
  }
  return 0;
}

void tbl_put(struct tbl *t, void *key, void *value) {
  unsigned int h = (*t->hash)(key) % N_BUCKETS;
  struct tbl_entry *e;
  for (e = t->buckets[h]; e; e = e->next) {
    if ((*t->equal)(e->key, key)) {
      e->value = value;
      return;
    }
  }
  e = malloc(sizeof(struct tbl_entry));
  e->key = key;
  e->value = value;
  e->next = t->buckets[h];
  t->buckets[h] = e;
  t->count = t->count + 1;
}

void tbl_foreach(struct tbl *t, void (*fn)(void *key, void *value)) {
  int i;
  struct tbl_entry *e;
  for (i = 0; i < N_BUCKETS; i++)
    for (e = t->buckets[i]; e; e = e->next)
      (*fn)(e->key, e->value);
}

/* remove a key; returns the old value (or null) */
void *tbl_remove(struct tbl *t, void *key) {
  unsigned int h = (*t->hash)(key) % N_BUCKETS;
  struct tbl_entry **link = &t->buckets[h];
  while (*link) {
    struct tbl_entry *e = *link;
    if ((*t->equal)(e->key, key)) {
      void *v = e->value;
      *link = e->next;
      t->count = t->count - 1;
      free(e);
      return v;
    }
    link = &e->next;
  }
  return 0;
}

/* redistribute all entries (e.g. after changing the hash function) */
void tbl_rehash(struct tbl *t, unsigned int (*new_hash)(void *)) {
  struct tbl_entry *all = 0;
  int i;
  for (i = 0; i < N_BUCKETS; i++) {
    struct tbl_entry *e = t->buckets[i];
    while (e) {
      struct tbl_entry *next = e->next;
      e->next = all;
      all = e;
      e = next;
    }
    t->buckets[i] = 0;
  }
  t->hash = new_hash;
  while (all) {
    struct tbl_entry *next = all->next;
    unsigned int h = (*t->hash)(all->key) % N_BUCKETS;
    all->next = t->buckets[h];
    t->buckets[h] = all;
    all = next;
  }
}

int tbl_longest_chain(struct tbl *t) {
  int i, best = 0;
  for (i = 0; i < N_BUCKETS; i++) {
    int n = 0;
    struct tbl_entry *e;
    for (e = t->buckets[i]; e; e = e->next)
      n = n + 1;
    if (n > best)
      best = n;
  }
  return best;
}

/* ---- client 1: string interner / symbol table ---- */

struct symbol {
  char name[32];
  int id;
  int refs;
};

unsigned int str_hash(void *key) {
  char *s = (char *)key;
  unsigned int h = 5381;
  while (*s) {
    h = h * 33 + (unsigned int)*s;
    s++;
  }
  return h;
}

int str_equal(void *a, void *b) {
  return strcmp((char *)a, (char *)b) == 0;
}

struct tbl symbols;
int next_sym_id;

struct symbol *intern(char *name) {
  struct symbol *sym = (struct symbol *)tbl_get(&symbols, (void *)name);
  if (sym) {
    sym->refs = sym->refs + 1;
    return sym;
  }
  sym = malloc(sizeof(struct symbol));
  strcpy(sym->name, name);
  sym->id = next_sym_id;
  sym->refs = 1;
  next_sym_id = next_sym_id + 1;
  tbl_put(&symbols, (void *)sym->name, (void *)sym);
  return sym;
}

/* ---- client 2: int-keyed register map ---- */

struct reg_info {
  int reg_no;
  int live_start;
  int live_end;
};

/* integer keys are boxed into heap ints */
unsigned int int_hash(void *key) {
  int *p = (int *)key;
  return (unsigned int)(*p * 2654435761U);
}

int int_equal(void *a, void *b) {
  return *(int *)a == *(int *)b;
}

struct tbl registers;

void assign_register(int vreg, int reg_no, int s, int e) {
  int *key = malloc(sizeof(int));
  struct reg_info *info = malloc(sizeof(struct reg_info));
  *key = vreg;
  info->reg_no = reg_no;
  info->live_start = s;
  info->live_end = e;
  tbl_put(&registers, (void *)key, (void *)info);
}

struct reg_info *lookup_register(int vreg) {
  int key = vreg;
  return (struct reg_info *)tbl_get(&registers, (void *)&key);
}

/* ---- walkers ---- */

long sym_ref_total;

void count_refs(void *key, void *value) {
  struct symbol *sym = (struct symbol *)value;
  sym_ref_total = sym_ref_total + sym->refs;
  if (str_equal(key, (void *)sym->name) == 0)
    printf("corrupt symbol entry!\n");
}

int spill_count;

void count_spills(void *key, void *value) {
  struct reg_info *info = (struct reg_info *)value;
  int vreg = *(int *)key;
  if (info->reg_no < 0)
    spill_count = spill_count + 1;
  if (vreg < 0)
    printf("bad vreg\n");
}

int main(void) {
  char *words[6];
  int i;
  struct symbol *s1, *s2;
  struct reg_info *ri;
  words[0] = "alpha";
  words[1] = "beta";
  words[2] = "gamma";
  words[3] = "alpha";
  words[4] = "delta";
  words[5] = "beta";
  tbl_init(&symbols, str_hash, str_equal);
  tbl_init(&registers, int_hash, int_equal);
  next_sym_id = 0;
  for (i = 0; i < 6; i++)
    intern(words[i]);
  s1 = intern("alpha");
  s2 = intern("epsilon");
  printf("alpha id %d refs %d; epsilon id %d\n", s1->id, s1->refs, s2->id);
  for (i = 0; i < 10; i++)
    assign_register(i, i < 6 ? i : -1, i * 2, i * 2 + 7);
  ri = lookup_register(7);
  if (ri)
    printf("vreg 7 -> reg %d live [%d,%d]\n", ri->reg_no, ri->live_start,
           ri->live_end);
  sym_ref_total = 0;
  tbl_foreach(&symbols, count_refs);
  spill_count = 0;
  tbl_foreach(&registers, count_spills);
  printf("%d symbols, %ld refs; %d registers, %d spills\n", symbols.count,
         sym_ref_total, registers.count, spill_count);
  /* removal and rehashing exercise the remaining table paths */
  tbl_remove(&symbols, (void *)"gamma");
  printf("after remove: %d symbols, longest chain %d\n", symbols.count,
         tbl_longest_chain(&symbols));
  tbl_rehash(&symbols, str_hash);
  printf("after rehash: %d symbols, longest chain %d\n", symbols.count,
         tbl_longest_chain(&symbols));
  return 0;
}
|}
