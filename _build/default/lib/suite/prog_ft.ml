(** Corpus: minimum spanning forest with union-find (after the Austin
    benchmark "ft"). Cast-free. *)

let name = "ft"

let has_struct_cast = false

let description = "Kruskal minimum spanning forest with union-find"

let source =
  {|
/* ft: Kruskal's MST over an edge list, union-find with path compression. */

void *malloc(unsigned long n);
int printf(char *fmt, ...);

#define NV 64
#define NE 256

struct vertex {
  int label;
  struct vertex *parent;
  int rank;
};

struct edge_rec {
  int from;
  int to;
  int weight;
  int in_tree;
};

struct forest {
  struct vertex verts[NV];
  struct edge_rec edges[NE];
  int n_edges;
  int tree_weight;
};

struct forest F;

void init_forest(void) {
  int i;
  for (i = 0; i < NV; i++) {
    struct vertex *v = &F.verts[i];
    v->label = i;
    v->parent = v;
    v->rank = 0;
  }
  F.n_edges = 0;
  F.tree_weight = 0;
}

struct vertex *find_root(struct vertex *v) {
  struct vertex *root = v;
  while (root->parent != root)
    root = root->parent;
  /* path compression */
  while (v->parent != root) {
    struct vertex *up = v->parent;
    v->parent = root;
    v = up;
  }
  return root;
}

int union_sets(struct vertex *a, struct vertex *b) {
  struct vertex *ra = find_root(a);
  struct vertex *rb = find_root(b);
  if (ra == rb)
    return 0;
  if (ra->rank < rb->rank) {
    struct vertex *t = ra;
    ra = rb;
    rb = t;
  }
  rb->parent = ra;
  if (ra->rank == rb->rank)
    ra->rank = ra->rank + 1;
  return 1;
}

void add_edge(int a, int b, int w) {
  struct edge_rec *e;
  if (F.n_edges >= NE)
    return;
  e = &F.edges[F.n_edges];
  e->from = a;
  e->to = b;
  e->weight = w;
  e->in_tree = 0;
  F.n_edges = F.n_edges + 1;
}

void sort_edges(void) {
  /* insertion sort by weight */
  int i, j;
  for (i = 1; i < F.n_edges; i++) {
    struct edge_rec key = F.edges[i];
    j = i - 1;
    while (j >= 0 && F.edges[j].weight > key.weight) {
      F.edges[j + 1] = F.edges[j];
      j = j - 1;
    }
    F.edges[j + 1] = key;
  }
}

void kruskal(void) {
  int i;
  sort_edges();
  for (i = 0; i < F.n_edges; i++) {
    struct edge_rec *e = &F.edges[i];
    if (union_sets(&F.verts[e->from], &F.verts[e->to])) {
      e->in_tree = 1;
      F.tree_weight = F.tree_weight + e->weight;
    }
  }
}

int count_components(void) {
  int i, n = 0;
  for (i = 0; i < NV; i++) {
    struct vertex *v = &F.verts[i];
    if (find_root(v) == v)
      n = n + 1;
  }
  return n;
}

int main(void) {
  int i;
  init_forest();
  for (i = 0; i + 1 < NV; i++)
    add_edge(i, i + 1, (i * 13) % 17);
  for (i = 0; i + 5 < NV; i = i + 2)
    add_edge(i, i + 5, (i * 11) % 23);
  kruskal();
  printf("tree weight %d, components %d\n", F.tree_weight,
         count_components());
  return 0;
}
|}
