(** Corpus: hunk-based text patcher (after "patch"). Uses a generic
    void*-payload list library shared by two differently-typed clients —
    the classic generic-container casting pattern. *)

let name = "patch"

let has_struct_cast = true

let description = "text patcher: generic void* lists with typed clients"

let source =
  {|
/* patch: parse hunks, apply them to a line table. A small generic list
   library stores void* payloads; clients cast payloads back to their
   record types (struct line / struct hunk). */

void *malloc(unsigned long n);
int printf(char *fmt, ...);
char *strcpy(char *dst, char *src);
int strcmp(char *a, char *b);
unsigned long strlen(char *s);

/* ---- generic list ---- */

struct list_node {
  struct list_node *next;
  void *payload;
};

struct list {
  struct list_node *head;
  struct list_node *tail;
  int length;
};

void list_init(struct list *l) {
  l->head = 0;
  l->tail = 0;
  l->length = 0;
}

void list_append(struct list *l, void *payload) {
  struct list_node *n = malloc(sizeof(struct list_node));
  n->payload = payload;
  n->next = 0;
  if (l->tail)
    l->tail->next = n;
  else
    l->head = n;
  l->tail = n;
  l->length = l->length + 1;
}

void *list_nth(struct list *l, int i) {
  struct list_node *n = l->head;
  while (n && i > 0) {
    n = n->next;
    i = i - 1;
  }
  return n ? n->payload : 0;
}

void list_foreach(struct list *l, void (*fn)(void *payload)) {
  struct list_node *n;
  for (n = l->head; n; n = n->next)
    (*fn)(n->payload);
}

/* ---- typed clients ---- */

#define LINE_LEN 80

struct line {
  int number;
  int deleted;
  char text[LINE_LEN];
};

#define H_ADD 1
#define H_DEL 2
#define H_CHANGE 3

struct hunk {
  int kind;
  int at;             /* 1-based line number */
  char text[LINE_LEN];
  int applied;
};

struct list file_lines;
struct list hunks;
long checksum;

struct line *mk_line(int number, char *text) {
  struct line *ln = malloc(sizeof(struct line));
  ln->number = number;
  ln->deleted = 0;
  strcpy(ln->text, text);
  return ln;
}

struct hunk *mk_hunk(int kind, int at, char *text) {
  struct hunk *h = malloc(sizeof(struct hunk));
  h->kind = kind;
  h->at = at;
  h->applied = 0;
  strcpy(h->text, text);
  return h;
}

struct line *find_line(int number) {
  struct list_node *n;
  for (n = file_lines.head; n; n = n->next) {
    struct line *ln = (struct line *)n->payload;
    if (ln->number == number && !ln->deleted)
      return ln;
  }
  return 0;
}

int apply_hunk(struct hunk *h) {
  struct line *ln;
  if (h->kind == H_ADD) {
    list_append(&file_lines, mk_line(h->at, h->text));
    h->applied = 1;
    return 1;
  }
  ln = find_line(h->at);
  if (!ln)
    return 0;
  if (h->kind == H_DEL) {
    ln->deleted = 1;
    h->applied = 1;
    return 1;
  }
  if (h->kind == H_CHANGE) {
    strcpy(ln->text, h->text);
    h->applied = 1;
    return 1;
  }
  return 0;
}

void apply_all(void) {
  struct list_node *n;
  int ok = 0, failed = 0;
  for (n = hunks.head; n; n = n->next) {
    struct hunk *h = (struct hunk *)n->payload;
    if (apply_hunk(h))
      ok = ok + 1;
    else
      failed = failed + 1;
  }
  printf("%d hunks applied, %d failed\n", ok, failed);
}

void sum_line(void *payload) {
  struct line *ln = (struct line *)payload;
  unsigned long i;
  if (ln->deleted)
    return;
  for (i = 0; i < strlen(ln->text); i++)
    checksum = checksum + ln->text[i];
}

void print_line(void *payload) {
  struct line *ln = (struct line *)payload;
  if (!ln->deleted)
    printf("%3d %s\n", ln->number, ln->text);
}

int main(void) {
  int i;
  list_init(&file_lines);
  list_init(&hunks);
  for (i = 1; i <= 6; i++) {
    char buf[LINE_LEN];
    buf[0] = (char)('A' + i - 1);
    buf[1] = 0;
    list_append(&file_lines, mk_line(i, buf));
  }
  list_append(&hunks, (void *)mk_hunk(H_DEL, 2, ""));
  list_append(&hunks, (void *)mk_hunk(H_CHANGE, 4, "changed"));
  list_append(&hunks, (void *)mk_hunk(H_ADD, 7, "appended"));
  list_append(&hunks, (void *)mk_hunk(H_DEL, 42, "missing"));
  apply_all();
  checksum = 0;
  list_foreach(&file_lines, sum_line);
  list_foreach(&file_lines, print_line);
  printf("checksum %ld over %d lines (%d hunks)\n", checksum,
         file_lines.length, hunks.length);
  {
    struct hunk *second = (struct hunk *)list_nth(&hunks, 1);
    if (second)
      printf("hunk 2: kind %d applied %d\n", second->kind, second->applied);
  }
  return 0;
}
|}
