(** The benchmark corpus: 20 C programs mirroring the shape of the paper's
    test suite — 8 that use structures only at their declared types, and 12
    that cast structures or structure pointers. See DESIGN.md for the
    substitution rationale (the original 1999 sources are not available in
    this environment). *)

type program = {
  name : string;
  source : string;
  has_struct_cast : bool;
  description : string;
}

let mk (name, source, has_struct_cast, description) =
  { name; source; has_struct_cast; description }

let programs : program list =
  List.map mk
    [
      (* --- no structure casting --- *)
      (Prog_wc.name, Prog_wc.source, Prog_wc.has_struct_cast, Prog_wc.description);
      (Prog_ul.name, Prog_ul.source, Prog_ul.has_struct_cast, Prog_ul.description);
      ( Prog_anagram.name,
        Prog_anagram.source,
        Prog_anagram.has_struct_cast,
        Prog_anagram.description );
      (Prog_ks.name, Prog_ks.source, Prog_ks.has_struct_cast, Prog_ks.description);
      (Prog_ft.name, Prog_ft.source, Prog_ft.has_struct_cast, Prog_ft.description);
      ( Prog_allroots.name,
        Prog_allroots.source,
        Prog_allroots.has_struct_cast,
        Prog_allroots.description );
      ( Prog_compress.name,
        Prog_compress.source,
        Prog_compress.has_struct_cast,
        Prog_compress.description );
      ( Prog_stanford.name,
        Prog_stanford.source,
        Prog_stanford.has_struct_cast,
        Prog_stanford.description );
      (* --- with structure casting --- *)
      ( Prog_yacr.name,
        Prog_yacr.source,
        Prog_yacr.has_struct_cast,
        Prog_yacr.description );
      (Prog_bc.name, Prog_bc.source, Prog_bc.has_struct_cast, Prog_bc.description);
      (Prog_li.name, Prog_li.source, Prog_li.has_struct_cast, Prog_li.description);
      ( Prog_less.name,
        Prog_less.source,
        Prog_less.has_struct_cast,
        Prog_less.description );
      ( Prog_flex.name,
        Prog_flex.source,
        Prog_flex.has_struct_cast,
        Prog_flex.description );
      ( Prog_twig.name,
        Prog_twig.source,
        Prog_twig.has_struct_cast,
        Prog_twig.description );
      (Prog_sim.name, Prog_sim.source, Prog_sim.has_struct_cast, Prog_sim.description);
      (Prog_sc.name, Prog_sc.source, Prog_sc.has_struct_cast, Prog_sc.description);
      ( Prog_espresso.name,
        Prog_espresso.source,
        Prog_espresso.has_struct_cast,
        Prog_espresso.description );
      ( Prog_gzip.name,
        Prog_gzip.source,
        Prog_gzip.has_struct_cast,
        Prog_gzip.description );
      ( Prog_patch.name,
        Prog_patch.source,
        Prog_patch.has_struct_cast,
        Prog_patch.description );
      ( Prog_tbl.name,
        Prog_tbl.source,
        Prog_tbl.has_struct_cast,
        Prog_tbl.description );
    ]

let find name = List.find_opt (fun p -> p.name = name) programs

let casting = List.filter (fun p -> p.has_struct_cast) programs

let non_casting = List.filter (fun p -> not p.has_struct_cast) programs

let line_count p =
  (* non-blank source lines, a rough analogue of the paper's "lines" *)
  String.split_on_char '\n' p.source
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length
