(** Corpus: arbitrary-expression calculator (after GNU "bc" — the paper's
    worst case for Collapse-Always). AST nodes share a common header and
    are allocated from a byte pool, so every node access goes through a
    structure-pointer cast. *)

let name = "bc"

let has_struct_cast = true

let description =
  "expression calculator: tagged AST nodes carved from a byte pool"

let source =
  {|
/* bc: tokenizer + recursive-descent parser + evaluator.
   Node allocation returns char*, cast to the node type; every node is
   later dispatched through its common header (the CIS idiom). */

int printf(char *fmt, ...);
int getchar(void);
void exit(int code);

#define POOL_BYTES 8192

#define N_NUM 1
#define N_VAR 2
#define N_BINOP 3
#define N_ASSIGN 4
#define N_UNARY 5
#define N_CALL 6

/* common header shared by all node types */
struct node_head {
  int tag;
  struct node_head *next_alloc;
};

struct num_node {
  int tag;
  struct node_head *next_alloc;
  long value;
};

struct var_node {
  int tag;
  struct node_head *next_alloc;
  int slot;
};

struct binop_node {
  int tag;
  struct node_head *next_alloc;
  int op;
  struct node_head *left;
  struct node_head *right;
};

struct assign_node {
  int tag;
  struct node_head *next_alloc;
  int slot;
  struct node_head *value;
};

struct unary_node {
  int tag;
  struct node_head *next_alloc;
  int op;
  struct node_head *operand;
};

/* a call to a built-in function, e.g. abs(x) or max(a, b) */
struct call_node {
  int tag;
  struct node_head *next_alloc;
  long (*fn)(long a, long b);
  int arity;
  struct node_head *arg0;
  struct node_head *arg1;
};

struct pool {
  char bytes[POOL_BYTES];
  unsigned long used;
  struct node_head *all;
};

struct pool arena;
long variables[26];

char *pool_alloc(unsigned long n) {
  char *p;
  /* align to 8 */
  n = (n + 7) & ~7UL;
  if (arena.used + n > POOL_BYTES)
    exit(1);
  p = &arena.bytes[arena.used];
  arena.used = arena.used + n;
  return p;
}

struct node_head *new_node(int tag, unsigned long size) {
  struct node_head *h = (struct node_head *)pool_alloc(size);
  h->tag = tag;
  h->next_alloc = arena.all;
  arena.all = h;
  return h;
}

struct node_head *mk_num(long v) {
  struct num_node *n = (struct num_node *)new_node(N_NUM, sizeof(struct num_node));
  n->value = v;
  return (struct node_head *)n;
}

struct node_head *mk_var(int slot) {
  struct var_node *n = (struct var_node *)new_node(N_VAR, sizeof(struct var_node));
  n->slot = slot;
  return (struct node_head *)n;
}

struct node_head *mk_binop(int op, struct node_head *l, struct node_head *r) {
  struct binop_node *n =
      (struct binop_node *)new_node(N_BINOP, sizeof(struct binop_node));
  n->op = op;
  n->left = l;
  n->right = r;
  return (struct node_head *)n;
}

struct node_head *mk_assign(int slot, struct node_head *v) {
  struct assign_node *n =
      (struct assign_node *)new_node(N_ASSIGN, sizeof(struct assign_node));
  n->slot = slot;
  n->value = v;
  return (struct node_head *)n;
}

struct node_head *mk_unary(int op, struct node_head *e) {
  struct unary_node *n =
      (struct unary_node *)new_node(N_UNARY, sizeof(struct unary_node));
  n->op = op;
  n->operand = e;
  return (struct node_head *)n;
}

struct node_head *mk_call(long (*fn)(long, long), int arity,
                          struct node_head *a0, struct node_head *a1) {
  struct call_node *n =
      (struct call_node *)new_node(N_CALL, sizeof(struct call_node));
  n->fn = fn;
  n->arity = arity;
  n->arg0 = a0;
  n->arg1 = a1;
  return (struct node_head *)n;
}

/* ---- built-in function table ---- */

long fn_abs(long a, long b) { return a < 0 ? -a : a; }
long fn_max(long a, long b) { return a > b ? a : b; }
long fn_min(long a, long b) { return a < b ? a : b; }
long fn_gcd(long a, long b) {
  while (b != 0) {
    long t = a % b;
    a = b;
    b = t;
  }
  return a < 0 ? -a : a;
}

struct builtin {
  char *name;
  long (*fn)(long a, long b);
  int arity;
};

struct builtin builtins[] = {
  { "abs", fn_abs, 1 },
  { "max", fn_max, 2 },
  { "min", fn_min, 2 },
  { "gcd", fn_gcd, 2 },
};

struct builtin *find_builtin(char *name) {
  int i;
  for (i = 0; i < 4; i++) {
    int j = 0;
    char *a = builtins[i].name;
    while (a[j] && a[j] == name[j])
      j++;
    if (a[j] == 0 && name[j] == 0)
      return &builtins[i];
  }
  return 0;
}

/* ---- lexer ---- */

#define NAME_MAX 16

struct lexer {
  int cur;
  long num_val;
  int var_slot;
  char name[NAME_MAX];
};

struct lexer lx;

#define T_EOF 0
#define T_NUM 1
#define T_VAR 2
#define T_PLUS 3
#define T_MINUS 4
#define T_STAR 5
#define T_SLASH 6
#define T_LP 7
#define T_RP 8
#define T_EQ 9
#define T_NL 10
#define T_NAME 11
#define T_PERCENT 12
#define T_LT 13
#define T_GT 14
#define T_COMMA 15

int raw = ' ';

void advance_tok(void) {
  while (raw == ' ' || raw == '\t')
    raw = getchar();
  if (raw < 0) { lx.cur = T_EOF; return; }
  if (raw == '\n') { lx.cur = T_NL; raw = getchar(); return; }
  if (raw >= '0' && raw <= '9') {
    long v = 0;
    while (raw >= '0' && raw <= '9') {
      v = v * 10 + (raw - '0');
      raw = getchar();
    }
    lx.num_val = v;
    lx.cur = T_NUM;
    return;
  }
  if (raw >= 'a' && raw <= 'z') {
    int n = 0;
    while (raw >= 'a' && raw <= 'z' && n < NAME_MAX - 1) {
      lx.name[n] = (char)raw;
      n = n + 1;
      raw = getchar();
    }
    lx.name[n] = 0;
    if (n == 1) {
      lx.var_slot = lx.name[0] - 'a';
      lx.cur = T_VAR;
    } else {
      lx.cur = T_NAME;
    }
    return;
  }
  if (raw == '+') { lx.cur = T_PLUS; raw = getchar(); return; }
  if (raw == '-') { lx.cur = T_MINUS; raw = getchar(); return; }
  if (raw == '*') { lx.cur = T_STAR; raw = getchar(); return; }
  if (raw == '/') { lx.cur = T_SLASH; raw = getchar(); return; }
  if (raw == '%') { lx.cur = T_PERCENT; raw = getchar(); return; }
  if (raw == '<') { lx.cur = T_LT; raw = getchar(); return; }
  if (raw == '>') { lx.cur = T_GT; raw = getchar(); return; }
  if (raw == ',') { lx.cur = T_COMMA; raw = getchar(); return; }
  if (raw == '(') { lx.cur = T_LP; raw = getchar(); return; }
  if (raw == ')') { lx.cur = T_RP; raw = getchar(); return; }
  if (raw == '=') { lx.cur = T_EQ; raw = getchar(); return; }
  raw = getchar();
  advance_tok();
}

/* ---- parser ---- */

struct node_head *parse_expr(void);

struct node_head *parse_primary(void) {
  if (lx.cur == T_NUM) {
    long v = lx.num_val;
    advance_tok();
    return mk_num(v);
  }
  if (lx.cur == T_MINUS) {
    advance_tok();
    return mk_unary(T_MINUS, parse_primary());
  }
  if (lx.cur == T_NAME) {
    struct builtin *b = find_builtin(lx.name);
    advance_tok();
    if (b && lx.cur == T_LP) {
      struct node_head *a0 = 0;
      struct node_head *a1 = 0;
      advance_tok();
      if (lx.cur != T_RP) {
        a0 = parse_expr();
        if (lx.cur == T_COMMA) {
          advance_tok();
          a1 = parse_expr();
        }
      }
      if (lx.cur == T_RP)
        advance_tok();
      return mk_call(b->fn, b->arity, a0, a1);
    }
    return mk_num(0);
  }
  if (lx.cur == T_VAR) {
    int slot = lx.var_slot;
    advance_tok();
    if (lx.cur == T_EQ) {
      advance_tok();
      return mk_assign(slot, parse_expr());
    }
    return mk_var(slot);
  }
  if (lx.cur == T_LP) {
    struct node_head *e;
    advance_tok();
    e = parse_expr();
    if (lx.cur == T_RP)
      advance_tok();
    return e;
  }
  return mk_num(0);
}

struct node_head *parse_term(void) {
  struct node_head *l = parse_primary();
  while (lx.cur == T_STAR || lx.cur == T_SLASH || lx.cur == T_PERCENT) {
    int op = lx.cur;
    advance_tok();
    l = mk_binop(op, l, parse_primary());
  }
  return l;
}

struct node_head *parse_additive(void) {
  struct node_head *l = parse_term();
  while (lx.cur == T_PLUS || lx.cur == T_MINUS) {
    int op = lx.cur;
    advance_tok();
    l = mk_binop(op, l, parse_term());
  }
  return l;
}

struct node_head *parse_expr(void) {
  struct node_head *l = parse_additive();
  while (lx.cur == T_LT || lx.cur == T_GT) {
    int op = lx.cur;
    advance_tok();
    l = mk_binop(op, l, parse_additive());
  }
  return l;
}

/* ---- evaluator: dispatch on the shared header tag ---- */

long eval(struct node_head *n) {
  if (!n)
    return 0;
  if (n->tag == N_NUM) {
    struct num_node *num = (struct num_node *)n;
    return num->value;
  }
  if (n->tag == N_VAR) {
    struct var_node *v = (struct var_node *)n;
    return variables[v->slot];
  }
  if (n->tag == N_BINOP) {
    struct binop_node *b = (struct binop_node *)n;
    long l = eval(b->left);
    long r = eval(b->right);
    if (b->op == T_PLUS) return l + r;
    if (b->op == T_MINUS) return l - r;
    if (b->op == T_STAR) return l * r;
    if (b->op == T_LT) return l < r;
    if (b->op == T_GT) return l > r;
    if (b->op == T_PERCENT) return r != 0 ? l % r : 0;
    if (r != 0) return l / r;
    return 0;
  }
  if (n->tag == N_UNARY) {
    struct unary_node *u = (struct unary_node *)n;
    long v = eval(u->operand);
    return u->op == T_MINUS ? -v : v;
  }
  if (n->tag == N_CALL) {
    struct call_node *c = (struct call_node *)n;
    long a0 = eval(c->arg0);
    long a1 = c->arity > 1 ? eval(c->arg1) : 0;
    return (*c->fn)(a0, a1);
  }
  if (n->tag == N_ASSIGN) {
    struct assign_node *a = (struct assign_node *)n;
    long v = eval(a->value);
    variables[a->slot] = v;
    return v;
  }
  return 0;
}

int count_nodes(void) {
  int n = 0;
  struct node_head *h;
  for (h = arena.all; h; h = h->next_alloc)
    n = n + 1;
  return n;
}

int main(void) {
  arena.used = 0;
  arena.all = 0;
  advance_tok();
  while (lx.cur != T_EOF) {
    if (lx.cur == T_NL) {
      advance_tok();
      continue;
    }
    printf("%ld\n", eval(parse_expr()));
    while (lx.cur != T_NL && lx.cur != T_EOF)
      advance_tok();
  }
  printf("%d nodes, %lu pool bytes\n", count_nodes(), arena.used);
  return 0;
}
|}
