(** Corpus: word/line/byte counter in the style of [wc]. Structures used
    only at their declared types (no casting). *)

let name = "wc"

let has_struct_cast = false

let description = "word, line and byte counter with per-file totals"

let source =
  {|
/* wc: count lines, words, bytes. Struct-using, cast-free. */

int printf(char *fmt, ...);
int getchar(void);
char *strcpy(char *dst, char *src);
int strcmp(char *a, char *b);
unsigned long strlen(char *s);

struct counts {
  long lines;
  long words;
  long bytes;
  char label[32];
};

struct options {
  int count_lines;
  int count_words;
  int count_bytes;
  struct counts totals;
};

struct options opts;

static struct counts *current;

void counts_clear(struct counts *c, char *label) {
  c->lines = 0;
  c->words = 0;
  c->bytes = 0;
  strcpy(c->label, label);
}

void counts_add(struct counts *into, struct counts *from) {
  into->lines = into->lines + from->lines;
  into->words = into->words + from->words;
  into->bytes = into->bytes + from->bytes;
}

void counts_print(struct counts *c) {
  if (opts.count_lines) printf(" %7ld", c->lines);
  if (opts.count_words) printf(" %7ld", c->words);
  if (opts.count_bytes) printf(" %7ld", c->bytes);
  printf(" %s\n", c->label);
}

int is_space(int ch) {
  return ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r';
}

void count_stream(struct counts *c) {
  int ch;
  int in_word = 0;
  ch = getchar();
  while (ch >= 0) {
    c->bytes = c->bytes + 1;
    if (ch == '\n')
      c->lines = c->lines + 1;
    if (is_space(ch)) {
      in_word = 0;
    } else if (!in_word) {
      in_word = 1;
      c->words = c->words + 1;
    }
    ch = getchar();
  }
}

int parse_args(int argc, char **argv) {
  int i;
  int nfiles = 0;
  opts.count_lines = 0;
  opts.count_words = 0;
  opts.count_bytes = 0;
  for (i = 1; i < argc; i++) {
    char *arg = argv[i];
    if (arg[0] == '-') {
      int j;
      for (j = 1; arg[j]; j++) {
        if (arg[j] == 'l') opts.count_lines = 1;
        else if (arg[j] == 'w') opts.count_words = 1;
        else if (arg[j] == 'c') opts.count_bytes = 1;
      }
    } else {
      nfiles = nfiles + 1;
    }
  }
  if (!opts.count_lines && !opts.count_words && !opts.count_bytes) {
    opts.count_lines = 1;
    opts.count_words = 1;
    opts.count_bytes = 1;
  }
  return nfiles;
}

int main(int argc, char **argv) {
  struct counts file_counts;
  int nfiles;
  nfiles = parse_args(argc, argv);
  counts_clear(&opts.totals, "total");
  counts_clear(&file_counts, "stdin");
  current = &file_counts;
  count_stream(current);
  counts_add(&opts.totals, current);
  counts_print(&file_counts);
  if (nfiles > 1)
    counts_print(&opts.totals);
  return 0;
}
|}
