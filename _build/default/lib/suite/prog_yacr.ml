(** Corpus: simplified channel router (after the Austin benchmark
    "yacr2"). Uses casting: routing state is checkpointed into an untyped
    byte buffer and restored through structure-pointer casts. *)

let name = "yacr"

let has_struct_cast = true

let description =
  "VLSI channel router with cast-based checkpoint/restore of its state"

let source =
  {|
/* yacr: greedy left-edge channel routing with vertical-constraint checks. */

void *malloc(unsigned long n);
int printf(char *fmt, ...);

#define MAX_NETS 48
#define MAX_COLS 96
#define MAX_TRACKS 32

struct net {
  int id;
  int left;      /* leftmost column */
  int right;     /* rightmost column */
  int track;     /* assigned track, -1 if none */
  struct net *next_in_track;
};

struct track {
  int id;
  int rightmost;     /* rightmost occupied column */
  int load;
  struct net *nets;
};

struct channel {
  struct net nets[MAX_NETS];
  struct track tracks[MAX_TRACKS];
  int n_nets;
  int n_tracks;
  int top_pins[MAX_COLS];
  int bot_pins[MAX_COLS];
};

struct channel ch;

void channel_init(void) {
  int i;
  ch.n_nets = 0;
  ch.n_tracks = 0;
  for (i = 0; i < MAX_COLS; i++) {
    ch.top_pins[i] = 0;
    ch.bot_pins[i] = 0;
  }
  for (i = 0; i < MAX_TRACKS; i++) {
    struct track *t = &ch.tracks[i];
    t->id = i;
    t->rightmost = -1;
    t->load = 0;
    t->nets = 0;
  }
}

struct net *add_net(int left, int right) {
  struct net *n;
  if (ch.n_nets >= MAX_NETS)
    return 0;
  n = &ch.nets[ch.n_nets];
  n->id = ch.n_nets;
  n->left = left;
  n->right = right;
  n->track = -1;
  n->next_in_track = 0;
  ch.n_nets = ch.n_nets + 1;
  if (left >= 0 && left < MAX_COLS)
    ch.top_pins[left] = n->id + 1;
  if (right >= 0 && right < MAX_COLS)
    ch.bot_pins[right] = n->id + 1;
  return n;
}

void sort_nets_by_left(void) {
  int i, j;
  for (i = 1; i < ch.n_nets; i++) {
    struct net key = ch.nets[i];
    j = i - 1;
    while (j >= 0 && ch.nets[j].left > key.left) {
      ch.nets[j + 1] = ch.nets[j];
      j = j - 1;
    }
    ch.nets[j + 1] = key;
  }
}

struct track *first_free_track(struct net *n) {
  int i;
  for (i = 0; i < MAX_TRACKS; i++) {
    struct track *t = &ch.tracks[i];
    if (t->rightmost < n->left)
      return t;
  }
  return 0;
}

void assign_to_track(struct net *n, struct track *t) {
  n->track = t->id;
  n->next_in_track = t->nets;
  t->nets = n;
  t->rightmost = n->right;
  t->load = t->load + 1;
  if (t->id + 1 > ch.n_tracks)
    ch.n_tracks = t->id + 1;
}

int route_all(void) {
  int i;
  int failed = 0;
  sort_nets_by_left();
  for (i = 0; i < ch.n_nets; i++) {
    struct net *n = &ch.nets[i];
    struct track *t = first_free_track(n);
    if (t)
      assign_to_track(n, t);
    else
      failed = failed + 1;
  }
  return failed;
}

int check_no_overlap(void) {
  int i;
  for (i = 0; i < MAX_TRACKS; i++) {
    struct track *t = &ch.tracks[i];
    struct net *a;
    for (a = t->nets; a; a = a->next_in_track) {
      struct net *b;
      for (b = a->next_in_track; b; b = b->next_in_track) {
        if (!(a->right < b->left || b->right < a->left))
          return 0;
      }
    }
  }
  return 1;
}

/* checkpoint/restore: the whole routing state is saved into an untyped
   byte area and recovered through a structure-pointer cast */

struct checkpoint {
  char bytes[sizeof(struct channel)];
  int valid;
};

struct checkpoint saved;

void save_state(void) {
  struct channel *slot = (struct channel *)saved.bytes;
  *slot = ch;
  saved.valid = 1;
}

int restore_state(void) {
  if (!saved.valid)
    return 0;
  ch = *(struct channel *)saved.bytes;
  return 1;
}

int main(void) {
  int i, failed;
  channel_init();
  for (i = 0; i < 30; i++) {
    int left = (i * 17) % 60;
    int span = (i * 7) % 20 + 1;
    add_net(left, left + span);
  }
  save_state();
  failed = route_all();
  if (failed > 0 && restore_state()) {
    /* retry with a fresh track assignment after restoring pins */
    failed = route_all();
  }
  printf("%d nets on %d tracks, %d failed, overlap-free=%d\n",
         ch.n_nets, ch.n_tracks, failed, check_no_overlap());
  return 0;
}
|}
