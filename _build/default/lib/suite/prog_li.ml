(** Corpus: miniature lisp interpreter (after SPEC "130.li"). Cells are a
    fixed-size record reinterpreted per tag; environments are assoc lists
    of cells; a free list recycles cells via casts. *)

let name = "li"

let has_struct_cast = true

let description = "mini lisp: tagged cells, assoc environments, free list"

let source =
  {|
/* li: eval/apply over cons cells. A cell's payload is reinterpreted
   according to its tag by casting the cell pointer to a typed view. */

void *malloc(unsigned long n);
int printf(char *fmt, ...);
int strcmp(char *a, char *b);
char *strcpy(char *dst, char *src);

#define TAG_FREE 0
#define TAG_CONS 1
#define TAG_NUM 2
#define TAG_SYM 3
#define TAG_PRIM 4

/* the generic cell: two pointer-sized payload slots after the tag */
struct cell {
  int tag;
  void *slot0;
  void *slot1;
};

/* typed views, cast-compatible with struct cell */
struct cons_view {
  int tag;
  struct cell *car;
  struct cell *cdr;
};

struct num_view {
  int tag;
  long value;
  void *unused;
};

struct sym_view {
  int tag;
  char *pname;
  struct cell *binding;
};

struct prim_view {
  int tag;
  struct cell *(*fn)(struct cell *args);
  void *unused;
};

#define HEAP_CELLS 512

struct heap {
  struct cell cells[HEAP_CELLS];
  int next;
  struct cell *free_list;
  long allocated;
};

struct heap H;
struct cell *nil;
struct cell *global_env;

struct cell *cell_alloc(int tag) {
  struct cell *c;
  if (H.free_list) {
    c = H.free_list;
    H.free_list = (struct cell *)c->slot0;
  } else if (H.next < HEAP_CELLS) {
    c = &H.cells[H.next];
    H.next = H.next + 1;
  } else {
    return 0;
  }
  c->tag = tag;
  c->slot0 = 0;
  c->slot1 = 0;
  H.allocated = H.allocated + 1;
  return c;
}

void cell_free(struct cell *c) {
  c->tag = TAG_FREE;
  c->slot0 = (void *)H.free_list;
  H.free_list = c;
}

struct cell *mk_cons(struct cell *car, struct cell *cdr) {
  struct cons_view *v = (struct cons_view *)cell_alloc(TAG_CONS);
  v->car = car;
  v->cdr = cdr;
  return (struct cell *)v;
}

struct cell *mk_num(long n) {
  struct num_view *v = (struct num_view *)cell_alloc(TAG_NUM);
  v->value = n;
  return (struct cell *)v;
}

struct cell *mk_sym(char *name) {
  struct sym_view *v = (struct sym_view *)cell_alloc(TAG_SYM);
  v->pname = name;
  v->binding = 0;
  return (struct cell *)v;
}

struct cell *mk_prim(struct cell *(*fn)(struct cell *)) {
  struct prim_view *v = (struct prim_view *)cell_alloc(TAG_PRIM);
  v->fn = fn;
  return (struct cell *)v;
}

struct cell *car_of(struct cell *c) {
  if (c && c->tag == TAG_CONS)
    return ((struct cons_view *)c)->car;
  return nil;
}

struct cell *cdr_of(struct cell *c) {
  if (c && c->tag == TAG_CONS)
    return ((struct cons_view *)c)->cdr;
  return nil;
}

long num_of(struct cell *c) {
  if (c && c->tag == TAG_NUM)
    return ((struct num_view *)c)->value;
  return 0;
}

/* ---- environment: list of (sym . value) pairs ---- */

struct cell *env_bind(struct cell *env, struct cell *sym, struct cell *val) {
  return mk_cons(mk_cons(sym, val), env);
}

struct cell *env_lookup(struct cell *env, struct cell *sym) {
  struct cell *e;
  for (e = env; e && e->tag == TAG_CONS; e = cdr_of(e)) {
    struct cell *pair = car_of(e);
    if (car_of(pair) == sym)
      return cdr_of(pair);
  }
  return nil;
}

/* ---- primitives ---- */

struct cell *prim_add(struct cell *args) {
  long acc = 0;
  struct cell *a;
  for (a = args; a && a->tag == TAG_CONS; a = cdr_of(a))
    acc = acc + num_of(car_of(a));
  return mk_num(acc);
}

struct cell *prim_mul(struct cell *args) {
  long acc = 1;
  struct cell *a;
  for (a = args; a && a->tag == TAG_CONS; a = cdr_of(a))
    acc = acc * num_of(car_of(a));
  return mk_num(acc);
}

struct cell *prim_list(struct cell *args) {
  return args;
}

/* ---- reader: s-expression tokenizer and parser ---- */

int getchar(void);

#define SYM_POOL 32
#define SYM_LEN 16

struct sym_entry {
  char name[SYM_LEN];
  struct cell *sym;
  int used;
};

struct sym_table {
  struct sym_entry entries[SYM_POOL];
  int count;
};

struct sym_table symtab;

struct cell *intern_sym(char *name) {
  int i;
  for (i = 0; i < symtab.count; i++) {
    if (strcmp(symtab.entries[i].name, name) == 0)
      return symtab.entries[i].sym;
  }
  if (symtab.count >= SYM_POOL)
    return 0;
  {
    struct sym_entry *e = &symtab.entries[symtab.count];
    strcpy(e->name, name);
    e->sym = mk_sym(e->name);
    e->used = 1;
    symtab.count = symtab.count + 1;
    return e->sym;
  }
}

struct reader {
  int cur;
  int eof;
  long nodes_read;
};

struct reader rd;

void rd_advance(void) {
  rd.cur = getchar();
  if (rd.cur < 0)
    rd.eof = 1;
}

void rd_skip_space(void) {
  while (!rd.eof && (rd.cur == ' ' || rd.cur == '\n' || rd.cur == '\t'))
    rd_advance();
}

struct cell *read_expr(void);

struct cell *read_list(void) {
  struct cell *head = nil;
  struct cell *tail = nil;
  rd_advance(); /* past '(' */
  for (;;) {
    rd_skip_space();
    if (rd.eof)
      return head;
    if (rd.cur == ')') {
      rd_advance();
      return head;
    }
    {
      struct cell *item = read_expr();
      struct cell *link = mk_cons(item, nil);
      if (tail == nil || !tail) {
        head = link;
      } else {
        ((struct cons_view *)tail)->cdr = link;
      }
      tail = link;
    }
  }
}

struct cell *read_expr(void) {
  rd_skip_space();
  rd.nodes_read = rd.nodes_read + 1;
  if (rd.eof)
    return nil;
  if (rd.cur == '(')
    return read_list();
  if (rd.cur >= '0' && rd.cur <= '9') {
    long v = 0;
    while (!rd.eof && rd.cur >= '0' && rd.cur <= '9') {
      v = v * 10 + (rd.cur - '0');
      rd_advance();
    }
    return mk_num(v);
  }
  {
    char buf[SYM_LEN];
    int n = 0;
    while (!rd.eof && rd.cur != ' ' && rd.cur != ')' && rd.cur != '('
           && rd.cur != '\n' && n < SYM_LEN - 1) {
      buf[n] = (char)rd.cur;
      n = n + 1;
      rd_advance();
    }
    buf[n] = 0;
    return intern_sym(buf);
  }
}

/* ---- mark/sweep collector over the fixed heap ---- */

#define TAG_MARK_BIT 16

struct gc_stats {
  long collections;
  long marked;
  long swept;
};

struct gc_stats gc;

void mark_cell(struct cell *c) {
  if (!c)
    return;
  if (c->tag & TAG_MARK_BIT)
    return;
  gc.marked = gc.marked + 1;
  if (c->tag == TAG_CONS) {
    struct cons_view *v = (struct cons_view *)c;
    c->tag = c->tag | TAG_MARK_BIT;
    mark_cell(v->car);
    mark_cell(v->cdr);
    return;
  }
  if (c->tag == TAG_SYM) {
    struct sym_view *v = (struct sym_view *)c;
    c->tag = c->tag | TAG_MARK_BIT;
    mark_cell(v->binding);
    return;
  }
  c->tag = c->tag | TAG_MARK_BIT;
}

void collect(struct cell *extra_root) {
  int i;
  gc.collections = gc.collections + 1;
  mark_cell(global_env);
  mark_cell(extra_root);
  for (i = 0; i < symtab.count; i++)
    mark_cell(symtab.entries[i].sym);
  for (i = 0; i < H.next; i++) {
    struct cell *c = &H.cells[i];
    if (c->tag & TAG_MARK_BIT) {
      c->tag = c->tag & ~TAG_MARK_BIT;
    } else if (c->tag != TAG_FREE) {
      cell_free(c);
      gc.swept = gc.swept + 1;
    }
  }
}

/* ---- eval/apply ---- */

struct cell *eval(struct cell *expr, struct cell *env);

struct cell *eval_list(struct cell *exprs, struct cell *env) {
  if (!exprs || exprs->tag != TAG_CONS)
    return nil;
  return mk_cons(eval(car_of(exprs), env), eval_list(cdr_of(exprs), env));
}

struct cell *apply(struct cell *fn, struct cell *args) {
  if (fn && fn->tag == TAG_PRIM) {
    struct prim_view *p = (struct prim_view *)fn;
    return (*p->fn)(args);
  }
  return nil;
}

struct cell *eval(struct cell *expr, struct cell *env) {
  if (!expr)
    return nil;
  if (expr->tag == TAG_NUM)
    return expr;
  if (expr->tag == TAG_SYM)
    return env_lookup(env, expr);
  if (expr->tag == TAG_CONS) {
    struct cell *fn = eval(car_of(expr), env);
    struct cell *args = eval_list(cdr_of(expr), env);
    return apply(fn, args);
  }
  return nil;
}

void print_cell(struct cell *c) {
  if (!c || c == nil) {
    printf("()");
    return;
  }
  if (c->tag == TAG_NUM) {
    printf("%ld", ((struct num_view *)c)->value);
    return;
  }
  if (c->tag == TAG_SYM) {
    printf("%s", ((struct sym_view *)c)->pname);
    return;
  }
  if (c->tag == TAG_CONS) {
    printf("(");
    print_cell(car_of(c));
    printf(" . ");
    print_cell(cdr_of(c));
    printf(")");
    return;
  }
  printf("#<prim>");
}

/* ---- additional primitives ---- */

struct cell *prim_sub(struct cell *args) {
  long acc;
  struct cell *a = args;
  if (!a || a->tag != TAG_CONS)
    return mk_num(0);
  acc = num_of(car_of(a));
  for (a = cdr_of(a); a && a->tag == TAG_CONS; a = cdr_of(a))
    acc = acc - num_of(car_of(a));
  return mk_num(acc);
}

struct cell *prim_car(struct cell *args) { return car_of(car_of(args)); }

struct cell *prim_cdr(struct cell *args) { return cdr_of(car_of(args)); }

struct cell *prim_cons(struct cell *args) {
  return mk_cons(car_of(args), car_of(cdr_of(args)));
}

struct cell *prim_eq(struct cell *args) {
  struct cell *a = car_of(args);
  struct cell *b = car_of(cdr_of(args));
  if (a == b)
    return mk_num(1);
  if (a && b && a->tag == TAG_NUM && b->tag == TAG_NUM
      && num_of(a) == num_of(b))
    return mk_num(1);
  return nil;
}

void bind_prim(char *name, struct cell *(*fn)(struct cell *)) {
  global_env = env_bind(global_env, intern_sym(name), mk_prim(fn));
}

int main(void) {
  struct cell *expr, *result;
  int round;
  H.next = 0;
  H.free_list = 0;
  H.allocated = 0;
  symtab.count = 0;
  rd.eof = 0;
  rd.nodes_read = 0;
  gc.collections = 0;
  gc.marked = 0;
  gc.swept = 0;
  nil = cell_alloc(TAG_CONS);
  global_env = nil;
  bind_prim("+", prim_add);
  bind_prim("*", prim_mul);
  bind_prim("-", prim_sub);
  bind_prim("list", prim_list);
  bind_prim("car", prim_car);
  bind_prim("cdr", prim_cdr);
  bind_prim("cons", prim_cons);
  bind_prim("eq", prim_eq);
  /* (+ 1 (* 2 3) 4), built by hand like the paper-era drivers */
  expr = mk_cons(intern_sym("+"),
           mk_cons(mk_num(1),
             mk_cons(mk_cons(intern_sym("*"),
                       mk_cons(mk_num(2), mk_cons(mk_num(3), nil))),
               mk_cons(mk_num(4), nil))));
  result = eval(expr, global_env);
  print_cell(result);
  printf("\n");
  /* then a read-eval-print loop over stdin with periodic collection */
  rd_advance();
  for (round = 0; round < 64; round++) {
    rd_skip_space();
    if (rd.eof)
      break;
    expr = read_expr();
    result = eval(expr, global_env);
    print_cell(result);
    printf("\n");
    if ((round & 3) == 3)
      collect(result);
  }
  collect(nil);
  printf("%ld cells allocated, %ld read; gc: %ld runs, %ld marked, %ld swept\n",
         H.allocated, rd.nodes_read, gc.collections, gc.marked, gc.swept);
  return 0;
}
|}
