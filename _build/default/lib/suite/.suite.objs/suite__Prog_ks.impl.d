lib/suite/prog_ks.ml:
