lib/suite/prog_less.ml:
