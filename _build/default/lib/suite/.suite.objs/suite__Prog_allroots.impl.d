lib/suite/prog_allroots.ml:
