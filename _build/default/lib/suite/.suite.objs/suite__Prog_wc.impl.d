lib/suite/prog_wc.ml:
