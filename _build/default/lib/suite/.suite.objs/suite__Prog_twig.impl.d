lib/suite/prog_twig.ml:
