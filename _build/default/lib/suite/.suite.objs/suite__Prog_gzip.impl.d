lib/suite/prog_gzip.ml:
