lib/suite/prog_tbl.ml:
