lib/suite/prog_anagram.ml:
