lib/suite/prog_espresso.ml:
