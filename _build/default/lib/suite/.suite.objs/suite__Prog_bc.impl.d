lib/suite/prog_bc.ml:
