lib/suite/prog_sim.ml:
