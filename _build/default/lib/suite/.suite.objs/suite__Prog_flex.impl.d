lib/suite/prog_flex.ml:
