lib/suite/prog_ul.ml:
