lib/suite/prog_compress.ml:
