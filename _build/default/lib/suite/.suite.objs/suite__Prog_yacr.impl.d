lib/suite/prog_yacr.ml:
