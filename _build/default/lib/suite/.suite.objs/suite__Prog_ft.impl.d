lib/suite/prog_ft.ml:
