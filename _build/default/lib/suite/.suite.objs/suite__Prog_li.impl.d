lib/suite/prog_li.ml:
