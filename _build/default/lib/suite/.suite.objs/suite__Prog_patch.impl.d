lib/suite/prog_patch.ml:
