lib/suite/prog_stanford.ml:
