lib/suite/prog_sc.ml:
