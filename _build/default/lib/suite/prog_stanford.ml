(** Corpus: a bundle of the classic Stanford kernels (queens, towers,
    intmm, bubble) sharing a results structure. Cast-free. *)

let name = "stanford"

let has_struct_cast = false

let description = "Stanford kernel bundle: queens, towers, intmm, bubble"

let source =
  {|
/* stanford: four small kernels recording results into shared structs. */

int printf(char *fmt, ...);

#define N_QUEENS 8
#define N_DISCS 10
#define MM 8
#define SORT_N 64

struct bench_result {
  char *kernel;
  long checksum;
  int ok;
};

struct bench_suite {
  struct bench_result results[8];
  int n_results;
};

struct bench_suite suite;

void record(char *kernel, long checksum, int ok) {
  struct bench_result *r = &suite.results[suite.n_results];
  r->kernel = kernel;
  r->checksum = checksum;
  r->ok = ok;
  suite.n_results = suite.n_results + 1;
}

/* ---- queens ---- */

struct queens_state {
  int col[N_QUEENS];
  int used_col[N_QUEENS];
  int used_d1[2 * N_QUEENS];
  int used_d2[2 * N_QUEENS];
  long solutions;
};

struct queens_state Q;

void queens_try(int row) {
  int c;
  if (row == N_QUEENS) {
    Q.solutions = Q.solutions + 1;
    return;
  }
  for (c = 0; c < N_QUEENS; c++) {
    if (Q.used_col[c] || Q.used_d1[row + c] || Q.used_d2[row - c + N_QUEENS])
      continue;
    Q.col[row] = c;
    Q.used_col[c] = 1;
    Q.used_d1[row + c] = 1;
    Q.used_d2[row - c + N_QUEENS] = 1;
    queens_try(row + 1);
    Q.used_col[c] = 0;
    Q.used_d1[row + c] = 0;
    Q.used_d2[row - c + N_QUEENS] = 0;
  }
}

void run_queens(void) {
  int i;
  Q.solutions = 0;
  for (i = 0; i < N_QUEENS; i++)
    Q.used_col[i] = 0;
  for (i = 0; i < 2 * N_QUEENS; i++) {
    Q.used_d1[i] = 0;
    Q.used_d2[i] = 0;
  }
  queens_try(0);
  record("queens", Q.solutions, Q.solutions == 92);
}

/* ---- towers ---- */

struct peg {
  int discs[N_DISCS];
  int top;
};

struct towers_state {
  struct peg pegs[3];
  long moves;
};

struct towers_state T;

void peg_push(struct peg *p, int d) {
  p->discs[p->top] = d;
  p->top = p->top + 1;
}

int peg_pop(struct peg *p) {
  p->top = p->top - 1;
  return p->discs[p->top];
}

void move_discs(int n, int from, int to, int via) {
  if (n == 0)
    return;
  move_discs(n - 1, from, via, to);
  peg_push(&T.pegs[to], peg_pop(&T.pegs[from]));
  T.moves = T.moves + 1;
  move_discs(n - 1, via, to, from);
}

void run_towers(void) {
  int i;
  for (i = 0; i < 3; i++)
    T.pegs[i].top = 0;
  for (i = N_DISCS; i > 0; i--)
    peg_push(&T.pegs[0], i);
  T.moves = 0;
  move_discs(N_DISCS, 0, 2, 1);
  record("towers", T.moves, T.moves == 1023);
}

/* ---- integer matrix multiply ---- */

struct matrices {
  int a[MM][MM];
  int b[MM][MM];
  int c[MM][MM];
};

struct matrices M;

void run_intmm(void) {
  int i, j, k;
  long sum = 0;
  for (i = 0; i < MM; i++)
    for (j = 0; j < MM; j++) {
      M.a[i][j] = i + j;
      M.b[i][j] = i - j;
    }
  for (i = 0; i < MM; i++)
    for (j = 0; j < MM; j++) {
      int acc = 0;
      for (k = 0; k < MM; k++)
        acc = acc + M.a[i][k] * M.b[k][j];
      M.c[i][j] = acc;
    }
  for (i = 0; i < MM; i++)
    sum = sum + M.c[i][i];
  record("intmm", sum, 1);
}

/* ---- bubble sort ---- */

struct sort_buf {
  int data[SORT_N];
  long swaps;
};

struct sort_buf S;

void run_bubble(void) {
  int i, j;
  for (i = 0; i < SORT_N; i++)
    S.data[i] = (i * 37) % 101;
  S.swaps = 0;
  for (i = 0; i < SORT_N - 1; i++)
    for (j = 0; j + 1 < SORT_N - i; j++)
      if (S.data[j] > S.data[j + 1]) {
        int t = S.data[j];
        S.data[j] = S.data[j + 1];
        S.data[j + 1] = t;
        S.swaps = S.swaps + 1;
      }
  for (i = 1; i < SORT_N; i++)
    if (S.data[i - 1] > S.data[i])
      record("bubble", S.swaps, 0);
  record("bubble", S.swaps, 1);
}

int main(void) {
  int i;
  suite.n_results = 0;
  run_queens();
  run_towers();
  run_intmm();
  run_bubble();
  for (i = 0; i < suite.n_results; i++) {
    struct bench_result *r = &suite.results[i];
    printf("%s: checksum %ld %s\n", r->kernel, r->checksum,
           r->ok ? "ok" : "FAILED");
  }
  return 0;
}
|}
