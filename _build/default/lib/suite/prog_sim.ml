(** Corpus: local sequence alignment (after the Landi benchmark "sim").
    All working storage is carved from a single char arena and cast to the
    needed types — the arena-allocator idiom. *)

let name = "sim"

let has_struct_cast = true

let description = "sequence alignment with an arena allocator and cast carving"

let source =
  {|
/* sim: Smith-Waterman-ish scoring with traceback. Matrices, rows, and
   traceback records are all carved out of one byte arena via casts. */

int printf(char *fmt, ...);
void exit(int code);
unsigned long strlen(char *s);

#define ARENA_BYTES 32768
#define MAX_SEQ 64

struct arena {
  char bytes[ARENA_BYTES];
  unsigned long used;
  int n_allocs;
};

struct arena A;

char *arena_alloc(unsigned long n) {
  char *p;
  n = (n + 7) & ~7UL;
  if (A.used + n > ARENA_BYTES)
    exit(2);
  p = &A.bytes[A.used];
  A.used = A.used + n;
  A.n_allocs = A.n_allocs + 1;
  return p;
}

struct score_row {
  int cells[MAX_SEQ + 1];
};

struct trace_step {
  int i;
  int j;
  int move;           /* 0 diag, 1 up, 2 left */
  struct trace_step *prev;
};

struct alignment {
  char *seq_a;
  char *seq_b;
  int len_a;
  int len_b;
  struct score_row *rows;     /* (len_a+1) rows, arena-carved */
  struct trace_step *best_tail;
  int best_score;
  int best_i;
  int best_j;
};

struct alignment al;

int score_pair(int x, int y) {
  if (x == y)
    return 2;
  return -1;
}

int max2(int a, int b) { return a > b ? a : b; }

void compute_matrix(void) {
  int i, j;
  al.rows = (struct score_row *)arena_alloc(
      (unsigned long)(al.len_a + 1) * sizeof(struct score_row));
  for (j = 0; j <= al.len_b; j++)
    al.rows[0].cells[j] = 0;
  for (i = 1; i <= al.len_a; i++) {
    struct score_row *row = &al.rows[i];
    struct score_row *above = &al.rows[i - 1];
    row->cells[0] = 0;
    for (j = 1; j <= al.len_b; j++) {
      int diag = above->cells[j - 1]
                 + score_pair(al.seq_a[i - 1], al.seq_b[j - 1]);
      int up = above->cells[j] - 1;
      int left = row->cells[j - 1] - 1;
      int best = max2(0, max2(diag, max2(up, left)));
      row->cells[j] = best;
      if (best > al.best_score) {
        al.best_score = best;
        al.best_i = i;
        al.best_j = j;
      }
    }
  }
}

struct trace_step *push_step(struct trace_step *prev, int i, int j, int move) {
  struct trace_step *s =
      (struct trace_step *)arena_alloc(sizeof(struct trace_step));
  s->i = i;
  s->j = j;
  s->move = move;
  s->prev = prev;
  return s;
}

void traceback(void) {
  int i = al.best_i;
  int j = al.best_j;
  al.best_tail = 0;
  while (i > 0 && j > 0 && al.rows[i].cells[j] > 0) {
    int cur = al.rows[i].cells[j];
    int diag = al.rows[i - 1].cells[j - 1];
    int up = al.rows[i - 1].cells[j];
    if (cur == diag + score_pair(al.seq_a[i - 1], al.seq_b[j - 1])) {
      al.best_tail = push_step(al.best_tail, i, j, 0);
      i = i - 1;
      j = j - 1;
    } else if (cur == up - 1) {
      al.best_tail = push_step(al.best_tail, i, j, 1);
      i = i - 1;
    } else {
      al.best_tail = push_step(al.best_tail, i, j, 2);
      j = j - 1;
    }
  }
}

int print_alignment(void) {
  struct trace_step *s;
  int steps = 0;
  for (s = al.best_tail; s; s = s->prev) {
    char ca = s->move != 2 ? al.seq_a[s->i - 1] : '-';
    char cb = s->move != 1 ? al.seq_b[s->j - 1] : '-';
    printf("%c/%c ", ca, cb);
    steps = steps + 1;
  }
  printf("\n");
  return steps;
}

int main(void) {
  int steps;
  A.used = 0;
  A.n_allocs = 0;
  al.seq_a = "gattacaggattacca";
  al.seq_b = "gtacagatacc";
  al.len_a = (int)strlen(al.seq_a);
  al.len_b = (int)strlen(al.seq_b);
  al.best_score = 0;
  compute_matrix();
  traceback();
  steps = print_alignment();
  printf("score %d over %d steps; arena %lu bytes in %d allocs\n",
         al.best_score, steps, A.used, A.n_allocs);
  return 0;
}
|}
