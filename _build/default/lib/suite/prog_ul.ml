(** Corpus: terminal underline filter (after BSD "ul"). Cast-free; small
    state machine over structs of mode flags. *)

let name = "ul"

let has_struct_cast = false

let description = "underline/overstrike terminal filter"

let source =
  {|
/* ul: interpret backspace overstrikes into terminal modes. */

int getchar(void);
int putchar(int c);
int printf(char *fmt, ...);

#define LINE_MAX 512

#define M_NONE 0
#define M_UNDERLINE 1
#define M_BOLD 2

struct colchar {
  int ch;
  int mode;
};

struct line_buf {
  struct colchar cols[LINE_MAX];
  int width;
  int touched;
};

struct modes {
  int current;
  int pending;
  long switches;
};

struct line_buf line;
struct modes term;

void line_clear(struct line_buf *lb) {
  int i;
  for (i = 0; i < LINE_MAX; i++) {
    lb->cols[i].ch = ' ';
    lb->cols[i].mode = M_NONE;
  }
  lb->width = 0;
  lb->touched = 0;
}

void set_mode(struct modes *m, int mode) {
  if (m->current != mode) {
    m->pending = mode;
    m->switches = m->switches + 1;
  }
}

void flush_mode(struct modes *m) {
  if (m->pending != m->current) {
    if (m->pending & M_UNDERLINE) putchar(27);
    if (m->pending & M_BOLD) putchar(27);
    m->current = m->pending;
  }
}

void put_col(struct line_buf *lb, int pos, int ch, int mode) {
  struct colchar *cc;
  if (pos < 0 || pos >= LINE_MAX)
    return;
  cc = &lb->cols[pos];
  if (cc->ch == '_' && ch != '_') {
    cc->ch = ch;
    cc->mode = cc->mode | M_UNDERLINE;
  } else if (ch == '_' && cc->ch != ' ') {
    cc->mode = cc->mode | M_UNDERLINE;
  } else if (cc->ch == ch) {
    cc->mode = cc->mode | M_BOLD;
  } else {
    cc->ch = ch;
    cc->mode = mode;
  }
  if (pos + 1 > lb->width)
    lb->width = pos + 1;
  lb->touched = 1;
}

void line_output(struct line_buf *lb, struct modes *m) {
  int i;
  for (i = 0; i < lb->width; i++) {
    struct colchar *cc = &lb->cols[i];
    set_mode(m, cc->mode);
    flush_mode(m);
    putchar(cc->ch);
  }
  set_mode(m, M_NONE);
  flush_mode(m);
  putchar('\n');
}

int main(void) {
  int c;
  int col = 0;
  line_clear(&line);
  term.current = M_NONE;
  term.pending = M_NONE;
  term.switches = 0;
  c = getchar();
  while (c >= 0) {
    if (c == '\n') {
      line_output(&line, &term);
      line_clear(&line);
      col = 0;
    } else if (c == '\b') {
      if (col > 0)
        col = col - 1;
    } else if (c == '\t') {
      col = (col + 8) / 8 * 8;
    } else {
      put_col(&line, col, c, term.current);
      col = col + 1;
    }
    c = getchar();
  }
  if (line.touched)
    line_output(&line, &term);
  printf("mode switches: %ld\n", term.switches);
  return 0;
}
|}
