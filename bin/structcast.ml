(** [structcast] — command-line driver for the pointer-analysis framework.

    - [structcast analyze FILE.c] — run one strategy and print points-to
      sets, normalized statements, metrics, or the call graph.
    - [structcast compare FILE.c] — run all four instances side by side.
    - [structcast corpus] — list the embedded benchmark corpus; a corpus
      program's name can be used instead of a file everywhere.
    - [structcast batch SPEC…] — run many jobs through the crash-contained
      supervisor (forked workers, retry/backoff, crash-safe journal).
    - [structcast serve] — request/response loop over stdin/stdout backed
      by the same worker pool.
    - [structcast reanalyze BASE EDITED] — solve BASE, then answer for
      EDITED from the warm fixpoint (diff + warm start / retraction).
    - [structcast watch FILE] — keep a solved fixpoint live and re-answer
      incrementally each time a line arrives on stdin. *)

open Cfront
open Norm
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Inputs                                                              *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_source (spec : string) : string * string =
  (* a corpus program name, or a path to a C file *)
  match Suite.find spec with
  | Some p -> (p.Suite.name, p.Suite.source)
  | None ->
      if Sys.file_exists spec then (Filename.basename spec, read_file spec)
      else
        failwith
          (Printf.sprintf
             "%s: not a file and not a corpus program (try 'structcast corpus')"
             spec)

let resolve_includes path rel =
  (* #include "x.h" resolves relative to the input file's directory *)
  let dir = Filename.dirname path in
  let candidate = Filename.concat dir rel in
  if Sys.file_exists candidate then Some (read_file candidate) else None

let layout_of_name = function
  | "ilp32" -> Layout.ilp32
  | "lp64" -> Layout.lp64
  | "word16" -> Layout.word16
  | s -> failwith (Printf.sprintf "unknown layout %s (ilp32|lp64|word16)" s)

(* [domains = 0] means auto: whatever the runtime recommends for this
   machine. Only delta-par consumes the flag. *)
let engine_of_name ~domains : string -> Core.Solver.engine = function
  | "delta" -> `Delta
  | "delta-nocycle" -> `Delta_nocycle
  | "naive" -> `Naive
  | "delta-par" ->
      let n =
        if domains > 0 then domains else Domain.recommended_domain_count ()
      in
      `Delta_par (max 1 n)
  | "summary" -> `Summary
  | s ->
      failwith
        (Printf.sprintf
           "unknown engine %s (delta|delta-par|delta-nocycle|naive|summary)"
           s)

(* --workers auto sizes the pool to the runtime's recommended domain
   count, the same signal delta-par's auto width uses. *)
let workers_of_flag = function
  | "auto" -> max 1 (Domain.recommended_domain_count ())
  | s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> n
      | _ ->
          failwith
            (Printf.sprintf "bad --workers %s (auto or a positive integer)" s))

let strategy_of_name name : (module Core.Strategy.S) =
  match Core.Analysis.strategy_of_id name with
  | Some s -> s
  | None ->
      failwith
        (Printf.sprintf "unknown strategy %s (have: %s)" name
           (String.concat ", " Core.Analysis.strategy_ids))

let compile_spec ~layout ~diags spec : string * Nast.program =
  let name, source = load_source spec in
  let resolve = resolve_includes spec in
  (name, Lower.compile ~layout ~resolve ~diags ~file:name source)

(* ------------------------------------------------------------------ *)
(* Budgets and exit codes                                              *)
(* ------------------------------------------------------------------ *)

(* Exit codes, in decreasing precedence:
     3  internal error (unexpected exception escaped — trust nothing)
     2  budget-degraded (the answer is sound but coarser than asked for)
     1  diagnostics reported (front-end errors; analysis of the rest ran)
     0  clean
   When a run has several of these, the highest-precedence code wins:
   an internal error makes degradation moot, and degradation wins over
   diagnostics because a truncated answer is the more important fact
   about the run. Tested in test/test_cli.ml. *)

let limits_of_flags max_steps timeout_ms max_cells_per_object max_total_cells
    : Core.Budget.limits =
  let opt n = if n <= 0 then None else Some n in
  {
    Core.Budget.max_steps = opt max_steps;
    timeout_s =
      (if timeout_ms <= 0 then None
       else Some (float_of_int timeout_ms /. 1000.));
    max_cells_per_object = opt max_cells_per_object;
    max_total_cells = opt max_total_cells;
  }

let report_diags (d : Diag.ctx) =
  List.iter
    (fun (p : Diag.payload) -> Fmt.epr "%a@." Diag.pp_payload p)
    (Diag.diagnostics d)

(* One line on stderr summarizing what precision was given up. *)
let report_degradation (events : Core.Budget.event list) =
  match events with
  | [] -> ()
  | e0 :: _ ->
      let collapsed =
        List.length (List.filter (fun e -> e.Core.Budget.obj <> None) events)
      in
      let what =
        if collapsed = 0 then "all objects treated as collapsed"
        else Printf.sprintf "%d object%s collapsed" collapsed
               (if collapsed = 1 then "" else "s")
      in
      Fmt.epr "budget: precision degraded — %s (first trip: %a at step %d, \
               %.2fs)@."
        what Core.Budget.pp_reason e0.Core.Budget.reason
        e0.Core.Budget.at_step e0.Core.Budget.at_time

let exit_code ~diags ~degraded =
  if degraded then 2 else if Diag.has_errors diags then 1 else 0

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)
(* ------------------------------------------------------------------ *)

let print_points_to (r : Core.Analysis.result) ~only_var =
  let module S =
    (val r.Core.Analysis.solver.Core.Solver.strategy : Core.Strategy.S)
  in
  let solver = r.Core.Analysis.solver in
  let entries =
    Core.Graph.fold_sources solver.Core.Solver.graph
      (fun c s acc -> (c, s) :: acc)
      []
    |> List.sort (fun (a, _) (b, _) -> Core.Cell.compare a b)
  in
  List.iter
    (fun ((c : Core.Cell.t), targets) ->
      let name = Cvar.qualified_name c.Core.Cell.base in
      let keep =
        match only_var with
        | Some v -> name = v || c.Core.Cell.base.Cvar.vname = v
        | None ->
            (* hide compiler temporaries by default *)
            not
              (String.length c.Core.Cell.base.Cvar.vname > 2
              && String.sub c.Core.Cell.base.Cvar.vname 0 2 = "$t")
      in
      if keep && not (Core.Cell.Set.is_empty targets) then
        Fmt.pr "%a -> {%a}@." Core.Cell.pp c
          (Fmt.list ~sep:(Fmt.any ", ") Core.Cell.pp)
          (Core.Cell.Set.elements targets))
    entries

let print_metrics name (r : Core.Analysis.result) =
  let m = r.Core.Analysis.metrics in
  let f = m.Core.Metrics.figures3 in
  Fmt.pr "program:              %s@." name;
  Fmt.pr "strategy:             %s@." m.Core.Metrics.strategy_name;
  Fmt.pr "deref sites:          %d@." m.Core.Metrics.deref_sites;
  Fmt.pr "avg deref pts size:   %.2f@." m.Core.Metrics.avg_deref_size;
  Fmt.pr "max deref pts size:   %d@." m.Core.Metrics.max_deref_size;
  Fmt.pr "points-to edges:      %d@." m.Core.Metrics.total_edges;
  Fmt.pr "lookup calls:         %d (%.1f%% struct, %.1f%% of those mismatch)@."
    m.Core.Metrics.lookup_calls f.Core.Actx.pct_lookup_struct
    f.Core.Actx.pct_lookup_mismatch;
  Fmt.pr "resolve calls:        %d (%.1f%% struct, %.1f%% of those mismatch)@."
    m.Core.Metrics.resolve_calls f.Core.Actx.pct_resolve_struct
    f.Core.Actx.pct_resolve_mismatch;
  Fmt.pr "solver engine:        %s@." m.Core.Metrics.engine;
  Fmt.pr "solver visits:        %d@." m.Core.Metrics.solver_visits;
  Fmt.pr "facts consumed:       %d (delta %d of %d full; %d copy edges)@."
    m.Core.Metrics.facts_consumed m.Core.Metrics.delta_facts
    m.Core.Metrics.full_facts m.Core.Metrics.copy_edges;
  Fmt.pr "cycle elimination:    %d cycles, %d cells unified, %d wasted props@."
    m.Core.Metrics.cycles_found m.Core.Metrics.cells_unified
    m.Core.Metrics.wasted_propagations;
  if m.Core.Metrics.par_domains > 0 then
    Fmt.pr "parallel solve:       %d domains, %d frontier rounds, %d steals@."
      m.Core.Metrics.par_domains m.Core.Metrics.par_frontier_rounds
      m.Core.Metrics.par_steals;
  if m.Core.Metrics.summary_sccs > 0 then begin
    Fmt.pr "summary schedule:     %d sccs, %d rounds, %d instantiations@."
      m.Core.Metrics.summary_sccs m.Core.Metrics.summary_scc_rounds
      m.Core.Metrics.summary_instantiations;
    Fmt.pr "summaries:            %d cache hits, %d recomputed@."
      m.Core.Metrics.summary_hits m.Core.Metrics.summary_recomputed
  end;
  Fmt.pr "analysis time:        %.4f s@." r.Core.Analysis.time_s;
  (* incremental counters exist only after a warm re-analysis; a plain
     analyze run keeps them at zero and prints nothing extra *)
  if
    m.Core.Metrics.incr_stmts_added + m.Core.Metrics.incr_stmts_removed
    + m.Core.Metrics.incr_facts_retracted + m.Core.Metrics.incr_warm_visits
    > 0
  then begin
    Fmt.pr "incremental edit:     +%d/-%d statements@."
      m.Core.Metrics.incr_stmts_added m.Core.Metrics.incr_stmts_removed;
    Fmt.pr "facts retracted:      %d@." m.Core.Metrics.incr_facts_retracted;
    Fmt.pr "statements replayed:  %d@." m.Core.Metrics.incr_stmts_replayed;
    Fmt.pr "warm visits:          %d (vs %d for the whole fixpoint)@."
      m.Core.Metrics.incr_warm_visits m.Core.Metrics.solver_visits
  end;
  if m.Core.Metrics.unknown_externs <> [] then
    Fmt.pr "unknown externs:      %s@."
      (String.concat ", " m.Core.Metrics.unknown_externs)

let print_callgraph (r : Core.Analysis.result) =
  let q = Clients.Queries.of_result r in
  List.iter
    (fun (fname, callees) ->
      if callees = [] then Fmt.pr "%s -> (none)@." fname
      else
        Fmt.pr "%s -> %a@." fname
          (Fmt.list ~sep:(Fmt.any ", ") Clients.Queries.pp_callee)
          callees)
    (Clients.Queries.call_graph q)

let print_modref (r : Core.Analysis.result) =
  let q = Clients.Queries.of_result r in
  let prog = Clients.Queries.prog q in
  List.iter
    (fun (f : Nast.func) ->
      Fmt.pr "%s:@." f.Nast.fname;
      Fmt.pr "  MOD  = {%s}@."
        (String.concat ", "
           (Clients.Queries.cell_set_to_strings (Clients.Queries.mod_set q f)));
      Fmt.pr "  REF  = {%s}@."
        (String.concat ", "
           (Clients.Queries.cell_set_to_strings (Clients.Queries.ref_set q f)));
      Fmt.pr "  MOD* = {%s}@."
        (String.concat ", "
           (Clients.Queries.cell_set_to_strings
              (Clients.Queries.mod_set_transitive q f.Nast.fname))))
    prog.Nast.pfuncs

(* Graphviz exports: pipe into `dot -Tsvg` *)
let print_dot (r : Core.Analysis.result) =
  let solver = r.Core.Analysis.solver in
  Fmt.pr "digraph points_to {@.  rankdir=LR;@.  node [shape=box];@.";
  Core.Graph.iter_edges solver.Core.Solver.graph (fun c w ->
      let skip (cell : Core.Cell.t) =
        String.length cell.Core.Cell.base.Cvar.vname > 2
        && String.sub cell.Core.Cell.base.Cvar.vname 0 2 = "$t"
      in
      if not (skip c) then
        Fmt.pr "  \"%s\" -> \"%s\";@." (Core.Cell.to_string c)
          (Core.Cell.to_string w));
  Fmt.pr "}@."

let print_dot_callgraph (r : Core.Analysis.result) =
  let q = Clients.Queries.of_result r in
  Fmt.pr "digraph call_graph {@.  node [shape=oval];@.";
  List.iter
    (fun (caller, callees) ->
      List.iter
        (fun callee ->
          match callee with
          | Clients.Queries.Static n ->
              Fmt.pr "  \"%s\" -> \"%s\";@." caller n
          | Clients.Queries.Resolved n ->
              Fmt.pr "  \"%s\" -> \"%s\" [style=dashed];@." caller n)
        callees)
    (Clients.Queries.call_graph q);
  Fmt.pr "}@."

(* analyze, routed through the fixpoint store (--store DIR): an exact
   repeat of (program, strategy, engine, layout, budget, diagnostics)
   is served from the cached snapshot without solving; a near-repeat
   warm-starts from the nearest cached ancestor. JSON output is the
   stats-free rendering (a pure function of the input, byte-identical
   whatever the cache did) with the store counter block spliced in. *)
let analyze_store_cmd ~dir ~store_max_mb ~store_faults spec strategy layout_id
    what var budget engine domains format =
  ignore (strategy_of_name strategy);
  let layout = layout_of_name layout_id in
  let plan =
    Server.Faults.store_of_env ()
    @
    match store_faults with
    | None -> []
    | Some s -> (
        match Server.Faults.store_parse s with
        | Ok p -> p
        | Error e -> failwith e)
  in
  let st =
    Store.open_store
      ~max_bytes:(max 1 store_max_mb * 1024 * 1024)
      ~inject:(Server.Faults.store_hook plan)
      ~log:(fun m -> Fmt.epr "store: %s@." m)
      dir
  in
  let diags = Diag.create () in
  let name, prog = compile_spec ~layout ~diags spec in
  let want = if format = "json" then `Json else `Solver in
  (* --engine summary composes the two caches: the snapshot store still
     short-circuits exact repeats and additive edits; a genuinely cold
     solve consults the per-function summary cache under DIR/summaries *)
  let sumcache =
    if engine = "summary" then
      Some
        (Summary.Sumcache.open_cache
           ~log:(fun m -> Fmt.epr "summary: %s@." m)
           (Filename.concat dir "summaries"))
    else None
  in
  let served =
    match sumcache with
    | Some cache ->
        Summary.Engine.serve ~store:st ~cache ~want
          ~diags:(Diag.diagnostics diags) ~name ~strategy_id:strategy ~layout
          ~layout_id ~budget prog
    | None ->
        Store.serve st ~want ~diags:(Diag.diagnostics diags) ~name
          ~strategy_id:strategy
          ~engine:(engine_of_name ~domains engine)
          ~layout ~layout_id ~budget prog
  in
  let degraded =
    match served.Store.sv_result with
    | Some r -> r.Core.Analysis.degraded
    | None -> []
  in
  (match format with
  | "json" ->
      let json = Store.with_counters st served.Store.sv_json in
      let json =
        match sumcache with
        | Some c -> Summary.Engine.with_counters c json
        | None -> json
      in
      print_string json;
      print_newline ()
  | "text" ->
      let r =
        match served.Store.sv_result with
        | Some r -> r
        | None -> assert false (* text mode always asks for the solver *)
      in
      (match what with
      | "points-to" -> print_points_to r ~only_var:var
      | "metrics" -> print_metrics name r
      | "norm" -> Fmt.pr "%a" Nast.pp_program prog
      | "callgraph" -> print_callgraph r
      | "modref" -> print_modref r
      | "dot" -> print_dot r
      | "dot-callgraph" -> print_dot_callgraph r
      | w -> failwith (Printf.sprintf "unknown --print %s" w));
      report_diags diags;
      (match served.Store.sv_origin with
      | `Hit -> Fmt.epr "store: exact hit (no solving)@."
      | `Ancestor n ->
          Fmt.epr "store: warm-started from a cached ancestor (+%d \
                   statements)@."
            n
      | `Cold -> ());
      Fmt.epr "%a@." Core.Metrics.pp_store (Store.counters st);
      (match sumcache with
      | Some c ->
          Fmt.epr "%a@." Core.Metrics.pp_sumcache (Summary.Sumcache.counters c)
      | None -> ());
      report_degradation degraded
  | f -> failwith (Printf.sprintf "unknown --format %s (text|json)" f));
  exit_code ~diags ~degraded:(degraded <> [])

let analyze_cmd spec strategy layout what var budget engine domains format
    store store_max_mb store_faults =
  match store with
  | Some dir ->
      analyze_store_cmd ~dir ~store_max_mb ~store_faults spec strategy layout
        what var budget engine domains format
  | None ->
  let layout = layout_of_name layout in
  let diags = Diag.create () in
  let name, prog = compile_spec ~layout ~diags spec in
  let r =
    Core.Analysis.run ~layout ~budget
      ~engine:(engine_of_name ~domains engine)
      ~strategy:(strategy_of_name strategy)
      prog
  in
  (match format with
  | "json" ->
      (* one machine-readable object on stdout, nothing on stderr: the
         result, metrics, degradation events, and diagnostics all live
         in the JSON *)
      let r = { r with Core.Analysis.diags = Diag.diagnostics diags } in
      print_string (Core.Report.json_of_result ~name r);
      print_newline ()
  | "text" ->
      (match what with
      | "points-to" -> print_points_to r ~only_var:var
      | "metrics" -> print_metrics name r
      | "norm" -> Fmt.pr "%a" Nast.pp_program prog
      | "callgraph" -> print_callgraph r
      | "modref" -> print_modref r
      | "dot" -> print_dot r
      | "dot-callgraph" -> print_dot_callgraph r
      | w -> failwith (Printf.sprintf "unknown --print %s" w));
      report_diags diags;
      report_degradation r.Core.Analysis.degraded
  | f -> failwith (Printf.sprintf "unknown --format %s (text|json)" f));
  exit_code ~diags ~degraded:(r.Core.Analysis.degraded <> [])

(* ------------------------------------------------------------------ *)
(* reanalyze / watch                                                   *)
(* ------------------------------------------------------------------ *)

let mk_result ~time_s ~diags (t : Core.Solver.t) : Core.Analysis.result =
  {
    Core.Analysis.solver = t;
    metrics = Core.Metrics.summarize t;
    time_s;
    degraded = Core.Solver.degradations t;
    diags = Diag.diagnostics diags;
  }

let warm_solve ~layout ~budget ~engine ~strategy prog : Core.Solver.t =
  (* track:true records per-statement support so later removals can
     retract instead of falling back *)
  Core.Solver.run ~layout ~budget ~engine ~track:true ~strategy prog

let print_warm_result ~format ~name ~time_s ~diags ~(st : Incr.Engine.stats)
    (t : Core.Solver.t) =
  let r = mk_result ~time_s ~diags t in
  match format with
  | "json" ->
      print_string (Core.Report.json_of_result ~name r);
      print_newline ();
      flush stdout
  | "text" ->
      Fmt.pr "%s: +%d/-%d statements, %d facts retracted, %d warm visits%s@."
        name st.Incr.Engine.stmts_added st.Incr.Engine.stmts_removed
        st.Incr.Engine.facts_retracted st.Incr.Engine.warm_visits
        (if st.Incr.Engine.fallback_planned then "  (planned scratch solve)"
         else if st.Incr.Engine.fallback then "  (fell back to scratch)"
         else "");
      report_diags diags
  | f -> failwith (Printf.sprintf "unknown --format %s (text|json)" f)

let reanalyze_cmd base_spec edited_spec strategy layout budget engine domains
    format retract_budget =
  let layout = layout_of_name layout in
  let strategy = strategy_of_name strategy in
  let engine = engine_of_name ~domains engine in
  let diags = Diag.create () in
  let _, base = compile_spec ~layout ~diags base_spec in
  let t0 = Sys.time () in
  let t = warm_solve ~layout ~budget ~engine ~strategy base in
  let name, edited = compile_spec ~layout ~diags edited_spec in
  let t, st = Incr.Engine.reanalyze ~retract_budget ~diags t edited in
  let time_s = Sys.time () -. t0 in
  print_warm_result ~format ~name ~time_s ~diags ~st t;
  exit_code ~diags ~degraded:(Core.Solver.degraded t)

(* One solved fixpoint kept live: every line on stdin (e.g. from an
   editor hook or `inotifywait`) re-reads FILE and re-answers from the
   warm state. EOF ends the session. *)
let watch_cmd spec strategy layout budget engine domains format retract_budget
    journal =
  let layout = layout_of_name layout in
  let strategy = strategy_of_name strategy in
  let engine = engine_of_name ~domains engine in
  let jnl = Option.map Server.Journal.open_append journal in
  let journal_entry ~i ~name ~time_s ~diags (t : Core.Solver.t) =
    match jnl with
    | None -> ()
    | Some j ->
        let r = mk_result ~time_s ~diags t in
        Server.Journal.append j
          (Server.Journal.Done
             {
               id = Printf.sprintf "watch%d" i;
               attempt = 1;
               rung = 0;
               degraded = Core.Solver.degraded t;
               diag_errors = Diag.has_errors diags;
               output = Core.Report.json_of_result ~timing:false ~name r;
             })
  in
  (* SIGINT is a clean end-of-session, exactly like EOF: the handler's
     exception unwinds the blocking read and the final record below
     still lands in the journal *)
  let prev_sigint =
    Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> raise Exit))
  in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigint prev_sigint;
      Option.iter Server.Journal.close jnl)
    (fun () ->
      let diags = Diag.create () in
      let name, base = compile_spec ~layout ~diags spec in
      let t0 = Sys.time () in
      let t = ref (warm_solve ~layout ~budget ~engine ~strategy base) in
      let time_s = Sys.time () -. t0 in
      Fmt.epr "watch: %s solved (%d statements); send a line to re-analyze, \
               EOF to stop@."
        name (Nast.stmt_count base);
      journal_entry ~i:0 ~name ~time_s ~diags !t;
      let worst = ref (exit_code ~diags ~degraded:(Core.Solver.degraded !t)) in
      let edits = ref 0 in
      let rec loop i =
        match input_line stdin with
        | exception End_of_file -> ()
        | _ ->
            incr edits;
            (let diags = Diag.create () in
             match
               let t0 = Sys.time () in
               let _, edited = compile_spec ~layout ~diags spec in
               let t', st =
                 Incr.Engine.reanalyze ~retract_budget ~diags !t edited
               in
               (t', st, Sys.time () -. t0)
             with
             | t', st, time_s ->
                 t := t';
                 print_warm_result ~format ~name ~time_s ~diags ~st !t;
                 journal_entry ~i ~name ~time_s ~diags !t;
                 worst :=
                   max !worst
                     (exit_code ~diags ~degraded:(Core.Solver.degraded !t))
             | exception Diag.Error p ->
                 (* a broken intermediate save: report, keep the old
                    fixpoint, keep watching *)
                 Fmt.epr "%a@." Diag.pp_payload p;
                 worst := max !worst 1);
            loop (i + 1)
      in
      (try loop 1 with Exit -> ());
      (* a final terminal record: a journal ending in [watch-done] is a
         session that closed cleanly (EOF or SIGINT), not one that died
         mid-edit — resume tooling can tell the difference *)
      (match jnl with
      | None -> ()
      | Some j ->
          Server.Journal.append j
            (Server.Journal.Done
               {
                 id = "watch-done";
                 attempt = 1;
                 rung = 0;
                 degraded = false;
                 diag_errors = false;
                 output =
                   Printf.sprintf
                     "{\"status\":\"session-closed\",\"edits\":%d}" !edits;
               }));
      !worst)

(* ------------------------------------------------------------------ *)
(* compare                                                             *)
(* ------------------------------------------------------------------ *)

let compare_cmd spec layout budget =
  let layout = layout_of_name layout in
  let diags = Diag.create () in
  let name, prog = compile_spec ~layout ~diags spec in
  Fmt.pr "%s: %d normalized statements@.@." name (Nast.stmt_count prog);
  Fmt.pr "%-24s %12s %10s %10s %10s@." "strategy" "avg-deref" "max" "edges"
    "time(s)";
  let all_events = ref [] in
  List.iter
    (fun s ->
      let r = Core.Analysis.run ~layout ~budget ~strategy:s prog in
      let m = r.Core.Analysis.metrics in
      all_events := !all_events @ r.Core.Analysis.degraded;
      Fmt.pr "%-24s %12.2f %10d %10d %10.4f%s@." m.Core.Metrics.strategy_name
        m.Core.Metrics.avg_deref_size m.Core.Metrics.max_deref_size
        m.Core.Metrics.total_edges r.Core.Analysis.time_s
        (if r.Core.Analysis.degraded <> [] then "  (degraded)" else ""))
    Core.Analysis.strategies;
  (* unification baselines for context *)
  List.iter
    (fun (flavor, label) ->
      let t = Steens.Steensgaard.run ~flavor prog in
      Fmt.pr "%-24s %12.2f %10s %10s %10.4f@." label
        (Steens.Steensgaard.avg_deref_size t)
        "-" "-" t.Steens.Steensgaard.time_s)
    [
      (Steens.Steensgaard.Collapsed, "steensgaard (collapsed)");
      (Steens.Steensgaard.Fields, "steensgaard (fields)");
    ];
  report_diags diags;
  report_degradation !all_events;
  exit_code ~diags ~degraded:(!all_events <> [])

(* ------------------------------------------------------------------ *)
(* corpus                                                              *)
(* ------------------------------------------------------------------ *)

let corpus_cmd () =
  Fmt.pr "%-10s %6s %6s  %s@." "name" "lines" "casts" "description";
  List.iter
    (fun p ->
      Fmt.pr "%-10s %6d %6s  %s@." p.Suite.name (Suite.line_count p)
        (if p.Suite.has_struct_cast then "yes" else "no")
        p.Suite.description)
    Suite.programs

(* ------------------------------------------------------------------ *)
(* batch / serve                                                       *)
(* ------------------------------------------------------------------ *)

(* Batch exit codes extend the single-run contract fleet-wide; the
   worst (numerically highest) outcome wins: 5 drained by signal
   (serve only, applied by the caller), 4 if any request was shed
   (queue full, deadline expired, or drain cut it off), 3 if any job
   was quarantined (or an internal error), 2 if any completed degraded
   (budget events or a retry rung > 0), 1 if any carried error
   diagnostics, 0 otherwise. *)
let outcome_exit_code (o : Server.Supervisor.outcome) : int =
  match o with
  | Server.Supervisor.Shed _ -> 4
  | Server.Supervisor.Quarantined _ -> 3
  | Server.Supervisor.Done { degraded; diag_errors; _ } ->
      if degraded then 2 else if diag_errors then 1 else 0

let batch_exit_code (results : (Server.Job.t * Server.Supervisor.outcome) list)
    : int =
  List.fold_left (fun acc (_, o) -> max acc (outcome_exit_code o)) 0 results

let print_outcome ~format (job : Server.Job.t)
    (o : Server.Supervisor.outcome) =
  match (format, o) with
  | "json", Server.Supervisor.Done { output; _ }
  | "json", Server.Supervisor.Quarantined { output; _ }
  | "json", Server.Supervisor.Shed { output; _ } ->
      print_string output;
      print_newline ()
  | _, Server.Supervisor.Done { attempt; rung; degraded; diag_errors; _ } ->
      Fmt.pr "%-8s %-12s done         attempt=%d rung=%d%s%s@."
        job.Server.Job.id job.Server.Job.spec attempt rung
        (if degraded then " (degraded)" else "")
        (if diag_errors then " (diagnostics)" else "")
  | _, Server.Supervisor.Quarantined { attempts; reason; _ } ->
      Fmt.pr "%-8s %-12s quarantined  attempts=%d — %s@." job.Server.Job.id
        job.Server.Job.spec attempts reason
  | _, Server.Supervisor.Shed { reason; _ } ->
      Fmt.pr "%-8s %-12s shed         — %s@." job.Server.Job.id
        job.Server.Job.spec reason

let read_manifest path : (string * string option * string option) list =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | exception End_of_file ->
        close_in ic;
        List.rev acc
    | line -> (
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        match
          String.split_on_char ' ' line
          |> List.concat_map (String.split_on_char '\t')
          |> List.filter (fun s -> s <> "")
        with
        | [] -> go acc
        | [ spec ] -> go ((spec, None, None) :: acc)
        | [ spec; s ] -> go ((spec, Some s, None) :: acc)
        | spec :: s :: l :: _ -> go ((spec, Some s, Some l) :: acc))
  in
  go []

let supervisor_config workers attempts job_timeout_ms backoff_ms faults
    journal resume ~max_pending ~high_watermark ~low_watermark ~brownout_ticks
    ~worker_max_rss_mb ~drain_deadline_ms : Server.Supervisor.config =
  let fault_plan =
    Server.Faults.merge
      (Server.Faults.of_env ())
      (match faults with
      | None -> Server.Faults.none
      | Some s -> (
          match Server.Faults.parse s with
          | Ok p -> p
          | Error e -> failwith e))
  in
  let opt n = if n <= 0 then None else Some n in
  {
    Server.Supervisor.workers;
    max_attempts = max 1 attempts;
    job_timeout_s = float_of_int (max 1 job_timeout_ms) /. 1000.;
    backoff_base_ms = max 1 backoff_ms;
    faults = fault_plan;
    journal_path = journal;
    resume;
    admission =
      {
        Server.Admission.max_pending = opt max_pending;
        high_watermark = max 0 high_watermark;
        low_watermark = max 0 low_watermark;
        brownout_ticks = max 1 brownout_ticks;
        max_rung = Server.Job.max_rung;
      };
    worker_max_rss_mb = opt worker_max_rss_mb;
    drain_grace_s = float_of_int (max 1 drain_deadline_ms) /. 1000.;
    shutdown_grace_s = 2.0;
  }

(* Overload-control flags shared by batch and serve; see the Arg docs
   below for semantics. All off by default (unbounded queue, no
   brownout, no RSS cap, no deadline). *)
type overload_flags = {
  max_pending : int;
  high_watermark : int;
  low_watermark : int;
  brownout_ticks : int;
  worker_max_rss_mb : int;
  drain_deadline_ms : int;
  deadline_ms : int;  (** default per-request deadline; 0 = none *)
}

(* The --domains total is divided among the worker processes: W workers
   each solving on D/W domains keeps the whole pool at ~D domains of
   solver parallelism instead of W*D. *)
let domains_per_worker ~workers domains =
  let total =
    if domains > 0 then domains else Domain.recommended_domain_count ()
  in
  max 1 (total / max 1 workers)

let batch_cmd specs manifest strategy layout budget workers attempts
    job_timeout_ms backoff_ms faults journal resume format store domains
    engine (ov : overload_flags) =
  let workers = workers_of_flag workers in
  let from_manifest =
    match manifest with Some p -> read_manifest p | None -> []
  in
  let entries =
    List.map (fun s -> (s, None, None)) specs @ from_manifest
  in
  if entries = [] then
    failwith "no jobs: give input specs or --jobs MANIFEST";
  let deadline_ms = if ov.deadline_ms > 0 then Some ov.deadline_ms else None in
  let job_domains = domains_per_worker ~workers domains in
  let jobs =
    List.mapi
      (fun i (spec, s, l) ->
        Server.Job.make ~idx:(i + 1)
          ~strategy:(Option.value s ~default:strategy)
          ~layout:(Option.value l ~default:layout)
          ~budget ?store_dir:store ?deadline_ms ~domains:job_domains ~engine
          spec)
      entries
  in
  let cfg =
    supervisor_config workers attempts job_timeout_ms backoff_ms faults
      journal resume ~max_pending:ov.max_pending
      ~high_watermark:ov.high_watermark ~low_watermark:ov.low_watermark
      ~brownout_ticks:ov.brownout_ticks
      ~worker_max_rss_mb:ov.worker_max_rss_mb
      ~drain_deadline_ms:ov.drain_deadline_ms
  in
  let results, fleet = Server.Supervisor.run_batch cfg jobs in
  List.iter (fun (j, o) -> print_outcome ~format j o) results;
  (match format with
  | "json" -> Fmt.epr "%s@." (Core.Metrics.fleet_json fleet)
  | _ -> Fmt.epr "%a@." Core.Metrics.pp_fleet fleet);
  batch_exit_code results

(* Request/response loop: one `SPEC [STRATEGY] [LAYOUT] [deadline=MS]`
   per stdin line, one JSON result line per request (in request order),
   backed by the persistent worker pool. Unlike the old
   one-request-at-a-time loop, stdin and the worker pipes are
   multiplexed through {!Server.Supervisor.step}: requests keep being
   admitted (or shed) while earlier ones run, which is what makes
   admission control and deadlines meaningful. SIGTERM/SIGINT flip the
   fleet into a graceful drain: queued and new requests are shed,
   in-flight ones finish within --drain-deadline-ms, and the process
   exits with code 5. *)
let serve_cmd strategy layout budget workers attempts job_timeout_ms
    backoff_ms faults journal store domains engine (ov : overload_flags) =
  let workers = workers_of_flag workers in
  let job_domains = domains_per_worker ~workers domains in
  let cfg =
    supervisor_config workers attempts job_timeout_ms backoff_ms faults
      journal false ~max_pending:ov.max_pending
      ~high_watermark:ov.high_watermark ~low_watermark:ov.low_watermark
      ~brownout_ticks:ov.brownout_ticks
      ~worker_max_rss_mb:ov.worker_max_rss_mb
      ~drain_deadline_ms:ov.drain_deadline_ms
  in
  let t = Server.Supervisor.create cfg in
  let drain_signal = ref false in
  let on_signal _ =
    drain_signal := true;
    Server.Supervisor.request_drain t
  in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  Fun.protect
    ~finally:(fun () -> Server.Supervisor.shutdown t)
    (fun () ->
      let worst = ref 0 in
      let idx = ref 0 in
      (* unanswered requests, oldest first: responses are printed in
         request order as outcomes become available *)
      let unprinted = ref [] in
      let print_ready () =
        let rec go = function
          | [] -> []
          | (job : Server.Job.t) :: rest -> (
              match Server.Supervisor.find_outcome t job.Server.Job.id with
              | Some o ->
                  print_outcome ~format:"json" job o;
                  flush stdout;
                  worst := max !worst (outcome_exit_code o);
                  go rest
              | None -> job :: rest)
        in
        unprinted := go !unprinted
      in
      let submit_line line =
        let toks =
          String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
        in
        (* tokens containing '=' are options; the rest are positional *)
        let opts, pos =
          List.partition (fun s -> String.contains s '=') toks
        in
        match pos with
        | [] -> ()
        | spec :: rest ->
            let s = match rest with x :: _ -> x | [] -> strategy in
            let l = match rest with _ :: x :: _ -> x | _ -> layout in
            let deadline_ms =
              List.fold_left
                (fun acc o ->
                  match String.index_opt o '=' with
                  | Some i when String.sub o 0 i = "deadline" -> (
                      let v =
                        String.sub o (i + 1) (String.length o - i - 1)
                      in
                      match int_of_string_opt v with
                      | Some ms when ms > 0 -> Some ms
                      | _ -> failwith ("serve: bad deadline option " ^ o))
                  | _ -> acc)
                (if ov.deadline_ms > 0 then Some ov.deadline_ms else None)
                opts
            in
            incr idx;
            let job =
              Server.Job.make ~idx:!idx ~strategy:s ~layout:l ~budget
                ?store_dir:store ?deadline_ms ~domains:job_domains ~engine
                spec
            in
            Server.Supervisor.submit t job;
            unprinted := !unprinted @ [ job ]
      in
      let inbuf = ref "" in
      let eof = ref false in
      let read_stdin () =
        let chunk = Bytes.create 4096 in
        match Unix.read Unix.stdin chunk 0 4096 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | 0 -> eof := true
        | n ->
            let data = !inbuf ^ Bytes.sub_string chunk 0 n in
            let parts = String.split_on_char '\n' data in
            let rec go = function
              | [] -> inbuf := ""
              | [ tail ] -> inbuf := tail
              | line :: rest ->
                  submit_line line;
                  go rest
            in
            go parts
      in
      let rec loop () =
        print_ready ();
        if !eof || Server.Supervisor.draining t then ()
        else begin
          let readable = Server.Supervisor.step ~extra:[ Unix.stdin ] t in
          if List.mem Unix.stdin readable then read_stdin ();
          loop ()
        end
      in
      loop ();
      (* EOF or drain: no more requests — finish (or cut off) what's in
         flight and answer everything still unanswered *)
      Server.Supervisor.drain t;
      print_ready ();
      Fmt.epr "%a@." Core.Metrics.pp_fleet (Server.Supervisor.fleet t);
      if !drain_signal then 5 else !worst)

(* ------------------------------------------------------------------ *)
(* Cmdliner plumbing                                                   *)
(* ------------------------------------------------------------------ *)

let spec_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE|PROGRAM" ~doc:"C source file or corpus program name.")

let strategy_arg =
  Arg.(
    value & opt string "cis"
    & info [ "s"; "strategy" ] ~docv:"ID"
        ~doc:
          "Analysis instance: collapse-always, collapse-on-cast, cis, or \
           offsets.")

let layout_arg =
  Arg.(
    value & opt string "ilp32"
    & info [ "l"; "layout" ] ~docv:"LAYOUT"
        ~doc:"Structure layout for the Offsets instance: ilp32, lp64, word16.")

let print_arg =
  Arg.(
    value & opt string "points-to"
    & info [ "p"; "print" ] ~docv:"WHAT"
        ~doc:
          "What to print: points-to, metrics, norm, callgraph, modref, dot \
           (graphviz points-to graph), or dot-callgraph.")

let var_arg =
  Arg.(
    value & opt (some string) None
    & info [ "var" ] ~docv:"NAME" ~doc:"Restrict points-to output to one variable.")

(* Budget flags; 0 disables the corresponding limit. Defaults come from
   Budget.default so every CLI run is bounded out of the box. *)

let default_steps =
  Option.value Core.Budget.default.Core.Budget.max_steps ~default:0

let default_timeout_ms =
  match Core.Budget.default.Core.Budget.timeout_s with
  | None -> 0
  | Some s -> int_of_float (s *. 1000.)

let default_obj_cells =
  Option.value Core.Budget.default.Core.Budget.max_cells_per_object ~default:0

let default_total_cells =
  Option.value Core.Budget.default.Core.Budget.max_total_cells ~default:0

let max_steps_arg =
  Arg.(
    value & opt int default_steps
    & info [ "max-steps" ] ~docv:"N"
        ~doc:
          "Solver step budget; past it, precision degrades (objects collapse \
           to single cells) instead of running on. 0 = unlimited.")

let timeout_ms_arg =
  Arg.(
    value & opt int default_timeout_ms
    & info [ "timeout-ms" ] ~docv:"MS"
        ~doc:
          "Wall-clock budget for the solve, in milliseconds; past it, \
           precision degrades. 0 = unlimited. Under batch/serve the value \
           crosses the job wire in whole milliseconds with a 1 ms floor \
           (a sub-millisecond budget is clamped up to 1 ms, never to \
           unlimited), and retry rung 1 additionally caps it at 2000 ms.")

let max_cells_per_object_arg =
  Arg.(
    value & opt int default_obj_cells
    & info [ "max-cells-per-object" ] ~docv:"N"
        ~doc:
          "Cell budget per object; an object tracked at finer granularity \
           than this collapses to one cell. 0 = unlimited.")

let max_total_cells_arg =
  Arg.(
    value & opt int default_total_cells
    & info [ "max-total-cells" ] ~docv:"N"
        ~doc:
          "Cell budget across all objects; past it, precision degrades. \
           0 = unlimited.")

let budget_term =
  Term.(
    const limits_of_flags $ max_steps_arg $ timeout_ms_arg
    $ max_cells_per_object_arg $ max_total_cells_arg)

let engine_arg =
  Arg.(
    value & opt string "delta"
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Solver engine: delta (difference propagation with online cycle \
           elimination, default), delta-par (delta with the copy-edge \
           drain run on several domains; see --domains), delta-nocycle \
           (difference propagation only; the ablation baseline), naive \
           (reference full-reread worklist), or summary (bottom-up \
           per-function summaries over the call-graph SCC-DAG; with \
           --store DIR the summaries are cached under DIR/summaries and \
           an edit recomputes only its dependent chain). All five reach \
           the same fixpoint; they differ only in how much work it \
           costs.")

let domains_arg =
  Arg.(
    value & opt int 0
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Domains for --engine delta-par (0 = auto: the runtime's \
           recommended domain count for this machine). The sequential \
           engines ignore it. In batch/serve the total is divided among \
           the worker processes.")

let format_arg =
  Arg.(
    value & opt string "text"
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Output format: text, or json (one machine-readable object with \
           result, metrics, degradation events, and diagnostics).")

(* batch / serve flags *)

let specs_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"FILE|PROGRAM"
        ~doc:"Inputs to analyze, one job each (see also --jobs).")

let jobs_arg =
  Arg.(
    value & opt (some string) None
    & info [ "jobs" ] ~docv:"MANIFEST"
        ~doc:
          "Job manifest: one job per line, 'SPEC [STRATEGY [LAYOUT]]'; '#' \
           starts a comment.")

let workers_arg =
  Arg.(
    value & opt string "auto"
    & info [ "workers" ] ~docv:"N|auto"
        ~doc:
          "Worker processes in the pool (each job runs in one). The \
           default, auto, sizes the pool to the runtime's recommended \
           domain count for this machine.")

let attempts_arg =
  Arg.(
    value & opt int 3
    & info [ "attempts" ] ~docv:"N"
        ~doc:
          "Attempts per job before quarantine; each retry escalates one \
           degradation rung (full → tight budget → collapse-all).")

let job_timeout_ms_arg =
  Arg.(
    value & opt int 30_000
    & info [ "job-timeout-ms" ] ~docv:"MS"
        ~doc:
          "Per-attempt wall clock; a worker past it is killed and the job \
           counts as hung.")

let backoff_ms_arg =
  Arg.(
    value & opt int 100
    & info [ "backoff-ms" ] ~docv:"MS"
        ~doc:
          "Retry backoff base: attempt n waits base*2^(n-1) plus \
           deterministic jitter.")

let faults_arg =
  Arg.(
    value & opt (some string) None
    & info [ "faults" ] ~docv:"PLAN"
        ~doc:
          "Fault-injection plan, e.g. 'crash\\@job2#1,hang\\@job5' \
           (kinds: crash, exit, hang, raise, allocbomb, burst, slowread, \
           allochold); merged with \\$STRUCTCAST_FAULTS. Testing only.")

let journal_arg =
  Arg.(
    value & opt (some string) None
    & info [ "journal" ] ~docv:"PATH"
        ~doc:
          "Append every job state transition to this fsync'd journal; with \
           --resume, finished jobs are replayed from it byte-for-byte.")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Resume an interrupted batch from --journal: finished jobs are \
           replayed, only unfinished ones run.")

(* overload-control flags (batch and serve) *)

let max_pending_arg =
  Arg.(
    value & opt int 0
    & info [ "max-pending" ] ~docv:"N"
        ~doc:
          "Admission control: bound on the pending-request queue. A request \
           arriving when N are already queued is shed — answered with a \
           distinct '\"status\":\"shed\"' JSON line (exit code 4), never \
           silently dropped. Shedding depends only on queue occupancy, so \
           the same arrival order sheds the same requests every run. 0 = \
           unbounded (no shedding).")

let high_watermark_arg =
  Arg.(
    value & opt int 0
    & info [ "high-watermark" ] ~docv:"N"
        ~doc:
          "Brownout: queue depth that counts as sustained pressure. Depth \
           above N for --brownout-ticks consecutive supervisor ticks \
           escalates the rung new dispatches start at (tight budgets, then \
           collapse-always) — sound but coarser answers, served faster. \
           0 disables brownout.")

let low_watermark_arg =
  Arg.(
    value & opt int 0
    & info [ "low-watermark" ] ~docv:"N"
        ~doc:
          "Brownout: queue depth at or below which pressure counts as gone; \
           --brownout-ticks consecutive calm ticks step the brownout rung \
           back down.")

let brownout_ticks_arg =
  Arg.(
    value & opt int 8
    & info [ "brownout-ticks" ] ~docv:"N"
        ~doc:
          "Consecutive supervisor ticks above (below) the watermark before \
           the brownout rung escalates (steps down).")

let worker_max_rss_mb_arg =
  Arg.(
    value & opt int 0
    & info [ "worker-max-rss-mb" ] ~docv:"MB"
        ~doc:
          "Memory watchdog: per-worker resident-set cap, sampled from \
           /proc/<pid>/statm each supervisor tick. A worker over the cap is \
           SIGKILLed and its job re-enters the retry ladder (where tighter \
           rung budgets usually let it finish). 0 = no cap.")

let drain_deadline_ms_arg =
  Arg.(
    value & opt int 5000
    & info [ "drain-deadline-ms" ] ~docv:"MS"
        ~doc:
          "Graceful drain: how long in-flight jobs may keep running after \
           SIGTERM/SIGINT before they are killed and shed. Queued requests \
           are shed immediately; every request still gets exactly one \
           journaled outcome.")

let deadline_ms_arg =
  Arg.(
    value & opt int 0
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Default request deadline, from submission. A request whose \
           deadline expires while queued is shed without running; at \
           dispatch the remaining deadline tightens the job's wall-clock \
           budget; a worker still running one supervisor tick past it is \
           killed and the request shed (not retried). serve requests may \
           override per request with a 'deadline=MS' token. 0 = none.")

let overload_term =
  let mk max_pending high_watermark low_watermark brownout_ticks
      worker_max_rss_mb drain_deadline_ms deadline_ms =
    {
      max_pending;
      high_watermark;
      low_watermark;
      brownout_ticks;
      worker_max_rss_mb;
      drain_deadline_ms;
      deadline_ms;
    }
  in
  Term.(
    const mk $ max_pending_arg $ high_watermark_arg $ low_watermark_arg
    $ brownout_ticks_arg $ worker_max_rss_mb_arg $ drain_deadline_ms_arg
    $ deadline_ms_arg)

let batch_format_arg =
  Arg.(
    value & opt string "json"
    & info [ "format" ] ~docv:"FMT"
        ~doc:"Output format: json (default; one line per job) or text.")

let retract_budget_arg =
  Arg.(
    value & opt int Incr.Engine.default_retract_budget
    & info [ "retract-budget" ] ~docv:"N"
        ~doc:
          "Affected-cell cap for retraction on edits that remove \
           statements; past it the edit is solved from scratch (reported \
           as a degraded-incremental warning).")

(* fixpoint-store flags *)

let store_arg =
  Arg.(
    value & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Content-addressed fixpoint store: serve exact repeats from \
           cached snapshots (no solving), warm-start near-repeats from \
           the nearest cached ancestor, and cache clean results. A \
           corrupt store can cost time but never change a report: \
           snapshots are checksum-verified and quarantined on any \
           mismatch, degrading to a scratch solve. With --format json \
           the report is the stats-free rendering plus a 'store' \
           counter block.")

let store_max_mb_arg =
  Arg.(
    value & opt int 256
    & info [ "store-max-mb" ] ~docv:"MB"
        ~doc:
          "Size budget for --store; least-recently-used snapshots are \
           evicted past it.")

let store_faults_arg =
  Arg.(
    value & opt (some string) None
    & info [ "store-faults" ] ~docv:"PLAN"
        ~doc:
          "Store-I/O fault-injection plan, e.g. 'shortwrite\\@2,enospc\\@1' \
           (kinds: shortwrite, bitflip, enospc, crash; N is the 1-based \
           store write ordinal); merged with \\$STRUCTCAST_STORE_FAULTS. \
           Testing only.")

let watch_journal_arg =
  Arg.(
    value & opt (some string) None
    & info [ "journal" ] ~docv:"PATH"
        ~doc:
          "Append one crash-safe 'done' record per re-analysis (same \
           format as batch --journal), carrying the JSON result line.")

(* [f] returns the exit code (0 ok, 1 diagnostics, 2 degraded); expected
   failures map to 1, anything escaping unexpectedly is an internal
   error: 3. *)
let wrap f =
  try f () with
  | Failure msg | Sys_error msg ->
      Fmt.epr "error: %s@." msg;
      1
  | Diag.Error p ->
      Fmt.epr "%a@." Diag.pp_payload p;
      1
  | e ->
      Fmt.epr "internal error: %s@." (Printexc.to_string e);
      3

let analyze_t =
  let run spec strategy layout what var budget engine domains format store
      store_max_mb store_faults =
    wrap (fun () ->
        analyze_cmd spec strategy layout what var budget engine domains format
          store store_max_mb store_faults)
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Analyze a C file with one framework instance.")
    Term.(
      const run $ spec_arg $ strategy_arg $ layout_arg $ print_arg $ var_arg
      $ budget_term $ engine_arg $ domains_arg $ format_arg $ store_arg
      $ store_max_mb_arg $ store_faults_arg)

let compare_t =
  let run spec layout budget = wrap (fun () -> compare_cmd spec layout budget) in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Run all framework instances (and unification baselines).")
    Term.(const run $ spec_arg $ layout_arg $ budget_term)

let corpus_t =
  let run () =
    wrap (fun () ->
        corpus_cmd ();
        0)
  in
  Cmd.v
    (Cmd.info "corpus" ~doc:"List the embedded benchmark corpus.")
    Term.(const run $ const ())

let batch_t =
  let run specs manifest strategy layout budget workers attempts
      job_timeout_ms backoff_ms faults journal resume format store domains
      engine overload =
    wrap (fun () ->
        batch_cmd specs manifest strategy layout budget workers attempts
          job_timeout_ms backoff_ms faults journal resume format store domains
          engine overload)
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Analyze many inputs through the crash-contained supervisor: forked \
          workers, retry with backoff and degradation, per-input circuit \
          breaker, crash-safe journal (--journal/--resume), and the \
          overload controls (admission, deadlines, brownout, memory \
          watchdog). Exit code is the worst outcome: 0 clean, 1 \
          diagnostics, 2 degraded, 3 quarantined, 4 shed.")
    Term.(
      const run $ specs_arg $ jobs_arg $ strategy_arg $ layout_arg
      $ budget_term $ workers_arg $ attempts_arg $ job_timeout_ms_arg
      $ backoff_ms_arg $ faults_arg $ journal_arg $ resume_arg
      $ batch_format_arg $ store_arg $ domains_arg $ engine_arg
      $ overload_term)

let serve_t =
  let run strategy layout budget workers attempts job_timeout_ms backoff_ms
      faults journal store domains engine overload =
    wrap (fun () ->
        serve_cmd strategy layout budget workers attempts job_timeout_ms
          backoff_ms faults journal store domains engine overload)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve analysis requests read from stdin ('SPEC [STRATEGY [LAYOUT] \
          [deadline=MS]]' per line), one JSON result line per request in \
          request order, backed by the crash-contained worker pool. \
          Requests are admitted (or shed) while earlier ones run; \
          --max-pending bounds the queue, --deadline-ms bounds each \
          request, SIGTERM/SIGINT drain gracefully (in-flight requests \
          finish within --drain-deadline-ms, everything else is shed, exit \
          code 5).")
    Term.(
      const run $ strategy_arg $ layout_arg $ budget_term $ workers_arg
      $ attempts_arg $ job_timeout_ms_arg $ backoff_ms_arg $ faults_arg
      $ journal_arg $ store_arg $ domains_arg $ engine_arg $ overload_term)

let base_spec_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"BASE" ~doc:"Base version: C file or corpus program.")

let edited_spec_arg =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"EDITED" ~doc:"Edited version of the same program.")

let reanalyze_t =
  let run base edited strategy layout budget engine domains format
      retract_budget =
    wrap (fun () ->
        reanalyze_cmd base edited strategy layout budget engine domains format
          retract_budget)
  in
  Cmd.v
    (Cmd.info "reanalyze"
       ~doc:
         "Solve BASE, diff EDITED against it, and answer for EDITED from \
          the warm fixpoint: additions warm-start the solved state, \
          removals retract through per-statement support counting (falling \
          back to scratch past --retract-budget). The result is identical \
          to analyzing EDITED from scratch.")
    Term.(
      const run $ base_spec_arg $ edited_spec_arg $ strategy_arg $ layout_arg
      $ budget_term $ engine_arg $ domains_arg $ format_arg
      $ retract_budget_arg)

let watch_t =
  let run spec strategy layout budget engine domains format retract_budget
      journal =
    wrap (fun () ->
        watch_cmd spec strategy layout budget engine domains format
          retract_budget journal)
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Solve FILE once and keep the fixpoint live: every line on stdin \
          (wire up your editor's save hook or inotifywait) re-reads FILE \
          and re-answers incrementally, printing one result per edit. EOF \
          ends the session.")
    Term.(
      const run $ spec_arg $ strategy_arg $ layout_arg $ budget_term
      $ engine_arg $ domains_arg $ format_arg $ retract_budget_arg
      $ watch_journal_arg)

let main =
  Cmd.group
    (Cmd.info "structcast" ~version:"1.0.0"
       ~doc:
         "Tunable pointer analysis for C with structures and casting (Yong, \
          Horwitz & Reps, PLDI 1999).")
    [ analyze_t; compare_t; corpus_t; batch_t; serve_t; reanalyze_t; watch_t ]

let () = exit (Cmd.eval' main)
