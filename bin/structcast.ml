(** [structcast] — command-line driver for the pointer-analysis framework.

    - [structcast analyze FILE.c] — run one strategy and print points-to
      sets, normalized statements, metrics, or the call graph.
    - [structcast compare FILE.c] — run all four instances side by side.
    - [structcast corpus] — list the embedded benchmark corpus; a corpus
      program's name can be used instead of a file everywhere. *)

open Cfront
open Norm
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Inputs                                                              *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_source (spec : string) : string * string =
  (* a corpus program name, or a path to a C file *)
  match Suite.find spec with
  | Some p -> (p.Suite.name, p.Suite.source)
  | None ->
      if Sys.file_exists spec then (Filename.basename spec, read_file spec)
      else
        failwith
          (Printf.sprintf
             "%s: not a file and not a corpus program (try 'structcast corpus')"
             spec)

let resolve_includes path rel =
  (* #include "x.h" resolves relative to the input file's directory *)
  let dir = Filename.dirname path in
  let candidate = Filename.concat dir rel in
  if Sys.file_exists candidate then Some (read_file candidate) else None

let layout_of_name = function
  | "ilp32" -> Layout.ilp32
  | "lp64" -> Layout.lp64
  | "word16" -> Layout.word16
  | s -> failwith (Printf.sprintf "unknown layout %s (ilp32|lp64|word16)" s)

let strategy_of_name name : (module Core.Strategy.S) =
  match Core.Analysis.strategy_of_id name with
  | Some s -> s
  | None ->
      failwith
        (Printf.sprintf "unknown strategy %s (have: %s)" name
           (String.concat ", " Core.Analysis.strategy_ids))

let compile_spec ~layout ~diags spec : string * Nast.program =
  let name, source = load_source spec in
  let resolve = resolve_includes spec in
  (name, Lower.compile ~layout ~resolve ~diags ~file:name source)

(* ------------------------------------------------------------------ *)
(* Budgets and exit codes                                              *)
(* ------------------------------------------------------------------ *)

(* Exit codes: 0 clean, 1 diagnostics reported, 2 budget-degraded,
   3 internal error. Degradation wins over diagnostics: a truncated
   answer is the more important fact about the run. *)

let limits_of_flags max_steps timeout_ms max_cells_per_object max_total_cells
    : Core.Budget.limits =
  let opt n = if n <= 0 then None else Some n in
  {
    Core.Budget.max_steps = opt max_steps;
    timeout_s =
      (if timeout_ms <= 0 then None
       else Some (float_of_int timeout_ms /. 1000.));
    max_cells_per_object = opt max_cells_per_object;
    max_total_cells = opt max_total_cells;
  }

let report_diags (d : Diag.ctx) =
  List.iter
    (fun (p : Diag.payload) -> Fmt.epr "%a@." Diag.pp_payload p)
    (Diag.diagnostics d)

(* One line on stderr summarizing what precision was given up. *)
let report_degradation (events : Core.Budget.event list) =
  match events with
  | [] -> ()
  | e0 :: _ ->
      let collapsed =
        List.length (List.filter (fun e -> e.Core.Budget.obj <> None) events)
      in
      let what =
        if collapsed = 0 then "all objects treated as collapsed"
        else Printf.sprintf "%d object%s collapsed" collapsed
               (if collapsed = 1 then "" else "s")
      in
      Fmt.epr "budget: precision degraded — %s (first trip: %a at step %d, \
               %.2fs)@."
        what Core.Budget.pp_reason e0.Core.Budget.reason
        e0.Core.Budget.at_step e0.Core.Budget.at_time

let exit_code ~diags ~degraded =
  if degraded then 2 else if Diag.has_errors diags then 1 else 0

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)
(* ------------------------------------------------------------------ *)

let print_points_to (r : Core.Analysis.result) ~only_var =
  let module S =
    (val r.Core.Analysis.solver.Core.Solver.strategy : Core.Strategy.S)
  in
  let solver = r.Core.Analysis.solver in
  let entries =
    Core.Graph.fold_sources solver.Core.Solver.graph
      (fun c s acc -> (c, s) :: acc)
      []
    |> List.sort (fun (a, _) (b, _) -> Core.Cell.compare a b)
  in
  List.iter
    (fun ((c : Core.Cell.t), targets) ->
      let name = Cvar.qualified_name c.Core.Cell.base in
      let keep =
        match only_var with
        | Some v -> name = v || c.Core.Cell.base.Cvar.vname = v
        | None ->
            (* hide compiler temporaries by default *)
            not
              (String.length c.Core.Cell.base.Cvar.vname > 2
              && String.sub c.Core.Cell.base.Cvar.vname 0 2 = "$t")
      in
      if keep && not (Core.Cell.Set.is_empty targets) then
        Fmt.pr "%a -> {%a}@." Core.Cell.pp c
          (Fmt.list ~sep:(Fmt.any ", ") Core.Cell.pp)
          (Core.Cell.Set.elements targets))
    entries

let print_metrics name (r : Core.Analysis.result) =
  let m = r.Core.Analysis.metrics in
  let f = m.Core.Metrics.figures3 in
  Fmt.pr "program:              %s@." name;
  Fmt.pr "strategy:             %s@." m.Core.Metrics.strategy_name;
  Fmt.pr "deref sites:          %d@." m.Core.Metrics.deref_sites;
  Fmt.pr "avg deref pts size:   %.2f@." m.Core.Metrics.avg_deref_size;
  Fmt.pr "max deref pts size:   %d@." m.Core.Metrics.max_deref_size;
  Fmt.pr "points-to edges:      %d@." m.Core.Metrics.total_edges;
  Fmt.pr "lookup calls:         %d (%.1f%% struct, %.1f%% of those mismatch)@."
    m.Core.Metrics.lookup_calls f.Core.Actx.pct_lookup_struct
    f.Core.Actx.pct_lookup_mismatch;
  Fmt.pr "resolve calls:        %d (%.1f%% struct, %.1f%% of those mismatch)@."
    m.Core.Metrics.resolve_calls f.Core.Actx.pct_resolve_struct
    f.Core.Actx.pct_resolve_mismatch;
  Fmt.pr "analysis time:        %.4f s@." r.Core.Analysis.time_s;
  if m.Core.Metrics.unknown_externs <> [] then
    Fmt.pr "unknown externs:      %s@."
      (String.concat ", " m.Core.Metrics.unknown_externs)

let print_callgraph (r : Core.Analysis.result) =
  let q = Clients.Queries.of_result r in
  List.iter
    (fun (fname, callees) ->
      if callees = [] then Fmt.pr "%s -> (none)@." fname
      else
        Fmt.pr "%s -> %a@." fname
          (Fmt.list ~sep:(Fmt.any ", ") Clients.Queries.pp_callee)
          callees)
    (Clients.Queries.call_graph q)

let print_modref (r : Core.Analysis.result) =
  let q = Clients.Queries.of_result r in
  let prog = Clients.Queries.prog q in
  List.iter
    (fun (f : Nast.func) ->
      Fmt.pr "%s:@." f.Nast.fname;
      Fmt.pr "  MOD  = {%s}@."
        (String.concat ", "
           (Clients.Queries.cell_set_to_strings (Clients.Queries.mod_set q f)));
      Fmt.pr "  REF  = {%s}@."
        (String.concat ", "
           (Clients.Queries.cell_set_to_strings (Clients.Queries.ref_set q f)));
      Fmt.pr "  MOD* = {%s}@."
        (String.concat ", "
           (Clients.Queries.cell_set_to_strings
              (Clients.Queries.mod_set_transitive q f.Nast.fname))))
    prog.Nast.pfuncs

(* Graphviz exports: pipe into `dot -Tsvg` *)
let print_dot (r : Core.Analysis.result) =
  let solver = r.Core.Analysis.solver in
  Fmt.pr "digraph points_to {@.  rankdir=LR;@.  node [shape=box];@.";
  Core.Graph.iter_edges solver.Core.Solver.graph (fun c w ->
      let skip (cell : Core.Cell.t) =
        String.length cell.Core.Cell.base.Cvar.vname > 2
        && String.sub cell.Core.Cell.base.Cvar.vname 0 2 = "$t"
      in
      if not (skip c) then
        Fmt.pr "  \"%s\" -> \"%s\";@." (Core.Cell.to_string c)
          (Core.Cell.to_string w));
  Fmt.pr "}@."

let print_dot_callgraph (r : Core.Analysis.result) =
  let q = Clients.Queries.of_result r in
  Fmt.pr "digraph call_graph {@.  node [shape=oval];@.";
  List.iter
    (fun (caller, callees) ->
      List.iter
        (fun callee ->
          match callee with
          | Clients.Queries.Static n ->
              Fmt.pr "  \"%s\" -> \"%s\";@." caller n
          | Clients.Queries.Resolved n ->
              Fmt.pr "  \"%s\" -> \"%s\" [style=dashed];@." caller n)
        callees)
    (Clients.Queries.call_graph q);
  Fmt.pr "}@."

let analyze_cmd spec strategy layout what var budget =
  let layout = layout_of_name layout in
  let diags = Diag.create () in
  let name, prog = compile_spec ~layout ~diags spec in
  let r =
    Core.Analysis.run ~layout ~budget
      ~strategy:(strategy_of_name strategy)
      prog
  in
  (match what with
  | "points-to" -> print_points_to r ~only_var:var
  | "metrics" -> print_metrics name r
  | "norm" -> Fmt.pr "%a" Nast.pp_program prog
  | "callgraph" -> print_callgraph r
  | "modref" -> print_modref r
  | "dot" -> print_dot r
  | "dot-callgraph" -> print_dot_callgraph r
  | w -> failwith (Printf.sprintf "unknown --print %s" w));
  report_diags diags;
  report_degradation r.Core.Analysis.degraded;
  exit_code ~diags ~degraded:(r.Core.Analysis.degraded <> [])

(* ------------------------------------------------------------------ *)
(* compare                                                             *)
(* ------------------------------------------------------------------ *)

let compare_cmd spec layout budget =
  let layout = layout_of_name layout in
  let diags = Diag.create () in
  let name, prog = compile_spec ~layout ~diags spec in
  Fmt.pr "%s: %d normalized statements@.@." name (Nast.stmt_count prog);
  Fmt.pr "%-24s %12s %10s %10s %10s@." "strategy" "avg-deref" "max" "edges"
    "time(s)";
  let all_events = ref [] in
  List.iter
    (fun s ->
      let r = Core.Analysis.run ~layout ~budget ~strategy:s prog in
      let m = r.Core.Analysis.metrics in
      all_events := !all_events @ r.Core.Analysis.degraded;
      Fmt.pr "%-24s %12.2f %10d %10d %10.4f%s@." m.Core.Metrics.strategy_name
        m.Core.Metrics.avg_deref_size m.Core.Metrics.max_deref_size
        m.Core.Metrics.total_edges r.Core.Analysis.time_s
        (if r.Core.Analysis.degraded <> [] then "  (degraded)" else ""))
    Core.Analysis.strategies;
  (* unification baselines for context *)
  List.iter
    (fun (flavor, label) ->
      let t = Steens.Steensgaard.run ~flavor prog in
      Fmt.pr "%-24s %12.2f %10s %10s %10.4f@." label
        (Steens.Steensgaard.avg_deref_size t)
        "-" "-" t.Steens.Steensgaard.time_s)
    [
      (Steens.Steensgaard.Collapsed, "steensgaard (collapsed)");
      (Steens.Steensgaard.Fields, "steensgaard (fields)");
    ];
  report_diags diags;
  report_degradation !all_events;
  exit_code ~diags ~degraded:(!all_events <> [])

(* ------------------------------------------------------------------ *)
(* corpus                                                              *)
(* ------------------------------------------------------------------ *)

let corpus_cmd () =
  Fmt.pr "%-10s %6s %6s  %s@." "name" "lines" "casts" "description";
  List.iter
    (fun p ->
      Fmt.pr "%-10s %6d %6s  %s@." p.Suite.name (Suite.line_count p)
        (if p.Suite.has_struct_cast then "yes" else "no")
        p.Suite.description)
    Suite.programs

(* ------------------------------------------------------------------ *)
(* Cmdliner plumbing                                                   *)
(* ------------------------------------------------------------------ *)

let spec_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE|PROGRAM" ~doc:"C source file or corpus program name.")

let strategy_arg =
  Arg.(
    value & opt string "cis"
    & info [ "s"; "strategy" ] ~docv:"ID"
        ~doc:
          "Analysis instance: collapse-always, collapse-on-cast, cis, or \
           offsets.")

let layout_arg =
  Arg.(
    value & opt string "ilp32"
    & info [ "l"; "layout" ] ~docv:"LAYOUT"
        ~doc:"Structure layout for the Offsets instance: ilp32, lp64, word16.")

let print_arg =
  Arg.(
    value & opt string "points-to"
    & info [ "p"; "print" ] ~docv:"WHAT"
        ~doc:
          "What to print: points-to, metrics, norm, callgraph, modref, dot \
           (graphviz points-to graph), or dot-callgraph.")

let var_arg =
  Arg.(
    value & opt (some string) None
    & info [ "var" ] ~docv:"NAME" ~doc:"Restrict points-to output to one variable.")

(* Budget flags; 0 disables the corresponding limit. Defaults come from
   Budget.default so every CLI run is bounded out of the box. *)

let default_steps =
  Option.value Core.Budget.default.Core.Budget.max_steps ~default:0

let default_timeout_ms =
  match Core.Budget.default.Core.Budget.timeout_s with
  | None -> 0
  | Some s -> int_of_float (s *. 1000.)

let default_obj_cells =
  Option.value Core.Budget.default.Core.Budget.max_cells_per_object ~default:0

let default_total_cells =
  Option.value Core.Budget.default.Core.Budget.max_total_cells ~default:0

let max_steps_arg =
  Arg.(
    value & opt int default_steps
    & info [ "max-steps" ] ~docv:"N"
        ~doc:
          "Solver step budget; past it, precision degrades (objects collapse \
           to single cells) instead of running on. 0 = unlimited.")

let timeout_ms_arg =
  Arg.(
    value & opt int default_timeout_ms
    & info [ "timeout-ms" ] ~docv:"MS"
        ~doc:
          "Wall-clock budget for the solve, in milliseconds; past it, \
           precision degrades. 0 = unlimited.")

let max_cells_per_object_arg =
  Arg.(
    value & opt int default_obj_cells
    & info [ "max-cells-per-object" ] ~docv:"N"
        ~doc:
          "Cell budget per object; an object tracked at finer granularity \
           than this collapses to one cell. 0 = unlimited.")

let max_total_cells_arg =
  Arg.(
    value & opt int default_total_cells
    & info [ "max-total-cells" ] ~docv:"N"
        ~doc:
          "Cell budget across all objects; past it, precision degrades. \
           0 = unlimited.")

let budget_term =
  Term.(
    const limits_of_flags $ max_steps_arg $ timeout_ms_arg
    $ max_cells_per_object_arg $ max_total_cells_arg)

(* [f] returns the exit code (0 ok, 1 diagnostics, 2 degraded); expected
   failures map to 1, anything escaping unexpectedly is an internal
   error: 3. *)
let wrap f =
  try f () with
  | Failure msg | Sys_error msg ->
      Fmt.epr "error: %s@." msg;
      1
  | Diag.Error p ->
      Fmt.epr "%a@." Diag.pp_payload p;
      1
  | e ->
      Fmt.epr "internal error: %s@." (Printexc.to_string e);
      3

let analyze_t =
  let run spec strategy layout what var budget =
    wrap (fun () -> analyze_cmd spec strategy layout what var budget)
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Analyze a C file with one framework instance.")
    Term.(
      const run $ spec_arg $ strategy_arg $ layout_arg $ print_arg $ var_arg
      $ budget_term)

let compare_t =
  let run spec layout budget = wrap (fun () -> compare_cmd spec layout budget) in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Run all framework instances (and unification baselines).")
    Term.(const run $ spec_arg $ layout_arg $ budget_term)

let corpus_t =
  let run () =
    wrap (fun () ->
        corpus_cmd ();
        0)
  in
  Cmd.v
    (Cmd.info "corpus" ~doc:"List the embedded benchmark corpus.")
    Term.(const run $ const ())

let main =
  Cmd.group
    (Cmd.info "structcast" ~version:"1.0.0"
       ~doc:
         "Tunable pointer analysis for C with structures and casting (Yong, \
          Horwitz & Reps, PLDI 1999).")
    [ analyze_t; compare_t; corpus_t ]

let () = exit (Cmd.eval' main)
