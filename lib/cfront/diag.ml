(** Diagnostics: structured front-end errors carrying a source location.

    Two reporting regimes coexist:

    - {!error} raises {!Error} immediately — the fatal escape hatch for
      conditions no phase can recover from (internal invariant breaks,
      unreadable input, the diagnostics cap).
    - A per-run accumulating context ({!ctx}): recoverable phases (the
      parser's resynchronization, the type checker's per-statement
      recovery) {!report} errors and {!warn} warnings into it and carry
      on, so one run surfaces {e all} of its diagnostics instead of dying
      on the first. A context is created per run ({!create}) — there is
      no global mutable state, so an aborted run cannot leak diagnostics
      into the next one.

    A context holds at most [max_diags] entries; one past the cap turns
    into a fatal {!error}, bounding pathological inputs. *)

type severity = Warning | Error_sev

type payload = { severity : severity; loc : Srcloc.t; message : string }

exception Error of payload

let pp_severity ppf = function
  | Warning -> Fmt.string ppf "warning"
  | Error_sev -> Fmt.string ppf "error"

let pp_payload ppf p =
  Fmt.pf ppf "%a: %a: %s" Srcloc.pp p.loc pp_severity p.severity p.message

let error ?(loc = Srcloc.dummy) fmt =
  Format.kasprintf
    (fun message -> raise (Error { severity = Error_sev; loc; message }))
    fmt

(* ------------------------------------------------------------------ *)
(* Accumulating per-run context                                        *)
(* ------------------------------------------------------------------ *)

type ctx = {
  mutable items : payload list;  (** newest first *)
  mutable n_errors : int;
  mutable n_warnings : int;
  max_diags : int;
}

let default_max_diags = 200

let create ?(max_diags = default_max_diags) () =
  { items = []; n_errors = 0; n_warnings = 0; max_diags }

let add ctx (p : payload) =
  if ctx.n_errors + ctx.n_warnings >= ctx.max_diags then
    error ~loc:p.loc "too many diagnostics (cap is %d); giving up"
      ctx.max_diags;
  (match p.severity with
  | Warning -> ctx.n_warnings <- ctx.n_warnings + 1
  | Error_sev -> ctx.n_errors <- ctx.n_errors + 1);
  ctx.items <- p :: ctx.items

let warn ctx ?(loc = Srcloc.dummy) fmt =
  Format.kasprintf
    (fun message -> add ctx { severity = Warning; loc; message })
    fmt

let report ctx ?(loc = Srcloc.dummy) fmt =
  Format.kasprintf
    (fun message -> add ctx { severity = Error_sev; loc; message })
    fmt

let diagnostics ctx = List.rev ctx.items

let errors ctx =
  List.rev (List.filter (fun p -> p.severity = Error_sev) ctx.items)

let warnings ctx =
  List.rev (List.filter (fun p -> p.severity = Warning) ctx.items)

let error_count ctx = ctx.n_errors

let warning_count ctx = ctx.n_warnings

let has_errors ctx = ctx.n_errors > 0

(** The first error recorded, oldest first — for drivers that recovered
    through a run but still need to fail it. *)
let first_error ctx : payload option =
  match errors ctx with p :: _ -> Some p | [] -> None

let protect ~(f : unit -> 'a) : ('a, payload) result =
  match f () with x -> Ok x | exception Error p -> Error p
