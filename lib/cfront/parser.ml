(** Hand-written recursive-descent parser for the C subset.

    The parser owns the typedef, struct/union-tag, and enum-constant tables
    because typedef names must be distinguished from ordinary identifiers
    during parsing (the classic C ambiguity). Ordinary declarations shadow
    typedef names through a scope stack.

    Output is an untyped {!Ast.tunit}; all type syntax is resolved to
    {!Ctype.t} on the way. Enum constants are folded to integer literals.
    Array sizes and other constant expressions are folded with a layout
    configuration (needed for [sizeof] in constant contexts).

    Error recovery: a syntax error does not abort the parse. The error is
    recorded in the run's {!Diag.ctx} and the parser resynchronizes — at
    the next [;] or block boundary inside a function body, at the next
    plausible top-level declaration otherwise — and continues, yielding a
    partial AST covering everything that did parse. *)

type state = {
  toks : Token.spanned array;
  mutable idx : int;
  layout : Layout.config;
  diags : Diag.ctx;
  typedefs : (string, Ctype.t) Hashtbl.t;
  tags : (string, Ctype.comp) Hashtbl.t;
  enum_consts : (string, int64) Hashtbl.t;
  mutable scopes : (string, unit) Hashtbl.t list;
      (** ordinary-identifier scopes, innermost first; shadow typedefs *)
  mutable anon_count : int;
}

let keywords =
  [
    "void"; "char"; "short"; "int"; "long"; "float"; "double"; "signed";
    "unsigned"; "struct"; "union"; "enum"; "typedef"; "static"; "extern";
    "register"; "auto"; "const"; "volatile"; "if"; "else"; "while"; "do";
    "for"; "return"; "break"; "continue"; "switch"; "case"; "default";
    "goto"; "sizeof";
  ]

let is_keyword s = List.mem s keywords

(* ------------------------------------------------------------------ *)
(* Cursor utilities                                                    *)
(* ------------------------------------------------------------------ *)

let cur st : Token.spanned =
  if st.idx < Array.length st.toks then st.toks.(st.idx)
  else { Token.tok = Token.Eof; loc = Srcloc.dummy; bol = true }

let peek st = (cur st).Token.tok

let peek_at st n =
  if st.idx + n < Array.length st.toks then st.toks.(st.idx + n).Token.tok
  else Token.Eof

let here st = (cur st).Token.loc

let bump st = st.idx <- st.idx + 1

let expect st tok =
  if peek st = tok then bump st
  else
    Diag.error ~loc:(here st) "expected %s but found %s" (Token.describe tok)
      (Token.describe (peek st))

let eat st tok = if peek st = tok then (bump st; true) else false

let expect_ident st : string =
  match peek st with
  | Token.Ident s when not (is_keyword s) ->
      bump st;
      s
  | t -> Diag.error ~loc:(here st) "expected identifier, found %s" (Token.describe t)

(* ------------------------------------------------------------------ *)
(* Error recovery                                                      *)
(* ------------------------------------------------------------------ *)

(** Skip to the token after the next [;] at brace depth 0, or stop just
    before the [}] that closes the enclosing block. Used to resume
    statement parsing after a syntax error. *)
let resync_stmt st =
  let rec go depth =
    match peek st with
    | Token.Eof -> ()
    | Token.Semi when depth = 0 -> bump st
    | Token.Rbrace when depth = 0 -> ()
    | Token.Lbrace ->
        bump st;
        go (depth + 1)
    | Token.Rbrace ->
        bump st;
        go (depth - 1)
    | _ ->
        bump st;
        go depth
  in
  go 0

(** Skip to a plausible top-level boundary: past the next [;] at depth 0,
    or past the [}] that closes the construct the error occurred in. *)
let resync_global st =
  let rec go depth =
    match peek st with
    | Token.Eof -> ()
    | Token.Semi when depth = 0 -> bump st
    | Token.Lbrace ->
        bump st;
        go (depth + 1)
    | Token.Rbrace ->
        bump st;
        if depth > 1 then go (depth - 1)
    | _ ->
        bump st;
        go depth
  in
  go 0

(** Run [f]; on a syntax error, record it, make progress past the error
    token, and resynchronize with [resync]. Returns [None] on error. *)
let recovering st ~resync (f : unit -> 'a) : 'a option =
  let before = st.idx in
  match f () with
  | x -> Some x
  | exception Diag.Error p ->
      Diag.add st.diags p;
      if st.idx = before && peek st <> Token.Eof then bump st;
      resync st;
      None

(* ------------------------------------------------------------------ *)
(* Scopes                                                              *)
(* ------------------------------------------------------------------ *)

let push_scope st = st.scopes <- Hashtbl.create 16 :: st.scopes

let pop_scope st =
  match st.scopes with
  | _ :: rest -> st.scopes <- rest
  | [] -> Diag.error "internal: scope underflow"

let declare_ordinary st name =
  match st.scopes with
  | tbl :: _ -> Hashtbl.replace tbl name ()
  | [] -> Diag.error "internal: no scope"

let is_shadowed st name =
  List.exists (fun tbl -> Hashtbl.mem tbl name) st.scopes

let is_typedef_name st name =
  Hashtbl.mem st.typedefs name && not (is_shadowed st name)

let enum_const st name =
  if is_shadowed st name then None
  else Hashtbl.find_opt st.enum_consts name

(* ------------------------------------------------------------------ *)
(* Type specifier parsing                                              *)
(* ------------------------------------------------------------------ *)

type storage = Snone | Stypedef | Sstatic | Sextern

let starts_type st : bool =
  match peek st with
  | Token.Ident s ->
      (match s with
      | "void" | "char" | "short" | "int" | "long" | "float" | "double"
      | "signed" | "unsigned" | "struct" | "union" | "enum" | "const"
      | "volatile" ->
          true
      | _ -> is_typedef_name st s)
  | _ -> false

let starts_decl st : bool =
  match peek st with
  | Token.Ident ("typedef" | "static" | "extern" | "register" | "auto") ->
      true
  | _ -> starts_type st

let fresh_anon st prefix =
  st.anon_count <- st.anon_count + 1;
  Printf.sprintf "<%s#%d>" prefix st.anon_count

(* forward declarations tied via references (parser is mutually recursive
   across expression / declaration syntax because of sizeof and casts) *)
let parse_assignment_ref :
    (state -> Ast.expr) ref =
  ref (fun _ -> assert false)

let parse_expr_ref : (state -> Ast.expr) ref = ref (fun _ -> assert false)

(* ------------------------------------------------------------------ *)
(* Constant expressions                                                *)
(* ------------------------------------------------------------------ *)

let rec eval_const st (e : Ast.expr) : int64 =
  let loc = e.Ast.eloc in
  match e.Ast.e with
  | Ast.Eint v -> v
  | Ast.Echar c -> Int64.of_int c
  | Ast.Eunary (Ast.Neg, a) -> Int64.neg (eval_const st a)
  | Ast.Eunary (Ast.Pos, a) -> eval_const st a
  | Ast.Eunary (Ast.Bitnot, a) -> Int64.lognot (eval_const st a)
  | Ast.Eunary (Ast.Lognot, a) ->
      if eval_const st a = 0L then 1L else 0L
  | Ast.Ebinary (op, a, b) -> (
      let x = eval_const st a and y = eval_const st b in
      let bool_ v = if v then 1L else 0L in
      match op with
      | Ast.Add -> Int64.add x y
      | Ast.Sub -> Int64.sub x y
      | Ast.Mul -> Int64.mul x y
      | Ast.Div ->
          if y = 0L then Diag.error ~loc "division by zero in constant"
          else Int64.div x y
      | Ast.Mod ->
          if y = 0L then Diag.error ~loc "modulo by zero in constant"
          else Int64.rem x y
      | Ast.Shl -> Int64.shift_left x (Int64.to_int y)
      | Ast.Shr -> Int64.shift_right x (Int64.to_int y)
      | Ast.Lt -> bool_ (x < y)
      | Ast.Gt -> bool_ (x > y)
      | Ast.Le -> bool_ (x <= y)
      | Ast.Ge -> bool_ (x >= y)
      | Ast.Eq -> bool_ (x = y)
      | Ast.Ne -> bool_ (x <> y)
      | Ast.Bitand -> Int64.logand x y
      | Ast.Bitor -> Int64.logor x y
      | Ast.Bitxor -> Int64.logxor x y
      | Ast.Logand -> bool_ (x <> 0L && y <> 0L)
      | Ast.Logor -> bool_ (x <> 0L || y <> 0L))
  | Ast.Econd (c, a, b) ->
      if eval_const st c <> 0L then eval_const st a else eval_const st b
  | Ast.Ecast (_, a) -> eval_const st a
  | Ast.Esizeof_type t -> Int64.of_int (Layout.size_of st.layout t)
  | Ast.Esizeof_expr _ ->
      Diag.error ~loc "sizeof(expression) is not supported in constants; use sizeof(type)"
  | _ -> Diag.error ~loc "expression is not constant: %s" (Ast.expr_to_string e)

(* Declarator syntax tree; interpreted against a base type. *)
type dtor =
  | Dname of string option
  | Dptr of dtor
  | Darr of dtor * int option
  | Dfun of dtor * (string * Ctype.t) list * bool

(* ------------------------------------------------------------------ *)
(* Declaration specifiers                                              *)
(* ------------------------------------------------------------------ *)

let rec parse_struct_spec st ~is_union : Ctype.t =
  (* 'struct'/'union' already consumed *)
  let tag =
    match peek st with
    | Token.Ident s when not (is_keyword s) ->
        bump st;
        Some s
    | _ -> None
  in
  let lookup_or_create tag =
    match Hashtbl.find_opt st.tags tag with
    | Some c when c.Ctype.cunion = is_union -> c
    | Some c ->
        Diag.error ~loc:(here st) "'%s' declared as both struct and union"
          c.Ctype.ctag
    | None ->
        let c = Ctype.fresh_comp ~tag ~is_union in
        Hashtbl.replace st.tags tag c;
        c
  in
  let comp =
    match tag with
    | Some tag -> lookup_or_create tag
    | None ->
        let tag = fresh_anon st (if is_union then "union" else "struct") in
        let c = Ctype.fresh_comp ~tag ~is_union in
        Hashtbl.replace st.tags tag c;
        c
  in
  if peek st = Token.Lbrace then begin
    bump st;
    if comp.Ctype.cfields <> None then
      Diag.error ~loc:(here st) "redefinition of '%s'" comp.Ctype.ctag;
    let fields = ref [] in
    while peek st <> Token.Rbrace do
      let _, base = parse_decl_specs st ~allow_storage:false in
      (* unnamed bit-field padding: "int : 3;" *)
      if peek st = Token.Colon then begin
        bump st;
        let w = eval_const st (!parse_assignment_ref st) in
        fields :=
          { Ctype.fname = fresh_anon st "pad"; fty = base;
            fbits = Some (Int64.to_int w) }
          :: !fields
      end
      else begin
        let rec one () =
          let name, ty = parse_declarator st base in
          let name =
            match name with
            | Some n -> n
            | None -> Diag.error ~loc:(here st) "field name expected"
          in
          let fbits =
            if eat st Token.Colon then
              Some (Int64.to_int (eval_const st (!parse_assignment_ref st)))
            else None
          in
          fields := { Ctype.fname = name; fty = ty; fbits } :: !fields;
          if eat st Token.Comma then one ()
        in
        one ()
      end;
      expect st Token.Semi
    done;
    expect st Token.Rbrace;
    comp.Ctype.cfields <- Some (List.rev !fields)
  end;
  Ctype.Comp comp

and parse_enum_spec st : Ctype.t =
  (* 'enum' already consumed *)
  (match peek st with
  | Token.Ident s when not (is_keyword s) -> bump st
  | _ -> ());
  if peek st = Token.Lbrace then begin
    bump st;
    let next = ref 0L in
    let rec enumerator () =
      match peek st with
      | Token.Rbrace -> ()
      | _ ->
          let name = expect_ident st in
          if eat st Token.Assign then
            next := eval_const st (!parse_assignment_ref st);
          Hashtbl.replace st.enum_consts name !next;
          next := Int64.add !next 1L;
          if eat st Token.Comma then enumerator ()
    in
    enumerator ();
    expect st Token.Rbrace
  end;
  (* enums are represented as int (compatible with int, per the paper's
     compatibility footnote) *)
  Ctype.int_t

(** Parse declaration specifiers. Returns storage class and base type.
    Qualifiers are parsed and dropped. *)
and parse_decl_specs st ~allow_storage : storage * Ctype.t =
  let storage = ref Snone in
  let set_storage s =
    if not allow_storage then
      Diag.error ~loc:(here st) "storage class not allowed here";
    if !storage <> Snone then
      Diag.error ~loc:(here st) "multiple storage classes";
    storage := s
  in
  (* accumulate base-type words *)
  let signedness = ref None in
  let base = ref None in
  let long_count = ref 0 in
  let set_base b =
    match !base with
    | None -> base := Some b
    | Some _ -> Diag.error ~loc:(here st) "multiple type specifiers"
  in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Token.Ident "typedef" -> bump st; set_storage Stypedef
    | Token.Ident "static" -> bump st; set_storage Sstatic
    | Token.Ident "extern" -> bump st; set_storage Sextern
    | Token.Ident ("register" | "auto" | "const" | "volatile") -> bump st
    | Token.Ident "void" -> bump st; set_base Ctype.Void
    | Token.Ident "char" -> bump st; set_base (Ctype.Int (Ctype.IChar, Ctype.Signed))
    | Token.Ident "short" -> bump st; set_base (Ctype.Int (Ctype.IShort, Ctype.Signed))
    | Token.Ident "int" ->
        bump st;
        if !base = None && !long_count = 0 then
          set_base (Ctype.Int (Ctype.IInt, Ctype.Signed))
        (* 'long int', 'short int', 'unsigned int': int is absorbed *)
    | Token.Ident "long" -> bump st; incr long_count
    | Token.Ident "float" -> bump st; set_base (Ctype.Float Ctype.FFloat)
    | Token.Ident "double" -> bump st; set_base (Ctype.Float Ctype.FDouble)
    | Token.Ident "signed" -> bump st; signedness := Some Ctype.Signed
    | Token.Ident "unsigned" -> bump st; signedness := Some Ctype.Unsigned
    | Token.Ident "struct" ->
        bump st;
        set_base (parse_struct_spec st ~is_union:false)
    | Token.Ident "union" ->
        bump st;
        set_base (parse_struct_spec st ~is_union:true)
    | Token.Ident "enum" ->
        bump st;
        set_base (parse_enum_spec st)
    | Token.Ident n
      when is_typedef_name st n && !base = None && !long_count = 0
           && !signedness = None ->
        bump st;
        set_base (Hashtbl.find st.typedefs n)
    | _ -> continue_ := false
  done;
  let ty =
    match (!base, !long_count, !signedness) with
    | Some (Ctype.Int (k, _)), lc, s ->
        let k =
          match (k, lc) with
          | k, 0 -> k
          | Ctype.IInt, 1 -> Ctype.ILong
          | Ctype.IInt, n when n >= 2 -> Ctype.ILongLong
          | k, _ ->
              ignore k;
              Diag.error ~loc:(here st) "invalid 'long' combination"
        in
        Ctype.Int (k, Option.value s ~default:Ctype.Signed)
    | Some (Ctype.Float Ctype.FDouble), lc, None when lc >= 1 ->
        Ctype.Float Ctype.FLongDouble
    | Some t, 0, None -> t
    | Some _, _, _ ->
        Diag.error ~loc:(here st) "invalid type specifier combination"
    | None, lc, s when lc > 0 || s <> None ->
        (* 'long'/'unsigned' alone imply int *)
        let k = if lc >= 2 then Ctype.ILongLong else if lc = 1 then Ctype.ILong else Ctype.IInt in
        Ctype.Int (k, Option.value s ~default:Ctype.Signed)
    | None, _, _ ->
        Diag.error ~loc:(here st) "expected type specifier, found %s"
          (Token.describe (peek st))
  in
  (!storage, ty)

(* ------------------------------------------------------------------ *)
(* Declarators                                                         *)
(* ------------------------------------------------------------------ *)

(* Declarator syntax tree; interpreted against a base type. *)
and parse_declarator st (base : Ctype.t) : string option * Ctype.t =
  let dtor = parse_dtor st in
  interp_dtor st base dtor

and parse_dtor st : dtor =
  if eat st Token.Star then begin
    (* skip qualifiers after '*' *)
    let rec skip_quals () =
      match peek st with
      | Token.Ident ("const" | "volatile") -> bump st; skip_quals ()
      | _ -> ()
    in
    skip_quals ();
    Dptr (parse_dtor st)
  end
  else parse_direct_dtor st

and parse_direct_dtor st : dtor =
  let core =
    match peek st with
    | Token.Ident n when not (is_keyword n) ->
        (* a typedef name in declarator position is a redeclaration that
           shadows the typedef (e.g. "typedef int T; ... int T;") *)
        bump st;
        Dname (Some n)
    | Token.Lparen
      when (match peek_at st 1 with
           | Token.Star -> true
           | Token.Lparen -> true
           | Token.Ident n ->
               (not (is_keyword n)) && not (is_typedef_name st n)
           | Token.Rparen -> false (* "()" is a parameter list *)
           | Token.Lbracket -> true
           | _ -> false) ->
        bump st;
        let inner = parse_dtor st in
        expect st Token.Rparen;
        inner
    | _ -> Dname None (* abstract declarator *)
  in
  parse_dtor_suffixes st core

and parse_dtor_suffixes st core : dtor =
  match peek st with
  | Token.Lbracket ->
      bump st;
      let n =
        if peek st = Token.Rbracket then None
        else Some (Int64.to_int (eval_const st (!parse_assignment_ref st)))
      in
      expect st Token.Rbracket;
      parse_dtor_suffixes st (Darr (core, n))
  | Token.Lparen ->
      bump st;
      let params, varargs = parse_param_list st in
      expect st Token.Rparen;
      parse_dtor_suffixes st (Dfun (core, params, varargs))
  | _ -> core

and parse_param_list st : (string * Ctype.t) list * bool =
  if peek st = Token.Rparen then ([], true) (* K&R empty parens: unknown args *)
  else if peek st = Token.Ident "void" && peek_at st 1 = Token.Rparen then begin
    bump st;
    ([], false)
  end
  else begin
    let params = ref [] in
    let varargs = ref false in
    let rec one () =
      if peek st = Token.Ellipsis then begin
        bump st;
        varargs := true
      end
      else begin
        let _, base = parse_decl_specs st ~allow_storage:false in
        let name, ty = parse_declarator st base in
        (* parameter adjustments: arrays and functions decay *)
        let ty =
          match ty with
          | Ctype.Array (t, _) -> Ctype.Ptr t
          | Ctype.Func _ -> Ctype.Ptr ty
          | t -> t
        in
        let name = Option.value name ~default:(fresh_anon st "param") in
        params := (name, ty) :: !params;
        if eat st Token.Comma then one ()
      end
    in
    one ();
    (List.rev !params, !varargs)
  end

and interp_dtor st (base : Ctype.t) (d : dtor) : string option * Ctype.t =
  match d with
  | Dname n -> (n, base)
  | Dptr d -> interp_dtor st (Ctype.Ptr base) d
  | Darr (d, n) ->
      if Ctype.is_func base then
        Diag.error ~loc:(here st) "array of functions is not a valid type";
      interp_dtor st (Ctype.Array (base, n)) d
  | Dfun (d, params, varargs) ->
      interp_dtor st (Ctype.Func { Ctype.ret = base; params; varargs }) d

and parse_type_name st : Ctype.t =
  let _, base = parse_decl_specs st ~allow_storage:false in
  let name, ty = parse_declarator st base in
  (match name with
  | Some n -> Diag.error ~loc:(here st) "unexpected identifier '%s' in type name" n
  | None -> ());
  ty

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let mk loc e : Ast.expr = { Ast.e; eloc = loc }

let rec parse_primary st : Ast.expr =
  let loc = here st in
  match peek st with
  | Token.Int_lit (v, _) ->
      bump st;
      mk loc (Ast.Eint v)
  | Token.Float_lit (f, _) ->
      bump st;
      mk loc (Ast.Efloat f)
  | Token.Char_lit c ->
      bump st;
      mk loc (Ast.Echar c)
  | Token.String_lit s ->
      bump st;
      (* adjacent string literals concatenate *)
      let buf = Buffer.create (String.length s) in
      Buffer.add_string buf s;
      let rec more () =
        match peek st with
        | Token.String_lit s2 ->
            bump st;
            Buffer.add_string buf s2;
            more ()
        | _ -> ()
      in
      more ();
      mk loc (Ast.Estr (Buffer.contents buf))
  | Token.Ident n when not (is_keyword n) -> (
      bump st;
      match enum_const st n with
      | Some v -> mk loc (Ast.Eint v)
      | None -> mk loc (Ast.Eident n))
  | Token.Lparen ->
      bump st;
      let e = !parse_expr_ref st in
      expect st Token.Rparen;
      e
  | t -> Diag.error ~loc "expected expression, found %s" (Token.describe t)

and parse_postfix st : Ast.expr =
  let e = ref (parse_primary st) in
  let rec go () =
    let loc = here st in
    match peek st with
    | Token.Lbracket ->
        bump st;
        let i = !parse_expr_ref st in
        expect st Token.Rbracket;
        e := mk loc (Ast.Eindex (!e, i));
        go ()
    | Token.Lparen ->
        bump st;
        let args = ref [] in
        if peek st <> Token.Rparen then begin
          let rec arg () =
            args := !parse_assignment_ref st :: !args;
            if eat st Token.Comma then arg ()
          in
          arg ()
        end;
        expect st Token.Rparen;
        e := mk loc (Ast.Ecall (!e, List.rev !args));
        go ()
    | Token.Dot ->
        bump st;
        let f = expect_ident st in
        e := mk loc (Ast.Efield (!e, f));
        go ()
    | Token.Arrow ->
        bump st;
        let f = expect_ident st in
        e := mk loc (Ast.Earrow (!e, f));
        go ()
    | Token.Plus_plus ->
        bump st;
        e := mk loc (Ast.Eunary (Ast.Postinc, !e));
        go ()
    | Token.Minus_minus ->
        bump st;
        e := mk loc (Ast.Eunary (Ast.Postdec, !e));
        go ()
    | _ -> ()
  in
  go ();
  !e

and parse_unary st : Ast.expr =
  let loc = here st in
  match peek st with
  | Token.Plus_plus ->
      bump st;
      mk loc (Ast.Eunary (Ast.Preinc, parse_unary st))
  | Token.Minus_minus ->
      bump st;
      mk loc (Ast.Eunary (Ast.Predec, parse_unary st))
  | Token.Amp ->
      bump st;
      mk loc (Ast.Eaddrof (parse_cast_expr st))
  | Token.Star ->
      bump st;
      mk loc (Ast.Ederef (parse_cast_expr st))
  | Token.Plus ->
      bump st;
      mk loc (Ast.Eunary (Ast.Pos, parse_cast_expr st))
  | Token.Minus ->
      bump st;
      mk loc (Ast.Eunary (Ast.Neg, parse_cast_expr st))
  | Token.Tilde ->
      bump st;
      mk loc (Ast.Eunary (Ast.Bitnot, parse_cast_expr st))
  | Token.Bang ->
      bump st;
      mk loc (Ast.Eunary (Ast.Lognot, parse_cast_expr st))
  | Token.Ident "sizeof" ->
      bump st;
      if
        peek st = Token.Lparen
        && (match peek_at st 1 with
           | Token.Ident n -> (
               match n with
               | "void" | "char" | "short" | "int" | "long" | "float"
               | "double" | "signed" | "unsigned" | "struct" | "union"
               | "enum" | "const" | "volatile" ->
                   true
               | _ -> is_typedef_name st n)
           | _ -> false)
      then begin
        bump st;
        let t = parse_type_name st in
        expect st Token.Rparen;
        mk loc (Ast.Esizeof_type t)
      end
      else mk loc (Ast.Esizeof_expr (parse_unary st))
  | _ -> parse_postfix st

and parse_cast_expr st : Ast.expr =
  let loc = here st in
  if
    peek st = Token.Lparen
    && (match peek_at st 1 with
       | Token.Ident n -> (
           match n with
           | "void" | "char" | "short" | "int" | "long" | "float" | "double"
           | "signed" | "unsigned" | "struct" | "union" | "enum" | "const"
           | "volatile" ->
               true
           | _ -> is_typedef_name st n)
       | _ -> false)
  then begin
    bump st;
    let t = parse_type_name st in
    expect st Token.Rparen;
    mk loc (Ast.Ecast (t, parse_cast_expr st))
  end
  else parse_unary st

and binop_prec (t : Token.t) : (int * Ast.binop) option =
  match t with
  | Token.Star -> Some (10, Ast.Mul)
  | Token.Slash -> Some (10, Ast.Div)
  | Token.Percent -> Some (10, Ast.Mod)
  | Token.Plus -> Some (9, Ast.Add)
  | Token.Minus -> Some (9, Ast.Sub)
  | Token.Shl -> Some (8, Ast.Shl)
  | Token.Shr -> Some (8, Ast.Shr)
  | Token.Lt -> Some (7, Ast.Lt)
  | Token.Gt -> Some (7, Ast.Gt)
  | Token.Le -> Some (7, Ast.Le)
  | Token.Ge -> Some (7, Ast.Ge)
  | Token.Eq_eq -> Some (6, Ast.Eq)
  | Token.Bang_eq -> Some (6, Ast.Ne)
  | Token.Amp -> Some (5, Ast.Bitand)
  | Token.Caret -> Some (4, Ast.Bitxor)
  | Token.Pipe -> Some (3, Ast.Bitor)
  | Token.Amp_amp -> Some (2, Ast.Logand)
  | Token.Pipe_pipe -> Some (1, Ast.Logor)
  | _ -> None

and parse_binary st min_prec : Ast.expr =
  let lhs = ref (parse_cast_expr st) in
  let rec loop () =
    match binop_prec (peek st) with
    | Some (p, op) when p >= min_prec ->
        let loc = here st in
        bump st;
        let rhs = parse_binary st (p + 1) in
        lhs := mk loc (Ast.Ebinary (op, !lhs, rhs));
        loop ()
    | _ -> ()
  in
  loop ();
  !lhs

and parse_conditional st : Ast.expr =
  let c = parse_binary st 1 in
  if peek st = Token.Question then begin
    let loc = here st in
    bump st;
    let a = !parse_expr_ref st in
    expect st Token.Colon;
    let b = parse_conditional st in
    mk loc (Ast.Econd (c, a, b))
  end
  else c

and parse_assignment st : Ast.expr =
  let lhs = parse_conditional st in
  let assign_op : Ast.binop option option =
    match peek st with
    | Token.Assign -> Some None
    | Token.Plus_assign -> Some (Some Ast.Add)
    | Token.Minus_assign -> Some (Some Ast.Sub)
    | Token.Star_assign -> Some (Some Ast.Mul)
    | Token.Slash_assign -> Some (Some Ast.Div)
    | Token.Percent_assign -> Some (Some Ast.Mod)
    | Token.Amp_assign -> Some (Some Ast.Bitand)
    | Token.Pipe_assign -> Some (Some Ast.Bitor)
    | Token.Caret_assign -> Some (Some Ast.Bitxor)
    | Token.Shl_assign -> Some (Some Ast.Shl)
    | Token.Shr_assign -> Some (Some Ast.Shr)
    | _ -> None
  in
  match assign_op with
  | Some op ->
      let loc = here st in
      bump st;
      let rhs = parse_assignment st in
      mk loc (Ast.Eassign (op, lhs, rhs))
  | None -> lhs

and parse_expr st : Ast.expr =
  let e = parse_assignment st in
  if peek st = Token.Comma then begin
    let loc = here st in
    bump st;
    let rest = parse_expr st in
    mk loc (Ast.Ecomma (e, rest))
  end
  else e

let () = parse_assignment_ref := parse_assignment
let () = parse_expr_ref := parse_expr

(* ------------------------------------------------------------------ *)
(* Initializers                                                        *)
(* ------------------------------------------------------------------ *)

let rec parse_init st : Ast.init =
  if peek st = Token.Lbrace then begin
    bump st;
    let items = ref [] in
    if peek st <> Token.Rbrace then begin
      let rec one () =
        items := parse_init st :: !items;
        if eat st Token.Comma && peek st <> Token.Rbrace then one ()
      in
      one ()
    end;
    expect st Token.Rbrace;
    Ast.Ilist (List.rev !items)
  end
  else Ast.Iexpr (parse_assignment st)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec parse_stmt st : Ast.stmt =
  let loc = here st in
  let mk s : Ast.stmt = { Ast.s; sloc = loc } in
  match peek st with
  | Token.Semi ->
      bump st;
      mk Ast.Snull
  | Token.Lbrace -> mk (Ast.Sblock (parse_block st))
  | Token.Ident "if" ->
      bump st;
      expect st Token.Lparen;
      let c = parse_expr st in
      expect st Token.Rparen;
      let then_ = parse_stmt st in
      let else_ =
        if peek st = Token.Ident "else" then begin
          bump st;
          Some (parse_stmt st)
        end
        else None
      in
      mk (Ast.Sif (c, then_, else_))
  | Token.Ident "while" ->
      bump st;
      expect st Token.Lparen;
      let c = parse_expr st in
      expect st Token.Rparen;
      mk (Ast.Swhile (c, parse_stmt st))
  | Token.Ident "do" ->
      bump st;
      let body = parse_stmt st in
      (match peek st with
      | Token.Ident "while" -> bump st
      | t -> Diag.error ~loc:(here st) "expected 'while', found %s" (Token.describe t));
      expect st Token.Lparen;
      let c = parse_expr st in
      expect st Token.Rparen;
      expect st Token.Semi;
      mk (Ast.Sdo (body, c))
  | Token.Ident "for" ->
      bump st;
      expect st Token.Lparen;
      push_scope st;
      let init =
        if peek st = Token.Semi then (bump st; None)
        else if starts_decl st then Some (parse_local_decl st)
        else begin
          let e = parse_expr st in
          expect st Token.Semi;
          Some { Ast.s = Ast.Sexpr e; sloc = loc }
        end
      in
      let cond = if peek st = Token.Semi then None else Some (parse_expr st) in
      expect st Token.Semi;
      let step = if peek st = Token.Rparen then None else Some (parse_expr st) in
      expect st Token.Rparen;
      let body = parse_stmt st in
      pop_scope st;
      mk (Ast.Sfor (init, cond, step, body))
  | Token.Ident "return" ->
      bump st;
      let e = if peek st = Token.Semi then None else Some (parse_expr st) in
      expect st Token.Semi;
      mk (Ast.Sreturn e)
  | Token.Ident "break" ->
      bump st;
      expect st Token.Semi;
      mk Ast.Sbreak
  | Token.Ident "continue" ->
      bump st;
      expect st Token.Semi;
      mk Ast.Scontinue
  | Token.Ident "switch" ->
      bump st;
      expect st Token.Lparen;
      let e = parse_expr st in
      expect st Token.Rparen;
      mk (Ast.Sswitch (e, parse_stmt st))
  | Token.Ident "case" ->
      bump st;
      let e = parse_conditional st in
      expect st Token.Colon;
      mk (Ast.Slabel (Ast.Lcase e, parse_stmt st))
  | Token.Ident "default" ->
      bump st;
      expect st Token.Colon;
      mk (Ast.Slabel (Ast.Ldefault, parse_stmt st))
  | Token.Ident "goto" ->
      bump st;
      let l = expect_ident st in
      expect st Token.Semi;
      mk (Ast.Sgoto l)
  | Token.Ident n
    when (not (is_keyword n))
         && (not (is_typedef_name st n))
         && peek_at st 1 = Token.Colon ->
      bump st;
      bump st;
      mk (Ast.Slabel (Ast.Lname n, parse_stmt st))
  | _ when starts_decl st -> parse_local_decl st
  | _ ->
      let e = parse_expr st in
      expect st Token.Semi;
      mk (Ast.Sexpr e)

and parse_block st : Ast.stmt list =
  expect st Token.Lbrace;
  push_scope st;
  let stmts = ref [] in
  while peek st <> Token.Rbrace && peek st <> Token.Eof do
    match recovering st ~resync:resync_stmt (fun () -> parse_stmt st) with
    | Some s -> stmts := s :: !stmts
    | None -> ()
  done;
  pop_scope st;
  expect st Token.Rbrace;
  List.rev !stmts

(** A local declaration statement (including the trailing ';'). *)
and parse_local_decl st : Ast.stmt =
  let loc = here st in
  let storage, base = parse_decl_specs st ~allow_storage:true in
  if storage = Stypedef then begin
    let rec one () =
      let name, ty = parse_declarator st base in
      (match name with
      | Some n -> Hashtbl.replace st.typedefs n ty
      | None -> Diag.error ~loc "typedef requires a name");
      if eat st Token.Comma then one ()
    in
    one ();
    expect st Token.Semi;
    { Ast.s = Ast.Snull; sloc = loc }
  end
  else begin
    let decls = ref [] in
    (* a bare "struct S;" or "struct S { ... };" declares only the tag *)
    if peek st = Token.Semi then begin
      bump st;
      { Ast.s = Ast.Snull; sloc = loc }
    end
    else begin
      let rec one () =
        let name, ty = parse_declarator st base in
        let name =
          match name with
          | Some n -> n
          | None -> Diag.error ~loc "declaration requires a name"
        in
        declare_ordinary st name;
        let dinit = if eat st Token.Assign then Some (parse_init st) else None in
        decls :=
          {
            Ast.dname = name;
            dty = ty;
            dinit;
            dloc = loc;
            dstatic = storage = Sstatic;
            dextern = storage = Sextern;
          }
          :: !decls;
        if eat st Token.Comma then one ()
      in
      one ();
      expect st Token.Semi;
      { Ast.s = Ast.Sdecl (List.rev !decls); sloc = loc }
    end
  end

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let parse_global st (acc : Ast.global list ref) : unit =
  let loc = here st in
  let storage, base = parse_decl_specs st ~allow_storage:true in
  if storage = Stypedef then begin
    let rec one () =
      let name, ty = parse_declarator st base in
      (match name with
      | Some n -> Hashtbl.replace st.typedefs n ty
      | None -> Diag.error ~loc "typedef requires a name");
      if eat st Token.Comma then one ()
    in
    one ();
    expect st Token.Semi
  end
  else if peek st = Token.Semi then
    (* pure type declaration: "struct S { ... };" *)
    bump st
  else begin
    let name, ty = parse_declarator st base in
    let name =
      match name with
      | Some n -> n
      | None -> Diag.error ~loc "declaration requires a name"
    in
    match ty with
    | Ctype.Func fty when peek st = Token.Lbrace ->
        (* function definition *)
        declare_ordinary st name;
        push_scope st;
        List.iter (fun (p, _) -> declare_ordinary st p) fty.Ctype.params;
        let body = parse_block st in
        pop_scope st;
        acc :=
          Ast.Gfun
            {
              Ast.fname = name;
              fty;
              fbody = body;
              floc = loc;
              fstatic = storage = Sstatic;
            }
          :: !acc
    | _ ->
        let rec one name ty =
          declare_ordinary st name;
          (match ty with
          | Ctype.Func _ -> acc := Ast.Gproto (name, ty, loc) :: !acc
          | _ ->
              let dinit =
                if eat st Token.Assign then Some (parse_init st) else None
              in
              acc :=
                Ast.Gvar
                  {
                    Ast.dname = name;
                    dty = ty;
                    dinit;
                    dloc = loc;
                    dstatic = storage = Sstatic;
                    dextern = storage = Sextern;
                  }
                :: !acc);
          if eat st Token.Comma then begin
            let name2, ty2 = parse_declarator st base in
            match name2 with
            | Some n -> one n ty2
            | None -> Diag.error ~loc "declaration requires a name"
          end
        in
        one name ty;
        expect st Token.Semi
  end

let create ?(layout = Layout.default) ~diags toks : state =
  {
    toks = Array.of_list toks;
    idx = 0;
    layout;
    diags;
    typedefs = Hashtbl.create 32;
    tags = Hashtbl.create 32;
    enum_consts = Hashtbl.create 32;
    scopes = [ Hashtbl.create 64 ];
    anon_count = 0;
  }

(** Parse a complete translation unit from preprocessed tokens.

    With [~diags], syntax errors are recorded there and the parser
    recovers, returning a partial AST. Without it, the first recorded
    error is re-raised after the parse — the historical fail-fast
    contract. *)
let parse_tokens ?layout ?diags (toks : Token.spanned list) : Ast.tunit =
  let d = match diags with Some d -> d | None -> Diag.create () in
  let st = create ?layout ~diags:d toks in
  let acc = ref [] in
  while peek st <> Token.Eof do
    match recovering st ~resync:resync_global (fun () -> parse_global st acc) with
    | Some () | None -> ()
  done;
  let tu = { Ast.globals = List.rev !acc } in
  (match (diags, Diag.first_error d) with
  | None, Some p -> raise (Diag.Error p)
  | _ -> ());
  tu

(** Convenience: preprocess and parse a source string. *)
let parse_string ?layout ?defines ?resolve ?diags ~file src : Ast.tunit =
  let toks = Preproc.run ?defines ?resolve ~file src in
  parse_tokens ?layout ?diags toks
