(** Diagnostics: structured front-end errors carrying a source location.

    {!error} raises {!Error} immediately (the fatal escape hatch);
    recoverable phases accumulate into a per-run {!ctx} with {!report} /
    {!warn} instead, so one run surfaces all of its diagnostics. There is
    no global diagnostic state: every run creates its own context. *)

type severity = Warning | Error_sev

type payload = { severity : severity; loc : Srcloc.t; message : string }

exception Error of payload

val pp_severity : Format.formatter -> severity -> unit

val pp_payload : Format.formatter -> payload -> unit

val error : ?loc:Srcloc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Error} with a formatted message. Never returns. *)

(** {1 Accumulating per-run context} *)

type ctx
(** Mutable accumulator of one run's diagnostics, capped at [max_diags]
    entries (adding one past the cap raises {!Error}). *)

val default_max_diags : int

val create : ?max_diags:int -> unit -> ctx

val add : ctx -> payload -> unit
(** Record a pre-built diagnostic (e.g. a caught {!Error} payload).
    @raise Error when the context is full. *)

val warn : ctx -> ?loc:Srcloc.t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Record a warning. *)

val report : ctx -> ?loc:Srcloc.t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Record an error-severity diagnostic {e without} raising — used by
    phases that recover and continue. *)

val diagnostics : ctx -> payload list
(** Everything recorded, oldest first. *)

val errors : ctx -> payload list

val warnings : ctx -> payload list

val error_count : ctx -> int

val warning_count : ctx -> int

val has_errors : ctx -> bool

val first_error : ctx -> payload option

val protect : f:(unit -> 'a) -> ('a, payload) result
(** Run [f], catching {!Error} as a [result]. *)
