(** Type checker: resolves identifiers to {!Cvar.t}, computes the C type
    of every expression, folds [sizeof], and rewrites arrow accesses into
    dereference + member selection.

    Deliberately permissive where the pointer analysis does not need
    strictness: its job is to assign the {e declared} types the framework's
    inference rules depend on, not to validate standard conformance. *)

val check :
  ?layout:Layout.config ->
  ?diags:Diag.ctx ->
  ?file:string ->
  Ast.tunit ->
  Tast.program
(** Type-check a parsed translation unit. Implicit function declarations
    produce warnings in the diagnostics context. With [~diags], check
    errors are recorded there and the offending statement or global is
    dropped (the rest of the program still checks); without it, the first
    error is raised as {!Diag.Error} after the pass. *)
