(** Hand-written recursive-descent parser for the C subset.

    The parser owns the typedef, struct/union-tag, and enum-constant
    tables (typedef names must be distinguished from ordinary identifiers
    during parsing); ordinary declarations shadow typedef names through a
    scope stack. Enum constants are folded to integer literals; array
    sizes and other constant expressions are folded using a layout
    configuration (needed for [sizeof] in constant contexts).

    Error recovery: with a diagnostics context supplied, syntax errors are
    recorded and the parser resynchronizes (at [;] / block boundaries
    inside bodies, at the next top-level declaration otherwise) and
    returns a partial AST covering what did parse. *)

val parse_tokens :
  ?layout:Layout.config -> ?diags:Diag.ctx -> Token.spanned list -> Ast.tunit
(** Parse a complete translation unit from preprocessed tokens. With
    [~diags], errors accumulate there and a partial AST is returned;
    without it, the first syntax error is raised as {!Diag.Error} after
    the parse completes (historical fail-fast contract). *)

val parse_string :
  ?layout:Layout.config ->
  ?defines:(string * string) list ->
  ?resolve:(string -> string option) ->
  ?diags:Diag.ctx ->
  file:string ->
  string ->
  Ast.tunit
(** Preprocess (see {!Preproc.run}) and parse a source string. Error
    behaviour as {!parse_tokens}; preprocessor and lexer failures are
    always fatal ({!Diag.Error}). *)
