(** Type checker: resolves identifiers to {!Cvar.t}, computes the C type of
    every expression, folds [sizeof], and rewrites [e->f] into [( *e).f].

    The checker is deliberately permissive where the analysis does not need
    strictness (e.g. integer conversion ranks are approximate): its job is
    to assign the {e declared} types the pointer analysis framework depends
    on, not to validate conformance. *)

type env = {
  layout : Layout.config;
  diags : Diag.ctx;
  globals : (string, Cvar.t) Hashtbl.t;  (** objects and functions *)
  mutable scopes : (string, Cvar.t) Hashtbl.t list;
  mutable current_fun : string;
  mutable implicit_externs : Cvar.t list;
}

let create_env layout diags =
  {
    layout;
    diags;
    globals = Hashtbl.create 64;
    scopes = [];
    current_fun = "";
    implicit_externs = [];
  }

let push_scope env = env.scopes <- Hashtbl.create 16 :: env.scopes

let pop_scope env =
  match env.scopes with
  | _ :: rest -> env.scopes <- rest
  | [] -> Diag.error "internal: typecheck scope underflow"

let bind_local env (v : Cvar.t) =
  match env.scopes with
  | tbl :: _ -> Hashtbl.replace tbl v.Cvar.vname v
  | [] -> Diag.error "internal: no local scope"

let lookup env name : Cvar.t option =
  let rec in_scopes = function
    | [] -> Hashtbl.find_opt env.globals name
    | tbl :: rest -> (
        match Hashtbl.find_opt tbl name with
        | Some v -> Some v
        | None -> in_scopes rest)
  in
  in_scopes env.scopes

(* ------------------------------------------------------------------ *)
(* Type algebra                                                        *)
(* ------------------------------------------------------------------ *)

let integer_rank = function
  | Ctype.IChar -> 1
  | Ctype.IShort -> 2
  | Ctype.IInt -> 3
  | Ctype.ILong -> 4
  | Ctype.ILongLong -> 5

(** Integer promotion: everything below int promotes to int. *)
let promote = function
  | Ctype.Int (k, _) when integer_rank k < integer_rank Ctype.IInt ->
      Ctype.int_t
  | t -> t

(** Usual arithmetic conversions (approximate, sufficient for analysis). *)
let usual_arith t1 t2 =
  match (t1, t2) with
  | Ctype.Float Ctype.FLongDouble, _ | _, Ctype.Float Ctype.FLongDouble ->
      Ctype.Float Ctype.FLongDouble
  | Ctype.Float Ctype.FDouble, _ | _, Ctype.Float Ctype.FDouble ->
      Ctype.double_t
  | Ctype.Float Ctype.FFloat, _ | _, Ctype.Float Ctype.FFloat -> Ctype.float_t
  | t1, t2 -> (
      match (promote t1, promote t2) with
      | Ctype.Int (k1, s1), Ctype.Int (k2, s2) ->
          let k = if integer_rank k1 >= integer_rank k2 then k1 else k2 in
          let s =
            if s1 = Ctype.Unsigned || s2 = Ctype.Unsigned then Ctype.Unsigned
            else Ctype.Signed
          in
          Ctype.Int (k, s)
      | a, _ -> a)

(** The type an expression takes when used as a value: arrays decay to
    pointers to their element, functions to function pointers. *)
let decay = function
  | Ctype.Array (t, _) -> Ctype.Ptr t
  | Ctype.Func _ as f -> Ctype.Ptr f
  | t -> t

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let mk ~loc ty node : Tast.texpr = { Tast.te = node; tty = ty; tloc = loc }

let rec check_expr env (e : Ast.expr) : Tast.texpr =
  let loc = e.Ast.eloc in
  match e.Ast.e with
  | Ast.Eint v -> mk ~loc Ctype.int_t (Tast.Tconst_int v)
  | Ast.Efloat f -> mk ~loc Ctype.double_t (Tast.Tconst_float f)
  | Ast.Echar c -> mk ~loc Ctype.int_t (Tast.Tconst_int (Int64.of_int c))
  | Ast.Estr s ->
      mk ~loc
        (Ctype.Array (Ctype.char_t, Some (String.length s + 1)))
        (Tast.Tconst_str s)
  | Ast.Eident n -> (
      match lookup env n with
      | Some v -> mk ~loc v.Cvar.vty (Tast.Tvar v)
      | None -> Diag.error ~loc "undeclared identifier '%s'" n)
  | Ast.Eunary (((Ast.Preinc | Ast.Predec | Ast.Postinc | Ast.Postdec) as op), a)
    ->
      let a' = check_expr env a in
      mk ~loc (decay a'.Tast.tty) (Tast.Tunary (op, a'))
  | Ast.Eunary (Ast.Lognot, a) ->
      let a' = check_expr env a in
      mk ~loc Ctype.int_t (Tast.Tunary (Ast.Lognot, a'))
  | Ast.Eunary (((Ast.Neg | Ast.Pos | Ast.Bitnot) as op), a) ->
      let a' = check_expr env a in
      mk ~loc (promote (decay a'.Tast.tty)) (Tast.Tunary (op, a'))
  | Ast.Ebinary (op, a, b) -> check_binary env ~loc op a b
  | Ast.Eassign (op, l, r) ->
      let l' = check_expr env l in
      let r' = check_expr env r in
      mk ~loc (decay l'.Tast.tty) (Tast.Tassign (op, l', r'))
  | Ast.Econd (c, a, b) ->
      let c' = check_expr env c in
      let a' = check_expr env a in
      let b' = check_expr env b in
      let ta = decay a'.Tast.tty and tb = decay b'.Tast.tty in
      let ty =
        if Ctype.is_arith ta && Ctype.is_arith tb then usual_arith ta tb
        else if Ctype.is_ptr ta && not (Ctype.is_ptr tb) then ta
        else if Ctype.is_ptr tb && not (Ctype.is_ptr ta) then tb
        else if Ctype.is_void ta then tb
        else ta
      in
      mk ~loc ty (Tast.Tcond (c', a', b'))
  | Ast.Ecomma (a, b) ->
      let a' = check_expr env a in
      let b' = check_expr env b in
      mk ~loc (decay b'.Tast.tty) (Tast.Tcomma (a', b'))
  | Ast.Ecast (t, a) ->
      let a' = check_expr env a in
      mk ~loc t (Tast.Tcast (t, a'))
  | Ast.Esizeof_expr a ->
      let a' = check_expr env a in
      mk ~loc Ctype.ulong_t
        (Tast.Tconst_int (Int64.of_int (Layout.size_of env.layout a'.Tast.tty)))
  | Ast.Esizeof_type t ->
      mk ~loc Ctype.ulong_t
        (Tast.Tconst_int (Int64.of_int (Layout.size_of env.layout t)))
  | Ast.Ecall (f, args) -> check_call env ~loc f args
  | Ast.Eindex (a, i) ->
      let a' = check_expr env a in
      let i' = check_expr env i in
      (* support both a[i] and i[a] *)
      let arr, idx =
        if
          Ctype.is_array a'.Tast.tty
          || Ctype.is_ptr (decay a'.Tast.tty)
        then (a', i')
        else (i', a')
      in
      let elem =
        match arr.Tast.tty with
        | Ctype.Array (t, _) -> t
        | Ctype.Ptr t -> t
        | t ->
            Diag.error ~loc "subscript of non-pointer type %s"
              (Ctype.to_string t)
      in
      mk ~loc elem (Tast.Tindex (arr, idx))
  | Ast.Efield (a, f) ->
      let a' = check_expr env a in
      let fty = field_type ~loc a'.Tast.tty f in
      mk ~loc fty (Tast.Tfield (a', f))
  | Ast.Earrow (a, f) ->
      let a' = check_expr env a in
      let pointee =
        match decay a'.Tast.tty with
        | Ctype.Ptr t -> t
        | t ->
            Diag.error ~loc "'->' on non-pointer type %s" (Ctype.to_string t)
      in
      let fty = field_type ~loc pointee f in
      let deref = mk ~loc:a'.Tast.tloc pointee (Tast.Tderef a') in
      mk ~loc fty (Tast.Tfield (deref, f))
  | Ast.Ederef a -> (
      let a' = check_expr env a in
      match decay a'.Tast.tty with
      | Ctype.Ptr (Ctype.Func _ as ft) ->
          (* *fnptr is the function again *)
          mk ~loc ft (Tast.Tderef a')
      | Ctype.Ptr t -> mk ~loc t (Tast.Tderef a')
      | t -> Diag.error ~loc "dereference of non-pointer type %s" (Ctype.to_string t))
  | Ast.Eaddrof a ->
      let a' = check_expr env a in
      mk ~loc (Ctype.Ptr a'.Tast.tty) (Tast.Taddrof a')

and field_type ~loc ty f : Ctype.t =
  let base = Ctype.strip_arrays ty in
  if not (Ctype.is_comp base) then
    Diag.error ~loc "member access '.%s' on non-struct type %s" f
      (Ctype.to_string ty);
  match Ctype.find_field base f with
  | Some fld -> fld.Ctype.fty
  | None -> Diag.error ~loc "no member '%s' in %s" f (Ctype.to_string base)

and check_binary env ~loc op a b : Tast.texpr =
  let a' = check_expr env a in
  let b' = check_expr env b in
  let ta = decay a'.Tast.tty and tb = decay b'.Tast.tty in
  let ty =
    match op with
    | Ast.Add ->
        if Ctype.is_ptr ta then ta
        else if Ctype.is_ptr tb then tb
        else usual_arith ta tb
    | Ast.Sub ->
        if Ctype.is_ptr ta && Ctype.is_ptr tb then Ctype.long_t
        else if Ctype.is_ptr ta then ta
        else usual_arith ta tb
    | Ast.Mul | Ast.Div | Ast.Mod | Ast.Bitand | Ast.Bitor | Ast.Bitxor ->
        usual_arith ta tb
    | Ast.Shl | Ast.Shr -> promote ta
    | Ast.Lt | Ast.Gt | Ast.Le | Ast.Ge | Ast.Eq | Ast.Ne | Ast.Logand
    | Ast.Logor ->
        Ctype.int_t
  in
  mk ~loc ty (Tast.Tbinary (op, a', b'))

and check_call env ~loc f args : Tast.texpr =
  let f' =
    match f.Ast.e with
    | Ast.Eident n -> (
        match lookup env n with
        | Some v -> mk ~loc:f.Ast.eloc v.Cvar.vty (Tast.Tvar v)
        | None ->
            (* implicit declaration: int n(...) *)
            Diag.warn env.diags ~loc "implicit declaration of function '%s'" n;
            let fty =
              Ctype.Func { Ctype.ret = Ctype.int_t; params = []; varargs = true }
            in
            let v = Cvar.fresh ~name:n ~ty:fty ~kind:(Cvar.Funval n) in
            Hashtbl.replace env.globals n v;
            env.implicit_externs <- v :: env.implicit_externs;
            mk ~loc:f.Ast.eloc fty (Tast.Tvar v))
    | _ -> check_expr env f
  in
  let ret =
    match decay f'.Tast.tty with
    | Ctype.Ptr (Ctype.Func { Ctype.ret; _ }) -> ret
    | Ctype.Func { Ctype.ret; _ } -> ret
    | t -> Diag.error ~loc "call of non-function type %s" (Ctype.to_string t)
  in
  let args' = List.map (check_expr env) args in
  mk ~loc ret (Tast.Tcall (f', args'))

(* ------------------------------------------------------------------ *)
(* Initializers, statements, declarations                              *)
(* ------------------------------------------------------------------ *)

let rec check_init env (i : Ast.init) : Tast.tinit =
  match i with
  | Ast.Iexpr e -> Tast.Tiexpr (check_expr env e)
  | Ast.Ilist is -> Tast.Tilist (List.map (check_init env) is)

let check_decl env ~local (d : Ast.decl) : Tast.tdecl =
  let kind =
    if local then Cvar.Local env.current_fun else Cvar.Global
  in
  let v =
    if local then Cvar.fresh ~name:d.Ast.dname ~ty:d.Ast.dty ~kind
    else
      (* reuse tentative global definitions / extern declarations *)
      match Hashtbl.find_opt env.globals d.Ast.dname with
      | Some v when Ctype.equal v.Cvar.vty d.Ast.dty -> v
      | Some v
        when Ctype.compatible v.Cvar.vty d.Ast.dty
             || Ctype.is_array v.Cvar.vty || Ctype.is_array d.Ast.dty ->
          v (* e.g. extern char a[]; then char a[10]; *)
      | Some v ->
          Diag.error ~loc:d.Ast.dloc
            "conflicting types for '%s' (%s vs %s)" d.Ast.dname
            (Ctype.to_string v.Cvar.vty)
            (Ctype.to_string d.Ast.dty)
      | None -> Cvar.fresh ~name:d.Ast.dname ~ty:d.Ast.dty ~kind
  in
  if local then bind_local env v else Hashtbl.replace env.globals d.Ast.dname v;
  let dinit = Option.map (check_init env) d.Ast.dinit in
  { Tast.dvar = v; dinit; dloc = d.Ast.dloc }

let rec check_stmt env (s : Ast.stmt) : Tast.tstmt =
  let loc = s.Ast.sloc in
  let mk ts : Tast.tstmt = { Tast.ts; tsloc = loc } in
  match s.Ast.s with
  | Ast.Sexpr e -> mk (Tast.TSexpr (check_expr env e))
  | Ast.Sdecl ds -> mk (Tast.TSdecl (List.map (check_decl env ~local:true) ds))
  | Ast.Sblock ss ->
      push_scope env;
      let ss' = List.map (check_stmt env) ss in
      pop_scope env;
      mk (Tast.TSblock ss')
  | Ast.Sif (c, t, e) ->
      mk
        (Tast.TSif
           ( check_expr env c,
             check_stmt env t,
             Option.map (check_stmt env) e ))
  | Ast.Swhile (c, b) -> mk (Tast.TSwhile (check_expr env c, check_stmt env b))
  | Ast.Sdo (b, c) -> mk (Tast.TSdo (check_stmt env b, check_expr env c))
  | Ast.Sfor (i, c, st, b) ->
      push_scope env;
      let i' = Option.map (check_stmt env) i in
      let c' = Option.map (check_expr env) c in
      let st' = Option.map (check_expr env) st in
      let b' = check_stmt env b in
      pop_scope env;
      mk (Tast.TSfor (i', c', st', b'))
  | Ast.Sreturn e -> mk (Tast.TSreturn (Option.map (check_expr env) e))
  | Ast.Sbreak -> mk Tast.TSbreak
  | Ast.Scontinue -> mk Tast.TScontinue
  | Ast.Sswitch (e, b) -> mk (Tast.TSswitch (check_expr env e, check_stmt env b))
  | Ast.Slabel (l, b) ->
      let l' =
        match l with
        | Ast.Lcase e -> (
            let e' = check_expr env e in
            match e'.Tast.te with
            | Tast.Tconst_int v -> Tast.TLcase v
            | _ ->
                (* non-constant case values are tolerated: the analysis is
                   flow-insensitive, so the value is irrelevant *)
                Tast.TLcase 0L)
        | Ast.Ldefault -> Tast.TLdefault
        | Ast.Lname n -> Tast.TLname n
      in
      mk (Tast.TSlabel (l', check_stmt env b))
  | Ast.Sgoto l -> mk (Tast.TSgoto l)
  | Ast.Snull -> mk Tast.TSnull

(* ------------------------------------------------------------------ *)
(* Translation unit                                                    *)
(* ------------------------------------------------------------------ *)

let declare_function env name ty : Cvar.t =
  match Hashtbl.find_opt env.globals name with
  | Some v -> v
  | None ->
      let v = Cvar.fresh ~name ~ty ~kind:(Cvar.Funval name) in
      Hashtbl.replace env.globals name v;
      v

let check_fun env (f : Ast.fundef) : Tast.tfun =
  let fty = f.Ast.fty in
  let fvar = declare_function env f.Ast.fname (Ctype.Func fty) in
  env.current_fun <- f.Ast.fname;
  push_scope env;
  let fparams =
    List.map
      (fun (pn, pt) ->
        let v = Cvar.fresh ~name:pn ~ty:pt ~kind:(Cvar.Param f.Ast.fname) in
        bind_local env v;
        v)
      fty.Ctype.params
  in
  let fret =
    if Ctype.is_void fty.Ctype.ret then None
    else
      Some
        (Cvar.fresh ~name:"$ret" ~ty:fty.Ctype.ret ~kind:(Cvar.Ret f.Ast.fname))
  in
  let fvararg =
    if fty.Ctype.varargs then
      Some
        (Cvar.fresh ~name:"$varargs" ~ty:(Ctype.Ptr Ctype.Void)
           ~kind:(Cvar.Vararg f.Ast.fname))
    else None
  in
  (* per-statement recovery: a statement that fails to check is recorded
     and dropped; the rest of the function (and program) still checks, so
     analysis proceeds on every valid function *)
  let scope_depth = List.length env.scopes in
  let fbody =
    List.filter_map
      (fun s ->
        match check_stmt env s with
        | s' -> Some s'
        | exception Diag.Error p ->
            Diag.add env.diags p;
            (* unwind scopes the failed statement left open *)
            while List.length env.scopes > scope_depth do
              pop_scope env
            done;
            None)
      f.Ast.fbody
  in
  pop_scope env;
  env.current_fun <- "";
  { Tast.ffvar = fvar; fparams; fret; fvararg; fbody; ffloc = f.Ast.floc }

(** Type-check a parsed translation unit.

    With [~diags], check errors are recorded there and the offending
    statement/declaration is dropped (recovery); without it, the first
    recorded error is re-raised at the end — the historical fail-fast
    contract. *)
let check ?(layout = Layout.default) ?diags ?(file = "<input>")
    (tu : Ast.tunit) : Tast.program =
  let d = match diags with Some d -> d | None -> Diag.create () in
  let env = create_env layout d in
  (* pass 1: declare all functions and globals so bodies can refer to
     later definitions *)
  List.iter
    (fun g ->
      match g with
      | Ast.Gfun f -> ignore (declare_function env f.Ast.fname (Ctype.Func f.Ast.fty))
      | Ast.Gproto (n, t, _) -> ignore (declare_function env n t)
      | Ast.Gvar d ->
          if not (Hashtbl.mem env.globals d.Ast.dname) then
            Hashtbl.replace env.globals d.Ast.dname
              (Cvar.fresh ~name:d.Ast.dname ~ty:d.Ast.dty ~kind:Cvar.Global))
    tu.Ast.globals;
  (* pass 2: check bodies and initializers in order; a global that fails
     is recorded and dropped so the rest of the unit still checks *)
  let globals = ref [] in
  let funcs = ref [] in
  List.iter
    (fun g ->
      try
        match g with
        | Ast.Gvar d -> globals := check_decl env ~local:false d :: !globals
        | Ast.Gfun f -> funcs := check_fun env f :: !funcs
        | Ast.Gproto _ -> ()
      with Diag.Error p -> Diag.add env.diags p)
    tu.Ast.globals;
  let funcs = List.rev !funcs in
  let defined = List.map (fun f -> f.Tast.ffvar.Cvar.vname) funcs in
  let pexterns =
    Hashtbl.fold
      (fun _ v acc ->
        match v.Cvar.vkind with
        | Cvar.Funval n when not (List.mem n defined) -> v :: acc
        | _ -> acc)
      env.globals []
  in
  let prog =
    {
      Tast.pglobals = List.rev !globals;
      pfuncs = funcs;
      pexterns;
      pfile = file;
    }
  in
  (match (diags, Diag.first_error d) with
  | None, Some p -> raise (Diag.Error p)
  | _ -> ());
  prog
