(** Client-analysis queries over a solved points-to graph — the
    "subsequent static analysis phases" whose precision the paper's
    introduction ties to pointer-analysis precision: alias queries, call
    graphs with resolved function pointers, and MOD/REF side-effect sets.

    All queries are strategy-agnostic: they go through the solver's own
    strategy for normalization and expansion. *)

open Cfront
open Norm

type t = {
  solver : Core.Solver.t;
  strategy : (module Core.Strategy.S);
  mutable indexed_prog : Nast.program;
      (** the program [var_index] was built from. [Solver.prog] is
          mutable ([Incr.Engine.reanalyze] swaps it in place), so lookups
          compare physical identity and rebuild the index on mismatch. *)
  mutable var_index : (string, Cvar.t) Hashtbl.t;
      (** plain and qualified name → variable, first binding wins — so a
          lookup matches what a scan of [pall_vars] in order would find *)
}

let build_index (p : Nast.program) : (string, Cvar.t) Hashtbl.t =
  let var_index = Hashtbl.create 256 in
  let bind name v =
    if not (Hashtbl.mem var_index name) then Hashtbl.add var_index name v
  in
  List.iter
    (fun v ->
      bind v.Cvar.vname v;
      bind (Cvar.qualified_name v) v)
    p.Nast.pall_vars;
  var_index

let of_solver (solver : Core.Solver.t) : t =
  let p = solver.Core.Solver.prog in
  {
    solver;
    strategy = solver.Core.Solver.strategy;
    indexed_prog = p;
    var_index = build_index p;
  }

let of_result (r : Core.Analysis.result) : t = of_solver r.Core.Analysis.solver

let prog (q : t) : Nast.program = q.solver.Core.Solver.prog

let find_var (q : t) (name : string) : Cvar.t option =
  let p = q.solver.Core.Solver.prog in
  if p != q.indexed_prog then begin
    q.var_index <- build_index p;
    q.indexed_prog <- p
  end;
  Hashtbl.find_opt q.var_index name

(* ------------------------------------------------------------------ *)
(* Points-to and alias queries                                         *)
(* ------------------------------------------------------------------ *)

(** Points-to set of a variable's own (whole) cell. *)
let points_to (q : t) (v : Cvar.t) : Core.Cell.Set.t =
  let module S = (val q.strategy : Core.Strategy.S) in
  Core.Graph.pts q.solver.Core.Solver.graph
    (S.normalize q.solver.Core.Solver.ctx v [])

(** Expanded (metric-comparable) points-to set. *)
let points_to_expanded (q : t) (v : Cvar.t) : Core.Cell.Set.t =
  Core.Metrics.expanded_pts q.solver v

(** May the two pointers refer to overlapping storage? Conservative: true
    whenever the expanded target sets intersect. *)
let may_alias (q : t) (a : Cvar.t) (b : Cvar.t) : bool =
  let pa = points_to_expanded q a and pb = points_to_expanded q b in
  not (Core.Cell.Set.is_empty (Core.Cell.Set.inter pa pb))

(** May the pointer refer to [obj] (any cell of it)? *)
let may_point_into (q : t) (p : Cvar.t) (obj : Cvar.t) : bool =
  Core.Cell.Set.exists
    (fun (c : Core.Cell.t) -> Cvar.equal c.Core.Cell.base obj)
    (points_to_expanded q p)

(* ------------------------------------------------------------------ *)
(* Call graph                                                          *)
(* ------------------------------------------------------------------ *)

type callee = Static of string | Resolved of string  (** via fn pointer *)

let callee_name = function Static n | Resolved n -> n

(** Possible callees of one call statement. *)
let callees_of (q : t) (call : Nast.call) : callee list =
  match call.Nast.cfn with
  | Nast.Direct n -> [ Static n ]
  | Nast.Indirect fp ->
      points_to q fp
      |> Core.Cell.Set.elements
      |> List.filter_map (fun (c : Core.Cell.t) ->
             match c.Core.Cell.base.Cvar.vkind with
             | Cvar.Funval n -> Some (Resolved n)
             | _ -> None)

(** The whole-program call graph: for each defined function, the set of
    possible callees (with indirect calls resolved through the points-to
    results), sorted and deduplicated. *)
let call_graph (q : t) : (string * callee list) list =
  List.map
    (fun (f : Nast.func) ->
      let cs =
        List.concat_map
          (fun (s : Nast.stmt) ->
            match s.Nast.kind with
            | Nast.Call call -> callees_of q call
            | _ -> [])
          f.Nast.fstmts
        |> List.sort_uniq compare
      in
      (f.Nast.fname, cs))
    (prog q).Nast.pfuncs

(** Functions transitively reachable from an entry point. *)
let reachable_from (q : t) (entry : string) : string list =
  let cg = call_graph q in
  let visited = Hashtbl.create 16 in
  let rec go name =
    if not (Hashtbl.mem visited name) then begin
      Hashtbl.replace visited name ();
      match List.assoc_opt name cg with
      | Some cs -> List.iter (fun c -> go (callee_name c)) cs
      | None -> ()
    end
  in
  go entry;
  Hashtbl.fold (fun n () acc -> n :: acc) visited [] |> List.sort compare

(* ------------------------------------------------------------------ *)
(* MOD / REF side-effect sets                                          *)
(* ------------------------------------------------------------------ *)

(** Cells a function may write through pointers (its direct MOD set —
    indirect writes only; direct assignments to its own locals are not
    side effects in the usual sense). *)
let mod_set (q : t) (f : Nast.func) : Core.Cell.Set.t =
  let module S = (val q.strategy : Core.Strategy.S) in
  List.fold_left
    (fun acc (s : Nast.stmt) ->
      match s.Nast.kind with
      | Nast.Store (p, _) ->
          Core.Cell.Set.union acc
            (Core.Graph.pts q.solver.Core.Solver.graph
               (S.normalize q.solver.Core.Solver.ctx p []))
      | _ -> acc)
    Core.Cell.Set.empty f.Nast.fstmts

(** Cells a function may read through pointers (its direct REF set). *)
let ref_set (q : t) (f : Nast.func) : Core.Cell.Set.t =
  let module S = (val q.strategy : Core.Strategy.S) in
  let pts_of v =
    Core.Graph.pts q.solver.Core.Solver.graph
      (S.normalize q.solver.Core.Solver.ctx v [])
  in
  List.fold_left
    (fun acc (s : Nast.stmt) ->
      match s.Nast.kind with
      | Nast.Load (_, p) | Nast.Addr_deref (_, p, _) ->
          Core.Cell.Set.union acc (pts_of p)
      | _ -> acc)
    Core.Cell.Set.empty f.Nast.fstmts

(** Transitive MOD: a function's own MOD plus that of everything it may
    call (through the resolved call graph). *)
let mod_set_transitive (q : t) (fname : string) : Core.Cell.Set.t =
  let p = prog q in
  List.fold_left
    (fun acc name ->
      match Nast.func_by_name p name with
      | Some f -> Core.Cell.Set.union acc (mod_set q f)
      | None -> acc)
    Core.Cell.Set.empty
    (reachable_from q fname)

(* ------------------------------------------------------------------ *)
(* Presentation helpers                                                *)
(* ------------------------------------------------------------------ *)

let cell_set_to_strings (s : Core.Cell.Set.t) : string list =
  Core.Cell.Set.elements s |> List.map Core.Cell.to_string

let pp_callee ppf = function
  | Static n -> Fmt.string ppf n
  | Resolved n -> Fmt.pf ppf "%s (indirect)" n
