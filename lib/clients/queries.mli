(** Client-analysis queries over a solved points-to graph — the
    "subsequent static analysis phases" whose precision the paper's
    introduction ties to pointer-analysis precision. *)

open Cfront
open Norm

type t

val of_solver : Core.Solver.t -> t

val of_result : Core.Analysis.result -> t

val prog : t -> Nast.program

val find_var : t -> string -> Cvar.t option
(** Look a variable up by bare or qualified ("f::x") name. Stays in
    sync with the solver's program across in-place warm re-analyses
    ([Incr.Engine.reanalyze]): the name index is rebuilt when the
    program changes. *)

(** {1 Alias queries} *)

val points_to : t -> Cvar.t -> Core.Cell.Set.t

val points_to_expanded : t -> Cvar.t -> Core.Cell.Set.t

val may_alias : t -> Cvar.t -> Cvar.t -> bool
(** May the two pointers refer to overlapping storage? Conservative. *)

val may_point_into : t -> Cvar.t -> Cvar.t -> bool

(** {1 Call graph} *)

type callee = Static of string | Resolved of string  (** via fn pointer *)

val callee_name : callee -> string

val callees_of : t -> Nast.call -> callee list

val call_graph : t -> (string * callee list) list
(** Per defined function, the possible callees with indirect calls
    resolved through the points-to results. *)

val reachable_from : t -> string -> string list

(** {1 Side effects} *)

val mod_set : t -> Nast.func -> Core.Cell.Set.t
(** Cells the function may write through pointers (direct only). *)

val ref_set : t -> Nast.func -> Core.Cell.Set.t
(** Cells the function may read through pointers (direct only). *)

val mod_set_transitive : t -> string -> Core.Cell.Set.t
(** MOD of the function and everything it may (transitively) call. *)

(** {1 Presentation} *)

val cell_set_to_strings : Core.Cell.Set.t -> string list

val pp_callee : Format.formatter -> callee -> unit
