(** Crash-contained job supervisor: a pool of forked workers, a retry
    ladder, a circuit breaker, and the crash-safe journal.

    One pathological job can never take down the process or lose the
    batch:

    - each job runs in a forked worker; a segfault, OOM-kill, unexpected
      exit, or uncaught hang is contained to that process — the
      supervisor reaps it, records the failure, respawns the slot, and
      carries on;
    - a job running past [job_timeout_s] is SIGKILLed and treated as a
      hang;
    - failed jobs are retried with exponential backoff plus
      deterministic jitter, escalating one degradation rung per attempt
      ({!Job.rung_of_attempt}), up to [max_attempts];
    - a job out of attempts is {e quarantined}, which also opens a
      per-input circuit breaker: later jobs on the same input fail fast
      instead of burning attempts;
    - with a [journal_path], every transition is fsync'd to disk before
      the supervisor proceeds; [resume = true] replays finished jobs
      byte-for-byte and re-runs only unfinished ones, so [kill -9] of
      the supervisor mid-batch loses nothing.

    The supervisor is single-threaded: it multiplexes worker response
    pipes with [select], so results, deaths, deadlines, and backoff
    timers are all handled from one loop. *)

type config = {
  workers : int;  (** pool size (clamped to ≥ 1) *)
  max_attempts : int;  (** attempts per job before quarantine *)
  job_timeout_s : float;  (** per-attempt wall clock before SIGKILL *)
  backoff_base_ms : int;  (** backoff base; attempt [n] waits
                              [base·2^(n-1)] plus jitter *)
  faults : Faults.plan;  (** injected into workers (tests/CI) *)
  journal_path : string option;
  resume : bool;  (** replay [journal_path] before running *)
}

val default_config : config
(** 2 workers, 3 attempts, 30 s job timeout, 100 ms backoff base, no
    faults, no journal. *)

type outcome =
  | Done of {
      attempt : int;
      rung : int;
      degraded : bool;  (** budget events or rung > 0 *)
      diag_errors : bool;
      output : string;  (** the job's single-line JSON output *)
    }
  | Quarantined of { attempts : int; reason : string; output : string }

type t

val create : config -> t
(** Open (and, on [resume], replay) the journal and set up the pool.
    Workers are forked lazily on first dispatch. Raises [Failure] if
    [resume] is set without [journal_path]. *)

val submit : t -> Job.t -> unit
(** Enqueue a job (validated; duplicate ids rejected). If the journal
    replay already holds a terminal record for this id, the job is not
    re-run. Raises [Failure] when the replayed spec does not match. *)

val drain : t -> unit
(** Run until every submitted job has an outcome. *)

val shutdown : t -> unit
(** Close worker pipes (workers exit on EOF), SIGKILL stragglers, reap
    everything, close the journal. Idempotent. *)

val results : t -> (Job.t * outcome) list
(** Outcomes in submission order. Raises [Failure] if a job has none
    (i.e. {!drain} has not completed). *)

val fleet : t -> Core.Metrics.fleet

val run_batch : config -> Job.t list -> (Job.t * outcome) list * Core.Metrics.fleet
(** [create] + [submit]* + [drain] + [results], with [shutdown]
    guaranteed on the way out. *)
