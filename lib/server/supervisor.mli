(** Crash-contained job supervisor: a pool of forked workers, a retry
    ladder, a circuit breaker, the crash-safe journal — and, on top,
    the overload controls that keep the serving path honest when more
    work arrives than the fleet can do.

    One pathological job can never take down the process or lose the
    batch:

    - each job runs in a forked worker; a segfault, OOM-kill, unexpected
      exit, or uncaught hang is contained to that process — the
      supervisor reaps it, records the failure, respawns the slot, and
      carries on;
    - a job running past [job_timeout_s] is SIGKILLed and treated as a
      hang;
    - failed jobs are retried with exponential backoff plus
      deterministic jitter, escalating one degradation rung per attempt
      ({!Job.rung_of_attempt}), up to [max_attempts];
    - a job out of attempts is {e quarantined}, which also opens a
      per-input circuit breaker: later jobs on the same input fail fast
      instead of burning attempts;
    - with a [journal_path], every transition is fsync'd to disk before
      the supervisor proceeds; [resume = true] replays finished jobs
      byte-for-byte and re-runs only unfinished ones, so [kill -9] of
      the supervisor mid-batch loses nothing.

    And one traffic burst can never wedge it:

    - {e admission control} ({!Admission}): a submit that finds the
      pending queue full is {e shed} — answered immediately with a
      distinct terminal outcome, journaled, never silently dropped;
    - {e request deadlines}: a job carrying {!Job.deadline_ms} is shed
      if the deadline expires while queued, gets the remaining deadline
      intersected into its wire budget at dispatch, and is killed and
      shed (not retried) if it is still running one supervisor tick
      past the deadline — nobody is waiting for the answer;
    - {e brownout ladder}: sustained queue pressure escalates the rung
      new dispatches start at, trading precision for throughput with
      the retry ladder's own machinery; pressure gone, it steps down;
    - {e memory watchdog}: with [worker_max_rss_mb] set, each tick
      samples worker RSS from [/proc/<pid>/statm] and SIGKILLs a worker
      over the cap; the in-flight job re-enters the retry ladder (where
      the tighter rung budgets usually save it);
    - {e graceful drain}: {!request_drain} (signal-handler safe) sheds
      everything queued, lets in-flight jobs finish within
      [drain_grace_s], journals the drain markers, and guarantees every
      submitted job still ends with exactly one outcome.

    The supervisor is single-threaded: it multiplexes worker response
    pipes with [select], so results, deaths, deadlines, backoff timers,
    RSS samples, and drain requests are all handled from one loop —
    exposed one iteration at a time as {!step} so a caller (the serve
    loop) can multiplex its own input fd with the fleet's. *)

type config = {
  workers : int;  (** pool size (clamped to ≥ 1) *)
  max_attempts : int;  (** attempts per job before quarantine *)
  job_timeout_s : float;  (** per-attempt wall clock before SIGKILL *)
  backoff_base_ms : int;  (** backoff base; attempt [n] waits
                              [base·2^(n-1)] plus jitter *)
  faults : Faults.plan;  (** injected into workers (tests/CI) *)
  journal_path : string option;
  resume : bool;  (** replay [journal_path] before running *)
  admission : Admission.config;
      (** queue bound + brownout watermarks; {!Admission.default} =
          unbounded, brownout off (the pre-overload behavior) *)
  worker_max_rss_mb : int option;
      (** per-worker RSS cap for the memory watchdog; [None] = off *)
  drain_grace_s : float;
      (** how long in-flight jobs may run after {!request_drain} before
          they are killed and shed *)
  shutdown_grace_s : float;
      (** how long {!shutdown} waits (in [select], not a sleep-poll) for
          EOF'd workers to exit before SIGKILLing stragglers *)
}

val default_config : config
(** 2 workers, 3 attempts, 30 s job timeout, 100 ms backoff base, no
    faults, no journal, unbounded admission, no RSS cap, 5 s drain
    grace, 2 s shutdown grace. *)

type outcome =
  | Done of {
      attempt : int;
      rung : int;
      degraded : bool;  (** budget events or rung > 0 *)
      diag_errors : bool;
      output : string;  (** the job's single-line JSON output *)
    }
  | Quarantined of { attempts : int; reason : string; output : string }
  | Shed of { reason : string; output : string }
      (** refused without (or before) a full run: queue full, deadline
          expired, or drain in progress. [output] is the single-line
          JSON the client saw; [reason] is deterministic (no times, no
          sampled values) so a resumed run replays it byte-for-byte. *)

type t

val create : config -> t
(** Open (and, on [resume], replay) the journal and set up the pool.
    Workers are forked lazily on first dispatch. Raises [Failure] if
    [resume] is set without [journal_path]. *)

val submit : t -> Job.t -> unit
(** Enqueue a job (validated; duplicate ids rejected). If the journal
    replay already holds a terminal record for this id, the job is not
    re-run. Admission control happens here: a full pending queue, or a
    drain in progress, sheds the job immediately ({!find_outcome} sees
    the outcome as soon as [submit] returns). Raises [Failure] when the
    replayed spec does not match. *)

val step : ?extra:Unix.file_descr list -> t -> Unix.file_descr list
(** One iteration of the supervisor loop: apply any drain request,
    shed expired/refused work, dispatch, wait in [select] on worker
    pipes plus [extra], handle responses/deaths/deadlines/RSS, advance
    the brownout ladder. Returns the members of [extra] that were
    readable, so a serve loop can interleave reading its own input. *)

val drain : t -> unit
(** Run {!step} until every submitted job has an outcome (in drain
    mode: until in-flight work has finished or been cut off). *)

val request_drain : t -> unit
(** Flip the supervisor into draining (async-signal-safe: only sets a
    flag; the next {!step} acts on it): queued and newly submitted jobs
    are shed, in-flight jobs may finish within [drain_grace_s], the
    journal gets [draining]/[drained] markers. Idempotent. *)

val draining : t -> bool

val inflight : t -> int
(** Workers currently running a job. *)

val find_outcome : t -> string -> outcome option
(** Outcome of a submitted job id, if it has one yet. *)

val shutdown : t -> unit
(** Close worker pipes (workers exit on EOF), wait for them in [select]
    bounded by [shutdown_grace_s], SIGKILL and count stragglers
    ([drain_incomplete] in the fleet metrics), reap everything, close
    the journal. Idempotent. *)

val results : t -> (Job.t * outcome) list
(** Outcomes in submission order. Raises [Failure] if a job has none
    (i.e. {!drain} has not completed). *)

val fleet : t -> Core.Metrics.fleet

val run_batch : config -> Job.t list -> (Job.t * outcome) list * Core.Metrics.fleet
(** [create] + [submit]* + [drain] + [results], with [shutdown]
    guaranteed on the way out. *)
