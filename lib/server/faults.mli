(** Deterministic fault injection inside workers.

    The supervisor's recovery paths — reaping a dead worker, killing a
    hung one, retrying, quarantining — are tested by {e asking} a worker
    to misbehave on an exact (job, attempt) pair, rather than hoping a
    real crash shows up. A plan is parsed from the [STRUCTCAST_FAULTS]
    environment variable and/or a CLI flag; syntax:

    {v kind@job_id[#attempt][,kind@job_id[#attempt]…] v}

    e.g. ["crash@job2#1,hang@job5"]. Without [#attempt] the fault fires
    on every attempt. Kinds:

    - [crash] — the worker kills itself with SIGABRT (simulated
      segfault/OOM-kill: the supervisor sees a signal death);
    - [exit] — the worker exits with an unexpected code;
    - [hang] — the worker sleeps past any job timeout (it exits on its
      own only when orphaned, so killed supervisors leak no processes);
    - [raise] — an exception is raised inside the job (contained by the
      worker itself, reported as a clean failure);
    - [allocbomb] — a bounded allocation burst followed by
      [Out_of_memory] (contained by the worker like [raise]);
    - [burst] — the job sleeps 200 ms before running, occupying its
      worker slot so a burst of arrivals queues up behind it (the
      overload tests' traffic generator);
    - [slowread] — the worker dribbles its response line back to the
      supervisor in small chunks with pauses between them (a slow
      reader on the response pipe; exercises partial-line buffering);
    - [allochold] — the worker allocates ~48 MB, holds it live, and
      hangs (the RSS watchdog's target; exits on its own only when
      orphaned, like [hang]). *)

type kind =
  | Crash
  | Exit
  | Hang
  | Raise
  | Alloc_bomb
  | Burst
  | Slow_read
  | Alloc_hold

type trigger = { kind : kind; job_id : string; attempt : int option }

type plan = trigger list

val none : plan

val parse : string -> (plan, string) result
(** Parse the comma-separated syntax above; [""] is the empty plan. *)

val of_env : unit -> plan
(** Plan from [STRUCTCAST_FAULTS]; malformed values raise [Failure]. *)

val merge : plan -> plan -> plan

val find : plan -> job_id:string -> attempt:int -> kind option
(** First trigger matching this job and attempt, if any. *)

val inject : kind -> unit
(** Perform the fault. [Crash], [Exit], [Hang], and [Alloc_hold] do not
    return; [Raise] and [Alloc_bomb] raise; [Burst] sleeps then returns;
    [Slow_read] returns immediately (it acts at response-write time). *)

val kind_to_string : kind -> string

val to_string : plan -> string
(** Round-trips through {!parse}. *)

(** {1 Store-I/O faults}

    A second plan family for the fixpoint store ({!Store}): each
    trigger names a fault kind and the 1-based {e write ordinal} it
    fires on, counted across every physical write the store performs
    (snapshot temp files, index appends, compaction). Parsed from
    [STRUCTCAST_STORE_FAULTS] and/or a CLI flag; syntax:

    {v kind@N[,kind@N…] v}

    e.g. ["shortwrite@2,enospc@5"]. Kinds: [shortwrite] (torn payload,
    operation completes), [bitflip] (one bit corrupted mid-payload),
    [enospc] (the write fails before any byte lands), [crash] (die
    between fsync and rename: the temp file is durable, the snapshot
    never becomes visible). *)

type store_trigger = { skind : Store.fault; op : int }

type store_plan = store_trigger list

val store_parse : string -> (store_plan, string) result
(** Parse the syntax above; [""] is the empty plan. *)

val store_of_env : unit -> store_plan
(** Plan from [STRUCTCAST_STORE_FAULTS]; malformed values raise
    [Failure]. *)

val store_hook : store_plan -> int -> Store.fault option
(** The injection hook {!Store.open_store} accepts: ordinal → fault. *)

val store_kind_to_string : Store.fault -> string

val store_to_string : store_plan -> string
(** Round-trips through {!store_parse}. *)
