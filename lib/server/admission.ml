(** Admission control and the brownout ladder. See the interface for
    the policy; this is a small deterministic state machine. *)

type config = {
  max_pending : int option;
  high_watermark : int;
  low_watermark : int;
  brownout_ticks : int;
  max_rung : int;
}

let default =
  {
    max_pending = None;
    high_watermark = 0;
    low_watermark = 0;
    brownout_ticks = 8;
    max_rung = 2;
  }

type t = {
  cfg : config;
  mutable above : int;  (** consecutive ticks with depth > high *)
  mutable below : int;  (** consecutive ticks with depth <= low *)
  mutable rung : int;
}

let create cfg = { cfg; above = 0; below = 0; rung = 0 }

let admit (t : t) ~depth =
  match t.cfg.max_pending with None -> true | Some m -> depth < m

let tick (t : t) ~depth =
  if t.cfg.high_watermark <= 0 then `Steady
  else if depth > t.cfg.high_watermark then begin
    t.above <- t.above + 1;
    t.below <- 0;
    if t.above >= t.cfg.brownout_ticks && t.rung < t.cfg.max_rung then begin
      t.above <- 0;
      t.rung <- t.rung + 1;
      `Escalated t.rung
    end
    else `Steady
  end
  else if depth <= t.cfg.low_watermark then begin
    t.below <- t.below + 1;
    t.above <- 0;
    if t.below >= t.cfg.brownout_ticks && t.rung > 0 then begin
      t.below <- 0;
      t.rung <- t.rung - 1;
      `Stepped_down t.rung
    end
    else `Steady
  end
  else begin
    (* between the watermarks: pressure is neither building nor gone —
       hold the rung and restart both streaks *)
    t.above <- 0;
    t.below <- 0;
    `Steady
  end

let rung (t : t) = t.rung
