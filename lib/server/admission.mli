(** Admission control and the brownout ladder for the serving path.

    The supervisor owns a pending queue of submitted-but-undispatched
    jobs. Left unbounded, a traffic burst grows that queue without
    limit: every request is eventually answered, but the tail answers
    arrive long after any client gave up, and the process pays memory
    and latency for work nobody wants. This module is the policy that
    keeps the queue — and therefore tail latency — bounded:

    - {e admission control}: a request arriving when the pending queue
      already holds [max_pending] jobs is {e shed} — refused
      deterministically at submit time with a distinct outcome, never
      silently dropped and never queued to rot. The decision depends
      only on queue occupancy, so the same arrival sequence sheds the
      same requests on every run.
    - {e brownout ladder}: sustained pressure (queue depth above
      [high_watermark] for [brownout_ticks] consecutive supervisor
      ticks) escalates a {e brownout rung}. The supervisor starts new
      dispatches at that degradation rung ({!Job.budget_for_rung} /
      {!Job.strategy_for_rung}), trading precision for throughput with
      the same machinery the retry ladder uses — brownout answers are
      sound, just coarser. When depth stays at or below
      [low_watermark] for [brownout_ticks] ticks, the rung steps back
      down.

    The module is pure policy + counters: the supervisor reports queue
    depth to {!tick} once per loop iteration and asks {!admit} per
    submission; it never blocks or touches the queue itself. *)

type config = {
  max_pending : int option;
      (** pending-queue bound; [None] = unbounded (no shedding) *)
  high_watermark : int;
      (** queue depth that counts as pressure; [0] disables brownout *)
  low_watermark : int;
      (** depth at/below which pressure is considered gone *)
  brownout_ticks : int;
      (** consecutive ticks above (below) the watermark before the
          brownout rung escalates (steps down) *)
  max_rung : int;  (** ladder ceiling (normally {!Job.max_rung}) *)
}

val default : config
(** Unbounded queue, brownout disabled — the pre-overload-control
    behavior; existing batch callers see no change. *)

type t

val create : config -> t

val admit : t -> depth:int -> bool
(** [admit t ~depth] — may a new request join a pending queue currently
    [depth] deep? Deterministic: [depth < max_pending] (always true
    when unbounded). *)

val tick : t -> depth:int -> [ `Escalated of int | `Stepped_down of int | `Steady ]
(** Called once per supervisor loop iteration with the current queue
    depth; advances the brownout state machine and returns what, if
    anything, changed (carrying the new rung). *)

val rung : t -> int
(** Current brownout rung (0 = no brownout). *)
