(** One unit of analysis work for the batch/serve service.

    A job names an input (C file path or embedded-corpus program), a
    framework instance, a layout, and a budget. Jobs cross the
    supervisor/worker pipe as single tab-separated lines, so none of the
    string fields may contain tabs or newlines ({!validate}).

    Retries escalate through a {e degradation ladder} before a job is
    quarantined:

    - rung 0 — the job's configured budget and strategy, unchanged;
    - rung 1 — the budget capped to a tight preset (the analysis
      degrades earlier but finishes sooner);
    - rung 2 — the tight budget {e and} the strategy forced to
      Collapse-Always, the cheapest sound instance.

    Attempt [n] runs at rung [min (n-1) max_rung]. *)

type t = {
  id : string;  (** unique within a batch, e.g. ["job3"] *)
  spec : string;  (** C file path or corpus program name *)
  strategy_id : string;
  layout_id : string;  (** ilp32 | lp64 | word16 *)
  budget : Core.Budget.limits;
  store_dir : string option;
      (** fixpoint-store directory the worker consults before solving
          (and caches clean results into); [None] = always solve *)
  deadline_ms : int option;
      (** request deadline, milliseconds from submission; the
          supervisor sheds the job if it expires while queued,
          intersects the remaining deadline with the budget's
          [timeout_s] at dispatch, and kills a worker still running
          past it ([None] = no deadline) *)
  domains : int;
      (** solver domains for this job: with the default ["delta"]
          engine, [> 1] selects [`Delta_par] at that width and [1] the
          sequential [`Delta]; an explicit ["delta-par"] reads its
          width from here too. Same fixpoint either way. *)
  engine : string;
      (** solver engine id (delta | delta-nocycle | naive | delta-par           | summary); ["summary"] with a [store_dir] additionally           consults the per-function summary cache under           [store_dir/summaries] *)
}

val make :
  idx:int ->
  ?strategy:string ->
  ?layout:string ->
  ?budget:Core.Budget.limits ->
  ?store_dir:string ->
  ?deadline_ms:int ->
  ?domains:int ->
  ?engine:string ->
  string ->
  t
(** [make ~idx spec] — id ["job<idx>"], strategy ["cis"], layout
    ["ilp32"], budget {!Core.Budget.default}, no store, no deadline,
    1 domain (clamped up to 1), engine ["delta"]. *)

val validate : t -> (unit, string) result
(** Reject tabs/newlines in string fields, unknown strategies, and
    unknown layouts. *)

val layout_of_id : string -> Cfront.Layout.config option

val engine_ids : string list
(** The engine ids {!validate} accepts. *)

val engine_of : t -> Core.Solver.engine
(** Resolve the job's engine id and domain count to a solver engine
    (see the [domains] field for the widening rule). *)

(** {1 Degradation ladder} *)

val max_rung : int
(** Highest rung (currently 2). *)

val rung_of_attempt : int -> int
(** [rung_of_attempt n] for attempt [n >= 1]. *)

val budget_for_rung : Core.Budget.limits -> int -> Core.Budget.limits

val strategy_for_rung : string -> int -> string

(** {1 Wire encoding} *)

val to_wire : t -> attempt:int -> rung:int -> string
(** Single line (no trailing newline), tab-separated. Two documented
    clamps: the budget timeout crosses the wire in whole milliseconds
    with a 1 ms floor (a sub-millisecond timeout is rewritten to 1 ms,
    never to "unlimited"), and the rung-1 tight preset caps it at 2 s
    ({!budget_for_rung}). Both are pinned by the roundtrip tests in
    [test/test_server.ml]. *)

val of_wire : string -> (t * int * int, string) result
(** Inverse of {!to_wire}: job, attempt, rung. *)
