(** Crash-safe, append-only job journal. See the interface for the line
    format and durability contract. *)

type entry =
  | Queued of { id : string; spec : string }
  | Running of { id : string; attempt : int; rung : int }
  | Done of {
      id : string;
      attempt : int;
      rung : int;
      degraded : bool;
      diag_errors : bool;
      output : string;
    }
  | Failed of { id : string; attempt : int; reason : string }
  | Quarantined of { id : string; attempts : int; output : string }
  | Shed of { id : string; reason : string; output : string }
  | Draining
      (** drain mode began: everything after this point was either
          already in flight or shed *)
  | Drained of { completed : int; shed : int }
      (** drain finished; counters checkpoint the final fleet state *)

type t = { fd : Unix.file_descr; path : string }

let open_append path =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  { fd; path }

(* Free-text fields (reasons, outputs) must stay single-field on one
   line; JSON outputs already escape control characters, this is the
   belt for everything else. *)
let sanitize s =
  String.map (fun c -> if c = '\t' || c = '\n' || c = '\r' then ' ' else c) s

let bool01 b = if b then "1" else "0"

let encode : entry -> string = function
  | Queued { id; spec } -> Printf.sprintf "v1\tqueued\t%s\t%s" id spec
  | Running { id; attempt; rung } ->
      Printf.sprintf "v1\trunning\t%s\t%d\t%d" id attempt rung
  | Done { id; attempt; rung; degraded; diag_errors; output } ->
      Printf.sprintf "v1\tdone\t%s\t%d\t%d\t%s\t%s\t%s" id attempt rung
        (bool01 degraded) (bool01 diag_errors) (sanitize output)
  | Failed { id; attempt; reason } ->
      Printf.sprintf "v1\tfailed\t%s\t%d\t%s" id attempt (sanitize reason)
  | Quarantined { id; attempts; output } ->
      Printf.sprintf "v1\tquarantined\t%s\t%d\t%s" id attempts
        (sanitize output)
  | Shed { id; reason; output } ->
      Printf.sprintf "v1\tshed\t%s\t%s\t%s" id (sanitize reason)
        (sanitize output)
  | Draining -> "v1\tdraining"
  | Drained { completed; shed } ->
      Printf.sprintf "v1\tdrained\t%d\t%d" completed shed

let decode (line : string) : entry option =
  let int = int_of_string_opt in
  let b01 = function "0" -> Some false | "1" -> Some true | _ -> None in
  match String.split_on_char '\t' line with
  | [ "v1"; "queued"; id; spec ] -> Some (Queued { id; spec })
  | [ "v1"; "running"; id; a; r ] -> (
      match (int a, int r) with
      | Some attempt, Some rung -> Some (Running { id; attempt; rung })
      | _ -> None)
  | [ "v1"; "done"; id; a; r; d; e; output ] -> (
      match (int a, int r, b01 d, b01 e) with
      | Some attempt, Some rung, Some degraded, Some diag_errors ->
          Some (Done { id; attempt; rung; degraded; diag_errors; output })
      | _ -> None)
  | [ "v1"; "failed"; id; a; reason ] -> (
      match int a with
      | Some attempt -> Some (Failed { id; attempt; reason })
      | None -> None)
  | [ "v1"; "quarantined"; id; a; output ] -> (
      match int a with
      | Some attempts -> Some (Quarantined { id; attempts; output })
      | None -> None)
  | [ "v1"; "shed"; id; reason; output ] -> Some (Shed { id; reason; output })
  | [ "v1"; "draining" ] -> Some Draining
  | [ "v1"; "drained"; c; s ] -> (
      match (int c, int s) with
      | Some completed, Some shed -> Some (Drained { completed; shed })
      | _ -> None)
  | _ -> None

let append (t : t) (e : entry) : unit =
  let data = Bytes.of_string (encode e ^ "\n") in
  let n = Bytes.length data in
  let rec w off =
    if off < n then w (off + Unix.write t.fd data off (n - off))
  in
  w 0;
  Unix.fsync t.fd

let close (t : t) = try Unix.close t.fd with Unix.Unix_error _ -> ()

let load (path : string) : entry list =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    if s = "" then []
    else begin
      let lines = String.split_on_char '\n' s in
      (* A file ending mid-line died during a write: drop the torn tail.
         A file ending in '\n' splits with one trailing "" to drop. *)
      let lines =
        match List.rev lines with
        | last :: rest when s.[String.length s - 1] <> '\n' ->
            ignore last;
            List.rev rest
        | "" :: rest -> List.rev rest
        | l -> List.rev l
      in
      List.filter_map decode lines
    end
  end

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

type replayed =
  | RDone of {
      attempt : int;
      rung : int;
      degraded : bool;
      diag_errors : bool;
      output : string;
    }
  | RQuarantined of { attempts : int; output : string }
  | RShed of { reason : string; output : string }

type state = {
  mutable spec : string option;
  mutable attempts : int;
  mutable outcome : replayed option;
}

let replay (entries : entry list) : (string, state) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  let get id =
    match Hashtbl.find_opt tbl id with
    | Some s -> s
    | None ->
        let s = { spec = None; attempts = 0; outcome = None } in
        Hashtbl.add tbl id s;
        s
  in
  List.iter
    (fun e ->
      match e with
      | Queued { id; spec } -> (get id).spec <- Some spec
      | Running _ -> ()
      | Failed { id; attempt; _ } ->
          let st = get id in
          st.attempts <- max st.attempts attempt
      | Done { id; attempt; rung; degraded; diag_errors; output } ->
          (get id).outcome <-
            Some (RDone { attempt; rung; degraded; diag_errors; output })
      | Quarantined { id; attempts; output } ->
          let st = get id in
          st.attempts <- max st.attempts attempts;
          st.outcome <- Some (RQuarantined { attempts; output })
      | Shed { id; reason; output } ->
          (get id).outcome <- Some (RShed { reason; output })
      | Draining | Drained _ -> ())
    entries;
  tbl
