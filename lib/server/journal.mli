(** Crash-safe, append-only job journal.

    Every job state transition is appended as one tab-separated line and
    [fsync]'d before the supervisor proceeds, so a [kill -9] of the
    supervisor loses at most a not-yet-acknowledged transition. A
    partially-written trailing line (torn write at the moment of death)
    is detected and dropped on load; unparseable lines are skipped, not
    fatal. [done] and [quarantined] records carry the job's final output
    line verbatim, so a resumed batch replays finished jobs byte-for-byte
    instead of re-running them.

    Line format ([v1] is the record version):

    {v
    v1 <TAB> queued      <TAB> id <TAB> spec
    v1 <TAB> running     <TAB> id <TAB> attempt <TAB> rung
    v1 <TAB> done        <TAB> id <TAB> attempt <TAB> rung
                         <TAB> degraded(0|1) <TAB> diag_errors(0|1) <TAB> output
    v1 <TAB> failed      <TAB> id <TAB> attempt <TAB> reason
    v1 <TAB> quarantined <TAB> id <TAB> attempts <TAB> output
    v1 <TAB> shed        <TAB> id <TAB> reason <TAB> output
    v1 <TAB> draining
    v1 <TAB> drained     <TAB> completed <TAB> shed
    v}

    [shed] is a terminal outcome like [done]/[quarantined]: the job was
    refused (queue full, deadline expired, or drain in progress) and
    [output] carries the single-line JSON the client was shown, so a
    resume replays the refusal byte-for-byte rather than re-admitting
    the job. [draining]/[drained] bracket a graceful drain: they carry
    no per-job state and replay ignores them, but they let post-mortem
    tooling see that a shutdown was requested and whether it completed
    ([drained] checkpoints the final completed/shed counts). *)

type entry =
  | Queued of { id : string; spec : string }
  | Running of { id : string; attempt : int; rung : int }
  | Done of {
      id : string;
      attempt : int;
      rung : int;
      degraded : bool;
      diag_errors : bool;
      output : string;  (** the job's final single-line JSON output *)
    }
  | Failed of { id : string; attempt : int; reason : string }
  | Quarantined of { id : string; attempts : int; output : string }
  | Shed of { id : string; reason : string; output : string }
  | Draining
  | Drained of { completed : int; shed : int }

type t
(** An open journal handle (append mode). *)

val open_append : string -> t

val append : t -> entry -> unit
(** One [write] of the whole line, then [fsync]. *)

val close : t -> unit

val load : string -> entry list
(** All well-formed records, oldest first; [[]] if the file does not
    exist. Tolerates a torn trailing line and foreign/corrupt lines. *)

(** {1 Replay} *)

type replayed =
  | RDone of {
      attempt : int;
      rung : int;
      degraded : bool;
      diag_errors : bool;
      output : string;
    }
  | RQuarantined of { attempts : int; output : string }
  | RShed of { reason : string; output : string }

type state = {
  mutable spec : string option;  (** from the [queued] record *)
  mutable attempts : int;  (** highest failed attempt recorded *)
  mutable outcome : replayed option;  (** terminal record, if any *)
}

val replay : entry list -> (string, state) Hashtbl.t
(** Fold the entries into per-job resume state, keyed by job id. Jobs
    with a dangling [running] record (supervisor died mid-flight) come
    out with [outcome = None] and are simply re-run. *)
