(** The forked worker: executes jobs read from a pipe, one at a time.
    See the interface for the containment contract and wire format. *)

open Cfront

(* ------------------------------------------------------------------ *)
(* Input loading (mirrors the CLI: corpus program name or file path)   *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_source (spec : string) : string * string =
  match Suite.find spec with
  | Some p -> (p.Suite.name, p.Suite.source)
  | None ->
      if Sys.file_exists spec then (Filename.basename spec, read_file spec)
      else
        failwith
          (Printf.sprintf "%s: not a file and not a corpus program" spec)

let resolve_includes spec rel =
  let dir = Filename.dirname spec in
  let candidate = Filename.concat dir rel in
  if Sys.file_exists candidate then Some (read_file candidate) else None

(* ------------------------------------------------------------------ *)
(* Job execution                                                       *)
(* ------------------------------------------------------------------ *)

let sanitize s =
  String.map (fun c -> if c = '\t' || c = '\n' || c = '\r' then ' ' else c) s

(* The job's final output line: what batch prints, what the journal
   stores. Timing is omitted (Report ~timing:false) so the line is a
   pure function of the input — the byte-identical-resume guarantee. *)
(* With a store attached, the worker keys the compiled program into the
   store before solving: an exact repeat is served from the snapshot
   (zero solver visits), a near-repeat warm-starts from the nearest
   cached ancestor, and either way the emitted report JSON is the
   stats-free rendering a scratch solve would produce, with the store's
   counter block spliced alongside. Store-I/O faults come from
   [STRUCTCAST_STORE_FAULTS]; write ordinals count per job. *)
let run_store ~store_dir ~layout ~layout_id ~strategy_id ~budget ~engine
    ~engine_id ~name ~spec source : string * bool * bool =
  let store =
    Store.open_store
      ~inject:(Faults.store_hook (Faults.store_of_env ()))
      ~log:(fun m -> prerr_endline ("store: " ^ m))
      store_dir
  in
  let diags = Diag.create () in
  let prog =
    Norm.Lower.compile ~layout ~resolve:(resolve_includes spec) ~diags
      ~file:name source
  in
  let dlist = Diag.diagnostics diags in
  (* a summary job layers the per-function cache under the snapshot
     store: exact repeats and additive edits still short-circuit at the
     whole-program level, a cold solve reuses unchanged summary chains *)
  let sumcache =
    if engine_id = "summary" then
      Some
        (Summary.Sumcache.open_cache
           ~log:(fun m -> prerr_endline ("summary: " ^ m))
           (Filename.concat store_dir "summaries"))
    else None
  in
  let served =
    match sumcache with
    | Some cache ->
        Summary.Engine.serve ~store ~cache ~want:`Json ~diags:dlist ~name
          ~strategy_id ~layout ~layout_id ~budget prog
    | None ->
        Store.serve store ~want:`Json ~diags:dlist ~name ~strategy_id ~engine
          ~layout ~layout_id ~budget prog
  in
  let degraded =
    match served.Store.sv_result with
    | Some r -> r.Core.Analysis.degraded <> []
    | None -> false
  in
  let diag_errors =
    List.exists
      (fun (p : Diag.payload) -> p.Diag.severity = Diag.Error_sev)
      dlist
  in
  let json = Store.with_counters store served.Store.sv_json in
  let json =
    match sumcache with
    | Some c -> Summary.Engine.with_counters c json
    | None -> json
  in
  (json, degraded, diag_errors)

let run_job (job : Job.t) ~attempt ~rung :
    (string * bool * bool, string) result =
  try
    let layout =
      match Job.layout_of_id job.Job.layout_id with
      | Some l -> l
      | None -> failwith ("unknown layout " ^ job.Job.layout_id)
    in
    let strategy_id = Job.strategy_for_rung job.Job.strategy_id rung in
    let strategy =
      match Core.Analysis.strategy_of_id strategy_id with
      | Some s -> s
      | None -> failwith ("unknown strategy " ^ strategy_id)
    in
    let budget = Job.budget_for_rung job.Job.budget rung in
    let engine = Job.engine_of job in
    let name, source = load_source job.Job.spec in
    let result_json, solve_degraded, diag_errors =
      match job.Job.store_dir with
      | Some store_dir ->
          run_store ~store_dir ~layout ~layout_id:job.Job.layout_id
            ~strategy_id ~budget ~engine ~engine_id:job.Job.engine ~name
            ~spec:job.Job.spec source
      | None ->
          let diags = Diag.create () in
          let r =
            Core.Analysis.run_source ~layout ~budget ~engine ~diags
              ~resolve:(resolve_includes job.Job.spec) ~strategy ~file:name
              source
          in
          let diag_errors =
            List.exists
              (fun (p : Diag.payload) -> p.Diag.severity = Diag.Error_sev)
              r.Core.Analysis.diags
          in
          ( Core.Report.json_of_result ~timing:false ~name r,
            r.Core.Analysis.degraded <> [],
            diag_errors )
    in
    let output =
      Printf.sprintf
        "{\"id\":%s,\"spec\":%s,\"status\":\"done\",\"attempt\":%d,\"rung\":%d,\"result\":%s}"
        (Core.Report.quote job.Job.id)
        (Core.Report.quote job.Job.spec)
        attempt rung result_json
    in
    Ok (output, solve_degraded || rung > 0, diag_errors)
  with
  | Diag.Error p -> Error (Fmt.str "front-end error: %a" Diag.pp_payload p)
  | Failure m | Sys_error m -> Error m
  | Out_of_memory -> Error "out of memory"
  | Stack_overflow -> Error "stack overflow"
  | e -> Error ("exception: " ^ Printexc.to_string e)

let bool01 b = if b then "1" else "0"

let execute (job : Job.t) ~attempt ~rung ~(faults : Faults.plan) : string =
  let outcome =
    (* Crash/Exit/Hang never return from [inject]; Raise/Alloc_bomb
       raise and are contained exactly like a real in-job exception. *)
    try
      (match Faults.find faults ~job_id:job.Job.id ~attempt with
      | Some k -> Faults.inject k
      | None -> ());
      run_job job ~attempt ~rung
    with e -> Error ("exception: " ^ Printexc.to_string e)
  in
  match outcome with
  | Ok (output, degraded, diag_errors) ->
      Printf.sprintf "%s\t%d\tok\t%s\t%s\t%s" job.Job.id attempt
        (bool01 degraded) (bool01 diag_errors) output
  | Error msg ->
      Printf.sprintf "%s\t%d\terror\t%s" job.Job.id attempt (sanitize msg)

let response_of_wire (line : string) =
  let b01 = function "0" -> Some false | "1" -> Some true | _ -> None in
  match String.split_on_char '\t' line with
  | [ id; attempt; "ok"; d; e; output ] -> (
      match (int_of_string_opt attempt, b01 d, b01 e) with
      | Some attempt, Some degraded, Some diag_errors ->
          Ok (id, attempt, `Ok (degraded, diag_errors, output))
      | _ -> Error ("malformed ok response: " ^ line))
  | [ id; attempt; "error"; msg ] -> (
      match int_of_string_opt attempt with
      | Some attempt -> Ok (id, attempt, `Error msg)
      | None -> Error ("malformed error response: " ^ line))
  | _ -> Error ("malformed worker response: " ^ line)

(* ------------------------------------------------------------------ *)
(* Main loop (runs in the forked child)                                *)
(* ------------------------------------------------------------------ *)

(* A [slowread] fault acts here rather than inside the job: the
   response line is dribbled back in small chunks with pauses between
   them, so the supervisor's reader sees many partial reads of one
   logical line (total delay ≲ 200 ms). *)
let write_response oc ~slow response =
  let line = response ^ "\n" in
  if not slow then output_string oc line
  else begin
    let n = String.length line in
    let chunk = max 1 ((n + 15) / 16) in
    let off = ref 0 in
    while !off < n do
      let len = min chunk (n - !off) in
      output_substring oc line !off len;
      flush oc;
      off := !off + len;
      Unix.sleepf 0.01
    done
  end;
  flush oc

let run ~req ~resp ~faults : unit =
  let ic = Unix.in_channel_of_descr req in
  let oc = Unix.out_channel_of_descr resp in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line ->
        let response, slow =
          match Job.of_wire line with
          | Ok (job, attempt, rung) ->
              let slow =
                Faults.find faults ~job_id:job.Job.id ~attempt
                = Some Faults.Slow_read
              in
              (execute job ~attempt ~rung ~faults, slow)
          | Error msg ->
              (Printf.sprintf "?\t0\terror\t%s" (sanitize msg), false)
        in
        write_response oc ~slow response;
        loop ()
  in
  loop ()
