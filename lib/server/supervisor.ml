(** Crash-contained job supervisor. See the interface for the recovery
    policy; this file is the single-threaded select loop that enforces
    it. *)

type config = {
  workers : int;
  max_attempts : int;
  job_timeout_s : float;
  backoff_base_ms : int;
  faults : Faults.plan;
  journal_path : string option;
  resume : bool;
}

let default_config =
  {
    workers = 2;
    max_attempts = 3;
    job_timeout_s = 30.0;
    backoff_base_ms = 100;
    faults = Faults.none;
    journal_path = None;
    resume = false;
  }

type outcome =
  | Done of {
      attempt : int;
      rung : int;
      degraded : bool;
      diag_errors : bool;
      output : string;
    }
  | Quarantined of { attempts : int; reason : string; output : string }

type jobrec = {
  job : Job.t;
  mutable attempts : int;  (** failed attempts so far *)
  mutable outcome : outcome option;
  mutable ready_at : float;  (** earliest dispatch time (backoff) *)
}

type wstate =
  | Idle
  | Busy of { jr : jobrec; attempt : int; rung : int; deadline : float }

type whandle = {
  mutable pid : int;
  mutable req_w : Unix.file_descr;
  mutable resp_r : Unix.file_descr;
  mutable buf : string;  (** unconsumed partial response line *)
  mutable state : wstate;
  mutable alive : bool;
}

type t = {
  cfg : config;
  jobs : (string, jobrec) Hashtbl.t;
  mutable order : jobrec list;  (** newest first *)
  mutable pending : jobrec list;  (** dispatch order *)
  fleet : Core.Metrics.fleet;
  journal : Journal.t option;
  replayed : (string, Journal.state) Hashtbl.t;
  breaker : (string, unit) Hashtbl.t;  (** tripped input specs *)
  mutable pool : whandle array;
  mutable shut : bool;
}

let now () = Unix.gettimeofday ()

let jwrite t e = Option.iter (fun j -> Journal.append j e) t.journal

(* ------------------------------------------------------------------ *)
(* Construction / resume                                               *)
(* ------------------------------------------------------------------ *)

let create (cfg : config) : t =
  (* a worker dying between select and our write must not SIGPIPE the
     supervisor; the failed write is handled as a worker death *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let replayed =
    if not cfg.resume then Hashtbl.create 1
    else
      match cfg.journal_path with
      | None -> failwith "resume requires a journal path"
      | Some p -> Journal.replay (Journal.load p)
  in
  let journal = Option.map Journal.open_append cfg.journal_path in
  {
    cfg;
    jobs = Hashtbl.create 64;
    order = [];
    pending = [];
    fleet = Core.Metrics.fleet_create ();
    journal;
    replayed;
    breaker = Hashtbl.create 8;
    pool = [||];
    shut = false;
  }

let submit (t : t) (job : Job.t) : unit =
  (match Job.validate job with Ok () -> () | Error e -> failwith e);
  if Hashtbl.mem t.jobs job.Job.id then
    failwith (Printf.sprintf "duplicate job id %s" job.Job.id);
  let jr = { job; attempts = 0; outcome = None; ready_at = 0.0 } in
  Hashtbl.add t.jobs job.Job.id jr;
  t.order <- jr :: t.order;
  t.fleet.Core.Metrics.jobs <- t.fleet.Core.Metrics.jobs + 1;
  let replay = Hashtbl.find_opt t.replayed job.Job.id in
  (match replay with
  | Some st -> (
      (match st.Journal.spec with
      | Some s when s <> job.Job.spec ->
          failwith
            (Printf.sprintf
               "journal mismatch for %s: journal has input %s, batch has %s \
                (wrong journal for this batch?)"
               job.Job.id s job.Job.spec)
      | _ -> ());
      jr.attempts <- st.Journal.attempts;
      match st.Journal.outcome with
      | Some (Journal.RDone { attempt; rung; degraded; diag_errors; output })
        ->
          jr.outcome <-
            Some (Done { attempt; rung; degraded; diag_errors; output });
          t.fleet.Core.Metrics.replayed <- t.fleet.Core.Metrics.replayed + 1;
          t.fleet.Core.Metrics.max_rung <-
            max t.fleet.Core.Metrics.max_rung rung
      | Some (Journal.RQuarantined { attempts; output }) ->
          jr.outcome <-
            Some
              (Quarantined
                 { attempts; reason = "quarantined (replayed)"; output });
          t.fleet.Core.Metrics.replayed <- t.fleet.Core.Metrics.replayed + 1;
          Hashtbl.replace t.breaker job.Job.spec ()
      | None -> ())
  | None -> ());
  if jr.outcome = None then begin
    if replay = None then
      jwrite t (Journal.Queued { id = job.Job.id; spec = job.Job.spec });
    t.pending <- t.pending @ [ jr ]
  end

(* ------------------------------------------------------------------ *)
(* Worker pool                                                         *)
(* ------------------------------------------------------------------ *)

let spawn_worker (cfg : config) : whandle =
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  (* buffered channels are duplicated by fork: flush before forking so
     the child can't replay the parent's pending output *)
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      Unix.close req_w;
      Unix.close resp_r;
      (try Worker.run ~req:req_r ~resp:resp_w ~faults:cfg.faults
       with _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close req_r;
      Unix.close resp_w;
      { pid; req_w; resp_r; buf = ""; state = Idle; alive = true }

let ensure_pool (t : t) : unit =
  if Array.length t.pool = 0 then
    t.pool <- Array.init (max 1 t.cfg.workers) (fun _ -> spawn_worker t.cfg)

let signal_name s =
  if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigbus then "SIGBUS"
  else if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigill then "SIGILL"
  else "signal " ^ string_of_int s

let reap (w : whandle) : Unix.process_status =
  (try Unix.close w.req_w with Unix.Unix_error _ -> ());
  (try Unix.close w.resp_r with Unix.Unix_error _ -> ());
  w.alive <- false;
  try snd (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> Unix.WEXITED 0

let respawn (t : t) (w : whandle) : unit =
  let fresh = spawn_worker t.cfg in
  w.pid <- fresh.pid;
  w.req_w <- fresh.req_w;
  w.resp_r <- fresh.resp_r;
  w.buf <- "";
  w.state <- Idle;
  w.alive <- true

(* ------------------------------------------------------------------ *)
(* Retry / quarantine policy                                           *)
(* ------------------------------------------------------------------ *)

(* Exponential backoff with deterministic jitter: the hash spreads a
   thundering herd of same-attempt retries without making resumed runs
   diverge from uninterrupted ones. *)
let backoff_s (cfg : config) ~attempts ~id : float =
  let base = float_of_int cfg.backoff_base_ms /. 1000. in
  let exp = base *. (2. ** float_of_int (attempts - 1)) in
  let jitter =
    base *. float_of_int (Hashtbl.hash (id, attempts) mod 1000) /. 1000.
  in
  exp +. jitter

let quarantine (t : t) (jr : jobrec) ~reason : unit =
  let output =
    Printf.sprintf
      "{\"id\":%s,\"spec\":%s,\"status\":\"quarantined\",\"attempts\":%d,\"reason\":%s}"
      (Core.Report.quote jr.job.Job.id)
      (Core.Report.quote jr.job.Job.spec)
      jr.attempts (Core.Report.quote reason)
  in
  jr.outcome <- Some (Quarantined { attempts = jr.attempts; reason; output });
  t.fleet.Core.Metrics.quarantined <- t.fleet.Core.Metrics.quarantined + 1;
  Hashtbl.replace t.breaker jr.job.Job.spec ();
  jwrite t
    (Journal.Quarantined
       { id = jr.job.Job.id; attempts = jr.attempts; output })

let fail (t : t) (jr : jobrec) ~attempt ~reason : unit =
  jwrite t (Journal.Failed { id = jr.job.Job.id; attempt; reason });
  jr.attempts <- max jr.attempts attempt;
  if jr.attempts >= t.cfg.max_attempts then quarantine t jr ~reason
  else begin
    t.fleet.Core.Metrics.retries <- t.fleet.Core.Metrics.retries + 1;
    jr.ready_at <-
      now () +. backoff_s t.cfg ~attempts:jr.attempts ~id:jr.job.Job.id;
    t.pending <- t.pending @ [ jr ]
  end

let complete (t : t) (jr : jobrec) ~attempt ~rung ~degraded ~diag_errors
    ~output : unit =
  jwrite t
    (Journal.Done
       { id = jr.job.Job.id; attempt; rung; degraded; diag_errors; output });
  jr.outcome <- Some (Done { attempt; rung; degraded; diag_errors; output });
  t.fleet.Core.Metrics.completed <- t.fleet.Core.Metrics.completed + 1;
  t.fleet.Core.Metrics.max_rung <- max t.fleet.Core.Metrics.max_rung rung

(* ------------------------------------------------------------------ *)
(* Worker lifecycle events                                             *)
(* ------------------------------------------------------------------ *)

let worker_died (t : t) (w : whandle) : unit =
  let status = reap w in
  (match w.state with
  | Idle -> ()
  | Busy { jr; attempt; _ } ->
      let reason =
        match status with
        | Unix.WSIGNALED s ->
            Printf.sprintf "crash: worker killed by %s" (signal_name s)
        | Unix.WEXITED c ->
            Printf.sprintf "crash: worker exited unexpectedly with code %d" c
        | Unix.WSTOPPED s ->
            Printf.sprintf "crash: worker stopped by %s" (signal_name s)
      in
      t.fleet.Core.Metrics.crashes <- t.fleet.Core.Metrics.crashes + 1;
      fail t jr ~attempt ~reason);
  respawn t w

let worker_hung (t : t) (w : whandle) : unit =
  (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (reap w);
  (match w.state with
  | Idle -> ()
  | Busy { jr; attempt; _ } ->
      t.fleet.Core.Metrics.hangs <- t.fleet.Core.Metrics.hangs + 1;
      fail t jr ~attempt
        ~reason:
          (Printf.sprintf
             "hang: no result within the %gs job timeout; worker killed"
             t.cfg.job_timeout_s));
  respawn t w

let handle_response (t : t) (w : whandle) (line : string) : unit =
  match (Worker.response_of_wire line, w.state) with
  | Ok (id, attempt, payload), Busy { jr; rung; attempt = a; _ }
    when id = jr.job.Job.id && attempt = a -> (
      w.state <- Idle;
      match payload with
      | `Ok (degraded, diag_errors, output) ->
          complete t jr ~attempt ~rung ~degraded ~diag_errors ~output
      | `Error msg ->
          t.fleet.Core.Metrics.job_errors <-
            t.fleet.Core.Metrics.job_errors + 1;
          fail t jr ~attempt ~reason:("error: " ^ msg))
  | _ ->
      (* protocol violation: a response for the wrong job, or a response
         from an idle worker — the worker can't be trusted anymore *)
      (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
      worker_died t w

(* Consume readable bytes; dispatch complete lines. EOF = death. *)
let handle_readable (t : t) (w : whandle) : unit =
  let chunk = Bytes.create 4096 in
  match Unix.read w.resp_r chunk 0 4096 with
  | exception Unix.Unix_error _ -> worker_died t w
  | 0 -> worker_died t w
  | n ->
      let data = w.buf ^ Bytes.sub_string chunk 0 n in
      let parts = String.split_on_char '\n' data in
      let rec go = function
        | [] -> w.buf <- ""
        | [ tail ] -> w.buf <- tail
        | line :: rest ->
            handle_response t w line;
            go rest
      in
      go parts

(* ------------------------------------------------------------------ *)
(* Dispatch loop                                                       *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

(* Fail-fast every pending job whose input already quarantined a
   sibling: no worker needed, the breaker is the point. *)
let breaker_sweep (t : t) : unit =
  let skip, keep =
    List.partition (fun jr -> Hashtbl.mem t.breaker jr.job.Job.spec) t.pending
  in
  t.pending <- keep;
  List.iter
    (fun jr ->
      t.fleet.Core.Metrics.breaker_skips <-
        t.fleet.Core.Metrics.breaker_skips + 1;
      quarantine t jr
        ~reason:
          (Printf.sprintf "circuit breaker open: input %s already quarantined"
             jr.job.Job.spec))
    skip

let pop_ready (t : t) : jobrec option =
  let time = now () in
  let rec go acc = function
    | [] -> None
    | jr :: rest when jr.ready_at <= time ->
        t.pending <- List.rev_append acc rest;
        Some jr
    | jr :: rest -> go (jr :: acc) rest
  in
  go [] t.pending

let dispatch (t : t) (w : whandle) (jr : jobrec) : unit =
  let attempt = jr.attempts + 1 in
  let rung = Job.rung_of_attempt attempt in
  jwrite t (Journal.Running { id = jr.job.Job.id; attempt; rung });
  match write_all w.req_w (Job.to_wire jr.job ~attempt ~rung ^ "\n") with
  | () ->
      w.state <-
        Busy { jr; attempt; rung; deadline = now () +. t.cfg.job_timeout_s }
  | exception Unix.Unix_error _ ->
      (* the idle worker died before the request landed: not this job's
         fault — respawn and put the job back at the front *)
      worker_died t w;
      t.pending <- jr :: t.pending

let rec dispatch_all (t : t) : unit =
  breaker_sweep t;
  if t.pending <> [] then
    match Array.find_opt (fun w -> w.alive && w.state = Idle) t.pool with
    | None -> ()
    | Some w -> (
        match pop_ready t with
        | None -> ()
        | Some jr ->
            dispatch t w jr;
            dispatch_all t)

let busy_count (t : t) : int =
  Array.fold_left
    (fun n w -> match w.state with Busy _ -> n + 1 | Idle -> n)
    0 t.pool

let next_timeout (t : t) : float =
  let time = now () in
  let cand = ref 0.25 in
  Array.iter
    (fun w ->
      match w.state with
      | Busy { deadline; _ } -> cand := min !cand (deadline -. time)
      | Idle -> ())
    t.pool;
  List.iter (fun jr -> cand := min !cand (jr.ready_at -. time)) t.pending;
  max 0.005 !cand

let check_deadlines (t : t) : unit =
  let time = now () in
  Array.iter
    (fun w ->
      match w.state with
      | Busy { deadline; _ } when time > deadline -> worker_hung t w
      | _ -> ())
    t.pool

let drain (t : t) : unit =
  if t.pending <> [] then ensure_pool t;
  let rec loop () =
    dispatch_all t;
    if t.pending = [] && busy_count t = 0 then ()
    else begin
      let fds =
        Array.to_list t.pool
        |> List.filter_map (fun w -> if w.alive then Some w.resp_r else None)
      in
      (match Unix.select fds [] [] (next_timeout t) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | readable, _, _ ->
          Array.iter
            (fun w ->
              if w.alive && List.mem w.resp_r readable then
                handle_readable t w)
            t.pool);
      check_deadlines t;
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Shutdown / results                                                  *)
(* ------------------------------------------------------------------ *)

let shutdown (t : t) : unit =
  if not t.shut then begin
    t.shut <- true;
    (* EOF on the request pipe is the workers' signal to exit *)
    Array.iter
      (fun w ->
        if w.alive then
          try Unix.close w.req_w with Unix.Unix_error _ -> ())
      t.pool;
    Array.iter
      (fun w ->
        if w.alive then begin
          let deadline = now () +. 2.0 in
          let rec wait () =
            match Unix.waitpid [ Unix.WNOHANG ] w.pid with
            | 0, _ ->
                if now () > deadline then begin
                  (try Unix.kill w.pid Sys.sigkill
                   with Unix.Unix_error _ -> ());
                  ignore (Unix.waitpid [] w.pid)
                end
                else begin
                  Unix.sleepf 0.01;
                  wait ()
                end
            | _ -> ()
          in
          (try wait () with Unix.Unix_error _ -> ());
          (try Unix.close w.resp_r with Unix.Unix_error _ -> ());
          w.alive <- false
        end)
      t.pool;
    Option.iter Journal.close t.journal
  end

let results (t : t) : (Job.t * outcome) list =
  List.rev_map
    (fun jr ->
      match jr.outcome with
      | Some o -> (jr.job, o)
      | None ->
          failwith
            (Printf.sprintf "job %s has no outcome (drain incomplete)"
               jr.job.Job.id))
    t.order

let fleet (t : t) : Core.Metrics.fleet = t.fleet

let run_batch (cfg : config) (jobs : Job.t list) :
    (Job.t * outcome) list * Core.Metrics.fleet =
  let t = create cfg in
  Fun.protect
    ~finally:(fun () -> shutdown t)
    (fun () ->
      List.iter (submit t) jobs;
      drain t;
      (results t, t.fleet))
