(** Crash-contained job supervisor. See the interface for the recovery
    and overload policies; this file is the single-threaded select loop
    that enforces them. *)

type config = {
  workers : int;
  max_attempts : int;
  job_timeout_s : float;
  backoff_base_ms : int;
  faults : Faults.plan;
  journal_path : string option;
  resume : bool;
  admission : Admission.config;
  worker_max_rss_mb : int option;
  drain_grace_s : float;
  shutdown_grace_s : float;
}

let default_config =
  {
    workers = 2;
    max_attempts = 3;
    job_timeout_s = 30.0;
    backoff_base_ms = 100;
    faults = Faults.none;
    journal_path = None;
    resume = false;
    admission = Admission.default;
    worker_max_rss_mb = None;
    drain_grace_s = 5.0;
    shutdown_grace_s = 2.0;
  }

type outcome =
  | Done of {
      attempt : int;
      rung : int;
      degraded : bool;
      diag_errors : bool;
      output : string;
    }
  | Quarantined of { attempts : int; reason : string; output : string }
  | Shed of { reason : string; output : string }

type jobrec = {
  job : Job.t;
  mutable attempts : int;  (** failed attempts so far *)
  mutable outcome : outcome option;
  mutable ready_at : float;  (** earliest dispatch time (backoff) *)
  submitted_at : float;
  deadline : float option;  (** absolute request deadline *)
}

type wstate =
  | Idle
  | Busy of {
      jr : jobrec;
      attempt : int;
      rung : int;
      deadline : float;  (** kill time: job timeout ∩ request deadline *)
      req_deadline : float option;
    }

type whandle = {
  mutable pid : int;
  mutable req_w : Unix.file_descr;
  mutable resp_r : Unix.file_descr;
  mutable buf : string;  (** unconsumed partial response line *)
  mutable state : wstate;
  mutable alive : bool;
}

type t = {
  cfg : config;
  jobs : (string, jobrec) Hashtbl.t;
  mutable order : jobrec list;  (** newest first *)
  mutable pending : jobrec list;  (** dispatch order *)
  fleet : Core.Metrics.fleet;
  journal : Journal.t option;
  replayed : (string, Journal.state) Hashtbl.t;
  breaker : (string, unit) Hashtbl.t;  (** tripped input specs *)
  adm : Admission.t;
  mutable pool : whandle array;
  mutable drain_requested : bool;
      (** set (possibly from a signal handler) — picked up by [step] *)
  mutable draining : bool;
  mutable drain_deadline : float;
  mutable shut : bool;
}

let now () = Unix.gettimeofday ()

let jwrite t e = Option.iter (fun j -> Journal.append j e) t.journal

(* ------------------------------------------------------------------ *)
(* Construction / resume                                               *)
(* ------------------------------------------------------------------ *)

let create (cfg : config) : t =
  (* a worker dying between select and our write must not SIGPIPE the
     supervisor; the failed write is handled as a worker death *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let replayed =
    if not cfg.resume then Hashtbl.create 1
    else
      match cfg.journal_path with
      | None -> failwith "resume requires a journal path"
      | Some p -> Journal.replay (Journal.load p)
  in
  let journal = Option.map Journal.open_append cfg.journal_path in
  {
    cfg;
    jobs = Hashtbl.create 64;
    order = [];
    pending = [];
    fleet = Core.Metrics.fleet_create ();
    journal;
    replayed;
    breaker = Hashtbl.create 8;
    adm = Admission.create cfg.admission;
    pool = [||];
    drain_requested = false;
    draining = false;
    drain_deadline = infinity;
    shut = false;
  }

let record_latency (t : t) (jr : jobrec) : unit =
  t.fleet.Core.Metrics.latencies_ms <-
    ((now () -. jr.submitted_at) *. 1000.)
    :: t.fleet.Core.Metrics.latencies_ms

(* A shed is a first-class outcome, never a silent drop: the client sees
   a distinct JSON line, the journal records it, a resumed run replays
   it byte-for-byte. The reason strings are deterministic (no times, no
   sampled values) for exactly that reason. *)
let shed (t : t) (jr : jobrec) ~reason : unit =
  let output =
    Printf.sprintf "{\"id\":%s,\"spec\":%s,\"status\":\"shed\",\"reason\":%s}"
      (Core.Report.quote jr.job.Job.id)
      (Core.Report.quote jr.job.Job.spec)
      (Core.Report.quote reason)
  in
  jr.outcome <- Some (Shed { reason; output });
  t.fleet.Core.Metrics.shed <- t.fleet.Core.Metrics.shed + 1;
  if String.length reason >= 9 && String.sub reason 0 9 = "deadline:" then
    t.fleet.Core.Metrics.deadline_expired <-
      t.fleet.Core.Metrics.deadline_expired + 1;
  record_latency t jr;
  jwrite t (Journal.Shed { id = jr.job.Job.id; reason; output })

let submit (t : t) (job : Job.t) : unit =
  (match Job.validate job with Ok () -> () | Error e -> failwith e);
  if Hashtbl.mem t.jobs job.Job.id then
    failwith (Printf.sprintf "duplicate job id %s" job.Job.id);
  let submitted_at = now () in
  let deadline =
    Option.map
      (fun ms -> submitted_at +. (float_of_int ms /. 1000.))
      job.Job.deadline_ms
  in
  let jr =
    { job; attempts = 0; outcome = None; ready_at = 0.0; submitted_at;
      deadline }
  in
  Hashtbl.add t.jobs job.Job.id jr;
  t.order <- jr :: t.order;
  t.fleet.Core.Metrics.jobs <- t.fleet.Core.Metrics.jobs + 1;
  let replay = Hashtbl.find_opt t.replayed job.Job.id in
  (match replay with
  | Some st -> (
      (match st.Journal.spec with
      | Some s when s <> job.Job.spec ->
          failwith
            (Printf.sprintf
               "journal mismatch for %s: journal has input %s, batch has %s \
                (wrong journal for this batch?)"
               job.Job.id s job.Job.spec)
      | _ -> ());
      jr.attempts <- st.Journal.attempts;
      match st.Journal.outcome with
      | Some (Journal.RDone { attempt; rung; degraded; diag_errors; output })
        ->
          jr.outcome <-
            Some (Done { attempt; rung; degraded; diag_errors; output });
          t.fleet.Core.Metrics.replayed <- t.fleet.Core.Metrics.replayed + 1;
          t.fleet.Core.Metrics.max_rung <-
            max t.fleet.Core.Metrics.max_rung rung
      | Some (Journal.RQuarantined { attempts; output }) ->
          jr.outcome <-
            Some
              (Quarantined
                 { attempts; reason = "quarantined (replayed)"; output });
          t.fleet.Core.Metrics.replayed <- t.fleet.Core.Metrics.replayed + 1;
          Hashtbl.replace t.breaker job.Job.spec ()
      | Some (Journal.RShed { reason; output }) ->
          jr.outcome <- Some (Shed { reason; output });
          t.fleet.Core.Metrics.replayed <- t.fleet.Core.Metrics.replayed + 1
      | None -> ())
  | None -> ());
  if jr.outcome = None then begin
    if t.draining || t.drain_requested then
      shed t jr ~reason:"drain: shutting down; request refused"
    else if
      not (Admission.admit t.adm ~depth:(List.length t.pending))
    then
      shed t jr
        ~reason:
          (Printf.sprintf "admission: pending queue full (max %d)"
             (Option.value t.cfg.admission.Admission.max_pending ~default:0))
    else begin
      if replay = None then
        jwrite t (Journal.Queued { id = job.Job.id; spec = job.Job.spec });
      t.pending <- t.pending @ [ jr ];
      t.fleet.Core.Metrics.queue_peak <-
        max t.fleet.Core.Metrics.queue_peak (List.length t.pending)
    end
  end

(* ------------------------------------------------------------------ *)
(* Worker pool                                                         *)
(* ------------------------------------------------------------------ *)

let spawn_worker (cfg : config) : whandle =
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  (* buffered channels are duplicated by fork: flush before forking so
     the child can't replay the parent's pending output *)
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      Unix.close req_w;
      Unix.close resp_r;
      (try Worker.run ~req:req_r ~resp:resp_w ~faults:cfg.faults
       with _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close req_r;
      Unix.close resp_w;
      { pid; req_w; resp_r; buf = ""; state = Idle; alive = true }

let ensure_pool (t : t) : unit =
  if Array.length t.pool = 0 then
    t.pool <- Array.init (max 1 t.cfg.workers) (fun _ -> spawn_worker t.cfg)

let signal_name s =
  if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigbus then "SIGBUS"
  else if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigill then "SIGILL"
  else "signal " ^ string_of_int s

let reap (w : whandle) : Unix.process_status =
  (try Unix.close w.req_w with Unix.Unix_error _ -> ());
  (try Unix.close w.resp_r with Unix.Unix_error _ -> ());
  w.alive <- false;
  try snd (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> Unix.WEXITED 0

(* During a drain no new work will be dispatched, so a dead slot stays
   dead instead of forking a replacement that would only be EOF'd. *)
let respawn (t : t) (w : whandle) : unit =
  if t.draining then w.state <- Idle
  else begin
    let fresh = spawn_worker t.cfg in
    w.pid <- fresh.pid;
    w.req_w <- fresh.req_w;
    w.resp_r <- fresh.resp_r;
    w.buf <- "";
    w.state <- Idle;
    w.alive <- true
  end

(* ------------------------------------------------------------------ *)
(* Retry / quarantine policy                                           *)
(* ------------------------------------------------------------------ *)

(* Exponential backoff with deterministic jitter: the hash spreads a
   thundering herd of same-attempt retries without making resumed runs
   diverge from uninterrupted ones. *)
let backoff_s (cfg : config) ~attempts ~id : float =
  let base = float_of_int cfg.backoff_base_ms /. 1000. in
  let exp = base *. (2. ** float_of_int (attempts - 1)) in
  let jitter =
    base *. float_of_int (Hashtbl.hash (id, attempts) mod 1000) /. 1000.
  in
  exp +. jitter

let quarantine (t : t) (jr : jobrec) ~reason : unit =
  let output =
    Printf.sprintf
      "{\"id\":%s,\"spec\":%s,\"status\":\"quarantined\",\"attempts\":%d,\"reason\":%s}"
      (Core.Report.quote jr.job.Job.id)
      (Core.Report.quote jr.job.Job.spec)
      jr.attempts (Core.Report.quote reason)
  in
  jr.outcome <- Some (Quarantined { attempts = jr.attempts; reason; output });
  t.fleet.Core.Metrics.quarantined <- t.fleet.Core.Metrics.quarantined + 1;
  Hashtbl.replace t.breaker jr.job.Job.spec ();
  record_latency t jr;
  jwrite t
    (Journal.Quarantined
       { id = jr.job.Job.id; attempts = jr.attempts; output })

let fail (t : t) (jr : jobrec) ~attempt ~reason : unit =
  jwrite t (Journal.Failed { id = jr.job.Job.id; attempt; reason });
  jr.attempts <- max jr.attempts attempt;
  if jr.attempts >= t.cfg.max_attempts then quarantine t jr ~reason
  else if t.draining then
    (* no retries once draining: the job gets a terminal answer now *)
    shed t jr ~reason:"drain: shutting down; retry refused"
  else begin
    t.fleet.Core.Metrics.retries <- t.fleet.Core.Metrics.retries + 1;
    jr.ready_at <-
      now () +. backoff_s t.cfg ~attempts:jr.attempts ~id:jr.job.Job.id;
    t.pending <- t.pending @ [ jr ]
  end

let complete (t : t) (jr : jobrec) ~attempt ~rung ~degraded ~diag_errors
    ~output : unit =
  jwrite t
    (Journal.Done
       { id = jr.job.Job.id; attempt; rung; degraded; diag_errors; output });
  jr.outcome <- Some (Done { attempt; rung; degraded; diag_errors; output });
  t.fleet.Core.Metrics.completed <- t.fleet.Core.Metrics.completed + 1;
  t.fleet.Core.Metrics.max_rung <- max t.fleet.Core.Metrics.max_rung rung;
  record_latency t jr

(* ------------------------------------------------------------------ *)
(* Worker lifecycle events                                             *)
(* ------------------------------------------------------------------ *)

let worker_died (t : t) (w : whandle) : unit =
  let status = reap w in
  (match w.state with
  | Idle -> ()
  | Busy { jr; attempt; _ } ->
      let reason =
        match status with
        | Unix.WSIGNALED s ->
            Printf.sprintf "crash: worker killed by %s" (signal_name s)
        | Unix.WEXITED c ->
            Printf.sprintf "crash: worker exited unexpectedly with code %d" c
        | Unix.WSTOPPED s ->
            Printf.sprintf "crash: worker stopped by %s" (signal_name s)
      in
      t.fleet.Core.Metrics.crashes <- t.fleet.Core.Metrics.crashes + 1;
      fail t jr ~attempt ~reason);
  respawn t w

let worker_hung (t : t) (w : whandle) : unit =
  (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (reap w);
  (match w.state with
  | Idle -> ()
  | Busy { jr; attempt; _ } ->
      t.fleet.Core.Metrics.hangs <- t.fleet.Core.Metrics.hangs + 1;
      fail t jr ~attempt
        ~reason:
          (Printf.sprintf
             "hang: no result within the %gs job timeout; worker killed"
             t.cfg.job_timeout_s));
  respawn t w

(* The worker blew the *request* deadline, not the job timeout: the
   answer is unwanted however it would have turned out, so the job is
   shed (terminal), not retried. *)
let worker_past_deadline (t : t) (w : whandle) : unit =
  (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (reap w);
  (match w.state with
  | Idle -> ()
  | Busy { jr; _ } ->
      shed t jr ~reason:"deadline: expired while running; worker killed");
  respawn t w

let handle_response (t : t) (w : whandle) (line : string) : unit =
  match (Worker.response_of_wire line, w.state) with
  | Ok (id, attempt, payload), Busy { jr; rung; attempt = a; _ }
    when id = jr.job.Job.id && attempt = a -> (
      w.state <- Idle;
      match payload with
      | `Ok (degraded, diag_errors, output) ->
          complete t jr ~attempt ~rung ~degraded ~diag_errors ~output
      | `Error msg ->
          t.fleet.Core.Metrics.job_errors <-
            t.fleet.Core.Metrics.job_errors + 1;
          fail t jr ~attempt ~reason:("error: " ^ msg))
  | _ ->
      (* protocol violation: a response for the wrong job, or a response
         from an idle worker — the worker can't be trusted anymore *)
      (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
      worker_died t w

(* Consume readable bytes; dispatch complete lines. EOF = death. *)
let handle_readable (t : t) (w : whandle) : unit =
  let chunk = Bytes.create 4096 in
  match Unix.read w.resp_r chunk 0 4096 with
  | exception Unix.Unix_error _ -> worker_died t w
  | 0 -> worker_died t w
  | n ->
      let data = w.buf ^ Bytes.sub_string chunk 0 n in
      let parts = String.split_on_char '\n' data in
      let rec go = function
        | [] -> w.buf <- ""
        | [ tail ] -> w.buf <- tail
        | line :: rest ->
            handle_response t w line;
            go rest
      in
      go parts

(* ------------------------------------------------------------------ *)
(* Dispatch loop                                                       *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

(* Fail-fast every pending job whose input already quarantined a
   sibling: no worker needed, the breaker is the point. *)
let breaker_sweep (t : t) : unit =
  let skip, keep =
    List.partition (fun jr -> Hashtbl.mem t.breaker jr.job.Job.spec) t.pending
  in
  t.pending <- keep;
  List.iter
    (fun jr ->
      t.fleet.Core.Metrics.breaker_skips <-
        t.fleet.Core.Metrics.breaker_skips + 1;
      quarantine t jr
        ~reason:
          (Printf.sprintf "circuit breaker open: input %s already quarantined"
             jr.job.Job.spec))
    skip

(* A queued job whose request deadline has passed is shed without ever
   forking a worker: the client stopped waiting, running it is waste. *)
let deadline_sweep (t : t) : unit =
  let time = now () in
  let expired, keep =
    List.partition
      (fun jr ->
        match jr.deadline with Some d -> d <= time | None -> false)
      t.pending
  in
  t.pending <- keep;
  List.iter
    (fun jr -> shed t jr ~reason:"deadline: expired while queued")
    expired

let pop_ready (t : t) : jobrec option =
  let time = now () in
  let rec go acc = function
    | [] -> None
    | jr :: rest when jr.ready_at <= time ->
        t.pending <- List.rev_append acc rest;
        Some jr
    | jr :: rest -> go (jr :: acc) rest
  in
  go [] t.pending

let dispatch (t : t) (w : whandle) (jr : jobrec) : unit =
  let attempt = jr.attempts + 1 in
  (* the dispatch rung is the worse of the retry ladder and the brownout
     ladder: a browned-out fleet starts even first attempts degraded *)
  let rung = max (Job.rung_of_attempt attempt) (Admission.rung t.adm) in
  let time = now () in
  (* intersect the remaining request deadline into the wire budget so
     the worker itself gives up (cleanly, with a degraded answer or a
     budget error) rather than relying on the SIGKILL backstop *)
  let job =
    match jr.deadline with
    | None -> jr.job
    | Some d ->
        let remaining = max 0.001 (d -. time) in
        let timeout_s =
          match jr.job.Job.budget.Core.Budget.timeout_s with
          | None -> Some remaining
          | Some s -> Some (min s remaining)
        in
        { jr.job with
          Job.budget = { jr.job.Job.budget with Core.Budget.timeout_s } }
  in
  jwrite t (Journal.Running { id = jr.job.Job.id; attempt; rung });
  match write_all w.req_w (Job.to_wire job ~attempt ~rung ^ "\n") with
  | () ->
      (* the kill deadline is the job timeout or, if sooner, the request
         deadline plus one supervisor tick of grace for the in-worker
         timeout to fire first *)
      let deadline =
        match jr.deadline with
        | None -> time +. t.cfg.job_timeout_s
        | Some d -> min (time +. t.cfg.job_timeout_s) (d +. 0.25)
      in
      w.state <-
        Busy { jr; attempt; rung; deadline; req_deadline = jr.deadline }
  | exception Unix.Unix_error _ ->
      (* the idle worker died before the request landed: not this job's
         fault — respawn and put the job back at the front *)
      worker_died t w;
      t.pending <- jr :: t.pending

let rec dispatch_all (t : t) : unit =
  breaker_sweep t;
  deadline_sweep t;
  if t.pending <> [] then
    match Array.find_opt (fun w -> w.alive && w.state = Idle) t.pool with
    | None -> ()
    | Some w -> (
        match pop_ready t with
        | None -> ()
        | Some jr ->
            dispatch t w jr;
            dispatch_all t)

let busy_count (t : t) : int =
  Array.fold_left
    (fun n w -> match w.state with Busy _ -> n + 1 | Idle -> n)
    0 t.pool

let inflight = busy_count

let next_timeout (t : t) : float =
  let time = now () in
  let cand = ref 0.25 in
  (* the RSS watchdog has no event to wake on — it polls, so bound the
     tick: a worker can overshoot the cap by at most one interval *)
  if t.cfg.worker_max_rss_mb <> None then cand := min !cand 0.1;
  if t.draining then cand := min !cand (t.drain_deadline -. time);
  Array.iter
    (fun w ->
      match w.state with
      | Busy { deadline; _ } -> cand := min !cand (deadline -. time)
      | Idle -> ())
    t.pool;
  List.iter
    (fun jr ->
      cand := min !cand (jr.ready_at -. time);
      match jr.deadline with
      | Some d -> cand := min !cand (d -. time)
      | None -> ())
    t.pending;
  max 0.005 !cand

let check_deadlines (t : t) : unit =
  let time = now () in
  Array.iter
    (fun w ->
      match w.state with
      | Busy { deadline; req_deadline; _ } when time > deadline -> (
          match req_deadline with
          | Some d when time >= d -> worker_past_deadline t w
          | _ -> worker_hung t w)
      | _ -> ())
    t.pool

(* ------------------------------------------------------------------ *)
(* Memory watchdog                                                     *)
(* ------------------------------------------------------------------ *)

let page_size = 4096

let rss_bytes (pid : int) : int option =
  (* /proc/<pid>/statm field 2 = resident pages *)
  match open_in (Printf.sprintf "/proc/%d/statm" pid) with
  | exception Sys_error _ -> None
  | ic -> (
      let line = try input_line ic with End_of_file -> "" in
      close_in ic;
      match String.split_on_char ' ' line with
      | _ :: resident :: _ ->
          Option.map (fun p -> p * page_size) (int_of_string_opt resident)
      | _ -> None)

let rss_sweep (t : t) : unit =
  match t.cfg.worker_max_rss_mb with
  | None -> ()
  | Some cap_mb ->
      let cap = cap_mb * 1024 * 1024 in
      Array.iter
        (fun w ->
          if w.alive then
            match rss_bytes w.pid with
            | Some rss when rss > cap ->
                (try Unix.kill w.pid Sys.sigkill
                 with Unix.Unix_error _ -> ());
                ignore (reap w);
                t.fleet.Core.Metrics.rss_kills <-
                  t.fleet.Core.Metrics.rss_kills + 1;
                (match w.state with
                | Idle -> ()
                | Busy { jr; attempt; _ } ->
                    (* the reason carries the cap, not the sampled RSS:
                       outputs must stay deterministic for resume *)
                    fail t jr ~attempt
                      ~reason:
                        (Printf.sprintf
                           "rss: worker exceeded the %d MB cap; killed"
                           cap_mb));
                respawn t w
            | _ -> ())
        t.pool

(* ------------------------------------------------------------------ *)
(* Drain / one loop iteration                                          *)
(* ------------------------------------------------------------------ *)

let request_drain (t : t) : unit = t.drain_requested <- true

let draining (t : t) : bool = t.draining || t.drain_requested

let apply_drain_request (t : t) : unit =
  if t.drain_requested then begin
    t.drain_requested <- false;
    if not t.draining then begin
      t.draining <- true;
      t.drain_deadline <- now () +. t.cfg.drain_grace_s;
      jwrite t Journal.Draining;
      (* everything still queued is refused now — only in-flight work
         may finish, and only until the drain deadline *)
      let pend = t.pending in
      t.pending <- [];
      List.iter
        (fun jr -> shed t jr ~reason:"drain: shutting down; request refused")
        pend
    end
  end

let check_drain_deadline (t : t) : unit =
  if t.draining && now () > t.drain_deadline then
    Array.iter
      (fun w ->
        match w.state with
        | Busy { jr; _ } ->
            (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
            ignore (reap w);
            t.fleet.Core.Metrics.drain_incomplete <-
              t.fleet.Core.Metrics.drain_incomplete + 1;
            shed t jr ~reason:"drain: deadline reached before completion";
            w.state <- Idle
        | Idle -> ())
      t.pool

let brownout_tick (t : t) : unit =
  let depth = List.length t.pending in
  t.fleet.Core.Metrics.queue_depth <- depth;
  match Admission.tick t.adm ~depth with
  | `Escalated r ->
      t.fleet.Core.Metrics.brownout_escalations <-
        t.fleet.Core.Metrics.brownout_escalations + 1;
      t.fleet.Core.Metrics.brownout_rung <- r;
      t.fleet.Core.Metrics.brownout_max_rung <-
        max t.fleet.Core.Metrics.brownout_max_rung r
  | `Stepped_down r -> t.fleet.Core.Metrics.brownout_rung <- r
  | `Steady -> ()

(* One iteration of the supervisor loop: apply a pending drain request,
   shed what must be shed, dispatch what can run, sleep in select until
   a worker (or caller-supplied) fd is readable or a timer is due, then
   handle expiries. Returns the readable [extra] fds so a caller (the
   serve loop) can multiplex its own input with the fleet's. *)
let step ?(extra = []) (t : t) : Unix.file_descr list =
  apply_drain_request t;
  if t.pending <> [] && not t.draining then ensure_pool t;
  dispatch_all t;
  let fds =
    (Array.to_list t.pool
    |> List.filter_map (fun w -> if w.alive then Some w.resp_r else None))
    @ extra
  in
  let readable =
    if fds = [] then begin
      (* nothing to wait on (pre-pool or post-drain): still honor the
         tick so timers advance *)
      Unix.sleepf (min 0.05 (next_timeout t));
      []
    end
    else
      match Unix.select fds [] [] (next_timeout t) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
      | readable, _, _ ->
          Array.iter
            (fun w ->
              if w.alive && List.mem w.resp_r readable then
                handle_readable t w)
            t.pool;
          readable
  in
  check_deadlines t;
  rss_sweep t;
  check_drain_deadline t;
  brownout_tick t;
  List.filter (fun fd -> List.mem fd readable) extra

let drain (t : t) : unit =
  let rec loop () =
    if t.pending <> [] || busy_count t > 0 || t.drain_requested then begin
      ignore (step t);
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Shutdown / results                                                  *)
(* ------------------------------------------------------------------ *)

let shutdown (t : t) : unit =
  if not t.shut then begin
    t.shut <- true;
    if t.draining then
      jwrite t
        (Journal.Drained
           {
             completed = t.fleet.Core.Metrics.completed;
             shed = t.fleet.Core.Metrics.shed;
           });
    (* EOF on the request pipe is the workers' signal to exit *)
    Array.iter
      (fun w ->
        if w.alive then
          try Unix.close w.req_w with Unix.Unix_error _ -> ())
      t.pool;
    (* Event-driven straggler wait: select on the response pipes — a
       worker exiting closes its end and the fd turns readable (EOF) —
       bounded by [shutdown_grace_s]. Anything still alive then is
       SIGKILLed and counted as an incomplete drain, never waited on
       with a blind sleep. *)
    let deadline = now () +. t.cfg.shutdown_grace_s in
    let buf = Bytes.create 4096 in
    let rec wait () =
      let alive =
        Array.to_list t.pool |> List.filter (fun w -> w.alive)
      in
      if alive <> [] then begin
        let remaining = deadline -. now () in
        if remaining <= 0. then
          List.iter
            (fun w ->
              (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
              ignore (reap w);
              t.fleet.Core.Metrics.drain_incomplete <-
                t.fleet.Core.Metrics.drain_incomplete + 1)
            alive
        else begin
          (match
             Unix.select (List.map (fun w -> w.resp_r) alive) [] [] remaining
           with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | readable, _, _ ->
              List.iter
                (fun w ->
                  if List.mem w.resp_r readable then
                    match Unix.read w.resp_r buf 0 4096 with
                    | exception Unix.Unix_error _ -> ignore (reap w)
                    | 0 -> ignore (reap w)
                    | _ -> ())
                alive);
          wait ()
        end
      end
    in
    wait ();
    Option.iter Journal.close t.journal
  end

let find_outcome (t : t) (id : string) : outcome option =
  match Hashtbl.find_opt t.jobs id with
  | Some jr -> jr.outcome
  | None -> None

let results (t : t) : (Job.t * outcome) list =
  List.rev_map
    (fun jr ->
      match jr.outcome with
      | Some o -> (jr.job, o)
      | None ->
          failwith
            (Printf.sprintf "job %s has no outcome (drain incomplete)"
               jr.job.Job.id))
    t.order

let fleet (t : t) : Core.Metrics.fleet = t.fleet

let run_batch (cfg : config) (jobs : Job.t list) :
    (Job.t * outcome) list * Core.Metrics.fleet =
  let t = create cfg in
  Fun.protect
    ~finally:(fun () -> shutdown t)
    (fun () ->
      List.iter (submit t) jobs;
      drain t;
      (results t, t.fleet))
