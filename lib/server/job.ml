(** One unit of analysis work; see the interface for the degradation
    ladder and wire format. *)

open Cfront

type t = {
  id : string;
  spec : string;
  strategy_id : string;
  layout_id : string;
  budget : Core.Budget.limits;
  store_dir : string option;
  deadline_ms : int option;
  domains : int;
  engine : string;
}

let engine_ids = [ "delta"; "delta-nocycle"; "naive"; "delta-par"; "summary" ]

let make ~idx ?(strategy = "cis") ?(layout = "ilp32")
    ?(budget = Core.Budget.default) ?store_dir ?deadline_ms ?(domains = 1)
    ?(engine = "delta") spec =
  {
    id = Printf.sprintf "job%d" idx;
    spec;
    strategy_id = strategy;
    layout_id = layout;
    budget;
    store_dir;
    deadline_ms;
    domains = max 1 domains;
    engine;
  }

(* [domains] keeps its historical meaning as the parallelism knob: the
   default "delta" engine silently widens to delta-par when a job is
   granted more than one domain, and an explicit "delta-par" takes its
   width from the same field. *)
let engine_of (t : t) : Core.Solver.engine =
  match t.engine with
  | "delta-nocycle" -> `Delta_nocycle
  | "naive" -> `Naive
  | "summary" -> `Summary
  | "delta-par" -> `Delta_par (max 1 t.domains)
  | _ -> if t.domains > 1 then `Delta_par t.domains else `Delta

let layout_of_id = function
  | "ilp32" -> Some Layout.ilp32
  | "lp64" -> Some Layout.lp64
  | "word16" -> Some Layout.word16
  | _ -> None

let validate (t : t) : (unit, string) result =
  let bad s = String.exists (fun c -> c = '\t' || c = '\n' || c = '\r') s in
  if
    bad t.id || bad t.spec || bad t.strategy_id || bad t.layout_id
    || bad (Option.value t.store_dir ~default:"")
  then
    Error
      (Printf.sprintf "%s: job fields may not contain tabs or newlines" t.id)
  else if Core.Analysis.strategy_of_id t.strategy_id = None then
    Error
      (Printf.sprintf "%s: unknown strategy %s (have: %s)" t.id t.strategy_id
         (String.concat ", " Core.Analysis.strategy_ids))
  else if layout_of_id t.layout_id = None then
    Error
      (Printf.sprintf "%s: unknown layout %s (ilp32|lp64|word16)" t.id
         t.layout_id)
  else if not (List.mem t.engine engine_ids) then
    Error
      (Printf.sprintf "%s: unknown engine %s (have: %s)" t.id t.engine
         (String.concat "|" engine_ids))
  else Ok ()

(* ------------------------------------------------------------------ *)
(* Degradation ladder                                                  *)
(* ------------------------------------------------------------------ *)

let max_rung = 2

let rung_of_attempt attempt = min (max 0 (attempt - 1)) max_rung

(* The rung-1 preset caps each limit; an unlimited dimension becomes the
   cap, a configured one only ever tightens. *)
let cap_int limit = function None -> Some limit | Some n -> Some (min n limit)
let cap_float limit = function
  | None -> Some limit
  | Some s -> Some (min s limit)

let tight (b : Core.Budget.limits) : Core.Budget.limits =
  {
    Core.Budget.max_steps = cap_int 100_000 b.Core.Budget.max_steps;
    timeout_s = cap_float 2.0 b.Core.Budget.timeout_s;
    max_cells_per_object = cap_int 8 b.Core.Budget.max_cells_per_object;
    max_total_cells = cap_int 50_000 b.Core.Budget.max_total_cells;
  }

let budget_for_rung b rung = if rung <= 0 then b else tight b

let strategy_for_rung id rung = if rung >= 2 then "collapse-always" else id

(* ------------------------------------------------------------------ *)
(* Wire encoding: id \t attempt \t rung \t strategy \t layout          *)
(*   \t steps \t timeout_ms \t obj_cells \t total_cells \t store       *)
(*   \t deadline_ms \t domains \t engine \t spec                       *)
(* (0 encodes an absent limit/deadline; "" encodes no store            *)
(* directory; spec goes last for readability).                         *)
(* The timeout crosses the wire in whole milliseconds with a 1 ms      *)
(* floor: a sub-millisecond --timeout-ms is rewritten to 1 ms rather   *)
(* than rounding to 0, which would decode as "unlimited". The rung-1   *)
(* tight preset additionally caps the timeout at 2 s (see [tight]);    *)
(* both clamps are pinned by the wire roundtrip tests.                 *)
(* ------------------------------------------------------------------ *)

let to_wire (t : t) ~attempt ~rung : string =
  let o = function None -> 0 | Some n -> n in
  let timeout_ms =
    match t.budget.Core.Budget.timeout_s with
    | None -> 0
    | Some s -> max 1 (int_of_float (s *. 1000.))
  in
  Printf.sprintf "%s\t%d\t%d\t%s\t%s\t%d\t%d\t%d\t%d\t%s\t%d\t%d\t%s\t%s"
    t.id attempt rung t.strategy_id t.layout_id
    (o t.budget.Core.Budget.max_steps)
    timeout_ms
    (o t.budget.Core.Budget.max_cells_per_object)
    (o t.budget.Core.Budget.max_total_cells)
    (Option.value t.store_dir ~default:"")
    (o t.deadline_ms) t.domains t.engine t.spec

let of_wire (line : string) : (t * int * int, string) result =
  match String.split_on_char '\t' line with
  | [
      id; attempt; rung; strategy_id; layout_id; steps; tms; obj; total; store;
      deadline; domains; engine; spec;
    ] -> (
      let opt s =
        match int_of_string_opt s with
        | Some 0 -> Some None
        | Some n when n > 0 -> Some (Some n)
        | _ -> None
      in
      match
        ( int_of_string_opt attempt,
          int_of_string_opt rung,
          opt steps,
          opt tms,
          opt obj,
          opt total,
          opt deadline,
          int_of_string_opt domains )
      with
      | ( Some attempt,
          Some rung,
          Some steps,
          Some tms,
          Some obj,
          Some total,
          Some deadline_ms,
          Some domains )
        when domains >= 1 ->
          let budget =
            {
              Core.Budget.max_steps = steps;
              timeout_s =
                Option.map (fun ms -> float_of_int ms /. 1000.) tms;
              max_cells_per_object = obj;
              max_total_cells = total;
            }
          in
          let store_dir = if store = "" then None else Some store in
          Ok
            ( {
                id;
                spec;
                strategy_id;
                layout_id;
                budget;
                store_dir;
                deadline_ms;
                domains;
                engine;
              },
              attempt,
              rung )
      | _ -> Error ("malformed numeric field in job request: " ^ line))
  | _ -> Error ("malformed job request (expected 14 fields): " ^ line)
