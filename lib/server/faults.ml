(** Deterministic fault injection inside workers. See the interface for
    the plan syntax and fault semantics. *)

type kind =
  | Crash
  | Exit
  | Hang
  | Raise
  | Alloc_bomb
  | Burst
  | Slow_read
  | Alloc_hold

type trigger = { kind : kind; job_id : string; attempt : int option }

type plan = trigger list

let none = []

let kind_to_string = function
  | Crash -> "crash"
  | Exit -> "exit"
  | Hang -> "hang"
  | Raise -> "raise"
  | Alloc_bomb -> "allocbomb"
  | Burst -> "burst"
  | Slow_read -> "slowread"
  | Alloc_hold -> "allochold"

let kind_of_string = function
  | "crash" -> Some Crash
  | "exit" -> Some Exit
  | "hang" -> Some Hang
  | "raise" -> Some Raise
  | "allocbomb" -> Some Alloc_bomb
  | "burst" -> Some Burst
  | "slowread" -> Some Slow_read
  | "allochold" -> Some Alloc_hold
  | _ -> None

let parse_trigger (s : string) : (trigger, string) result =
  match String.index_opt s '@' with
  | None -> Error (Printf.sprintf "fault %S: expected kind@job_id[#attempt]" s)
  | Some i -> (
      let kind_s = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let job_id, attempt =
        match String.index_opt rest '#' with
        | None -> (rest, Ok None)
        | Some j ->
            let a = String.sub rest (j + 1) (String.length rest - j - 1) in
            ( String.sub rest 0 j,
              match int_of_string_opt a with
              | Some n when n >= 1 -> Ok (Some n)
              | _ -> Error (Printf.sprintf "fault %S: bad attempt %S" s a) )
      in
      match (kind_of_string kind_s, attempt) with
      | None, _ ->
          Error
            (Printf.sprintf
               "fault %S: unknown kind %S \
                (crash|exit|hang|raise|allocbomb|burst|slowread|allochold)"
               s kind_s)
      | _, Error e -> Error e
      | Some kind, Ok attempt ->
          if job_id = "" then Error (Printf.sprintf "fault %S: empty job id" s)
          else Ok { kind; job_id; attempt })

let parse (s : string) : (plan, string) result =
  let parts =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  List.fold_left
    (fun acc p ->
      match (acc, parse_trigger p) with
      | Error e, _ -> Error e
      | _, Error e -> Error e
      | Ok ts, Ok t -> Ok (ts @ [ t ]))
    (Ok []) parts

let of_env () : plan =
  match Sys.getenv_opt "STRUCTCAST_FAULTS" with
  | None | Some "" -> []
  | Some s -> (
      match parse s with
      | Ok p -> p
      | Error e -> failwith ("STRUCTCAST_FAULTS: " ^ e))

let merge = ( @ )

let find (p : plan) ~job_id ~attempt : kind option =
  List.find_opt
    (fun t ->
      t.job_id = job_id
      && match t.attempt with None -> true | Some a -> a = attempt)
    p
  |> Option.map (fun t -> t.kind)

let to_string (p : plan) : string =
  String.concat ","
    (List.map
       (fun t ->
         match t.attempt with
         | None -> Printf.sprintf "%s@%s" (kind_to_string t.kind) t.job_id
         | Some a ->
             Printf.sprintf "%s@%s#%d" (kind_to_string t.kind) t.job_id a)
       p)

(* ------------------------------------------------------------------ *)
(* Store-I/O faults                                                    *)
(* ------------------------------------------------------------------ *)

type store_trigger = { skind : Store.fault; op : int }

type store_plan = store_trigger list

let store_kind_to_string : Store.fault -> string = function
  | Store.Short_write -> "shortwrite"
  | Store.Bit_flip -> "bitflip"
  | Store.Enospc -> "enospc"
  | Store.Crash_rename -> "crash"

let store_kind_of_string : string -> Store.fault option = function
  | "shortwrite" -> Some Store.Short_write
  | "bitflip" -> Some Store.Bit_flip
  | "enospc" -> Some Store.Enospc
  | "crash" -> Some Store.Crash_rename
  | _ -> None

let store_parse_trigger (s : string) : (store_trigger, string) result =
  match String.index_opt s '@' with
  | None ->
      Error (Printf.sprintf "store fault %S: expected kind@write_ordinal" s)
  | Some i -> (
      let kind_s = String.sub s 0 i in
      let op_s = String.sub s (i + 1) (String.length s - i - 1) in
      match store_kind_of_string kind_s with
      | None ->
          Error
            (Printf.sprintf
               "store fault %S: unknown kind %S \
                (shortwrite|bitflip|enospc|crash)"
               s kind_s)
      | Some skind -> (
          match int_of_string_opt op_s with
          | Some op when op >= 1 -> Ok { skind; op }
          | _ ->
              Error
                (Printf.sprintf "store fault %S: bad write ordinal %S" s op_s)
          ))

let store_parse (s : string) : (store_plan, string) result =
  let parts =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  List.fold_left
    (fun acc p ->
      match (acc, store_parse_trigger p) with
      | Error e, _ -> Error e
      | _, Error e -> Error e
      | Ok ts, Ok t -> Ok (ts @ [ t ]))
    (Ok []) parts

let store_of_env () : store_plan =
  match Sys.getenv_opt "STRUCTCAST_STORE_FAULTS" with
  | None | Some "" -> []
  | Some s -> (
      match store_parse s with
      | Ok p -> p
      | Error e -> failwith ("STRUCTCAST_STORE_FAULTS: " ^ e))

let store_hook (p : store_plan) : int -> Store.fault option =
 fun op ->
  List.find_opt (fun t -> t.op = op) p |> Option.map (fun t -> t.skind)

let store_to_string (p : store_plan) : string =
  String.concat ","
    (List.map
       (fun t -> Printf.sprintf "%s@%d" (store_kind_to_string t.skind) t.op)
       p)

let inject (k : kind) : unit =
  match k with
  | Crash ->
      (* SIGABRT, not SIGSEGV: the OCaml runtime installs a SIGSEGV
         handler for stack-overflow detection, SIGABRT dies cleanly and
         deterministically with a signal status. *)
      Unix.kill (Unix.getpid ()) Sys.sigabrt;
      Unix._exit 134
  | Exit -> Unix._exit 70
  | Hang ->
      (* Sleep "forever", but exit once orphaned so a kill -9'd
         supervisor leaks no processes (CI would otherwise hang). *)
      let rec loop () =
        Unix.sleepf 0.05;
        if Unix.getppid () = 1 then Unix._exit 0;
        loop ()
      in
      loop ()
  | Raise -> failwith "injected fault: raise"
  | Alloc_bomb ->
      (* A bounded burst of real allocation (≤ 64 MB) and then the
         Out_of_memory a genuine bomb would end in — without actually
         taking the machine down. *)
      let chunks = ref [] in
      (try
         for _ = 1 to 64 do
           chunks := Bytes.create (1 lsl 20) :: !chunks
         done
       with Out_of_memory -> ());
      chunks := [];
      raise Out_of_memory
  | Burst ->
      (* Occupy the worker slot long enough for a burst of arrivals to
         pile up in the pending queue behind this job. *)
      Unix.sleepf 0.2
  | Slow_read ->
      (* Handled at response-write time in the worker (the response is
         dribbled out in small chunks); nothing to do inside the job. *)
      ()
  | Alloc_hold ->
      (* Allocate a large block and *hold* it live while hanging: the
         RSS watchdog's target. Like [Hang], exit once orphaned so a
         kill -9'd supervisor leaks no processes. *)
      let held = Bytes.create (48 * (1 lsl 20)) in
      Bytes.fill held 0 (Bytes.length held) 'x';
      let rec loop () =
        Unix.sleepf 0.05;
        ignore (Sys.opaque_identity (Bytes.get held 0));
        if Unix.getppid () = 1 then Unix._exit 0;
        loop ()
      in
      loop ()
