(** The forked worker: executes jobs read from a pipe, one at a time.

    Workers are long-lived and reused across jobs (fork once, loop until
    the request pipe hits EOF), so a job must leave no state behind —
    the analysis layer's per-run [Diag.ctx]/[Budget.t] isolation is what
    makes this safe, and [test/test_isolation.ml] pins it down.

    Everything a job can throw — front-end fatals, [Out_of_memory],
    [Stack_overflow], injected [raise]/[allocbomb] faults — is caught
    and reported as a clean [error] response; only process-level deaths
    (signals, [exit], hangs) escape to the supervisor's reaper.

    Response wire format (one line per job):

    {v
    id <TAB> attempt <TAB> ok <TAB> degraded(0|1) <TAB> diag_errors(0|1) <TAB> output-json
    id <TAB> attempt <TAB> error <TAB> message
    v} *)

val run : req:Unix.file_descr -> resp:Unix.file_descr -> faults:Faults.plan -> unit
(** Worker main loop: read a {!Job.to_wire} line from [req], execute,
    write a response line to [resp], repeat; returns on EOF. The caller
    (the supervisor's fork child) must [Unix._exit] afterwards. *)

val execute :
  Job.t -> attempt:int -> rung:int -> faults:Faults.plan -> string
(** Run one job and build its response line (no trailing newline).
    Injected process-killing faults do not return. *)

val response_of_wire :
  string ->
  ( string * int * [ `Ok of bool * bool * string | `Error of string ],
    string )
  result
(** Parse a response line: job id, attempt, and either
    [`Ok (degraded, diag_errors, output)] or [`Error message]. *)
