(** Seeded random C program generator.

    Produces well-formed C sources exercising the behaviours the paper's
    framework is about: nested structures, address-taking, pointer copies
    with casts, stores and loads through mistyped pointers, and whole-block
    copies between structures of different types. Used by the qcheck
    property tests (soundness against the concrete interpreter, precision
    ordering between instances) and by the benchmark harness as a scalable
    workload generator.

    Determinism: the same {!config} and seed always produce the same
    program. *)

type config = {
  n_structs : int;  (** how many struct types to declare (>= 1) *)
  n_stmts : int;  (** statements in [main] *)
  cast_rate : float;  (** probability that an assignment goes through a cast *)
  with_calls : bool;  (** generate helper functions and calls *)
}

let default = { n_structs = 3; n_stmts = 40; cast_rate = 0.3; with_calls = false }

(* ------------------------------------------------------------------ *)
(* Mini types                                                          *)
(* ------------------------------------------------------------------ *)

type gty = GInt | GChar | GDouble | GPtr of gty | GStruct of int

let rec gty_to_c (structs : (string * (string * gty) list) array) = function
  | GInt -> "int"
  | GChar -> "char"
  | GDouble -> "double"
  | GPtr t -> gty_to_c structs t ^ " *"
  | GStruct i -> "struct " ^ fst structs.(i)

type lv = { code : string; lty : gty }

type state = {
  rng : Random.State.t;
  cfg : config;
  structs : (string * (string * gty) list) array;
  mutable globals : (string * gty) list;
  buf : Buffer.t;
}

let rand st n = Random.State.int st.rng n

let chance st p = Random.State.float st.rng 1.0 < p

let pick st xs =
  match xs with
  | [] -> None
  | _ -> Some (List.nth xs (rand st (List.length xs)))

(* ------------------------------------------------------------------ *)
(* Type and variable generation                                        *)
(* ------------------------------------------------------------------ *)

let gen_field_type st (max_struct : int) : gty =
  match rand st 8 with
  | 0 -> GInt
  | 1 -> GChar
  | 2 -> GDouble
  | 3 -> GPtr GInt
  | 4 -> GPtr GChar
  | 5 when max_struct > 0 -> GStruct (rand st max_struct)
  | 5 -> GPtr GInt
  | 6 when max_struct > 0 -> GPtr (GStruct (rand st max_struct))
  | 6 -> GPtr GChar
  | _ -> GInt

let gen_structs rng cfg : (string * (string * gty) list) array =
  let st_stub =
    { rng; cfg; structs = [||]; globals = []; buf = Buffer.create 16 }
  in
  Array.init cfg.n_structs (fun i ->
      let n_fields = 2 + rand st_stub 4 in
      let fields =
        List.init n_fields (fun j ->
            (Printf.sprintf "f%d" j, gen_field_type st_stub i))
      in
      (Printf.sprintf "G%d" i, fields))

let declare_globals st : unit =
  let add name ty = st.globals <- (name, ty) :: st.globals in
  for i = 0 to 3 do
    add (Printf.sprintf "x%d" i) GInt
  done;
  for i = 0 to 1 do
    add (Printf.sprintf "c%d" i) GChar
  done;
  add "d0" GDouble;
  add "pi0" (GPtr GInt);
  add "pi1" (GPtr GInt);
  add "pc0" (GPtr GChar);
  add "ppi0" (GPtr (GPtr GInt));
  Array.iteri
    (fun i _ ->
      add (Printf.sprintf "g%d_a" i) (GStruct i);
      add (Printf.sprintf "g%d_b" i) (GStruct i);
      add (Printf.sprintf "pg%d" i) (GPtr (GStruct i)))
    st.structs;
  st.globals <- List.rev st.globals

(* ------------------------------------------------------------------ *)
(* L-value pool                                                        *)
(* ------------------------------------------------------------------ *)

(** All reachable lvalues up to two field selections deep (no derefs —
    those are generated as statement patterns so reads come after
    plausible writes). *)
let lvalue_pool st : lv list =
  let fields_of i = snd st.structs.(i) in
  let rec expand depth (code, ty) : lv list =
    let self = { code; lty = ty } in
    match ty with
    | GStruct i when depth < 2 ->
        self
        :: List.concat_map
             (fun (fn, ft) -> expand (depth + 1) (code ^ "." ^ fn, ft))
             (fields_of i)
    | _ -> [ self ]
  in
  List.concat_map (fun (n, t) -> expand 0 (n, t)) st.globals

let pick_lv st pool (pred : gty -> bool) : lv option =
  pick st (List.filter (fun l -> pred l.lty) pool)

let is_ptr = function GPtr _ -> true | _ -> false

let same_ty a b = a = b

(* ------------------------------------------------------------------ *)
(* Statement generation                                                *)
(* ------------------------------------------------------------------ *)

let emit st fmt = Printf.ksprintf (fun s ->
    Buffer.add_string st.buf ("  " ^ s ^ "\n")) fmt

let cast_to st ty expr =
  Printf.sprintf "(%s)(%s)" (gty_to_c st.structs ty) expr

let gen_stmt st pool : unit =
  let lv p = pick_lv st pool p in
  match rand st 10 with
  | 0 | 1 -> (
      (* P = &X, possibly with a reinterpreting cast *)
      match lv is_ptr with
      | Some p -> (
          let pointee = match p.lty with GPtr t -> t | _ -> GInt in
          if chance st st.cfg.cast_rate then
            match lv (fun _ -> true) with
            | Some x ->
                emit st "%s = %s;" p.code
                  (cast_to st p.lty ("&" ^ x.code))
            | None -> ()
          else
            match lv (same_ty pointee) with
            | Some x -> emit st "%s = &%s;" p.code x.code
            | None -> ())
      | None -> ())
  | 2 -> (
      (* pointer copy P = Q (cast when types differ) *)
      match (lv is_ptr, lv is_ptr) with
      | Some p, Some q when p.code <> q.code ->
          if same_ty p.lty q.lty then emit st "%s = %s;" p.code q.code
          else emit st "%s = %s;" p.code (cast_to st p.lty q.code)
      | _ -> ())
  | 3 -> (
      (* store through pointer: *P = V or *P = &X *)
      match lv is_ptr with
      | Some p -> (
          let pointee = match p.lty with GPtr t -> t | _ -> GInt in
          match pointee with
          | GPtr inner -> (
              match lv (same_ty inner) with
              | Some x -> emit st "*%s = &%s;" p.code x.code
              | None -> ())
          | GStruct _ | GInt | GChar | GDouble -> (
              match lv (same_ty pointee) with
              | Some v -> emit st "*%s = %s;" p.code v.code
              | None -> ()))
      | None -> ())
  | 4 -> (
      (* load: V = *P *)
      match lv is_ptr with
      | Some p -> (
          let pointee = match p.lty with GPtr t -> t | _ -> GInt in
          match lv (same_ty pointee) with
          | Some v -> emit st "%s = *%s;" v.code p.code
          | None -> ())
      | None -> ())
  | 5 -> (
      (* field access through struct pointer *)
      match
        lv (function GPtr (GStruct _) -> true | _ -> false)
      with
      | Some p -> (
          let si = match p.lty with GPtr (GStruct i) -> i | _ -> 0 in
          match pick st (snd st.structs.(si)) with
          | Some (fn, ft) -> (
              match ft with
              | GPtr inner when chance st 0.5 -> (
                  match lv (same_ty inner) with
                  | Some x -> emit st "%s->%s = &%s;" p.code fn x.code
                  | None -> ())
              | _ -> (
                  match lv (same_ty ft) with
                  | Some v -> emit st "%s = %s->%s;" v.code p.code fn
                  | None -> ()))
          | None -> ())
      | None -> ())
  | 6 -> (
      (* struct blit at a different type *)
      match
        ( lv (function GStruct _ -> true | _ -> false),
          lv (function GStruct _ -> true | _ -> false) )
      with
      | Some a, Some b when a.code <> b.code ->
          let aty = gty_to_c st.structs a.lty in
          emit st "%s = *(%s *)&%s;" a.code aty b.code
      | _ -> ())
  | 7 -> (
      (* pointers hidden in a double (Complication 2) *)
      match lv (function GStruct _ -> true | _ -> false) with
      | Some g ->
          if chance st 0.5 then emit st "d0 = *(double *)&%s;" g.code
          else
            emit st "%s = *(%s *)&d0;" g.code (gty_to_c st.structs g.lty)
      | None -> ())
  | 8 -> (
      (* double indirection *)
      match rand st 3 with
      | 0 -> emit st "ppi0 = &pi%d;" (rand st 2)
      | 1 -> emit st "*ppi0 = &x%d;" (rand st 4)
      | _ -> emit st "pi%d = *ppi0;" (rand st 2))
  | 9 when st.cfg.with_calls -> (
      (* call one of the generated helper functions *)
      match rand st 7 with
      | 0 -> (
          match (lv (same_ty (GPtr GInt)), lv (same_ty (GPtr GInt))) with
          | Some a, Some b when a.code <> b.code ->
              emit st "%s = pick_int(%s, %s);" a.code a.code b.code
          | _ -> ())
      | 1 ->
          let i = rand st (Array.length st.structs) in
          (match
             ( lv (same_ty (GPtr (GStruct i))),
               lv (same_ty (GPtr (GStruct i))) )
           with
          | Some p, Some q -> emit st "%s = id_g%d(%s);" p.code i q.code
          | _ -> ())
      | 2 -> (
          (* mutually recursive pair: a non-trivial call-graph SCC *)
          match (lv (same_ty (GPtr GInt)), lv (same_ty (GPtr GInt))) with
          | Some a, Some b ->
              emit st "%s = mr_ping(%s, %d);" a.code b.code (1 + rand st 4)
          | _ -> ())
      | 3 -> (
          (* populate the function-pointer table *)
          match rand st 3 with
          | 0 -> emit st "cb0.pick = pick_int;"
          | 1 -> emit st "cb0.pick = &second_int;"
          | _ -> emit st "fp0 = cb0.pick;")
      | 4 -> (
          (* callback invoked inside a callee, through a struct *)
          match (lv (same_ty (GPtr GInt)), lv (same_ty (GPtr GInt))) with
          | Some a, Some b when a.code <> b.code ->
              emit st "%s = use_cb(&cb0, %s, %s);" a.code a.code b.code
          | _ -> ())
      | 5 -> (
          (* direct indirect call through the fp global or the table *)
          match (lv (same_ty (GPtr GInt)), lv (same_ty (GPtr GInt))) with
          | Some a, Some b when a.code <> b.code ->
              if chance st 0.5 then
                emit st "if (fp0) %s = fp0(%s, %s);" a.code a.code b.code
              else
                emit st "if (cb0.pick) %s = (*cb0.pick)(%s, %s);" a.code
                  a.code b.code
          | _ -> ())
      | _ -> (
          let i = rand st (Array.length st.structs) in
          let has_int_ptr_field =
            List.exists (fun (_, t) -> t = GPtr GInt) (snd st.structs.(i))
          in
          if has_int_ptr_field then
            match
              (lv (same_ty (GPtr (GStruct i))), lv (same_ty GInt))
            with
            | Some p, Some x -> emit st "set_g%d(%s, &%s);" i p.code x.code
            | _ -> ()))
  | _ -> (
      (* scalar churn to vary the program *)
      match (lv (same_ty GInt), lv (same_ty GInt)) with
      | Some a, Some b -> emit st "%s = %s + 1;" a.code b.code
      | _ -> ())

(* ------------------------------------------------------------------ *)
(* Whole-program generation                                            *)
(* ------------------------------------------------------------------ *)

let generate ?(cfg = default) ~(seed : int) () : string =
  let rng = Random.State.make [| seed; 0x5ca1ab1e |] in
  let structs = gen_structs rng cfg in
  let st = { rng; cfg; structs; globals = []; buf = Buffer.create 1024 } in
  declare_globals st;
  let b = Buffer.create 4096 in
  Array.iter
    (fun (name, fields) ->
      Buffer.add_string b (Printf.sprintf "struct %s {\n" name);
      List.iter
        (fun (fn, ft) ->
          Buffer.add_string b
            (Printf.sprintf "  %s %s;\n" (gty_to_c structs ft) fn))
        fields;
      Buffer.add_string b "};\n")
    structs;
  List.iter
    (fun (n, t) ->
      Buffer.add_string b (Printf.sprintf "%s %s;\n" (gty_to_c structs t) n))
    st.globals;
  if cfg.with_calls then begin
    (* helper functions callable from main's generated statements *)
    Buffer.add_string b
      "int *pick_int(int *a, int *b) { if (a) return a; return b; }\n";
    (* call-heavy shapes: a mutually recursive pair (a call-graph SCC
       wider than one function), a function-pointer table in a struct,
       and a callback invoked inside a callee through that struct *)
    Buffer.add_string b
      "int *second_int(int *a, int *b) { if (b) return b; return a; }\n\
       int *mr_pong(int *a, int n);\n\
       int *mr_ping(int *a, int n) { if (n) return mr_pong(a, n - 1); \
       return a; }\n\
       int *mr_pong(int *a, int n) { if (n) return mr_ping(a, n - 1); \
       return a; }\n\
       struct cbops { int *(*pick)(int *, int *); };\n\
       struct cbops cb0;\n\
       int *(*fp0)(int *, int *);\n\
       int *use_cb(struct cbops *o, int *a, int *b) {\n\
      \  if (o->pick) return (*o->pick)(a, b);\n\
      \  return a;\n\
       }\n";
    Array.iteri
      (fun i (name, fields) ->
        Buffer.add_string b
          (Printf.sprintf "struct %s *id_g%d(struct %s *p) { return p; }\n"
             name i name);
        match List.find_opt (fun (_, t) -> t = GPtr GInt) fields with
        | Some (fn, _) ->
            Buffer.add_string b
              (Printf.sprintf
                 "void set_g%d(struct %s *g, int *v) { g->%s = v; }\n" i name
                 fn)
        | None -> ())
      structs
  end;
  Buffer.add_string b "void main(void) {\n";
  let pool = lvalue_pool st in
  for _ = 1 to cfg.n_stmts do
    gen_stmt st pool
  done;
  Buffer.add_string b (Buffer.contents st.buf);
  Buffer.add_string b "}\n";
  Buffer.contents b
