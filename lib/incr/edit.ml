open Cfront
open Norm

type op =
  | Add of string * Nast.kind * bool
  | Remove of string * int
  | Mutate of string * int * Nast.kind * bool

let vars_of_kind (k : Nast.kind) : Cvar.t list =
  match k with
  | Nast.Addr (s, t, _) | Nast.Addr_deref (s, t, _) | Nast.Copy (s, t, _) ->
      [ s; t ]
  | Nast.Load (s, q) -> [ s; q ]
  | Nast.Store (p, v) -> [ p; v ]
  | Nast.Arith (s, v) -> [ s; v ]
  | Nast.Call { Nast.cret; cfn; cargs } ->
      (match cret with Some v -> [ v ] | None -> [])
      @ (match cfn with Nast.Indirect v -> [ v ] | Nast.Direct _ -> [])
      @ cargs

let apply (p : Nast.program) (ops : op list) : Nast.program =
  let next_id =
    ref
      (List.fold_left
         (fun m (s : Nast.stmt) -> max m s.Nast.id)
         0 (Nast.all_stmts p))
  in
  let app (p : Nast.program) (op : op) : Nast.program =
    let mk kind deref =
      incr next_id;
      {
        Nast.id = !next_id;
        kind;
        loc = Srcloc.dummy;
        is_source_deref = deref;
      }
    in
    (* register variables the new statement mentions but the program
       does not know yet *)
    let with_vars (p : Nast.program) (kind : Nast.kind) : Nast.program =
      let known = Hashtbl.create 64 in
      List.iter
        (fun (v : Cvar.t) -> Hashtbl.replace known v.Cvar.vid ())
        p.Nast.pall_vars;
      let fresh =
        List.filter
          (fun (v : Cvar.t) ->
            if Hashtbl.mem known v.Cvar.vid then false
            else begin
              Hashtbl.replace known v.Cvar.vid ();
              true
            end)
          (vars_of_kind kind)
      in
      if fresh = [] then p
      else
        {
          p with
          Nast.pall_vars = p.Nast.pall_vars @ fresh;
          pglobals =
            p.Nast.pglobals
            @ List.filter (fun (v : Cvar.t) -> v.Cvar.vkind = Cvar.Global) fresh;
        }
    in
    let upd_func fname g =
      {
        p with
        Nast.pfuncs =
          List.map
            (fun (f : Nast.func) -> if f.Nast.fname = fname then g f else f)
            p.Nast.pfuncs;
      }
    in
    match op with
    | Add (fname, kind, deref) ->
        let p' = with_vars p kind in
        {
          p' with
          Nast.pfuncs =
            List.map
              (fun (f : Nast.func) ->
                if f.Nast.fname = fname then
                  { f with Nast.fstmts = f.Nast.fstmts @ [ mk kind deref ] }
                else f)
              p'.Nast.pfuncs;
        }
    | Remove (fname, idx) ->
        upd_func fname (fun f ->
            {
              f with
              Nast.fstmts = List.filteri (fun i _ -> i <> idx) f.Nast.fstmts;
            })
    | Mutate (fname, idx, kind, deref) ->
        let p' = with_vars p kind in
        {
          p' with
          Nast.pfuncs =
            List.map
              (fun (f : Nast.func) ->
                if f.Nast.fname = fname then
                  {
                    f with
                    Nast.fstmts =
                      List.mapi
                        (fun i s -> if i = idx then mk kind deref else s)
                        f.Nast.fstmts;
                  }
                else f)
              p'.Nast.pfuncs;
        }
  in
  List.fold_left app p ops

(* fresh-global counter: names only need to be unique per process *)
let minted = ref 0

let random_op ~(rand : Random.State.t) (p : Nast.program) : op option =
  let pick l = List.nth l (Random.State.int rand (List.length l)) in
  let named_kind (v : Cvar.t) =
    match v.Cvar.vkind with
    | Cvar.Global | Cvar.Local _ | Cvar.Param _ -> true
    | _ -> false
  in
  let ptrs =
    List.filter
      (fun (v : Cvar.t) -> named_kind v && Ctype.is_ptr v.Cvar.vty)
      p.Nast.pall_vars
  in
  let objs = List.filter named_kind p.Nast.pall_vars in
  let funcs = p.Nast.pfuncs in
  if funcs = [] || ptrs = [] || objs = [] then None
  else begin
    let random_kind () : Nast.kind * bool =
      let lhs () =
        (* occasionally mint a fresh global pointer, exercising the
           added-variable path of the differ *)
        if Random.State.int rand 5 = 0 then begin
          incr minted;
          Cvar.fresh
            ~name:(Printf.sprintf "$incr%d" !minted)
            ~ty:(Ctype.Ptr (pick ptrs).Cvar.vty)
            ~kind:Cvar.Global
        end
        else pick ptrs
      in
      match Random.State.int rand 5 with
      | 0 -> (Nast.Addr (lhs (), pick objs, []), false)
      | 1 -> (Nast.Copy (lhs (), pick ptrs, []), false)
      | 2 -> (Nast.Load (lhs (), pick ptrs), true)
      | 3 -> (Nast.Store (pick ptrs, pick ptrs), true)
      | _ -> (Nast.Arith (lhs (), pick ptrs), false)
    in
    let nonempty =
      List.filter (fun (f : Nast.func) -> f.Nast.fstmts <> []) funcs
    in
    match Random.State.int rand 4 with
    | (2 | 3) when nonempty <> [] ->
        let f = pick nonempty in
        let idx = Random.State.int rand (List.length f.Nast.fstmts) in
        if Random.State.bool rand then Some (Remove (f.Nast.fname, idx))
        else
          let kind, deref = random_kind () in
          Some (Mutate (f.Nast.fname, idx, kind, deref))
    | _ ->
        let f = pick funcs in
        let kind, deref = random_kind () in
        Some (Add (f.Nast.fname, kind, deref))
  end

let pp_op ppf = function
  | Add (f, k, _) -> Fmt.pf ppf "%s += %a" f Nast.pp_kind k
  | Remove (f, i) -> Fmt.pf ppf "%s -= #%d" f i
  | Mutate (f, i, k, _) -> Fmt.pf ppf "%s #%d := %a" f i Nast.pp_kind k
