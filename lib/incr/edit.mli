(** Scripted edits over normalized programs.

    Benchmarks and the fuzz harness need edit scripts that share the
    base program's variables (so the diff is exactly the scripted
    statement, not a whole-program realignment). An {!op} edits one
    statement of one function at the {!Norm.Nast} level; {!apply}
    renumbers inserted statements past the program's maximum id and
    registers any new variables.

    Global-initializer statements ([pinit]) are never edited — every op
    targets a function body. *)

open Norm

type op =
  | Add of string * Nast.kind * bool
      (** [Add (fname, kind, is_source_deref)]: append one statement to
          [fname]'s body *)
  | Remove of string * int  (** remove [fname]'s [i]-th statement *)
  | Mutate of string * int * Nast.kind * bool
      (** replace [fname]'s [i]-th statement (a remove plus an add) *)

val apply : Nast.program -> op list -> Nast.program
(** Apply the ops left to right ([Remove]/[Mutate] indices refer to the
    program the preceding ops produced). Out-of-range indices and
    unknown function names are ignored. *)

val random_op : rand:Random.State.t -> Nast.program -> op option
(** One random edit: add, remove, or mutate a single normalized
    statement, drawing variables from the program (occasionally minting
    a fresh global pointer). [None] when the program offers nothing to
    edit (no functions, or no pointer-typed variables to build a
    statement from). *)

val pp_op : Format.formatter -> op -> unit
