(** Program diffing for incremental re-analysis.

    Two compiles of (nearly) the same source produce structurally equal
    but physically distinct programs: every {!Cfront.Cvar.t} gets a
    fresh [vid] and every statement a per-compile id. To hand the solver
    a small statement delta instead of a new program, each normalized
    statement is keyed by a canonical rendering of its lowered form plus
    its enclosing function — independent of variable identity, statement
    ids, and source locations — and the two versions are diffed as
    multisets of keys.

    [align] additionally rebuilds the edited program over the base
    program's variables: statements present in both versions reuse the
    base statement value verbatim (ids, and hence the solver's cursors
    and subscriptions, stay valid), and unmatched statements have their
    variables remapped to the base variable with the same key where one
    exists. Solving the aligned program from scratch is therefore
    directly comparable — cell by cell — with warm-starting the base
    solver, which is the incremental engine's differential oracle.

    Matching runs in two passes: exact keys first, then the leftovers
    re-matched with the [is_source_deref] flag ignored. The flag feeds
    only deref diagnostics — never a derived constraint — so a mutation
    that merely flips it is {e equivalent after alignment}: the base
    statement is kept (with the edited flag), the diff stays empty, and
    the incremental engine skips retraction entirely for such edits.

    Call statements embed their callee's interface fingerprint in the
    key (indirect calls a fingerprint of {e all} defined interfaces), so
    a signature change or a function gaining/losing a body invalidates
    exactly the calls whose parameter/return bindings it alters.

    Approximation: two distinct variables with the same name, kind,
    scope and type (shadowed block locals) share one key and are
    conflated by the remapping. The lowered corpus does not produce such
    pairs. Heap objects are keyed by their program-wide allocation
    ordinal (never by source coordinates, so line shifts are invisible);
    an edit that inserts or removes an allocation site shifts the
    ordinals after it, and those heap objects diff as removed +
    re-added. *)

open Cfront
open Norm

val var_key : Cvar.t -> string
(** Identity-free key: name, kind (with enclosing scope), and declared
    type. A type change makes a different key — the variable is treated
    as removed and re-added. *)

val interface_key : Nast.func -> string
(** Identity-free fingerprint of a function's calling interface: its
    name plus the {!var_key}s of parameters, return slot, and vararg
    sink. Embedded in call-statement keys and in [lib/summary]'s body
    digests. *)

val stmt_key : iface:(string -> string) -> scope:string -> Nast.stmt -> string
(** Canonical key of a statement inside [scope] (a function name, or
    ["<init>"] for global initializers). [iface] renders a called
    function's interface fingerprint (["*"] queries the fingerprint of
    all defined functions, used for indirect calls). *)

val iface_of_program : Nast.program -> string -> string
(** The interface-fingerprint oracle of a program, for {!stmt_key}. *)

type t = {
  added : Nast.stmt list;
      (** statements of the aligned program with no base counterpart, in
          program order, with fresh ids past the base program's maximum *)
  removed : Nast.stmt list;
      (** base statements absent from the edited version, in base
          program order *)
  added_vars : Cvar.t list;  (** edited variables with no base-key match *)
  removed_vars : Cvar.t list;  (** base variables keyed out of existence *)
}

val align : base:Nast.program -> Nast.program -> Nast.program * t
(** [align ~base edited] is the edited program rebuilt over [base]'s
    variables and statement values, plus the delta between the two. *)

val diff : base:Nast.program -> Nast.program -> t
(** Just the delta of {!align}. *)

val funcs_changed : base:Nast.program -> Nast.program -> string list
(** Names of functions whose interface or body statement-key multiset
    differs between the two programs (added and removed functions
    included), sorted. Because indirect calls key on the fingerprint of
    {e all} defined interfaces, a signature change anywhere also lists
    every function containing an indirect call — exactly the set whose
    summaries {!Summary} must recompute. *)
