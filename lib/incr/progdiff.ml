(** Canonical statement keying and program diffing. See the interface
    for the contract; the implementation notes below cover the choices
    that matter for the differential guarantee.

    - Keys never mention [vid]s, statement ids, or source locations:
      recompiling unchanged source yields byte-identical keys.
    - Matching is a multiset diff per (scope, key) bucket: duplicated
      statements pair up positionally, so an edit that deletes one of
      two identical stores removes exactly one.
    - Matched statements keep the {e base} statement value — its id is
      what the solver's cursors, subscriptions and support tables are
      keyed by.
    - [var_key] is invariant under the remapping it drives (a base
      variable and its edited counterpart render the same key), so keys
      can be computed on the raw edited statements. *)

open Cfront
open Norm

let var_key (v : Cvar.t) : string =
  let kind =
    match v.Cvar.vkind with
    | Cvar.Global -> "g"
    | Cvar.Local f -> "l:" ^ f
    | Cvar.Param f -> "p:" ^ f
    | Cvar.Temp f -> "t:" ^ f
    | Cvar.Ret f -> "r:" ^ f
    (* keyed by allocation ordinal, not source coordinates: an edit that
       only shifts lines above the allocation site must not invalidate
       the heap object (inserting/removing an {e allocation} earlier in
       the program still shifts later ordinals — those objects are
       treated as removed + re-added, which retraction handles) *)
    | Cvar.Heap (_, site) -> "h:" ^ string_of_int site
    | Cvar.Strlit i -> "s:" ^ string_of_int i
    | Cvar.Funval f -> "f:" ^ f
    | Cvar.Vararg f -> "v:" ^ f
  in
  Printf.sprintf "%s|%s|%s" v.Cvar.vname kind (Ctype.to_string v.Cvar.vty)

let interface_key (f : Nast.func) : string =
  Printf.sprintf "%s(%s)%s%s" f.Nast.fname
    (String.concat "," (List.map var_key f.Nast.fparams))
    (match f.Nast.fret with Some r -> "->" ^ var_key r | None -> "")
    (match f.Nast.fvararg with Some v -> "~" ^ var_key v | None -> "")

let iface_of_program (p : Nast.program) : string -> string =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (f : Nast.func) -> Hashtbl.replace tbl f.Nast.fname (interface_key f))
    p.Nast.pfuncs;
  (* any defined function's signature changing can redirect any indirect
     call, so indirect calls key on a fingerprint of all interfaces. It
     must be a full-content digest: the polymorphic [Hashtbl.hash] only
     examines a bounded prefix of its input, so interfaces past that
     limit would not affect the key and their signature changes would
     silently miss invalidating indirect calls. *)
  let all =
    Digest.to_hex
      (Digest.string
         (String.concat "\n"
            (List.sort compare (Hashtbl.fold (fun _ v acc -> v :: acc) tbl []))))
  in
  fun name ->
    if name = "*" then all
    else
      match Hashtbl.find_opt tbl name with Some k -> k | None -> "undef"

let kind_key ~(iface : string -> string) (k : Nast.kind) : string =
  match k with
  | Nast.Addr (s, t, b) ->
      Printf.sprintf "A|%s|%s|%s" (var_key s) (var_key t)
        (Ctype.path_to_string b)
  | Nast.Addr_deref (s, p, a) ->
      Printf.sprintf "D|%s|%s|%s" (var_key s) (var_key p)
        (Ctype.path_to_string a)
  | Nast.Copy (s, t, b) ->
      Printf.sprintf "C|%s|%s|%s" (var_key s) (var_key t)
        (Ctype.path_to_string b)
  | Nast.Load (s, q) -> Printf.sprintf "L|%s|%s" (var_key s) (var_key q)
  | Nast.Store (p, v) -> Printf.sprintf "S|%s|%s" (var_key p) (var_key v)
  | Nast.Arith (s, v) -> Printf.sprintf "R|%s|%s" (var_key s) (var_key v)
  | Nast.Call { Nast.cret; cfn; cargs } ->
      let ret = match cret with Some v -> var_key v | None -> "-" in
      let fn =
        match cfn with
        | Nast.Direct n -> "d:" ^ n ^ "~" ^ iface n
        | Nast.Indirect v -> "i:" ^ var_key v ^ "~" ^ iface "*"
      in
      Printf.sprintf "K|%s|%s|%s" ret fn
        (String.concat "," (List.map var_key cargs))

let stmt_key ~iface ~(scope : string) (s : Nast.stmt) : string =
  Printf.sprintf "%s|%b|%s" scope s.Nast.is_source_deref
    (kind_key ~iface s.Nast.kind)

type t = {
  added : Nast.stmt list;
  removed : Nast.stmt list;
  added_vars : Cvar.t list;
  removed_vars : Cvar.t list;
}

let align ~(base : Nast.program) (edited : Nast.program) : Nast.program * t =
  let base_iface = iface_of_program base in
  let ed_iface = iface_of_program edited in
  (* variable remapping: key → base variable, first in [pall_vars] order *)
  let vmap = Hashtbl.create 64 in
  List.iter
    (fun v ->
      let k = var_key v in
      if not (Hashtbl.mem vmap k) then Hashtbl.add vmap k v)
    base.Nast.pall_vars;
  let added_vars = ref [] in
  let mapvar (v : Cvar.t) : Cvar.t =
    let k = var_key v in
    match Hashtbl.find_opt vmap k with
    | Some bv -> bv
    | None ->
        (* genuinely new: keep the edited variable, and bind its key so
           every later occurrence maps to this same value *)
        added_vars := v :: !added_vars;
        Hashtbl.add vmap k v;
        v
  in
  (* statement multiset: (scope, key) → base statements in order, plus
     a secondary multiset keyed without the [is_source_deref] flag for
     the equivalence pass below *)
  let buckets = Hashtbl.create 256 in
  let buckets2 = Hashtbl.create 256 in
  let enqueue tbl k (s : Nast.stmt) =
    let q =
      match Hashtbl.find_opt tbl k with
      | Some q -> q
      | None ->
          let q = Queue.create () in
          Hashtbl.add tbl k q;
          q
    in
    Queue.add s q
  in
  let put scope (s : Nast.stmt) =
    enqueue buckets (stmt_key ~iface:base_iface ~scope s) s;
    enqueue buckets2 (scope ^ "|" ^ kind_key ~iface:base_iface s.Nast.kind) s
  in
  List.iter (put "<init>") base.Nast.pinit;
  List.iter
    (fun (f : Nast.func) -> List.iter (put f.Nast.fname) f.Nast.fstmts)
    base.Nast.pfuncs;
  let next_id =
    ref
      (List.fold_left
         (fun m (s : Nast.stmt) -> max m s.Nast.id)
         0 (Nast.all_stmts base))
  in
  let map_kind (k : Nast.kind) : Nast.kind =
    match k with
    | Nast.Addr (s, t, b) -> Nast.Addr (mapvar s, mapvar t, b)
    | Nast.Addr_deref (s, p, a) -> Nast.Addr_deref (mapvar s, mapvar p, a)
    | Nast.Copy (s, t, b) -> Nast.Copy (mapvar s, mapvar t, b)
    | Nast.Load (s, q) -> Nast.Load (mapvar s, mapvar q)
    | Nast.Store (p, v) -> Nast.Store (mapvar p, mapvar v)
    | Nast.Arith (s, v) -> Nast.Arith (mapvar s, mapvar v)
    | Nast.Call { Nast.cret; cfn; cargs } ->
        Nast.Call
          {
            Nast.cret = Option.map mapvar cret;
            cfn =
              (match cfn with
              | Nast.Direct n -> Nast.Direct n
              | Nast.Indirect v -> Nast.Indirect (mapvar v));
            cargs = List.map mapvar cargs;
          }
  in
  let matched = Hashtbl.create 256 in
  let added = ref [] in
  (* Two matching passes before the program is rebuilt. Pass 1 pairs on
     the exact key. Pass 2 pairs the leftovers on the key {e without}
     the [is_source_deref] flag: the flag feeds only deref diagnostics,
     never a derived constraint, so a mutation that merely flips it is
     equivalent after alignment — the base statement (and with it the
     solver's cursors, subscriptions and support) is kept, the edited
     flag is taken, and the diff stays empty instead of forcing a
     retract-and-replay cycle. Running pass 2 only after pass 1 has
     seen every edited statement keeps it from stealing a base
     statement that still has an exact twin later in the program. *)
  let resolved = Hashtbl.create 256 in
  let try_exact scope (s : Nast.stmt) =
    let k = stmt_key ~iface:ed_iface ~scope s in
    match Hashtbl.find_opt buckets k with
    | Some q when not (Queue.is_empty q) ->
        let b = Queue.pop q in
        Hashtbl.replace matched b.Nast.id ();
        Hashtbl.replace resolved s.Nast.id b
    | _ -> ()
  in
  let try_equiv scope (s : Nast.stmt) =
    if not (Hashtbl.mem resolved s.Nast.id) then
      match
        Hashtbl.find_opt buckets2
          (scope ^ "|" ^ kind_key ~iface:ed_iface s.Nast.kind)
      with
      | Some q ->
          (* the secondary queue shadows the primary one, so skip base
             statements an exact match already claimed *)
          let rec pop () =
            if not (Queue.is_empty q) then
              let b = Queue.pop q in
              if Hashtbl.mem matched b.Nast.id then pop ()
              else begin
                Hashtbl.replace matched b.Nast.id ();
                Hashtbl.replace resolved s.Nast.id
                  { b with Nast.is_source_deref = s.Nast.is_source_deref }
              end
          in
          pop ()
      | None -> ()
  in
  let each_stmt f =
    List.iter (f "<init>") edited.Nast.pinit;
    List.iter
      (fun (fn : Nast.func) -> List.iter (f fn.Nast.fname) fn.Nast.fstmts)
      edited.Nast.pfuncs
  in
  each_stmt try_exact;
  each_stmt try_equiv;
  let align_stmt _scope (s : Nast.stmt) : Nast.stmt =
    match Hashtbl.find_opt resolved s.Nast.id with
    | Some b -> b
    | None ->
        incr next_id;
        let s' = { s with Nast.id = !next_id; kind = map_kind s.Nast.kind } in
        added := s' :: !added;
        s'
  in
  let pinit = List.map (align_stmt "<init>") edited.Nast.pinit in
  let pfuncs =
    List.map
      (fun (f : Nast.func) ->
        {
          Nast.fname = f.Nast.fname;
          ffvar = mapvar f.Nast.ffvar;
          fparams = List.map mapvar f.Nast.fparams;
          fret = Option.map mapvar f.Nast.fret;
          fvararg = Option.map mapvar f.Nast.fvararg;
          fstmts = List.map (align_stmt f.Nast.fname) f.Nast.fstmts;
        })
      edited.Nast.pfuncs
  in
  let dedup_vars vs =
    let seen = Hashtbl.create 64 in
    List.filter
      (fun (v : Cvar.t) ->
        if Hashtbl.mem seen v.Cvar.vid then false
        else begin
          Hashtbl.replace seen v.Cvar.vid ();
          true
        end)
      vs
  in
  let aligned =
    {
      Nast.pfile = edited.Nast.pfile;
      pglobals = dedup_vars (List.map mapvar edited.Nast.pglobals);
      pfuncs;
      pexterns = List.map (fun (n, v) -> (n, mapvar v)) edited.Nast.pexterns;
      pinit;
      pall_vars = dedup_vars (List.map mapvar edited.Nast.pall_vars);
    }
  in
  let removed =
    List.filter
      (fun (s : Nast.stmt) -> not (Hashtbl.mem matched s.Nast.id))
      (Nast.all_stmts base)
  in
  let ed_keys = Hashtbl.create 64 in
  List.iter
    (fun v -> Hashtbl.replace ed_keys (var_key v) ())
    edited.Nast.pall_vars;
  let removed_vars =
    dedup_vars
      (List.filter
         (fun v -> not (Hashtbl.mem ed_keys (var_key v)))
         base.Nast.pall_vars)
  in
  ( aligned,
    {
      added = List.rev !added;
      removed;
      added_vars = List.rev !added_vars;
      removed_vars;
    } )

let diff ~base edited : t = snd (align ~base edited)

let funcs_changed ~(base : Nast.program) (edited : Nast.program) :
    string list =
  let body_sig (p : Nast.program) =
    let iface = iface_of_program p in
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (f : Nast.func) ->
        let keys =
          List.map (stmt_key ~iface ~scope:f.Nast.fname) f.Nast.fstmts
        in
        Hashtbl.replace tbl f.Nast.fname
          (interface_key f :: List.sort compare keys))
      p.Nast.pfuncs;
    tbl
  in
  let b = body_sig base and e = body_sig edited in
  let changed = Hashtbl.create 16 in
  let scan one other =
    Hashtbl.iter
      (fun name sg ->
        match Hashtbl.find_opt other name with
        | Some sg' when sg = sg' -> ()
        | _ -> Hashtbl.replace changed name ())
      one
  in
  scan b e;
  scan e b;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) changed [])
