(** Incremental re-analysis: warm-start solving and retraction.

    Given a solver at fixpoint and an edited version of its program,
    {!reanalyze} brings the solver to the edited program's fixpoint
    without recomputing from scratch whenever it can:

    - {b Additive edits} (no statements removed): the edited program is
      aligned over the base's variables ({!Progdiff.align}), the new
      statements are enqueued into the live solver — their cells intern
      against the existing cell table, their cursors start at the log
      tails' left edge and the existing subscriptions wake exactly the
      statements the new facts reach — and the delta engine resumes.
      Monotonicity makes this exact: the base fixpoint is a
      sub-fixpoint of the edited program's least fixpoint, and the
      resumed run closes the gap.

    - {b Edits with removals} (targeted delete-and-rederive): facts are
      not monotone under statement removal, so the engine uses the
      per-statement support counts a [~track:true] solver records.
      Every direct edge or copy constraint whose last deriving
      statement disappeared seeds an {e affected} set of cells; the set
      is closed under copy-edge flow, class sharing, and read-to-write
      dependence (a surviving reader of an affected cell is invalidated
      and its support spent like a removed statement's). Marking is
      narrowed per fact: a dying constraint endangers only the facts it
      carried, and an endangered fact only marks its class when it has
      neither a surviving direct derivation onto a class member nor a
      surviving copy inflow from an unaffected class whose every fact
      is itself directly supported — so a single dead edge typically
      affects a single cell, not everything downstream. The affected
      classes are then cleared surgically
      ({!Core.Solver.retract_cells}) — cursors, copy edges,
      subscriptions, attribution and extern records for everything
      unaffected survive — and only the statements the retraction could
      have touched are replayed: the added ones, the woken readers, the
      writers into affected cells, and the installers of copy
      constraints over a cleared class. The resumed monotone solve over
      the retained facts re-derives exactly the edited program's
      fixpoint, at a cost proportional to what actually died rather
      than to the program.

    - {b Fallback}: when the affected closure exceeds [retract_budget]
      cells, the base fixpoint is budget-degraded, or removals arrive
      without support tracking, the engine solves the aligned program
      from scratch and reports a [degraded-incremental] warning through
      the diagnostics context (precision is unaffected — only the warm
      start is given up, so the condition is a warning, not an error).

    - {b Planned fallback}: before retracting, the engine estimates
      whether retraction can win — the removed statements' share of all
      attributed constraints, and (once the closure is computed) the
      affected cells' share of all fact-bearing cells. When either says
      the replay would re-derive most of the fixpoint anyway, a scratch
      solve is strictly cheaper (no closure, no clearing) and the
      engine chooses it proactively. That choice is a plan, not a
      degradation: no warning is emitted, and it surfaces as the
      [incr_fallback_planned] metric ([stats.fallback_planned]). The
      guard only engages past an absolute size floor, so small
      interactive edits always exercise the retraction path.

    The differential guarantee — warm result {!Core.Graph.equal} and
    stats-free-JSON byte-identical to a from-scratch solve of the
    aligned program — holds for all four strategies and all three
    engines, and is enforced by [test/test_incr.ml] and the fuzz
    harness. *)

open Cfront
open Norm
open Core

type stats = {
  stmts_added : int;
  stmts_removed : int;
  facts_retracted : int;
      (** facts cleared from affected cells before the replay *)
  affected_cells : int;  (** size of the retraction closure *)
  warm_visits : int;
      (** statement visits this re-analysis performed (on fallback: the
          visits of the from-scratch solve) *)
  stmts_replayed : int;
      (** statements the targeted replay re-enqueued (added + woken +
          writers into affected cells + copy installers over them; the
          whole program on fallback) *)
  fallback : bool;  (** the engine re-solved from scratch *)
  fallback_planned : bool;
      (** the scratch solve was the cost estimate's proactive choice
          (implies [fallback]); no degradation warning was emitted *)
}

val default_retract_budget : int

val reanalyze :
  ?retract_budget:int ->
  ?diags:Diag.ctx ->
  Solver.t ->
  Nast.program ->
  Solver.t * stats
(** [reanalyze t edited] brings [t] to [edited]'s fixpoint. The
    returned solver is [t] itself warm-started in place, or a fresh
    solver when the engine fell back to scratch — always use the
    returned value. On fallback [t] is left at the base fixpoint,
    unmodified (support counters included), so a later [reanalyze] of
    [t] — e.g. with a larger [retract_budget] — is still valid. The
    returned solver's [incr_*] counters are set either way, so
    {!Core.Metrics.summarize} reports the edit. *)
