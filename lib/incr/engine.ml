(** Warm-start solving and support-counting retraction. The soundness
    argument for the retraction path:

    every fact whose derivation chain involves a removed statement lies
    in an affected cell. By induction over the chain: the first removed
    link is either a direct edge whose support hit zero (its source
    cell seeds the closure), a copy constraint whose support hit zero
    (its destination seeds), or a fact that reached a cell through a
    surviving constraint from an affected cell (copy-flow rule), or a
    fact a surviving statement derived after reading an affected cell
    (read-to-write rule). Class sharing is closed over explicitly:
    unified cells share one set, so marking any member marks all.

    Clearing affected cells and replaying every statement then
    converges to exactly the edited program's fixpoint: retained facts
    are all derivable without the removed statements, and the replay is
    the ordinary monotone solve seeded with them. *)

open Cfront
open Norm
open Core

type stats = {
  stmts_added : int;
  stmts_removed : int;
  facts_retracted : int;
  affected_cells : int;
  warm_visits : int;
  fallback : bool;
  fallback_planned : bool;
}

let default_retract_budget = 10_000

(* The retraction cost guard (below) only engages past this many
   constraints/source cells: on small fixpoints the closure and clear
   are too cheap to be worth predicting, and the retraction path is the
   one we want exercised by tests and small interactive edits. *)
let plan_floor = 64

exception Too_wide

(** From-scratch solve of the aligned program under the base solver's
    configuration, with the fallback reported as a warning (precision
    is unaffected, so this must not flip the CLI into exit code 1). *)
let scratch ?diags ~(why : string) (t : Solver.t) (prog : Nast.program) :
    Solver.t =
  (match diags with
  | Some d ->
      Diag.warn d "degraded-incremental: %s; solving the edit from scratch"
        why
  | None -> ());
  Solver.run ~layout:t.Solver.ctx.Actx.layout ~arith:t.Solver.arith_mode
    ~budget:t.Solver.budget.Budget.limits ~engine:t.Solver.engine
    ~track:t.Solver.track ~strategy:t.Solver.base_strategy prog

(** The affected-cell closure for a removal edit. Runs against the
    still-solved state (class sharing and cursors intact) and never
    mutates [t] — support spent by the removed statements is counted in
    a local table, so aborting leaves the solver at the base fixpoint,
    reusable for a later attempt. Raises {!Too_wide} past
    [retract_budget] cells. Returns the removed statement ids and the
    affected set. *)
let closure (t : Solver.t) (d : Progdiff.t) ~(retract_budget : int) :
    (int, unit) Hashtbl.t * (int, unit) Hashtbl.t =
  let removed_ids = Hashtbl.create 16 in
  List.iter
    (fun (s : Nast.stmt) -> Hashtbl.replace removed_ids s.Nast.id ())
    d.Progdiff.removed;
  let affected = Hashtbl.create 256 in
  let queue = Queue.create () in
  let rec mark (cid : int) =
    if not (Hashtbl.mem affected cid) then begin
      Hashtbl.replace affected cid ();
      if Hashtbl.length affected > retract_budget then raise Too_wide;
      Queue.add cid queue;
      (* unified cells share one set: marking any member marks all *)
      List.iter
        (fun (m : Cell.t) -> mark (Cell.id m))
        (Graph.class_members t.Solver.graph (Cell.of_id cid))
    end
  in
  (* seeds: support that the removed statements were the last to hold.
     Decrements are tentative — accumulated in local tables, never
     applied to the solver's counters (on success the replay resets the
     tracking tables anyway; on Too_wide [t] must stay pristine). *)
  let spent_edge = Hashtbl.create 64 in
  let spent_copy = Hashtbl.create 64 in
  let spend support spent key =
    match Hashtbl.find_opt support key with
    | Some r ->
        let d = 1 + (try Hashtbl.find spent key with Not_found -> 0) in
        Hashtbl.replace spent key d;
        !r - d <= 0
    | None -> false
  in
  Hashtbl.iter
    (fun sid () ->
      (match Solver.Itbl.find_opt t.Solver.stmt_edges sid with
      | Some l ->
          List.iter
            (fun ((c, _) as e) ->
              if spend t.Solver.edge_support spent_edge e then mark c)
            !l
      | None -> ());
      match Solver.Itbl.find_opt t.Solver.stmt_copies sid with
      | Some l ->
          List.iter
            (fun ((_, cd) as e) ->
              if spend t.Solver.copy_support spent_copy e then mark cd)
            !l
      | None -> ())
    removed_ids;
  (* surviving copy constraints, as adjacency over install-time ids *)
  let copy_adj = Hashtbl.create 256 in
  Hashtbl.iter
    (fun ((cs, cd) as key) r ->
      let d = try Hashtbl.find spent_copy key with Not_found -> 0 in
      if !r - d > 0 then
        Hashtbl.replace copy_adj cs
          (cd :: (try Hashtbl.find copy_adj cs with Not_found -> [])))
    t.Solver.copy_support;
  (* surviving cursor readers: cell id → statement ids consuming it *)
  let readers = Hashtbl.create 256 in
  Solver.Itbl.iter
    (fun sid tbl ->
      if not (Hashtbl.mem removed_ids sid) then
        Solver.Itbl.iter
          (fun cid _ ->
            Hashtbl.replace readers cid
              (sid :: (try Hashtbl.find readers cid with Not_found -> [])))
          tbl)
    t.Solver.cursors;
  let writes (sid : int) : int list =
    (match Solver.Itbl.find_opt t.Solver.stmt_edges sid with
    | Some l -> List.map fst !l
    | None -> [])
    @
    match Solver.Itbl.find_opt t.Solver.stmt_copies sid with
    | Some l -> List.map snd !l
    | None -> []
  in
  let woken = Hashtbl.create 256 in
  let wake (sid : int) =
    if not (Hashtbl.mem removed_ids sid) && not (Hashtbl.mem woken sid) then begin
      Hashtbl.replace woken sid ();
      (* the statement read an affected cell: everything it derived —
         anywhere — may have depended on the retracted facts *)
      List.iter mark (writes sid)
    end
  in
  while not (Queue.is_empty queue) do
    let cid = Queue.pop queue in
    (match Hashtbl.find_opt copy_adj cid with
    | Some dsts -> List.iter mark dsts
    | None -> ());
    (match Hashtbl.find_opt readers cid with
    | Some sids -> List.iter wake sids
    | None -> ());
    (* object-level subscriptions (the naive engine's only read
       channel; graph-dependent resolves under delta) *)
    match Cvar.Tbl.find_opt t.Solver.subscribers (Cell.of_id cid).Cell.base with
    | Some l -> List.iter (fun (s : Nast.stmt) -> wake s.Nast.id) !l
    | None -> ()
  done;
  (removed_ids, affected)

(** Clear the affected cells and replay: reset delta and attribution
    state, drop the removed statements' subscriptions, remove the
    affected cells' facts, swap in the aligned program, and solve the
    whole statement list over the retained facts. *)
let execute (t : Solver.t) (aligned : Nast.program)
    (removed_ids : (int, unit) Hashtbl.t) (affected : (int, unit) Hashtbl.t) :
    int * int * int =
  let cids = List.sort compare (Hashtbl.fold (fun k () a -> k :: a) affected []) in
  (* unshares the graph (remove_source needs the per-cell view) and
     drops cursors, copy edges and attribution — all of which name the
     pre-edit fixpoint *)
  Solver.reset_deltas t;
  Cvar.Tbl.iter
    (fun _ l ->
      l :=
        List.filter
          (fun (s : Nast.stmt) -> not (Hashtbl.mem removed_ids s.Nast.id))
          !l)
    t.Solver.subscribers;
  Hashtbl.iter
    (fun sid () -> Solver.Itbl.remove t.Solver.stmt_subs sid)
    removed_ids;
  let retracted = ref 0 in
  List.iter
    (fun cid ->
      let c = Cell.of_id cid in
      retracted := !retracted + Graph.pts_size t.Solver.graph c;
      Graph.remove_source t.Solver.graph c)
    cids;
  Solver.set_program t aligned;
  (* every call statement replays, so the extern set rebuilds exactly *)
  t.Solver.unknown_externs <- [];
  let r0 = t.Solver.rounds in
  List.iter (Solver.enqueue t) (Nast.all_stmts aligned);
  Solver.resume t;
  (!retracted, List.length cids, t.Solver.rounds - r0)

(** The retraction cost guard's pre-closure estimate: the share of all
    attributed constraints (direct edges + copy installs) the removed
    statements derived. When the removed statements account for a large
    slice, the affected closure will cover most of the graph and the
    replay re-derives nearly everything — a scratch solve does the same
    work without first paying for the closure and the clear. *)
let removed_share (t : Solver.t) (d : Progdiff.t) : float * int =
  let total =
    Hashtbl.length t.Solver.edge_stmt_mem
    + Hashtbl.length t.Solver.copy_stmt_mem
  in
  let removed =
    List.fold_left
      (fun acc (s : Nast.stmt) ->
        let len tbl =
          match Solver.Itbl.find_opt tbl s.Nast.id with
          | Some l -> List.length !l
          | None -> 0
        in
        acc + len t.Solver.stmt_edges + len t.Solver.stmt_copies)
      0 d.Progdiff.removed
  in
  ((if total = 0 then 0.0 else float_of_int removed /. float_of_int total),
   total)

let reanalyze ?(retract_budget = default_retract_budget) ?diags
    (t : Solver.t) (edited : Nast.program) : Solver.t * stats =
  let aligned, d = Progdiff.align ~base:t.Solver.prog edited in
  let n_added = List.length d.Progdiff.added in
  let n_removed = List.length d.Progdiff.removed in
  let finish (t' : Solver.t) ~retracted ~affected ~warm ~fallback
      ~fallback_planned =
    t'.Solver.incr_stmts_added <- n_added;
    t'.Solver.incr_stmts_removed <- n_removed;
    t'.Solver.incr_facts_retracted <- retracted;
    t'.Solver.incr_warm_visits <- warm;
    t'.Solver.incr_fallback_planned <- (if fallback_planned then 1 else 0);
    ( t',
      {
        stmts_added = n_added;
        stmts_removed = n_removed;
        facts_retracted = retracted;
        affected_cells = affected;
        warm_visits = warm;
        fallback;
        fallback_planned;
      } )
  in
  let fall why =
    let t' = scratch ?diags ~why t aligned in
    finish t' ~retracted:0 ~affected:0 ~warm:t'.Solver.rounds ~fallback:true
      ~fallback_planned:false
  in
  (* The planned variant: same scratch solve, but chosen by the cost
     estimate rather than forced by a limitation — a plan, not a
     degradation, so no [degraded-incremental] warning is emitted and
     the choice surfaces as the [incr_fallback_planned] metric. *)
  let planned () =
    let t' =
      Solver.run ~layout:t.Solver.ctx.Actx.layout ~arith:t.Solver.arith_mode
        ~budget:t.Solver.budget.Budget.limits ~engine:t.Solver.engine
        ~track:t.Solver.track ~strategy:t.Solver.base_strategy aligned
    in
    finish t' ~retracted:0 ~affected:0 ~warm:t'.Solver.rounds ~fallback:true
      ~fallback_planned:true
  in
  if Budget.degraded t.Solver.budget then
    fall
      "the base fixpoint is budget-degraded (collapses invalidate support \
       tracking)"
  else if n_removed = 0 then begin
    (* additive warm start *)
    Solver.set_program t aligned;
    let r0 = t.Solver.rounds in
    List.iter (Solver.enqueue t) d.Progdiff.added;
    Solver.resume t;
    finish t ~retracted:0 ~affected:0
      ~warm:(t.Solver.rounds - r0)
      ~fallback:false ~fallback_planned:false
  end
  else if not t.Solver.track then
    fall "the edit removes statements but support tracking is off"
  else
    let share, total_attr = removed_share t d in
    if total_attr >= plan_floor && share >= 0.25 then
      (* the removed statements derived a quarter of everything: the
         closure would cover most of the graph, skip computing it *)
      planned ()
    else
      match closure t d ~retract_budget with
      | exception Too_wide ->
          fall
            (Printf.sprintf
               "the retraction cascade exceeded %d affected cells"
               retract_budget)
      | removed_ids, affected ->
          let sources = Graph.source_cell_count t.Solver.graph in
          if sources >= plan_floor && 2 * Hashtbl.length affected >= sources
          then
            (* replay would clear and re-derive at least half the
               fact-bearing cells — retraction can't beat the scratch
               solve it would effectively perform anyway *)
            planned ()
          else
            let retracted, ncells, warm =
              execute t aligned removed_ids affected
            in
            finish t ~retracted ~affected:ncells ~warm ~fallback:false
              ~fallback_planned:false
